# Empty compiler generated dependencies file for fig4b_group_size.
# This may be replaced when dependencies are built.
