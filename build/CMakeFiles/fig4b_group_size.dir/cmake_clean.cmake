file(REMOVE_RECURSE
  "CMakeFiles/fig4b_group_size.dir/bench/fig4b_group_size.cpp.o"
  "CMakeFiles/fig4b_group_size.dir/bench/fig4b_group_size.cpp.o.d"
  "bench/fig4b_group_size"
  "bench/fig4b_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
