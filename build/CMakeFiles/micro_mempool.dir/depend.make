# Empty dependencies file for micro_mempool.
# This may be replaced when dependencies are built.
