file(REMOVE_RECURSE
  "CMakeFiles/micro_mempool.dir/bench/micro_mempool.cpp.o"
  "CMakeFiles/micro_mempool.dir/bench/micro_mempool.cpp.o.d"
  "bench/micro_mempool"
  "bench/micro_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
