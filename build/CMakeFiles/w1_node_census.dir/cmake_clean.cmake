file(REMOVE_RECURSE
  "CMakeFiles/w1_node_census.dir/bench/w1_node_census.cpp.o"
  "CMakeFiles/w1_node_census.dir/bench/w1_node_census.cpp.o.d"
  "bench/w1_node_census"
  "bench/w1_node_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w1_node_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
