# Empty dependencies file for w1_node_census.
# This may be replaced when dependencies are built.
