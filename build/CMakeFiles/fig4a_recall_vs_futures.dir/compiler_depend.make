# Empty compiler generated dependencies file for fig4a_recall_vs_futures.
# This may be replaced when dependencies are built.
