file(REMOVE_RECURSE
  "CMakeFiles/fig4a_recall_vs_futures.dir/bench/fig4a_recall_vs_futures.cpp.o"
  "CMakeFiles/fig4a_recall_vs_futures.dir/bench/fig4a_recall_vs_futures.cpp.o.d"
  "bench/fig4a_recall_vs_futures"
  "bench/fig4a_recall_vs_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_recall_vs_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
