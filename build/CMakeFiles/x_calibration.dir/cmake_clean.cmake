file(REMOVE_RECURSE
  "CMakeFiles/x_calibration.dir/bench/x_calibration.cpp.o"
  "CMakeFiles/x_calibration.dir/bench/x_calibration.cpp.o.d"
  "bench/x_calibration"
  "bench/x_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
