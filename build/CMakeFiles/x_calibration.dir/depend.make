# Empty dependencies file for x_calibration.
# This may be replaced when dependencies are built.
