# Empty dependencies file for txprobe_comparison.
# This may be replaced when dependencies are built.
