file(REMOVE_RECURSE
  "CMakeFiles/txprobe_comparison.dir/bench/txprobe_comparison.cpp.o"
  "CMakeFiles/txprobe_comparison.dir/bench/txprobe_comparison.cpp.o.d"
  "bench/txprobe_comparison"
  "bench/txprobe_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txprobe_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
