file(REMOVE_RECURSE
  "CMakeFiles/ropsten_topology.dir/bench/ropsten_topology.cpp.o"
  "CMakeFiles/ropsten_topology.dir/bench/ropsten_topology.cpp.o.d"
  "bench/ropsten_topology"
  "bench/ropsten_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropsten_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
