# Empty dependencies file for ropsten_topology.
# This may be replaced when dependencies are built.
