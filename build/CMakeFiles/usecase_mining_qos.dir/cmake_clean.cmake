file(REMOVE_RECURSE
  "CMakeFiles/usecase_mining_qos.dir/bench/usecase_mining_qos.cpp.o"
  "CMakeFiles/usecase_mining_qos.dir/bench/usecase_mining_qos.cpp.o.d"
  "bench/usecase_mining_qos"
  "bench/usecase_mining_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_mining_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
