
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/usecase_mining_qos.cpp" "CMakeFiles/usecase_mining_qos.dir/bench/usecase_mining_qos.cpp.o" "gcc" "CMakeFiles/usecase_mining_qos.dir/bench/usecase_mining_qos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_mempool.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
