# Empty dependencies file for usecase_mining_qos.
# This may be replaced when dependencies are built.
