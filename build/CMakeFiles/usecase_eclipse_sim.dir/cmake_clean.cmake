file(REMOVE_RECURSE
  "CMakeFiles/usecase_eclipse_sim.dir/bench/usecase_eclipse_sim.cpp.o"
  "CMakeFiles/usecase_eclipse_sim.dir/bench/usecase_eclipse_sim.cpp.o.d"
  "bench/usecase_eclipse_sim"
  "bench/usecase_eclipse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_eclipse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
