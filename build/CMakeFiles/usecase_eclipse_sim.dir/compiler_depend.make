# Empty compiler generated dependencies file for usecase_eclipse_sim.
# This may be replaced when dependencies are built.
