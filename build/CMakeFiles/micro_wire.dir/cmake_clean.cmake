file(REMOVE_RECURSE
  "CMakeFiles/micro_wire.dir/bench/micro_wire.cpp.o"
  "CMakeFiles/micro_wire.dir/bench/micro_wire.cpp.o.d"
  "bench/micro_wire"
  "bench/micro_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
