file(REMOVE_RECURSE
  "CMakeFiles/usecase_security_analysis.dir/bench/usecase_security_analysis.cpp.o"
  "CMakeFiles/usecase_security_analysis.dir/bench/usecase_security_analysis.cpp.o.d"
  "bench/usecase_security_analysis"
  "bench/usecase_security_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_security_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
