# Empty dependencies file for usecase_security_analysis.
# This may be replaced when dependencies are built.
