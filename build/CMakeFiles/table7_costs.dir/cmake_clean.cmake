file(REMOVE_RECURSE
  "CMakeFiles/table7_costs.dir/bench/table7_costs.cpp.o"
  "CMakeFiles/table7_costs.dir/bench/table7_costs.cpp.o.d"
  "bench/table7_costs"
  "bench/table7_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
