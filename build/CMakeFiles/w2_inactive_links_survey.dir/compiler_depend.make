# Empty compiler generated dependencies file for w2_inactive_links_survey.
# This may be replaced when dependencies are built.
