file(REMOVE_RECURSE
  "CMakeFiles/w2_inactive_links_survey.dir/bench/w2_inactive_links_survey.cpp.o"
  "CMakeFiles/w2_inactive_links_survey.dir/bench/w2_inactive_links_survey.cpp.o.d"
  "bench/w2_inactive_links_survey"
  "bench/w2_inactive_links_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w2_inactive_links_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
