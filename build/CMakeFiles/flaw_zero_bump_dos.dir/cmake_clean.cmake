file(REMOVE_RECURSE
  "CMakeFiles/flaw_zero_bump_dos.dir/bench/flaw_zero_bump_dos.cpp.o"
  "CMakeFiles/flaw_zero_bump_dos.dir/bench/flaw_zero_bump_dos.cpp.o.d"
  "bench/flaw_zero_bump_dos"
  "bench/flaw_zero_bump_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flaw_zero_bump_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
