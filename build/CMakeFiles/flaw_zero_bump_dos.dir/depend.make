# Empty dependencies file for flaw_zero_bump_dos.
# This may be replaced when dependencies are built.
