# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for flaw_zero_bump_dos.
