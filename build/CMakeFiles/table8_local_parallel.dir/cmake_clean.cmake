file(REMOVE_RECURSE
  "CMakeFiles/table8_local_parallel.dir/bench/table8_local_parallel.cpp.o"
  "CMakeFiles/table8_local_parallel.dir/bench/table8_local_parallel.cpp.o.d"
  "bench/table8_local_parallel"
  "bench/table8_local_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_local_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
