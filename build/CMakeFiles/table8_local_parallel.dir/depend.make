# Empty dependencies file for table8_local_parallel.
# This may be replaced when dependencies are built.
