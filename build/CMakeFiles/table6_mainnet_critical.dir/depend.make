# Empty dependencies file for table6_mainnet_critical.
# This may be replaced when dependencies are built.
