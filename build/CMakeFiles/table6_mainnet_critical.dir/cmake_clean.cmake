file(REMOVE_RECURSE
  "CMakeFiles/table6_mainnet_critical.dir/bench/table6_mainnet_critical.cpp.o"
  "CMakeFiles/table6_mainnet_critical.dir/bench/table6_mainnet_critical.cpp.o.d"
  "bench/table6_mainnet_critical"
  "bench/table6_mainnet_critical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_mainnet_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
