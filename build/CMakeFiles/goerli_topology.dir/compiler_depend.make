# Empty compiler generated dependencies file for goerli_topology.
# This may be replaced when dependencies are built.
