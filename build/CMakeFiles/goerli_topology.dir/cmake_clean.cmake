file(REMOVE_RECURSE
  "CMakeFiles/goerli_topology.dir/bench/goerli_topology.cpp.o"
  "CMakeFiles/goerli_topology.dir/bench/goerli_topology.cpp.o.d"
  "bench/goerli_topology"
  "bench/goerli_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goerli_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
