file(REMOVE_RECURSE
  "CMakeFiles/appe_eip1559.dir/bench/appe_eip1559.cpp.o"
  "CMakeFiles/appe_eip1559.dir/bench/appe_eip1559.cpp.o.d"
  "bench/appe_eip1559"
  "bench/appe_eip1559.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appe_eip1559.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
