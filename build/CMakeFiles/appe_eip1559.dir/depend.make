# Empty dependencies file for appe_eip1559.
# This may be replaced when dependencies are built.
