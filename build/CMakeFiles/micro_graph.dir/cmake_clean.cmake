file(REMOVE_RECURSE
  "CMakeFiles/micro_graph.dir/bench/micro_graph.cpp.o"
  "CMakeFiles/micro_graph.dir/bench/micro_graph.cpp.o.d"
  "bench/micro_graph"
  "bench/micro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
