file(REMOVE_RECURSE
  "CMakeFiles/table3_client_profiles.dir/bench/table3_client_profiles.cpp.o"
  "CMakeFiles/table3_client_profiles.dir/bench/table3_client_profiles.cpp.o.d"
  "bench/table3_client_profiles"
  "bench/table3_client_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_client_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
