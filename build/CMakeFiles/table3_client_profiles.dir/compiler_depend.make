# Empty compiler generated dependencies file for table3_client_profiles.
# This may be replaced when dependencies are built.
