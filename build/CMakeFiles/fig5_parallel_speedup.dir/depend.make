# Empty dependencies file for fig5_parallel_speedup.
# This may be replaced when dependencies are built.
