file(REMOVE_RECURSE
  "CMakeFiles/fig5_parallel_speedup.dir/bench/fig5_parallel_speedup.cpp.o"
  "CMakeFiles/fig5_parallel_speedup.dir/bench/fig5_parallel_speedup.cpp.o.d"
  "bench/fig5_parallel_speedup"
  "bench/fig5_parallel_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_parallel_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
