file(REMOVE_RECURSE
  "CMakeFiles/appc_noninterference.dir/bench/appc_noninterference.cpp.o"
  "CMakeFiles/appc_noninterference.dir/bench/appc_noninterference.cpp.o.d"
  "bench/appc_noninterference"
  "bench/appc_noninterference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appc_noninterference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
