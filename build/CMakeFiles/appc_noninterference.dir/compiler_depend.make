# Empty compiler generated dependencies file for appc_noninterference.
# This may be replaced when dependencies are built.
