# Empty dependencies file for rinkeby_topology.
# This may be replaced when dependencies are built.
