file(REMOVE_RECURSE
  "CMakeFiles/rinkeby_topology.dir/bench/rinkeby_topology.cpp.o"
  "CMakeFiles/rinkeby_topology.dir/bench/rinkeby_topology.cpp.o.d"
  "bench/rinkeby_topology"
  "bench/rinkeby_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rinkeby_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
