# Empty dependencies file for fig7_local_mempool_size.
# This may be replaced when dependencies are built.
