file(REMOVE_RECURSE
  "CMakeFiles/fig7_local_mempool_size.dir/bench/fig7_local_mempool_size.cpp.o"
  "CMakeFiles/fig7_local_mempool_size.dir/bench/fig7_local_mempool_size.cpp.o.d"
  "bench/fig7_local_mempool_size"
  "bench/fig7_local_mempool_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_local_mempool_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
