
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_centrality.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_centrality.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_centrality.cpp.o.d"
  "/root/repo/tests/test_clients_e2e.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_clients_e2e.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_clients_e2e.cpp.o.d"
  "/root/repo/tests/test_core_misc.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_core_misc.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_core_misc.cpp.o.d"
  "/root/repo/tests/test_disc.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_disc.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_disc.cpp.o.d"
  "/root/repo/tests/test_discv4.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_discv4.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_discv4.cpp.o.d"
  "/root/repo/tests/test_emergence_calibration.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_emergence_calibration.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_emergence_calibration.cpp.o.d"
  "/root/repo/tests/test_eth.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_eth.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_eth.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_louvain.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_louvain.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_louvain.cpp.o.d"
  "/root/repo/tests/test_mainnet.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_mainnet.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_mainnet.cpp.o.d"
  "/root/repo/tests/test_measure_config.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_measure_config.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_measure_config.cpp.o.d"
  "/root/repo/tests/test_mempool.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_mempool.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_mempool.cpp.o.d"
  "/root/repo/tests/test_mempool_fuzz.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_mempool_fuzz.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_mempool_fuzz.cpp.o.d"
  "/root/repo/tests/test_noninterference.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_noninterference.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_noninterference.cpp.o.d"
  "/root/repo/tests/test_one_link_edge_cases.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_one_link_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_one_link_edge_cases.cpp.o.d"
  "/root/repo/tests/test_overlays.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_overlays.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_overlays.cpp.o.d"
  "/root/repo/tests/test_p2p.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_preprocess.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_preprocess.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_preprocess.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_report_io.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_report_io.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_report_io.cpp.o.d"
  "/root/repo/tests/test_rng_stats.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_rng_stats.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_rng_stats.cpp.o.d"
  "/root/repo/tests/test_rpc.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_rpc.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_rpc.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke_one_link.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_smoke_one_link.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_smoke_one_link.cpp.o.d"
  "/root/repo/tests/test_testnets_integration.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_testnets_integration.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_testnets_integration.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_validator_cost.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_validator_cost.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_validator_cost.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/toposhot_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/toposhot_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_mempool.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
