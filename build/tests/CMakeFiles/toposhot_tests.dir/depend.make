# Empty dependencies file for toposhot_tests.
# This may be replaced when dependencies are built.
