file(REMOVE_RECURSE
  "CMakeFiles/topo_core.dir/core/config.cpp.o"
  "CMakeFiles/topo_core.dir/core/config.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/cost.cpp.o"
  "CMakeFiles/topo_core.dir/core/cost.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/gas_estimator.cpp.o"
  "CMakeFiles/topo_core.dir/core/gas_estimator.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/mainnet.cpp.o"
  "CMakeFiles/topo_core.dir/core/mainnet.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/noninterference.cpp.o"
  "CMakeFiles/topo_core.dir/core/noninterference.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/one_link.cpp.o"
  "CMakeFiles/topo_core.dir/core/one_link.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/parallel.cpp.o"
  "CMakeFiles/topo_core.dir/core/parallel.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/preprocess.cpp.o"
  "CMakeFiles/topo_core.dir/core/preprocess.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/profiler.cpp.o"
  "CMakeFiles/topo_core.dir/core/profiler.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/report_io.cpp.o"
  "CMakeFiles/topo_core.dir/core/report_io.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/schedule.cpp.o"
  "CMakeFiles/topo_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/toposhot.cpp.o"
  "CMakeFiles/topo_core.dir/core/toposhot.cpp.o.d"
  "CMakeFiles/topo_core.dir/core/validator.cpp.o"
  "CMakeFiles/topo_core.dir/core/validator.cpp.o.d"
  "libtopo_core.a"
  "libtopo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
