# Empty dependencies file for topo_core.
# This may be replaced when dependencies are built.
