file(REMOVE_RECURSE
  "libtopo_core.a"
)
