
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/topo_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/topo_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/gas_estimator.cpp" "src/CMakeFiles/topo_core.dir/core/gas_estimator.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/gas_estimator.cpp.o.d"
  "/root/repo/src/core/mainnet.cpp" "src/CMakeFiles/topo_core.dir/core/mainnet.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/mainnet.cpp.o.d"
  "/root/repo/src/core/noninterference.cpp" "src/CMakeFiles/topo_core.dir/core/noninterference.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/noninterference.cpp.o.d"
  "/root/repo/src/core/one_link.cpp" "src/CMakeFiles/topo_core.dir/core/one_link.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/one_link.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/topo_core.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/CMakeFiles/topo_core.dir/core/preprocess.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/preprocess.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/CMakeFiles/topo_core.dir/core/profiler.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/profiler.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/CMakeFiles/topo_core.dir/core/report_io.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/report_io.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/topo_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/toposhot.cpp" "src/CMakeFiles/topo_core.dir/core/toposhot.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/toposhot.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/CMakeFiles/topo_core.dir/core/validator.cpp.o" "gcc" "src/CMakeFiles/topo_core.dir/core/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_mempool.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
