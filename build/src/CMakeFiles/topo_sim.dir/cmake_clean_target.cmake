file(REMOVE_RECURSE
  "libtopo_sim.a"
)
