# Empty compiler generated dependencies file for topo_sim.
# This may be replaced when dependencies are built.
