file(REMOVE_RECURSE
  "CMakeFiles/topo_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/topo_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/topo_sim.dir/sim/latency.cpp.o"
  "CMakeFiles/topo_sim.dir/sim/latency.cpp.o.d"
  "CMakeFiles/topo_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/topo_sim.dir/sim/simulator.cpp.o.d"
  "libtopo_sim.a"
  "libtopo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
