file(REMOVE_RECURSE
  "libtopo_mempool.a"
)
