# Empty dependencies file for topo_mempool.
# This may be replaced when dependencies are built.
