file(REMOVE_RECURSE
  "CMakeFiles/topo_mempool.dir/mempool/client_profile.cpp.o"
  "CMakeFiles/topo_mempool.dir/mempool/client_profile.cpp.o.d"
  "CMakeFiles/topo_mempool.dir/mempool/mempool.cpp.o"
  "CMakeFiles/topo_mempool.dir/mempool/mempool.cpp.o.d"
  "CMakeFiles/topo_mempool.dir/mempool/policy.cpp.o"
  "CMakeFiles/topo_mempool.dir/mempool/policy.cpp.o.d"
  "libtopo_mempool.a"
  "libtopo_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
