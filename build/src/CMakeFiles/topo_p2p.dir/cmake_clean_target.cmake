file(REMOVE_RECURSE
  "libtopo_p2p.a"
)
