file(REMOVE_RECURSE
  "CMakeFiles/topo_p2p.dir/p2p/measurement_node.cpp.o"
  "CMakeFiles/topo_p2p.dir/p2p/measurement_node.cpp.o.d"
  "CMakeFiles/topo_p2p.dir/p2p/network.cpp.o"
  "CMakeFiles/topo_p2p.dir/p2p/network.cpp.o.d"
  "CMakeFiles/topo_p2p.dir/p2p/node.cpp.o"
  "CMakeFiles/topo_p2p.dir/p2p/node.cpp.o.d"
  "libtopo_p2p.a"
  "libtopo_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
