# Empty dependencies file for topo_p2p.
# This may be replaced when dependencies are built.
