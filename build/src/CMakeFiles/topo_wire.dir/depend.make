# Empty dependencies file for topo_wire.
# This may be replaced when dependencies are built.
