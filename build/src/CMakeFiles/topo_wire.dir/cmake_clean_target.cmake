file(REMOVE_RECURSE
  "libtopo_wire.a"
)
