file(REMOVE_RECURSE
  "CMakeFiles/topo_wire.dir/wire/messages.cpp.o"
  "CMakeFiles/topo_wire.dir/wire/messages.cpp.o.d"
  "CMakeFiles/topo_wire.dir/wire/rlp.cpp.o"
  "CMakeFiles/topo_wire.dir/wire/rlp.cpp.o.d"
  "libtopo_wire.a"
  "libtopo_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
