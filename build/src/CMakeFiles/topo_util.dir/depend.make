# Empty dependencies file for topo_util.
# This may be replaced when dependencies are built.
