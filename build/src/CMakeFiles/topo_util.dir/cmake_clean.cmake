file(REMOVE_RECURSE
  "CMakeFiles/topo_util.dir/util/cli.cpp.o"
  "CMakeFiles/topo_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/topo_util.dir/util/log.cpp.o"
  "CMakeFiles/topo_util.dir/util/log.cpp.o.d"
  "CMakeFiles/topo_util.dir/util/rng.cpp.o"
  "CMakeFiles/topo_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/topo_util.dir/util/stats.cpp.o"
  "CMakeFiles/topo_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/topo_util.dir/util/table.cpp.o"
  "CMakeFiles/topo_util.dir/util/table.cpp.o.d"
  "libtopo_util.a"
  "libtopo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
