file(REMOVE_RECURSE
  "libtopo_util.a"
)
