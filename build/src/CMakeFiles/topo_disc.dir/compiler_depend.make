# Empty compiler generated dependencies file for topo_disc.
# This may be replaced when dependencies are built.
