
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disc/dialer.cpp" "src/CMakeFiles/topo_disc.dir/disc/dialer.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/dialer.cpp.o.d"
  "/root/repo/src/disc/discovery.cpp" "src/CMakeFiles/topo_disc.dir/disc/discovery.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/discovery.cpp.o.d"
  "/root/repo/src/disc/discv4.cpp" "src/CMakeFiles/topo_disc.dir/disc/discv4.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/discv4.cpp.o.d"
  "/root/repo/src/disc/emergence.cpp" "src/CMakeFiles/topo_disc.dir/disc/emergence.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/emergence.cpp.o.d"
  "/root/repo/src/disc/kademlia_table.cpp" "src/CMakeFiles/topo_disc.dir/disc/kademlia_table.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/kademlia_table.cpp.o.d"
  "/root/repo/src/disc/node_id.cpp" "src/CMakeFiles/topo_disc.dir/disc/node_id.cpp.o" "gcc" "src/CMakeFiles/topo_disc.dir/disc/node_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
