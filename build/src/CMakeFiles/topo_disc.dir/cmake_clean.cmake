file(REMOVE_RECURSE
  "CMakeFiles/topo_disc.dir/disc/dialer.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/dialer.cpp.o.d"
  "CMakeFiles/topo_disc.dir/disc/discovery.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/discovery.cpp.o.d"
  "CMakeFiles/topo_disc.dir/disc/discv4.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/discv4.cpp.o.d"
  "CMakeFiles/topo_disc.dir/disc/emergence.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/emergence.cpp.o.d"
  "CMakeFiles/topo_disc.dir/disc/kademlia_table.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/kademlia_table.cpp.o.d"
  "CMakeFiles/topo_disc.dir/disc/node_id.cpp.o"
  "CMakeFiles/topo_disc.dir/disc/node_id.cpp.o.d"
  "libtopo_disc.a"
  "libtopo_disc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_disc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
