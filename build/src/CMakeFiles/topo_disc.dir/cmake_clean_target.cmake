file(REMOVE_RECURSE
  "libtopo_disc.a"
)
