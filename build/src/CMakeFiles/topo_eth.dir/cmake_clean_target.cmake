file(REMOVE_RECURSE
  "libtopo_eth.a"
)
