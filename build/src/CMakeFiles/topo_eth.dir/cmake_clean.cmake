file(REMOVE_RECURSE
  "CMakeFiles/topo_eth.dir/eth/account.cpp.o"
  "CMakeFiles/topo_eth.dir/eth/account.cpp.o.d"
  "CMakeFiles/topo_eth.dir/eth/block.cpp.o"
  "CMakeFiles/topo_eth.dir/eth/block.cpp.o.d"
  "CMakeFiles/topo_eth.dir/eth/chain.cpp.o"
  "CMakeFiles/topo_eth.dir/eth/chain.cpp.o.d"
  "CMakeFiles/topo_eth.dir/eth/miner.cpp.o"
  "CMakeFiles/topo_eth.dir/eth/miner.cpp.o.d"
  "CMakeFiles/topo_eth.dir/eth/transaction.cpp.o"
  "CMakeFiles/topo_eth.dir/eth/transaction.cpp.o.d"
  "libtopo_eth.a"
  "libtopo_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
