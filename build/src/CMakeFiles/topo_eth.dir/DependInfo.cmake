
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eth/account.cpp" "src/CMakeFiles/topo_eth.dir/eth/account.cpp.o" "gcc" "src/CMakeFiles/topo_eth.dir/eth/account.cpp.o.d"
  "/root/repo/src/eth/block.cpp" "src/CMakeFiles/topo_eth.dir/eth/block.cpp.o" "gcc" "src/CMakeFiles/topo_eth.dir/eth/block.cpp.o.d"
  "/root/repo/src/eth/chain.cpp" "src/CMakeFiles/topo_eth.dir/eth/chain.cpp.o" "gcc" "src/CMakeFiles/topo_eth.dir/eth/chain.cpp.o.d"
  "/root/repo/src/eth/miner.cpp" "src/CMakeFiles/topo_eth.dir/eth/miner.cpp.o" "gcc" "src/CMakeFiles/topo_eth.dir/eth/miner.cpp.o.d"
  "/root/repo/src/eth/transaction.cpp" "src/CMakeFiles/topo_eth.dir/eth/transaction.cpp.o" "gcc" "src/CMakeFiles/topo_eth.dir/eth/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/topo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
