# Empty dependencies file for topo_eth.
# This may be replaced when dependencies are built.
