file(REMOVE_RECURSE
  "CMakeFiles/topo_rpc.dir/rpc/json.cpp.o"
  "CMakeFiles/topo_rpc.dir/rpc/json.cpp.o.d"
  "CMakeFiles/topo_rpc.dir/rpc/rpc.cpp.o"
  "CMakeFiles/topo_rpc.dir/rpc/rpc.cpp.o.d"
  "libtopo_rpc.a"
  "libtopo_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
