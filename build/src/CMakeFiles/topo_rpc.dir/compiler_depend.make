# Empty compiler generated dependencies file for topo_rpc.
# This may be replaced when dependencies are built.
