file(REMOVE_RECURSE
  "libtopo_rpc.a"
)
