file(REMOVE_RECURSE
  "CMakeFiles/topo_graph.dir/graph/centrality.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/centrality.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/cliques.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/cliques.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/io.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/louvain.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/louvain.cpp.o.d"
  "CMakeFiles/topo_graph.dir/graph/metrics.cpp.o"
  "CMakeFiles/topo_graph.dir/graph/metrics.cpp.o.d"
  "libtopo_graph.a"
  "libtopo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
