# Empty dependencies file for topo_graph.
# This may be replaced when dependencies are built.
