file(REMOVE_RECURSE
  "libtopo_graph.a"
)
