# Empty compiler generated dependencies file for example_toposhot_cli.
# This may be replaced when dependencies are built.
