file(REMOVE_RECURSE
  "CMakeFiles/example_toposhot_cli.dir/toposhot_cli.cpp.o"
  "CMakeFiles/example_toposhot_cli.dir/toposhot_cli.cpp.o.d"
  "example_toposhot_cli"
  "example_toposhot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_toposhot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
