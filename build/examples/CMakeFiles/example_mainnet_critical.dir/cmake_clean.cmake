file(REMOVE_RECURSE
  "CMakeFiles/example_mainnet_critical.dir/mainnet_critical.cpp.o"
  "CMakeFiles/example_mainnet_critical.dir/mainnet_critical.cpp.o.d"
  "example_mainnet_critical"
  "example_mainnet_critical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mainnet_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
