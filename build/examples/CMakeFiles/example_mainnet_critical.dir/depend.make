# Empty dependencies file for example_mainnet_critical.
# This may be replaced when dependencies are built.
