file(REMOVE_RECURSE
  "CMakeFiles/example_testnet_topology.dir/testnet_topology.cpp.o"
  "CMakeFiles/example_testnet_topology.dir/testnet_topology.cpp.o.d"
  "example_testnet_topology"
  "example_testnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_testnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
