# Empty compiler generated dependencies file for example_testnet_topology.
# This may be replaced when dependencies are built.
