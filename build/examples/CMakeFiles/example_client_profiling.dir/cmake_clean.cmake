file(REMOVE_RECURSE
  "CMakeFiles/example_client_profiling.dir/client_profiling.cpp.o"
  "CMakeFiles/example_client_profiling.dir/client_profiling.cpp.o.d"
  "example_client_profiling"
  "example_client_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_client_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
