# Empty dependencies file for example_client_profiling.
# This may be replaced when dependencies are built.
