// Quickstart: measure whether two Ethereum nodes are actively connected.
//
// This is the smallest end-to-end use of the library: build a simulated
// overlay, attach the measurement node M, and run the measureOneLink
// primitive (paper §5.2) against a pair of targets.
//
//   $ ./example_quickstart

#include <iostream>

#include "core/toposhot.h"

int main() {
  using namespace topo;

  // A five-node overlay: a ring 0-1-2-3-4-0 plus the chord 1-3.
  graph::Graph topology(5);
  topology.add_edge(0, 1);
  topology.add_edge(1, 2);
  topology.add_edge(2, 3);
  topology.add_edge(3, 4);
  topology.add_edge(4, 0);
  topology.add_edge(1, 3);

  // The Scenario wires the simulator, chain, network, and the supernode M,
  // with 10x-scaled Geth mempools (L = 512) for speed.
  core::ScenarioOptions options;
  options.seed = 1;
  core::Scenario scenario(topology, options);
  scenario.seed_background();  // populate mempools like a live network

  // Measure two pairs: a real link and a non-link.
  const auto cfg = scenario.default_measure_config();
  const auto linked =
      scenario.measure_one_link(scenario.targets()[1], scenario.targets()[3], cfg);
  const auto unlinked =
      scenario.measure_one_link(scenario.targets()[0], scenario.targets()[2], cfg);

  std::cout << "node1 <-> node3: " << (linked.connected ? "CONNECTED" : "not connected")
            << "  (ground truth: connected)\n";
  std::cout << "node0 <-> node2: " << (unlinked.connected ? "CONNECTED" : "not connected")
            << "  (ground truth: not connected)\n";
  std::cout << "\nDiagnostics for the positive measurement:\n"
            << "  txC evicted on A: " << (linked.txc_evicted_on_a ? "yes" : "no") << "\n"
            << "  txC evicted on B: " << (linked.txc_evicted_on_b ? "yes" : "no") << "\n"
            << "  txA planted on A: " << (linked.txa_planted_on_a ? "yes" : "no") << "\n"
            << "  transactions sent: " << linked.txs_sent << "\n"
            << "  sim duration: " << (linked.finished_at - linked.started_at) << " s\n";
  return 0;
}
