// Quickstart: measure whether two Ethereum nodes are actively connected.
//
// This is the smallest end-to-end use of the library: build a simulated
// overlay, attach the measurement node M, and run the measureOneLink
// primitive (paper §5.2) against a pair of targets.
//
//   $ ./example_quickstart

#include <iostream>

#include "core/session.h"
#include "core/toposhot.h"

int main() {
  using namespace topo;

  // A five-node overlay: a ring 0-1-2-3-4-0 plus the chord 1-3.
  graph::Graph topology(5);
  topology.add_edge(0, 1);
  topology.add_edge(1, 2);
  topology.add_edge(2, 3);
  topology.add_edge(3, 4);
  topology.add_edge(4, 0);
  topology.add_edge(1, 3);

  // The Scenario wires the simulator, chain, network, and the supernode M,
  // with 10x-scaled Geth mempools (L = 512) for speed.
  core::ScenarioOptions options;
  options.seed = 1;
  core::Scenario scenario(topology, options);
  scenario.seed_background();  // populate mempools like a live network

  // A MeasurementSession owns the MeasureConfig and annotates each result
  // with the metrics delta of producing it.
  core::MeasurementSession session(scenario);
  const auto linked = session.one_link(scenario.targets()[1], scenario.targets()[3]);
  const auto unlinked = session.one_link(scenario.targets()[0], scenario.targets()[2]);

  std::cout << "node1 <-> node3: " << (linked.value.connected ? "CONNECTED" : "not connected")
            << "  (ground truth: connected)\n";
  std::cout << "node0 <-> node2: " << (unlinked.value.connected ? "CONNECTED" : "not connected")
            << "  (ground truth: not connected)\n";
  std::cout << "\nDiagnostics for the positive measurement:\n"
            << "  txC evicted on A: " << (linked.value.txc_evicted_on_a ? "yes" : "no") << "\n"
            << "  txC evicted on B: " << (linked.value.txc_evicted_on_b ? "yes" : "no") << "\n"
            << "  txA planted on A: " << (linked.value.txa_planted_on_a ? "yes" : "no") << "\n"
            << "  transactions sent: " << linked.value.txs_sent << "\n"
            << "  sim duration: " << (linked.value.finished_at - linked.value.started_at)
            << " s\n"
            << "  net messages (this call): "
            << linked.metrics.counters.at("net.messages") << "\n"
            << "  mempool evictions (this call): "
            << linked.metrics.counters.at("mempool.evictions") << "\n";
  return 0;
}
