// toposhot_cli — a driver binary exposing the library's workflows behind
// one command-line interface:
//
//   --mode=profile                      profile the Table 3 client policies
//   --mode=measure --nodes=N --group=K  measure an emergent testnet topology
//   --mode=analyze --nodes=N            graph analytics on an emergent topology
//   --mode=pair --a=I --b=J --nodes=N   measure one link with diagnostics
//   --mode=export --nodes=N --out=PATH  emerge a topology and write CSV/DOT
//
// Common flags: --seed, --recipe=ropsten|rinkeby|goerli, --repetitions,
// and --strategy=toposhot|dethna|txprobe to pick the measurement strategy
// (core::MeasurementStrategy seam; the non-default choice is echoed in the
// table, the report JSON, and the metrics snapshot).
// measure also accepts --threads=N / --shards=S to run the sharded campaign
// (topo::exec), --fault-loss=P / --fault-churn=RATE / --retries=R for
// deterministic fault injection with bounded inconclusive re-measurement
// (topo::fault), and --metrics-out=PATH to dump the metrics snapshot
// (counters, gauges, probe-phase histograms) as JSON; pair accepts
// --metrics-out too.
//
// Observability (measure and pair): --trace-out=PATH writes the causal span
// export as Chrome trace-event JSON (load in Perfetto / chrome://tracing),
// --trace-capacity=N sizes the bounded tx-event ring (overflow drops the
// oldest events and is warned about once), and --diagnostics prints the
// per-cause verdict breakdown and embeds the diagnostics annex in the
// report (docs/TRACING.md).

#include <fstream>
#include <iostream>

#include "core/profiler.h"
#include "core/session.h"
#include "core/toposhot.h"
#include "core/validator.h"
#include "exec/campaign.h"
#include "fault/fault.h"
#include "obs/export.h"
#include "obs/span.h"
#include "disc/emergence.h"
#include "graph/centrality.h"
#include "graph/io.h"
#include "graph/louvain.h"
#include "graph/metrics.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace topo;

disc::EmergenceConfig recipe_for(const std::string& name, size_t nodes) {
  if (name == "rinkeby") return disc::rinkeby_like(nodes);
  if (name == "goerli") return disc::goerli_like(nodes);
  return disc::ropsten_like(nodes);
}

int mode_profile() {
  core::ClientProfiler profiler;
  util::Table table({"Client", "R", "U", "P", "L", "Measurable"});
  for (const auto kind : mempool::kAllClients) {
    const auto est = profiler.profile(kind);
    table.add_row({mempool::client_name(kind), util::fmt_pct(est.replace_bump_fraction, 2),
                   est.futures_unbounded ? "inf" : util::fmt(est.max_futures_per_account),
                   util::fmt(est.min_pending_for_eviction), util::fmt(est.capacity),
                   est.measurable ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}

/// Writes an explicit snapshot (the sharded-campaign path, where there is no
/// single session to snapshot) when --metrics-out was given.
bool maybe_write_metrics(const util::Cli& cli, const obs::MetricsSnapshot& snapshot) {
  const std::string path = cli.get_string("metrics-out", "");
  if (path.empty()) return true;
  if (!obs::write_json_file(path, obs::snapshot_to_json(snapshot))) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  std::cout << "metrics written to " << path << "\n";
  return true;
}

/// Warns (once per run) when the bounded trace ring overflowed: the
/// exported tx-event trace is then missing its oldest events, and
/// --trace-capacity should be raised.
void warn_if_trace_dropped(double dropped) {
  static bool warned = false;
  if (dropped > 0.0 && !warned) {
    warned = true;
    std::cerr << "warning: trace ring dropped " << static_cast<uint64_t>(dropped)
              << " events (oldest first); raise --trace-capacity to keep them\n";
  }
}

/// Writes the causal-span export as Chrome trace-event JSON when
/// --trace-out was given; returns false only on I/O failure.
bool maybe_write_trace(const util::Cli& cli, std::vector<obs::Span> spans) {
  const std::string path = cli.get_string("trace-out", "");
  if (path.empty()) return true;
  if (!obs::write_json_file(path, obs::spans_to_chrome_json(std::move(spans)))) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  std::cout << "trace written to " << path << "\n";
  return true;
}

/// Appends the per-cause verdict breakdown of the diagnostics annex.
void add_diagnostics_rows(util::Table& table, const core::DiagnosticsReport& d) {
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    if (d.causes[c] == 0 && d.cleared[c] == 0) continue;
    const char* name = obs::probe_cause_name(static_cast<obs::ProbeCause>(c));
    table.add_row({std::string("cause ") + name,
                   util::fmt(d.causes[c]) + " (" + util::fmt(d.cleared[c]) + " cleared)"});
  }
}

/// Builds the fault plan shared by both measure paths from --fault-loss
/// (uniform message-drop probability) and --fault-churn (random node faults
/// per sim second, half of them crash/restarts).
/// Parses --strategy through the strict vocabulary (exit 2 on a typo).
core::StrategyKind strategy_from(const util::Cli& cli) {
  const std::string name =
      cli.get_choice("strategy", "toposhot", {"toposhot", "dethna", "txprobe"});
  core::StrategyKind kind = core::StrategyKind::kToposhot;
  core::strategy_from_name(name, kind);
  return kind;
}

/// Stamps the strategy into a metrics snapshot so the written artifact is
/// self-describing even where the report JSON is not emitted.
void stamp_strategy(obs::MetricsSnapshot& snapshot, core::StrategyKind kind) {
  snapshot.gauges["probe.strategy"] = static_cast<double>(kind);
}

fault::FaultPlan fault_plan_from(const util::Cli& cli) {
  fault::FaultPlan plan;
  const double loss = cli.get_double("fault-loss", 0.0);
  plan.drop_tx = loss;
  plan.drop_announce = loss;
  plan.drop_get_tx = loss;
  plan.churn_rate = cli.get_double("fault-churn", 0.0);
  plan.crash_fraction = 0.5;
  return plan;
}

int mode_measure(const util::Cli& cli) {
  const size_t nodes = cli.get_uint("nodes", 40);
  const size_t group = cli.get_uint("group", 3);
  const uint64_t seed = cli.get_uint("seed", 1);
  const size_t threads = cli.get_uint("threads", 1);
  const size_t shards = cli.get_uint("shards", 0);
  const size_t retries = cli.get_uint("retries", 0);
  const bool diagnostics = cli.get_bool("diagnostics", false);
  const bool tracing = !cli.get_string("trace-out", "").empty();
  const core::StrategyKind strategy = strategy_from(cli);
  const fault::FaultPlan plan = fault_plan_from(cli);
  util::Rng rng(seed);
  auto recipe = recipe_for(cli.get_string("recipe", "ropsten"), nodes);
  const graph::Graph truth = disc::emerge_topology(recipe, rng);

  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.block_gas_limit = 30 * eth::kTransferGas;
  opt.trace_capacity = cli.get_uint("trace-capacity", opt.trace_capacity);
  // Purely mechanical (reports are byte-identical at any value); exposed
  // for perf experiments and for forcing the unbatched reference path (0).
  opt.batch_window = cli.get_double("batch-window", opt.batch_window);

  util::Table table({"Metric", "Value"});
  table.add_row({"strategy", core::strategy_name(strategy)});
  table.add_row({"nodes", util::fmt(truth.num_nodes())});
  table.add_row({"true edges", util::fmt(truth.num_edges())});

  if (threads > 1 || shards > 0) {
    // Sharded campaign: the shard plan (not the pool width) fixes the
    // decomposition, so any --threads value yields the same merged report.
    core::Scenario probe(truth, opt);
    const core::MeasureConfig mcfg =
        core::MeasureConfig::Builder(probe.default_measure_config())
            .repetitions(cli.get_uint("repetitions", 3))
            .inconclusive_retries(retries)
            .collect_diagnostics(diagnostics)
            .build();
    exec::CampaignOptions copt;
    copt.group_k = group;
    copt.strategy = strategy;
    copt.threads = threads;
    copt.shards = shards;
    copt.churn_rate = 3.0;
    copt.fault_plan = plan;
    copt.collect_spans = tracing;
    copt.fork_worlds = cli.get_bool("fork-worlds", true);
    auto campaign = exec::run_sharded_campaign(truth, opt, mcfg, copt);
    stamp_strategy(campaign.metrics, strategy);
    if (campaign.shards != campaign.shards_requested) {
      std::cerr << "warning: --shards=" << campaign.shards_requested << " clamped to "
                << campaign.shards << " (only " << campaign.batches
                << " batches to distribute)\n";
    }
    const auto& report = campaign.report;
    const auto pr = core::compare_graphs(truth, report.measured);
    table.add_row({"measured edges", util::fmt(report.measured.num_edges())});
    table.add_row({"precision", util::fmt_pct(pr.precision())});
    table.add_row({"recall", util::fmt_pct(pr.recall())});
    table.add_row({"iterations", util::fmt(report.iterations)});
    table.add_row({"sim seconds", util::fmt(report.sim_seconds, 0)});
    table.add_row({"sim makespan", util::fmt(campaign.makespan_sim_seconds, 0)});
    table.add_row({"txs sent", util::fmt(report.txs_sent)});
    table.add_row({"net messages", util::fmt(campaign.metrics.counters.at("net.messages"))});
    table.add_row(
        {"pool evictions", util::fmt(campaign.metrics.counters.at("mempool.evictions"))});
    table.add_row({"shards / threads", util::fmt(campaign.shards) + " / " + util::fmt(threads)});
    if (report.fault.has_value()) {
      table.add_row({"probe attempts", util::fmt(report.fault->attempts)});
      table.add_row({"still inconclusive", util::fmt(report.fault->inconclusive)});
      table.add_row({"pairs re-measured", util::fmt(report.fault->retried.size())});
    }
    if (report.diagnostics.has_value()) add_diagnostics_rows(table, *report.diagnostics);
    table.print(std::cout);
    const auto dropped = campaign.metrics.gauges.find("obs.trace.dropped");
    if (dropped != campaign.metrics.gauges.end()) warn_if_trace_dropped(dropped->second);
    const bool ok = maybe_write_metrics(cli, campaign.metrics) &&
                    maybe_write_trace(cli, campaign.spans);
    return ok ? 0 : 1;
  }

  core::Scenario sc(truth, opt);
  fault::FaultInjector injector(plan, util::derive_stream_seed(seed, 0xFA01));
  sc.seed_background();
  sc.start_churn(3.0);
  if (plan.enabled()) injector.install(sc.net(), &sc.metrics());
  obs::SpanTracer tracer(0);
  if (tracing) sc.set_span_tracer(&tracer);

  core::MeasurementSession session(
      sc, core::MeasureConfig::Builder(sc.default_measure_config())
              .repetitions(cli.get_uint("repetitions", 3))
              .inconclusive_retries(retries)
              .collect_diagnostics(diagnostics)
              .build());
  session.set_strategy(strategy);
  const auto measured = session.network(group);
  const auto& report = measured.value;
  const auto pr = core::compare_graphs(truth, report.measured);

  table.add_row({"measured edges", util::fmt(report.measured.num_edges())});
  table.add_row({"precision", util::fmt_pct(pr.precision())});
  table.add_row({"recall", util::fmt_pct(pr.recall())});
  table.add_row({"iterations", util::fmt(report.iterations)});
  table.add_row({"sim seconds", util::fmt(report.sim_seconds, 0)});
  table.add_row({"txs sent", util::fmt(report.txs_sent)});
  table.add_row({"net messages", util::fmt(measured.metrics.counters.at("net.messages"))});
  table.add_row({"pool evictions", util::fmt(measured.metrics.counters.at("mempool.evictions"))});
  if (report.fault.has_value()) {
    table.add_row({"probe attempts", util::fmt(report.fault->attempts)});
    table.add_row({"still inconclusive", util::fmt(report.fault->inconclusive)});
    table.add_row({"pairs re-measured", util::fmt(report.fault->retried.size())});
  }
  if (report.diagnostics.has_value()) add_diagnostics_rows(table, *report.diagnostics);
  table.print(std::cout);
  warn_if_trace_dropped(static_cast<double>(sc.metrics().trace().dropped()));
  obs::MetricsSnapshot snapshot = session.snapshot();
  stamp_strategy(snapshot, strategy);
  const bool ok = maybe_write_metrics(cli, snapshot) && maybe_write_trace(cli, tracer.spans());
  return ok ? 0 : 1;
}

int mode_analyze(const util::Cli& cli) {
  const size_t nodes = cli.get_uint("nodes", 120);
  const uint64_t seed = cli.get_uint("seed", 1);
  util::Rng rng(seed);
  auto recipe = recipe_for(cli.get_string("recipe", "ropsten"), nodes);
  const graph::Graph g = disc::emerge_topology(recipe, rng);

  const auto d = graph::distance_stats(g);
  util::Rng lrng = rng.split();
  const auto comm = graph::louvain(g, lrng);
  const auto cuts = graph::articulation_points(g);
  const auto fp = graph::neighbor_fingerprints(g);

  util::Table table({"Property", "Value"});
  table.add_row({"nodes / edges", util::fmt(g.num_nodes()) + " / " + util::fmt(g.num_edges())});
  table.add_row({"diameter / radius", util::fmt(static_cast<long long>(d.diameter)) + " / " +
                                          util::fmt(static_cast<long long>(d.radius))});
  table.add_row({"clustering", util::fmt(graph::clustering_coefficient(g), 4)});
  table.add_row({"transitivity", util::fmt(graph::transitivity(g), 4)});
  table.add_row({"assortativity", util::fmt(graph::degree_assortativity(g), 4)});
  table.add_row({"modularity", util::fmt(comm.modularity, 4)});
  table.add_row({"communities", util::fmt(comm.count)});
  table.add_row({"articulation points", util::fmt(cuts.size())});
  table.add_row({"unique fingerprints", util::fmt_pct(fp.unique_fraction())});
  table.print(std::cout);
  return 0;
}

int mode_pair(const util::Cli& cli) {
  const size_t nodes = cli.get_uint("nodes", 24);
  const uint64_t seed = cli.get_uint("seed", 1);
  const size_t a = cli.get_uint("a", 0);
  const size_t b = cli.get_uint("b", 1);
  util::Rng rng(seed);
  auto recipe = recipe_for(cli.get_string("recipe", "ropsten"), nodes);
  const graph::Graph truth = disc::emerge_topology(recipe, rng);
  if (a >= nodes || b >= nodes || a == b) {
    std::cerr << "--a/--b must be distinct indices below --nodes\n";
    return 2;
  }

  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.trace_capacity = cli.get_uint("trace-capacity", opt.trace_capacity);
  opt.batch_window = cli.get_double("batch-window", opt.batch_window);
  const core::StrategyKind strategy = strategy_from(cli);
  core::Scenario sc(truth, opt);
  sc.seed_background();
  obs::SpanTracer tracer(0);
  if (!cli.get_string("trace-out", "").empty()) sc.set_span_tracer(&tracer);
  core::MeasurementSession session(sc);
  session.set_strategy(strategy);
  const auto measured = session.one_link(sc.targets()[a], sc.targets()[b]);
  const auto& r = measured.value;
  std::cout << "pair " << a << " <-> " << b << " [" << core::strategy_name(strategy) << "]: "
            << (r.connected ? "CONNECTED" : "not connected")
            << " (ground truth: " << (truth.has_edge(static_cast<graph::NodeId>(a),
                                                     static_cast<graph::NodeId>(b))
                                          ? "linked"
                                          : "not linked")
            << ")\n"
            << "  txC evicted on A/B: " << r.txc_evicted_on_a << "/" << r.txc_evicted_on_b
            << ", txA planted: " << r.txa_planted_on_a << ", txs sent: " << r.txs_sent
            << ", verdict: " << obs::span_verdict_name(core::span_verdict_code(r.verdict))
            << ", cause: " << obs::probe_cause_name(r.cause) << "\n";
  warn_if_trace_dropped(static_cast<double>(sc.metrics().trace().dropped()));
  obs::MetricsSnapshot snapshot = session.snapshot();
  stamp_strategy(snapshot, strategy);
  const bool ok = maybe_write_metrics(cli, snapshot) && maybe_write_trace(cli, tracer.spans());
  return ok ? 0 : 1;
}

int mode_export(const util::Cli& cli) {
  const size_t nodes = cli.get_uint("nodes", 120);
  const uint64_t seed = cli.get_uint("seed", 1);
  const std::string out = cli.get_string("out", "topology");
  util::Rng rng(seed);
  auto recipe = recipe_for(cli.get_string("recipe", "ropsten"), nodes);
  const graph::Graph g = disc::emerge_topology(recipe, rng);
  graph::write_edge_csv(g, out + ".csv");
  std::ofstream dot(out + ".dot");
  graph::write_dot(g, dot);
  std::cout << "wrote " << out << ".csv and " << out << ".dot (" << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topo::util::Cli cli(argc, argv);
  const std::string mode = cli.get_string("mode", "help");
  try {
    if (mode == "profile") return mode_profile();
    if (mode == "measure") return mode_measure(cli);
    if (mode == "analyze") return mode_analyze(cli);
    if (mode == "pair") return mode_pair(cli);
    if (mode == "export") return mode_export(cli);
  } catch (const std::invalid_argument& e) {
    // MeasureConfig::Builder / ScenarioOptions validation.
    std::cerr << "invalid parameters: " << e.what() << "\n";
    return 2;
  }
  std::cout << "toposhot_cli --mode=profile|measure|analyze|pair|export\n"
               "  common: --seed=N --nodes=N --recipe=ropsten|rinkeby|goerli\n"
               "          --strategy=toposhot|dethna|txprobe (measurement strategy seam)\n"
               "          --batch-window=SECONDS (per-link delivery batching; 0 disables,\n"
               "          results are byte-identical either way)\n"
               "  measure: --group=K --repetitions=R --threads=N --shards=S "
               "--metrics-out=PATH\n"
               "           --fork-worlds=BOOL (default true: shard replicas fork one "
               "warmed base world)\n"
               "           --fault-loss=P --fault-churn=RATE --retries=R "
               "(deterministic fault injection + re-measurement)\n"
               "           --trace-out=PATH --trace-capacity=N --diagnostics "
               "(causal spans + per-cause verdict breakdown)\n"
               "  pair:    --a=I --b=J --metrics-out=PATH --trace-out=PATH "
               "--trace-capacity=N\n"
               "  export:  --out=PATH\n";
  return mode == "help" ? 0 : 2;
}
