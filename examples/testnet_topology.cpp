// Uncover a full testnet topology, the paper's §6.2 workflow:
//
//   1. a Ropsten-like overlay emerges from discovery + dialing;
//   2. pre-processing filters future-forwarders and unresponsive nodes;
//   3. the two-round parallel schedule measures every pair;
//   4. the measured graph is validated against ground truth and analyzed
//      (degree distribution, distances, clustering, Louvain communities);
//   5. the edge list is exported as CSV and DOT for external tooling.
//
//   $ ./example_testnet_topology [--nodes=48] [--group=3] [--seed=7]

#include <fstream>
#include <iostream>

#include "core/toposhot.h"
#include "core/validator.h"
#include "disc/emergence.h"
#include "graph/io.h"
#include "graph/louvain.h"
#include "graph/metrics.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 48);
  const size_t group_k = cli.get_uint("group", 3);
  const uint64_t seed = cli.get_uint("seed", 7);

  // 1. Emergent ground-truth topology.
  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph truth = disc::emerge_topology(recipe, rng);
  std::cout << "Emerged testnet: " << truth.num_nodes() << " nodes, " << truth.num_edges()
            << " edges\n";

  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.block_gas_limit = 30 * eth::kTransferGas;
  core::Scenario sc(truth, opt);
  sc.seed_background();
  sc.start_churn(3.0);  // live-network conditions drain probe residue

  // 2. Pre-processing.
  const auto pre = sc.preprocess(sc.default_measure_config());
  std::cout << "Pre-processing excluded " << pre.future_forwarders.size()
            << " future-forwarders and " << pre.unresponsive.size() << " unresponsive nodes\n";

  // 3. Full measurement (union of three passes, the paper's recipe).
  core::MeasureConfig mcfg = sc.default_measure_config();
  mcfg.repetitions = 3;
  const auto report = sc.measure_network(group_k, mcfg);
  std::cout << "Measured " << report.measured.num_edges() << " edges over "
            << report.pairs_tested << " pairs in " << report.iterations << " iterations ("
            << report.sim_seconds << " sim-seconds, " << report.txs_sent << " txs)\n";

  // 4. Validation + analysis.
  const auto pr = core::compare_graphs(truth, report.measured);
  std::cout << "Precision: " << pr.precision() * 100 << "%  Recall: " << pr.recall() * 100
            << "%\n\n";

  const auto d = graph::distance_stats(report.measured);
  std::cout << "Measured-graph analysis:\n"
            << "  diameter " << d.diameter << ", radius " << d.radius << ", center "
            << d.center_size << ", periphery " << d.periphery_size << "\n"
            << "  clustering " << graph::clustering_coefficient(report.measured)
            << ", transitivity " << graph::transitivity(report.measured) << ", assortativity "
            << graph::degree_assortativity(report.measured) << "\n";
  util::Rng lrng(seed + 1);
  const auto comm = graph::louvain(report.measured, lrng);
  std::cout << "  " << comm.count << " communities, modularity " << comm.modularity << "\n";

  // 5. Export.
  graph::write_edge_csv(report.measured, "measured_topology.csv");
  std::ofstream dot("measured_topology.dot");
  graph::write_dot(report.measured, dot);
  std::cout << "\nWrote measured_topology.csv and measured_topology.dot\n";
  return 0;
}
