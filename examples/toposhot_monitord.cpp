// toposhot_monitord — the continuous topology-monitoring daemon
// (docs/MONITORING.md). Emerges a ground-truth testnet topology, then runs
// N epochs of incremental re-measurement while the topology drifts under
// seeded link churn, publishing one versioned snapshot per epoch and
// finally replaying a JSON-RPC query script against the read API:
//
//   toposhot_monitord --nodes=32 --epochs=6 --churn=2 --decay-half-life=4
//       --serve-script=queries.jsonl --serve-out=responses.jsonl
//
// Flags:
//   --nodes=N --seed=S --recipe=ropsten|rinkeby|goerli   world construction
//   --epochs=N              epochs to run (default 4)
//   --epoch-budget=B        pairs re-measured per epoch; 0 = auto
//                           (max(16, 15% of all pairs))
//   --churn=C               expected ground-truth link changes per epoch
//   --decay-half-life=H     confidence half-life in epochs (<=0 disables)
//   --bootstrap=BOOL        epoch 0 measures the full schedule (default true)
//   --group=K --repetitions=R --strategy=toposhot|dethna|txprobe
//   --threads=N --shards=S  forwarded into each epoch's sharded campaign
//   --traffic-churn=R       organic traffic + mining per replica (default 3)
//   --fault-loss=P --fault-churn=RATE --retries=R   per-epoch fault plan
//   --eval-within=W         detection window for the scorecard (default 2)
//   --serve-script=PATH     JSON-RPC requests, one document per line
//                           (objects or batch arrays), replayed after the
//                           final epoch through the MonitorRpcServer
//   --serve-out=PATH        responses, one line per request line (default
//                           stdout); an all-notification batch yields an
//                           empty line so request/response lines align
//   --snapshot-out=PATH     final published snapshot as JSON
//   --metrics-out=PATH      the monitor's metrics registry as JSON
//   --prom-out=PATH         the registry as Prometheus text exposition
//   --log-out=PATH          the structured event log as JSON lines
//   --log-level=LVL         event-log threshold: debug|info|warn|error
//                           (default info)
//   --trace-out=PATH        per-epoch span trace (Chrome trace-event JSON)
//
// Determinism: snapshot/diff/status documents (and therefore --serve-out
// and --snapshot-out) are byte-identical at any --threads width and on
// either event-queue backend; --metrics-out and --prom-out hold only
// shard-invariant monitor.*/obs.* series and share that contract.
// --log-out and the topo_getHealth ring stamp sim time only, so they are
// thread/backend-invariant too but, like --trace-out, depend on --shards.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "disc/emergence.h"
#include "graph/graph.h"
#include "monitor/monitor.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "rpc/monitor_rpc.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace topo;

disc::EmergenceConfig recipe_for(const std::string& name, size_t nodes) {
  if (name == "rinkeby") return disc::rinkeby_like(nodes);
  if (name == "goerli") return disc::goerli_like(nodes);
  return disc::ropsten_like(nodes);
}

core::StrategyKind strategy_from(const util::Cli& cli) {
  const std::string name =
      cli.get_choice("strategy", "toposhot", {"toposhot", "dethna", "txprobe"});
  core::StrategyKind kind = core::StrategyKind::kToposhot;
  core::strategy_from_name(name, kind);
  return kind;
}

/// Replays --serve-script line by line through the read API; writes one
/// response line per request line. Returns false on I/O failure only —
/// error *responses* are part of the replayed conversation.
bool replay_script(rpc::MonitorRpcServer& server, const std::string& script_path,
                   const std::string& out_path) {
  std::ifstream in(script_path);
  if (!in) {
    std::cerr << "failed to read " << script_path << "\n";
    return false;
  }
  std::ostringstream replies;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are not requests
    replies << server.handle(line) << "\n";
  }
  if (out_path.empty()) {
    std::cout << replies.str();
    return true;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return false;
  }
  out << replies.str();
  std::cout << "responses written to " << out_path << "\n";
  return true;
}

int run(const util::Cli& cli) {
  const size_t nodes = cli.get_uint("nodes", 32);
  const uint64_t seed = cli.get_uint("seed", 1);
  const uint64_t epochs = cli.get_uint("epochs", 4);
  const uint64_t within = cli.get_uint("eval-within", 2);

  util::Rng rng(seed);
  auto recipe = recipe_for(cli.get_string("recipe", "ropsten"), nodes);
  graph::Graph truth = disc::emerge_topology(recipe, rng);

  core::ScenarioOptions wopt;
  wopt.seed = seed;
  // Same world shaping as toposhot_cli's measure mode: a slow mining drain
  // (via the organic-churn option below) against a small block budget keeps
  // pool occupancy in the regime where eviction probes resolve crisply.
  wopt.block_gas_limit = 30 * eth::kTransferGas;
  core::MeasureConfig cfg =
      core::MeasureConfig::Builder(core::Scenario(truth, wopt).default_measure_config())
          .repetitions(cli.get_uint("repetitions", 3))
          .inconclusive_retries(cli.get_uint("retries", 0))
          .build();

  monitor::MonitorOptions mopt;
  mopt.epoch_budget = cli.get_uint("epoch-budget", 0);
  mopt.churn_per_epoch = cli.get_double("churn", 2.0);
  mopt.decay_half_life = cli.get_double("decay-half-life", 4.0);
  mopt.bootstrap_full = cli.get_bool("bootstrap", true);
  mopt.collect_spans = !cli.get_string("trace-out", "").empty();
  mopt.group_k = cli.get_uint("group", 3);
  mopt.strategy = strategy_from(cli);
  mopt.threads = cli.get_uint("threads", 1);
  mopt.shards = cli.get_uint("shards", 0);
  mopt.traffic_churn_rate = cli.get_double("traffic-churn", 3.0);
  const double loss = cli.get_double("fault-loss", 0.0);
  mopt.fault_plan.drop_tx = loss;
  mopt.fault_plan.drop_announce = loss;
  mopt.fault_plan.drop_get_tx = loss;
  mopt.fault_plan.churn_rate = cli.get_double("fault-churn", 0.0);
  mopt.fault_plan.crash_fraction = 0.5;

  monitor::TopologyMonitor mon(std::move(truth), wopt, cfg, mopt);

  util::LogLevel log_level = util::LogLevel::kInfo;
  if (!obs::log_level_from_name(
          cli.get_choice("log-level", "info", {"debug", "info", "warn", "error"}),
          log_level)) {
    log_level = util::LogLevel::kInfo;
  }
  mon.event_log().set_threshold(log_level);

  uint64_t injected_total = 0;
  bool trace_drop_warned = false;
  for (uint64_t e = 0; e < epochs; ++e) {
    const auto res = mon.run_epoch();
    injected_total += res.changes_injected;
    const auto health = mon.health();
    std::cout << "epoch " << res.epoch << ": measured " << res.pairs_selected
              << " pairs, " << res.changes_injected << " drift changes, "
              << res.hints << " hinted entries, " << res.flips
              << " verdict flips -> version " << res.snapshot->version << "\n";
    std::cout << "  health: " << monitor::health_state_name(health->state) << " ("
              << health->reason << ")\n";
    if (res.trace_dropped > 0 && !trace_drop_warned) {
      trace_drop_warned = true;
      std::cerr << "warning: campaign trace ring dropped " << res.trace_dropped
                << " events in epoch " << res.epoch
                << " (older events overwritten; raise the ring capacity to keep "
                   "full traces)\n";
    }
  }

  const monitor::MonitorStatus status = mon.status();
  const monitor::TrackingEvaluation eval = monitor::evaluate_tracking(mon, within);
  const double reprobe = mon.pairs_total() == 0
                             ? 0.0
                             : static_cast<double>(mon.effective_epoch_budget()) /
                                   static_cast<double>(mon.pairs_total());
  util::Table table({"Metric", "Value"});
  table.add_row({"nodes / pairs", util::fmt(status.nodes) + " / " + util::fmt(status.pairs_total)});
  table.add_row({"epochs / versions", util::fmt(status.epoch + 1) + " / " + util::fmt(status.versions)});
  table.add_row({"epoch budget", util::fmt(mon.effective_epoch_budget()) + " (" +
                                     util::fmt_pct(reprobe) + " of pairs)"});
  table.add_row({"coverage", util::fmt_pct(status.coverage)});
  table.add_row({"links connected", util::fmt(status.links_connected)});
  table.add_row({"still inconclusive", util::fmt(status.links_inconclusive)});
  table.add_row({"drift injected", util::fmt(injected_total)});
  table.add_row({"verdict flips seen", util::fmt(status.changes_observed)});
  table.add_row({"detected within " + util::fmt(within) + " epochs",
                 util::fmt(eval.detected) + " / " + util::fmt(eval.scoreable) + " (" +
                     util::fmt_pct(eval.detection_rate()) + ")"});
  table.add_row({"mean detection latency", util::fmt(eval.mean_latency_epochs, 2) + " epochs"});
  table.add_row({"health", monitor::health_state_name(mon.health()->state)});
  table.print(std::cout);

  bool ok = true;
  rpc::MonitorRpcServer server(&mon);
  const std::string script = cli.get_string("serve-script", "");
  if (!script.empty()) {
    ok = replay_script(server, script, cli.get_string("serve-out", "")) && ok;
  }
  const std::string snapshot_out = cli.get_string("snapshot-out", "");
  if (!snapshot_out.empty()) {
    const auto snap = mon.latest();
    if (snap == nullptr ||
        !obs::write_json_file(snapshot_out, monitor::snapshot_to_json(*snap))) {
      std::cerr << "failed to write " << snapshot_out << "\n";
      ok = false;
    } else {
      std::cout << "snapshot written to " << snapshot_out << "\n";
    }
  }
  const std::string metrics_out = cli.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    if (!obs::write_json_file(metrics_out, obs::snapshot_to_json(mon.metrics().snapshot()))) {
      std::cerr << "failed to write " << metrics_out << "\n";
      ok = false;
    } else {
      std::cout << "metrics written to " << metrics_out << "\n";
    }
  }
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty()) {
    if (!obs::write_json_file(trace_out,
                              obs::spans_to_chrome_json(mon.tracer().spans()))) {
      std::cerr << "failed to write " << trace_out << "\n";
      ok = false;
    } else {
      std::cout << "trace written to " << trace_out << "\n";
    }
  }
  const std::string prom_out = cli.get_string("prom-out", "");
  if (!prom_out.empty()) {
    std::ofstream out(prom_out, std::ios::binary);
    if (!out || !(out << *mon.metrics_exposition())) {
      std::cerr << "failed to write " << prom_out << "\n";
      ok = false;
    } else {
      std::cout << "exposition written to " << prom_out << "\n";
    }
  }
  // Written last so RPC errors from the --serve-script replay land in it.
  const std::string log_out = cli.get_string("log-out", "");
  if (!log_out.empty()) {
    std::ofstream out(log_out, std::ios::binary);
    if (!out || !(out << mon.event_log().to_jsonl())) {
      std::cerr << "failed to write " << log_out << "\n";
      ok = false;
    } else {
      std::cout << "event log written to " << log_out << "\n";
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  topo::util::Cli cli(argc, argv);
  if (cli.get_bool("help", false)) {
    std::cout
        << "toposhot_monitord: continuous topology monitoring over a drifting testnet\n"
           "  world:   --nodes=N --seed=S --recipe=ropsten|rinkeby|goerli\n"
           "  epochs:  --epochs=N --epoch-budget=B (0 = auto) --churn=C\n"
           "           --decay-half-life=H --bootstrap=BOOL --eval-within=W\n"
           "  probe:   --group=K --repetitions=R --strategy=toposhot|dethna|txprobe\n"
           "           --threads=N --shards=S --traffic-churn=R\n"
           "           --fault-loss=P --fault-churn=RATE --retries=R\n"
           "  output:  --serve-script=PATH --serve-out=PATH --snapshot-out=PATH\n"
           "           --metrics-out=PATH --prom-out=PATH --trace-out=PATH\n"
           "           --log-out=PATH --log-level=debug|info|warn|error\n";
    return 0;
  }
  try {
    return run(cli);
  } catch (const std::invalid_argument& e) {
    std::cerr << "invalid parameters: " << e.what() << "\n";
    return 2;
  }
}
