// Profile an Ethereum client's mempool policy black-box — the paper's §5.1
// pre-study that decides whether a client is measurable at all, and with
// which R/U parameters TopoShot must run.
//
//   $ ./example_client_profiling

#include <iostream>

#include "core/profiler.h"

int main() {
  using namespace topo;
  core::ClientProfiler profiler;

  std::cout << "Black-box mempool profiles (paper Table 3):\n\n";
  for (const auto kind : mempool::kAllClients) {
    const auto& profile = mempool::profile_for(kind);
    const auto est = profiler.profile(kind);
    std::cout << profile.name << "\n"
              << "  replacement bump R: " << est.replace_bump_fraction * 100 << "%\n"
              << "  futures per account U: "
              << (est.futures_unbounded ? std::string("unbounded")
                                        : std::to_string(est.max_futures_per_account))
              << "\n"
              << "  min pending for eviction P: " << est.min_pending_for_eviction << "\n"
              << "  capacity L: " << est.capacity << "\n"
              << "  measurable by TopoShot: " << (est.measurable ? "yes" : "NO") << "\n\n";
  }

  // A custom deployment: profile it before measuring (the §5.2.3
  // pre-processing rationale).
  mempool::MempoolPolicy custom;
  custom.replace_bump_bp = 2000;  // 20% bump
  custom.capacity = 3000;
  custom.future_cap = 512;
  custom.max_futures_per_account = 64;
  const auto est = profiler.profile(custom);
  std::cout << "Custom node: R=" << est.replace_bump_fraction * 100 << "% U="
            << est.max_futures_per_account << " L=" << est.capacity
            << " -> configure TopoShot's price ladder around a " << est.replace_bump_fraction * 100
            << "% bump and floods of ~" << est.capacity << " futures.\n";
  return 0;
}
