// Ethically measure a critical sub-network of a mainnet-like overlay —
// the paper's §6.3 workflow:
//
//   1. discover service backend nodes (relays, mining pools) by matching
//      client-version strings;
//   2. measure the links among a handful of critical nodes with the
//      non-interference-extended TopoShot (low Y0, a-posteriori V1/V2
//      verification) while the chain keeps mining full blocks;
//   3. report the connection matrix and the verification outcome.
//
//   $ ./example_mainnet_critical [--nodes=120] [--seed=63]

#include <iostream>

#include "core/mainnet.h"
#include "core/gas_estimator.h"
#include "core/noninterference.h"
#include "core/session.h"
#include "core/toposhot.h"
#include "p2p/node.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 120);
  const uint64_t seed = cli.get_uint("seed", 63);

  util::Rng rng(seed);
  const auto census = core::paper_service_census(0.08);
  const auto world = core::build_mainnet_world(n, census, 10, rng);

  // Step 1: discovery.
  std::cout << "Service discovery (web3_clientVersion matching):\n";
  std::vector<std::pair<std::string, size_t>> picks;
  for (const auto& svc : {"SrvR1", "SrvR2", "SrvM1", "SrvM2"}) {
    const auto nodes = core::discover_service_nodes(world, svc);
    std::cout << "  " << svc << ": " << nodes.size() << " backend node(s)\n";
    if (!nodes.empty()) picks.emplace_back(svc, nodes.front());
    if (std::string(svc) == "SrvR1" && nodes.size() > 1) picks.emplace_back(svc, nodes[1]);
  }

  // Step 2: wire the world, keep it busy, measure pairwise.
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.background_price_lo = eth::gwei(1.0);
  opt.background_price_hi = eth::gwei(40.0);
  opt.block_gas_limit = 8 * eth::kTransferGas;
  core::Scenario sc(world.topology, opt);
  sc.seed_background();
  sc.start_churn(0.65);

  // Let the fee market settle, then choose Y0 the §6.3 way: under the
  // inclusion floor of recent blocks but high enough to live in a full
  // pool (the pool median).
  sc.sim().run_until(sc.sim().now() + 60.0);
  core::MeasurementSession session(sc);
  session.config().price_Y = core::estimate_price_Y0(
      sc.m().view(), core::min_included_price(sc.chain()));  // Y0 far below organic prices
  const double t1 = sc.sim().now();

  std::cout << "\nPairwise measurements among " << picks.size() << " critical nodes:\n";
  for (size_t i = 0; i < picks.size(); ++i) {
    for (size_t j = i + 1; j < picks.size(); ++j) {
      const auto r = session
                         .one_link(sc.targets()[picks[i].second], sc.targets()[picks[j].second])
                         .value;
      const bool truth = world.topology.has_edge(
          static_cast<graph::NodeId>(picks[i].second),
          static_cast<graph::NodeId>(picks[j].second));
      std::cout << "  " << picks[i].first << " <-> " << picks[j].first << ": "
                << (r.connected ? "CONNECTED" : "not connected")
                << "  (ground truth: " << (truth ? "linked" : "not linked") << ")\n";
    }
  }
  const double t2 = sc.sim().now();

  // Step 3: verify non-interference a posteriori.
  sc.sim().run_until(t2 + 30.0);
  const auto check =
      core::verify_noninterference(sc.chain(), t1, t2, 0.0, session.config().price_Y);
  std::cout << "\nNon-interference: V1 " << (check.v1_blocks_full ? "PASS" : "FAIL") << ", V2 "
            << (check.v2_prices_above_y0 ? "PASS" : "FAIL") << " over "
            << check.blocks_inspected << " blocks -> "
            << (check.holds() ? "the measurement did not interfere with the chain"
                              : "non-interference could NOT be established")
            << "\n";
  return 0;
}
