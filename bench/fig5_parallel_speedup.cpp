// Reproduces paper Fig. 5: "Speedup of TopoShot's parallel measurement over
// the serial measurement."
//
// §6.1 measures a group of ~100 nodes (~4950 candidate pairs) with varying
// group size K and reports measurement time. K = 1 is the serial baseline
// (one measureOneLink per pair); larger K runs the two-round parallel
// schedule. Reported times are simulation seconds — the same quantity the
// paper reports as wall-clock, since everything in this reproduction runs
// in simulated network time. Expect time to fall by about an order of
// magnitude by K = 30.
//
// Observability: --trace-out=PATH writes the causal spans of every K run
// (tid = sweep row) as Chrome trace-event JSON; --trace-capacity=N sizes
// each scenario's tx-event ring. The --out artifact carries an "event_mix"
// object (per-kind simulator dispatch counts summed over the sweep) that
// scripts/bench_compare.py gates against the committed baseline.

#include <map>

#include "bench_common.h"
#include "exec/worker_pool.h"
#include "graph/generators.h"
#include "obs/span.h"
#include "rpc/json.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 48);
  const uint64_t seed = cli.get_uint("seed", 5);
  const size_t threads = cli.get_uint("threads", 1);
  const bool run_serial = cli.get_bool("serial", true);
  const std::string out = cli.get_string("out", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  const size_t trace_capacity =
      cli.get_uint("trace-capacity", obs::MetricsRegistry::kDefaultTraceCapacity);
  bench::banner("Parallel measurement speedup", "Figure 5 (§6.1)");

  util::Rng rng(seed);
  const graph::Graph g = graph::erdos_renyi_gnm(n, n * 5, rng);
  const size_t pairs = n * (n - 1) / 2;
  std::cout << "Measuring all " << pairs << " pairs of a " << n << "-node group.\n\n";

  util::Table table({"K (group size)", "Iterations", "Sim time (s)", "Speedup", "Recall",
                     "Precision"});
  double serial_time = 0.0;

  auto run_with_k = [&](size_t k, obs::SpanTracer* tracer) {
    core::ScenarioOptions opt = bench::scaled_options(seed + k);
    // Live-network churn keeps pools fresh across the many iterations
    // (residue from prior probes drains by mining, as on the real testnets).
    opt.block_gas_limit = 30 * eth::kTransferGas;
    opt.trace_capacity = trace_capacity;
    core::Scenario sc(g, opt);
    sc.seed_background();
    sc.start_churn(3.0);
    sc.set_span_tracer(tracer);
    const double t0 = sc.sim().now();
    graph::Graph measured(g.num_nodes());
    size_t iterations = 0;
    if (k <= 1) {
      // Serial baseline: one measureOneLink per pair, via the session.
      core::MeasurementSession session(sc);
      for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
        for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v) {
          ++iterations;
          const auto r = session.one_link(sc.targets()[u], sc.targets()[v]).value;
          if (r.connected) measured.add_edge(u, v);
        }
      }
    } else {
      const auto report = sc.measure_network(k, sc.default_measure_config());
      measured = report.measured;
      iterations = report.iterations;
    }
    const double elapsed = sc.sim().now() - t0;
    const auto pr = core::compare_graphs(g, measured);
    return std::tuple{elapsed, iterations, pr, sc.snapshot_metrics()};
  };

  std::vector<size_t> ks;
  if (run_serial) ks.push_back(1);
  for (size_t k : {2u, 4u, 8u, 12u, 16u}) {
    if (k < n) ks.push_back(k);
  }
  // Each K runs against its own private scenario, so the sweep itself is
  // embarrassingly parallel; rows are stored by index and printed in order.
  // With --trace-out each run records into its own tracer (tid = row index)
  // — never shared across workers — and the merged export is sorted by
  // stable span ids, so it is identical at any --threads.
  std::vector<obs::SpanTracer> tracers;
  if (!trace_out.empty()) {
    tracers.reserve(ks.size());
    for (size_t i = 0; i < ks.size(); ++i) tracers.emplace_back(static_cast<uint32_t>(i));
  }
  std::vector<std::tuple<double, size_t, core::PrecisionRecall, obs::MetricsSnapshot>>
      results(ks.size());
  const exec::WorkerPool pool(threads);
  pool.run(ks.size(), [&](size_t i) {
    results[i] = run_with_k(ks[i], trace_out.empty() ? nullptr : &tracers[i]);
  });
  rpc::JsonArray rows;
  std::map<std::string, double> event_mix;
  for (size_t i = 0; i < ks.size(); ++i) {
    const auto& [elapsed, iterations, pr, metrics] = results[i];
    if (i == 0) serial_time = elapsed;
    table.add_row({util::fmt(ks[i]), util::fmt(iterations), util::fmt(elapsed, 0),
                   util::fmt(serial_time / elapsed, 1) + "x", util::fmt_pct(pr.recall()),
                   util::fmt_pct(pr.precision())});
    rows.push_back(rpc::Json(rpc::JsonObject{
        {"k", rpc::Json(static_cast<uint64_t>(ks[i]))},
        {"iterations", rpc::Json(static_cast<uint64_t>(iterations))},
        {"sim_time", rpc::Json(elapsed)},
        {"speedup", rpc::Json(serial_time / elapsed)},
        {"recall", rpc::Json(pr.recall())},
        {"precision", rpc::Json(pr.precision())},
    }));
    for (const auto& [name, v] : metrics.gauges) {
      if (name.rfind("sim.dispatch.", 0) == 0) {
        event_mix[name.substr(sizeof("sim.dispatch.") - 1)] += v;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: measurement time drops roughly 10x by K = 30 relative\n"
               "to serial; precision stays 100%. Iterations follow N/K + log2(K).\n";
  if (!trace_out.empty()) {
    std::vector<obs::Span> spans;
    for (const obs::SpanTracer& t : tracers) {
      spans.insert(spans.end(), t.spans().begin(), t.spans().end());
    }
    if (obs::write_json_file(trace_out, obs::spans_to_chrome_json(std::move(spans)))) {
      std::cout << "[trace: " << trace_out << "]\n";
    } else {
      std::cerr << "failed to write " << trace_out << "\n";
      return 1;
    }
  }
  if (!out.empty()) {
    rpc::JsonObject mix;
    for (const auto& [name, v] : event_mix) mix[name] = rpc::Json(v);
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("fig5_parallel_speedup")},
        {"nodes", rpc::Json(static_cast<uint64_t>(n))},
        {"seed", rpc::Json(seed)},
        {"event_mix", rpc::Json(std::move(mix))},
        {"rows", rpc::Json(std::move(rows))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return 0;
}
