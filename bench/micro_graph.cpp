// google-benchmark microbenchmarks for the graph-analytics substrate.

#include <benchmark/benchmark.h>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/louvain.h"
#include "graph/metrics.h"

namespace {

using namespace topo;

graph::Graph ropsten_sized() {
  util::Rng rng(1);
  return graph::erdos_renyi_gnm(588, 7496, rng);
}

void BM_DistanceStats(benchmark::State& state) {
  const auto g = ropsten_sized();
  for (auto _ : state) benchmark::DoNotOptimize(graph::distance_stats(g));
}
BENCHMARK(BM_DistanceStats);

void BM_ClusteringCoefficient(benchmark::State& state) {
  const auto g = ropsten_sized();
  for (auto _ : state) benchmark::DoNotOptimize(graph::clustering_coefficient(g));
}
BENCHMARK(BM_ClusteringCoefficient);

void BM_Transitivity(benchmark::State& state) {
  const auto g = ropsten_sized();
  for (auto _ : state) benchmark::DoNotOptimize(graph::transitivity(g));
}
BENCHMARK(BM_Transitivity);

void BM_Assortativity(benchmark::State& state) {
  const auto g = ropsten_sized();
  for (auto _ : state) benchmark::DoNotOptimize(graph::degree_assortativity(g));
}
BENCHMARK(BM_Assortativity);

void BM_Louvain(benchmark::State& state) {
  const auto g = ropsten_sized();
  for (auto _ : state) {
    util::Rng rng(static_cast<uint64_t>(state.iterations()));
    benchmark::DoNotOptimize(graph::louvain(g, rng));
  }
}
BENCHMARK(BM_Louvain);

void BM_MaximalCliques(benchmark::State& state) {
  util::Rng rng(2);
  const auto g = graph::erdos_renyi_gnm(200, 2000, rng);
  for (auto _ : state) benchmark::DoNotOptimize(graph::count_maximal_cliques(g, 200'000));
}
BENCHMARK(BM_MaximalCliques);

void BM_GenerateER(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(graph::erdos_renyi_gnm(588, 7496, rng));
}
BENCHMARK(BM_GenerateER);

void BM_GenerateConfigurationModel(benchmark::State& state) {
  util::Rng rng(4);
  const auto base = ropsten_sized();
  const auto degrees = graph::degree_sequence(base);
  for (auto _ : state) benchmark::DoNotOptimize(graph::configuration_model(degrees, rng));
}
BENCHMARK(BM_GenerateConfigurationModel);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(graph::barabasi_albert(588, 13, rng));
}
BENCHMARK(BM_GenerateBarabasiAlbert);

}  // namespace

BENCHMARK_MAIN();
