// Reproduces the Ropsten testnet study: Fig. 6 (degree distribution),
// Table 4 (graph properties vs ER/CM/BA), and Table 5 (communities).

#include "topology_study.h"

int main(int argc, char** argv) {
  topo::bench::TestnetStudyConfig cfg;
  cfg.name = "Ropsten";
  cfg.recipe = topo::disc::ropsten_like(588);
  cfg.measured_nodes = 72;
  cfg.group_k = 3;
  cfg.seed = 588;
  cfg.paper_reference =
      "Figure 6, Table 4, Table 5 (§6.2.1). Paper: n=588, m=7496, diameter 5, "
      "radius 3, clustering 0.207, transitivity 0.127, assortativity -0.152, "
      "modularity 0.0605 (lower than ER/CM/BA), 7 communities.";
  return topo::bench::run_testnet_study(cfg, argc, argv);
}
