// Tracking quality of the continuous topology monitor (docs/MONITORING.md).
//
// A one-shot campaign has no notion of "keeping up"; the TopologyMonitor's
// whole value is detecting ground-truth link changes quickly while
// re-probing only a budgeted fraction of pairs per epoch. This bench sweeps
// the drift rate and reports, per churn level:
//
//   detect_within_2 — fraction of injected changes reflected in a published
//                     snapshot within 2 epochs (the ISSUE acceptance bar
//                     holds the default config to >= 0.9)
//   coverage        — pairs tracked / pairs total at the final epoch
//   reprobe         — epoch budget as a fraction of all pairs (< 0.20)
//   inconclusive    — links still unresolved at the final epoch
//   epoch sim-s     — mean post-bootstrap epoch makespan (sim seconds),
//                     from the monitor's EpochStats ring
//   utilization     — mean post-bootstrap budget utilization (forced
//                     demand / budget; >= 1 means saturation)
//
// The --out artifact uses a "monitor" document shape: one cell per churn
// level. detect_within_2 and coverage gate as one-sided floors by
// scripts/bench_compare.py against BENCH_baseline.json; epoch_sim_seconds
// and budget_utilization gate TWO-SIDED — the runs are deterministic, so
// cost moving in either direction is a behavior change, not noise.

#include "bench_common.h"
#include "graph/generators.h"
#include "monitor/monitor.h"
#include "rpc/json.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 1);
  const size_t nodes = cli.get_uint("nodes", 24);
  const uint64_t epochs = cli.get_uint("epochs", 6);
  const uint64_t within = cli.get_uint("eval-within", 2);
  const std::string out = cli.get_string("out", "");
  bench::banner("Monitor tracking quality",
                "continuous re-measurement under churn (docs/MONITORING.md)");

  std::cout << "TopologyMonitor over a drifting " << nodes << "-node testnet, "
            << epochs << " epochs per churn level, default (auto) budget.\n\n";

  util::Table table({"Churn/epoch", "Budget", "Reprobe", "Detected<=" + util::fmt(within),
                     "Coverage", "Inconclusive", "Flips", "Epoch sim-s", "Util"});
  rpc::JsonArray cells;
  bool ok = true;

  for (const double churn : {0.5, 1.0, 2.0, 3.0}) {
    util::Rng rng(seed);
    graph::Graph truth = graph::erdos_renyi_gnm(nodes, nodes * 2, rng);
    core::ScenarioOptions wopt;
    wopt.seed = seed;
    // The measure-regime world (toposhot_monitord defaults): small block
    // budget + organic traffic, where probes resolve crisply.
    wopt.block_gas_limit = 30 * eth::kTransferGas;
    const core::MeasureConfig cfg =
        core::MeasureConfig::Builder(
            core::Scenario(truth, wopt).default_measure_config())
            .repetitions(3)
            .inconclusive_retries(2)
            .build();
    monitor::MonitorOptions mopt;
    mopt.churn_per_epoch = churn;
    mopt.traffic_churn_rate = 3.0;
    monitor::TopologyMonitor mon(std::move(truth), wopt, cfg, mopt);
    mon.run(epochs);

    const monitor::MonitorStatus status = mon.status();
    const monitor::TrackingEvaluation ev = monitor::evaluate_tracking(mon, within);
    const double reprobe = mon.pairs_total() == 0
                               ? 0.0
                               : static_cast<double>(mon.effective_epoch_budget()) /
                                     static_cast<double>(mon.pairs_total());
    // Per-epoch cost from the telemetry ring, bootstrap excluded (epoch 0
    // measures every pair; averaging it in would swamp the steady state).
    double sim_sum = 0.0, util_sum = 0.0;
    size_t post_bootstrap = 0;
    for (const monitor::EpochStats& s : mon.health()->epochs) {
      if (s.epoch == 0) continue;
      sim_sum += s.sim_seconds;
      util_sum += s.budget_utilization;
      ++post_bootstrap;
    }
    const double epoch_sim =
        post_bootstrap == 0 ? 0.0 : sim_sum / static_cast<double>(post_bootstrap);
    const double utilization =
        post_bootstrap == 0 ? 0.0 : util_sum / static_cast<double>(post_bootstrap);
    table.add_row({util::fmt(churn, 1), util::fmt(mon.effective_epoch_budget()),
                   util::fmt_pct(reprobe),
                   util::fmt(ev.detected) + "/" + util::fmt(ev.scoreable) + " (" +
                       util::fmt_pct(ev.detection_rate()) + ")",
                   util::fmt_pct(status.coverage), util::fmt(status.links_inconclusive),
                   util::fmt(status.changes_observed), util::fmt(epoch_sim, 1),
                   util::fmt_pct(utilization)});
    cells.push_back(rpc::Json(rpc::JsonObject{
        {"churn", rpc::Json(churn)},
        {"budget", rpc::Json(static_cast<uint64_t>(mon.effective_epoch_budget()))},
        {"reprobe", rpc::Json(reprobe)},
        {"detect_within_2", rpc::Json(ev.detection_rate())},
        {"coverage", rpc::Json(status.coverage)},
        {"inconclusive", rpc::Json(static_cast<uint64_t>(status.links_inconclusive))},
        {"scoreable", rpc::Json(static_cast<uint64_t>(ev.scoreable))},
        {"epoch_sim_seconds", rpc::Json(epoch_sim)},
        {"budget_utilization", rpc::Json(utilization)},
    }));
    ok = ok && reprobe < 0.20;
  }

  table.print(std::cout);
  std::cout << "\nAcceptance: >= 90% of injected changes detected within " << within
            << " epochs at the\ndefault budget (< 20% of pairs re-probed per epoch); "
               "see docs/MONITORING.md.\n";

  if (!out.empty()) {
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("monitor_tracking")},
        {"seed", rpc::Json(seed)},
        {"nodes", rpc::Json(static_cast<uint64_t>(nodes))},
        {"epochs", rpc::Json(epochs)},
        {"monitor", rpc::Json(std::move(cells))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
