// Reproduces paper Table 7: "Summary of measurement studies on the
// testnets/mainnet" — network size, Ether cost, and duration — plus the
// §6.3 full-mainnet cost extrapolation (> 60 M USD).
//
// Costs come from the CostTracker: only measurement transactions actually
// included by the simulated miners cost Ether; the future floods never do.

#include <limits>

#include "bench_common.h"
#include "graph/generators.h"
#include "core/cost.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 70);
  const size_t nodes = cli.get_uint("nodes", 40);
  bench::banner("Measurement cost and duration summary", "Table 7 (§6.4) + §6.3 extrapolation");

  struct NetRow {
    std::string name;
    disc::EmergenceConfig recipe;
    size_t paper_nodes;
    double paper_ether;
    double paper_hours;
  };
  std::vector<NetRow> rows = {
      {"Ropsten", disc::ropsten_like(nodes), 588, 0.067, 12},
      {"Rinkeby", disc::rinkeby_like(nodes), 446, 2.10, 10},
      {"Goerli", disc::goerli_like(nodes), 1025, 0.62, 20},
  };

  util::Table table({"Network", "Nodes (sim)", "Pairs", "Txs sent", "Txs mined",
                     "Cost (Ether)", "Duration (sim h)", "Paper (Ether, h)"});
  for (auto& row : rows) {
    util::Rng rng(seed + row.paper_nodes);
    auto recipe = row.recipe;
    for (auto& b : recipe.supernode_budgets) b = std::min(b, nodes / 2);
    const graph::Graph g = disc::emerge_topology(recipe, rng);

    core::ScenarioOptions opt = bench::scaled_options(seed + row.paper_nodes);
    opt.block_gas_limit = 20 * eth::kTransferGas;
    core::Scenario sc(g, opt);
    sc.seed_background();
    sc.start_churn(2.0);

    core::MeasurementSession session(sc);
    const double t1 = sc.sim().now();
    const auto report = session.network(3).value;
    const double t2 = sc.sim().now();
    sc.sim().run_until(t2 + 60.0);  // let stragglers mine
    bench::write_metrics_if_requested(cli, sc);

    // Half-open [t1, t2) windows: an upper bound of now() would drop a
    // block stamped exactly at now(); +infinity means "everything after t1".
    const double upper = std::numeric_limits<double>::infinity();
    const eth::Wei wei = sc.costs().wei_spent(sc.chain(), t1, upper);
    const uint64_t mined = sc.costs().included_txs(sc.chain(), t1, upper);
    core::CostModel model;
    table.add_row({row.name, util::fmt(g.num_nodes()), util::fmt(report.pairs_tested),
                   util::fmt(report.txs_sent), util::fmt(mined),
                   util::fmt(model.wei_to_ether(wei), 6), util::fmt(report.sim_seconds / 3600.0, 2),
                   util::fmt(row.paper_ether, 3) + ", " + util::fmt(row.paper_hours, 0)});
  }
  table.print(std::cout);

  // §6.3 extrapolation at the paper's own per-pair price.
  core::CostModel model;
  model.eth_usd = 2690.0;
  std::cout << "\nFull-mainnet extrapolation (paper §6.3, per-pair cost 7.1e-4 Ether,\n"
               "n = 8000 nodes):\n"
            << "  total Ether: " << util::fmt(model.full_network_ether(8000, 7.1e-4), 0) << "\n"
            << "  total USD:   " << util::fmt(model.full_network_usd(8000, 7.1e-4) / 1e6, 1)
            << " million (paper: > 60 million USD)\n"
            << "  per pair:    " << util::fmt(7.1e-4 * model.eth_usd, 2) << " USD (paper: 1.91)\n"
            << "\nMainnet sub-study cost (paper): 0.05858 Ether for 9 nodes in 0.5 h.\n";
  return 0;
}
