// Experimental reproduction of the W1 row of the paper's Table 1 (Kim et
// al., IMC'18): a *node census* by supernode crawling — discover every
// reachable node through the discovery protocol and collect its handshake
// metadata. W1 profiles nodes; it says nothing about links, which is the
// gap TopoShot (W3) fills.
//
// The crawler bootstraps one discv4 endpoint, runs iterative lookups toward
// random targets until discovery saturates, then "handshakes" each
// discovered node for its client version (the Table 3 deployment mix).

#include <map>
#include <set>

#include "bench_common.h"
#include "disc/discv4.h"
#include "mempool/client_profile.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 250);
  const uint64_t seed = cli.get_uint("seed", 26);
  bench::banner("Supernode node census (W1 baseline)", "§4 Table 1 (Kim et al.)");

  // The network: discv4 endpoints plus a client assignment drawn from the
  // paper's mainnet deployment shares (Table 3 column 2).
  sim::Simulator sim;
  disc::DiscV4Net net(&sim, util::Rng(seed));
  for (size_t i = 0; i < n; ++i) net.add_node();
  util::Rng assign(seed + 1);
  std::vector<mempool::ClientKind> client_of(n);
  for (size_t i = 0; i < n; ++i) {
    const double roll = assign.uniform();
    double acc = 0.0;
    client_of[i] = mempool::ClientKind::kGeth;
    for (const auto kind : mempool::kAllClients) {
      acc += mempool::profile_for(kind).mainnet_share;
      if (roll < acc) {
        client_of[i] = kind;
        break;
      }
    }
  }
  net.converge(90.0);

  // The crawler is one more endpoint; it bootstraps and keeps looking up
  // random targets, harvesting every node id it hears about.
  const uint32_t crawler = net.add_node();
  net.node(crawler).bootstrap(0, net.node(0).id());
  sim.run_until(sim.now() + 5.0);

  std::set<uint32_t> discovered;
  size_t lookups = 0;
  util::Rng targets(seed + 2);
  for (int round = 0; round < 60; ++round) {
    ++lookups;
    net.node(crawler).lookup(disc::random_id(targets), [&](std::vector<uint32_t> nodes) {
      for (const auto v : nodes) discovered.insert(v);
    });
    sim.run_until(sim.now() + 2.0);
    for (const auto e : net.node(crawler).table_entries()) discovered.insert(e);
  }
  discovered.erase(crawler);

  std::cout << "Census: discovered " << discovered.size() << " of " << n << " nodes ("
            << util::fmt_pct(static_cast<double>(discovered.size()) / n) << ") with " << lookups
            << " lookups / " << net.datagrams() << " datagrams.\n\n";

  // Handshake census: client distribution among discovered nodes.
  std::map<mempool::ClientKind, size_t> census;
  for (const auto v : discovered) ++census[client_of[v]];
  util::Table table({"Client", "Discovered", "Share", "Paper mainnet share"});
  for (const auto kind : mempool::kAllClients) {
    const size_t count = census.count(kind) ? census[kind] : 0;
    table.add_row({mempool::client_name(kind), util::fmt(count),
                   util::fmt_pct(static_cast<double>(count) / discovered.size()),
                   util::fmt_pct(mempool::profile_for(kind).mainnet_share, 2)});
  }
  table.print(std::cout);

  std::cout << "\nW1 ends here: a census knows *who* is on the network (and that ~83% run\n"
               "Geth) but nothing about who talks to whom — the blockchain overlay's\n"
               "active links remain hidden until TopoShot's W3 probe (Table 1).\n";
  return 0;
}
