// google-benchmark microbenchmarks for the mempool substrate: admission,
// replacement, eviction floods, maintenance truncation, and block packing.

#include <benchmark/benchmark.h>

#include "eth/miner.h"
#include "mempool/client_profile.h"
#include "mempool/mempool.h"
#include "util/rng.h"

namespace {

using namespace topo;

mempool::MempoolPolicy policy_with_capacity(size_t capacity) {
  mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
  p.capacity = capacity;
  p.future_cap = capacity / 5;
  return p;
}

void BM_MempoolAddPending(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  eth::MapState chain;
  eth::TxFactory f;
  for (auto _ : state) {
    state.PauseTiming();
    mempool::Mempool pool(policy_with_capacity(capacity), &chain);
    state.ResumeTiming();
    for (size_t i = 0; i < capacity; ++i) {
      benchmark::DoNotOptimize(pool.add(f.make(1 + i, 0, 100 + i), 0.0));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * capacity);
}
BENCHMARK(BM_MempoolAddPending)->Arg(512)->Arg(5120);

void BM_MempoolReplacementChain(benchmark::State& state) {
  eth::MapState chain;
  eth::TxFactory f;
  mempool::Mempool pool(policy_with_capacity(512), &chain);
  eth::Wei price = 1000;
  pool.add(f.make(1, 0, price), 0.0);
  for (auto _ : state) {
    price = price + price / 10 + 1;  // always above the bump
    benchmark::DoNotOptimize(pool.add(f.make(1, 0, price), 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MempoolReplacementChain);

void BM_MempoolEvictionFlood(benchmark::State& state) {
  // The TopoShot flood: Z futures against a full pool of cheap pendings.
  const size_t capacity = static_cast<size_t>(state.range(0));
  eth::MapState chain;
  eth::TxFactory f;
  for (auto _ : state) {
    state.PauseTiming();
    mempool::Mempool pool(policy_with_capacity(capacity), &chain);
    for (size_t i = 0; i < capacity; ++i) pool.add(f.make(1 + i, 0, 100), 0.0);
    state.ResumeTiming();
    for (size_t i = 0; i < capacity; ++i) {
      benchmark::DoNotOptimize(pool.add(f.make(100000 + i, 1, 10'000), 0.0));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * capacity);
}
BENCHMARK(BM_MempoolEvictionFlood)->Arg(512)->Arg(5120);

void BM_MempoolMaintainTruncate(benchmark::State& state) {
  eth::MapState chain;
  eth::TxFactory f;
  const size_t capacity = 5120;
  for (auto _ : state) {
    state.PauseTiming();
    mempool::Mempool pool(policy_with_capacity(capacity), &chain);
    for (size_t i = 0; i < capacity; ++i) pool.add(f.make(1 + i, 1, 100 + i), 0.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.maintain(0.0));
  }
}
BENCHMARK(BM_MempoolMaintainTruncate);

void BM_MinerPackBlock(benchmark::State& state) {
  eth::MapState chain;
  eth::TxFactory f;
  util::Rng rng(1);
  std::vector<eth::Transaction> candidates;
  for (size_t i = 0; i < 4096; ++i) {
    candidates.push_back(f.make(1 + rng.index(512), rng.index(4), 100 + rng.index(10'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eth::pack_block(candidates, chain, 8'000'000, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MinerPackBlock);

}  // namespace

BENCHMARK_MAIN();
