// Reproduces the mainnet critical-subnetwork study (§6.3): Table 6
// ("Connections among critical nodes").
//
// A mainnet-like overlay is built with labelled service backends (relays
// SrvR1/SrvR2, pools SrvM1..SrvM6) whose biased neighbor selection follows
// the paper's explanation (b): critical services prioritize links to other
// critical nodes; SrvR2 behaves like a vanilla client. Step 1 discovers the
// backend nodes by client-version matching; step 2 measures all pairwise
// links among 9 selected critical nodes with the non-interference-extended
// TopoShot (conditions V1/V2 verified a posteriori) while the chain mines
// full blocks under organic load.

#include <map>

#include "bench_common.h"
#include "graph/generators.h"
#include "core/mainnet.h"
#include "core/gas_estimator.h"
#include "core/noninterference.h"
#include "p2p/node.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 160);
  const uint64_t seed = cli.get_uint("seed", 63);
  bench::banner("Mainnet critical-subnetwork measurement", "Table 6 (§6.3)");

  util::Rng rng(seed);
  const auto census = core::paper_service_census(0.12);  // scaled with the network
  const auto world = core::build_mainnet_world(n, census, 12, rng);

  // Step 1: service discovery via client-version matching.
  std::map<std::string, std::vector<size_t>> backends;
  for (const auto& s : census) backends[s.name] = core::discover_service_nodes(world, s.name);
  std::cout << "Discovered service backends:\n";
  for (const auto& s : census) {
    std::cout << "  " << s.name << ": " << backends[s.name].size() << " node(s)\n";
  }

  // Select the paper's 9 measurement targets: 2 SrvR1, 1 SrvR2, 2 SrvM1,
  // 2 SrvM2, 1 SrvM3, 1 SrvM4.
  std::vector<std::pair<std::string, size_t>> selected;
  auto pick = [&](const std::string& svc, size_t count) {
    for (size_t i = 0; i < count && i < backends[svc].size(); ++i) {
      selected.emplace_back(svc, backends[svc][i]);
    }
  };
  pick("SrvR1", 2);
  pick("SrvR2", 1);
  pick("SrvM1", 2);
  pick("SrvM2", 2);
  pick("SrvM3", 1);
  pick("SrvM4", 1);
  std::cout << "\nMeasuring all pairs among " << selected.size() << " critical nodes.\n\n";

  core::ScenarioOptions opt = bench::scaled_options(seed);
  opt.background_price_lo = eth::gwei(1.0);  // organic traffic prices far above Y0
  opt.background_price_hi = eth::gwei(60.0);
  opt.block_gas_limit = 8 * eth::kTransferGas;  // small, always-full blocks (V1)
  core::Scenario sc(world.topology, opt);
  for (size_t i = 0; i < world.service_of.size(); ++i) {
    if (!world.service_of[i].empty())
      sc.net().node(sc.targets()[i]).mutable_config().service = world.service_of[i];
  }
  sc.seed_background();
  sc.start_churn(0.65);  // inflow ~ mining drain: a stationary fee market

  // Let the fee market settle, then choose Y0 the §6.3 way: under the
  // inclusion floor of recent blocks but high enough to live in a full
  // pool (the pool median).
  sc.sim().run_until(sc.sim().now() + 60.0);
  core::MeasurementSession session(sc);
  session.config().price_Y = core::estimate_price_Y0(
      sc.m().view(), core::min_included_price(sc.chain()));  // Y0: far below every organic price
  const double t1 = sc.sim().now();

  // Step 2: pairwise measurement; aggregate per service-type pair.
  std::map<std::pair<std::string, std::string>, std::pair<size_t, size_t>> agg;  // conn/total
  const double pair_spacing = cli.get_double("pair-spacing", 60.0);
  for (size_t i = 0; i < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      const auto& [svc_a, node_a] = selected[i];
      const auto& [svc_b, node_b] = selected[j];
      // Re-estimate Y0 before every pair (§6.3 runs the estimator before
      // each study): the fee market moves between probes.
      session.config().price_Y = core::estimate_price_Y0(sc.m().view(),
                                                         core::min_included_price(sc.chain()));
      const auto r = session.one_link(sc.targets()[node_a], sc.targets()[node_b]).value;
      // The paper paces its mainnet study (~36 pairs in half an hour):
      // organic churn clears each probe's residue before the next pair.
      sc.sim().run_until(sc.sim().now() + pair_spacing);
      auto key = std::minmax(svc_a, svc_b);
      auto& [conn, total] = agg[{key.first, key.second}];
      conn += r.connected ? 1 : 0;
      ++total;
      // Sanity: measurement must match the wired ground truth.
      const bool real = world.topology.has_edge(static_cast<graph::NodeId>(node_a),
                                                static_cast<graph::NodeId>(node_b));
      if (r.connected && !real) std::cout << "!! false positive " << svc_a << "-" << svc_b << "\n";
    }
  }
  const double t2 = sc.sim().now();

  util::Table table({"Type", "Connected", "Pairs tested", "Verdict"});
  for (const auto& [key, val] : agg) {
    const auto& [conn, total] = val;
    table.add_row({key.first + " - " + key.second, util::fmt(conn), util::fmt(total),
                   conn == total  ? "fully connected"
                   : conn == 0    ? "not connected"
                                  : "partially connected"});
  }
  table.print(std::cout);

  // Non-interference verification over the measurement window.
  sc.sim().run_until(t2 + 30.0);
  const auto check =
      core::verify_noninterference(sc.chain(), t1, t2, 0.0, session.config().price_Y);
  std::cout << "\nNon-interference verification: V1 (blocks full) = "
            << (check.v1_blocks_full ? "PASS" : "FAIL")
            << ", V2 (included prices > Y0) = " << (check.v2_prices_above_y0 ? "PASS" : "FAIL")
            << " over " << check.blocks_inspected << " blocks\n";

  std::cout << "\nPaper reference (Table 6): SrvR1 connects to all pools and other SrvR1\n"
               "nodes but not SrvR2; SrvR2 connects to nothing critical; pools connect\n"
               "to other pools and SrvR1 — except SrvM1 backends, which do not peer\n"
               "with each other.\n";
  return 0;
}
