// Reproduces the Rinkeby testnet study: Fig. 8 (degree distribution) and
// Table 9 (graph properties vs ER/CM/BA).

#include "topology_study.h"

int main(int argc, char** argv) {
  topo::bench::TestnetStudyConfig cfg;
  cfg.name = "Rinkeby";
  cfg.recipe = topo::disc::rinkeby_like(446);
  cfg.measured_nodes = 64;
  cfg.group_k = 3;
  cfg.seed = 446;
  cfg.paper_reference =
      "Figure 8, Table 9 (§6.2.2, App. D). Paper: n=446, m=15380, diameter 4, "
      "clustering 0.4375, transitivity 0.4981, assortativity -0.032, "
      "modularity 0.0106 — the lowest of the three testnets (most "
      "partition-resilient); many maximal cliques (274775).";
  return topo::bench::run_testnet_study(cfg, argc, argv);
}
