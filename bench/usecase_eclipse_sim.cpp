// End-to-end simulation of the paper's use case 1 (§3.1): a targeted
// eclipse attack against a low-degree victim found through the measured
// topology. The attacker monopolizes the victim's few active slots with
// silent (non-forwarding) nodes; the victim keeps answering but stops
// hearing about new transactions — it is informationally isolated even
// though its 272-entry routing table is untouched.

#include "bench_common.h"
#include "graph/generators.h"
#include "p2p/node.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 80);
  const uint64_t seed = cli.get_uint("seed", 51);
  bench::banner("Targeted eclipse attack on a low-degree node", "§3.1 use case 1");

  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);

  // The measured topology points the attacker at the weakest node.
  graph::NodeId victim = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) >= 2 && (g.degree(victim) < 2 || g.degree(u) < g.degree(victim))) {
      victim = u;
    }
  }
  std::cout << "Victim: node " << victim << " with degree " << g.degree(victim)
            << " (of mean " << util::fmt(g.average_degree(), 1) << ")\n\n";

  core::ScenarioOptions opt = bench::scaled_options(seed);
  opt.background_txs = 0;
  core::Scenario sc(g, opt);

  auto delivered_to_victim = [&](size_t tx_count, const char* label) {
    size_t before = sc.net().node(sc.targets()[victim]).pool().size();
    for (size_t i = 0; i < tx_count; ++i) {
      const eth::Address a = sc.accounts().create_one();
      const auto tx = sc.factory().make(a, sc.accounts().allocate_nonce(a), 1000 + i);
      // Submit far from the victim: a random non-neighbor.
      graph::NodeId origin = victim;
      while (origin == victim || g.has_edge(origin, victim)) {
        origin = static_cast<graph::NodeId>(sc.net().rng().index(g.num_nodes()));
      }
      sc.net().node(sc.targets()[origin]).submit(tx);
    }
    sc.sim().run_until(sc.sim().now() + 15.0);
    const size_t after = sc.net().node(sc.targets()[victim]).pool().size();
    std::cout << label << ": victim received " << (after - before) << " of " << tx_count
              << " transactions\n";
    return after - before;
  };

  const size_t healthy = delivered_to_victim(50, "Before the attack ");

  // Attack: the eclipse payload is proportional to the victim's *degree* —
  // disconnect its few active links and fill the slots with silent nodes.
  const auto victim_links = g.neighbors(victim);
  size_t attacker_nodes = 0;
  for (const auto nbr : victim_links) {
    sc.net().disconnect(sc.targets()[victim], sc.targets()[nbr]);
    p2p::NodeConfig attacker;
    attacker.forwards_transactions = false;  // silent sybil
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = opt.mempool_capacity;
    p.future_cap = opt.future_cap;
    attacker.policy_override = p;
    const auto sybil = sc.net().add_node(attacker);
    sc.net().connect(sc.targets()[victim], sybil);
    ++attacker_nodes;
  }
  std::cout << "\nAttack cost: " << attacker_nodes
            << " sybil connections (= the victim's measured degree)\n\n";

  const size_t eclipsed = delivered_to_victim(50, "After the attack  ");

  std::cout << "\nVerdict: information flow to the victim dropped from " << healthy << "/50 to "
            << eclipsed << "/50.\n"
            << "\nPaper reference (§3.1): \"an eclipse attacker can concentrate her attack\n"
               "payload to the few neighbors ... to isolate the victim node from the rest\n"
               "of the network at low costs\" — and only the measured *active* links\n"
               "reveal how few that is.\n";
  return (eclipsed < healthy) ? 0 : 1;
}
