// Reproduces the Goerli testnet study: Figs. 9/10 (degree distribution,
// including the 697/711-degree supernodes) and Table 10 (graph properties).

#include "topology_study.h"

int main(int argc, char** argv) {
  topo::bench::TestnetStudyConfig cfg;
  cfg.name = "Goerli";
  cfg.recipe = topo::disc::goerli_like(1025);
  cfg.measured_nodes = 64;
  cfg.group_k = 3;
  cfg.seed = 1025;
  cfg.paper_reference =
      "Figures 9/10, Table 10 (App. D). Paper: n=1025, m=18530, diameter 5, "
      "clustering 0.0354 (lowest of the testnets), assortativity -0.157, "
      "modularity 0.048, heavy-tailed degrees with nodes above 700.";
  return topo::bench::run_testnet_study(cfg, argc, argv);
}
