set(EXPERIMENT_BENCHES
  table3_client_profiles
  fig4a_recall_vs_futures
  fig4b_group_size
  fig5_parallel_speedup
  ropsten_topology
  rinkeby_topology
  goerli_topology
  fig7_local_mempool_size
  table8_local_parallel
  table6_mainnet_critical
  table7_costs
  appc_noninterference
  appe_eip1559
  ablation_design_choices
  txprobe_comparison
  usecase_security_analysis
  flaw_zero_bump_dos
  w1_node_census
  w2_inactive_links_survey
  usecase_eclipse_sim
  usecase_mining_qos
  x_calibration
  fault_recall
  strategy_rivalry
  world_fork
  monitor_tracking
)

foreach(bench ${EXPERIMENT_BENCHES})
  add_executable(${bench} bench/${bench}.cpp)
  target_link_libraries(${bench} PRIVATE toposhot)
  set_target_properties(${bench} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

set(MICRO_BENCHES
  micro_mempool
  micro_graph
  micro_network
  micro_wire
  delivery_batch
)

foreach(bench ${MICRO_BENCHES})
  add_executable(${bench} bench/${bench}.cpp)
  target_link_libraries(${bench} PRIVATE toposhot benchmark::benchmark)
  set_target_properties(${bench} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
