// Reproduces Appendix E: "Discussion on the Impacts of EIP1559."
//
// Under EIP-1559 the mempool admits and evicts by max fee, and a buffered
// transaction whose max fee falls below the base fee is dropped. The
// appendix's claim: as long as the measurement transactions' max fee stays
// above the base fee, TopoShot is unaffected. This bench runs the one-link
// primitive on an EIP-1559 chain in both regimes.

#include "bench_common.h"
#include "p2p/node.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 15);
  bench::banner("EIP-1559 impact on TopoShot", "Appendix E");

  // Base-fee dynamics sanity: full blocks raise it, empty blocks lower it.
  {
    eth::Block parent;
    parent.gas_limit = 1000;
    parent.base_fee = eth::gwei(10);
    parent.gas_used = 1000;
    const eth::Wei up = eth::next_base_fee(parent);
    parent.gas_used = 0;
    const eth::Wei down = eth::next_base_fee(parent);
    util::Table table({"Block state", "Next base fee (Gwei)"});
    table.add_row({"full", util::fmt(static_cast<double>(up) / eth::kGwei, 3)});
    table.add_row({"at target", util::fmt(10.0, 3)});
    table.add_row({"empty", util::fmt(static_cast<double>(down) / eth::kGwei, 3)});
    std::cout << "Base-fee update rule (+-12.5%):\n";
    table.print(std::cout);
  }

  auto run_case = [&](eth::Wei base_fee, const char* label) {
    graph::Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    core::ScenarioOptions opt = bench::scaled_options(seed);
    opt.initial_base_fee = base_fee;
    core::Scenario sc(g, opt);
    // Switch every node's pool to EIP-1559 admission.
    for (auto id : sc.targets()) {
      mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
      p.capacity = opt.mempool_capacity;
      p.future_cap = opt.future_cap;
      p.eip1559 = true;
      auto pool = mempool::Mempool(p, &sc.chain());
      pool.set_base_fee(base_fee);
      sc.net().node(id).pool() = std::move(pool);
    }
    sc.seed_background();
    core::MeasurementSession session(sc);
    session.config().eip1559 = true;  // measurement transactions carry max/priority fees
    const auto r = session.one_link(sc.targets()[0], sc.targets()[1]).value;
    std::cout << label << ": measured A-B (true link) -> "
              << (r.connected ? "DETECTED" : "missed")
              << " (txC evicted on B: " << (r.txc_evicted_on_b ? "yes" : "no") << ")\n";
    return r.connected;
  };

  std::cout << "\nCase 1: base fee far below the measurement max fees\n";
  const bool ok = run_case(1, "  base fee = 1 wei");

  std::cout << "\nCase 2: base fee above the measurement max fees (underpriced -> dropped)\n";
  const bool blocked = !run_case(eth::gwei(100.0), "  base fee = 100 Gwei");

  std::cout << "\nVerdict: measurement " << (ok ? "works" : "FAILS") << " above the base fee and "
            << (blocked ? "is (correctly) inert" : "unexpectedly works") << " below it.\n"
            << "\nPaper reference (Appendix E): mempools use the max fee for admission\n"
               "and eviction; transactions with max fee below the base fee are dropped,\n"
               "so TopoShot is unaffected as long as txA/txC/txO price above the base fee.\n";
  return 0;
}
