// Reproduces paper Table 3: "Profiling different Ethereum clients in terms
// of transaction eviction and replacement policies."
//
// The black-box profiler recovers R / U / P / L for every client profile
// purely through mempool add() outcomes — the §5.1 unit tests node M runs
// against an instrumented local target node T.

#include <limits>

#include "bench_common.h"
#include "core/profiler.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  bench::banner("Client mempool profiling", "Table 3 (§5.1)");

  core::ClientProfiler profiler;
  util::Table table({"Client", "Deployment", "R (replace)", "U (futures/acct)",
                     "P (min pending)", "L (capacity)", "Measurable"});

  for (const auto kind : mempool::kAllClients) {
    const auto& profile = mempool::profile_for(kind);
    const auto est = profiler.profile(kind);
    table.add_row({profile.name, util::fmt_pct(profile.mainnet_share, 2),
                   util::fmt_pct(est.replace_bump_fraction, 2),
                   est.futures_unbounded ? "inf" : util::fmt(est.max_futures_per_account),
                   util::fmt(est.min_pending_for_eviction), util::fmt(est.capacity),
                   est.measurable ? "yes" : "NO (R=0 flaw)"});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference (Table 3):\n"
            << "  Geth       10%    4096  0     5120\n"
            << "  Parity     12.5%  81    2000  8192\n"
            << "  Nethermind 0%     17    0     2048  (not measurable)\n"
            << "  Besu       10%    inf   0     4096\n"
            << "  Aleth      0%     1     0     2048  (not measurable)\n"
            << "\nNote: zero-R clients (Aleth, Nethermind) defeat TopoShot's isolation\n"
               "and enable the low-cost replacement-flooding DoS reported in §5.1.\n";
  return 0;
}
