#pragma once

// Shared driver for the testnet topology studies (Ropsten / Rinkeby /
// Goerli). Each study has two parts:
//
//  1. Full-scale topology analysis — the testnet-sized overlay emerges
//     from the discovery + dial substrate and is analyzed exactly like the
//     paper's captured graphs: degree distribution (Figs 6/8/9/10), graph
//     statistics against ER / configuration-model / BA baselines (Tables
//     4/9/10), and Louvain communities (Table 5).
//
//  2. Scaled end-to-end measurement — a smaller instance of the same
//     recipe is actually measured with the full TopoShot pipeline
//     (pre-processing + parallel schedule) and validated against ground
//     truth, reporting the paper's precision/recall and cost columns.

#include <chrono>

#include "bench_common.h"
#include "core/cost.h"
#include "exec/campaign.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/louvain.h"
#include "obs/export.h"
#include "obs/span.h"

namespace topo::bench {

struct TestnetStudyConfig {
  std::string name;
  disc::EmergenceConfig recipe;      ///< full-scale recipe (paper n)
  size_t measured_nodes = 90;        ///< scaled end-to-end measurement size
  size_t group_k = 3;
  uint64_t seed = 7;
  std::string paper_reference;       ///< reference text printed at the end
};

inline void print_degree_distribution(const graph::Graph& g) {
  const auto h = graph::degree_histogram(g);
  util::Table table({"Degree range", "Nodes", "Fraction"});
  const long long buckets[] = {1, 5, 10, 15, 20, 30, 40, 60, 90, 150, 200, 300, 500, 1000};
  long long lo = 0;
  for (long long hi : buckets) {
    size_t count = 0;
    for (const auto& [deg, c] : h.buckets()) {
      if (deg >= lo && deg < hi) count += c;
    }
    if (count > 0) {
      table.add_row({std::to_string(lo) + "-" + std::to_string(hi - 1), util::fmt(count),
                     util::fmt_pct(static_cast<double>(count) / h.total())});
    }
    lo = hi;
  }
  size_t tail = 0;
  for (const auto& [deg, c] : h.buckets()) {
    if (deg >= lo) tail += c;
  }
  if (tail > 0) table.add_row({">=" + std::to_string(lo), util::fmt(tail), ""});
  table.print(std::cout);
  std::cout << "max degree: " << h.max() << ", mean degree: " << util::fmt(h.mean(), 1)
            << "\n";
}

inline void print_graph_comparison(const graph::Graph& measured, util::Rng& rng) {
  const size_t n = measured.num_nodes();
  const size_t m = measured.num_edges();
  const size_t avg_deg = static_cast<size_t>(measured.average_degree());

  util::Rng g1 = rng.split(), g2 = rng.split(), g3 = rng.split();
  const graph::Graph er = graph::erdos_renyi_gnm(n, m, g1);
  const graph::Graph cm = graph::configuration_model(graph::degree_sequence(measured), g2);
  const graph::Graph ba = graph::barabasi_albert(n, std::max<size_t>(1, avg_deg / 2), g3);

  util::Table table({"Property", "Measured", "ER", "CM", "BA"});
  struct Row {
    std::string name;
    std::function<std::string(const graph::Graph&)> fn;
  };
  util::Rng lrng = rng.split();
  std::vector<Row> rows = {
      {"Diameter",
       [](const graph::Graph& g) {
         return util::fmt(static_cast<long long>(graph::distance_stats(g).diameter));
       }},
      {"Periphery size",
       [](const graph::Graph& g) {
         return util::fmt(static_cast<long long>(graph::distance_stats(g).periphery_size));
       }},
      {"Radius",
       [](const graph::Graph& g) {
         return util::fmt(static_cast<long long>(graph::distance_stats(g).radius));
       }},
      {"Center size",
       [](const graph::Graph& g) {
         return util::fmt(static_cast<long long>(graph::distance_stats(g).center_size));
       }},
      {"Eccentricity (mean)",
       [](const graph::Graph& g) { return util::fmt(graph::distance_stats(g).mean_eccentricity, 3); }},
      {"Clustering coefficient",
       [](const graph::Graph& g) { return util::fmt(graph::clustering_coefficient(g), 4); }},
      {"Transitivity", [](const graph::Graph& g) { return util::fmt(graph::transitivity(g), 4); }},
      {"Degree assortativity",
       [](const graph::Graph& g) { return util::fmt(graph::degree_assortativity(g), 4); }},
      {"Maximal cliques",
       [](const graph::Graph& g) {
         const auto c = graph::count_maximal_cliques(g, 500'000);
         return util::fmt(c.maximal_cliques) + (c.truncated ? "+" : "");
       }},
      {"Modularity (Louvain)", [&lrng](const graph::Graph& g) {
         util::Rng r = lrng.split();
         return util::fmt(graph::louvain(g, r).modularity, 4);
       }}};
  for (const auto& row : rows) {
    table.add_row({row.name, row.fn(measured), row.fn(er), row.fn(cm), row.fn(ba)});
  }
  table.print(std::cout);
}

inline void print_communities(const graph::Graph& g, util::Rng& rng) {
  util::Rng lrng = rng.split();
  const auto comm = graph::louvain(g, lrng);
  const auto stats = graph::community_stats(g, comm.assignment);
  util::Table table(
      {"Community", "Nodes", "Intra edges", "Density", "Inter edges", "Avg degree", "Deg-1"});
  size_t idx = 1;
  for (const auto& s : stats) {
    if (s.nodes < 2 && idx > 8) continue;
    table.add_row({util::fmt(idx++), util::fmt(s.nodes), util::fmt(s.intra_edges),
                   util::fmt_pct(s.intra_density), util::fmt(s.inter_edges),
                   util::fmt(s.average_degree, 1), util::fmt(s.degree_one)});
    if (idx > 12) break;
  }
  table.print(std::cout);
  std::cout << "communities: " << comm.count << ", modularity: " << util::fmt(comm.modularity, 4)
            << "\n";
}

inline int run_testnet_study(const TestnetStudyConfig& cfg, int argc, char** argv) {
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", cfg.seed);
  const size_t measured_nodes = cli.get_uint("nodes", cfg.measured_nodes);
  const size_t group_k = cli.get_uint("group", cfg.group_k);
  const size_t threads = cli.get_uint("threads", 1);
  const size_t shards = cli.get_uint("shards", 0);
  const bool skip_measure = cli.get_bool("analysis-only", false);
  const double fault_loss = cli.get_double("fault-loss", 0.0);
  const double fault_churn = cli.get_double("fault-churn", 0.0);
  const size_t retries = cli.get_uint("retries", 0);
  const std::string trace_out = cli.get_string("trace-out", "");
  core::StrategyKind strategy = core::StrategyKind::kToposhot;
  core::strategy_from_name(
      cli.get_choice("strategy", "toposhot", {"toposhot", "dethna", "txprobe"}), strategy);

  banner(cfg.name + " topology study", cfg.paper_reference);
  util::Rng rng(seed);

  // Part 1: full-scale emerged topology analysis.
  std::cout << "\n--- Part 1: full-scale topology (" << cfg.recipe.nodes
            << " nodes, emerged from discovery + dialing) ---\n\n";
  auto recipe = cfg.recipe;
  graph::Graph full = disc::emerge_topology(recipe, rng);
  std::cout << "nodes=" << full.num_nodes() << " edges=" << full.num_edges() << "\n\n";
  std::cout << "Degree distribution:\n";
  print_degree_distribution(full);
  std::cout << "\nGraph statistics vs random-graph baselines:\n";
  print_graph_comparison(full, rng);
  std::cout << "\nCommunity structure (Louvain):\n";
  print_communities(full, rng);

  if (skip_measure) return 0;

  // Part 2: scaled end-to-end measurement with validation.
  std::cout << "\n--- Part 2: end-to-end TopoShot measurement (scaled to " << measured_nodes
            << " nodes, group K=" << group_k << ") ---\n\n";
  auto small_recipe = cfg.recipe;
  small_recipe.nodes = measured_nodes;
  // Scale supernode budgets below the node count.
  for (auto& b : small_recipe.supernode_budgets) b = std::min(b, measured_nodes / 2);
  graph::Graph truth = disc::emerge_topology(small_recipe, rng);

  core::ScenarioOptions opt = scaled_options(seed);
  opt.block_gas_limit = 30 * eth::kTransferGas;
  opt.trace_capacity = cli.get_uint("trace-capacity", opt.trace_capacity);

  // A scout replica reports the pre-processing picture (future-forwarders,
  // unresponsive nodes) before the sharded campaign fans out.
  core::MeasureConfig mcfg;
  {
    core::Scenario scout(truth, opt);
    scout.seed_background();
    scout.start_churn(3.0);
    mcfg = scout.default_measure_config();
    const auto pre = scout.preprocess(mcfg);
    std::cout << "pre-processing: " << pre.future_forwarders.size() << " future-forwarders, "
              << pre.unresponsive.size() << " unresponsive nodes excluded\n";
  }

  mcfg.repetitions = 3;  // union of three runs, the paper's validation recipe
  mcfg.inconclusive_retries = retries;
  exec::CampaignOptions copt;
  copt.group_k = group_k;
  copt.strategy = strategy;
  copt.threads = threads;
  copt.shards = shards;
  copt.seed_background = true;
  // Live-network churn: organic traffic + mining drain measurement residue
  // between iterations (the role the testnets' own traffic plays).
  copt.churn_rate = 3.0;
  // Adversarial conditions: uniform message loss and random node faults
  // (--fault-loss / --fault-churn), with --retries bounding the per-pair
  // inconclusive re-measurement budget.
  copt.fault_plan.drop_tx = fault_loss;
  copt.fault_plan.drop_announce = fault_loss;
  copt.fault_plan.drop_get_tx = fault_loss;
  copt.fault_plan.churn_rate = fault_churn;
  copt.fault_plan.crash_fraction = 0.5;
  copt.collect_spans = !trace_out.empty();

  const auto wall0 = std::chrono::steady_clock::now();
  const auto campaign = exec::run_sharded_campaign(truth, opt, mcfg, copt);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  const auto& report = campaign.report;
  const auto pr = core::compare_graphs(truth, report.measured);
  util::Table table({"Metric", "Value"});
  table.add_row({"strategy", std::string(core::strategy_name(report.strategy))});
  table.add_row({"nodes", util::fmt(truth.num_nodes())});
  table.add_row({"ground-truth edges", util::fmt(truth.num_edges())});
  table.add_row({"measured edges", util::fmt(report.measured.num_edges())});
  table.add_row({"pairs tested", util::fmt(report.pairs_tested)});
  table.add_row({"iterations", util::fmt(report.iterations)});
  table.add_row({"precision", util::fmt_pct(pr.precision())});
  table.add_row({"recall", util::fmt_pct(pr.recall())});
  table.add_row({"sim duration (s)", util::fmt(report.sim_seconds, 0)});
  table.add_row({"sim makespan (s)", util::fmt(campaign.makespan_sim_seconds, 0)});
  table.add_row({"measurement txs sent", util::fmt(report.txs_sent)});
  table.add_row({"campaign shards", util::fmt(campaign.shards)});
  table.add_row({"campaign batches", util::fmt(campaign.batches)});
  table.add_row({"worker threads", util::fmt(threads)});
  table.add_row({"wall-clock (s)", util::fmt(wall_seconds, 2)});
  if (report.fault.has_value()) {
    table.add_row({"probe attempts", util::fmt(report.fault->attempts)});
    table.add_row({"still inconclusive", util::fmt(report.fault->inconclusive)});
    table.add_row({"pairs re-measured", util::fmt(report.fault->retried.size())});
  }
  table.print(std::cout);

  if (!trace_out.empty()) {
    const auto dropped = campaign.metrics.gauges.find("obs.trace.dropped");
    if (dropped != campaign.metrics.gauges.end() && dropped->second > 0.0) {
      std::cerr << "warning: trace ring dropped " << static_cast<uint64_t>(dropped->second)
                << " events; raise --trace-capacity to keep them\n";
    }
    if (obs::write_json_file(trace_out, obs::spans_to_chrome_json(campaign.spans))) {
      std::cout << "trace written to " << trace_out << "\n";
    } else {
      std::cerr << "failed to write " << trace_out << "\n";
    }
  }

  std::cout << "\nMeasured-graph statistics vs baselines (shape check):\n";
  graph::Graph measured_cc = report.measured;
  print_graph_comparison(measured_cc, rng);
  return 0;
}

}  // namespace topo::bench
