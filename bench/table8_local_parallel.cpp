// Reproduces paper Table 8 (Appendix B.1.1): local validation of the
// parallel measurement over the six connection configurations among
// A1, A2, B, with repeated runs — expecting 100% recall and precision in
// every configuration, including when A1 and A2 are themselves connected.

#include <iterator>

#include "bench_common.h"
#include "exec/worker_pool.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t runs = cli.get_uint("runs", 10);
  const uint64_t seed = cli.get_uint("seed", 8);
  const size_t threads = cli.get_uint("threads", 1);
  bench::banner("Local validation of parallel measurement", "Table 8 (Appendix B.1.1)");

  struct Case {
    const char* label;
    bool a1a2, a1b, a2b;
  };
  const Case cases[] = {
      {"<A1,A2>, <A1,B>, <A2,B>", true, true, true},
      {"<A1,A2>, <A1,B>", true, true, false},
      {"<A1,A2>", true, false, false},
      {"<A1,B>, <A2,B>", false, true, true},
      {"<A1,B>", false, true, false},
      {"Null", false, false, false},
  };

  // Every (configuration, run) pair is an independent 3-node world, so the
  // whole grid fans out over the worker pool; verdicts land in a slot per
  // job and are tallied in order afterwards.
  const size_t n_cases = std::size(cases);
  struct Verdict {
    bool a1b = false, a2b = false;
  };
  std::vector<Verdict> verdicts(n_cases * runs);
  const exec::WorkerPool pool(threads);
  pool.run(verdicts.size(), [&](size_t job) {
    const Case& c = cases[job / runs];
    const size_t run = job % runs;
    graph::Graph g(3);  // 0=A1, 1=A2, 2=B
    if (c.a1a2) g.add_edge(0, 1);
    if (c.a1b) g.add_edge(0, 2);
    if (c.a2b) g.add_edge(1, 2);

    core::ScenarioOptions opt = bench::scaled_options(seed + run * 131);
    core::Scenario sc(g, opt);
    sc.seed_background();
    const auto& t = sc.targets();
    core::MeasurementSession session(sc);
    const auto res = session.parallel({t[0], t[1]}, {t[2]}, {{0, 0}, {1, 0}}).value;
    verdicts[job] = {res.connected[0], res.connected[1]};
  });

  util::Table table({"Configuration", "Runs", "Recall", "Precision"});
  for (size_t ci = 0; ci < n_cases; ++ci) {
    const Case& c = cases[ci];
    size_t tp = 0, fp = 0, fn = 0, tn = 0;
    auto tally = [&](bool got, bool real) {
      if (got && real) ++tp;
      else if (got && !real) ++fp;
      else if (!got && real) ++fn;
      else ++tn;
    };
    for (size_t run = 0; run < runs; ++run) {
      const Verdict& v = verdicts[ci * runs + run];
      tally(v.a1b, c.a1b);
      tally(v.a2b, c.a2b);
    }
    const double recall = (tp + fn) ? static_cast<double>(tp) / (tp + fn) : 1.0;
    const double precision = (tp + fp) ? static_cast<double>(tp) / (tp + fp) : 1.0;
    table.add_row({c.label, util::fmt(runs), util::fmt_pct(recall), util::fmt_pct(precision)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: 100% recall and precision in all six configurations;\n"
               "the theoretical A1-A2 interference does not materialize in practice.\n";
  return 0;
}
