// Reproduces the §5.2 "Configuration of X" experiment: the paper joins 11
// local observer nodes (mutually unconnected) to the network, sends a
// transaction through one of them, and measures how long until it appears
// on the other 10 — X is chosen so that with 99.9% confidence the
// transaction has reached everyone.
//
// Here the observers join an emergent testnet; the bench sweeps the wait
// X' and reports the fraction of trials in which all observers held the
// transaction after X' seconds, plus the resulting calibrated X.

#include <algorithm>

#include "bench_common.h"
#include "graph/generators.h"
#include "p2p/node.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 120);
  const size_t observers = cli.get_uint("observers", 11);
  const size_t trials = cli.get_uint("trials", 40);
  const uint64_t seed = cli.get_uint("seed", 29);
  bench::banner("Calibration of the propagation wait X", "§5.2 'Configuration of X'");

  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);
  core::ScenarioOptions opt = bench::scaled_options(seed);
  // Wide-area latencies with a heavy tail: the interesting regime for X.
  opt.latency_median = cli.get_double("latency", 0.35);
  opt.latency_sigma = 0.9;
  core::Scenario sc(g, opt);
  sc.seed_background();

  // Join the observer nodes: each connects to a few random network nodes,
  // never to each other (the paper's setup).
  std::vector<p2p::PeerId> obs;
  for (size_t i = 0; i < observers; ++i) {
    p2p::NodeConfig cfg;
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = opt.mempool_capacity;
    p.future_cap = opt.future_cap;
    cfg.policy_override = p;
    const auto id = sc.net().add_node(cfg);
    for (size_t link = 0; link < 3; ++link) {
      sc.net().connect(id, sc.targets()[sc.net().rng().index(sc.targets().size())]);
    }
    obs.push_back(id);
  }

  // Per trial: send a transaction through observer 0, record when the last
  // of the other observers first holds it.
  std::vector<double> full_coverage_times;
  for (size_t t = 0; t < trials; ++t) {
    const eth::Address a = sc.accounts().create_one();
    const auto tx = sc.factory().make(a, sc.accounts().allocate_nonce(a), eth::gwei(3.0));
    const double sent = sc.sim().now();
    sc.net().node(obs[0]).submit(tx);

    double last_arrival = -1.0;
    bool all = true;
    for (double probe = 0.1; probe <= 30.0; probe += 0.1) {
      sc.sim().run_until(sent + probe);
      size_t holding = 0;
      for (size_t i = 1; i < obs.size(); ++i) {
        holding += sc.net().node(obs[i]).pool().contains(tx.hash());
      }
      if (holding == obs.size() - 1) {
        last_arrival = probe;
        break;
      }
      if (probe >= 30.0) all = false;
    }
    if (all && last_arrival > 0) full_coverage_times.push_back(last_arrival);
    sc.sim().run_until(sc.sim().now() + 2.0);
  }

  std::sort(full_coverage_times.begin(), full_coverage_times.end());
  util::Table table({"Wait X' (s)", "Trials fully covered", "Coverage"});
  for (double x : {0.5, 1.0, 2.0, 3.0, 5.0, 10.0}) {
    const size_t covered = static_cast<size_t>(
        std::count_if(full_coverage_times.begin(), full_coverage_times.end(),
                      [&](double v) { return v <= x; }));
    table.add_row({util::fmt(x, 1), util::fmt(covered) + "/" + util::fmt(trials),
                   util::fmt_pct(static_cast<double>(covered) / trials)});
  }
  table.print(std::cout);

  const double x999 = util::percentile(full_coverage_times, 99.9);
  std::cout << "\nCalibrated X (99.9th percentile of full-coverage time): "
            << util::fmt(x999, 2) << " s\n"
            << "\nPaper reference: the paper calibrates X the same way and lands on\n"
               "X = 10 s for its testnet studies — comfortably above the measured\n"
               "coverage tail here as well.\n";
  return 0;
}
