// google-benchmark microbenchmarks for the network simulator and the
// TopoShot primitive end to end.

#include <benchmark/benchmark.h>

#include "core/session.h"
#include "core/toposhot.h"
#include "disc/discovery.h"
#include "graph/generators.h"

namespace {

using namespace topo;

void BM_FloodPropagation(benchmark::State& state) {
  // One pending transaction flooding an n-node overlay.
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  const auto g = graph::erdos_renyi_gnm(n, n * 12, rng);
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioOptions opt;
    opt.seed = 2;
    opt.background_txs = 0;
    core::Scenario sc(g, opt);
    const eth::Address a = sc.accounts().create_one();
    const auto tx = sc.factory().make(a, sc.accounts().allocate_nonce(a), 1000);
    state.ResumeTiming();
    sc.m().send_to(sc.targets()[0], tx);
    sc.sim().run_until(sc.sim().now() + 10.0);
    benchmark::DoNotOptimize(sc.net().messages_delivered());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FloodPropagation)->Arg(100)->Arg(300);

void BM_OneLinkMeasurement(benchmark::State& state) {
  util::Rng rng(3);
  const auto g = graph::erdos_renyi_gnm(24, 60, rng);
  core::ScenarioOptions opt;
  opt.seed = 4;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  core::Scenario sc(g, opt);
  sc.seed_background();
  core::MeasurementSession session(sc);
  size_t pair = 0;
  for (auto _ : state) {
    const graph::NodeId u = static_cast<graph::NodeId>(pair % 24);
    const graph::NodeId v = static_cast<graph::NodeId>((pair / 24 + 1 + u) % 24);
    ++pair;
    if (u == v) continue;
    benchmark::DoNotOptimize(session.one_link(sc.targets()[u], sc.targets()[v]).value);
  }
}
BENCHMARK(BM_OneLinkMeasurement)->Unit(benchmark::kMillisecond);

void BM_KademliaLookupRound(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    disc::DiscoverySim disc(n, util::Rng(5));
    state.ResumeTiming();
    disc.run_round();
    benchmark::DoNotOptimize(disc.average_fill());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_KademliaLookupRound)->Arg(200)->Arg(600)->Unit(benchmark::kMillisecond);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.at(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_EventQueueThroughput);

struct CountingSink final : sim::EventSink {
  uint64_t hits = 0;
  void on_event(const sim::Event&) override { ++hits; }
};

/// Isolates raw push/pop cost (no dispatch, no simulator loop): typed
/// events through the queue alone, over a spread mimicking real schedules —
/// mostly sub-second deliveries with periodic far-future entries.
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto backend = static_cast<sim::QueueBackend>(state.range(0));
  CountingSink sink;
  for (auto _ : state) {
    sim::EventQueue q(backend);
    double now = 0.0;
    for (int i = 0; i < 10'000; ++i) {
      const double dt = (i % 13 == 0) ? 30.0 : 0.001 * static_cast<double>(i % 311);
      q.push(now + dt, sim::Event::typed(sim::EventKind::kMaintenance, &sink));
      if (i % 2 == 0) now = q.pop().t;
    }
    while (!q.empty()) now = q.pop().t;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
  state.SetLabel(backend == sim::QueueBackend::kTimingWheel ? "wheel" : "heap");
}
BENCHMARK(BM_EventQueuePushPop)->Arg(0)->Arg(1);

/// Typed-event simulator throughput: the same load as
/// BM_EventQueueThroughput but with zero-allocation typed events in place
/// of closures.
void BM_TypedEventThroughput(benchmark::State& state) {
  CountingSink sink;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(static_cast<double>(i % 97),
                      sim::Event::typed(sim::EventKind::kMaintenance, &sink));
    }
    sim.run();
    benchmark::DoNotOptimize(sink.hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_TypedEventThroughput);

}  // namespace

BENCHMARK_MAIN();
