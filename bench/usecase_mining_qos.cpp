// Quantifies the paper's use case 4 (§3.2): a miner's connectivity decides
// how often its freshly found blocks lose propagation races and go stale —
// mining-power utilization is a topology property.
//
// Model: two miners find blocks simultaneously (the interesting race); the
// block that first reaches a majority of the network wins. Propagation time
// to each node = shortest-path hops x one sampled per-hop latency. The
// bench races a hub-peered miner against progressively weaker ones and
// reports stale rates over many trials.

#include <algorithm>
#include <queue>

#include "bench_common.h"
#include "graph/generators.h"

namespace {

using namespace topo;

std::vector<int> hops_from(const graph::Graph& g, graph::NodeId src) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<graph::NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const auto u = q.front();
    q.pop();
    for (const auto v : g.neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

/// Time for a block from `src` to reach node i: sum of sampled per-hop
/// latencies along the hop count (a fresh sample per hop and per trial).
double coverage_time(const std::vector<int>& hops, graph::NodeId i, sim::LatencyModel lat,
                     util::Rng& rng) {
  double t = 0.0;
  for (int h = 0; h < hops[i]; ++h) t += lat.sample(rng);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 220);
  const size_t trials = cli.get_uint("trials", 400);
  const uint64_t seed = cli.get_uint("seed", 61);
  bench::banner("Mining QoS vs connectivity (block race stale rates)", "§3.2 use case 4");

  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);
  const auto lat = sim::LatencyModel::lognormal(0.12, 1.0);

  // Rank nodes by degree; race the best-connected miner against opponents
  // across the degree spectrum.
  std::vector<graph::NodeId> by_degree(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) by_degree[u] = u;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](graph::NodeId a, graph::NodeId b) { return g.degree(a) > g.degree(b); });
  const graph::NodeId hub = by_degree.front();
  const auto hub_hops = hops_from(g, hub);

  util::Table table({"Opponent miner", "Degree", "stale @ 0s head start", "@ 0.1s", "@ 0.25s",
                     "@ 0.5s"});
  for (const double percentile : {0.25, 0.5, 0.75, 0.99}) {
    const graph::NodeId opponent =
        by_degree[std::min(g.num_nodes() - 1,
                           static_cast<size_t>(percentile * (g.num_nodes() - 1)))];
    if (opponent == hub) continue;
    const auto opp_hops = hops_from(g, opponent);

    std::vector<std::string> row{
        "degree percentile " + util::fmt_pct(1.0 - percentile, 0),
        util::fmt(g.degree(opponent))};
    for (const double head_start : {0.0, 0.1, 0.25, 0.5}) {
      size_t opponent_stale = 0;
      for (size_t t = 0; t < trials; ++t) {
        // The opponent finds its block `head_start` seconds earlier; whoever
        // covers a majority of the network first wins the race.
        std::vector<double> hub_t(g.num_nodes()), opp_t(g.num_nodes());
        for (graph::NodeId i = 0; i < g.num_nodes(); ++i) {
          hub_t[i] = head_start + coverage_time(hub_hops, i, lat, rng);
          opp_t[i] = coverage_time(opp_hops, i, lat, rng);
        }
        auto majority_time = [&](std::vector<double>& times) {
          std::nth_element(times.begin(), times.begin() + times.size() / 2, times.end());
          return times[times.size() / 2];
        };
        if (majority_time(hub_t) <= majority_time(opp_t)) ++opponent_stale;
      }
      row.push_back(util::fmt_pct(static_cast<double>(opponent_stale) / trials));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nEach cell: how often the opponent's block goes stale against the hub\n"
               "miner (degree " << g.degree(hub)
            << ") despite the given head start. Weakly connected miners\n"
               "lose even with a half-second lead.\n"
            << "\nPaper reference (§3.2): \"a blockchain's network topology that affects\n"
               "propagation delay can influence a miner node's revenue and mining-power\n"
               "utilization\" — and a client choosing a pool should prefer the\n"
               "well-connected one, which only measured active links reveal.\n";
  return 0;
}
