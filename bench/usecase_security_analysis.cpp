// Reproduces the paper's §3 motivation quantitatively: what the measured
// topology reveals about the network's security and performance.
//
//   Use case 1 — targeted eclipse attacks: low-degree nodes can be isolated
//     by attacking just their few active neighbors.
//   Use case 2 — single points of failure: articulation points and
//     high-betweenness nodes whose removal shrinks the giant component.
//   Use case 3 — deanonymization: nodes with unique neighbor sets are
//     fingerprintable from topology alone.
//   Use cases 4/5 — mining/relay QoS: propagation distance from the hub
//     nodes vs. from average nodes.

#include "bench_common.h"
#include "graph/centrality.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 220);
  const uint64_t seed = cli.get_uint("seed", 33);
  bench::banner("Security/performance analysis of a measured topology", "§3 use cases");

  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);
  std::cout << "Measured topology: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n\n";

  // Use case 1: eclipse exposure.
  {
    const auto h = graph::degree_histogram(g);
    size_t weak = 0, very_weak = 0;
    for (const auto& [deg, count] : h.buckets()) {
      if (deg <= 3) very_weak += count;
      if (deg <= 8) weak += count;
    }
    util::Table table({"Eclipse exposure (use case 1)", "Nodes", "Share"});
    table.add_row({"degree <= 3 (trivially eclipsable)", util::fmt(very_weak),
                   util::fmt_pct(static_cast<double>(very_weak) / g.num_nodes())});
    table.add_row({"degree <= 8 (cheaply eclipsable)", util::fmt(weak),
                   util::fmt_pct(static_cast<double>(weak) / g.num_nodes())});
    table.print(std::cout);
    std::cout << "An attacker must disable only a victim's *active* neighbors — the\n"
                 "50-ish links TopoShot reveals, not the 272 table entries.\n\n";
  }

  // Use case 2: single points of failure.
  {
    const auto cuts = graph::articulation_points(g);
    const auto bc = graph::betweenness_centrality(g);
    std::vector<graph::NodeId> by_bc(g.num_nodes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) by_bc[u] = u;
    std::sort(by_bc.begin(), by_bc.end(),
              [&](graph::NodeId a, graph::NodeId b) { return bc[a] > bc[b]; });

    util::Table table({"Nodes removed (use case 2)", "Largest component", "Share"});
    table.add_row({"none", util::fmt(g.num_nodes()), "100.0%"});
    for (size_t k : {1u, 3u, 5u, 10u, 20u}) {
      std::vector<graph::NodeId> top(by_bc.begin(), by_bc.begin() + std::min(k, by_bc.size()));
      const size_t remaining = graph::largest_component_after_removal(g, top);
      table.add_row({"top-" + std::to_string(k) + " betweenness", util::fmt(remaining),
                     util::fmt_pct(static_cast<double>(remaining) / g.num_nodes())});
    }
    table.print(std::cout);
    std::cout << "Articulation points (removal partitions the network): " << cuts.size()
              << "\n";
    const auto cores = graph::core_numbers(g);
    size_t max_core = 0;
    for (size_t c : cores) max_core = std::max(max_core, c);
    std::cout << "Max k-core: " << max_core
              << " (the densely-knit backbone DoS attacks must fracture)\n\n";
  }

  // Use case 3: deanonymization by neighbor fingerprint.
  {
    const auto fp = graph::neighbor_fingerprints(g);
    std::cout << "Deanonymization (use case 3): " << fp.unique << " of "
              << fp.unique + fp.ambiguous << " nodes ("
              << util::fmt_pct(fp.unique_fraction())
              << ") have a globally unique neighbor set —\n"
              << "their transaction traffic can be tied to them from topology alone.\n\n";
  }

  // Use cases 4/5: propagation distance from hubs vs average nodes.
  {
    graph::NodeId hub = 0;
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (g.degree(u) > g.degree(hub)) hub = u;
    }
    const auto closeness = graph::closeness_centrality(g);
    double avg_closeness = 0.0;
    for (double c : closeness) avg_closeness += c;
    avg_closeness /= static_cast<double>(g.num_nodes());
    util::Table table({"Propagation vantage (use cases 4/5)", "Closeness", "vs average"});
    table.add_row({"best-connected node (deg " + std::to_string(g.degree(hub)) + ")",
                   util::fmt(closeness[hub], 4),
                   util::fmt(closeness[hub] / avg_closeness, 2) + "x"});
    table.add_row({"network average", util::fmt(avg_closeness, 4), "1.00x"});
    table.print(std::cout);
    std::cout << "A miner or relay peering with the hub sees blocks/transactions\n"
                 "earlier — the QoS asymmetry behind the paper's mainnet findings.\n";
  }
  return 0;
}
