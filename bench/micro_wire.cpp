// google-benchmark microbenchmarks for the wire codec (RLP + devp2p
// messages) and the discv4 protocol substrate.

#include <benchmark/benchmark.h>

#include "disc/discv4.h"
#include "wire/messages.h"

namespace {

using namespace topo;

void BM_RlpEncodeTransaction(benchmark::State& state) {
  eth::TxFactory f;
  const auto tx = f.make(0xabcdef12, 42, 123'456'789'000ULL, 0x77, 1'000'000);
  for (auto _ : state) benchmark::DoNotOptimize(wire::encode_transaction(tx));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RlpEncodeTransaction);

void BM_RlpDecodeTransaction(benchmark::State& state) {
  eth::TxFactory f;
  const auto enc = wire::encode_transaction(f.make(0xabcdef12, 42, 123'456'789'000ULL));
  for (auto _ : state) benchmark::DoNotOptimize(wire::decode_transaction(enc));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RlpDecodeTransaction);

void BM_WireSizeArithmetic(benchmark::State& state) {
  eth::TxFactory f;
  const auto tx = f.make(0xabcdef12, 42, 123'456'789'000ULL);
  for (auto _ : state) benchmark::DoNotOptimize(wire::transaction_wire_size(tx));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireSizeArithmetic);

void BM_EncodeTransactionsBatch(benchmark::State& state) {
  eth::TxFactory f;
  std::vector<eth::Transaction> txs;
  for (int i = 0; i < 64; ++i) txs.push_back(f.make(1 + i, i, 100 + i));
  for (auto _ : state) benchmark::DoNotOptimize(wire::encode_transactions(txs));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EncodeTransactionsBatch);

void BM_DiscV4Convergence(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    disc::DiscV4Net net(&sim, util::Rng(1));
    for (size_t i = 0; i < n; ++i) net.add_node();
    net.converge(60.0);
    benchmark::DoNotOptimize(net.datagrams());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DiscV4Convergence)->Arg(30)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
