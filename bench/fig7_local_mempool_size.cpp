// Reproduces paper Fig. 7 (Appendix B.1): "Recall with increasing mempool
// size" — the fully local validation with three mutually connected nodes
// (M, A, B) at FULL Geth scale.
//
// Node A's mempool capacity varies from 3120 to 9120 while the network is
// populated with a varying number of pending transactions X'. With the
// stock flood of Z = 5120 futures, recall is 100% exactly when
// capacity - X' <= 5120 (the flood can fill the empty space and still evict
// txC) and 0% otherwise — the step the paper reports.

#include "bench_common.h"
#include "graph/generators.h"
#include "p2p/node.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 31);
  bench::banner("Local validation: recall vs target mempool size",
                "Figure 7 (Appendix B.1), full Geth scale");

  util::Table table(
      {"Mempool size L'", "Pending X'", "L' - X'", "Expected", "txC evicted", "Detected"});

  for (const size_t pending : {1000u, 2000u, 3000u, 4000u}) {
    for (const size_t capacity : {3120u, 4120u, 5120u, 6120u, 7120u, 8120u, 9120u}) {
      if (pending >= capacity) continue;  // the pool cannot hold X' >= L'
      // Two target nodes A-B (M joins as the supernode automatically).
      graph::Graph g(2);
      g.add_edge(0, 1);

      core::ScenarioOptions opt = bench::fullscale_options(seed + capacity + 31 * pending);
      opt.background_txs = pending;
      // The populated transactions sit above txC's price (the paper fills
      // the pool with its own txO's), and the flood outruns the deferred
      // queue truncation as on a loaded real node.
      opt.background_price_lo = eth::gwei(0.1);
      opt.background_price_hi = eth::gwei(1.0);
      opt.maintenance_interval = 5.0;  // exact-boundary rows need the whole
                                       // flood between two truncation ticks
      opt.send_spacing = 5e-5;
      core::Scenario world(g, opt);

      // Node A (index 0) runs the custom mempool capacity under test.
      mempool::MempoolPolicy custom =
          mempool::profile_for(mempool::ClientKind::kGeth).policy;
      custom.capacity = capacity;
      custom.future_cap = 1024;
      world.net().node(world.targets()[0]).pool() = mempool::Mempool(custom, &world.chain());
      world.seed_background();

      core::MeasurementSession session(world);
      session.config().flood_Z = 5120;             // the paper's stock flood
      session.config().price_Y = eth::gwei(0.01);  // below every populated transaction
      const auto r = session.one_link(world.targets()[0], world.targets()[1]).value;

      const bool expected = capacity <= pending + 5120;
      table.add_row({util::fmt(capacity), util::fmt(pending),
                     util::fmt(static_cast<long long>(capacity) - static_cast<long long>(pending)),
                     expected ? "100%" : "0%", r.txc_evicted_on_a ? "yes" : "no",
                     r.connected ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: recall is 100% when L' - X' <= 5120 and drops to 0%\n"
               "otherwise — matching the number of pending transactions to the actual\n"
               "mempool size is crucial (Appendix B.1).\n";
  return 0;
}
