// fault_recall — recall under injected message loss, with and without
// bounded inconclusive re-measurement.
//
// Sweeps uniform message-drop probability {0, 1%, 5%, 10%} x retries
// {off, on} over a fixed overlay and reports precision/recall per cell,
// demonstrating (a) that loss degrades recall through inconclusive
// probes, not false positives, and (b) that classifying inconclusive
// verdicts and re-measuring them buys the recall back at bounded cost.
// The campaign runner keeps every cell deterministic: same (seed, plan)
// gives the same row at any --threads.
//
// Flags: --nodes=N --edges=M --seed=S --group=K --threads=T --retries=R
//        --out=PATH (write the sweep as a JSON artifact)

#include <vector>

#include "bench_common.h"
#include "exec/campaign.h"
#include "graph/generators.h"
#include "rpc/json.h"

using namespace topo;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const size_t nodes = cli.get_uint("nodes", 32);
  const size_t edges = cli.get_uint("edges", 64);
  const uint64_t seed = cli.get_uint("seed", 123);
  const size_t group_k = cli.get_uint("group", 4);
  const size_t threads = cli.get_uint("threads", 1);
  const size_t retry_budget = cli.get_uint("retries", 2);
  const std::string out = cli.get_string("out", "");

  bench::banner("Recall under message loss, with/without re-measurement",
                "fault-injection study (extends the §6 validation protocol)");

  util::Rng rng(seed);
  const graph::Graph truth = graph::erdos_renyi_gnm(nodes, edges, rng);

  // Laptop-scale mempools (the fig5/table8 recipe): event counts stay small
  // enough for an 8-cell sweep while Z still evicts the whole pool.
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;

  core::MeasureConfig base_cfg;
  {
    core::Scenario probe(truth, opt);
    base_cfg = probe.default_measure_config();
  }
  base_cfg.repetitions = 1;  // isolate the retry effect from the repetition union

  const double losses[] = {0.0, 0.01, 0.05, 0.10};
  util::Table table({"Loss", "Retries", "Recall", "Precision", "Attempts", "Inconclusive",
                     "Re-measured"});
  rpc::JsonArray cells;
  for (const double loss : losses) {
    for (const bool with_retries : {false, true}) {
      core::MeasureConfig cfg = base_cfg;
      cfg.inconclusive_retries = with_retries ? retry_budget : 0;

      exec::CampaignOptions copt;
      copt.group_k = group_k;
      copt.threads = threads;
      copt.shards = 4;
      copt.fault_plan.drop_tx = loss;
      copt.fault_plan.drop_announce = loss;
      copt.fault_plan.drop_get_tx = loss;

      const auto campaign = exec::run_sharded_campaign(truth, opt, cfg, copt);
      const auto pr = core::compare_graphs(truth, campaign.report.measured);
      const auto& fault = campaign.report.fault;
      const uint64_t attempts = fault ? fault->attempts : campaign.report.pairs_tested;
      const uint64_t inconclusive = fault ? fault->inconclusive : 0;
      const size_t remeasured = fault ? fault->retried.size() : 0;

      table.add_row({util::fmt_pct(loss), with_retries ? util::fmt(retry_budget) : "off",
                     util::fmt_pct(pr.recall()), util::fmt_pct(pr.precision()),
                     util::fmt(attempts), util::fmt(inconclusive), util::fmt(remeasured)});
      cells.push_back(rpc::Json(rpc::JsonObject{
          {"loss", rpc::Json(loss)},
          {"retries", rpc::Json(static_cast<uint64_t>(with_retries ? retry_budget : 0))},
          {"recall", rpc::Json(pr.recall())},
          {"precision", rpc::Json(pr.precision())},
          {"attempts", rpc::Json(attempts)},
          {"inconclusive", rpc::Json(inconclusive)},
          {"remeasured", rpc::Json(static_cast<uint64_t>(remeasured))},
      }));
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: at 0% loss the retry column changes nothing (zero-cost-off); "
               "from 1% loss up, the retry rows recover recall the no-retry rows lose.\n";

  if (!out.empty()) {
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("fault_recall")},
        {"nodes", rpc::Json(static_cast<uint64_t>(nodes))},
        {"edges", rpc::Json(static_cast<uint64_t>(edges))},
        {"seed", rpc::Json(seed)},
        {"cells", rpc::Json(std::move(cells))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return 0;
}
