// fault_recall — recall under injected message loss, with and without
// bounded inconclusive re-measurement.
//
// Sweeps uniform message-drop probability {0, 1%, 5%, 10%} x retries
// {off, on} over a fixed overlay and reports precision/recall per cell,
// demonstrating (a) that loss degrades recall through inconclusive
// probes, not false positives, and (b) that classifying inconclusive
// verdicts and re-measuring them buys the recall back at bounded cost.
// The campaign runner keeps every cell deterministic: same (seed, plan)
// gives the same row at any --threads.
//
// Diagnostics collection is always on, so every cell also reports *why*
// probes stayed inconclusive (per-cause tallies) and which causes the
// retry pass cleared — the per-cause recall breakdown of docs/TRACING.md.
//
// Flags: --nodes=N --edges=M --seed=S --group=K --threads=T --retries=R
//        --out=PATH (write the sweep as a JSON artifact; includes the
//        per-cause tallies and the "event_mix" object gated by
//        scripts/bench_compare.py)
//        --trace-out=PATH (Chrome trace of the last sweep cell)
//        --trace-capacity=N (per-scenario tx-event ring size)

#include <map>
#include <vector>

#include "bench_common.h"
#include "exec/campaign.h"
#include "graph/generators.h"
#include "obs/span.h"
#include "rpc/json.h"

using namespace topo;

namespace {

/// Cause-keyed JSON object of a diagnostics tally array.
rpc::Json causes_json(const std::array<uint64_t, obs::kNumProbeCauses>& tallies) {
  rpc::JsonObject o;
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    o[obs::probe_cause_name(static_cast<obs::ProbeCause>(c))] = rpc::Json(tallies[c]);
  }
  return rpc::Json(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const size_t nodes = cli.get_uint("nodes", 32);
  const size_t edges = cli.get_uint("edges", 64);
  const uint64_t seed = cli.get_uint("seed", 123);
  const size_t group_k = cli.get_uint("group", 4);
  const size_t threads = cli.get_uint("threads", 1);
  const size_t retry_budget = cli.get_uint("retries", 2);
  const std::string out = cli.get_string("out", "");
  const std::string trace_out = cli.get_string("trace-out", "");

  bench::banner("Recall under message loss, with/without re-measurement",
                "fault-injection study (extends the §6 validation protocol)");

  util::Rng rng(seed);
  const graph::Graph truth = graph::erdos_renyi_gnm(nodes, edges, rng);

  // Laptop-scale mempools (the fig5/table8 recipe): event counts stay small
  // enough for an 8-cell sweep while Z still evicts the whole pool.
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  opt.trace_capacity = cli.get_uint("trace-capacity", opt.trace_capacity);

  core::MeasureConfig base_cfg;
  {
    core::Scenario probe(truth, opt);
    base_cfg = probe.default_measure_config();
  }
  base_cfg.repetitions = 1;  // isolate the retry effect from the repetition union
  // Diagnostics ride every cell: collection never perturbs the measurement
  // trajectory, and the per-cause tallies explain each recall number.
  base_cfg.collect_diagnostics = true;

  const double losses[] = {0.0, 0.01, 0.05, 0.10};
  util::Table table({"Loss", "Retries", "Recall", "Precision", "Attempts", "Inconclusive",
                     "Re-measured"});
  util::Table cause_table({"Loss", "Retries", "Offline", "txC stuck", "Payload lost",
                           "txA lost", "Cleared"});
  rpc::JsonArray cells;
  std::map<std::string, double> event_mix;
  std::vector<obs::Span> last_spans;
  for (const double loss : losses) {
    for (const bool with_retries : {false, true}) {
      core::MeasureConfig cfg = base_cfg;
      cfg.inconclusive_retries = with_retries ? retry_budget : 0;

      exec::CampaignOptions copt;
      copt.group_k = group_k;
      copt.threads = threads;
      copt.shards = 4;
      copt.fault_plan.drop_tx = loss;
      copt.fault_plan.drop_announce = loss;
      copt.fault_plan.drop_get_tx = loss;
      copt.collect_spans = !trace_out.empty();

      const auto campaign = exec::run_sharded_campaign(truth, opt, cfg, copt);
      const auto pr = core::compare_graphs(truth, campaign.report.measured);
      const auto& fault = campaign.report.fault;
      const uint64_t attempts = fault ? fault->attempts : campaign.report.pairs_tested;
      const uint64_t inconclusive = fault ? fault->inconclusive : 0;
      const size_t remeasured = fault ? fault->retried.size() : 0;

      table.add_row({util::fmt_pct(loss), with_retries ? util::fmt(retry_budget) : "off",
                     util::fmt_pct(pr.recall()), util::fmt_pct(pr.precision()),
                     util::fmt(attempts), util::fmt(inconclusive), util::fmt(remeasured)});
      rpc::JsonObject cell{
          {"loss", rpc::Json(loss)},
          {"retries", rpc::Json(static_cast<uint64_t>(with_retries ? retry_budget : 0))},
          {"recall", rpc::Json(pr.recall())},
          {"precision", rpc::Json(pr.precision())},
          {"attempts", rpc::Json(attempts)},
          {"inconclusive", rpc::Json(inconclusive)},
          {"remeasured", rpc::Json(static_cast<uint64_t>(remeasured))},
      };
      if (campaign.report.diagnostics.has_value()) {
        const core::DiagnosticsReport& d = *campaign.report.diagnostics;
        auto tally = [&d](obs::ProbeCause c) {
          return util::fmt(d.causes[static_cast<size_t>(c)]);
        };
        uint64_t cleared = 0;
        for (uint64_t c : d.cleared) cleared += c;
        cause_table.add_row({util::fmt_pct(loss),
                             with_retries ? util::fmt(retry_budget) : "off",
                             tally(obs::ProbeCause::kNodeOffline),
                             tally(obs::ProbeCause::kTxCNotEvicted),
                             tally(obs::ProbeCause::kPayloadNotPlanted),
                             tally(obs::ProbeCause::kTxANotPlanted), util::fmt(cleared)});
        cell.emplace("causes", causes_json(d.causes));
        cell.emplace("cleared", causes_json(d.cleared));
      }
      cells.push_back(rpc::Json(std::move(cell)));
      for (const auto& [name, v] : campaign.metrics.gauges) {
        if (name.rfind("sim.dispatch.", 0) == 0) {
          event_mix[name.substr(sizeof("sim.dispatch.") - 1)] += v;
        }
      }
      if (copt.collect_spans) last_spans = campaign.spans;
    }
  }
  table.print(std::cout);
  std::cout << "\nWhy probes stayed inconclusive (final causes per cell; 'Cleared' = "
               "pairs the retry pass decided):\n";
  cause_table.print(std::cout);
  std::cout << "\nReading: at 0% loss the retry column changes nothing (zero-cost-off); "
               "from 1% loss up, the retry rows recover recall the no-retry rows lose.\n";

  if (!trace_out.empty()) {
    // The most adversarial cell (10% loss, retries on) runs last; its spans
    // carry the full retry structure, so that is the trace worth keeping.
    if (obs::write_json_file(trace_out, obs::spans_to_chrome_json(std::move(last_spans)))) {
      std::cout << "[trace: " << trace_out << "]\n";
    } else {
      std::cerr << "failed to write " << trace_out << "\n";
      return 1;
    }
  }
  if (!out.empty()) {
    rpc::JsonObject mix;
    for (const auto& [name, v] : event_mix) mix[name] = rpc::Json(v);
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("fault_recall")},
        {"nodes", rpc::Json(static_cast<uint64_t>(nodes))},
        {"edges", rpc::Json(static_cast<uint64_t>(edges))},
        {"seed", rpc::Json(seed)},
        {"event_mix", rpc::Json(std::move(mix))},
        {"cells", rpc::Json(std::move(cells))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return 0;
}
