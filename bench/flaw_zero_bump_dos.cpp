// Reproduces the §5.1 security finding: a zero replacement bump (Aleth,
// Nethermind) is a DoS flaw. "An attacker can send multiple replacing
// transactions at almost the same Gas price, consuming network resources by
// propagating multiple transactions yet without paying additional Ether."
//
// The attacker holds ONE mempool slot and keeps replacing it. Under R = 0
// every equal-priced replacement is admitted and re-propagated network-wide
// for free; under Geth's R = 10% the k-th replacement must pay (1.1)^k, so
// the same traffic volume costs exponentially more.

#include <cmath>

#include "bench_common.h"
#include "graph/generators.h"
#include "p2p/node.h"

namespace {

using namespace topo;

struct AttackOutcome {
  uint64_t replacements = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double final_price_gwei = 0.0;
};

AttackOutcome run_attack(uint32_t bump_bp, size_t attempts, uint64_t seed) {
  util::Rng rng(seed);
  const graph::Graph g = graph::erdos_renyi_gnm(30, 120, rng);
  core::ScenarioOptions opt = bench::scaled_options(seed);
  core::Scenario sc(g, opt);
  for (auto id : sc.targets()) {
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = opt.mempool_capacity;
    p.future_cap = opt.future_cap;
    p.replace_bump_bp = bump_bp;
    sc.net().node(id).pool() = mempool::Mempool(p, &sc.chain());
  }
  sc.seed_background();

  const eth::Address attacker = sc.accounts().create_one();
  const eth::Nonce nonce = sc.accounts().allocate_nonce(attacker);
  eth::Wei price = eth::gwei(1.0);
  AttackOutcome out;

  const uint64_t msgs0 = sc.net().messages_delivered();
  const uint64_t bytes0 = sc.net().bytes_sent();
  sc.m().send_to(sc.targets()[0], sc.factory().make(attacker, nonce, price));
  sc.sim().run_until(sc.sim().now() + 2.0);

  for (size_t i = 0; i < attempts; ++i) {
    // The cheapest admissible replacement under the victim policy.
    mempool::MempoolPolicy probe;
    probe.replace_bump_bp = bump_bp;
    const eth::Wei next = std::max<eth::Wei>(probe.min_replacement_price(price), price + 1);
    sc.m().send_to(sc.targets()[0], sc.factory().make(attacker, nonce, next));
    sc.sim().run_until(sc.sim().now() + 2.0);
    if (!sc.net().node(sc.targets()[0]).pool().find(attacker, nonce)) break;
    if (sc.net().node(sc.targets()[0]).pool().find(attacker, nonce)->pool_price() != next)
      break;  // replacement rejected; attack stalled
    price = next;
    ++out.replacements;
  }
  out.messages = sc.net().messages_delivered() - msgs0;
  out.bytes = sc.net().bytes_sent() - bytes0;
  out.final_price_gwei = static_cast<double>(price) / eth::kGwei;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t attempts = cli.get_uint("attempts", 50);
  const uint64_t seed = cli.get_uint("seed", 77);
  bench::banner("Zero-bump replacement flooding (reported flaw)", "§5.1 bug report");

  util::Table table({"Policy", "Replacements", "Messages", "Wire KB",
                     "Final price (Gwei)", "Price inflation"});
  struct Row {
    const char* name;
    uint32_t bump;
  };
  for (const Row row : {Row{"R = 0% (Aleth/Nethermind, flawed)", 0},
                        Row{"R = 10% (Geth)", 1000},
                        Row{"R = 12.5% (Parity)", 1250}}) {
    const auto out = run_attack(row.bump, attempts, seed);
    table.add_row({row.name, util::fmt(out.replacements), util::fmt(out.messages),
                   util::fmt(static_cast<double>(out.bytes) / 1024.0, 1),
                   util::fmt(out.final_price_gwei, 3),
                   util::fmt(out.final_price_gwei / 1.0, 1) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nWith R = 0 the attacker re-propagates a transaction network-wide " << attempts
            << " times\nwhile the committed fee stays ~1 Gwei (only the final version can be "
               "mined).\nWith Geth's 10% bump the same volume inflates the committed price by "
            << util::fmt(std::pow(1.1, static_cast<double>(attempts)), 0)
            << "x —\nthe flooding becomes self-defeating. This is the asymmetry reported to\n"
               "the Ethereum bug bounty in §5.1.\n";
  return 0;
}
