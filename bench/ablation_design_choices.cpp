// Ablation bench for the design choices called out in DESIGN.md §5:
//
//  A. Eviction victim policy — the paper's globally-cheapest rule vs a
//     futures-first variant. Futures-first breaks TopoShot's flood: the
//     incoming futures would sacrifice each other instead of the pending
//     txC, so eviction never reaches the shield transaction.
//  B. Propagation protocol — pure push vs Geth >= 1.9.11's
//     sqrt-push + hash announcements. Unlike Bitcoin's announcement-only
//     propagation (which TxProbe exploits, §4.1), Ethereum's direct-push
//     component keeps TopoShot's isolation intact, so accuracy must be
//     unchanged — but message counts differ.

#include "bench_common.h"
#include "graph/generators.h"

namespace {

struct RunResult {
  topo::core::PrecisionRecall pr;
  uint64_t messages = 0;
};

RunResult run(const topo::core::ScenarioOptions& opt, const topo::graph::Graph& g) {
  using namespace topo;
  core::Scenario sc(g, opt);
  sc.seed_background();
  const uint64_t msgs0 = sc.net().messages_delivered();
  graph::Graph measured(g.num_nodes());
  core::MeasurementSession session(sc);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v) {
      const auto r = session.one_link(sc.targets()[u], sc.targets()[v]).value;
      if (r.connected) measured.add_edge(u, v);
    }
  }
  return {core::compare_graphs(g, measured), sc.net().messages_delivered() - msgs0};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 44);
  const size_t n = cli.get_uint("nodes", 10);
  bench::banner("Ablation: eviction victim policy & propagation protocol", "DESIGN.md §5");

  util::Rng rng(seed);
  const graph::Graph g = graph::erdos_renyi_gnm(n, n * 2, rng);

  util::Table table({"Variant", "Recall", "Precision", "Messages"});

  {
    core::ScenarioOptions opt = bench::scaled_options(seed);
    const auto res = run(opt, g);
    table.add_row({"lowest-price eviction + push (paper)", util::fmt_pct(res.pr.recall()),
                   util::fmt_pct(res.pr.precision()), util::fmt(res.messages)});
  }
  {
    core::ScenarioOptions opt = bench::scaled_options(seed);
    opt.eviction_victim = mempool::EvictionVictim::kFuturesFirst;
    const auto res = run(opt, g);
    table.add_row({"futures-first eviction", util::fmt_pct(res.pr.recall()),
                   util::fmt_pct(res.pr.precision()), util::fmt(res.messages)});
  }
  {
    core::ScenarioOptions opt = bench::scaled_options(seed);
    opt.use_announcements = true;
    const auto res = run(opt, g);
    table.add_row({"push+announce (Geth >= 1.9.11)", util::fmt_pct(res.pr.recall()),
                   util::fmt_pct(res.pr.precision()), util::fmt(res.messages)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the paper's policy achieves ~100% recall; futures-first\n"
               "collapses recall (the flood cannot evict txC); announcements preserve\n"
               "accuracy while changing message counts (§2, §4.1).\n";
  return 0;
}
