// strategy_rivalry — the three measurement strategies behind the
// core::MeasurementStrategy seam, raced head-to-head on one ground-truth
// overlay across client mixes and fault levels.
//
// Grid: {toposhot, dethna, txprobe} x client mix {geth-legacy (push to
// all peers), geth-1.9.11 (sqrt push + announce)} x fault level {none,
// 2% uniform message loss}. Every cell is a full sharded campaign over
// the same overlay, so the numbers are comparable: precision/recall vs
// ground truth, probe transactions sent, and Ether actually spent
// (included transactions from tracked accounts; DEthna's markers are
// never mineable, so its wei column is structurally zero).
//
// The expected shape of the table (and what the CI gate pins):
//   - TopoShot holds its fig4/fig5-grade precision+recall on both mixes —
//     the price ladder does not care how the marker propagates;
//   - DEthna trades recall for cost: timing inference is noisy, but it
//     sends an order of magnitude fewer transactions and spends nothing;
//   - TxProbe's announcement blocking floods through Ethereum's direct
//     pushes on BOTH mixes (§4.1: "the existence of direct propagation,
//     no matter how small portion it plays, negates the isolation
//     property") — precision collapses while recall looks flattering.
//
// Diagnostics collection rides every cell, so each strategy also reports
// *why* probes failed (per-cause tallies) in the annex table.
//
// Flags: --nodes=N --edges=M --seed=S --group=K --threads=T --shards=P
//        --loss=F (the faulted level; 0.02 default)
//        --out=PATH (JSON artifact gated by scripts/bench_compare.py;
//        cells ride under the "rivalry" key)

#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/campaign.h"
#include "graph/generators.h"
#include "rpc/json.h"

using namespace topo;

namespace {

/// Cause-keyed JSON object of a diagnostics tally array.
rpc::Json causes_json(const std::array<uint64_t, obs::kNumProbeCauses>& tallies) {
  rpc::JsonObject o;
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    o[obs::probe_cause_name(static_cast<obs::ProbeCause>(c))] = rpc::Json(tallies[c]);
  }
  return rpc::Json(std::move(o));
}

struct Mix {
  const char* name;
  bool use_announcements;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const size_t nodes = cli.get_uint("nodes", 16);
  const size_t edges = cli.get_uint("edges", 32);
  const uint64_t seed = cli.get_uint("seed", 97);
  const size_t group_k = cli.get_uint("group", 4);
  const size_t threads = cli.get_uint("threads", 1);
  const size_t shards = cli.get_uint("shards", 2);
  const double fault_loss = cli.get_double("loss", 0.02);
  const std::string out = cli.get_string("out", "");

  bench::banner("Strategy rivalry: TopoShot vs DEthna vs TxProbe",
                "the MeasurementStrategy seam, raced (§4.1, §5, §6)");

  util::Rng rng(seed);
  const graph::Graph truth = graph::erdos_renyi_gnm(nodes, edges, rng);
  std::cout << "Overlay: " << nodes << " nodes, " << truth.num_edges()
            << " true links; every cell measures all pairs through the seam.\n\n";

  const Mix mixes[] = {
      {"geth-legacy", false},  // direct push to every peer (< 1.9.11)
      {"geth-1.9.11", true},   // sqrt push + hash announcements
  };
  const double losses[] = {0.0, fault_loss};

  util::Table table({"Strategy", "Client mix", "Loss", "Recall", "Precision", "Txs sent",
                     "Wei spent"});
  util::Table cause_table({"Strategy", "Client mix", "Loss", "Offline", "txC stuck",
                           "Payload lost", "txA lost", "No echo"});
  rpc::JsonArray cells;
  for (const core::StrategyKind strategy :
       {core::StrategyKind::kToposhot, core::StrategyKind::kDethna,
        core::StrategyKind::kTxprobe}) {
    for (const Mix& mix : mixes) {
      for (const double loss : losses) {
        // Laptop-scale mempools (the fault_recall recipe) keep the 12-cell
        // grid CI-sized while Z still evicts the whole pool.
        core::ScenarioOptions opt;
        opt.seed = seed;
        opt.mempool_capacity = 192;
        opt.future_cap = 48;
        opt.background_txs = 128;
        opt.use_announcements = mix.use_announcements;

        core::MeasureConfig cfg;
        {
          core::Scenario probe(truth, opt);
          cfg = probe.default_measure_config();
        }
        cfg.collect_diagnostics = true;

        exec::CampaignOptions copt;
        copt.strategy = strategy;
        copt.group_k = group_k;
        copt.threads = threads;
        copt.shards = shards;
        copt.fault_plan.drop_tx = loss;
        copt.fault_plan.drop_announce = loss;
        copt.fault_plan.drop_get_tx = loss;

        const auto campaign = exec::run_sharded_campaign(truth, opt, cfg, copt);
        const auto pr = core::compare_graphs(truth, campaign.report.measured);
        const auto wei_it = campaign.metrics.gauges.find("cost.wei_spent");
        const double wei = wei_it == campaign.metrics.gauges.end() ? 0.0 : wei_it->second;

        table.add_row({std::string(core::strategy_name(strategy)), mix.name,
                       util::fmt_pct(loss), util::fmt_pct(pr.recall()),
                       util::fmt_pct(pr.precision()), util::fmt(campaign.report.txs_sent),
                       util::fmt(wei, 0)});
        rpc::JsonObject cell{
            {"strategy", rpc::Json(std::string(core::strategy_name(strategy)))},
            {"mix", rpc::Json(std::string(mix.name))},
            {"loss", rpc::Json(loss)},
            {"recall", rpc::Json(pr.recall())},
            {"precision", rpc::Json(pr.precision())},
            {"txs_sent", rpc::Json(campaign.report.txs_sent)},
            {"wei_spent", rpc::Json(wei)},
        };
        if (campaign.report.diagnostics.has_value()) {
          const core::DiagnosticsReport& d = *campaign.report.diagnostics;
          auto tally = [&d](obs::ProbeCause c) {
            return util::fmt(d.causes[static_cast<size_t>(c)]);
          };
          cause_table.add_row({std::string(core::strategy_name(strategy)), mix.name,
                               util::fmt_pct(loss), tally(obs::ProbeCause::kNodeOffline),
                               tally(obs::ProbeCause::kTxCNotEvicted),
                               tally(obs::ProbeCause::kPayloadNotPlanted),
                               tally(obs::ProbeCause::kTxANotPlanted),
                               tally(obs::ProbeCause::kTxANeverReturned)});
          cell.emplace("causes", causes_json(d.causes));
        }
        cells.push_back(rpc::Json(std::move(cell)));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nWhy probes failed (final causes per cell; TopoShot's ladder names the "
               "broken protocol step, DEthna/TxProbe map their own failure onto the "
               "same vocabulary):\n";
  cause_table.print(std::cout);
  std::cout << "\nReading: TopoShot is the only strategy that keeps precision AND recall "
               "on both mixes; DEthna is the cheap-but-noisy rival; TxProbe's isolation "
               "is negated by Ethereum's direct pushes (§4.1), so its false positives "
               "are a property of the protocol, not of this simulator.\n";

  if (!out.empty()) {
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("strategy_rivalry")},
        {"nodes", rpc::Json(static_cast<uint64_t>(nodes))},
        {"edges", rpc::Json(static_cast<uint64_t>(edges))},
        {"seed", rpc::Json(seed)},
        {"rivalry", rpc::Json(std::move(cells))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return 0;
}
