// Experimental reproduction of §4.1 / Appendix A: why TxProbe's
// announcement-blocking technique works on Bitcoin-style propagation but
// fails on Ethereum.
//
// TxProbe's isolation trick: the measurement node announces the marker's
// hash to every node except the pair under test; those nodes then ignore
// further announcements of the same hash for the blocking window, so the
// marker can only cross the direct A-B link. This bench runs exactly that
// probe over every node pair of a small ground-truth overlay, twice:
//
//   1. Bitcoin mode  — announce-only propagation: isolation holds,
//      precision stays at 100%;
//   2. Ethereum mode — Geth's push+announce: the direct pushes bypass the
//      announcement block and flood the marker, producing false positives
//      (the paper's argument for why a new technique was needed at all).

#include "bench_common.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "p2p/node.h"

namespace {

using namespace topo;

struct ProbeOutcome {
  core::PrecisionRecall pr;
};

ProbeOutcome run_txprobe(bool ethereum_mode, const graph::Graph& g, uint64_t seed) {
  core::ScenarioOptions opt = bench::scaled_options(seed);
  opt.background_txs = 64;  // light load; TxProbe does not need full pools
  core::Scenario sc(g, opt);
  // Same switch TxProbeStrategy::prepare uses: announce-only is the
  // Bitcoin-style world, push+announce is Geth >= 1.9.11.
  core::apply_propagation_mode(sc, ethereum_mode ? core::PropagationMode::kPushAndAnnounce
                                                 : core::PropagationMode::kAnnounceOnly);
  sc.seed_background();

  core::PrecisionRecall pr;
  auto& sim = sc.sim();
  auto& m = sc.m();

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v) {
      const eth::Address acct = sc.accounts().create_one();
      const auto marker =
          sc.factory().make(acct, sc.accounts().allocate_nonce(acct), eth::gwei(1.0));

      // TxProbe step 1: pre-announce the marker hash to every node except
      // the pair, arming their blocking windows (M never serves the body).
      for (graph::NodeId w = 0; w < g.num_nodes(); ++w) {
        if (w == u || w == v) continue;
        sc.net().send_announce(m.id(), sc.targets()[w], marker.hash());
      }
      sim.run_until(sim.now() + 0.5);

      // Step 2: deliver the marker to A and watch for it coming back from
      // B within the blocking window.
      const double sent_at = m.send_to(sc.targets()[u], marker);
      sim.run_until(sim.now() + 3.0);
      const bool positive = m.received_from_since(marker.hash(), sc.targets()[v], sent_at);

      const bool real = g.has_edge(u, v);
      if (positive && real) ++pr.true_positive;
      else if (positive && !real) ++pr.false_positive;
      else if (!positive && real) ++pr.false_negative;
      else ++pr.true_negative;

      // Let the blocking windows expire before the next pair.
      sim.run_until(sim.now() + 6.0);
    }
  }
  return {pr};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 12);
  const uint64_t seed = cli.get_uint("seed", 41);
  bench::banner("TxProbe on Bitcoin-style vs Ethereum propagation", "§4.1, Appendix A");

  util::Rng rng(seed);
  const graph::Graph g = graph::erdos_renyi_gnm(n, n * 2, rng);
  std::cout << "Probing all " << n * (n - 1) / 2 << " pairs of a " << n << "-node overlay ("
            << g.num_edges() << " true links) with the TxProbe primitive.\n\n";

  const auto bitcoin = run_txprobe(false, g, seed);
  const auto ethereum = run_txprobe(true, g, seed);

  util::Table table({"Propagation model", "TP", "FP", "FN", "Precision", "Recall"});
  table.add_row({"announce-only (Bitcoin-style)", util::fmt(bitcoin.pr.true_positive),
                 util::fmt(bitcoin.pr.false_positive), util::fmt(bitcoin.pr.false_negative),
                 util::fmt_pct(bitcoin.pr.precision()), util::fmt_pct(bitcoin.pr.recall())});
  table.add_row({"push + announce (Ethereum)", util::fmt(ethereum.pr.true_positive),
                 util::fmt(ethereum.pr.false_positive), util::fmt(ethereum.pr.false_negative),
                 util::fmt_pct(ethereum.pr.precision()), util::fmt_pct(ethereum.pr.recall())});
  table.print(std::cout);

  std::cout << "\nPaper reference (§4.1): \"The existence of direct propagation, no matter\n"
               "how small portion it plays, negates the isolation property\" — TxProbe's\n"
               "marker floods through Ethereum's pushes and every pair looks connected,\n"
               "which is why TopoShot replaces announcement blocking with the\n"
               "replacement-price ladder.\n";
  return 0;
}
