#pragma once

// Shared helpers for the experiment-reproduction binaries. Each bench
// regenerates one table or figure of the paper; these helpers provide the
// common scenario recipes and report formatting.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/session.h"
#include "core/toposhot.h"
#include "core/validator.h"
#include "disc/emergence.h"
#include "graph/louvain.h"
#include "graph/metrics.h"
#include "obs/export.h"
#include "util/cli.h"
#include "util/table.h"

namespace topo::bench {

/// Prints the standard bench banner with the paper artifact it reproduces.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

/// Scenario options for network-scale runs: mempools scaled 10x down from
/// Geth stock so event counts stay laptop-friendly (DESIGN.md §2).
inline core::ScenarioOptions scaled_options(uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 512;
  opt.future_cap = 128;
  opt.background_txs = 384;
  return opt;
}

/// Scenario options for local-validation runs at full Geth scale (paper
/// parameters: L=5120, queue 1024, Z=5120).
inline core::ScenarioOptions fullscale_options(uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 5120;
  opt.future_cap = 1024;
  opt.background_txs = 4000;
  return opt;
}

/// Dumps the scenario's cumulative metrics snapshot as JSON when the bench
/// was run with --metrics-out=PATH; no-op otherwise. Benches that build
/// several scenarios call this once per scenario — the last write wins, so
/// the file always holds the snapshot of the final world.
inline void write_metrics_if_requested(const util::Cli& cli, core::Scenario& sc) {
  const std::string path = cli.get_string("metrics-out", "");
  if (path.empty()) return;
  if (obs::write_json_file(path, obs::snapshot_to_json(sc.snapshot_metrics()))) {
    std::cout << "[metrics: " << path << "]\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
  }
}

/// Row of graph statistics as printed in paper Tables 4/9/10.
inline void add_graph_stat_rows(util::Table& table, const std::string& label,
                                const graph::Graph& g, util::Rng& rng) {
  const auto d = graph::distance_stats(g);
  table.add_row({label + " diameter", util::fmt(static_cast<long long>(d.diameter))});
  table.add_row({label + " periphery size", util::fmt(static_cast<long long>(d.periphery_size))});
  table.add_row({label + " radius", util::fmt(static_cast<long long>(d.radius))});
  table.add_row({label + " center size", util::fmt(static_cast<long long>(d.center_size))});
  table.add_row({label + " eccentricity (mean)", util::fmt(d.mean_eccentricity, 3)});
  table.add_row({label + " clustering coeff", util::fmt(graph::clustering_coefficient(g), 4)});
  table.add_row({label + " transitivity", util::fmt(graph::transitivity(g), 4)});
  table.add_row({label + " assortativity", util::fmt(graph::degree_assortativity(g), 4)});
  util::Rng lrng = rng.split();
  const auto comm = graph::louvain(g, lrng);
  table.add_row({label + " modularity", util::fmt(comm.modularity, 4)});
  table.add_row({label + " communities", util::fmt(static_cast<long long>(comm.count))});
}

}  // namespace topo::bench
