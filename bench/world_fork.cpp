// Fork-vs-rebuild cost of shard replicas (the layered world-snapshot store).
//
// `exec::run_sharded_campaign` gives every shard a private replica of the
// warmed world. Before the snapshot layer, each shard paid the full price of
// constructing a Scenario and re-seeding its background load; now shards
// fork one shared WorldSnapshot and copy-on-write pages lazily. This bench
// measures exactly that trade at several world sizes:
//
//   rebuild  — construct Scenario(truth, opt) + seed_background(), per replica
//   fork     — Scenario::fork(snapshot of one warmed base), per replica
//
// and reports wall-clock per replica, the speedup (rebuild/fork), and the
// process peak RSS after each phase (ru_maxrss is monotone, so the phases
// run fork-first and the deltas are attributable). The --out artifact uses
// the "rows" sweep shape (k = world size, speedup as the gated metric) that
// scripts/bench_compare.py checks against BENCH_baseline.json.

#include <sys/resource.h>

#include <chrono>
#include <memory>

#include "bench_common.h"
#include "graph/generators.h"
#include "rpc/json.h"

namespace {

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB -> MiB
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 11);
  const size_t max_nodes = cli.get_uint("max-nodes", 10'000);
  const std::string out = cli.get_string("out", "");
  bench::banner("World fork vs rebuild", "shard replica setup cost (PERFORMANCE.md)");

  std::cout << "Per-replica setup cost: fork a warmed WorldSnapshot vs rebuild\n"
               "+ re-warm from scratch, as run_sharded_campaign does per shard.\n\n";

  util::Table table({"Nodes", "Replicas", "Rebuild (ms)", "Fork (ms)", "Speedup",
                     "Peak RSS (MiB)"});
  rpc::JsonArray rows;

  for (const size_t n : {size_t{100}, size_t{1'000}, size_t{10'000}}) {
    if (n > max_nodes) continue;
    // Replica counts sized so each phase runs long enough to time robustly
    // but the n=10k row stays CI-friendly.
    const size_t reps = n >= 10'000 ? 3 : (n >= 1'000 ? 8 : 32);

    util::Rng rng(seed);
    const graph::Graph truth = graph::erdos_renyi_gnm(n, n * 3, rng);
    core::ScenarioOptions opt = bench::scaled_options(seed);
    // Keep the background load per node modest so the 10k-node row finishes
    // in seconds; the warm cost still dominates Scenario construction.
    opt.background_txs = 96;

    // One warmed base world, snapshotted — the campaign's shared layer.
    core::Scenario base(truth, opt);
    base.seed_background();
    const core::WorldSnapshot snap = base.snapshot();

    // Fork phase first: ru_maxrss is monotone, so sampling after this phase
    // attributes the fork working set before the rebuild phase can mask it.
    double t0 = now_s();
    for (size_t i = 0; i < reps; ++i) {
      auto replica = core::Scenario::fork(snap);
      replica->reseed(seed + i);
    }
    const double fork_ms = (now_s() - t0) * 1e3 / static_cast<double>(reps);
    const double fork_rss = peak_rss_mb();

    t0 = now_s();
    for (size_t i = 0; i < reps; ++i) {
      core::Scenario replica(truth, opt);
      replica.seed_background();
      replica.reseed(seed + i);
    }
    const double rebuild_ms = (now_s() - t0) * 1e3 / static_cast<double>(reps);
    const double rebuild_rss = peak_rss_mb();

    const double speedup = fork_ms > 0 ? rebuild_ms / fork_ms : 0.0;
    table.add_row({util::fmt(n), util::fmt(reps), util::fmt(rebuild_ms, 2),
                   util::fmt(fork_ms, 2), util::fmt(speedup, 1) + "x",
                   util::fmt(fork_rss, 0) + " / " + util::fmt(rebuild_rss, 0)});
    rows.push_back(rpc::Json(rpc::JsonObject{
        {"k", rpc::Json(static_cast<uint64_t>(n))},
        {"speedup", rpc::Json(speedup)},
        {"sim_time", rpc::Json(fork_ms / 1e3)},  // real_time_ns carrier
        {"rebuild_ms", rpc::Json(rebuild_ms)},
        {"fork_ms", rpc::Json(fork_ms)},
        {"peak_rss_mb", rpc::Json(rebuild_rss)},
    }));
  }

  table.print(std::cout);
  std::cout << "\nAcceptance floor: forking a warmed 1k-node world must be >= 5x\n"
               "faster than rebuilding and re-warming it (docs/PERFORMANCE.md).\n";

  if (!out.empty()) {
    const rpc::Json doc(rpc::JsonObject{
        {"bench", rpc::Json("world_fork")},
        {"seed", rpc::Json(seed)},
        {"rows", rpc::Json(std::move(rows))},
    });
    if (obs::write_json_file(out, doc)) {
      std::cout << "[sweep: " << out << "]\n";
    } else {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }
  return 0;
}
