// Reproduces paper Fig. 4a: "Recall with TopoShot sending increasing number
// of future transactions."
//
// Setup mirrors §6.1: a controlled node B joins a Ropsten-like network and
// every ground-truth neighbor A is measured with measureOneLink while the
// flood size Z sweeps upward. The network carries the three recall culprits
// the paper identifies: nodes with custom (larger) mempools, nodes with a
// custom replacement bump, and nodes that do not forward transactions.
// Each Z row runs in a fresh world (same seed, so the same nodes carry the
// same quirks) under live organic traffic and mining.
//
// Expected shape: recall climbs with Z (84% -> 97% in the paper) and
// saturates below 100%; precision stays 1.0 throughout.

#include "bench_common.h"
#include "graph/generators.h"

namespace {

topo::core::ScenarioOptions fig4a_options(uint64_t seed) {
  topo::core::ScenarioOptions opt = topo::bench::scaled_options(seed);
  opt.block_gas_limit = 30 * topo::eth::kTransferGas;
  opt.custom_mempool_fraction = 0.10;  // culprit 1: custom mempool size
  opt.custom_capacity = 1024;          // 2x the scaled default
  opt.custom_bump_fraction = 0.05;     // culprit 2: custom price bump
  opt.custom_bump_bp = 2500;
  opt.nonforwarding_fraction = 0.05;   // culprit 3: silent nodes
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 80);
  const uint64_t seed = cli.get_uint("seed", 4242);
  const size_t max_neighbors = cli.get_uint("neighbors", 24);
  bench::banner("Recall vs number of future transactions", "Figure 4a (§6.1)");

  // Ropsten-like emergent topology (shared by every row).
  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);

  // Controlled node B: the best-connected regular node.
  graph::NodeId b_idx = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) > g.degree(b_idx)) b_idx = u;
  }
  const auto neighbors = g.neighbors(b_idx);
  const size_t tested = std::min<size_t>(neighbors.size(), max_neighbors);
  std::cout << "Controlled node B has " << neighbors.size() << " ground-truth neighbors; testing "
            << tested << " of them per Z (fresh world per row).\n\n";

  util::Table table({"Z (futures)", "Detected", "Tested", "Recall", "Precision"});
  for (const size_t z : {128u, 192u, 256u, 320u, 384u, 512u, 768u, 1024u}) {
    core::Scenario sc(g, fig4a_options(seed));
    sc.seed_background();
    sc.start_churn(2.0);
    core::MeasurementSession session(
        sc, core::MeasureConfig::Builder(sc.default_measure_config()).flood_Z(z).build());

    size_t detected = 0;
    size_t false_pos = 0;
    size_t non_neighbors_tested = 0;
    for (size_t i = 0; i < tested; ++i) {
      const auto r = session.one_link(sc.targets()[neighbors[i]], sc.targets()[b_idx]);
      if (r.value.connected) ++detected;
    }
    // Also probe a few non-neighbors to confirm precision.
    for (graph::NodeId u = 0; u < g.num_nodes() && non_neighbors_tested < 6; ++u) {
      if (u == b_idx || g.has_edge(u, b_idx)) continue;
      ++non_neighbors_tested;
      const auto r = session.one_link(sc.targets()[u], sc.targets()[b_idx]);
      if (r.value.connected) ++false_pos;
    }
    bench::write_metrics_if_requested(cli, sc);
    const double recall = tested ? static_cast<double>(detected) / tested : 1.0;
    const double precision =
        (detected + false_pos) ? static_cast<double>(detected) / (detected + false_pos) : 1.0;
    table.add_row({util::fmt(z), util::fmt(detected), util::fmt(tested), util::fmt_pct(recall),
                   util::fmt_pct(precision)});
  }
  table.print(std::cout);

  // §5.2.3's proactive remedy: probe each missing neighbor's effective
  // flood requirement against the controlled node and re-measure with the
  // discovered per-node overrides.
  {
    core::Scenario sc(g, fig4a_options(seed));
    sc.seed_background();
    sc.start_churn(2.0);
    core::MeasurementSession session(sc);
    core::Preprocessor pre(sc.net(), sc.m(), sc.accounts(), sc.factory(), session.config());
    size_t recovered = 0, detected = 0;
    for (size_t i = 0; i < tested; ++i) {
      const auto base = session.one_link(sc.targets()[neighbors[i]], sc.targets()[b_idx]).value;
      if (base.connected) {
        ++detected;
        continue;
      }
      const size_t z = pre.probe_flood_size(sc.targets()[neighbors[i]], sc.targets()[b_idx],
                                            {1024, 2048});
      if (z > 0) {
        ++detected;
        ++recovered;
      }
    }
    std::cout << "\nWith pre-processing (escalating Z per missing neighbor, §5.2.3): "
              << detected << "/" << tested << " detected (" << recovered
              << " recovered beyond the stock flood).\n";
  }

  std::cout << "\nPaper reference: recall 84% at small Z rising to 97% at large Z, never\n"
               "reaching 100% (custom mempools / custom bumps / non-forwarding nodes);\n"
               "precision 100% throughout. Z values here are 10x-scaled like the mempools.\n";
  return 0;
}
