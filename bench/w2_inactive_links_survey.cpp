// Experimental reproduction of the paper's §4/Table 1 distinction between
// W2 (measuring *inactive* links via RLPx FIND_NODE, as Gao et al. and
// Paphitis et al. do) and W3 (TopoShot's *active* links).
//
// A crawler sends FIND_NODE queries to every node's discovery endpoint and
// reconstructs the routing-table graph — the 272-entry "inactive neighbor"
// view. The same world's blockchain overlay (the active links TopoShot
// measures) is a far sparser, different graph: the W2 census cannot tell
// which of the ~272 table entries are among the ~25-50 active peers, which
// is the paper's argument for why a new technique was needed.

#include "bench_common.h"
#include "disc/dialer.h"
#include "graph/louvain.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 300);
  const uint64_t seed = cli.get_uint("seed", 17);
  bench::banner("W2 (FIND_NODE inactive links) vs W3 (active links)", "§4, Table 1");

  // One platform overlay: run discovery, then form the active overlay on
  // top of the populated tables — both views of the same world.
  util::Rng rng(seed);
  disc::DiscoverySim platform(n, rng.split());
  platform.run_until_filled(0.75);

  // W2: crawl every node's table with FIND_NODE toward the node's own id
  // and random targets, exactly what the W2 studies do. Each response leaks
  // 16 entries; repeated queries reconstruct most of the table.
  graph::Graph inactive(n);
  size_t queries = 0;
  for (size_t u = 0; u < n; ++u) {
    // Self-target plus a few random targets recovers most buckets.
    for (int probe = 0; probe < 24; ++probe) {
      const auto target =
          probe == 0 ? platform.node_id(u) : disc::random_id(rng);
      ++queries;
      for (const auto entry : platform.table(u).closest(target, 16)) {
        inactive.add_edge(static_cast<graph::NodeId>(u), static_cast<graph::NodeId>(entry));
      }
    }
  }

  // W3: the active overlay formed from the same tables (what TopoShot
  // measures transaction-by-transaction).
  auto recipe = disc::ropsten_like(n);
  disc::DialerConfig dial;
  dial.max_peers.assign(n, 50);
  util::Rng drng = rng.split();
  graph::Graph active = disc::form_active_topology(platform, dial, drng);

  auto degrees = [](const graph::Graph& g) {
    const auto h = graph::degree_histogram(g);
    return std::tuple{h.mean(), h.max()};
  };
  const auto [inactive_mean, inactive_max] = degrees(inactive);
  const auto [active_mean, active_max] = degrees(active);

  util::Table table({"View", "Edges", "Mean degree", "Max degree"});
  table.add_row({"W2: routing tables (FIND_NODE)", util::fmt(inactive.num_edges()),
                 util::fmt(inactive_mean, 1), util::fmt(static_cast<long long>(inactive_max))});
  table.add_row({"W3: active overlay (TopoShot's target)", util::fmt(active.num_edges()),
                 util::fmt(active_mean, 1), util::fmt(static_cast<long long>(active_max))});
  table.print(std::cout);
  std::cout << "\nFIND_NODE queries sent: " << queries << "\n";

  // How useless is W2 for predicting active links? Precision of "table
  // entry => active link".
  size_t overlap = 0;
  for (const auto& [u, v] : inactive.edges()) {
    if (active.has_edge(u, v)) ++overlap;
  }
  size_t covered = 0;
  for (const auto& [u, v] : active.edges()) {
    if (inactive.has_edge(u, v)) ++covered;
  }
  std::cout << "\nTreating every inactive link as active:\n"
            << "  precision: " << util::fmt_pct(static_cast<double>(overlap) /
                                                 static_cast<double>(inactive.num_edges()))
            << "  (share of table links that are actually active)\n"
            << "  recall:    " << util::fmt_pct(static_cast<double>(covered) /
                                                 static_cast<double>(active.num_edges()))
            << "  (active links visible in the tables at all)\n";

  std::cout << "\nPaper reference (§4, W2): \"This method cannot distinguish a node's (50)\n"
               "active neighbors from its (272) inactive ones and does not reveal the\n"
               "exact topology information as TopoShot does.\" The tables over-report by\n"
               "an order of magnitude; only TopoShot's W3 probe resolves the real links.\n";
  return 0;
}
