// Reproduces Appendix C / Theorem C.2: the non-interference replay
// experiment. The same world runs twice under an identical mining schedule
// — once with a TopoShot measurement, once without. With conditions V1
// (blocks full) and V2 (included prices above Y0) verified a posteriori,
// the two block streams must contain identical transactions.

#include "bench_common.h"
#include "core/noninterference.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const uint64_t seed = cli.get_uint("seed", 90);
  const size_t n = cli.get_uint("nodes", 16);
  bench::banner("Non-interference replay experiment", "Appendix C, Theorem C.2");

  auto run_world = [&](bool measure, eth::Wei y0) {
    util::Rng rng(seed);
    const graph::Graph g = graph::erdos_renyi_gnm(n, n * 2, rng);
    core::ScenarioOptions opt = bench::scaled_options(seed);
    opt.background_txs = 448;
    opt.background_price_lo = eth::gwei(5.0);
    opt.background_price_hi = eth::gwei(50.0);
    opt.block_gas_limit = 4 * eth::kTransferGas;  // always-full blocks (V1)
    core::Scenario sc(g, opt);
    sc.seed_background();
    sc.net().start_mining({sc.targets()[0]}, 5.0);

    core::MeasurementSession session(sc);
    session.config().price_Y = y0;
    const double t1 = sc.sim().now();
    if (measure) session.one_link(sc.targets()[1], sc.targets()[2]);
    sc.sim().run_until(180.0);
    const double t2 = sc.sim().now();
    return std::tuple{sc.chain().blocks(), core::verify_noninterference(sc.chain(), t1, t2, 0.0, y0)};
  };

  // Case 1: Y0 far below every organic price — conditions hold.
  {
    const eth::Wei y0 = eth::gwei(0.01);
    const auto [with_blocks, check] = run_world(true, y0);
    const auto [without_blocks, check2] = run_world(false, y0);
    (void)check2;
    const bool same = core::same_included_transactions(with_blocks, without_blocks, {});
    util::Table table({"Check", "Result"});
    table.add_row({"V1: all blocks full", check.v1_blocks_full ? "PASS" : "FAIL"});
    table.add_row({"V2: included prices > Y0", check.v2_prices_above_y0 ? "PASS" : "FAIL"});
    table.add_row({"blocks inspected", util::fmt(check.blocks_inspected)});
    table.add_row({"identical included txs (Thm C.2)", same ? "YES" : "NO"});
    std::cout << "Case 1: conservative Y0 = 0.01 Gwei (conditions should hold)\n";
    table.print(std::cout);
  }

  // Case 2: reckless Y0 above part of the included fee range — V2 must
  // fail, and the theorem gives no guarantee.
  {
    const eth::Wei y0 = eth::gwei(45.0);
    const auto [with_blocks, check] = run_world(true, y0);
    (void)with_blocks;
    std::cout << "\nCase 2: reckless Y0 = 45 Gwei (above part of the included fees)\n";
    util::Table table({"Check", "Result"});
    table.add_row({"V1: all blocks full", check.v1_blocks_full ? "PASS" : "FAIL"});
    table.add_row({"V2: included prices > Y0", check.v2_prices_above_y0 ? "PASS" : "FAIL"});
    table.print(std::cout);
  }

  std::cout << "\nPaper reference: with V1 and V2 verified, the measured and hypothetical\n"
               "worlds include identical transaction sets (Theorem C.2); the a-priori\n"
               "proof is infeasible with Geth's 5120-slot mempool, hence the\n"
               "a-posteriori design (Appendix C.1).\n";
  return 0;
}
