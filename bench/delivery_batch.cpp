// Batched per-link delivery microbenchmarks: the same deliver_tx-dominated
// workloads with batching disabled (window 0, one kDeliverTx event per
// message — the pre-batching cost model) and enabled (the default window).
// The batched/unbatched pairs share every argument except the window, so
// the ratio between them IS the payoff of coalescing queue traffic; both
// sides are gated against BENCH_baseline.json so neither the optimization
// nor the reference path can silently regress.
//
// Benchmark names encode the window in milliseconds: BM_*/0 is unbatched,
// BM_*/250 is the default window.

#include <benchmark/benchmark.h>

#include "core/session.h"
#include "core/toposhot.h"
#include "eth/chain.h"
#include "graph/generators.h"
#include "p2p/network.h"
#include "p2p/node.h"

namespace {

using namespace topo;

/// Inert delivery sink: the cost under test is the queue/dispatch/arena
/// machinery, not mempool admission.
struct NullPeer final : p2p::Peer {
  uint64_t delivered = 0;
  void deliver_tx(const eth::Transaction& tx, p2p::PeerId) override {
    benchmark::DoNotOptimize(&tx);
    ++delivered;
  }
  void deliver_announce(eth::TxHash, p2p::PeerId) override {}
  void deliver_get_tx(eth::TxHash, p2p::PeerId) override {}
};

/// One directed stream, kSends full-tx sends, drained to quiescence: the
/// purest deliver_tx-dominated shape. Batched, the whole burst rides a
/// handful of kDeliverTxBatch drains instead of kSends wheel pops.
void BM_SingleStreamBurst(benchmark::State& state) {
  const double window = static_cast<double>(state.range(0)) / 1000.0;
  constexpr int kSends = 4096;
  eth::TxFactory factory;
  eth::AccountManager accounts;
  const eth::Address a = accounts.create_one();
  const eth::Transaction tx = factory.make(a, accounts.allocate_nonce(a), 1000);
  uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    eth::Chain chain(8'000'000);
    p2p::Network net(&sim, &chain, util::Rng(7), sim::LatencyModel::fixed(0.05));
    net.set_batch_window(window);
    NullPeer rx;
    NullPeer src;
    const p2p::PeerId to = net.register_peer(&rx);
    const p2p::PeerId from = net.register_peer(&src);
    state.ResumeTiming();
    for (int i = 0; i < kSends; ++i) net.send_tx(from, to, tx);
    sim.run();
    sink += rx.delivered;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kSends);
}
BENCHMARK(BM_SingleStreamBurst)->Arg(0)->Arg(250);

/// Fan-out over many streams (one sender, 64 receivers, round-robin):
/// every stream batches independently, the shape a gossiping node's
/// per-neighbor forwards produce.
void BM_FanOutBurst(benchmark::State& state) {
  const double window = static_cast<double>(state.range(0)) / 1000.0;
  constexpr int kReceivers = 64;
  constexpr int kSends = 4096;
  eth::TxFactory factory;
  eth::AccountManager accounts;
  const eth::Address a = accounts.create_one();
  const eth::Transaction tx = factory.make(a, accounts.allocate_nonce(a), 1000);
  uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    eth::Chain chain(8'000'000);
    p2p::Network net(&sim, &chain, util::Rng(7), sim::LatencyModel::lognormal(0.05, 0.4));
    net.set_batch_window(window);
    NullPeer src;
    const p2p::PeerId from = net.register_peer(&src);
    NullPeer rxs[kReceivers];
    p2p::PeerId to[kReceivers];
    for (int i = 0; i < kReceivers; ++i) to[i] = net.register_peer(&rxs[i]);
    state.ResumeTiming();
    for (int i = 0; i < kSends; ++i) net.send_tx(from, to[i % kReceivers], tx);
    sim.run();
    for (const NullPeer& rx : rxs) sink += rx.delivered;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kSends);
}
BENCHMARK(BM_FanOutBurst)->Arg(0)->Arg(250);

/// End to end: a pending transaction flooding a dense overlay through real
/// nodes (mempool admission and all), batched vs not. The absolute numbers
/// include admission cost, so the ratio here is the honest campaign-level
/// payoff rather than the queue-isolated ceiling above.
void BM_FloodCampaign(benchmark::State& state) {
  const double window = static_cast<double>(state.range(0)) / 1000.0;
  constexpr size_t kNodes = 120;
  util::Rng rng(1);
  const auto g = graph::erdos_renyi_gnm(kNodes, kNodes * 10, rng);
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioOptions opt;
    opt.seed = 2;
    opt.background_txs = 0;
    opt.batch_window = window;
    core::Scenario sc(g, opt);
    const eth::Address a = sc.accounts().create_one();
    const auto tx = sc.factory().make(a, sc.accounts().allocate_nonce(a), 1000);
    state.ResumeTiming();
    sc.m().send_to(sc.targets()[0], tx);
    sc.sim().run_until(sc.sim().now() + 10.0);
    benchmark::DoNotOptimize(sc.net().messages_delivered());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kNodes);
}
BENCHMARK(BM_FloodCampaign)->Arg(0)->Arg(250)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
