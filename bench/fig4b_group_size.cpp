// Reproduces paper Fig. 4b: "Precision and recall with increasing group
// size in parallel measurement."
//
// Setup mirrors §6.1: one sink node B' (q = 1) and p source nodes measured
// in a single measurePar pass. For p below B's true neighbor count the
// sources are true neighbors; beyond that, non-neighbors are added, as in
// the paper. The network carries live organic transaction traffic: larger
// groups take longer, organic churn erodes the low-priced placeholder
// transactions, and recall declines while precision stays at 100%.

#include "bench_common.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace topo;
  util::Cli cli(argc, argv);
  const size_t n = cli.get_uint("nodes", 110);
  const uint64_t seed = cli.get_uint("seed", 99);
  const double organic_rate = cli.get_double("organic-rate", 3.0);
  const double churn_rate = cli.get_double("churn-rate", 0.8);
  bench::banner("Precision/recall vs parallel group size", "Figure 4b (§6.1)");

  util::Rng rng(seed);
  auto recipe = disc::ropsten_like(n);
  const graph::Graph g = disc::emerge_topology(recipe, rng);

  core::ScenarioOptions opt = bench::scaled_options(seed);
  // Live-network conditions: organic transactions keep arriving and miners
  // keep including the highest-priced ones. Measurement state (txB/txC at
  // ~median price) therefore has a finite lifetime — the longer a group
  // takes, the more of it decays before the source phase reaches it.
  opt.block_gas_limit = cli.get_uint("block-txs", 40) * eth::kTransferGas;
  core::Scenario sc(g, opt);
  sc.seed_background();
  sc.start_churn(organic_rate);
  // Peer churn erodes long measurements: links in the ground-truth snapshot
  // disappear before late sources get their turn, and reconnect gossip
  // re-propagates txC (the §5.2.1 race). The paper observes >95% of peers
  // staying connected over a run — the remainder caps recall at large p.
  sc.net().start_link_churn(churn_rate);

  // Sink B': a node with a healthy neighbor count (the paper's fresh node
  // had 29 measurable neighbors).
  graph::NodeId b_idx = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) > g.degree(b_idx)) b_idx = u;
  }
  const auto& true_neighbors = g.neighbors(b_idx);
  std::vector<graph::NodeId> non_neighbors;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u != b_idx && !g.has_edge(u, b_idx)) non_neighbors.push_back(u);
  }
  std::cout << "Sink B' has " << true_neighbors.size() << " true neighbors; groups beyond that\n"
            << "are padded with non-neighbors (as in the paper).\n\n";

  util::Table table({"Group size p", "TP", "FP", "FN", "Recall", "Precision", "Sim time (s)"});
  for (const size_t p : {1u, 5u, 10u, 20u, 30u, 45u, 60u, 80u, 99u}) {
    if (p >= n) break;
    // Assemble sources: true neighbors first, then non-neighbors.
    std::vector<graph::NodeId> chosen;
    for (size_t i = 0; i < p && i < true_neighbors.size(); ++i)
      chosen.push_back(true_neighbors[i]);
    for (size_t i = 0; chosen.size() < p && i < non_neighbors.size(); ++i)
      chosen.push_back(non_neighbors[i]);

    std::vector<p2p::PeerId> sources;
    std::vector<core::ParallelEdge> edges;
    for (size_t i = 0; i < chosen.size(); ++i) {
      edges.push_back({i, 0});
      sources.push_back(sc.targets()[chosen[i]]);
    }
    const auto res =
        core::MeasurementSession(sc).parallel(sources, {sc.targets()[b_idx]}, edges).value;

    size_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < chosen.size(); ++i) {
      const bool real_t0 = g.has_edge(chosen[i], b_idx);
      // Under peer churn the paper validates against the live peer list
      // (RPC on the controlled node); a positive is false only if the link
      // existed neither in the snapshot nor now.
      const bool real_now = sc.net().linked(sc.targets()[chosen[i]], sc.targets()[b_idx]);
      if (res.connected[i] && (real_t0 || real_now)) ++tp;
      if (res.connected[i] && !real_t0 && !real_now) ++fp;
      if (!res.connected[i] && real_t0) ++fn;
    }
    const double recall = (tp + fn) ? static_cast<double>(tp) / (tp + fn) : 1.0;
    const double precision = (tp + fp) ? static_cast<double>(tp) / (tp + fp) : 1.0;
    table.add_row({util::fmt(p), util::fmt(tp), util::fmt(fp), util::fmt(fn),
                   util::fmt_pct(recall), util::fmt_pct(precision),
                   util::fmt(res.finished_at - res.started_at, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: precision 100% at every group size; recall 100% up to\n"
               "p = 29 (B's neighbor count) and declining toward ~60% at p = 99.\n";
  return 0;
}
