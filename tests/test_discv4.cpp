// Tests for the event-driven discv4 protocol: bootstrap convergence,
// lookups, liveness tracking, eviction challenges, and loss tolerance.

#include <gtest/gtest.h>

#include "disc/discv4.h"

namespace topo::disc {
namespace {

TEST(DiscV4, BootstrapFillsTables) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(1));
  for (int i = 0; i < 40; ++i) net.add_node();
  net.converge(120.0);

  size_t total = 0;
  for (uint32_t i = 0; i < net.size(); ++i) total += net.node(i).table_size();
  const double avg = static_cast<double>(total) / net.size();
  EXPECT_GT(avg, 15.0) << "tables should fill well past the bootstrap contact";
}

TEST(DiscV4, LookupFindsClosestNodes) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(2));
  for (int i = 0; i < 30; ++i) net.add_node();
  net.converge(120.0);

  // Look up node 17's exact id from node 3: it must appear in the result.
  const auto target = net.node(17).id();
  std::vector<uint32_t> found;
  net.node(3).lookup(target, [&](std::vector<uint32_t> nodes) { found = std::move(nodes); });
  sim.run_until(sim.now() + 10.0);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found.front(), 17u) << "the target itself is the closest node to its own id";
}

TEST(DiscV4, PongUpdatesLastSeen) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(3));
  for (int i = 0; i < 10; ++i) net.add_node();
  net.converge(60.0);

  bool any_seen = false;
  for (uint32_t i = 0; i < net.size() && !any_seen; ++i) {
    for (const auto entry : net.node(i).table_entries()) {
      if (net.node(i).last_seen(entry).has_value()) {
        any_seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_seen) << "liveness (last_seen) must be tracked via PONGs";
}

TEST(DiscV4, DeadNodesAreEvicted) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(4));
  for (int i = 0; i < 20; ++i) net.add_node();
  net.converge(90.0);

  // Kill node 5 and let refresh cycles re-ping; its entries must drain.
  size_t before = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (i == 5) continue;
    const auto entries = net.node(i).table_entries();
    before += std::count(entries.begin(), entries.end(), 5u);
  }
  ASSERT_GT(before, 0u) << "node 5 should be known before dying";

  net.set_dead(5, true);
  // Pressure: new nodes join, full buckets challenge the dead entry.
  for (int i = 0; i < 20; ++i) net.add_node();
  for (uint32_t i = 20; i < 40; ++i) net.node(i).bootstrap(0, net.node(0).id());
  sim.run_until(sim.now() + 240.0);

  size_t after = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (i == 5) continue;
    const auto entries = net.node(i).table_entries();
    after += std::count(entries.begin(), entries.end(), 5u);
  }
  EXPECT_LT(after, before) << "eviction challenges must drain a dead contact";
}

TEST(DiscV4, ToleratesDatagramLoss) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(5), 0.03, /*loss=*/0.2);
  for (int i = 0; i < 25; ++i) net.add_node();
  net.converge(180.0);
  size_t total = 0;
  for (uint32_t i = 0; i < net.size(); ++i) total += net.node(i).table_size();
  EXPECT_GT(static_cast<double>(total) / net.size(), 8.0)
      << "discovery must still converge under 20% packet loss";
}

TEST(DiscV4, DatagramsAreCounted) {
  sim::Simulator sim;
  DiscV4Net net(&sim, util::Rng(6));
  for (int i = 0; i < 5; ++i) net.add_node();
  net.converge(30.0);
  EXPECT_GT(net.datagrams(), 20u);
}

}  // namespace
}  // namespace topo::disc
