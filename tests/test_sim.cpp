// Unit tests for the discrete-event simulator and latency models.

#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace topo::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(2.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });  // same time: insertion order
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunExecutesAllAndAdvancesClock) {
  Simulator sim;
  double seen = -1.0;
  sim.at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.processed(), 1u);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 5.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.run_until(10.0);
  bool ran = false;
  sim.at(1.0, [&] {
    ran = true;
    EXPECT_GE(sim.now(), 10.0);
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(2.0, [&] { ++count; });
  sim.at(3.0, [&] { ++count; });
  sim.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EveryRepeatsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.every(1.0, 1.0, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunCappedStopsEarly) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.at(static_cast<double>(i), [] {});
  EXPECT_FALSE(sim.run_capped(5));
  EXPECT_TRUE(sim.run_capped(100));
}

TEST(Simulator, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] {
    order.push_back(1);
    sim.at(1.0, [&] { order.push_back(2); });  // same timestamp, runs after
  });
  sim.at(2.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Latency, FixedIsConstant) {
  util::Rng rng(1);
  const auto model = LatencyModel::fixed(0.25);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.sample(rng), 0.25);
}

TEST(Latency, UniformWithinBounds) {
  util::Rng rng(2);
  const auto model = LatencyModel::uniform(0.01, 0.05);
  for (int i = 0; i < 1000; ++i) {
    const double v = model.sample(rng);
    ASSERT_GE(v, 0.01);
    ASSERT_LE(v, 0.05);
  }
}

TEST(Latency, LognormalMedianRoughlyMatches) {
  util::Rng rng(3);
  const auto model = LatencyModel::lognormal(0.05, 0.4);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(model.sample(rng));
  EXPECT_NEAR(util::median(xs), 0.05, 0.005);
}

TEST(Latency, FloorsAtPositiveValue) {
  util::Rng rng(4);
  const auto model = LatencyModel::fixed(0.0);
  EXPECT_GT(model.sample(rng), 0.0);
}

}  // namespace
}  // namespace topo::sim
