// Unit tests for the discrete-event simulator and latency models.

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/latency.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace topo::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(2.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });  // same time: insertion order
  while (!q.empty()) q.pop().ev.fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, BothBackendsOrderIdentically) {
  for (QueueBackend backend : {QueueBackend::kTimingWheel, QueueBackend::kLegacyHeap}) {
    EventQueue q(backend);
    EXPECT_EQ(q.backend(), backend);
    std::vector<int> order;
    q.push(2.0, [&] { order.push_back(3); });
    q.push(1.0, [&] { order.push_back(1); });
    q.push(1.0, [&] { order.push_back(2); });
    // Beyond both wheel levels: exercises the overflow heap.
    q.push(100000.0, [&] { order.push_back(5); });
    q.push(30.0, [&] { order.push_back(4); });  // L1 horizon
    while (!q.empty()) q.pop().ev.fire();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  }
}

// Directed regression: an event beyond the L1 horizon (overflow heap) must
// still pop before a later event that lands in L1 only because the wheel
// has advanced. Sequence (L0 window spans 2 s, L1 horizon ~1026 s):
// t=0.001 (L0), t=1024.5 (L1), t=1251 (overflow); pop once so refill
// jumps the wheel to the 1024.5 window; t=2000 now fits in L1. A refill
// that advances to the next occupied L1 bucket without considering the
// overflow minimum pops 2000 before 1251.
TEST(EventQueue, OverflowPopsBeforeLaterL1PushAfterWheelAdvance) {
  for (QueueBackend backend : {QueueBackend::kTimingWheel, QueueBackend::kLegacyHeap}) {
    EventQueue q(backend);
    std::vector<int> order;
    q.push(0.001, [&] { order.push_back(1); });
    q.push(1024.5, [&] { order.push_back(2); });
    q.push(1251.0, [&] { order.push_back(3); });
    q.pop().ev.fire();
    q.push(2000.0, [&] { order.push_back(4); });
    while (!q.empty()) q.pop().ev.fire();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  }
}

TEST(EventQueue, DefaultBackendHookRoundTrips) {
  const QueueBackend original = default_queue_backend();
  set_default_queue_backend(QueueBackend::kLegacyHeap);
  EXPECT_EQ(EventQueue().backend(), QueueBackend::kLegacyHeap);
  set_default_queue_backend(QueueBackend::kTimingWheel);
  EXPECT_EQ(EventQueue().backend(), QueueBackend::kTimingWheel);
  set_default_queue_backend(original);
}

// Property test of the determinism contract: under randomized schedules —
// equal-time bursts, far-future outliers, interleaved pops, same-bucket
// re-pushes — the wheel pops the exact (time, seq) order the reference
// binary heap does.
TEST(EventQueue, WheelMatchesReferenceHeapUnderRandomBursts) {
  util::Rng rng(99);
  EventQueue wheel(QueueBackend::kTimingWheel);
  EventQueue heap(QueueBackend::kLegacyHeap);
  std::vector<int> wheel_order, heap_order;
  int tag = 0;
  double now = 0.0;

  auto push_both = [&](double t) {
    const int id = tag++;
    wheel.push(t, [&wheel_order, id] { wheel_order.push_back(id); });
    heap.push(t, [&heap_order, id] { heap_order.push_back(id); });
  };
  auto pop_both = [&] {
    auto ws = wheel.pop();
    auto hs = heap.pop();
    ASSERT_DOUBLE_EQ(ws.t, hs.t);
    now = std::max(now, ws.t);
    ws.ev.fire();
    hs.ev.fire();
  };

  for (int round = 0; round < 4000; ++round) {
    const double r = rng.uniform();
    if (r < 0.50) {
      double dt = rng.uniform() * 3.0;  // within the L0/L1 horizon
      if (rng.uniform() < 0.10) dt = rng.uniform() * 3000.0;      // L1 / shallow overflow
      if (rng.uniform() < 0.05) dt = 7200.0 + rng.uniform() * 1e5;  // deep overflow
      push_both(now + dt);
    } else if (r < 0.72) {
      // Equal-time burst: FIFO within the burst must survive bucketing.
      const double burst_t = now + rng.uniform();
      const size_t n = 1 + rng.index(8);
      for (size_t i = 0; i < n; ++i) push_both(burst_t);
    } else if (r < 0.80 && !wheel.empty()) {
      // Same-time follow-up: push at exactly the next pop's timestamp,
      // which lands in the bucket currently draining.
      push_both(wheel.next_time());
    } else if (!wheel.empty()) {
      const size_t k = 1 + rng.index(4);
      for (size_t i = 0; i < k && !wheel.empty(); ++i) pop_both();
    }
  }
  ASSERT_EQ(wheel.size(), heap.size());
  while (!wheel.empty()) pop_both();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(wheel_order, heap_order);
}

// Property test focused on the L1/overflow boundary (~1026 s out): delays
// cluster around the horizon, so events keep migrating from the overflow
// heap into L1 reach as pops advance the wheel while fresh pushes land in
// L1 directly — the interleaving class the directed regression above pins
// down, explored at random.
TEST(EventQueue, WheelMatchesReferenceHeapAroundOverflowHorizon) {
  util::Rng rng(7);
  EventQueue wheel(QueueBackend::kTimingWheel);
  EventQueue heap(QueueBackend::kLegacyHeap);
  std::vector<int> wheel_order, heap_order;
  int tag = 0;
  double now = 0.0;

  auto push_both = [&](double t) {
    const int id = tag++;
    wheel.push(t, [&wheel_order, id] { wheel_order.push_back(id); });
    heap.push(t, [&heap_order, id] { heap_order.push_back(id); });
  };
  auto pop_both = [&] {
    auto ws = wheel.pop();
    auto hs = heap.pop();
    ASSERT_DOUBLE_EQ(ws.t, hs.t);
    now = std::max(now, ws.t);
    ws.ev.fire();
    hs.ev.fire();
  };

  for (int round = 0; round < 3000; ++round) {
    const double r = rng.uniform();
    if (r < 0.45) {
      push_both(now + 800.0 + rng.uniform() * 600.0);  // straddles the horizon
    } else if (r < 0.60) {
      push_both(now + rng.uniform() * 2.0);  // near-term L0 filler
    } else if (!wheel.empty()) {
      const size_t k = 1 + rng.index(6);
      for (size_t i = 0; i < k && !wheel.empty(); ++i) pop_both();
    }
  }
  ASSERT_EQ(wheel.size(), heap.size());
  while (!wheel.empty()) pop_both();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(wheel_order, heap_order);
}

struct RecordingSink final : EventSink {
  std::vector<uint64_t> seen;
  void on_event(const Event& ev) override { seen.push_back(ev.payload); }
};

TEST(Simulator, TypedEventsDispatchThroughSink) {
  RecordingSink sink;
  Simulator sim;
  sim.schedule_at(1.0, Event::typed(EventKind::kFetchTimeout, &sink, 0, 0, 11));
  sim.schedule_after(2.0, Event::typed(EventKind::kFetchTimeout, &sink, 0, 0, 22));
  sim.at(1.5, [&] { sink.seen.push_back(99); });  // closures interleave freely
  sim.run();
  EXPECT_EQ(sink.seen, (std::vector<uint64_t>{11, 99, 22}));
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, RunExecutesAllAndAdvancesClock) {
  Simulator sim;
  double seen = -1.0;
  sim.at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.processed(), 1u);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 5.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.run_until(10.0);
  bool ran = false;
  sim.at(1.0, [&] {
    ran = true;
    EXPECT_GE(sim.now(), 10.0);
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(2.0, [&] { ++count; });
  sim.at(3.0, [&] { ++count; });
  sim.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EveryRepeatsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.every(1.0, 1.0, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunCappedStopsEarly) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.at(static_cast<double>(i), [] {});
  EXPECT_FALSE(sim.run_capped(5));
  EXPECT_TRUE(sim.run_capped(100));
}

TEST(Simulator, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] {
    order.push_back(1);
    sim.at(1.0, [&] { order.push_back(2); });  // same timestamp, runs after
  });
  sim.at(2.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Latency, FixedIsConstant) {
  util::Rng rng(1);
  const auto model = LatencyModel::fixed(0.25);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.sample(rng), 0.25);
}

TEST(Latency, UniformWithinBounds) {
  util::Rng rng(2);
  const auto model = LatencyModel::uniform(0.01, 0.05);
  for (int i = 0; i < 1000; ++i) {
    const double v = model.sample(rng);
    ASSERT_GE(v, 0.01);
    ASSERT_LE(v, 0.05);
  }
}

TEST(Latency, LognormalMedianRoughlyMatches) {
  util::Rng rng(3);
  const auto model = LatencyModel::lognormal(0.05, 0.4);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(model.sample(rng));
  EXPECT_NEAR(util::median(xs), 0.05, 0.005);
}

TEST(Latency, FloorsAtPositiveValue) {
  util::Rng rng(4);
  const auto model = LatencyModel::fixed(0.0);
  EXPECT_GT(model.sample(rng), 0.0);
}

}  // namespace
}  // namespace topo::sim
