// Tests for the RLP codec and devp2p message layer: spec vectors,
// round-trips, canonicality rejection, and the arithmetic size twin.

#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/messages.h"
#include "wire/rlp.h"

namespace topo::wire {
namespace {

Bytes bytes_of(std::initializer_list<int> xs) {
  Bytes out;
  for (int x : xs) out.push_back(static_cast<uint8_t>(x));
  return out;
}

// -- RLP spec vectors (from the Ethereum wiki / Yellow Paper) ---------------

TEST(Rlp, SpecVectors) {
  // "dog" -> [0x83, 'd', 'o', 'g']
  EXPECT_EQ(rlp_encode(RlpItem::str("dog")), bytes_of({0x83, 'd', 'o', 'g'}));
  // ["cat", "dog"] -> [0xc8, 0x83,'c','a','t', 0x83,'d','o','g']
  EXPECT_EQ(rlp_encode(RlpItem::list({RlpItem::str("cat"), RlpItem::str("dog")})),
            bytes_of({0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}));
  // empty string -> 0x80
  EXPECT_EQ(rlp_encode(RlpItem::str(Bytes{})), bytes_of({0x80}));
  // empty list -> 0xc0
  EXPECT_EQ(rlp_encode(RlpItem::list({})), bytes_of({0xc0}));
  // integer 0 -> 0x80 (empty string)
  EXPECT_EQ(rlp_encode(RlpItem::uint(0)), bytes_of({0x80}));
  // integer 15 -> single byte 0x0f
  EXPECT_EQ(rlp_encode(RlpItem::uint(15)), bytes_of({0x0f}));
  // integer 1024 -> [0x82, 0x04, 0x00]
  EXPECT_EQ(rlp_encode(RlpItem::uint(1024)), bytes_of({0x82, 0x04, 0x00}));
  // set-theoretic representation of 3: [ [], [[]], [ [], [[]] ] ]
  const auto three = RlpItem::list({
      RlpItem::list({}),
      RlpItem::list({RlpItem::list({})}),
      RlpItem::list({RlpItem::list({}), RlpItem::list({RlpItem::list({})})}),
  });
  EXPECT_EQ(rlp_encode(three),
            bytes_of({0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}));
}

TEST(Rlp, LongStringUsesLengthOfLength) {
  // The 56-byte string "Lorem ipsum ..." begins with 0xb8 0x38 per spec.
  std::string lorem = "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  ASSERT_GT(lorem.size(), 55u);
  const auto enc = rlp_encode(RlpItem::str(lorem));
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], lorem.size());
  EXPECT_EQ(enc.size(), 2 + lorem.size());
}

TEST(Rlp, RoundTripRandomStructures) {
  util::Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    // Random tree of depth <= 3.
    std::function<RlpItem(int)> gen = [&](int depth) -> RlpItem {
      if (depth == 0 || rng.chance(0.6)) {
        Bytes b(rng.index(70));
        for (auto& x : b) x = static_cast<uint8_t>(rng.uniform_int(0, 255));
        return RlpItem::str(std::move(b));
      }
      std::vector<RlpItem> items;
      const size_t n = rng.index(5);
      for (size_t i = 0; i < n; ++i) items.push_back(gen(depth - 1));
      return RlpItem::list(std::move(items));
    };
    const RlpItem item = gen(3);
    const Bytes enc = rlp_encode(item);
    EXPECT_EQ(enc.size(), rlp_encoded_size(item));
    const auto back = rlp_decode(enc);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == item);
  }
}

TEST(Rlp, RejectsNonCanonicalAndTruncated) {
  // Single byte wrapped in an unnecessary prefix: 0x81 0x05 is invalid
  // (0x05 encodes itself).
  EXPECT_FALSE(rlp_decode(bytes_of({0x81, 0x05})).has_value());
  // Long form used for a short length.
  EXPECT_FALSE(rlp_decode(bytes_of({0xb8, 0x01, 0x41})).has_value());
  // Truncated payloads.
  EXPECT_FALSE(rlp_decode(bytes_of({0x83, 'd', 'o'})).has_value());
  EXPECT_FALSE(rlp_decode(bytes_of({0xc8, 0x83, 'c', 'a', 't'})).has_value());
  // Trailing garbage.
  EXPECT_FALSE(rlp_decode(bytes_of({0x80, 0x00})).has_value());
  // Leading zero in a long length.
  EXPECT_FALSE(rlp_decode(bytes_of({0xb9, 0x00, 0x38})).has_value());
  // Empty input.
  EXPECT_FALSE(rlp_decode(Bytes{}).has_value());
}

TEST(Rlp, UintDecoding) {
  EXPECT_EQ(RlpItem::uint(0).to_uint(), 0u);
  EXPECT_EQ(RlpItem::uint(0x1234).to_uint(), 0x1234u);
  EXPECT_EQ(RlpItem::uint(UINT64_MAX).to_uint(), UINT64_MAX);
  EXPECT_FALSE(RlpItem::list({}).to_uint().has_value());
  // Non-minimal (leading zero) rejected.
  EXPECT_FALSE(RlpItem::str(bytes_of({0x00, 0x01})).to_uint().has_value());
}

// -- Message layer ----------------------------------------------------------

TEST(Messages, LegacyTransactionRoundTrip) {
  eth::TxFactory f;
  const auto tx = f.make(0xabcdef, 7, 123'456'789, 0x42, 1'000'000);
  const Bytes enc = encode_transaction(tx);
  const auto back = decode_transaction(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sender, tx.sender);
  EXPECT_EQ(back->nonce, tx.nonce);
  EXPECT_EQ(back->gas_price, tx.gas_price);
  EXPECT_EQ(back->to, tx.to);
  EXPECT_EQ(back->value, tx.value);
  EXPECT_EQ(back->id, tx.id);
  EXPECT_EQ(back->hash(), tx.hash()) << "same fields -> same simulated hash";
  EXPECT_FALSE(back->fee1559.has_value());
}

TEST(Messages, Eip1559TransactionRoundTrip) {
  eth::TxFactory f;
  const auto tx = f.make1559(5, 3, eth::gwei(30), eth::gwei(2), 9, 55);
  const Bytes enc = encode_transaction(tx);
  EXPECT_EQ(enc[0], 0x02) << "EIP-2718 type byte";
  const auto back = decode_transaction(enc);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->fee1559.has_value());
  EXPECT_EQ(back->fee1559->max_fee, eth::gwei(30));
  EXPECT_EQ(back->fee1559->priority_fee, eth::gwei(2));
  EXPECT_EQ(back->hash(), tx.hash());
}

TEST(Messages, TransactionsBatchRoundTrip) {
  eth::TxFactory f;
  std::vector<eth::Transaction> txs;
  for (int i = 0; i < 20; ++i) txs.push_back(f.make(1 + i, i, 100 + i));
  const Bytes frame = encode_transactions(txs);
  const auto back = decode_transactions(frame);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), txs.size());
  for (size_t i = 0; i < txs.size(); ++i) EXPECT_EQ((*back)[i].hash(), txs[i].hash());
}

TEST(Messages, HashAnnouncementRoundTrip) {
  std::vector<eth::TxHash> hashes{0x1, 0xdeadbeef, UINT64_MAX};
  const Bytes frame = encode_hashes(hashes, MsgId::kNewPooledTransactionHashes);
  const auto unwrapped = unwrap_message(frame);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(unwrapped->first, MsgId::kNewPooledTransactionHashes);
  const auto back = decode_hashes(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, hashes);
}

TEST(Messages, StatusRoundTrip) {
  StatusMessage s;
  s.protocol_version = 66;
  s.network_id = 3;  // Ropsten
  s.head_block = 11'000'000;
  s.client_version = "Geth/v1.10.3-stable/linux-amd64/go1.16";
  const auto back = decode_status(encode_status(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->network_id, 3u);
  EXPECT_EQ(back->client_version, s.client_version);
}

TEST(Messages, UnwrapRejectsUnknownIds) {
  const Bytes bogus = wrap_message(static_cast<MsgId>(0x02), Bytes{0x80});
  EXPECT_TRUE(unwrap_message(bogus).has_value());
  const Bytes frame = rlp_encode(
      RlpItem::list({RlpItem::uint(0x7f), RlpItem::str(Bytes{0x80})}));
  EXPECT_FALSE(unwrap_message(frame).has_value());
  EXPECT_FALSE(decode_transactions(Bytes{0x01, 0x02}).has_value());
}

TEST(Messages, WireSizeTwinMatchesRealEncoding) {
  // The arithmetic size used in the hot path must equal the actual frame
  // size across a price/nonce/field sweep, for both fee formats.
  eth::TxFactory f;
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    eth::Transaction tx;
    if (rng.chance(0.5)) {
      tx = f.make(rng.next() >> rng.index(60), rng.next() >> rng.index(60),
                  rng.next() >> rng.index(60), rng.index(1000), rng.next() >> rng.index(60));
    } else {
      tx = f.make1559(rng.next() >> rng.index(60), rng.next() >> rng.index(60),
                      rng.next() >> rng.index(60), rng.next() >> rng.index(60),
                      rng.index(1000), rng.next() >> rng.index(60));
    }
    const Bytes frame = wrap_message(MsgId::kTransactions, encode_transaction(tx));
    ASSERT_EQ(transaction_wire_size(tx), frame.size()) << tx.to_string();
  }
}

TEST(Messages, AnnouncementWireSizeIsFixed) {
  const size_t s = announcement_wire_size();
  EXPECT_GT(s, 32u);
  EXPECT_LT(s, 48u);
  EXPECT_EQ(s, announcement_wire_size());
}


TEST(Rlp, DecodeFuzzNeverCrashesAndRoundTrips) {
  // Random byte soup must decode cleanly or fail cleanly; whenever it
  // decodes, re-encoding must reproduce the exact input (canonical form).
  util::Rng rng(99);
  size_t decoded = 0;
  for (int round = 0; round < 5000; ++round) {
    Bytes blob(rng.index(24));
    for (auto& b : blob) b = static_cast<uint8_t>(rng.uniform_int(0, 255));
    const auto item = rlp_decode(blob);
    if (item) {
      ++decoded;
      EXPECT_EQ(rlp_encode(*item), blob) << "decode/encode must be inverse on canonical input";
    }
  }
  EXPECT_GT(decoded, 100u) << "plenty of random short strings are valid RLP";
}

TEST(Messages, TransactionDecodeFuzzIsTotal) {
  // Arbitrary bytes through the transaction decoder: no crash, and valid
  // decodes re-encode to the same bytes.
  util::Rng rng(100);
  for (int round = 0; round < 3000; ++round) {
    Bytes blob(rng.index(64));
    for (auto& b : blob) b = static_cast<uint8_t>(rng.uniform_int(0, 255));
    const auto tx = decode_transaction(blob);
    if (tx) {
      EXPECT_EQ(encode_transaction(*tx), blob);
    }
  }
}

}  // namespace
}  // namespace topo::wire
