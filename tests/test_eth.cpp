// Unit tests for the Ethereum substrate: transactions, accounts, blocks,
// chain state, and price-priority block packing.

#include <gtest/gtest.h>

#include <set>

#include "eth/chain.h"
#include "eth/miner.h"
#include "eth/transaction.h"

namespace topo::eth {
namespace {

TEST(Transaction, HashesAreUniquePerTransaction) {
  TxFactory f;
  std::set<TxHash> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(f.make(1, i, 100).hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Transaction, SameFieldsDifferentIdDifferentHash) {
  TxFactory f;
  const auto a = f.make(1, 0, 100);
  const auto b = f.make(1, 0, 100);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Transaction, PoolPriceUsesMaxFeeFor1559) {
  TxFactory f;
  const auto legacy = f.make(1, 0, 100);
  EXPECT_EQ(legacy.pool_price(), 100u);
  const auto t = f.make1559(1, 0, 500, 20);
  EXPECT_EQ(t.pool_price(), 500u);
}

TEST(Transaction, EffectivePrice1559) {
  TxFactory f;
  const auto t = f.make1559(1, 0, 500, 20);
  EXPECT_EQ(t.effective_price(100), 120u);   // base + prio
  EXPECT_EQ(t.effective_price(490), 500u);   // capped at max fee
  EXPECT_EQ(t.effective_price(501), 0u);     // underpriced
  EXPECT_FALSE(t.includable(501));
  EXPECT_TRUE(t.includable(500));
}

TEST(Transaction, GweiConversion) {
  EXPECT_EQ(gwei(1.0), kGwei);
  EXPECT_EQ(gwei(0.1), kGwei / 10);
}

TEST(Account, ManagerAllocatesDistinctAddresses) {
  AccountManager am;
  const auto a = am.create(10);
  std::set<Address> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_EQ(am.count(), 10u);
}

TEST(Account, NonceAllocationIsSequential) {
  AccountManager am;
  const Address a = am.create_one();
  EXPECT_EQ(am.allocate_nonce(a), 0u);
  EXPECT_EQ(am.allocate_nonce(a), 1u);
  EXPECT_EQ(am.next_nonce(a), 2u);
  EXPECT_EQ(am.future_nonce(a, 3), 5u);
}

TEST(Account, MapStateConfirmAdvances) {
  MapState s;
  EXPECT_EQ(s.next_nonce(5), 0u);
  s.confirm(5, 0);
  EXPECT_EQ(s.next_nonce(5), 1u);
  s.confirm(5, 7);
  EXPECT_EQ(s.next_nonce(5), 8u);
  s.confirm(5, 2);  // never regresses
  EXPECT_EQ(s.next_nonce(5), 8u);
}

TEST(Block, FullnessWithinOneTransfer) {
  Block b;
  b.gas_limit = 100'000;
  b.gas_used = 100'000 - kTransferGas + 1;  // no room for one more transfer
  EXPECT_TRUE(b.is_full());
  b.gas_used = 100'000 - kTransferGas;  // exactly one more transfer fits
  EXPECT_FALSE(b.is_full());
}

TEST(Block, BaseFeeUpdateDirection) {
  Block parent;
  parent.gas_limit = 1000;
  parent.base_fee = 800;
  parent.gas_used = 500;  // exactly target
  EXPECT_EQ(next_base_fee(parent), 800u);
  parent.gas_used = 1000;  // full -> +12.5%
  EXPECT_EQ(next_base_fee(parent), 900u);
  parent.gas_used = 0;  // empty -> -12.5%
  EXPECT_EQ(next_base_fee(parent), 700u);
}

TEST(Block, ZeroBaseFeeStaysLegacy) {
  Block parent;
  parent.gas_limit = 1000;
  parent.base_fee = 0;
  parent.gas_used = 1000;
  EXPECT_EQ(next_base_fee(parent), 0u);
}

TEST(Chain, CommitAdvancesNoncesAndIndexesHashes) {
  Chain chain(1'000'000);
  TxFactory f;
  Block b;
  b.timestamp = 3.0;
  const auto tx = f.make(42, 0, 100);
  b.txs.push_back(tx);
  b.txs.push_back(f.make(42, 1, 100));
  chain.commit(std::move(b));
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.next_nonce(42), 2u);
  EXPECT_TRUE(chain.includes(tx.hash()));
  EXPECT_FALSE(chain.includes(f.make(42, 2, 100).hash()));
}

TEST(Chain, BlocksInWindow) {
  Chain chain(1'000'000);
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    Block b;
    b.timestamp = t;
    chain.commit(std::move(b));
  }
  EXPECT_EQ(chain.blocks_in(2.0, 3.5).size(), 2u);
  EXPECT_EQ(chain.blocks_in(0.0, 10.0).size(), 4u);
}

TEST(Chain, ObserversNotified) {
  Chain chain(1'000'000);
  int called = 0;
  chain.subscribe([&](const Block&) { ++called; });
  chain.commit(Block{});
  chain.commit(Block{});
  EXPECT_EQ(called, 2);
}

TEST(Miner, PacksByPriceDescending) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  cands.push_back(f.make(1, 0, 100));
  cands.push_back(f.make(2, 0, 300));
  cands.push_back(f.make(3, 0, 200));
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 0);
  ASSERT_EQ(packed.size(), 3u);
  EXPECT_EQ(packed[0].gas_price, 300u);
  EXPECT_EQ(packed[1].gas_price, 200u);
  EXPECT_EQ(packed[2].gas_price, 100u);
}

TEST(Miner, RespectsPerSenderNonceOrder) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  // Sender 1's nonce-1 tx is pricier than nonce-0, but nonce order rules.
  cands.push_back(f.make(1, 1, 500));
  cands.push_back(f.make(1, 0, 50));
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 0);
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(packed[0].nonce, 0u);
  EXPECT_EQ(packed[1].nonce, 1u);
}

TEST(Miner, SkipsSendersWithNonceGap) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  cands.push_back(f.make(1, 1, 500));  // gap: nonce 0 missing
  cands.push_back(f.make(2, 0, 10));
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 0);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].sender, 2u);
}

TEST(Miner, StopsAtGasLimit) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  for (int i = 0; i < 10; ++i) cands.push_back(f.make(100 + i, 0, 100 + i));
  const auto packed = pack_block(cands, state, 3 * kTransferGas, 0);
  EXPECT_EQ(packed.size(), 3u);
  // The three most expensive won.
  EXPECT_EQ(packed[0].gas_price, 109u);
  EXPECT_EQ(packed[2].gas_price, 107u);
}

TEST(Miner, Excludes1559UnderBaseFee) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  cands.push_back(f.make1559(1, 0, 90, 5));   // below base fee
  cands.push_back(f.make1559(2, 0, 200, 5));  // fine
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 100);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].sender, 2u);
}

TEST(Miner, ReplacementDuplicateResolvedByPrice) {
  MapState state;
  TxFactory f;
  std::vector<Transaction> cands;
  cands.push_back(f.make(1, 0, 100));
  cands.push_back(f.make(1, 0, 150));  // replacement of the same slot
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 0);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].gas_price, 150u);
}

TEST(Miner, StartsFromConfirmedNonce) {
  MapState state;
  state.set_next_nonce(1, 5);
  TxFactory f;
  std::vector<Transaction> cands;
  cands.push_back(f.make(1, 4, 100));  // stale
  cands.push_back(f.make(1, 5, 100));
  const auto packed = pack_block(cands, state, 10 * kTransferGas, 0);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].nonce, 5u);
}

}  // namespace
}  // namespace topo::eth
