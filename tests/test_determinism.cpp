// Golden determinism suite for the event-queue backends.
//
// The timing wheel and the legacy binary heap implement the same total
// order — (time, push sequence) — so a whole campaign must produce
// byte-identical artifacts on either backend, at any worker width, with or
// without fault injection. These tests serialize the merged report (and,
// since the tracing layer landed, the merged causal-span export) to JSON
// and compare the bytes; they are the contract that lets the legacy heap
// be deleted after one release.
//
// One carve-out: the `sim.queue.impl.*` gauges expose event-queue
// *internals* (cascade counts, heap peaks). They are deterministic for a
// fixed backend — and thread-width invariant, which the width test pins —
// but intentionally differ between backends, so cross-backend comparisons
// strip that prefix and nothing else.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/report_io.h"
#include "core/validator.h"
#include "exec/campaign.h"
#include "graph/generators.h"
#include "monitor/monitor.h"
#include "obs/span.h"
#include "p2p/network.h"
#include "rpc/monitor_rpc.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace topo {
namespace {

/// Restores the process-wide default backend on scope exit.
struct BackendGuard {
  sim::QueueBackend saved = sim::default_queue_backend();
  ~BackendGuard() { sim::set_default_queue_backend(saved); }
};

struct CampaignArtifacts {
  std::string report_json;
  std::string trace_json;  ///< Chrome trace-event export of the merged spans
  obs::MetricsSnapshot metrics;
};

/// Drops the backend-specific `sim.queue.impl.*` gauges; see the file
/// comment. Used ONLY for wheel-vs-heap comparisons — same-backend
/// comparisons keep the full snapshot.
obs::MetricsSnapshot strip_queue_internals(obs::MetricsSnapshot s) {
  auto strip = [](std::map<std::string, double>& m) {
    for (auto it = m.begin(); it != m.end();) {
      it = it->first.rfind("sim.queue.impl.", 0) == 0 ? m.erase(it) : std::next(it);
    }
  };
  strip(s.gauges);
  strip(s.gauge_maxes);
  return s;
}

/// The wider carve-out for batched-vs-unbatched comparisons: a batch
/// replaces N kDeliverTx pops with one kDeliverTxBatch pop, so the event
/// *accounting* (dispatch mix, processed count, queue depths) legitimately
/// differs while everything observable — reports, traces, every other
/// metric, including net.arena_peak — must not.
obs::MetricsSnapshot strip_event_accounting(obs::MetricsSnapshot s) {
  auto strip = [](std::map<std::string, double>& m) {
    for (auto it = m.begin(); it != m.end();) {
      const std::string& k = it->first;
      const bool drop = k.rfind("sim.queue.impl.", 0) == 0 ||
                        k.rfind("sim.dispatch.", 0) == 0 || k == "sim.events_processed" ||
                        k == "sim.queue_depth" || k == "sim.queue_high_water";
      it = drop ? m.erase(it) : std::next(it);
    }
  };
  strip(s.gauges);
  strip(s.gauge_maxes);
  return s;
}

CampaignArtifacts run_campaign(sim::QueueBackend backend, size_t threads, size_t shards,
                               bool faults,
                               core::StrategyKind strategy = core::StrategyKind::kToposhot,
                               bool fork_worlds = true,
                               double batch_window = p2p::Network::kDefaultBatchWindow) {
  sim::set_default_queue_backend(backend);
  util::Rng rng(21);
  const graph::Graph truth = graph::erdos_renyi_gnm(24, 44, rng);
  core::ScenarioOptions opt;
  opt.seed = 77;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  opt.batch_window = batch_window;
  core::MeasureConfig cfg;
  {
    core::Scenario probe(truth, opt);
    cfg = probe.default_measure_config();
  }
  // Diagnostics collection rides the faulted variants, exercising the
  // cause annex end to end; the clean variant keeps both annexes off so
  // the byte-identity below also covers the annex-absent report shape.
  cfg.collect_diagnostics = faults;
  exec::CampaignOptions copt;
  copt.group_k = 4;
  copt.strategy = strategy;
  copt.shards = shards;
  copt.threads = threads;
  copt.collect_spans = true;
  copt.fork_worlds = fork_worlds;
  if (faults) {
    copt.fault_plan.drop_tx = 0.02;
    copt.fault_plan.drop_announce = 0.02;
    copt.fault_plan.spike_prob = 0.05;
  }
  const exec::CampaignResult result = exec::run_sharded_campaign(truth, opt, cfg, copt);
  return {core::report_to_json(result.report).dump(),
          obs::spans_to_chrome_json(result.spans).dump(), result.metrics};
}

TEST(GoldenDeterminism, SmokeCampaignIsByteIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false);
  const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 1, 2, false);
  EXPECT_EQ(wheel.report_json, heap.report_json);
  EXPECT_EQ(wheel.trace_json, heap.trace_json);
  EXPECT_EQ(strip_queue_internals(wheel.metrics), strip_queue_internals(heap.metrics));
  EXPECT_FALSE(wheel.report_json.empty());
  EXPECT_FALSE(wheel.trace_json.empty());
  // Annexes stay absent when not configured: the serialized report is the
  // pre-annex document, byte for byte.
  EXPECT_EQ(wheel.report_json.find("\"fault\""), std::string::npos);
  EXPECT_EQ(wheel.report_json.find("\"diagnostics\""), std::string::npos);
}

TEST(GoldenDeterminism, ThreadWidthChangesNothingOnEitherBackend) {
  BackendGuard guard;
  const auto wheel_serial = run_campaign(sim::QueueBackend::kTimingWheel, 1, 3, false);
  const auto wheel_wide = run_campaign(sim::QueueBackend::kTimingWheel, 4, 3, false);
  EXPECT_EQ(wheel_serial.report_json, wheel_wide.report_json);
  EXPECT_EQ(wheel_serial.trace_json, wheel_wide.trace_json);
  // Full-snapshot equality on a fixed backend: even the queue internals
  // must be thread-width invariant (workers never share a queue).
  EXPECT_EQ(wheel_serial.metrics, wheel_wide.metrics);

  const auto heap_wide = run_campaign(sim::QueueBackend::kLegacyHeap, 4, 3, false);
  EXPECT_EQ(wheel_serial.report_json, heap_wide.report_json);
  EXPECT_EQ(wheel_serial.trace_json, heap_wide.trace_json);
  EXPECT_EQ(strip_queue_internals(wheel_serial.metrics),
            strip_queue_internals(heap_wide.metrics));
}

// Every strategy behind the seam must satisfy the same golden contract the
// default one does: byte-identical artifacts across queue backends, thread
// widths, and (per-strategy, fixed shards) — the rivalry bench's numbers
// are only comparable because each strategy is deterministic on its own.
TEST(GoldenDeterminism, RivalStrategiesAreByteIdenticalAcrossBackendsAndWidths) {
  BackendGuard guard;
  for (core::StrategyKind strategy :
       {core::StrategyKind::kDethna, core::StrategyKind::kTxprobe}) {
    SCOPED_TRACE(core::strategy_name(strategy));
    const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false, strategy);
    const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 1, 2, false, strategy);
    EXPECT_EQ(wheel.report_json, heap.report_json);
    EXPECT_EQ(wheel.trace_json, heap.trace_json);
    EXPECT_EQ(strip_queue_internals(wheel.metrics), strip_queue_internals(heap.metrics));

    const auto wide = run_campaign(sim::QueueBackend::kTimingWheel, 4, 2, false, strategy);
    EXPECT_EQ(wheel.report_json, wide.report_json);
    EXPECT_EQ(wheel.trace_json, wide.trace_json);
    EXPECT_EQ(wheel.metrics, wide.metrics);

    // The report is self-describing: the non-default strategy is named.
    EXPECT_NE(wheel.report_json.find(std::string("\"strategy\":\"") +
                                     core::strategy_name(strategy) + "\""),
              std::string::npos);
  }
}

// The faulted (diagnostics-carrying) variant for the rivals, at different
// shard widths than above so the shard-plan axis is covered per strategy.
TEST(GoldenDeterminism, RivalStrategiesFaultCampaignsAreByteIdentical) {
  BackendGuard guard;
  for (core::StrategyKind strategy :
       {core::StrategyKind::kDethna, core::StrategyKind::kTxprobe}) {
    SCOPED_TRACE(core::strategy_name(strategy));
    const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 2, 3, true, strategy);
    const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 4, 3, true, strategy);
    EXPECT_EQ(wheel.report_json, heap.report_json);
    EXPECT_EQ(wheel.trace_json, heap.trace_json);
    EXPECT_EQ(strip_queue_internals(wheel.metrics), strip_queue_internals(heap.metrics));

    // Cause plumbing holds for rivals too: the histogram covers every pair.
    const auto parsed = rpc::Json::parse(wheel.report_json);
    ASSERT_TRUE(parsed.has_value());
    const auto report = core::report_from_json(*parsed);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->strategy, strategy);
    ASSERT_TRUE(report->diagnostics.has_value());
    uint64_t total = 0;
    for (uint64_t c : report->diagnostics->causes) total += c;
    EXPECT_EQ(total, report->pairs_tested);
  }
}

// World forking is pure execution strategy: a campaign whose shard
// replicas are forked from one warmed base snapshot must produce the same
// artifacts, byte for byte, as one that rebuilds and re-warms every
// replica from scratch — on either queue backend, at multiple
// thread/shard widths, with and without fault injection.
TEST(GoldenDeterminism, ForkedWorldsMatchRebuiltWorldsByteForByte) {
  BackendGuard guard;
  for (sim::QueueBackend backend :
       {sim::QueueBackend::kTimingWheel, sim::QueueBackend::kLegacyHeap}) {
    SCOPED_TRACE(backend == sim::QueueBackend::kTimingWheel ? "wheel" : "heap");
    const auto forked = run_campaign(backend, 1, 2, false, core::StrategyKind::kToposhot, true);
    const auto rebuilt =
        run_campaign(backend, 1, 2, false, core::StrategyKind::kToposhot, false);
    EXPECT_EQ(forked.report_json, rebuilt.report_json);
    EXPECT_EQ(forked.trace_json, rebuilt.trace_json);
    // sim.queue.impl.* is the documented carve-out: a forked replica's
    // queue is reconstructed by re-pushing the captured events, so its
    // *internal* tallies (cascades, peaks) differ from a queue that lived
    // through the warm phase. Everything else must match exactly.
    EXPECT_EQ(strip_queue_internals(forked.metrics), strip_queue_internals(rebuilt.metrics));
    EXPECT_FALSE(forked.report_json.empty());
  }
}

TEST(GoldenDeterminism, ForkedWorldsMatchRebuiltAtWiderWidths) {
  BackendGuard guard;
  // A different (threads, shards) point than the smoke pair above, so the
  // fork-identity contract is pinned at >= 2 widths; forked-wide vs
  // rebuilt-serial also crosses the thread axis in the same comparison.
  const auto forked = run_campaign(sim::QueueBackend::kTimingWheel, 4, 3, false,
                                   core::StrategyKind::kToposhot, true);
  const auto rebuilt = run_campaign(sim::QueueBackend::kTimingWheel, 1, 3, false,
                                    core::StrategyKind::kToposhot, false);
  EXPECT_EQ(forked.report_json, rebuilt.report_json);
  EXPECT_EQ(forked.trace_json, rebuilt.trace_json);
  EXPECT_EQ(strip_queue_internals(forked.metrics), strip_queue_internals(rebuilt.metrics));
}

TEST(GoldenDeterminism, ForkedFaultCampaignMatchesRebuilt) {
  BackendGuard guard;
  const auto forked = run_campaign(sim::QueueBackend::kTimingWheel, 2, 3, true,
                                   core::StrategyKind::kToposhot, true);
  const auto rebuilt = run_campaign(sim::QueueBackend::kTimingWheel, 2, 3, true,
                                    core::StrategyKind::kToposhot, false);
  EXPECT_EQ(forked.report_json, rebuilt.report_json);
  EXPECT_EQ(forked.trace_json, rebuilt.trace_json);
  EXPECT_EQ(strip_queue_internals(forked.metrics), strip_queue_internals(rebuilt.metrics));
}

TEST(GoldenDeterminism, ForkedRivalStrategiesMatchRebuilt) {
  BackendGuard guard;
  for (core::StrategyKind strategy :
       {core::StrategyKind::kDethna, core::StrategyKind::kTxprobe}) {
    SCOPED_TRACE(core::strategy_name(strategy));
    const auto forked =
        run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false, strategy, true);
    const auto rebuilt =
        run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false, strategy, false);
    EXPECT_EQ(forked.report_json, rebuilt.report_json);
    EXPECT_EQ(forked.trace_json, rebuilt.trace_json);
    // sim.queue.impl.* is the documented carve-out: a forked replica's
    // queue is reconstructed by re-pushing the captured events, so its
    // *internal* tallies (cascades, peaks) differ from a queue that lived
    // through the warm phase. Everything else must match exactly.
    EXPECT_EQ(strip_queue_internals(forked.metrics), strip_queue_internals(rebuilt.metrics));
  }
}

TEST(GoldenDeterminism, FaultCampaignIsByteIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 2, 2, true);
  const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 2, 2, true);
  EXPECT_EQ(wheel.report_json, heap.report_json);
  EXPECT_EQ(wheel.trace_json, heap.trace_json);
  EXPECT_EQ(strip_queue_internals(wheel.metrics), strip_queue_internals(heap.metrics));

  // The faulted campaign carries the diagnostics annex, and every pair it
  // left inconclusive names the protocol step that broke — never a bare
  // "inconclusive" with no cause.
  const auto parsed = rpc::Json::parse(wheel.report_json);
  ASSERT_TRUE(parsed.has_value());
  const auto report = core::report_from_json(*parsed);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->diagnostics.has_value());
  uint64_t total = 0;
  for (uint64_t c : report->diagnostics->causes) total += c;
  EXPECT_EQ(total, report->pairs_tested);
  for (const core::PairDiagnostic& p : report->diagnostics->inconclusive) {
    EXPECT_NE(p.cause, obs::ProbeCause::kNone)
        << "pair (" << p.u << ", " << p.v << ") is inconclusive without a cause";
  }
}

// Batched delivery is pure mechanics: a campaign run with per-link
// delivery batching (the default window) must produce byte-identical
// reports and traces to the same campaign with batching disabled
// (window 0, one kDeliverTx event per message) — the only things allowed
// to differ are the event-accounting metrics strip_event_accounting
// removes. This is the contract that makes the batching optimization
// invisible to every consumer of campaign artifacts.
TEST(GoldenDeterminism, BatchedMatchesUnbatchedByteForByte) {
  BackendGuard guard;
  for (sim::QueueBackend backend :
       {sim::QueueBackend::kTimingWheel, sim::QueueBackend::kLegacyHeap}) {
    SCOPED_TRACE(backend == sim::QueueBackend::kTimingWheel ? "wheel" : "heap");
    const auto batched =
        run_campaign(backend, 1, 2, false, core::StrategyKind::kToposhot, true);
    const auto unbatched =
        run_campaign(backend, 1, 2, false, core::StrategyKind::kToposhot, true, 0.0);
    EXPECT_EQ(batched.report_json, unbatched.report_json);
    EXPECT_EQ(batched.trace_json, unbatched.trace_json);
    EXPECT_EQ(strip_event_accounting(batched.metrics),
              strip_event_accounting(unbatched.metrics));
    EXPECT_FALSE(batched.report_json.empty());
  }
}

TEST(GoldenDeterminism, BatchedMatchesUnbatchedWithFaultsAtWidth) {
  BackendGuard guard;
  // Faulted + multi-thread/shard: drops and latency spikes interleave with
  // batch staging (dropped sends never join a batch), and the merge across
  // shard workers must still line up byte for byte.
  const auto batched = run_campaign(sim::QueueBackend::kTimingWheel, 2, 3, true,
                                    core::StrategyKind::kToposhot, true);
  const auto unbatched = run_campaign(sim::QueueBackend::kTimingWheel, 2, 3, true,
                                      core::StrategyKind::kToposhot, true, 0.0);
  EXPECT_EQ(batched.report_json, unbatched.report_json);
  EXPECT_EQ(batched.trace_json, unbatched.trace_json);
  EXPECT_EQ(strip_event_accounting(batched.metrics),
            strip_event_accounting(unbatched.metrics));
}

// The snapshot path for the no-batching configuration: plain kDeliverTx
// events with arena payload slots must also survive fork/restore exactly
// (the batched default is covered by every Forked* test above).
TEST(GoldenDeterminism, UnbatchedForkedMatchesRebuilt) {
  BackendGuard guard;
  const auto forked = run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false,
                                   core::StrategyKind::kToposhot, true, 0.0);
  const auto rebuilt = run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false,
                                    core::StrategyKind::kToposhot, false, 0.0);
  EXPECT_EQ(forked.report_json, rebuilt.report_json);
  EXPECT_EQ(forked.trace_json, rebuilt.trace_json);
  EXPECT_EQ(strip_queue_internals(forked.metrics), strip_queue_internals(rebuilt.metrics));
}

// A non-default window on the other backend at a wider width: the window
// size itself must never be observable, only the accounting.
TEST(GoldenDeterminism, BatchWindowSizeIsUnobservable) {
  BackendGuard guard;
  const auto narrow = run_campaign(sim::QueueBackend::kLegacyHeap, 4, 2, false,
                                   core::StrategyKind::kToposhot, true, 0.05);
  const auto wide = run_campaign(sim::QueueBackend::kLegacyHeap, 4, 2, false,
                                 core::StrategyKind::kToposhot, true, 1.0);
  EXPECT_EQ(narrow.report_json, wide.report_json);
  EXPECT_EQ(narrow.trace_json, wide.trace_json);
  EXPECT_EQ(strip_event_accounting(narrow.metrics), strip_event_accounting(wide.metrics));
}

// -- the monitoring daemon ---------------------------------------------------
//
// The monitor's published documents (snapshots, diffs, status — and hence
// every MonitorRpcServer response) carry no sim-time or wall-clock fields,
// and its own metrics registry holds only shard-invariant monitor.* series.
// A scripted run — N epochs of drift + incremental re-measurement followed
// by a fixed RPC query script — must therefore produce byte-identical
// artifacts at any --threads width, at any --shards width, and on either
// event-queue backend. (Shard invariance is the strong claim: campaign
// *reports* are shard-dependent in general, but in the measure-regime world
// every probe resolves crisply, so clean verdicts equal ground truth no
// matter how the epoch's replicas were sharded.)

/// The fixed query script: status, a pinned version, the latest version, a
/// batch of two diffs, and an unknown-version error — errors are part of
/// the replayed conversation too.
constexpr const char* kMonitorScript[] = {
    R"({"jsonrpc":"2.0","id":1,"method":"topo_getStatus","params":[]})",
    R"({"jsonrpc":"2.0","id":2,"method":"topo_getSnapshot","params":[0]})",
    R"({"jsonrpc":"2.0","id":3,"method":"topo_getSnapshot","params":[]})",
    R"([{"jsonrpc":"2.0","id":4,"method":"topo_getDiff","params":[0,2]},)"
    R"({"jsonrpc":"2.0","id":5,"method":"topo_getDiff","params":[1,2]}])",
    R"({"jsonrpc":"2.0","id":6,"method":"topo_getSnapshot","params":[99]})",
};

/// The telemetry-plane script: the Prometheus exposition in both wrapping
/// modes, the health report, and a bad-mode error (which also exercises the
/// RPC-error event-log path inside a replayed conversation).
constexpr const char* kTelemetryScript[] = {
    R"({"jsonrpc":"2.0","id":7,"method":"topo_getMetrics","params":[]})",
    R"({"jsonrpc":"2.0","id":8,"method":"topo_getMetrics","params":["raw"]})",
    R"({"jsonrpc":"2.0","id":9,"method":"topo_getHealth","params":[]})",
    R"({"jsonrpc":"2.0","id":10,"method":"topo_getMetrics","params":["xml"]})",
};

struct MonitorArtifacts {
  std::string serve;          ///< concatenated RPC responses, one per line
  std::string snapshot_json;  ///< latest published snapshot
  std::string diff_json;      ///< diff across the full published range
  std::string status_json;
  obs::MetricsSnapshot metrics;
  // Telemetry plane. The exposition is a pure function of the (shard-
  // invariant) registry; health, the telemetry serve transcript, and the
  // event log carry sim-time durations and event counts, which are
  // thread/backend-invariant but shard-DEPENDENT — compare them across
  // --threads widths and backends only, never across --shards.
  std::string prom_text;       ///< published Prometheus exposition
  std::string health_json;     ///< published HealthReport document
  std::string telemetry_serve; ///< kTelemetryScript responses, one per line
  std::string log_jsonl;       ///< structured event log, JSON lines
};

MonitorArtifacts run_monitor(sim::QueueBackend backend, size_t threads, size_t shards) {
  sim::set_default_queue_backend(backend);
  util::Rng rng(5);
  graph::Graph truth = graph::erdos_renyi_gnm(20, 40, rng);
  core::ScenarioOptions wopt;
  wopt.seed = 42;
  // The measure-regime world (toposhot_cli / toposhot_monitord defaults):
  // a small block budget plus organic traffic keeps pool occupancy where
  // eviction probes resolve crisply — the precondition for the shard
  // invariance this suite pins.
  wopt.block_gas_limit = 30 * eth::kTransferGas;
  core::MeasureConfig cfg =
      core::MeasureConfig::Builder(core::Scenario(truth, wopt).default_measure_config())
          .repetitions(3)
          .inconclusive_retries(2)
          .build();
  monitor::MonitorOptions mopt;
  mopt.churn_per_epoch = 2.0;
  mopt.threads = threads;
  mopt.shards = shards;
  mopt.traffic_churn_rate = 3.0;
  monitor::TopologyMonitor mon(std::move(truth), wopt, cfg, mopt);
  mon.run(3);

  rpc::MonitorRpcServer server(&mon);
  MonitorArtifacts out;
  for (const char* line : kMonitorScript) out.serve += server.handle(line) + "\n";
  out.snapshot_json = monitor::snapshot_to_json(*mon.latest()).dump();
  out.diff_json = monitor::diff_to_json(*mon.diff(0, mon.versions() - 1)).dump();
  out.status_json = monitor::status_to_json(mon.status()).dump();
  out.metrics = mon.metrics().snapshot();
  out.prom_text = *mon.metrics_exposition();
  out.health_json = monitor::health_to_json(*mon.health()).dump();
  for (const char* line : kTelemetryScript) {
    out.telemetry_serve += server.handle(line) + "\n";
  }
  // The log is captured last so the scripted RPC errors (the unknown
  // version above, the bad metrics mode here) are part of the artifact.
  out.log_jsonl = mon.event_log().to_jsonl();
  return out;
}

TEST(MonitorGolden, ScriptedRunIsByteIdenticalAcrossThreadsAndBackends) {
  BackendGuard guard;
  const auto wheel = run_monitor(sim::QueueBackend::kTimingWheel, 1, 2);
  const auto wide = run_monitor(sim::QueueBackend::kTimingWheel, 4, 2);
  EXPECT_EQ(wheel.serve, wide.serve);
  EXPECT_EQ(wheel.snapshot_json, wide.snapshot_json);
  EXPECT_EQ(wheel.diff_json, wide.diff_json);
  EXPECT_EQ(wheel.status_json, wide.status_json);
  EXPECT_EQ(wheel.metrics, wide.metrics);
  // The whole telemetry plane is thread-width invariant: exposition bytes,
  // the health document (sim-time durations only), the scripted telemetry
  // conversation, and the structured event log.
  EXPECT_EQ(wheel.prom_text, wide.prom_text);
  EXPECT_EQ(wheel.health_json, wide.health_json);
  EXPECT_EQ(wheel.telemetry_serve, wide.telemetry_serve);
  EXPECT_EQ(wheel.log_jsonl, wide.log_jsonl);

  const auto heap = run_monitor(sim::QueueBackend::kLegacyHeap, 4, 2);
  EXPECT_EQ(wheel.serve, heap.serve);
  EXPECT_EQ(wheel.snapshot_json, heap.snapshot_json);
  EXPECT_EQ(wheel.diff_json, heap.diff_json);
  EXPECT_EQ(wheel.status_json, heap.status_json);
  // No strip needed: the monitor's registry holds only monitor.* series
  // (the campaign-internal sim.queue.impl.* metrics live in the campaign
  // results, which the monitor does not export).
  EXPECT_EQ(wheel.metrics, heap.metrics);
  EXPECT_EQ(wheel.prom_text, heap.prom_text);
  EXPECT_EQ(wheel.health_json, heap.health_json);
  EXPECT_EQ(wheel.telemetry_serve, heap.telemetry_serve);
  EXPECT_EQ(wheel.log_jsonl, heap.log_jsonl);

  EXPECT_FALSE(wheel.serve.empty());
  // The error responses are part of both conversations.
  EXPECT_NE(wheel.serve.find("unknown version"), std::string::npos);
  EXPECT_NE(wheel.telemetry_serve.find("expected"), std::string::npos);
  // The telemetry documents are real: exposition and health both carry the
  // run's epoch count, and the raw RPC body equals the published bytes.
  EXPECT_NE(wheel.prom_text.find("monitor_epochs 3\n"), std::string::npos);
  EXPECT_NE(wheel.health_json.find("\"state\":"), std::string::npos);
  EXPECT_NE(wheel.telemetry_serve.find("prometheus-text-0.0.4"), std::string::npos);
  EXPECT_FALSE(wheel.log_jsonl.empty());
}

TEST(MonitorGolden, ScriptedRunIsByteIdenticalAcrossShardWidths) {
  BackendGuard guard;
  const auto one = run_monitor(sim::QueueBackend::kTimingWheel, 1, 1);
  const auto two = run_monitor(sim::QueueBackend::kTimingWheel, 1, 2);
  const auto four = run_monitor(sim::QueueBackend::kTimingWheel, 2, 4);
  for (const auto* other : {&two, &four}) {
    EXPECT_EQ(one.serve, other->serve);
    EXPECT_EQ(one.snapshot_json, other->snapshot_json);
    EXPECT_EQ(one.diff_json, other->diff_json);
    EXPECT_EQ(one.status_json, other->status_json);
    EXPECT_EQ(one.metrics, other->metrics);
    // The exposition is a pure function of the registry, so it inherits the
    // registry's shard invariance. health_json / telemetry_serve /
    // log_jsonl are deliberately NOT compared here: sim-time durations and
    // event counts depend on --shards (replica warm-up repeats work).
    EXPECT_EQ(one.prom_text, other->prom_text);
  }
}

}  // namespace
}  // namespace topo
