// Golden determinism suite for the event-queue backends.
//
// The timing wheel and the legacy binary heap implement the same total
// order — (time, push sequence) — so a whole campaign must produce
// byte-identical artifacts on either backend, at any worker width, with or
// without fault injection. These tests serialize the merged report to JSON
// and compare the bytes; they are the contract that lets the legacy heap be
// deleted after one release.

#include <gtest/gtest.h>

#include <string>

#include "core/report_io.h"
#include "core/validator.h"
#include "exec/campaign.h"
#include "graph/generators.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace topo {
namespace {

/// Restores the process-wide default backend on scope exit.
struct BackendGuard {
  sim::QueueBackend saved = sim::default_queue_backend();
  ~BackendGuard() { sim::set_default_queue_backend(saved); }
};

struct CampaignArtifacts {
  std::string report_json;
  obs::MetricsSnapshot metrics;
};

CampaignArtifacts run_campaign(sim::QueueBackend backend, size_t threads, size_t shards,
                               bool faults) {
  sim::set_default_queue_backend(backend);
  util::Rng rng(21);
  const graph::Graph truth = graph::erdos_renyi_gnm(24, 44, rng);
  core::ScenarioOptions opt;
  opt.seed = 77;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  core::MeasureConfig cfg;
  {
    core::Scenario probe(truth, opt);
    cfg = probe.default_measure_config();
  }
  exec::CampaignOptions copt;
  copt.group_k = 4;
  copt.shards = shards;
  copt.threads = threads;
  if (faults) {
    copt.fault_plan.drop_tx = 0.02;
    copt.fault_plan.drop_announce = 0.02;
    copt.fault_plan.spike_prob = 0.05;
  }
  const exec::CampaignResult result = exec::run_sharded_campaign(truth, opt, cfg, copt);
  return {core::report_to_json(result.report).dump(), result.metrics};
}

TEST(GoldenDeterminism, SmokeCampaignIsByteIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 1, 2, false);
  const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 1, 2, false);
  EXPECT_EQ(wheel.report_json, heap.report_json);
  EXPECT_EQ(wheel.metrics, heap.metrics);
  EXPECT_FALSE(wheel.report_json.empty());
}

TEST(GoldenDeterminism, ThreadWidthChangesNothingOnEitherBackend) {
  BackendGuard guard;
  const auto wheel_serial = run_campaign(sim::QueueBackend::kTimingWheel, 1, 3, false);
  const auto wheel_wide = run_campaign(sim::QueueBackend::kTimingWheel, 4, 3, false);
  EXPECT_EQ(wheel_serial.report_json, wheel_wide.report_json);
  EXPECT_EQ(wheel_serial.metrics, wheel_wide.metrics);

  const auto heap_wide = run_campaign(sim::QueueBackend::kLegacyHeap, 4, 3, false);
  EXPECT_EQ(wheel_serial.report_json, heap_wide.report_json);
  EXPECT_EQ(wheel_serial.metrics, heap_wide.metrics);
}

TEST(GoldenDeterminism, FaultCampaignIsByteIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto wheel = run_campaign(sim::QueueBackend::kTimingWheel, 2, 2, true);
  const auto heap = run_campaign(sim::QueueBackend::kLegacyHeap, 2, 2, true);
  EXPECT_EQ(wheel.report_json, heap.report_json);
  EXPECT_EQ(wheel.metrics, heap.metrics);
}

}  // namespace
}  // namespace topo
