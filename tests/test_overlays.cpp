// Tests for the multi-overlay structure of paper Fig. 1: several blockchain
// overlays (networkIDs) share one platform but never exchange transactions,
// and the measurement supernode can observe any of them.

#include <gtest/gtest.h>

#include "eth/chain.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"
#include "p2p/node.h"

namespace topo::p2p {
namespace {

struct MultiWorld {
  sim::Simulator sim;
  eth::Chain chain{8'000'000};
  Network net{&sim, &chain, util::Rng(21), sim::LatencyModel::fixed(0.05)};
  eth::TxFactory factory;
  eth::AccountManager accounts;

  PeerId add(uint64_t network_id) {
    NodeConfig cfg;
    cfg.network_id = network_id;
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = 64;
    p.future_cap = 16;
    cfg.policy_override = p;
    return net.add_node(cfg);
  }
};

TEST(Overlays, HandshakeRejectsCrossNetworkLinks) {
  MultiWorld w;
  const PeerId mainnet = w.add(1);
  const PeerId ropsten = w.add(3);
  const PeerId ropsten2 = w.add(3);
  EXPECT_FALSE(w.net.connect(mainnet, ropsten)) << "networkID mismatch must disconnect";
  EXPECT_TRUE(w.net.connect(ropsten, ropsten2));
  EXPECT_FALSE(w.net.linked(mainnet, ropsten));
  EXPECT_TRUE(w.net.linked(ropsten, ropsten2));
  EXPECT_EQ(w.net.network_id_of(mainnet), 1u);
  EXPECT_EQ(w.net.network_id_of(ropsten), 3u);
}

TEST(Overlays, TransactionsStayWithinTheirOverlay) {
  MultiWorld w;
  // Two overlays: mainnet {0,1}, ropsten {2,3}; all same-network links.
  const PeerId m0 = w.add(1), m1 = w.add(1);
  const PeerId r0 = w.add(3), r1 = w.add(3);
  ASSERT_TRUE(w.net.connect(m0, m1));
  ASSERT_TRUE(w.net.connect(r0, r1));

  const eth::Address a = w.accounts.create_one();
  const auto tx = w.factory.make(a, w.accounts.allocate_nonce(a), 500);
  w.net.node(m0).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(m1).pool().contains(tx.hash()));
  EXPECT_FALSE(w.net.node(r0).pool().contains(tx.hash()));
  EXPECT_FALSE(w.net.node(r1).pool().contains(tx.hash()));
}

TEST(Overlays, MeasurementNodeObservesAnyOverlay) {
  MultiWorld w;
  const PeerId m0 = w.add(1);
  const PeerId r0 = w.add(3);
  MeasurementNode m(&w.net, &w.chain);
  w.net.register_peer(&m);
  // The wildcard observer handshakes with both overlays.
  EXPECT_TRUE(w.net.connect(m.id(), m0));
  EXPECT_TRUE(w.net.connect(m.id(), r0));
  EXPECT_EQ(w.net.network_id_of(m.id()), 0u);

  const eth::Address a = w.accounts.create_one();
  const auto tx = w.factory.make(a, w.accounts.allocate_nonce(a), 500);
  w.net.node(r0).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(m.received_from(tx.hash(), r0)) << "M hears the Ropsten overlay";
}

}  // namespace
}  // namespace topo::p2p
