// End-to-end smoke tests of the measureOneLink primitive (paper §5.2) on
// small networks with known ground truth.

#include <gtest/gtest.h>

#include "core/toposhot.h"
#include "graph/generators.h"

namespace topo {
namespace {

core::ScenarioOptions small_options() {
  core::ScenarioOptions opt;
  opt.seed = 7;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  return opt;
}

TEST(OneLinkSmoke, DetectsDirectLinkOnTriangle) {
  // M measures A-B on a triangle A-B-C: positive expected.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  core::Scenario scenario(g, small_options());
  scenario.seed_background();

  const auto cfg = scenario.default_measure_config();
  const auto r = scenario.measure_one_link(scenario.targets()[0], scenario.targets()[1], cfg);
  EXPECT_TRUE(r.txc_evicted_on_a) << "flood failed to evict txC on A";
  EXPECT_TRUE(r.txc_evicted_on_b) << "flood failed to evict txC on B";
  EXPECT_TRUE(r.txa_planted_on_a) << "txA was not admitted on A";
  EXPECT_TRUE(r.connected);
}

TEST(OneLinkSmoke, RejectsNonLinkOnPath) {
  // Path A - C - B: A and B are not direct neighbors; isolation must keep
  // txA from crossing C.
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  core::Scenario scenario(g, small_options());
  scenario.seed_background();

  const auto cfg = scenario.default_measure_config();
  const auto r = scenario.measure_one_link(scenario.targets()[0], scenario.targets()[1], cfg);
  EXPECT_TRUE(r.txc_evicted_on_a);
  EXPECT_TRUE(r.txc_evicted_on_b);
  EXPECT_TRUE(r.txa_planted_on_a);
  EXPECT_FALSE(r.connected);
}

TEST(OneLinkSmoke, AllPairsOnSmallRandomGraph) {
  util::Rng rng(99);
  graph::Graph g = graph::erdos_renyi_gnm(8, 12, rng);
  core::Scenario scenario(g, small_options());
  scenario.seed_background();
  const auto cfg = scenario.default_measure_config();

  size_t wrong = 0;
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) {
      const auto r =
          scenario.measure_one_link(scenario.targets()[u], scenario.targets()[v], cfg);
      if (r.connected != g.has_edge(u, v)) ++wrong;
      // Precision must be perfect: no false positives, ever.
      if (!g.has_edge(u, v)) {
        EXPECT_FALSE(r.connected) << "false positive " << u << "-" << v;
      }
    }
  }
  EXPECT_EQ(wrong, 0u);
}

}  // namespace
}  // namespace topo
