// Tests for the §5.3.2 two-round parallel schedule: exact pair coverage and
// the N/K + log2(K) iteration count.

#include <gtest/gtest.h>

#include <map>

#include "core/schedule.h"

namespace topo::core {
namespace {

/// Counts how many times each unordered pair is covered by the plan.
std::map<std::pair<size_t, size_t>, int> coverage(const std::vector<IterationPlan>& plan) {
  std::map<std::pair<size_t, size_t>, int> cov;
  for (const auto& it : plan) {
    for (const auto& [s, t] : it.pairs) {
      cov[{std::min(s, t), std::max(s, t)}]++;
    }
  }
  return cov;
}

class SchedulePairSweep : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SchedulePairSweep, EveryPairExactlyOnce) {
  const auto [n, k] = GetParam();
  const auto plan = make_schedule(n, k);
  const auto cov = coverage(plan);
  EXPECT_EQ(cov.size(), n * (n - 1) / 2);
  for (const auto& [pair, count] : cov) {
    ASSERT_EQ(count, 1) << "pair (" << pair.first << "," << pair.second << ") covered " << count
                        << " times";
  }
}

TEST_P(SchedulePairSweep, SourcesAndSinksDisjointPerIteration) {
  const auto [n, k] = GetParam();
  for (const auto& it : make_schedule(n, k)) {
    std::set<size_t> sources(it.sources.begin(), it.sources.end());
    for (size_t s : it.sinks) {
      ASSERT_EQ(sources.count(s), 0u) << "node is both source and sink";
    }
    // Every pair references declared sources/sinks.
    std::set<size_t> sinks(it.sinks.begin(), it.sinks.end());
    for (const auto& [s, t] : it.pairs) {
      ASSERT_TRUE(sources.count(s));
      ASSERT_TRUE(sinks.count(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchedulePairSweep,
                         ::testing::Values(std::pair<size_t, size_t>{8, 3},
                                           std::pair<size_t, size_t>{8, 4},
                                           std::pair<size_t, size_t>{10, 2},
                                           std::pair<size_t, size_t>{17, 5},
                                           std::pair<size_t, size_t>{32, 8},
                                           std::pair<size_t, size_t>{33, 8},
                                           std::pair<size_t, size_t>{5, 10},
                                           std::pair<size_t, size_t>{2, 2}));

TEST(Schedule, IterationCountMatchesFormula) {
  // Paper: N/K round-1 iterations (minus the last group, which has nothing
  // after it) + ceil(log2 K) halving iterations.
  const auto plan = make_schedule(32, 8);
  const size_t round1 = 32 / 8 - 1;
  const size_t round2 = 3;  // log2(8)
  EXPECT_EQ(plan.size(), round1 + round2);
}

TEST(Schedule, PaperExampleN8K3) {
  // §5.3.2's example: N=8, K=3 yields two cross-group iterations plus two
  // halving iterations.
  const auto plan = make_schedule(8, 3);
  ASSERT_GE(plan.size(), 3u);
  // First iteration: group {0,1,2} vs everything after.
  EXPECT_EQ(plan[0].sources.size(), 3u);
  EXPECT_EQ(plan[0].sinks.size(), 5u);
  EXPECT_EQ(plan[0].pairs.size(), 15u);
  // Second: group {3,4,5} vs {6,7}.
  EXPECT_EQ(plan[1].sources.size(), 3u);
  EXPECT_EQ(plan[1].sinks.size(), 2u);
  EXPECT_EQ(plan[1].pairs.size(), 6u);
}

TEST(Schedule, DegenerateInputs) {
  EXPECT_TRUE(make_schedule(0, 4).empty());
  EXPECT_TRUE(make_schedule(1, 4).empty());
  const auto plan = make_schedule(2, 4);  // K clamped to n
  ASSERT_EQ(coverage(plan).size(), 1u);
}

TEST(Schedule, LargerKMeansFewerIterations) {
  const size_t n = 64;
  size_t prev = SIZE_MAX;
  for (size_t k : {2, 4, 8, 16}) {
    const size_t iters = make_schedule(n, k).size();
    EXPECT_LT(iters, prev) << "iterations should shrink as K grows (Fig 5)";
    prev = iters;
  }
}

}  // namespace
}  // namespace topo::core
