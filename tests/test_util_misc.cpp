// Coverage for the small util pieces: table rendering, CLI parsing, and
// log level gating.

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

namespace topo::util {
namespace {

TEST(Table, AlignsColumnsAndPadsShortRows) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b"});  // short row padded
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // Every line has the same width (trailing spaces trimmed per cell rules
  // aside, the header separator spans the full width).
  std::istringstream ss(out);
  std::string header, sep;
  std::getline(ss, header);
  std::getline(ss, sep);
  EXPECT_GE(sep.size(), header.size() - 2);
}

TEST(Table, FormattersProduceStableStrings) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(fmt(static_cast<size_t>(42)), "42");
  EXPECT_EQ(fmt_pct(0.8842), "88.4%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Cli, ParsesFlagsAndTypes) {
  const char* argv[] = {"prog", "--nodes=50", "--rate=2.5", "--verbose", "--name=ropsten"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("nodes"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_uint("nodes", 1), 50u);
  EXPECT_EQ(cli.get_int("nodes", 1), 50);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "ropsten");
  EXPECT_TRUE(cli.get_bool("verbose", false)) << "bare flag means true";
  EXPECT_EQ(cli.get_uint("absent", 7), 7u);
  EXPECT_EQ(cli.get_string("absent", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("absent", false));
}

TEST(Log, LevelGatesMessages) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls must be no-ops (nothing to assert on stderr
  // portably; this exercises the early-return path).
  TOPO_DEBUG("dropped %d", 1);
  TOPO_INFO("dropped");
  TOPO_WARN("dropped");
  set_log_level(original);
}

}  // namespace
}  // namespace topo::util
