// Coverage for the small util pieces: table rendering, CLI parsing, and
// log level gating.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

namespace topo::util {
namespace {

TEST(Table, AlignsColumnsAndPadsShortRows) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b"});  // short row padded
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // Every line has the same width (trailing spaces trimmed per cell rules
  // aside, the header separator spans the full width).
  std::istringstream ss(out);
  std::string header, sep;
  std::getline(ss, header);
  std::getline(ss, sep);
  EXPECT_GE(sep.size(), header.size() - 2);
}

TEST(Table, FormattersProduceStableStrings) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(fmt(static_cast<size_t>(42)), "42");
  EXPECT_EQ(fmt_pct(0.8842), "88.4%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Cli, ParsesFlagsAndTypes) {
  const char* argv[] = {"prog", "--nodes=50", "--rate=2.5", "--verbose", "--name=ropsten"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("nodes"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_uint("nodes", 1), 50u);
  EXPECT_EQ(cli.get_int("nodes", 1), 50);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "ropsten");
  EXPECT_TRUE(cli.get_bool("verbose", false)) << "bare flag means true";
  EXPECT_EQ(cli.get_uint("absent", 7), 7u);
  EXPECT_EQ(cli.get_string("absent", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("absent", false));
}

TEST(Cli, AcceptsBoundaryAndCaseInsensitiveValues) {
  const char* argv[] = {"prog", "--big=18446744073709551615", "--neg=-3", "--yes=TRUE",
                        "--no=Off", "--tiny=1e-310"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_uint("big", 0), UINT64_MAX);
  EXPECT_EQ(cli.get_int("neg", 0), -3);
  EXPECT_TRUE(cli.get_bool("yes", false)) << "get_bool is case-insensitive";
  EXPECT_FALSE(cli.get_bool("no", true));
  // Subnormal underflow is a representable (tiny) value, not an error.
  EXPECT_GT(cli.get_double("tiny", 1.0), 0.0);
}

using CliDeathTest = ::testing::Test;

// Regression: these all silently parsed to 0 (strtoull/strtod with no
// endptr check) before the malformed-value rejection landed; a typo like
// --nodes=4O would run a 0-node campaign instead of failing fast.
TEST(CliDeathTest, RejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--nodes=4O"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_uint("nodes", 1), ::testing::ExitedWithCode(2),
              "invalid value for --nodes");
}

TEST(CliDeathTest, RejectsNegativeUnsigned) {
  // strtoull wraps "-1" to UINT64_MAX silently; the CLI must not.
  const char* argv[] = {"prog", "--shards=-1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_uint("shards", 0), ::testing::ExitedWithCode(2),
              "invalid value for --shards");
}

TEST(CliDeathTest, RejectsOutOfRangeInt) {
  const char* argv[] = {"prog", "--n=99999999999999999999999999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_int("n", 0), ::testing::ExitedWithCode(2), "invalid value for --n");
}

TEST(CliDeathTest, RejectsOverflowDouble) {
  const char* argv[] = {"prog", "--rate=1e999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_double("rate", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --rate");
}

TEST(CliDeathTest, RejectsGarbageDoubleAndBool) {
  const char* argv[] = {"prog", "--rate=fast", "--flag=maybe"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_double("rate", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --rate");
  EXPECT_EXIT(cli.get_bool("flag", false), ::testing::ExitedWithCode(2),
              "invalid value for --flag");
}

TEST(CliDeathTest, RejectsEmptyNumericValue) {
  const char* argv[] = {"prog", "--nodes="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_uint("nodes", 1), ::testing::ExitedWithCode(2),
              "invalid value for --nodes");
}

TEST(Log, LevelGatesMessages) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls must be no-ops (nothing to assert on stderr
  // portably; this exercises the early-return path).
  TOPO_DEBUG("dropped %d", 1);
  TOPO_INFO("dropped");
  TOPO_WARN("dropped");
  set_log_level(original);
}

}  // namespace
}  // namespace topo::util
