// Integration tests for measurePar (§5.3.1) including the Appendix B.1.1
// local validation matrix (paper Table 8) and full-network measurement via
// the schedule.

#include <gtest/gtest.h>

#include "core/toposhot.h"
#include "core/validator.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace topo::core {
namespace {

ScenarioOptions fast_options(uint64_t seed = 21) {
  ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  return opt;
}

TEST(Parallel, BipartiteMeasurementMatchesTruth) {
  // 2 sources x 2 sinks over a known 6-node graph; all four cross pairs.
  graph::Graph g(6);
  g.add_edge(0, 2);  // A0 - B0
  g.add_edge(1, 3);  // A1 - B1
  g.add_edge(0, 4);
  g.add_edge(1, 4);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  Scenario sc(g, fast_options());
  sc.seed_background();

  const auto& t = sc.targets();
  const std::vector<p2p::PeerId> sources{t[0], t[1]};
  const std::vector<p2p::PeerId> sinks{t[2], t[3]};
  const std::vector<ParallelEdge> edges{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const auto res = sc.measure_parallel(sources, sinks, edges, sc.default_measure_config());

  EXPECT_TRUE(res.connected[0]) << "A0-B0 is a real link";
  EXPECT_FALSE(res.connected[1]) << "A0-B1 is not";
  EXPECT_FALSE(res.connected[2]) << "A1-B0 is not";
  EXPECT_TRUE(res.connected[3]) << "A1-B1 is a real link";
  for (bool planted : res.txa_planted) EXPECT_TRUE(planted);
}

// ---------------------------------------------------------------------------
// Table 8: the six local connection configurations among A1, A2, B, each
// measured with the parallel primitive — expect 100% recall and precision.
// ---------------------------------------------------------------------------

struct LocalCase {
  const char* name;
  bool a1a2, a1b, a2b;
};

class Table8Cases : public ::testing::TestWithParam<LocalCase> {};

TEST_P(Table8Cases, PerfectPrecisionAndRecall) {
  const LocalCase& c = GetParam();
  // Node order: 0=A1, 1=A2, 2=B.
  graph::Graph g(3);
  if (c.a1a2) g.add_edge(0, 1);
  if (c.a1b) g.add_edge(0, 2);
  if (c.a2b) g.add_edge(1, 2);

  Scenario sc(g, fast_options(33));
  sc.seed_background();
  const auto& t = sc.targets();
  const std::vector<p2p::PeerId> sources{t[0], t[1]};
  const std::vector<p2p::PeerId> sinks{t[2]};
  const std::vector<ParallelEdge> edges{{0, 0}, {1, 0}};
  const auto res = sc.measure_parallel(sources, sinks, edges, sc.default_measure_config());

  EXPECT_EQ(res.connected[0], c.a1b) << "A1-B mismatch";
  EXPECT_EQ(res.connected[1], c.a2b) << "A2-B mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Table8Cases,
    ::testing::Values(LocalCase{"all_three", true, true, true},
                      LocalCase{"a1a2_a1b", true, true, false},
                      LocalCase{"a1a2_only", true, false, false},
                      LocalCase{"a1b_a2b", false, true, true},
                      LocalCase{"a1b_only", false, true, false},
                      LocalCase{"none", false, false, false}),
    [](const ::testing::TestParamInfo<LocalCase>& info) { return info.param.name; });

TEST(Parallel, UnlimitedFuturesPerAccountStillFloods) {
  // Same U = 0 empty-flood regression as the one-link driver, through the
  // parallel primitive's shared flood path.
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  Scenario sc(g, fast_options(91));
  sc.seed_background();
  MeasureConfig cfg = sc.default_measure_config();
  cfg.futures_per_account_U = 0;
  const auto& t = sc.targets();
  const auto res = sc.measure_parallel({t[0], t[1]}, {t[2]}, {{0, 0}, {1, 0}}, cfg);
  EXPECT_TRUE(res.connected[0]) << "U=0 must not silently skip the eviction flood";
  EXPECT_TRUE(res.connected[1]);
}

TEST(Parallel, EmptyEdgeListIsNoop) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  Scenario sc(g, fast_options());
  sc.seed_background();
  const auto res = sc.measure_parallel({sc.targets()[0]}, {sc.targets()[1]}, {},
                                       sc.default_measure_config());
  EXPECT_TRUE(res.connected.empty());
  EXPECT_EQ(res.txs_sent, 0u);
}

TEST(Parallel, FullNetworkScheduleRecoversTopology) {
  util::Rng rng(5);
  graph::Graph g = graph::erdos_renyi_gnm(12, 20, rng);
  Scenario sc(g, fast_options(55));
  sc.seed_background();

  const auto report = sc.measure_network(4, sc.default_measure_config());
  EXPECT_EQ(report.pairs_tested, 12u * 11 / 2);
  const auto pr = compare_graphs(g, report.measured);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0) << "no false positives, ever";
  EXPECT_GE(pr.recall(), 0.95) << "near-perfect recall under default configs";
}

TEST(Parallel, ManySinksOneSourceGroup) {
  // q = 1 inverted: one sink serving many sources, the Fig 4b layout.
  util::Rng rng(6);
  graph::Graph g(8);
  for (graph::NodeId u = 1; u < 8; ++u) {
    if (u % 2 == 1) g.add_edge(0, u);  // B connects to odd nodes
  }
  // Connect everything through a hub so txC floods reach all nodes.
  for (graph::NodeId u = 1; u + 1 < 8; ++u) g.add_edge(u, u + 1);
  Scenario sc(g, fast_options(77));
  sc.seed_background();
  const auto& t = sc.targets();
  std::vector<p2p::PeerId> sources;
  std::vector<ParallelEdge> edges;
  for (size_t u = 1; u < 8; ++u) {
    edges.push_back({sources.size(), 0});
    sources.push_back(t[u]);
  }
  const auto res = sc.measure_parallel(sources, {t[0]}, edges, sc.default_measure_config());
  for (size_t i = 0; i < edges.size(); ++i) {
    const graph::NodeId u = static_cast<graph::NodeId>(i + 1);
    EXPECT_EQ(res.connected[i], g.has_edge(0, u)) << "node " << u;
  }
}

}  // namespace
}  // namespace topo::core
