// World snapshot / fork tests (core::Scenario::snapshot / fork) and the
// peer-lifetime enforcement contract (p2p::Peer auto-detach).
//
// The fork contract under test: a WorldSnapshot is a frozen, self-contained
// image of a warmed world; replicas forked from it are fully independent
// (copy-on-write pages — mutating one never leaks into another or back into
// the snapshot), survive the base world's destruction, and — driven with
// the same inputs — produce byte-identical artifacts to each other and to
// the world they were forked from. The campaign-level fork-vs-rebuild
// byte-identity goldens live in test_determinism.cpp; this file covers the
// mechanism itself.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/session.h"
#include "core/toposhot.h"
#include "graph/generators.h"
#include "p2p/network.h"
#include "p2p/node.h"
#include "util/rng.h"

namespace topo {
namespace {

core::ScenarioOptions small_options(uint64_t seed = 7) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 96;
  opt.future_cap = 24;
  opt.background_txs = 64;
  return opt;
}

graph::Graph small_truth() {
  util::Rng rng(3);
  return graph::erdos_renyi_gnm(12, 20, rng);
}

/// Name-sorted JSON-ish fingerprint of a scenario's full metrics export.
std::string metrics_fingerprint(core::Scenario& sc) {
  const obs::MetricsSnapshot snap = sc.snapshot_metrics();
  std::string out;
  for (const auto& [k, v] : snap.counters) out += k + "=" + std::to_string(v) + ";";
  for (const auto& [k, v] : snap.gauges) out += k + "=" + std::to_string(v) + ";";
  for (const auto& [k, v] : snap.gauge_maxes) out += k + "^" + std::to_string(v) + ";";
  return out;
}

TEST(SnapshotWorld, CapturesWarmedStateAndSurvivesBaseDestruction) {
  const graph::Graph truth = small_truth();
  core::WorldSnapshot snap;
  {
    core::Scenario base(truth, small_options());
    base.seed_background();
    snap = base.snapshot();
    // Base world dies here; the snapshot must be self-contained.
  }
  auto fork = core::Scenario::fork(snap);
  ASSERT_EQ(fork->targets().size(), truth.num_nodes());
  // The warmed background load came across: every node's pool is populated.
  for (p2p::PeerId id : fork->targets()) {
    EXPECT_GT(fork->net().node(id).pool().size(), 0u) << "node " << id;
  }
  // The replica's clock continues from the warmed world's, not from zero.
  EXPECT_GT(fork->sim().now(), 0.0);
  // And the world is actually runnable: pending maintenance ticks fire.
  const double before = fork->sim().now();
  fork->sim().run_until(before + 2.0);
  EXPECT_GT(fork->sim().processed(), 0u);
}

TEST(SnapshotWorld, RejectsPendingClosureEvents) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  // Link churn schedules closures — symbolically untranslatable.
  base.net().start_link_churn(5.0);
  EXPECT_THROW((void)base.snapshot(), std::logic_error);
}

TEST(ForkWorld, MutatingOneReplicaNeverLeaksIntoAnother) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  const core::WorldSnapshot snap = base.snapshot();

  auto dirty = core::Scenario::fork(snap);
  auto clean = core::Scenario::fork(snap);

  // Drive the dirty replica hard: a real measurement floods pools, evicts,
  // mines nothing but dirties nearly every copy-on-write page.
  core::MeasurementSession session(*dirty);
  const auto r = session.one_link(dirty->targets()[0], dirty->targets()[1]);
  (void)r;
  EXPECT_GT(dirty->sim().now(), clean->sim().now());

  // The untouched replica still matches a fresh fork of the same snapshot,
  // down to every metric — nothing the dirty replica did is visible.
  auto fresh = core::Scenario::fork(snap);
  EXPECT_EQ(metrics_fingerprint(*clean), metrics_fingerprint(*fresh));
  for (size_t i = 0; i < clean->targets().size(); ++i) {
    EXPECT_EQ(clean->net().node(clean->targets()[i]).pool().size(),
              fresh->net().node(fresh->targets()[i]).pool().size());
  }
}

TEST(ForkWorld, ReplicasDrivenIdenticallyStayByteIdentical) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  const core::WorldSnapshot snap = base.snapshot();

  auto run = [&](core::Scenario& sc) {
    sc.reseed(1234);
    core::MeasurementSession session(sc);
    (void)session.one_link(sc.targets()[2], sc.targets()[3]);
    return metrics_fingerprint(sc);
  };
  auto a = core::Scenario::fork(snap);
  auto b = core::Scenario::fork(snap);
  EXPECT_EQ(run(*a), run(*b));
}

TEST(ForkWorld, DoubleForkContinuesExactlyWhereTheFirstForkWas) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  const core::WorldSnapshot snap = base.snapshot();

  // Fork once, advance, snapshot the fork, fork again: the grandchild must
  // be indistinguishable from the child it was cut from.
  auto child = core::Scenario::fork(snap);
  child->sim().run_until(child->sim().now() + 1.5);
  const core::WorldSnapshot mid = child->snapshot();
  auto grandchild = core::Scenario::fork(mid);

  EXPECT_EQ(grandchild->sim().now(), child->sim().now());
  EXPECT_EQ(grandchild->sim().processed(), child->sim().processed());

  // Driven identically from here, they stay identical.
  auto run = [](core::Scenario& sc) {
    sc.reseed(99);
    core::MeasurementSession session(sc);
    (void)session.one_link(sc.targets()[1], sc.targets()[4]);
    return sc.sim().now();
  };
  EXPECT_EQ(run(*child), run(*grandchild));
}

TEST(ForkWorld, TombstonePeakGaugeStartsFromZeroPerFork) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  // Dirty the base's tombstone telemetry with a real measurement (floods
  // evict from the middle of pools, burying index keys).
  core::MeasurementSession session(base);
  (void)session.one_link(base.targets()[0], base.targets()[5]);
  const auto base_metrics = base.snapshot_metrics();
  const auto base_peak = base_metrics.gauge_maxes.find("mempool.index.tombstone_peak");
  ASSERT_NE(base_peak, base_metrics.gauge_maxes.end());

  const core::WorldSnapshot snap = base.snapshot();
  auto fork = core::Scenario::fork(snap);
  // Telemetry is per-world: the replica's high-water starts from zero,
  // exactly like a freshly rebuilt world — it must not inherit the base
  // run's spike.
  const auto fork_metrics = fork->snapshot_metrics();
  EXPECT_EQ(fork_metrics.gauge_maxes.at("mempool.index.tombstone_peak"), 0.0);
}

TEST(ForkWorld, ReseedGivesForksIndependentIdentities) {
  const graph::Graph truth = small_truth();
  core::Scenario base(truth, small_options());
  base.seed_background();
  const core::WorldSnapshot snap = base.snapshot();

  // Organic traffic draws arrival times and senders from the scenario RNG,
  // so it is the seed-sensitive load: same seed → same trajectory;
  // different seed → (overwhelmingly) not.
  auto run = [&](uint64_t seed) {
    auto sc = core::Scenario::fork(snap);
    sc->reseed(seed);
    sc->start_organic_traffic(40.0);
    sc->sim().run_until(sc->sim().now() + 5.0);
    std::string fp;
    for (const auto& [k, v] : sc->snapshot_metrics().counters)
      fp += k + "=" + std::to_string(v) + ";";
    return fp;
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

// ---------------------------------------------------------------------------
// Peer lifetime enforcement (p2p::Peer auto-detach).

class RecordingPeer final : public p2p::Peer {
 public:
  void deliver_tx(const eth::Transaction&, p2p::PeerId) override { ++delivered; }
  void deliver_announce(eth::TxHash, p2p::PeerId) override {}
  void deliver_get_tx(eth::TxHash, p2p::PeerId) override {}
  int delivered = 0;
};

TEST(PeerLifetime, DestroyedPeerDetachesWithDeliveryStillInFlight) {
  sim::Simulator sim;
  eth::Chain chain(8'000'000);
  p2p::Network net(&sim, &chain, util::Rng(5), sim::LatencyModel::fixed(0.05));

  p2p::NodeConfig cfg;
  const p2p::PeerId sender = net.add_node(cfg);
  auto doomed = std::make_unique<RecordingPeer>();
  const p2p::PeerId id = net.register_peer(doomed.get());
  ASSERT_TRUE(net.connect(sender, id));

  eth::TxFactory f;
  net.send_tx(sender, id, f.make(1, 0, 100));
  // The delivery is scheduled but not yet run; destroying the peer now must
  // sever its links and leave an inert sink in its slot. Under ASan this is
  // the use-after-free regression test for the old dangling peers_ entry.
  doomed.reset();
  EXPECT_FALSE(net.linked(sender, id));
  // Delivers into the sink — must not crash or touch freed memory. (Bounded
  // run: the network's periodic maintenance keeps the queue non-empty.)
  sim.run_until(sim.now() + 1.0);
  SUCCEED();
}

TEST(PeerLifetime, NetworkDestroyedBeforePeerLeavesNoDanglingBackref) {
  auto peer = std::make_unique<RecordingPeer>();
  {
    sim::Simulator sim;
    eth::Chain chain(8'000'000);
    p2p::Network net(&sim, &chain, util::Rng(5));
    net.register_peer(peer.get());
    // Network dies first: it must unhook the peer's auto-detach
    // back-reference, or the peer's destructor would call into freed
    // memory below.
  }
  peer.reset();
  SUCCEED();
}

TEST(PeerLifetime, ExplicitDetachThenDestroyIsIdempotent) {
  sim::Simulator sim;
  eth::Chain chain(8'000'000);
  p2p::Network net(&sim, &chain, util::Rng(5));
  auto peer = std::make_unique<RecordingPeer>();
  const p2p::PeerId id = net.register_peer(peer.get());
  net.detach_peer(id);
  // Already detached: the destructor must not detach a second time (the
  // slot now holds the sink, not this peer).
  peer.reset();
  EXPECT_NO_THROW(net.peer(id).deliver_announce(1, 0));  // inert sink slot
}

}  // namespace
}  // namespace topo
