// Round-trip tests for measurement-report persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/report_io.h"
#include "graph/generators.h"

namespace topo::core {
namespace {

TEST(ReportIo, GraphJsonRoundTrip) {
  util::Rng rng(1);
  const auto g = graph::erdos_renyi_gnm(20, 50, rng);
  const auto j = graph_to_json(g);
  const auto back = graph_from_json(j);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_nodes(), g.num_nodes());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edges()) EXPECT_TRUE(back->has_edge(u, v));
}

TEST(ReportIo, GraphJsonRejectsMalformed) {
  EXPECT_FALSE(graph_from_json(rpc::Json("nope")).has_value());
  auto j = rpc::Json::parse(R"({"nodes":2,"edges":[[0,5]]})");
  ASSERT_TRUE(j.has_value());
  EXPECT_FALSE(graph_from_json(*j).has_value()) << "edge endpoint out of range";
  j = rpc::Json::parse(R"({"nodes":2,"edges":[[0]]})");
  EXPECT_FALSE(graph_from_json(*j).has_value()) << "malformed edge";
}

TEST(ReportIo, ReportFileRoundTrip) {
  util::Rng rng(2);
  NetworkMeasurementReport report;
  report.measured = graph::erdos_renyi_gnm(12, 30, rng);
  report.iterations = 7;
  report.pairs_tested = 66;
  report.sim_seconds = 1234.5;
  report.txs_sent = 98765;

  const std::string path = "/tmp/toposhot_report_test.json";
  ASSERT_TRUE(save_report(report, path));
  const auto back = load_report(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->iterations, 7u);
  EXPECT_EQ(back->pairs_tested, 66u);
  EXPECT_DOUBLE_EQ(back->sim_seconds, 1234.5);
  EXPECT_EQ(back->txs_sent, 98765u);
  EXPECT_EQ(back->measured.num_edges(), report.measured.num_edges());
}

// A well-formed v1 document to mutate field-by-field.
rpc::Json good_report_json() {
  auto j = rpc::Json::parse(
      R"({"format":"toposhot-report-v1","iterations":3,"pairs_tested":10,)"
      R"("sim_seconds":42.5,"txs_sent":100,)"
      R"("topology":{"nodes":3,"edges":[[0,1],[1,2]]}})");
  EXPECT_TRUE(j.has_value());
  return *j;
}

TEST(ReportIo, FromJsonAcceptsWellFormed) {
  const auto r = report_from_json(good_report_json());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->iterations, 3u);
  EXPECT_EQ(r->pairs_tested, 10u);
  EXPECT_DOUBLE_EQ(r->sim_seconds, 42.5);
  EXPECT_EQ(r->txs_sent, 100u);
  EXPECT_EQ(r->measured.num_edges(), 2u);
}

TEST(ReportIo, FromJsonRejectsMissingField) {
  // Regression: as_number() on an absent field used to default to 0, so a
  // truncated document loaded as a report that claimed zero work.
  for (const char* key : {"iterations", "pairs_tested", "sim_seconds", "txs_sent"}) {
    auto j = good_report_json();
    j.as_object().erase(key);
    EXPECT_FALSE(report_from_json(j).has_value()) << "missing " << key;
  }
}

TEST(ReportIo, FromJsonRejectsWrongTypedField) {
  for (const char* key : {"iterations", "pairs_tested", "sim_seconds", "txs_sent"}) {
    auto j = good_report_json();
    j.as_object()[key] = rpc::Json("not-a-number");
    EXPECT_FALSE(report_from_json(j).has_value()) << key << " as string";
  }
}

TEST(ReportIo, FromJsonRejectsNegativeCounts) {
  auto j = good_report_json();
  j.as_object()["txs_sent"] = rpc::Json(-5.0);
  EXPECT_FALSE(report_from_json(j).has_value());
}

TEST(ReportIo, FromJsonRejectsMissingOrBadTopology) {
  auto j = good_report_json();
  j.as_object().erase("topology");
  EXPECT_FALSE(report_from_json(j).has_value());
  j = good_report_json();
  j.as_object()["topology"] = rpc::Json("nope");
  EXPECT_FALSE(report_from_json(j).has_value());
}

TEST(ReportIo, FromJsonIgnoresUnknownFields) {
  auto j = good_report_json();
  j.as_object()["future_extension"] = rpc::Json(1.0);
  EXPECT_TRUE(report_from_json(j).has_value())
      << "unknown fields are forward-compatible, not errors";
}

TEST(ReportIo, FaultAnnexRoundTripsAndIsOmittedWhenAbsent) {
  util::Rng rng(3);
  NetworkMeasurementReport report;
  report.measured = graph::erdos_renyi_gnm(8, 12, rng);
  report.iterations = 2;
  report.pairs_tested = 28;
  report.sim_seconds = 10.0;
  report.txs_sent = 500;
  // Absent annex: no "fault" key in the serialized document (zero-cost-off
  // byte identity for unfaulted reports).
  EXPECT_EQ(report_to_json(report).dump().find("fault"), std::string::npos);

  FaultReport f;
  f.drop_tx = 0.05;
  f.drop_announce = 0.01;
  f.drop_get_tx = 0.02;
  f.spike_prob = 0.1;
  f.spike_mult = 4.0;
  f.churn_rate = 0.5;
  f.retries = 2;
  f.attempts = 40;
  f.inconclusive = 3;
  f.retried = {{0, 5, 2}, {3, 7, 3}};
  report.fault = f;

  const auto back = report_from_json(report_to_json(report));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->fault.has_value());
  EXPECT_EQ(*back->fault, f);
}

TEST(ReportIo, FromJsonRejectsMalformedFaultAnnex) {
  auto make = [](const char* fault_body) {
    auto j = good_report_json();
    auto f = rpc::Json::parse(fault_body);
    EXPECT_TRUE(f.has_value());
    j.as_object()["fault"] = *f;
    return j;
  };
  // Wrong type for the whole annex.
  auto j = good_report_json();
  j.as_object()["fault"] = rpc::Json("nope");
  EXPECT_FALSE(report_from_json(j).has_value());
  // Missing tally field.
  EXPECT_FALSE(report_from_json(make(
                   R"({"drop_tx":0.1,"drop_announce":0,"drop_get_tx":0,"spike_prob":0,)"
                   R"("spike_mult":1,"churn_rate":0,"retries":1,"attempts":5,"retried":[]})"))
                   .has_value())
      << "missing inconclusive";
  // Malformed retried entry.
  EXPECT_FALSE(report_from_json(make(
                   R"({"drop_tx":0.1,"drop_announce":0,"drop_get_tx":0,"spike_prob":0,)"
                   R"("spike_mult":1,"churn_rate":0,"retries":1,"attempts":5,)"
                   R"("inconclusive":0,"retried":[[1,2]]})"))
                   .has_value())
      << "retried triple truncated";
}

TEST(ReportIo, LoadRejectsWrongFormat) {
  const std::string path = "/tmp/toposhot_report_bad.json";
  {
    std::ofstream out(path);
    out << R"({"format":"something-else"})";
  }
  EXPECT_FALSE(load_report(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(load_report("/nonexistent/path.json").has_value());
}

}  // namespace
}  // namespace topo::core
