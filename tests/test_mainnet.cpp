// Tests for the mainnet critical-subnetwork substrate (§6.3): census
// scaling, biased wiring, discovery, and the end-to-end Table 6 pattern.

#include <gtest/gtest.h>

#include "core/gas_estimator.h"
#include "core/mainnet.h"
#include "core/noninterference.h"
#include "core/toposhot.h"
#include "p2p/node.h"

namespace topo::core {
namespace {

TEST(Mainnet, CensusMatchesPaperAtFullScale) {
  const auto census = paper_service_census(1.0);
  ASSERT_EQ(census.size(), 8u);
  auto find = [&](const std::string& name) -> const ServiceSpec& {
    for (const auto& s : census) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << name << " missing";
    static ServiceSpec dummy;
    return dummy;
  };
  EXPECT_EQ(find("SrvR1").node_count, 48u);
  EXPECT_EQ(find("SrvR2").node_count, 1u);
  EXPECT_EQ(find("SrvM1").node_count, 59u);
  EXPECT_EQ(find("SrvM2").node_count, 8u);
  EXPECT_FALSE(find("SrvM1").peers_with_same_service) << "Table 6's SrvM1 quirk";
  EXPECT_FALSE(find("SrvR2").prioritizes_critical) << "SrvR2 is a vanilla node";
  EXPECT_TRUE(find("SrvR1").is_relay);
}

TEST(Mainnet, ScalingKeepsMinimumOnePerService) {
  for (const auto& s : paper_service_census(0.01)) {
    EXPECT_GE(s.node_count, 1u) << s.name;
  }
}

TEST(Mainnet, BiasedWiringMatchesTable6Pattern) {
  util::Rng rng(1);
  const auto census = paper_service_census(0.3);
  const auto world = build_mainnet_world(120, census, 8, rng);

  auto nodes_of = [&](const std::string& svc) { return discover_service_nodes(world, svc); };
  const auto r1 = nodes_of("SrvR1");
  const auto r2 = nodes_of("SrvR2");
  const auto m1 = nodes_of("SrvM1");
  const auto m2 = nodes_of("SrvM2");
  ASSERT_GE(r1.size(), 2u);
  ASSERT_GE(m1.size(), 2u);
  ASSERT_GE(m2.size(), 2u);

  auto linked = [&](size_t a, size_t b) {
    return world.topology.has_edge(static_cast<graph::NodeId>(a),
                                   static_cast<graph::NodeId>(b));
  };
  // Prioritizing services interconnect.
  EXPECT_TRUE(linked(r1[0], r1[1]));
  EXPECT_TRUE(linked(r1[0], m1[0]));
  EXPECT_TRUE(linked(r1[0], m2[0]));
  EXPECT_TRUE(linked(m1[0], m2[0]));
  EXPECT_TRUE(linked(m2[0], m2[1])) << "SrvM2 backends peer with each other";
  // The two exceptions.
  EXPECT_FALSE(linked(m1[0], m1[1])) << "SrvM1 backends do not self-peer";
  // SrvR2 gets no *biased* links; only its random organic ones may exist,
  // which is seed-dependent — so don't assert either way there.
  (void)r2;
}

TEST(Mainnet, DiscoveryFindsExactlyTheBackends) {
  util::Rng rng(2);
  const auto census = paper_service_census(0.1);
  const auto world = build_mainnet_world(100, census, 8, rng);
  size_t discovered = 0;
  for (const auto& s : census) discovered += discover_service_nodes(world, s.name).size();
  EXPECT_EQ(discovered, world.critical_indices.size());
  EXPECT_TRUE(discover_service_nodes(world, "NoSuchService").empty());
}

TEST(Mainnet, OrdinaryNodesCarryNoLabel) {
  util::Rng rng(3);
  const auto world = build_mainnet_world(80, paper_service_census(0.05), 6, rng);
  size_t labelled = 0;
  for (const auto& s : world.service_of) labelled += !s.empty();
  EXPECT_EQ(labelled, world.critical_indices.size());
  EXPECT_LT(labelled, world.topology.num_nodes());
}

TEST(Mainnet, EndToEndMeasurementRecoversWiredPattern) {
  // A small end-to-end run of the §6.3 study under the non-interference
  // configuration: the measured verdicts must match the wired truth.
  util::Rng rng(63);
  const auto census = paper_service_census(0.05);
  const auto world = build_mainnet_world(60, census, 8, rng);
  const auto r1 = discover_service_nodes(world, "SrvR1");
  const auto m1 = discover_service_nodes(world, "SrvM1");
  ASSERT_GE(r1.size(), 1u);
  ASSERT_GE(m1.size(), 2u);

  ScenarioOptions opt;
  opt.seed = 63;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  opt.background_price_lo = eth::gwei(1.0);
  opt.background_price_hi = eth::gwei(60.0);
  opt.block_gas_limit = 8 * eth::kTransferGas;
  Scenario sc(world.topology, opt);
  sc.seed_background();
  sc.start_churn(0.65);
  sc.sim().run_until(sc.sim().now() + 30.0);

  MeasureConfig cfg = sc.default_measure_config();
  cfg.price_Y = estimate_price_Y0(sc.m().view(), min_included_price(sc.chain()));
  const double t1 = sc.sim().now();

  const auto relay_pool =
      sc.measure_one_link(sc.targets()[r1[0]], sc.targets()[m1[0]], cfg);
  EXPECT_TRUE(relay_pool.connected) << "SrvR1 - SrvM1 must be detected";

  sc.sim().run_until(sc.sim().now() + 60.0);
  cfg.price_Y = estimate_price_Y0(sc.m().view(), min_included_price(sc.chain()));
  const auto pool_pool =
      sc.measure_one_link(sc.targets()[m1[0]], sc.targets()[m1[1]], cfg);
  EXPECT_FALSE(pool_pool.connected) << "SrvM1 backends do not self-peer";

  // Non-interference held throughout.
  const auto check = verify_noninterference(sc.chain(), t1, sc.sim().now(), 0.0, cfg.price_Y);
  EXPECT_TRUE(check.v1_blocks_full);
  EXPECT_TRUE(check.v2_prices_above_y0);
}

}  // namespace
}  // namespace topo::core
