// Tests for the discovery substrate: XOR ids, Kademlia tables, discovery
// rounds, dial scheduling, and emergent topologies.

#include <gtest/gtest.h>

#include "disc/dialer.h"
#include "disc/emergence.h"
#include "graph/metrics.h"

namespace topo::disc {
namespace {

TEST(NodeId, XorDistanceProperties) {
  util::Rng rng(1);
  const auto a = random_id(rng);
  const auto b = random_id(rng);
  // d(a,a) = 0
  const auto zero = xor_distance(a, a);
  for (auto w : zero.words) EXPECT_EQ(w, 0u);
  // symmetry
  EXPECT_EQ(xor_distance(a, b).words, xor_distance(b, a).words);
  EXPECT_EQ(log_distance(a, a), -1);
  EXPECT_EQ(log_distance(a, b), log_distance(b, a));
}

TEST(NodeId, LogDistanceOfKnownPatterns) {
  NodeId256 a{};  // all zero
  NodeId256 b{};
  b.words[3] = 1;  // lowest bit of the 256-bit id
  EXPECT_EQ(log_distance(a, b), 0);
  NodeId256 c{};
  c.words[0] = 1ull << 63;  // highest bit
  EXPECT_EQ(log_distance(a, c), 255);
}

TEST(NodeId, DistanceLessIsStrictOrder) {
  util::Rng rng(2);
  const auto a = random_id(rng);
  const auto b = random_id(rng);
  EXPECT_FALSE(distance_less(a, a));
  if (!(a == b)) {
    EXPECT_NE(distance_less(a, b), distance_less(b, a));
  }
}

TEST(KademliaTable, CapacityIs272ForGethGeometry) {
  util::Rng rng(3);
  KademliaTable t(random_id(rng));
  EXPECT_EQ(t.capacity(), 272u);  // 17 buckets x 16 entries
}

TEST(KademliaTable, RejectsDuplicatesAndSelf) {
  util::Rng rng(4);
  const auto self = random_id(rng);
  KademliaTable t(self);
  const auto other = random_id(rng);
  EXPECT_FALSE(t.add(0, self));
  EXPECT_TRUE(t.add(1, other));
  EXPECT_FALSE(t.add(1, other));
  EXPECT_TRUE(t.contains(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(KademliaTable, BucketsFillAndOverflowDrops) {
  util::Rng rng(5);
  const auto self = random_id(rng);
  KademliaTable t(self, 17, 16);
  size_t added = 0;
  for (uint32_t i = 0; i < 4000; ++i) {
    if (t.add(i + 1, random_id(rng))) ++added;
  }
  EXPECT_LE(t.size(), t.capacity());
  EXPECT_EQ(t.size(), added);
  // Random ids mostly land in the outermost bucket, so the table does not
  // fill completely — but the far bucket must be full.
  EXPECT_GE(t.size(), 16u);
}

TEST(KademliaTable, ClosestReturnsNearestByXor) {
  util::Rng rng(6);
  const auto self = random_id(rng);
  KademliaTable t(self);
  std::vector<NodeId256> ids;
  for (uint32_t i = 0; i < 64; ++i) {
    const auto id = random_id(rng);
    if (t.add(i, id)) ids.push_back(id);
  }
  const auto target = random_id(rng);
  const auto closest = t.closest(target, 5);
  ASSERT_LE(closest.size(), 5u);
  ASSERT_FALSE(closest.empty());
  // Verify the first result is truly the nearest of the table entries.
  const auto entries = t.entries();
  // (entries and ids correspond by insertion; recompute distances directly)
  // The first returned node's distance must not exceed any other entry's.
  // We check via the ordering of the returned list itself:
  for (size_t i = 0; i + 1 < closest.size(); ++i) {
    SUCCEED();  // ordering is validated inside closest(); smoke only
  }
}

TEST(Discovery, TablesFillOverRounds) {
  DiscoverySim disc(80, util::Rng(7));
  const double fill0 = disc.average_fill();
  disc.run_round();
  disc.run_round();
  const double fill2 = disc.average_fill();
  EXPECT_GT(fill2, fill0);
  disc.run_until_filled(0.6, 16);
  EXPECT_GE(disc.average_fill(), 0.5);
}

TEST(Dialer, RespectsBudgets) {
  DiscoverySim disc(60, util::Rng(8));
  disc.run_until_filled(0.7, 16);
  DialerConfig cfg;
  cfg.max_peers.assign(60, 10);
  cfg.max_peers[0] = 3;
  util::Rng rng(9);
  const auto g = form_active_topology(disc, cfg, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  for (graph::NodeId u = 0; u < 60; ++u) {
    ASSERT_LE(g.degree(u), cfg.max_peers[u]) << "node " << u;
  }
  EXPECT_LE(g.degree(0), 3u);
  EXPECT_GT(g.num_edges(), 60u) << "dialer should form a dense-ish overlay";
}

TEST(Emergence, RopstenRecipeShapes) {
  auto cfg = ropsten_like(120);
  util::Rng rng(10);
  const auto g = emerge_topology(cfg, rng);
  EXPECT_EQ(g.num_nodes(), 120u);
  const auto d = graph::distance_stats(g);
  EXPECT_TRUE(d.connected);
  EXPECT_GT(g.average_degree(), 5.0);
}

TEST(Emergence, SupernodeBudgetsProduceHubs) {
  auto cfg = goerli_like(250);
  util::Rng rng(11);
  const auto g = emerge_topology(cfg, rng);
  size_t max_deg = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) max_deg = std::max(max_deg, g.degree(u));
  EXPECT_GT(max_deg, 2 * static_cast<size_t>(g.average_degree()))
      << "heavy-tail budgets should yield hub nodes";
}

TEST(Emergence, DeterministicPerSeed) {
  auto cfg = ropsten_like(60);
  util::Rng r1(12), r2(12);
  const auto a = emerge_topology(cfg, r1);
  const auto b = emerge_topology(cfg, r2);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (const auto& [u, v] : a.edges()) EXPECT_TRUE(b.has_edge(u, v));
}


TEST(Emergence, DiscV4VariantProducesComparableTopology) {
  auto cfg = ropsten_like(50);
  util::Rng r1(20), r2(20);
  const auto bulk = emerge_topology(cfg, r1);
  const auto protocol = emerge_topology_discv4(cfg, r2, 90.0);
  EXPECT_EQ(protocol.num_nodes(), bulk.num_nodes());
  // Same recipe, different substrate: edge counts should be in the same
  // ballpark (tables converge to similar occupancy either way).
  EXPECT_GT(protocol.num_edges(), bulk.num_edges() / 3);
  EXPECT_LT(protocol.num_edges(), bulk.num_edges() * 3);
  const auto d = graph::distance_stats(protocol);
  EXPECT_TRUE(d.connected);
}

}  // namespace
}  // namespace topo::disc
