// MeasurementSession facade: equivalence with the legacy Scenario entry
// points, per-call metrics annotation, the MeasureConfig builder, and
// ScenarioOptions validation.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/session.h"
#include "core/toposhot.h"
#include "graph/generators.h"

namespace topo {
namespace {

core::ScenarioOptions small_options(uint64_t seed = 7) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  return opt;
}

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

// The facade must be a pure wrapper: on a fixed seed the old and new API
// produce identical OneLinkResults.
TEST(Session, MatchesLegacyScenarioApiOnFixedSeed) {
  const graph::Graph g = triangle();

  core::Scenario legacy(g, small_options());
  legacy.seed_background();
  const auto old_r = legacy.measure_one_link(legacy.targets()[0], legacy.targets()[1],
                                             legacy.default_measure_config());

  core::Scenario fresh(g, small_options());
  fresh.seed_background();
  core::MeasurementSession session(fresh);
  const auto new_r = session.one_link(fresh.targets()[0], fresh.targets()[1]);

  EXPECT_EQ(new_r.value.connected, old_r.connected);
  EXPECT_EQ(new_r.value.txa_hash, old_r.txa_hash);
  EXPECT_EQ(new_r.value.txb_hash, old_r.txb_hash);
  EXPECT_EQ(new_r.value.txc_hash, old_r.txc_hash);
  EXPECT_EQ(new_r.value.txs_sent, old_r.txs_sent);
  EXPECT_DOUBLE_EQ(new_r.value.started_at, old_r.started_at);
  EXPECT_DOUBLE_EQ(new_r.value.finished_at, old_r.finished_at);
  EXPECT_EQ(new_r.value.txc_evicted_on_a, old_r.txc_evicted_on_a);
  EXPECT_EQ(new_r.value.txc_evicted_on_b, old_r.txc_evicted_on_b);
}

TEST(Session, AnnotatesResultsWithPerCallDeltas) {
  core::Scenario sc(triangle(), small_options());
  sc.seed_background();
  core::MeasurementSession session(sc);
  const auto first = session.one_link(sc.targets()[0], sc.targets()[1]);
  EXPECT_EQ(first.metrics.counters.at("probe.runs"), 1u);
  EXPECT_GT(first.metrics.counters.at("net.messages"), 0u);
  EXPECT_GT(first.metrics.counters.at("mempool.evictions"), 0u);
  // A second call's delta counts only itself.
  const auto second = session.one_link(sc.targets()[0], sc.targets()[2]);
  EXPECT_EQ(second.metrics.counters.at("probe.runs"), 1u);
  // The cumulative snapshot saw both.
  EXPECT_EQ(session.snapshot().counters.at("probe.runs"), 2u);
}

TEST(Session, ParallelEntryPoint) {
  util::Rng rng(99);
  const graph::Graph g = graph::erdos_renyi_gnm(6, 9, rng);
  core::Scenario sc(g, small_options(21));
  sc.seed_background();
  core::MeasurementSession session(sc);

  const std::vector<p2p::PeerId> sources = {sc.targets()[0]};
  const std::vector<p2p::PeerId> sinks = {sc.targets()[1]};
  const auto r = session.parallel(sources, sinks, {{0, 0}});
  ASSERT_EQ(r.value.connected.size(), 1u);
  EXPECT_EQ(r.value.connected[0], g.has_edge(0, 1));
  EXPECT_EQ(r.metrics.counters.at("probe.parallel.runs"), 1u);
}

TEST(ConfigBuilder, FluentConstructionAndDefaults) {
  const auto cfg = core::MeasureConfig::Builder()
                       .wait_X(15.0)
                       .flood_Z(777)
                       .bump_bp(1200)
                       .repetitions(2)
                       .eip1559(true)
                       .build();
  EXPECT_DOUBLE_EQ(cfg.wait_X, 15.0);
  EXPECT_EQ(cfg.flood_Z, 777u);
  EXPECT_EQ(cfg.bump_bp, 1200u);
  EXPECT_EQ(cfg.repetitions, 2u);
  EXPECT_TRUE(cfg.eip1559);
  // Untouched fields keep the MeasureConfig defaults.
  const core::MeasureConfig defaults;
  EXPECT_DOUBLE_EQ(cfg.detect_wait, defaults.detect_wait);
  EXPECT_EQ(cfg.futures_per_account_U, defaults.futures_per_account_U);
}

TEST(ConfigBuilder, StartsFromExistingConfig) {
  core::MeasureConfig base;
  base.flood_Z = 4321;
  const auto cfg = core::MeasureConfig::Builder(base).repetitions(5).build();
  EXPECT_EQ(cfg.flood_Z, 4321u);
  EXPECT_EQ(cfg.repetitions, 5u);
}

TEST(ConfigBuilder, RejectsUnsoundParameters) {
  EXPECT_THROW((void)core::MeasureConfig::Builder().wait_X(0.0).build(), std::invalid_argument);
  EXPECT_THROW((void)core::MeasureConfig::Builder().detect_wait(-1.0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)core::MeasureConfig::Builder().flood_Z(0).build(), std::invalid_argument);
  EXPECT_THROW((void)core::MeasureConfig::Builder().repetitions(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)core::MeasureConfig::Builder().bump_bp(20000).build(),
               std::invalid_argument);
  // Y = 1 wei collapses the integer price ladder (min_viable_Y = 40 at
  // the default 10% bump).
  EXPECT_THROW((void)core::MeasureConfig::Builder().price_Y(1).build(), std::invalid_argument);
  // Y = 0 means "estimate dynamically" and stays allowed.
  EXPECT_NO_THROW((void)core::MeasureConfig::Builder().price_Y(0).build());
}

TEST(ScenarioValidation, RejectsBackgroundLargerThanCapacity) {
  core::ScenarioOptions opt = small_options();
  opt.background_txs = opt.mempool_capacity + 1;
  EXPECT_THROW(core::Scenario(triangle(), opt), std::invalid_argument);
}

TEST(ScenarioValidation, RejectsFutureCapLargerThanCapacity) {
  core::ScenarioOptions opt = small_options();
  opt.future_cap = opt.mempool_capacity + 1;
  EXPECT_THROW(core::Scenario(triangle(), opt), std::invalid_argument);
}

TEST(ScenarioValidation, ValidatesAgainstEffectiveStockCapacity) {
  // capacity = 0 means "client stock" (Geth 5120); the raw option value
  // must not be compared directly.
  core::ScenarioOptions opt = small_options();
  opt.mempool_capacity = 0;
  opt.future_cap = 1024;
  opt.background_txs = 4000;
  EXPECT_NO_THROW(core::Scenario(triangle(), opt));
}

}  // namespace
}  // namespace topo
