// Differential fuzz of the mempool against a deliberately naive reference
// model: thousands of random operations per client policy, comparing the
// externally observable state after every step. The reference recomputes
// everything from scratch (no indices, no incremental bookkeeping), so any
// divergence pinpoints a bookkeeping bug in the optimized pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "eth/account.h"
#include "mempool/client_profile.h"
#include "mempool/mempool.h"
#include "util/rng.h"

namespace topo::mempool {
namespace {

/// Naive reference mempool implementing the same Table 2 semantics with
/// O(n) scans everywhere.
class ReferencePool {
 public:
  ReferencePool(MempoolPolicy policy, const eth::StateView* state)
      : policy_(policy), state_(state) {}

  AdmitCode add(const eth::Transaction& tx) {
    if (find_hash(tx.hash())) return AdmitCode::kRejectedDuplicate;
    if (tx.nonce < state_->next_nonce(tx.sender)) return AdmitCode::kRejectedStaleNonce;

    // Replacement?
    for (auto& existing : txs_) {
      if (existing.sender == tx.sender && existing.nonce == tx.nonce) {
        if (!policy_.accepts_replacement(existing.pool_price(), tx.pool_price())) {
          return AdmitCode::kRejectedUnderpricedReplacement;
        }
        existing = tx;
        return AdmitCode::kReplaced;
      }
    }

    const bool pending = would_be_pending(tx);
    if (!pending) {
      size_t futures_of_sender = 0;
      for (const auto& t : txs_) {
        if (t.sender == tx.sender && !is_pending(t)) ++futures_of_sender;
      }
      if (futures_of_sender >= policy_.max_futures_per_account) {
        return AdmitCode::kRejectedFutureLimit;
      }
    }
    if (txs_.size() >= policy_.capacity) {
      if (!pending && pending_count() < policy_.min_pending_for_eviction) {
        return AdmitCode::kRejectedEvictionForbidden;
      }
      // Victim: globally cheapest entry cheaper than the incomer (the
      // fuzz covers the paper-model policy only); a pending incomer may
      // also displace the cheapest future.
      auto victim = txs_.end();
      for (auto it = txs_.begin(); it != txs_.end(); ++it) {
        if (it->pool_price() >= tx.pool_price()) continue;
        if (victim == txs_.end() || it->pool_price() < victim->pool_price() ||
            (it->pool_price() == victim->pool_price() && it->id < victim->id)) {
          victim = it;
        }
      }
      if (victim == txs_.end() && pending) {
        for (auto it = txs_.begin(); it != txs_.end(); ++it) {
          if (is_pending(*it)) continue;
          if (victim == txs_.end() || it->pool_price() < victim->pool_price() ||
              (it->pool_price() == victim->pool_price() && it->id < victim->id)) {
            victim = it;
          }
        }
      }
      if (victim == txs_.end()) return AdmitCode::kRejectedPoolFull;
      txs_.erase(victim);
    }
    txs_.push_back(tx);
    // Eviction may have removed one of the incomer's own predecessors, so
    // the reported class is the post-insert truth.
    return is_pending(tx) ? AdmitCode::kAddedPending : AdmitCode::kAddedFuture;
  }

  void truncate_futures() {
    while (future_count() > policy_.future_cap) {
      auto victim = txs_.end();
      for (auto it = txs_.begin(); it != txs_.end(); ++it) {
        if (is_pending(*it)) continue;
        if (victim == txs_.end() || it->pool_price() < victim->pool_price() ||
            (it->pool_price() == victim->pool_price() && it->id < victim->id)) {
          victim = it;
        }
      }
      if (victim == txs_.end()) return;
      txs_.erase(victim);
    }
  }

  void on_block() {
    for (auto it = txs_.begin(); it != txs_.end();) {
      if (it->nonce < state_->next_nonce(it->sender)) it = txs_.erase(it);
      else ++it;
    }
  }

  bool is_pending(const eth::Transaction& tx) const {
    // Consecutive-nonce run from the chain nonce.
    for (eth::Nonce n = state_->next_nonce(tx.sender); n <= tx.nonce; ++n) {
      bool found = false;
      for (const auto& t : txs_) {
        if (t.sender == tx.sender && t.nonce == n) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  bool would_be_pending(const eth::Transaction& tx) const {
    for (eth::Nonce n = state_->next_nonce(tx.sender); n < tx.nonce; ++n) {
      bool found = false;
      for (const auto& t : txs_) {
        if (t.sender == tx.sender && t.nonce == n) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  bool find_hash(eth::TxHash h) const {
    return std::any_of(txs_.begin(), txs_.end(),
                       [&](const auto& t) { return t.hash() == h; });
  }
  size_t size() const { return txs_.size(); }
  size_t pending_count() const {
    size_t c = 0;
    for (const auto& t : txs_) c += is_pending(t);
    return c;
  }
  size_t future_count() const { return size() - pending_count(); }

  /// Multiset of (sender, nonce, price) for state comparison.
  std::multiset<std::tuple<eth::Address, eth::Nonce, eth::Wei>> state_set() const {
    std::multiset<std::tuple<eth::Address, eth::Nonce, eth::Wei>> out;
    for (const auto& t : txs_) out.insert({t.sender, t.nonce, t.pool_price()});
    return out;
  }

 private:
  MempoolPolicy policy_;
  const eth::StateView* state_;
  std::vector<eth::Transaction> txs_;
};

std::multiset<std::tuple<eth::Address, eth::Nonce, eth::Wei>> state_set(const Mempool& pool) {
  std::multiset<std::tuple<eth::Address, eth::Nonce, eth::Wei>> out;
  for (const auto& t : pool.all_snapshot()) out.insert({t.sender, t.nonce, t.pool_price()});
  return out;
}

class MempoolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MempoolFuzz, MatchesReferenceModel) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);

  MempoolPolicy policy;
  policy.capacity = 24;
  policy.future_cap = 8;
  policy.replace_bump_bp = 1000;
  policy.max_futures_per_account = 5;
  policy.min_pending_for_eviction = rng.chance(0.5) ? 0 : 6;
  policy.expiry_seconds = 0.0;  // expiry ordering is tested separately

  eth::MapState state;
  eth::TxFactory factory;
  Mempool pool(policy, &state);
  ReferencePool ref(policy, &state);

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.85) {
      const eth::Address sender = 1 + rng.index(8);
      const eth::Nonce nonce = rng.index(7);
      const eth::Wei price = 10 * (1 + rng.index(40));
      eth::Transaction tx = factory.make(sender, nonce, price);
      const auto got = pool.add(tx, 0.0);
      const auto want = ref.add(tx);
      ASSERT_EQ(got.code, want) << "step " << step << " tx " << tx.to_string();
    } else if (roll < 0.95) {
      pool.maintain(0.0);
      ref.truncate_futures();
    } else {
      // Advance a random account's chain nonce (a mined block).
      const eth::Address sender = 1 + rng.index(8);
      state.set_next_nonce(sender, state.next_nonce(sender) + 1 + rng.index(2));
      pool.on_block();
      ref.on_block();
    }
    ASSERT_EQ(pool.size(), ref.size()) << "step " << step;
    ASSERT_EQ(pool.pending_count(), ref.pending_count()) << "step " << step;
    ASSERT_EQ(state_set(pool), ref.state_set()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MempoolFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace topo::mempool
