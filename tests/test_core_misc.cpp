// Remaining core-layer coverage: schedule slot budgeting, cost windows,
// simulator determinism across identical runs, bandwidth accounting, and
// Scenario plumbing (churn, organic traffic, miner isolation).

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "core/toposhot.h"
#include "core/validator.h"
#include "graph/generators.h"
#include "p2p/node.h"

namespace topo::core {
namespace {

TEST(ScheduleBudget, SplitsOversizedIterationsAndStillCoversAllPairs) {
  // n=20, K=10: round 1 has a 10x10=100-pair iteration; budget 16 forces
  // chunking, but coverage must remain exactly-once.
  util::Rng grng(3);
  graph::Graph g = graph::erdos_renyi_gnm(20, 40, grng);
  ScenarioOptions opt;
  opt.seed = 3;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 128;
  Scenario sc(g, opt);
  sc.seed_background();

  MeasureConfig cfg = sc.default_measure_config();
  ParallelMeasurement par(sc.net(), sc.m(), sc.accounts(), sc.factory(), cfg);
  NetworkMeasurement nm(par, /*max_edges_per_call=*/16);
  const auto report = nm.measure_all(sc.net(), sc.targets(), 10);
  EXPECT_EQ(report.pairs_tested, 20u * 19 / 2);
  EXPECT_GT(report.iterations, make_schedule(20, 10).size()) << "budget forced extra batches";
  const auto pr = compare_graphs(g, report.measured);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_GE(pr.recall(), 0.9);
}

TEST(ScheduleBudget, DefaultBudgetDerivesFromFloodSize) {
  graph::Graph g(4);
  ScenarioOptions opt;
  opt.seed = 4;
  Scenario sc(g, opt);
  MeasureConfig cfg = sc.default_measure_config();
  cfg.flood_Z = 100;
  ParallelMeasurement par(sc.net(), sc.m(), sc.accounts(), sc.factory(), cfg);
  NetworkMeasurement nm(par);  // derive: 2/5 of Z = 40
  // Nothing to assert structurally without running; the derivation is
  // covered by the chunked coverage test above plus this smoke call.
  const auto report = nm.measure_all(sc.net(), sc.targets(), 2);
  EXPECT_EQ(report.pairs_tested, 6u);
}

TEST(CostTracker, WindowsAndAccounts) {
  eth::Chain chain(1'000'000);
  eth::TxFactory f;
  CostTracker tracker;
  tracker.track_account(1);
  tracker.track_account(2);
  EXPECT_EQ(tracker.tracked_accounts(), 2u);
  EXPECT_TRUE(tracker.tracks(1));
  EXPECT_FALSE(tracker.tracks(3));

  eth::Block b1;
  b1.timestamp = 10.0;
  b1.txs.push_back(f.make(1, 0, 100));
  chain.commit(std::move(b1));
  eth::Block b2;
  b2.timestamp = 20.0;
  b2.txs.push_back(f.make(2, 0, 50));
  b2.txs.push_back(f.make(3, 0, 999));  // untracked
  chain.commit(std::move(b2));

  EXPECT_EQ(tracker.included_txs(chain, 0.0, 30.0), 2u);
  EXPECT_EQ(tracker.included_txs(chain, 15.0, 30.0), 1u);
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, 30.0),
            eth::kTransferGas * 100 + eth::kTransferGas * 50);
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, 5.0), 0u);
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraffic) {
  auto run = [] {
    util::Rng rng(9);
    graph::Graph g = graph::erdos_renyi_gnm(12, 30, rng);
    ScenarioOptions opt;
    opt.seed = 9;
    opt.mempool_capacity = 128;
    opt.future_cap = 32;
    opt.background_txs = 96;
    Scenario sc(g, opt);
    sc.seed_background();
    const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1],
                                       sc.default_measure_config());
    return std::tuple{r.connected, sc.net().messages_delivered(), sc.net().bytes_sent(),
                      sc.sim().processed()};
  };
  EXPECT_EQ(run(), run()) << "same seed must reproduce the run bit-for-bit";
}

TEST(Bandwidth, BytesGrowWithTraffic) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ScenarioOptions opt;
  opt.seed = 10;
  opt.background_txs = 0;
  Scenario sc(g, opt);
  EXPECT_EQ(sc.net().bytes_sent(), 0u);
  const eth::Address a = sc.accounts().create_one();
  sc.m().send_to(sc.targets()[0], sc.factory().make(a, 0, 100));
  sc.sim().run_until(3.0);
  const uint64_t bytes = sc.net().bytes_sent();
  EXPECT_GT(bytes, 100u) << "one tx push + propagation";
  // Small simulated transactions frame to ~40-60 wire bytes; at least three
  // pushes happened (M->0, 0->1, 1->2 and echoes to M).
  EXPECT_GE(bytes, 3 * 40u);
  EXPECT_LE(bytes, 20'000u);
}

TEST(Scenario, ChurnMinerIsNotATarget) {
  util::Rng grng(11);
  graph::Graph g = graph::erdos_renyi_gnm(8, 16, grng);
  ScenarioOptions opt;
  opt.seed = 11;
  opt.background_txs = 64;
  opt.block_gas_limit = 10 * eth::kTransferGas;
  Scenario sc(g, opt);
  sc.seed_background();
  const auto miner = sc.start_churn(2.0);
  for (auto t : sc.targets()) EXPECT_NE(t, miner);
  sc.sim().run_until(60.0);
  EXPECT_GT(sc.chain().height(), 2u) << "blocks are being produced";
  EXPECT_GT(sc.net().peers_of(miner).size(), 0u) << "miner is wired into the overlay";
}

TEST(Scenario, OrganicTrafficFillsPools) {
  util::Rng grng(12);
  graph::Graph g = graph::erdos_renyi_gnm(6, 10, grng);
  ScenarioOptions opt;
  opt.seed = 12;
  opt.background_txs = 0;
  opt.mempool_capacity = 256;
  Scenario sc(g, opt);
  sc.start_organic_traffic(20.0);
  sc.sim().run_until(30.0);
  size_t total = 0;
  for (auto t : sc.targets()) total += sc.net().node(t).pool().size();
  EXPECT_GT(total, 6u * 100) << "~600 organic txs propagated to every pool";
  sc.stop_organic_traffic();
  sc.sim().run_until(sc.sim().now() + 5.0);  // drain in-flight propagation
  const size_t before = sc.net().messages_delivered();
  sc.sim().run_until(sc.sim().now() + 10.0);
  // Only maintenance remains; no new organic floods.
  EXPECT_EQ(sc.net().messages_delivered(), before);
}

TEST(Scenario, LinkChurnPreservesMeasurementLinks) {
  util::Rng grng(13);
  graph::Graph g = graph::erdos_renyi_gnm(10, 20, grng);
  ScenarioOptions opt;
  opt.seed = 13;
  opt.background_txs = 0;
  Scenario sc(g, opt);
  sc.net().start_link_churn(50.0);
  sc.sim().run_until(20.0);
  EXPECT_GT(sc.net().churn_events(), 100u);
  // M must still be connected to every regular node.
  for (auto t : sc.targets()) {
    EXPECT_TRUE(sc.net().linked(sc.m().id(), t)) << "churn severed a measurement link";
  }
}

}  // namespace
}  // namespace topo::core
