// Tests for modularity and Louvain community detection.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/louvain.h"
#include "graph/metrics.h"

namespace topo::graph {
namespace {

/// Two K5 cliques joined by one bridge edge — an unambiguous 2-community
/// graph.
Graph two_cliques() {
  Graph g(10);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) g.add_edge(u, v);
  }
  g.add_edge(4, 5);
  return g;
}

TEST(Modularity, SingleCommunityIsZero) {
  const auto g = two_cliques();
  std::vector<uint32_t> all_same(10, 0);
  EXPECT_NEAR(modularity(g, all_same), 0.0, 1e-12);
}

TEST(Modularity, PlantedPartitionScoresHigh) {
  const auto g = two_cliques();
  std::vector<uint32_t> planted(10, 0);
  for (NodeId u = 5; u < 10; ++u) planted[u] = 1;
  const double q = modularity(g, planted);
  EXPECT_GT(q, 0.4);
  // Random split scores much worse.
  std::vector<uint32_t> alternating(10);
  for (NodeId u = 0; u < 10; ++u) alternating[u] = u % 2;
  EXPECT_LT(modularity(g, alternating), q - 0.3);
}

TEST(Louvain, RecoversPlantedCommunities) {
  const auto g = two_cliques();
  util::Rng rng(1);
  const auto result = louvain(g, rng);
  EXPECT_EQ(result.count, 2u);
  // All of 0..4 together, all of 5..9 together.
  for (NodeId u = 1; u < 5; ++u) EXPECT_EQ(result.assignment[u], result.assignment[0]);
  for (NodeId u = 6; u < 10; ++u) EXPECT_EQ(result.assignment[u], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[5]);
  EXPECT_GT(result.modularity, 0.4);
}

TEST(Louvain, ModularityFieldMatchesRecomputation) {
  util::Rng grng(2);
  const auto g = erdos_renyi_gnm(60, 180, grng);
  util::Rng rng(3);
  const auto result = louvain(g, rng);
  EXPECT_NEAR(result.modularity, modularity(g, result.assignment), 1e-9);
}

TEST(Louvain, DeterministicPerSeed) {
  util::Rng grng(4);
  const auto g = erdos_renyi_gnm(80, 240, grng);
  util::Rng r1(7), r2(7);
  const auto a = louvain(g, r1);
  const auto b = louvain(g, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Louvain, EmptyAndTinyGraphs) {
  Graph empty;
  util::Rng rng(1);
  const auto r = louvain(empty, rng);
  EXPECT_EQ(r.count, 0u);

  Graph singleton(1);
  const auto r1 = louvain(singleton, rng);
  EXPECT_EQ(r1.count, 1u);
}

TEST(Louvain, CommunityStatsConsistency) {
  const auto g = two_cliques();
  std::vector<uint32_t> planted(10, 0);
  for (NodeId u = 5; u < 10; ++u) planted[u] = 1;
  const auto stats = community_stats(g, planted);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.nodes, 5u);
    EXPECT_EQ(s.intra_edges, 10u);  // K5
    EXPECT_EQ(s.inter_edges, 1u);   // the bridge
    EXPECT_DOUBLE_EQ(s.intra_density, 1.0);
    EXPECT_EQ(s.degree_one, 0u);
  }
  // Total intra edges + bridge = all edges.
  EXPECT_EQ(stats[0].intra_edges + stats[1].intra_edges + 1, g.num_edges());
}

TEST(Louvain, RandomGraphModularityModerate) {
  // ER graphs have no real community structure; Louvain still finds
  // partitions with modest positive modularity (paper Table 4 reports
  // ~0.16 for ER n=588 m=7496).
  util::Rng grng(5);
  const auto g = erdos_renyi_gnm(200, 2400, grng);
  util::Rng rng(6);
  const auto result = louvain(g, rng);
  EXPECT_GT(result.modularity, 0.05);
  EXPECT_LT(result.modularity, 0.5);
}

}  // namespace
}  // namespace topo::graph
