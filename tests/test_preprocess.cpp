// Tests for the pre-processing phase (§5.2.3, §6.2.1): future-forwarder
// detection, unresponsive-node detection, and flood-size discovery.

#include <gtest/gtest.h>

#include "core/toposhot.h"
#include "core/validator.h"
#include "p2p/node.h"

namespace topo::core {
namespace {

ScenarioOptions opt_with(uint64_t seed) {
  ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 128;
  opt.future_cap = 32;
  opt.background_txs = 96;
  return opt;
}

TEST(Preprocess, DetectsFutureForwarder) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  Scenario sc(g, opt_with(1));
  sc.seed_background();
  // Node 2 misbehaves: forwards future transactions.
  sc.net().node(sc.targets()[2]).mutable_config().forwards_future = true;

  const auto report = sc.preprocess(sc.default_measure_config());
  EXPECT_TRUE(report.future_forwarders.count(sc.targets()[2]));
  EXPECT_FALSE(report.future_forwarders.count(sc.targets()[0]));
  EXPECT_FALSE(report.future_forwarders.count(sc.targets()[1]));
}

TEST(Preprocess, DetectsUnresponsiveNode) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Scenario sc(g, opt_with(2));
  sc.seed_background();
  sc.net().node(sc.targets()[1]).set_unresponsive(true);

  const auto report = sc.preprocess(sc.default_measure_config());
  EXPECT_TRUE(report.unresponsive.count(sc.targets()[1]));
  EXPECT_FALSE(report.unresponsive.count(sc.targets()[0]));
  EXPECT_FALSE(report.unresponsive.count(sc.targets()[2]));
}

TEST(Preprocess, NonForwardingNodeIsFlaggedUnresponsive) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ScenarioOptions opt = opt_with(3);
  Scenario sc(g, opt);
  sc.seed_background();
  sc.net().node(sc.targets()[0]).mutable_config().forwards_transactions = false;

  const auto report = sc.preprocess(sc.default_measure_config());
  EXPECT_TRUE(report.unresponsive.count(sc.targets()[0]))
      << "a node that never forwards looks unresponsive to the probe";
}

TEST(Preprocess, FilterRemovesExcluded) {
  PreprocessReport report;
  report.future_forwarders.insert(2);
  report.unresponsive.insert(5);
  const auto kept = report.filter({1, 2, 3, 5, 8});
  EXPECT_EQ(kept, (std::vector<p2p::PeerId>{1, 3, 8}));
  EXPECT_TRUE(report.excluded(2));
  EXPECT_TRUE(report.excluded(5));
  EXPECT_FALSE(report.excluded(1));
}

TEST(Preprocess, FloodSizeProbeFindsCustomMempool) {
  // Target node 0 runs a double-size mempool; the default-Z measurement
  // misses, the escalated one succeeds.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  ScenarioOptions opt = opt_with(4);
  Scenario sc(g, opt);
  sc.seed_background();
  Preprocessor pre(sc.net(), sc.m(), sc.accounts(), sc.factory(),
                   sc.default_measure_config());
  const size_t z =
      pre.probe_flood_size(sc.targets()[0], sc.targets()[1], {8, 128, 256});
  EXPECT_EQ(z, 128u) << "Z=8 cannot evict txC from a 128-slot pool seeded with 96";
}


TEST(Preprocess, FloodOverridesRecoverCustomMempoolNodes) {
  // Node 0 runs a 2x mempool: the stock-Z schedule misses its links; a
  // pre-processing report carrying the discovered flood override fixes it.
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(0, 4);
  g.add_edge(1, 3);
  ScenarioOptions opt = opt_with(9);
  Scenario sc(g, opt);
  mempool::MempoolPolicy big = mempool::profile_for(mempool::ClientKind::kGeth).policy;
  big.capacity = 2 * opt.mempool_capacity;
  big.future_cap = opt.future_cap;
  sc.net().node(sc.targets()[0]).pool() = mempool::Mempool(big, &sc.chain());
  sc.seed_background();

  MeasureConfig cfg = sc.default_measure_config();
  const auto blind = sc.measure_network(2, cfg);
  EXPECT_FALSE(blind.measured.has_edge(0, 1)) << "stock flood cannot evict the 2x pool";

  PreprocessReport pre;
  pre.flood_override[sc.targets()[0]] = 2 * opt.mempool_capacity;
  const auto informed = sc.measure_network(2, cfg, &pre);
  EXPECT_TRUE(informed.measured.has_edge(0, 1));
  EXPECT_TRUE(informed.measured.has_edge(0, 4));
  const auto pr = compare_graphs(g, informed.measured);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
}

}  // namespace
}  // namespace topo::core
