// Integration: the full §6.2 pipeline — emerge each testnet recipe, run
// pre-processing + the parallel schedule under live churn, validate against
// ground truth, and persist/reload the report.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/report_io.h"
#include "core/toposhot.h"
#include "core/validator.h"
#include "disc/emergence.h"

namespace topo::core {
namespace {

struct Recipe {
  const char* name;
  disc::EmergenceConfig (*make)(size_t);
};

class TestnetPipeline : public ::testing::TestWithParam<Recipe> {};

TEST_P(TestnetPipeline, MeasuresWithPerfectPrecision) {
  const Recipe& recipe = GetParam();
  util::Rng rng(2024);
  auto cfg = recipe.make(28);
  for (auto& b : cfg.supernode_budgets) b = std::min<size_t>(b, 12);
  const graph::Graph truth = disc::emerge_topology(cfg, rng);
  ASSERT_GT(truth.num_edges(), 20u);

  ScenarioOptions opt;
  opt.seed = 2024;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  opt.block_gas_limit = 30 * eth::kTransferGas;
  Scenario sc(truth, opt);
  sc.seed_background();
  sc.start_churn(2.0);

  const auto pre = sc.preprocess(sc.default_measure_config());
  EXPECT_TRUE(pre.future_forwarders.empty());
  EXPECT_TRUE(pre.unresponsive.empty());

  MeasureConfig mcfg = sc.default_measure_config();
  mcfg.repetitions = 2;
  const auto report = sc.measure_network(3, mcfg);
  const auto pr = compare_graphs(truth, report.measured);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0) << recipe.name;
  EXPECT_GE(pr.recall(), 0.85) << recipe.name;
  EXPECT_EQ(report.pairs_tested, 28u * 27 / 2);

  // Persist and reload the campaign.
  const std::string path = std::string("/tmp/toposhot_") + recipe.name + "_report.json";
  ASSERT_TRUE(save_report(report, path));
  const auto loaded = load_report(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->measured.num_edges(), report.measured.num_edges());
  EXPECT_EQ(loaded->pairs_tested, report.pairs_tested);
}

INSTANTIATE_TEST_SUITE_P(Recipes, TestnetPipeline,
                         ::testing::Values(Recipe{"ropsten", disc::ropsten_like},
                                           Recipe{"rinkeby", disc::rinkeby_like},
                                           Recipe{"goerli", disc::goerli_like}),
                         [](const ::testing::TestParamInfo<Recipe>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace topo::core
