// Tests for the p2p layer: propagation semantics, announcement protocol,
// FIFO link ordering, mining integration, and the measurement node.

#include <gtest/gtest.h>

#include "eth/chain.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"
#include "p2p/node.h"

namespace topo::p2p {
namespace {

struct World {
  sim::Simulator sim;
  eth::Chain chain{8'000'000};
  util::Rng rng{11};
  Network net;
  eth::TxFactory factory;
  eth::AccountManager accounts;

  explicit World(sim::LatencyModel lat = sim::LatencyModel::fixed(0.05))
      : net(&sim, &chain, util::Rng(12), lat) {}

  NodeConfig default_config() {
    NodeConfig cfg;
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = 64;
    p.future_cap = 16;
    cfg.policy_override = p;
    return cfg;
  }

  eth::Transaction pending_tx(eth::Wei price = 100) {
    const eth::Address a = accounts.create_one();
    return factory.make(a, accounts.allocate_nonce(a), price);
  }
  eth::Transaction future_tx(eth::Wei price = 100) {
    const eth::Address a = accounts.create_one();
    return factory.make(a, accounts.future_nonce(a, 1), price);
  }
};

TEST(P2p, PendingTxFloodsLine) {
  World w;
  std::vector<PeerId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(w.net.add_node(w.default_config()));
  for (int i = 0; i + 1 < 5; ++i) w.net.connect(ids[i], ids[i + 1]);

  const auto tx = w.pending_tx();
  w.net.node(ids[0]).submit(tx);
  w.sim.run_until(5.0);
  for (PeerId id : ids) {
    EXPECT_TRUE(w.net.node(id).pool().contains(tx.hash())) << "node " << id;
  }
}

TEST(P2p, FutureTxIsNotPropagated) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  const auto tx = w.future_tx();
  w.net.node(a).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(a).pool().contains(tx.hash()));
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, MisconfiguredNodeForwardsFutures) {
  World w;
  NodeConfig cfg = w.default_config();
  cfg.forwards_future = true;
  const PeerId a = w.net.add_node(cfg);
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  const auto tx = w.future_tx();
  w.net.node(a).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, NonForwardingNodeBlocksPropagation) {
  World w;
  NodeConfig silent = w.default_config();
  silent.forwards_transactions = false;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId mid = w.net.add_node(silent);
  const PeerId c = w.net.add_node(w.default_config());
  w.net.connect(a, mid);
  w.net.connect(mid, c);
  const auto tx = w.pending_tx();
  w.net.node(a).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(mid).pool().contains(tx.hash())) << "still buffers";
  EXPECT_FALSE(w.net.node(c).pool().contains(tx.hash())) << "but never forwards";
}

TEST(P2p, UnresponsiveNodeDropsEverything) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  w.net.node(b).set_unresponsive(true);
  const auto tx = w.pending_tx();
  w.net.node(a).submit(tx);
  w.sim.run_until(5.0);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, PromotionAfterGapFillPropagates) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);

  const eth::Address acct = w.accounts.create_one();
  const auto tx1 = w.factory.make(acct, 1, 100);  // future (gap at 0)
  const auto tx0 = w.factory.make(acct, 0, 100);
  w.net.node(a).submit(tx1);
  w.sim.run_until(2.0);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx1.hash()));
  w.net.node(a).submit(tx0);  // fills the gap; both become pending
  w.sim.run_until(4.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx0.hash()));
  EXPECT_TRUE(w.net.node(b).pool().contains(tx1.hash())) << "promoted tx propagates";
}

TEST(P2p, FifoOrderingPerLink) {
  // With high-variance latency, messages on one directed link must still
  // arrive in send order (they share a TCP stream). A MeasurementNode logs
  // arrival times; the arrival sequence must match the send sequence.
  World w(sim::LatencyModel::lognormal(0.05, 1.5));
  const PeerId a = w.net.add_node(w.default_config());
  MeasurementNode m(&w.net, &w.chain);
  w.net.register_peer(&m);
  w.net.connect(a, m.id());

  std::vector<eth::TxHash> order;
  for (int i = 0; i < 200; ++i) {
    const auto tx = w.future_tx();
    order.push_back(tx.hash());
    w.net.send_tx(a, m.id(), tx);
  }
  w.sim.run_until(w.sim.now() + 120.0);
  double last = -1.0;
  for (const auto h : order) {
    const auto recs = m.receptions(h);
    ASSERT_EQ(recs.size(), 1u);
    ASSERT_GE(recs[0].second, last) << "reordered delivery on one link";
    last = recs[0].second;
  }
}

TEST(P2p, AnnouncementsDeliverBodiesOnRequest) {
  World w;
  NodeConfig cfg = w.default_config();
  cfg.use_announcements = true;
  std::vector<PeerId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(w.net.add_node(cfg));
  for (int i = 0; i + 1 < 6; ++i) w.net.connect(ids[i], ids[i + 1]);
  const auto tx = w.pending_tx();
  w.net.node(ids[0]).submit(tx);
  w.sim.run_until(20.0);
  for (PeerId id : ids) {
    EXPECT_TRUE(w.net.node(id).pool().contains(tx.hash())) << "node " << id;
  }
}

TEST(P2p, AnnounceBlockWindowSuppressesRerequests) {
  World w;
  NodeConfig cfg = w.default_config();
  const PeerId a = w.net.add_node(cfg);
  const PeerId b = w.net.add_node(cfg);
  const PeerId c = w.net.add_node(cfg);
  w.net.connect(a, b);
  w.net.connect(c, b);

  // Two announcements for the same (never-delivered) hash from different
  // peers within 5 s: only the first may be answered with a GetTx.
  const eth::TxHash fake = 0xdeadbeef;
  const uint64_t before = w.net.messages_delivered();
  w.net.send_announce(a, b, fake);
  w.sim.run_until(1.0);
  w.net.send_announce(c, b, fake);
  w.sim.run_until(4.0);
  // Messages: 2 announces + exactly 1 get_tx (the second was blocked).
  EXPECT_EQ(w.net.messages_delivered() - before, 3u);
  // After the 5 s window expires, a new announcement is honored again.
  w.sim.run_until(7.0);
  w.net.send_announce(c, b, fake);
  w.sim.run_until(9.0);
  EXPECT_EQ(w.net.messages_delivered() - before, 5u);
}

TEST(P2p, MiningRemovesIncludedTransactions) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  const auto tx = w.pending_tx(1000);
  w.net.node(a).submit(tx);
  w.sim.run_until(2.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()));
  w.net.mine_block(a);
  w.sim.run_until(4.0);
  EXPECT_TRUE(w.chain.includes(tx.hash()));
  EXPECT_FALSE(w.net.node(a).pool().contains(tx.hash()));
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, StartMiningProducesPeriodicBlocks) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  for (int i = 0; i < 5; ++i) w.net.node(a).submit(w.pending_tx(100 + i));
  w.net.start_mining({a}, 2.0);
  w.sim.run_until(7.0);
  w.net.stop_mining();
  EXPECT_EQ(w.chain.height(), 3u);
  EXPECT_EQ(w.chain.blocks()[0].txs.size(), 5u);
}

TEST(P2p, SeedMempoolsSkipsExceptions) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  const auto tx = w.pending_tx();
  w.net.seed_mempools({tx}, {b});
  EXPECT_TRUE(w.net.node(a).pool().contains(tx.hash()));
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, SnapshotTopologyMatchesConnections) {
  World w;
  std::vector<PeerId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(w.net.add_node(w.default_config()));
  w.net.connect(ids[0], ids[1]);
  w.net.connect(ids[2], ids[3]);
  // A measurement peer must not appear in the topology.
  MeasurementNode m(&w.net, &w.chain);
  w.net.register_peer(&m);
  m.connect_to_all();

  const auto g = w.net.snapshot_topology();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(P2p, MeasurementNodeLogsSenderAndTime) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  MeasurementNode m(&w.net, &w.chain);
  w.net.register_peer(&m);
  m.connect_to_all();

  const auto tx = w.pending_tx();
  m.send_to(a, tx);
  w.sim.run_until(5.0);
  // A never echoes back to the peer that sent it the tx (M), but B, which
  // learned it from A, forwards it to M.
  EXPECT_FALSE(m.received_from(tx.hash(), a));
  EXPECT_TRUE(m.received_from(tx.hash(), b)) << "B forwards the propagated tx";
  EXPECT_FALSE(m.received_from_since(tx.hash(), b, 100.0));
  EXPECT_GE(m.receptions(tx.hash()).size(), 1u);
  m.clear_log();
  EXPECT_FALSE(m.received_from(tx.hash(), b));
}

TEST(P2p, MeasurementNodePacingSerializesSends) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  MeasurementNode m(&w.net, &w.chain, /*send_spacing=*/0.01);
  w.net.register_peer(&m);
  w.net.connect(m.id(), a);

  std::vector<eth::Transaction> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(w.future_tx());
  const double done = m.send_batch_to(a, batch);
  EXPECT_NEAR(done, w.sim.now() + 0.1, 1e-9);
  EXPECT_EQ(m.txs_sent(), 10u);
}

TEST(P2p, ClientVersionStringsDiffer) {
  World w;
  NodeConfig geth = w.default_config();
  NodeConfig parity = w.default_config();
  parity.client = mempool::ClientKind::kParity;
  const PeerId a = w.net.add_node(geth);
  const PeerId b = w.net.add_node(parity);
  EXPECT_NE(w.net.node(a).client_version(), w.net.node(b).client_version());
  EXPECT_NE(w.net.node(a).client_version().find("Geth"), std::string::npos);
}


TEST(P2p, AnnouncementFetcherFailsOverToSecondAnnouncer) {
  // Peer A announces a hash but never serves the body (unresponsive after
  // the announce); peer C also announced it. After the blocking window, B
  // must re-request from C and obtain the transaction.
  World w;
  NodeConfig cfg = w.default_config();
  const PeerId a = w.net.add_node(cfg);
  const PeerId b = w.net.add_node(cfg);
  const PeerId c = w.net.add_node(cfg);
  w.net.connect(a, b);
  w.net.connect(c, b);

  const auto tx = w.pending_tx();
  // C holds the body; A does not (it will fail the GetTx silently).
  w.net.node(c).pool().add(tx, 0.0);

  w.net.send_announce(a, b, tx.hash());
  w.sim.run_until(1.0);
  w.net.send_announce(c, b, tx.hash());  // inside A's blocking window
  w.sim.run_until(2.0);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()))
      << "A cannot serve the body; B is still waiting";
  // After the 5 s window, the fetcher fails over to C.
  w.sim.run_until(12.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()));
}

TEST(P2p, AnnounceFetcherStateFreedWhenBodyArrives) {
  // Regression: fetcher bookkeeping (block windows + fail-over sources)
  // must be erased once the body lands, or every announced hash leaks two
  // map entries for the life of the node.
  World w;
  NodeConfig cfg = w.default_config();
  cfg.use_announcements = true;
  std::vector<PeerId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(w.net.add_node(cfg));
  for (int i = 0; i + 1 < 6; ++i) w.net.connect(ids[i], ids[i + 1]);

  for (int round = 0; round < 8; ++round) {
    const auto tx = w.pending_tx();
    w.net.node(ids[0]).submit(tx);
    w.sim.run_until(w.sim.now() + 20.0);
    for (PeerId id : ids) {
      ASSERT_TRUE(w.net.node(id).pool().contains(tx.hash()));
    }
  }
  for (PeerId id : ids) {
    EXPECT_EQ(w.net.node(id).announce_fetcher_entries(), 0u) << "node " << id;
  }
}

TEST(P2p, AnnounceFetcherStateFreedWhenAnnouncersExhausted) {
  // Regression: a hash that no announcer can ever serve must not pin
  // fetcher state once the retry chain runs out of sources.
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  const PeerId c = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  w.net.connect(c, b);

  for (int i = 0; i < 4; ++i) {
    const eth::TxHash fake = 0xabc000 + static_cast<eth::TxHash>(i);
    w.net.send_announce(a, b, fake);
    w.net.send_announce(c, b, fake);
  }
  w.sim.run_until(60.0);  // every retry window expires, no body ever arrives
  EXPECT_EQ(w.net.node(b).announce_fetcher_entries(), 0u);
}

TEST(P2p, AnnounceFetcherSkipsRequestOnceBodyIsKnown) {
  // A body that arrives by direct push while an announcement window is
  // pending must cancel the queued re-request (no stale GetTx) and free
  // the state.
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);

  const auto tx = w.pending_tx();
  w.net.send_announce(a, b, tx.hash());
  w.sim.run_until(1.0);
  w.net.send_tx(a, b, tx);  // direct push bypasses the block window
  w.sim.run_until(10.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()));
  EXPECT_EQ(w.net.node(b).announce_fetcher_entries(), 0u);
}

TEST(P2p, RestartWipesPoolAndFetcherState) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  w.net.connect(a, b);
  const auto tx = w.pending_tx();
  w.net.node(a).submit(tx);
  w.sim.run_until(2.0);
  ASSERT_TRUE(w.net.node(b).pool().contains(tx.hash()));

  w.net.node(b).restart();
  EXPECT_EQ(w.net.node(b).pool().size(), 0u);
  EXPECT_EQ(w.net.node(b).announce_fetcher_entries(), 0u);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()));

  // The restarted node still participates: a new pending tx reaches it.
  const auto tx2 = w.pending_tx();
  w.net.node(a).submit(tx2);
  w.sim.run_until(w.sim.now() + 2.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx2.hash()));
}

}  // namespace
}  // namespace topo::p2p
