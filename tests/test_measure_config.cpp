// Unit tests for the measurement configuration: the §5.2 price ladder, the
// isolation inequalities it must satisfy for every client bump, and flood
// sharding into per-account future batches.

#include <gtest/gtest.h>

#include "core/config.h"
#include "mempool/client_profile.h"

namespace topo::core {
namespace {

TEST(MeasureConfig, PriceLadderAtGethBump) {
  MeasureConfig cfg;
  cfg.price_Y = eth::gwei(0.1);  // the Fig. 2 example
  cfg.bump_bp = 1000;            // R = 10%
  EXPECT_EQ(cfg.price_txC(), eth::gwei(0.1));
  EXPECT_EQ(cfg.price_future(), eth::gwei(0.11));
  EXPECT_EQ(cfg.price_txA(), eth::gwei(0.105));
  EXPECT_EQ(cfg.price_txB(), eth::gwei(0.095));
}

class LadderInvariants : public ::testing::TestWithParam<mempool::ClientKind> {};

TEST_P(LadderInvariants, IsolationInequalitiesHold) {
  const auto& policy = mempool::profile_for(GetParam()).policy;
  if (policy.replace_bump_bp == 0) GTEST_SKIP() << "zero-bump clients are unmeasurable";

  MeasureConfig cfg;
  cfg.bump_bp = policy.replace_bump_bp;
  // Below min_viable_Y the integer ladder collapses — assert that the
  // degenerate case is what the guard protects against.
  cfg.price_Y = 1;
  EXPECT_TRUE(policy.accepts_replacement(cfg.price_txC(), cfg.price_txA()))
      << "1-wei Y must indeed be degenerate (why min_viable_Y exists)";

  for (const eth::Wei y : {eth::gwei(0.1), eth::gwei(1.0), eth::gwei(37.123),
                           cfg.min_viable_Y(), eth::Wei{999'999'999'999ULL}}) {
    cfg.price_Y = y;
    // 1. txA must replace txB on the sink.
    EXPECT_TRUE(policy.accepts_replacement(cfg.price_txB(), cfg.price_txA()))
        << "Y=" << y << ": txA cannot take txB's slot";
    // 2. txA must NOT replace txC anywhere else (isolation).
    EXPECT_FALSE(policy.accepts_replacement(cfg.price_txC(), cfg.price_txA()))
        << "Y=" << y << ": txA would leak through txC";
    // 3. txC must not displace txB once planted.
    EXPECT_FALSE(policy.accepts_replacement(cfg.price_txB(), cfg.price_txC()))
        << "Y=" << y << ": re-propagated txC would kill txB";
    // 4. The flood futures must price above txA (so txA never evicts them
    //    spuriously) and satisfy the full bump over txC.
    EXPECT_GE(cfg.price_future(), cfg.price_txA());
    EXPECT_TRUE(policy.accepts_replacement(cfg.price_txC(), cfg.price_future()));
    // 5. Strict ordering of the whole ladder.
    EXPECT_LT(cfg.price_txB(), cfg.price_txC());
    EXPECT_LT(cfg.price_txC(), cfg.price_txA());
    EXPECT_LE(cfg.price_txA(), cfg.price_future());
  }
}

INSTANTIATE_TEST_SUITE_P(Clients, LadderInvariants, ::testing::ValuesIn(mempool::kAllClients),
                         [](const ::testing::TestParamInfo<mempool::ClientKind>& info) {
                           return mempool::client_name(info.param);
                         });

TEST(MeasureConfig, FloodAccountSharding) {
  MeasureConfig cfg;
  cfg.flood_Z = 5120;
  cfg.futures_per_account_U = 4096;
  EXPECT_EQ(cfg.flood_accounts(), 2u);
  cfg.futures_per_account_U = 1;  // the Fig. 2 configuration
  EXPECT_EQ(cfg.flood_accounts(), 5120u);
  cfg.futures_per_account_U = 81;  // Parity
  EXPECT_EQ(cfg.flood_accounts(), (5120 + 80) / 81);
  cfg.futures_per_account_U = 0;  // degenerate: one per account
  EXPECT_EQ(cfg.flood_accounts(), 5120u);
}

TEST(MeasureConfig, FloodPlanNeverEmpty) {
  MeasureConfig cfg;
  cfg.flood_Z = 5120;

  cfg.futures_per_account_U = 4096;
  auto p = cfg.flood_plan(cfg.flood_Z);
  EXPECT_EQ(p.accounts, 2u);
  EXPECT_EQ(p.per_account, 4096u);
  EXPECT_TRUE(p.covers(cfg.flood_Z));

  // U == 0 ("unlimited") is the silent-empty-flood regression: the plan
  // must degrade to one future per account, never to zero futures total.
  cfg.futures_per_account_U = 0;
  p = cfg.flood_plan(cfg.flood_Z);
  EXPECT_EQ(p.per_account, 1u);
  EXPECT_EQ(p.accounts, 5120u);
  EXPECT_TRUE(p.covers(cfg.flood_Z));

  // Partial floods (z < Z) inherit the same guarantee.
  p = cfg.flood_plan(7);
  EXPECT_EQ(p.accounts, 7u);
  EXPECT_TRUE(p.covers(7));

  MeasureConfig::FloodPlan empty;
  EXPECT_FALSE(empty.covers(1)) << "a zero-wide plan covers nothing";
}

TEST(MeasureConfig, BuilderAcceptsUnlimitedFutures) {
  // U = 0 used to produce an empty flood; the Builder must now accept it
  // (the plan substitutes one-per-account) rather than let it through as a
  // config that silently measures nothing.
  const MeasureConfig cfg =
      MeasureConfig::Builder().futures_per_account_U(0).flood_Z(256).build();
  EXPECT_TRUE(cfg.flood_plan(cfg.flood_Z).covers(cfg.flood_Z));
}

TEST(MeasureConfig, CraftTxRespectsFeeMode) {
  eth::TxFactory f;
  MeasureConfig cfg;
  cfg.price_Y = eth::gwei(1.0);
  auto legacy = craft_tx(f, cfg, 7, 0, cfg.price_txA());
  EXPECT_FALSE(legacy.fee1559.has_value());
  EXPECT_EQ(legacy.gas_price, cfg.price_txA());

  cfg.eip1559 = true;
  auto typed = craft_tx(f, cfg, 7, 0, cfg.price_txA());
  ASSERT_TRUE(typed.fee1559.has_value());
  EXPECT_EQ(typed.fee1559->max_fee, cfg.price_txA());
  EXPECT_EQ(typed.pool_price(), cfg.price_txA()) << "pool compares max fees";
}

}  // namespace
}  // namespace topo::core
