// Tests for the topology-monitoring daemon (topo::monitor): the versioned
// LinkTable and its snapshot/diff/status documents, the strict JSON codecs,
// the epoch loop's incremental re-measurement, the detection scorecard, and
// the MonitorRpcServer read API (including JSON-RPC 2.0 batch framing).
//
// The acceptance-bar test at the bottom pins the ISSUE contract: a scripted
// monitord run detects >= 90% of injected link changes within 2 epochs
// while re-probing < 20% of pairs per epoch.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/schedule.h"
#include "core/toposhot.h"
#include "graph/generators.h"
#include "monitor/monitor.h"
#include "rpc/monitor_rpc.h"
#include "util/rng.h"

namespace topo::monitor {
namespace {

using P = std::pair<size_t, size_t>;

// -- LinkTable --------------------------------------------------------------

TEST(LinkTable, FirstVerdictIsNotAFlipLaterChangesAre) {
  LinkTable t(4);
  EXPECT_EQ(t.pairs_total(), 6u);
  EXPECT_EQ(t.tracked(), 0u);
  EXPECT_EQ(t.find(0, 1), nullptr);

  EXPECT_FALSE(t.record(0, 1, core::Verdict::kConnected, 0));
  ASSERT_NE(t.find(0, 1), nullptr);
  EXPECT_EQ(t.find(0, 1)->verdict, core::Verdict::kConnected);
  EXPECT_EQ(t.find(0, 1)->measured_epoch, 0u);
  EXPECT_EQ(t.find(0, 1)->changed_epoch, 0u);

  // Re-confirming the same verdict is not a flip; a different one is.
  EXPECT_FALSE(t.record(0, 1, core::Verdict::kConnected, 1));
  EXPECT_EQ(t.find(0, 1)->changed_epoch, 0u);
  EXPECT_TRUE(t.record(0, 1, core::Verdict::kNegative, 2));
  EXPECT_EQ(t.find(0, 1)->measured_epoch, 2u);
  EXPECT_EQ(t.find(0, 1)->changed_epoch, 2u);
  EXPECT_EQ(t.tracked(), 1u);
}

TEST(LinkTable, ConfidenceDecaysWithHalfLife) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 4, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 8, 4.0), 0.25);
  // half_life <= 0 disables decay entirely.
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 100, 0.0), 1.0);
  // Never-measured pairs carry no confidence.
  EXPECT_DOUBLE_EQ(t.confidence(2, 3, 5, 4.0), 0.0);
}

TEST(LinkTable, HintsZeroConfidenceAndClearOnRecord) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  EXPECT_EQ(t.hint_node(0), 1u) << "only the tracked pair gains the flag";
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 0, 4.0), 0.0);
  // Re-measuring clears the hint and restores full confidence.
  t.record(0, 1, core::Verdict::kConnected, 1);
  EXPECT_DOUBLE_EQ(t.confidence(0, 1, 1, 4.0), 1.0);
}

TEST(LinkTable, PriorityPutsBothEndpointHintsFirst) {
  LinkTable t(4);
  // All three pairs measured at epoch 0 with equal confidence...
  t.record(0, 1, core::Verdict::kConnected, 0);
  t.record(0, 2, core::Verdict::kConnected, 0);
  t.record(1, 2, core::Verdict::kNegative, 0);
  // ...then nodes 0 and 1 churn: (0,1) is hinted by both endpoints, (0,2)
  // and (1,2) by one each.
  t.hint_node(0);
  t.hint_node(1);
  const auto pri = t.prioritized_pairs(1, 4.0);
  ASSERT_GE(pri.size(), 3u);
  EXPECT_EQ(pri[0], P(0, 1))
      << "a changed link always churns both endpoints, so double-hinted "
         "pairs lead the re-measurement order";
  // Single-hinted pairs come next, before every unhinted candidate.
  EXPECT_EQ(pri[1], P(0, 2));
  EXPECT_EQ(pri[2], P(1, 2));
}

TEST(LinkTable, HintedCountsByStrength) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  t.record(0, 2, core::Verdict::kConnected, 0);
  t.record(1, 2, core::Verdict::kNegative, 0);
  EXPECT_EQ(t.hinted(), 0u);
  t.hint_node(0);
  t.hint_node(1);
  EXPECT_EQ(t.hinted(), 3u) << "every tracked pair touching node 0 or 1";
  EXPECT_EQ(t.hinted(2), 1u) << "only (0,1) was hinted by both endpoints";
  // Re-measuring clears the hint, at any strength.
  t.record(0, 1, core::Verdict::kConnected, 1);
  EXPECT_EQ(t.hinted(2), 0u);
  EXPECT_EQ(t.hinted(), 2u);
}

TEST(LinkTable, PriorityOrdersByStalenessThenIdentity) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 3);  // freshest
  t.record(0, 2, core::Verdict::kConnected, 1);  // stalest measured
  t.record(1, 2, core::Verdict::kConnected, 2);
  const auto pri = t.prioritized_pairs(4, 4.0);
  ASSERT_EQ(pri.size(), t.pairs_total());
  // Never-measured pairs (confidence 0) lead, in canonical order.
  EXPECT_EQ(pri[0], P(0, 3));
  EXPECT_EQ(pri[1], P(1, 3));
  EXPECT_EQ(pri[2], P(2, 3));
  // Then measured pairs, least-confident (stalest) first.
  EXPECT_EQ(pri[3], P(0, 2));
  EXPECT_EQ(pri[4], P(1, 2));
  EXPECT_EQ(pri[5], P(0, 1));
}

TEST(LinkTable, SnapshotIsSortedAndCarriesDecayedConfidence) {
  LinkTable t(5);
  t.record(2, 3, core::Verdict::kNegative, 0);
  t.record(0, 4, core::Verdict::kConnected, 2);
  t.record(0, 1, core::Verdict::kConnected, 2);
  const TopologySnapshot s = t.snapshot(2, 2.0, 3, 0);
  EXPECT_EQ(s.version, 2u);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.pairs_total, 10u);
  EXPECT_EQ(s.pairs_measured, 3u);
  ASSERT_EQ(s.links.size(), 3u);
  EXPECT_EQ(s.links[0].u, 0u);
  EXPECT_EQ(s.links[0].v, 1u);
  EXPECT_EQ(s.links[1].u, 0u);
  EXPECT_EQ(s.links[1].v, 4u);
  EXPECT_EQ(s.links[2].u, 2u);
  EXPECT_EQ(s.links[2].v, 3u);
  EXPECT_DOUBLE_EQ(s.links[0].confidence, 1.0);
  EXPECT_DOUBLE_EQ(s.links[2].confidence, 0.5) << "age 2 at half-life 2";
  EXPECT_EQ(s.connected_count(), 2u);
  EXPECT_EQ(s.inconclusive_count(), 0u);
  ASSERT_NE(s.find(2, 3), nullptr);
  EXPECT_EQ(s.find(2, 3)->verdict, core::Verdict::kNegative);
  EXPECT_EQ(s.find(1, 2), nullptr);
}

// -- diff / status ----------------------------------------------------------

TopologySnapshot snap_of(LinkTable& t, uint64_t epoch) {
  return t.snapshot(epoch, 4.0, 0, 0);
}

TEST(TopologyDiffTest, TracksConnectedSetAndEveryVerdictTransition) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  t.record(0, 2, core::Verdict::kNegative, 0);
  const TopologySnapshot a = snap_of(t, 0);

  t.record(0, 1, core::Verdict::kNegative, 1);      // removed
  t.record(0, 2, core::Verdict::kConnected, 1);     // added
  t.record(1, 2, core::Verdict::kConnected, 1);     // newly measured -> added
  t.record(1, 3, core::Verdict::kInconclusive, 1);  // new, not a link change
  const TopologySnapshot b = snap_of(t, 1);

  const TopologyDiff d = compute_diff(a, b);
  EXPECT_EQ(d.from, 0u);
  EXPECT_EQ(d.to, 1u);
  ASSERT_EQ(d.added.size(), 2u);
  EXPECT_EQ(d.added[0], P(0, 2));
  EXPECT_EQ(d.added[1], P(1, 2));
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], P(0, 1));
  // `changed` carries every verdict transition — but a pair arriving as
  // inconclusive is no transition at all, since absent pairs already count
  // as inconclusive: (0,1), (0,2), (1,2) only.
  EXPECT_EQ(d.changed.size(), 3u);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(compute_diff(b, b).empty());
}

TEST(TopologyDiffTest, AbsentPairsCountAsInconclusive) {
  LinkTable t(3);
  const TopologySnapshot empty = snap_of(t, 0);
  t.record(0, 1, core::Verdict::kInconclusive, 1);
  const TopologySnapshot one = snap_of(t, 1);
  // inconclusive -> inconclusive is not a transition even though the pair
  // only exists on one side.
  EXPECT_TRUE(compute_diff(empty, one).empty());
  EXPECT_TRUE(compute_diff(one, empty).empty());
}

TEST(MonitorStatusTest, IsAPureFunctionOfTheLatestSnapshot) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  t.record(0, 2, core::Verdict::kNegative, 0);
  t.record(1, 2, core::Verdict::kInconclusive, 0);
  const TopologySnapshot s = t.snapshot(4, 4.0, 7, 2);
  const MonitorStatus st = make_status(s, 5);
  EXPECT_EQ(st.epoch, 4u);
  EXPECT_EQ(st.version, 4u);
  EXPECT_EQ(st.versions, 5u);
  EXPECT_EQ(st.pairs_tracked, 3u);
  EXPECT_EQ(st.links_connected, 1u);
  EXPECT_EQ(st.links_inconclusive, 1u);
  EXPECT_DOUBLE_EQ(st.coverage, 0.5);
  EXPECT_EQ(st.pairs_measured, 7u);
  EXPECT_EQ(st.changes_observed, 2u);
  // Age 4 at half-life 4 -> confidence 0.5, which lands in bin 5 (the
  // half-open [0.5, 0.6) bucket); confidence 1.0 lands in the closed last
  // bin.
  uint64_t total = 0;
  for (uint64_t c : st.confidence_histogram) total += c;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(st.confidence_histogram[5], 3u);
}

// -- JSON codecs ------------------------------------------------------------

TEST(MonitorJson, VerdictNamesRoundTrip) {
  for (core::Verdict v : {core::Verdict::kConnected, core::Verdict::kNegative,
                          core::Verdict::kInconclusive}) {
    core::Verdict back = core::Verdict::kConnected;
    ASSERT_TRUE(verdict_from_name(verdict_name(v), back));
    EXPECT_EQ(back, v);
  }
  core::Verdict unused;
  EXPECT_FALSE(verdict_from_name("bogus", unused));
}

TEST(MonitorJson, SnapshotRoundTripsExactly) {
  LinkTable t(5);
  t.record(0, 1, core::Verdict::kConnected, 0);
  t.record(1, 4, core::Verdict::kNegative, 2);
  t.record(2, 3, core::Verdict::kInconclusive, 3);
  const TopologySnapshot s = t.snapshot(3, 4.0, 11, 1);
  const rpc::Json j = snapshot_to_json(s);
  EXPECT_EQ(j["schema"].as_string(), kSnapshotSchema);
  EXPECT_EQ(snapshot_from_json(j), s);
  // Serialized bytes reparse to the same document (the %.17g double path).
  const auto reparsed = rpc::Json::parse(j.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(snapshot_from_json(*reparsed), s);
}

TEST(MonitorJson, DiffAndStatusRoundTripExactly) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  const TopologySnapshot a = snap_of(t, 0);
  t.record(0, 1, core::Verdict::kNegative, 1);
  t.record(2, 3, core::Verdict::kConnected, 1);
  const TopologySnapshot b = snap_of(t, 1);

  const TopologyDiff d = compute_diff(a, b);
  EXPECT_EQ(diff_from_json(diff_to_json(d)), d);

  const MonitorStatus st = make_status(b, 2);
  EXPECT_EQ(status_from_json(status_to_json(st)), st);
}

TEST(MonitorJson, FromJsonIsStrict) {
  LinkTable t(3);
  t.record(0, 1, core::Verdict::kConnected, 0);
  const rpc::Json good = snapshot_to_json(snap_of(t, 0));

  {  // wrong schema string
    rpc::Json j = good;
    j.as_object()["schema"] = rpc::Json("toposhot-snapshot-v999");
    EXPECT_THROW(snapshot_from_json(j), std::runtime_error);
  }
  {  // missing field
    rpc::Json j = good;
    j.as_object().erase("version");
    EXPECT_THROW(snapshot_from_json(j), std::runtime_error);
  }
  {  // wrong type
    rpc::Json j = good;
    j.as_object()["nodes"] = rpc::Json("three");
    EXPECT_THROW(snapshot_from_json(j), std::runtime_error);
  }
  {  // unknown verdict name
    rpc::Json j = good;
    j.as_object()["links"].as_array()[0].as_object()["verdict"] = rpc::Json("perhaps");
    EXPECT_THROW(snapshot_from_json(j), std::runtime_error);
  }
  EXPECT_THROW(diff_from_json(good), std::runtime_error) << "schema mismatch";
  EXPECT_THROW(status_from_json(good), std::runtime_error) << "schema mismatch";
}

TEST(MonitorJson, StatusV2CarriesRingPressure) {
  LinkTable t(4);
  t.record(0, 1, core::Verdict::kConnected, 0);
  MonitorStatus st = make_status(snap_of(t, 0), 1);
  EXPECT_EQ(st.trace_total_pushed, 0u) << "make_status alone leaves them zero";
  st.trace_total_pushed = 7;
  st.trace_dropped = 3;
  st.log_dropped = 1;
  const rpc::Json j = status_to_json(st);
  EXPECT_EQ(j["schema"].as_string(), std::string("toposhot-status-v2"));
  EXPECT_DOUBLE_EQ(j["trace_dropped"].as_number(), 3.0);
  EXPECT_EQ(status_from_json(j), st);
}

// -- EpochStats ring / health watchdog --------------------------------------

EpochStats healthy_epoch(uint64_t epoch, double sim_seconds = 10.0) {
  EpochStats s;
  s.epoch = epoch;
  s.sim_seconds = sim_seconds;
  s.events_drained = 1000;
  s.pairs_selected = 16;
  s.pairs_reprobed = 12;
  s.budget_utilization = 0.25;
  s.mean_confidence = 0.8;
  return s;
}

TEST(HealthWatchdog, EmptyRingIsStalled) {
  const HealthReport r = classify_health({}, HealthThresholds{});
  EXPECT_EQ(r.state, HealthState::kStalled);
  EXPECT_EQ(r.reason, "no epochs published");
  EXPECT_TRUE(r.epochs.empty());
}

TEST(HealthWatchdog, ZeroProgressIsStalled) {
  {
    EpochStats idle = healthy_epoch(3);
    idle.pairs_selected = 0;
    const HealthReport r =
        classify_health({healthy_epoch(2), idle}, HealthThresholds{});
    EXPECT_EQ(r.state, HealthState::kStalled);
    EXPECT_NE(r.reason.find("epoch 3 made no progress"), std::string::npos);
  }
  {
    EpochStats dead = healthy_epoch(3);
    dead.events_drained = 0;
    EXPECT_EQ(classify_health({dead}, HealthThresholds{}).state,
              HealthState::kStalled);
  }
  // Only the *latest* epoch counts: an old stall already recovered from is
  // history, not state.
  EpochStats old_stall = healthy_epoch(1);
  old_stall.pairs_selected = 0;
  EXPECT_EQ(classify_health({old_stall, healthy_epoch(2)}, HealthThresholds{}).state,
            HealthState::kOk);
}

TEST(HealthWatchdog, AbsoluteSlowEpochCap) {
  HealthThresholds t;
  t.slow_epoch_seconds = 10.0;
  const HealthReport slow = classify_health({healthy_epoch(0, 11.0)}, t);
  EXPECT_EQ(slow.state, HealthState::kDegradedSlowEpoch);
  EXPECT_NE(slow.reason.find("over the absolute cap of 10"), std::string::npos);
  EXPECT_EQ(classify_health({healthy_epoch(0, 10.0)}, t).state, HealthState::kOk)
      << "the cap is exclusive";
  // <= 0 disables the rule entirely.
  t.slow_epoch_seconds = 0.0;
  EXPECT_EQ(classify_health({healthy_epoch(0, 1e9)}, t).state, HealthState::kOk);
}

TEST(HealthWatchdog, FactorOverMedianNeedsHistory) {
  HealthThresholds t;  // factor 3.0, min_history 3
  std::vector<EpochStats> ring = {healthy_epoch(0, 10.0), healthy_epoch(1, 12.0),
                                  healthy_epoch(2, 8.0), healthy_epoch(3, 35.0)};
  // Median of {10, 12, 8} is 10; 35 > 3 * 10.
  const HealthReport r = classify_health(ring, t);
  EXPECT_EQ(r.state, HealthState::kDegradedSlowEpoch);
  EXPECT_NE(r.reason.find("over 3x the prior median of 10"), std::string::npos);
  // At exactly the factor it does not fire (strictly-over rule)...
  ring.back().sim_seconds = 30.0;
  EXPECT_EQ(classify_health(ring, t).state, HealthState::kOk);
  // ...and with too little history the rule stays silent no matter what.
  EXPECT_EQ(classify_health({healthy_epoch(0, 1.0), healthy_epoch(1, 1.0),
                             healthy_epoch(2, 1000.0)},
                            t)
                .state,
            HealthState::kOk)
      << "ring size must exceed slow_epoch_min_history";
}

TEST(HealthWatchdog, SaturationNeedsConsecutiveEpochs) {
  HealthThresholds t;  // saturation_utilization 1.0, saturation_epochs 2
  EpochStats sat2 = healthy_epoch(2);
  sat2.budget_utilization = 1.0;
  EpochStats sat3 = healthy_epoch(3);
  sat3.budget_utilization = 2.5;
  const HealthReport r = classify_health({healthy_epoch(1), sat2, sat3}, t);
  EXPECT_EQ(r.state, HealthState::kDegradedBudgetSaturated);
  EXPECT_NE(r.reason.find("latest utilization 2.5"), std::string::npos);
  // A single saturated epoch is a spike, not a state.
  EXPECT_EQ(classify_health({healthy_epoch(1), healthy_epoch(2), sat3}, t).state,
            HealthState::kOk);
}

// stalled > slow > saturated: the most actionable verdict wins.
TEST(HealthWatchdog, StalledOutranksSlowOutranksSaturated) {
  HealthThresholds t;
  t.slow_epoch_seconds = 5.0;
  EpochStats worst = healthy_epoch(1, 100.0);
  worst.budget_utilization = 3.0;
  EpochStats prior = healthy_epoch(0);
  prior.budget_utilization = 3.0;
  {
    EpochStats stalled = worst;
    stalled.events_drained = 0;
    EXPECT_EQ(classify_health({prior, stalled}, t).state, HealthState::kStalled);
  }
  EXPECT_EQ(classify_health({prior, worst}, t).state,
            HealthState::kDegradedSlowEpoch);
  EpochStats merely_saturated = worst;
  merely_saturated.sim_seconds = 1.0;
  EXPECT_EQ(classify_health({prior, merely_saturated}, t).state,
            HealthState::kDegradedBudgetSaturated);
}

TEST(HealthWatchdog, EqualInputsYieldEqualReports) {
  const std::vector<EpochStats> ring = {healthy_epoch(0), healthy_epoch(1, 42.5)};
  const HealthThresholds t;
  const HealthReport a = classify_health(ring, t);
  const HealthReport b = classify_health(ring, t);
  EXPECT_EQ(a, b);
  EXPECT_EQ(health_to_json(a).dump(), health_to_json(b).dump());
}

TEST(HealthJson, StateNamesRoundTrip) {
  for (HealthState s :
       {HealthState::kOk, HealthState::kDegradedSlowEpoch,
        HealthState::kDegradedBudgetSaturated, HealthState::kStalled}) {
    HealthState back = HealthState::kOk;
    ASSERT_TRUE(health_state_from_name(health_state_name(s), back));
    EXPECT_EQ(back, s);
  }
  HealthState unused;
  EXPECT_FALSE(health_state_from_name("sick", unused));
}

TEST(HealthJson, RoundTripsExactly) {
  EpochStats odd = healthy_epoch(7, 0.1 + 0.2);  // not exactly 0.3
  odd.flips = 3;
  odd.detection_lag_epochs = 1.5;
  HealthThresholds t;
  t.slow_epoch_seconds = 0.05;
  const HealthReport r = classify_health({healthy_epoch(6), odd}, t);
  EXPECT_EQ(r.state, HealthState::kDegradedSlowEpoch);
  const rpc::Json j = health_to_json(r);
  EXPECT_EQ(j["schema"].as_string(), std::string(kHealthSchema));
  EXPECT_EQ(health_from_json(j), r);
  // The serialized bytes reparse to the same document (%.17g doubles).
  const auto reparsed = rpc::Json::parse(j.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(health_from_json(*reparsed), r);
}

TEST(HealthJson, FromJsonIsStrict) {
  const rpc::Json good = health_to_json(classify_health({healthy_epoch(0)}, {}));
  {  // wrong schema
    rpc::Json j = good;
    j.as_object()["schema"] = rpc::Json("toposhot-health-v999");
    EXPECT_THROW(health_from_json(j), std::runtime_error);
  }
  {  // unknown state name
    rpc::Json j = good;
    j.as_object()["state"] = rpc::Json("sick");
    EXPECT_THROW(health_from_json(j), std::runtime_error);
  }
  {  // missing per-epoch field
    rpc::Json j = good;
    j.as_object()["epochs"].as_array()[0].as_object().erase("flips");
    EXPECT_THROW(health_from_json(j), std::runtime_error);
  }
  {  // negative count
    rpc::Json j = good;
    j.as_object()["epochs"].as_array()[0].as_object()["flips"] = rpc::Json(-1.0);
    EXPECT_THROW(health_from_json(j), std::runtime_error);
  }
}

// -- incremental batching (the schedule seam the monitor drives) ------------

TEST(MonitorSchedule, PairBatchesCoverEachPairOnceWithinBudget) {
  const std::vector<std::pair<size_t, size_t>> pairs{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const auto batches = core::make_batches_for_pairs(pairs, 2);
  size_t covered = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.pairs.size(), 2u);
    covered += b.pairs.size();
  }
  EXPECT_EQ(covered, pairs.size());
}

TEST(MonitorSchedule, PairBatchesSplitOnSourceSinkRoleConflicts) {
  // (0,1) makes 0 a source and 1 a sink; (1,2) would then make 1 a source
  // in the same batch — a node cannot probe while being flooded, so the
  // batch must close before (1,2).
  const std::vector<std::pair<size_t, size_t>> pairs{{0, 1}, {1, 2}, {2, 0}};
  const auto batches = core::make_batches_for_pairs(pairs, 16);
  ASSERT_EQ(batches.size(), 3u) << "each pair conflicts with the previous one";
  for (const auto& b : batches) {
    for (const size_t s : b.sources) {
      for (const size_t k : b.sinks) EXPECT_NE(s, k);
    }
  }
}

// -- TopologyMonitor epoch loop ---------------------------------------------

/// Shared world shaping for every monitor test: the toposhot_cli measure
/// regime (slow mining drain against a small block budget plus organic
/// traffic) in which eviction probes resolve crisply — the config under
/// which clean verdicts equal ground truth, which is what makes monitor
/// snapshots shard-invariant.
struct MonitorWorld {
  graph::Graph truth;
  core::ScenarioOptions wopt;
  core::MeasureConfig cfg;

  explicit MonitorWorld(size_t nodes, uint64_t seed, size_t edges = 0,
                        size_t retries = 0)
      : truth(1) {
    util::Rng rng(seed);
    truth = graph::erdos_renyi_gnm(nodes, edges == 0 ? nodes * 2 : edges, rng);
    wopt.seed = seed;
    wopt.block_gas_limit = 30 * eth::kTransferGas;
    cfg = core::MeasureConfig::Builder(
              core::Scenario(truth, wopt).default_measure_config())
              .repetitions(3)
              .inconclusive_retries(retries)
              .build();
  }
};

MonitorOptions default_monitor_options() {
  MonitorOptions mopt;
  mopt.traffic_churn_rate = 3.0;
  return mopt;
}

TEST(TopologyMonitorTest, BootstrapMeasuresEveryPairAndMatchesTruth) {
  MonitorWorld w(12, 9);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 0.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  EXPECT_EQ(mon.versions(), 0u);
  EXPECT_EQ(mon.latest(), nullptr);
  EXPECT_EQ(mon.status().pairs_tracked, 0u) << "pre-run status is zeroed";

  const auto res = mon.run_epoch();
  EXPECT_EQ(res.epoch, 0u);
  EXPECT_EQ(res.pairs_selected, mon.pairs_total());
  EXPECT_EQ(res.changes_injected, 0u);
  ASSERT_NE(res.snapshot, nullptr);
  EXPECT_EQ(res.snapshot->links.size(), mon.pairs_total());
  EXPECT_EQ(res.snapshot->inconclusive_count(), 0u);
  // Clean verdicts equal ground truth, pair by pair.
  for (const LinkEntry& e : res.snapshot->links) {
    EXPECT_EQ(e.verdict == core::Verdict::kConnected,
              mon.truth().has_edge(static_cast<graph::NodeId>(e.u),
                                   static_cast<graph::NodeId>(e.v)))
        << "pair (" << e.u << ", " << e.v << ")";
  }
  EXPECT_EQ(mon.versions(), 1u);
  EXPECT_EQ(mon.status().coverage, 1.0);
}

TEST(TopologyMonitorTest, IncrementalEpochsStayWithinBudgetAndPublishVersions) {
  MonitorWorld w(12, 10);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  mopt.epoch_budget = 12;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  EXPECT_EQ(mon.effective_epoch_budget(), 12u);
  mon.run(3);
  EXPECT_EQ(mon.epochs_run(), 3u);
  EXPECT_EQ(mon.versions(), 3u);
  for (uint64_t v = 0; v < 3; ++v) {
    const auto snap = mon.snapshot(v);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, v);
  }
  EXPECT_EQ(mon.snapshot(3), nullptr);
  EXPECT_EQ(mon.latest()->version, 2u);

  // Post-bootstrap epochs measured at most `epoch_budget` pairs each.
  const auto s2 = mon.snapshot(2);
  EXPECT_LE(s2->pairs_measured, mon.pairs_total() + 2 * 12);

  // Diffs exist for every published ordered pair; unknown versions don't.
  EXPECT_TRUE(mon.diff(0, 2).has_value());
  EXPECT_FALSE(mon.diff(0, 3).has_value());

  // The monitor's own metrics registry tracks the loop.
  const auto ms = mon.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("monitor.epochs"), 3u);
  EXPECT_DOUBLE_EQ(ms.gauges.at("monitor.coverage"), 1.0);
}

TEST(TopologyMonitorTest, ZeroChurnReachesAQuiescentFixedPoint) {
  MonitorWorld w(10, 11);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 0.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(3);
  // With no drift, later epochs only re-confirm: no verdict ever flips.
  const auto d = mon.diff(0, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
  EXPECT_EQ(mon.status().changes_observed, 0u);
  EXPECT_EQ(mon.injected_changes().size(), 0u);
}

TEST(TopologyMonitorTest, ReadApiIsSafeUnderConcurrentReaders) {
  MonitorWorld w(10, 12);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = mon.latest();
        if (snap != nullptr) {
          // Published snapshots are immutable: internal consistency holds
          // no matter when the read lands relative to the writer.
          EXPECT_EQ(snap->version, snap->epoch);
          EXPECT_LE(snap->connected_count(), snap->links.size());
        }
        const MonitorStatus st = mon.status();
        EXPECT_LE(st.links_connected, st.pairs_total);
        (void)mon.versions();
        (void)mon.snapshot(0);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  mon.run(3);
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(mon.versions(), 3u);
}

// -- telemetry plane (EpochStats ring, health, event log, exposition) -------

TEST(TopologyMonitorTest, PreRunTelemetryIsPublishedAndStalled) {
  MonitorWorld w(10, 20);
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, default_monitor_options());
  const auto health = mon.health();
  ASSERT_NE(health, nullptr) << "health is never null, even before epoch 0";
  EXPECT_EQ(health->state, HealthState::kStalled);
  EXPECT_TRUE(health->epochs.empty());
  const auto expo = mon.metrics_exposition();
  ASSERT_NE(expo, nullptr);
  EXPECT_TRUE(expo->empty()) << "nothing measured, nothing exposed";
  EXPECT_EQ(mon.status().log_dropped, 0u);
}

TEST(TopologyMonitorTest, EpochStatsRingKeepsLastN) {
  MonitorWorld w(10, 21);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  mopt.stats_capacity = 2;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(4);
  const auto health = mon.health();
  ASSERT_EQ(health->epochs.size(), 2u) << "ring trims to stats_capacity";
  EXPECT_EQ(health->epochs[0].epoch, 2u);
  EXPECT_EQ(health->epochs[1].epoch, 3u);
  EXPECT_GT(health->epochs[1].events_drained, 0u);
  EXPECT_GT(health->epochs[1].sim_seconds, 0.0);
  EXPECT_EQ(health->epochs[1].pairs_selected, mon.effective_epoch_budget());
  EXPECT_EQ(health->state, HealthState::kOk);
}

TEST(TopologyMonitorTest, HealthyRunExposesMetricsAndLogsEpochs) {
  MonitorWorld w(12, 22);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(2);

  // The published exposition tracks the registry and the epoch count.
  const auto expo = mon.metrics_exposition();
  ASSERT_NE(expo, nullptr);
  EXPECT_NE(expo->find("# TYPE monitor_epochs counter\nmonitor_epochs 2\n"),
            std::string::npos);
  EXPECT_NE(expo->find("monitor_coverage 1\n"), std::string::npos);
  EXPECT_NE(expo->find("# TYPE monitor_epoch_utilization histogram\n"),
            std::string::npos);
  EXPECT_NE(expo->find("obs_log_dropped 0\n"), std::string::npos);

  // The event log carries one "epoch" summary per epoch, sim-time stamped,
  // monotonically.
  const auto events = mon.event_log().events();
  std::vector<const obs::LogEvent*> epochs;
  for (const obs::LogEvent& e : events) {
    if (e.subsystem == "monitor" && e.event == "epoch") epochs.push_back(&e);
  }
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_GT(epochs[0]->t, 0.0);
  EXPECT_GT(epochs[1]->t, epochs[0]->t);
  bool saw_health_field = false;
  for (const auto& [k, v] : epochs[1]->fields) {
    if (k == "health") {
      saw_health_field = true;
      EXPECT_EQ(v.as_string(), "ok");
    }
  }
  EXPECT_TRUE(saw_health_field);
  EXPECT_EQ(mon.status().log_dropped, mon.event_log().dropped());
}

// A seeded run pushed over a tiny absolute sim-time cap must classify as
// degraded:slow-epoch (the ISSUE's seeded slow-epoch scenario).
TEST(TopologyMonitorTest, SeededSlowEpochIsClassifiedDegraded) {
  MonitorWorld w(10, 23);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  mopt.health.slow_epoch_seconds = 1e-6;  // every real epoch blows this
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(1);
  const auto health = mon.health();
  EXPECT_EQ(health->state, HealthState::kDegradedSlowEpoch);
  EXPECT_NE(health->reason.find("over the absolute cap"), std::string::npos);
  // The transition from the pre-run `stalled` was logged.
  bool saw_transition = false;
  for (const obs::LogEvent& e : mon.event_log().events()) {
    if (e.event == "health-changed") {
      saw_transition = true;
      EXPECT_EQ(e.level, util::LogLevel::kWarn) << "leaving ok-land warns";
    }
  }
  EXPECT_TRUE(saw_transition);
}

// A budget far under the forced demand saturates: with bootstrap disabled
// every epoch's never-measured backlog alone dwarfs a budget of 1.
TEST(TopologyMonitorTest, StarvedBudgetIsClassifiedSaturated) {
  MonitorWorld w(10, 24);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  mopt.bootstrap_full = false;
  mopt.epoch_budget = 1;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(3);
  const auto health = mon.health();
  EXPECT_EQ(health->state, HealthState::kDegradedBudgetSaturated);
  EXPECT_GT(health->epochs.back().budget_utilization, 1.0);
}

// A world with no candidate pairs never selects or drains anything: the
// watchdog must call that stalled, and the epoch loop must survive it
// (the campaign is skipped outright — an empty selection must not fall
// through to CampaignOptions' "empty means full schedule" rule).
TEST(TopologyMonitorTest, DegenerateWorldIsClassifiedStalled) {
  MonitorWorld w(1, 25);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 0.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  const auto res = mon.run_epoch();
  EXPECT_EQ(res.pairs_selected, 0u);
  ASSERT_NE(res.snapshot, nullptr);
  EXPECT_TRUE(res.snapshot->links.empty());
  const auto health = mon.health();
  EXPECT_EQ(health->state, HealthState::kStalled);
  EXPECT_NE(health->reason.find("made no progress"), std::string::npos);
}

// -- evaluation -------------------------------------------------------------

TEST(EvaluateTracking, WindowsPendingAndPerfectDetection) {
  MonitorWorld w(12, 13);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(2);  // bootstrap + one drifted epoch

  // Changes injected at epoch 1 with a window of 3 epochs reach past the
  // last published version -> pending, not scored.
  const TrackingEvaluation wide = evaluate_tracking(mon, 3);
  EXPECT_EQ(wide.scoreable + wide.superseded + wide.pending,
            mon.injected_changes().size());

  mon.run(3);
  const TrackingEvaluation ev = evaluate_tracking(mon, 2);
  EXPECT_EQ(ev.pending, 0u) << "every window is now fully published";
  EXPECT_EQ(ev.scoreable + ev.superseded, mon.injected_changes().size());
  // Degenerate window: nothing is scoreable.
  const TrackingEvaluation none = evaluate_tracking(mon, 0);
  EXPECT_EQ(none.scoreable, 0u);
  EXPECT_DOUBLE_EQ(none.detection_rate(), 1.0);
}

// -- MonitorRpcServer -------------------------------------------------------

double error_code_of(const rpc::Json& response) {
  return response["error"]["code"].as_number();
}

TEST(MonitorRpc, ServesSnapshotDiffAndStatus) {
  MonitorWorld w(10, 14);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(3);
  rpc::MonitorRpcServer server(&mon);

  // topo_getStatus mirrors the in-process status document exactly.
  const auto status_resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":1,"method":"topo_getStatus","params":[]})"));
  ASSERT_TRUE(status_resp.has_value());
  EXPECT_EQ(status_from_json((*status_resp)["result"]), mon.status());

  // topo_getSnapshot with no param serves the latest version; with a
  // version number, that version.
  const auto latest_resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":2,"method":"topo_getSnapshot","params":[]})"));
  ASSERT_TRUE(latest_resp.has_value());
  EXPECT_EQ(snapshot_from_json((*latest_resp)["result"]), *mon.latest());
  const auto v0_resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":3,"method":"topo_getSnapshot","params":[0]})"));
  ASSERT_TRUE(v0_resp.has_value());
  EXPECT_EQ(snapshot_from_json((*v0_resp)["result"]).version, 0u);

  // topo_getDiff across the published range.
  const auto diff_resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":4,"method":"topo_getDiff","params":[0,2]})"));
  ASSERT_TRUE(diff_resp.has_value());
  EXPECT_EQ(diff_from_json((*diff_resp)["result"]), *mon.diff(0, 2));
}

TEST(MonitorRpc, ErrorsForBadVersionsParamsAndMethods) {
  MonitorWorld w(10, 15);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 0.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  rpc::MonitorRpcServer server(&mon);

  // Before any epoch there is nothing to serve.
  auto resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":1,"method":"topo_getSnapshot","params":[]})"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams);

  mon.run(1);
  resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":2,"method":"topo_getSnapshot","params":[99]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams) << "unknown version";
  resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":3,"method":"topo_getSnapshot","params":[-1]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams) << "negative version";
  resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":4,"method":"topo_getDiff","params":[0]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams) << "arity";
  resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":5,"method":"topo_noSuchMethod","params":[]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kMethodNotFound);
  // Transport framing is shared with the Ethereum endpoint.
  resp = rpc::Json::parse(server.handle("not json"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kParseError);
  resp = rpc::Json::parse(server.handle("[]"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidRequest);
}

TEST(MonitorRpc, BatchRequestsAnswerInOrder) {
  MonitorWorld w(10, 16);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(2);
  rpc::MonitorRpcServer server(&mon);

  const std::string batch =
      R"([{"jsonrpc":"2.0","id":1,"method":"topo_getStatus","params":[]},)"
      R"({"jsonrpc":"2.0","method":"topo_getStatus","params":[]},)"
      R"({"jsonrpc":"2.0","id":2,"method":"topo_getDiff","params":[0,1]}])";
  const auto resp = rpc::Json::parse(server.handle(batch));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->is_array());
  ASSERT_EQ(resp->as_array().size(), 2u) << "the notification earns no entry";
  EXPECT_DOUBLE_EQ((*resp)[size_t{0}]["id"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ((*resp)[size_t{1}]["id"].as_number(), 2.0);
}

TEST(MonitorRpc, ServesMetricsAndHealth) {
  MonitorWorld w(10, 26);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  mon.run(2);
  rpc::MonitorRpcServer server(&mon);

  // Wrapped (default) mode: schema + format + the exposition body.
  const auto wrapped = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":1,"method":"topo_getMetrics","params":[]})"));
  ASSERT_TRUE(wrapped.has_value());
  const rpc::Json& result = (*wrapped)["result"];
  EXPECT_EQ(result["schema"].as_string(), std::string(rpc::kMetricsSchema));
  EXPECT_EQ(result["format"].as_string(), "prometheus-text-0.0.4");
  EXPECT_EQ(result["body"].as_string(), *mon.metrics_exposition());
  const auto explicit_wrapped = rpc::Json::parse(server.handle(
      R"({"jsonrpc":"2.0","id":2,"method":"topo_getMetrics","params":["wrapped"]})"));
  EXPECT_EQ((*explicit_wrapped)["result"].dump(), result.dump());

  // Raw mode: the exposition text itself, scrape-ready.
  const auto raw = rpc::Json::parse(server.handle(
      R"({"jsonrpc":"2.0","id":3,"method":"topo_getMetrics","params":["raw"]})"));
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ((*raw)["result"].as_string(), *mon.metrics_exposition());

  // topo_getHealth round-trips the published report exactly.
  const auto health_resp = rpc::Json::parse(
      server.handle(R"({"jsonrpc":"2.0","id":4,"method":"topo_getHealth","params":[]})"));
  ASSERT_TRUE(health_resp.has_value());
  EXPECT_EQ(health_from_json((*health_resp)["result"]), *mon.health());

  // Bad params on both methods.
  auto resp = rpc::Json::parse(server.handle(
      R"({"jsonrpc":"2.0","id":5,"method":"topo_getMetrics","params":["xml"]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams);
  resp = rpc::Json::parse(server.handle(
      R"({"jsonrpc":"2.0","id":6,"method":"topo_getMetrics","params":[7]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams);
  resp = rpc::Json::parse(server.handle(
      R"({"jsonrpc":"2.0","id":7,"method":"topo_getHealth","params":[0]})"));
  EXPECT_DOUBLE_EQ(error_code_of(*resp), rpc::kInvalidParams);
}

TEST(MonitorRpc, ErrorsAreLoggedToTheEventLog) {
  MonitorWorld w(10, 27);
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, default_monitor_options());
  rpc::MonitorRpcServer server(&mon);
  (void)server.handle(
      R"({"jsonrpc":"2.0","id":1,"method":"topo_noSuchMethod","params":[]})");
  (void)server.handle(
      R"({"jsonrpc":"2.0","id":2,"method":"topo_getDiff","params":[0]})");
  std::vector<obs::LogEvent> errors;
  for (const obs::LogEvent& e : mon.event_log().events()) {
    if (e.subsystem == "rpc" && e.event == "error") errors.push_back(e);
  }
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].level, util::LogLevel::kWarn);
  bool saw_code = false, saw_method = false;
  for (const auto& [k, v] : errors[0].fields) {
    if (k == "code") {
      saw_code = true;
      EXPECT_DOUBLE_EQ(v.as_number(), rpc::kMethodNotFound);
    }
    if (k == "method") {
      saw_method = true;
      EXPECT_EQ(v.as_string(), "topo_noSuchMethod");
    }
  }
  EXPECT_TRUE(saw_code);
  EXPECT_TRUE(saw_method);
  // Successful calls log nothing.
  mon.run(1);
  const size_t before = mon.event_log().events().size();
  (void)server.handle(
      R"({"jsonrpc":"2.0","id":3,"method":"topo_getStatus","params":[]})");
  EXPECT_EQ(mon.event_log().events().size(), before);
}

// The new read methods serve published state: hammering them from reader
// threads while the epoch loop runs must stay race-free (check.sh runs
// this under ASan) and always yield well-formed, parseable documents.
TEST(MonitorRpc, TelemetryReadsAreSafeDuringEpochLoop) {
  MonitorWorld w(10, 28);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 1.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);
  rpc::MonitorRpcServer server(&mon);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto health_resp = rpc::Json::parse(server.handle(
            R"({"jsonrpc":"2.0","id":1,"method":"topo_getHealth","params":[]})"));
        ASSERT_TRUE(health_resp.has_value());
        const HealthReport r = health_from_json((*health_resp)["result"]);
        for (size_t e = 1; e < r.epochs.size(); ++e) {
          EXPECT_GT(r.epochs[e].epoch, r.epochs[e - 1].epoch)
              << "published rings are immutable and ordered";
        }
        const auto metrics_resp = rpc::Json::parse(server.handle(
            R"({"jsonrpc":"2.0","id":2,"method":"topo_getMetrics","params":["raw"]})"));
        ASSERT_TRUE(metrics_resp.has_value());
        EXPECT_TRUE((*metrics_resp)["result"].is_string());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  mon.run(3);
  stop.store(true);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(mon.health()->state, HealthState::kOk);
}

// -- the acceptance bar -----------------------------------------------------

// The ISSUE contract for the daemon, pinned as a test: at the default
// budget (auto: 15% of pairs, under the 20% re-probe ceiling), a monitored
// run over a drifting topology detects >= 90% of injected link changes
// within 2 epochs.
TEST(TopologyMonitorTest, DetectsNinetyPercentOfChangesWithinTwoEpochs) {
  MonitorWorld w(24, 1, 44, /*retries=*/2);
  MonitorOptions mopt = default_monitor_options();
  mopt.churn_per_epoch = 2.0;
  TopologyMonitor mon(w.truth, w.wopt, w.cfg, mopt);

  const double reprobe = static_cast<double>(mon.effective_epoch_budget()) /
                         static_cast<double>(mon.pairs_total());
  EXPECT_LT(reprobe, 0.20) << "the default budget must re-probe < 20% of pairs";

  mon.run(6);
  const TrackingEvaluation ev = evaluate_tracking(mon, 2);
  EXPECT_GT(mon.injected_changes().size(), 0u);
  EXPECT_GT(ev.scoreable, 0u);
  EXPECT_GE(ev.detection_rate(), 0.9)
      << ev.detected << "/" << ev.scoreable << " detected";
  EXPECT_EQ(mon.status().links_inconclusive, 0u)
      << "the measure-regime world resolves every probe crisply";
}

}  // namespace
}  // namespace topo::monitor
