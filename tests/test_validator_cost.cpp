// Tests for precision/recall accounting, cost tracking, and the gas
// estimator.

#include <gtest/gtest.h>

#include <limits>

#include "core/cost.h"
#include "core/gas_estimator.h"
#include "core/validator.h"
#include "eth/chain.h"

namespace topo::core {
namespace {

TEST(Validator, CompareGraphsCountsAllCells) {
  graph::Graph truth(4);
  truth.add_edge(0, 1);
  truth.add_edge(1, 2);
  graph::Graph measured(4);
  measured.add_edge(0, 1);  // TP
  measured.add_edge(2, 3);  // FP
  const auto pr = compare_graphs(truth, measured);
  EXPECT_EQ(pr.true_positive, 1u);
  EXPECT_EQ(pr.false_positive, 1u);
  EXPECT_EQ(pr.false_negative, 1u);
  EXPECT_EQ(pr.true_negative, 3u);
  EXPECT_EQ(pr.tested(), 6u);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
}

TEST(Validator, ComparePairsOnlyCountsTested) {
  graph::Graph truth(4);
  truth.add_edge(0, 1);
  truth.add_edge(2, 3);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> tested{{0, 1}, {0, 2}};
  const std::vector<bool> positives{true, false};
  const auto pr = compare_pairs(truth, tested, positives);
  EXPECT_EQ(pr.true_positive, 1u);
  EXPECT_EQ(pr.true_negative, 1u);
  EXPECT_EQ(pr.tested(), 2u);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
}

TEST(Validator, VacuousCasesAreOne) {
  PrecisionRecall pr;
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
}

TEST(Validator, MergeAccumulates) {
  PrecisionRecall a, b;
  a.true_positive = 2;
  b.false_negative = 3;
  a.merge(b);
  EXPECT_EQ(a.true_positive, 2u);
  EXPECT_EQ(a.false_negative, 3u);
}

TEST(Cost, OnlyTrackedIncludedTransactionsCost) {
  eth::Chain chain(1'000'000);
  eth::TxFactory f;
  CostTracker tracker;
  tracker.track_account(7);

  eth::Block b;
  b.timestamp = 5.0;
  b.txs.push_back(f.make(7, 0, 100));   // tracked
  b.txs.push_back(f.make(8, 0, 999));   // untracked
  chain.commit(std::move(b));

  EXPECT_EQ(tracker.included_txs(chain, 0.0, 10.0), 1u);
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, 10.0), eth::kTransferGas * 100);
  EXPECT_EQ(tracker.wei_spent(chain, 6.0, 10.0), 0u) << "outside window";
}

// Pins the half-open [t1, t2) window convention: a block stamped exactly
// at the seam of two adjacent windows is charged to the LATER window, and
// exactly once — never twice, never zero times. (The regression this
// guards: a closed upper bound double-counted seam blocks across per-round
// budgets, and an open lower bound dropped them entirely.)
TEST(Cost, WindowSeamBlockCountsExactlyOnce) {
  eth::Chain chain(1'000'000);
  eth::TxFactory f;
  CostTracker tracker;
  tracker.track_account(7);

  eth::Block b;
  b.timestamp = 10.0;  // exactly on the seam of (0, 10) and (10, 20)
  b.txs.push_back(f.make(7, 0, 100));
  chain.commit(std::move(b));

  const eth::Wei cost = eth::kTransferGas * 100;
  // Earlier window [0, 10): excludes the seam block.
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, 10.0), 0u);
  EXPECT_EQ(tracker.included_txs(chain, 0.0, 10.0), 0u);
  // Later window [10, 20): owns it.
  EXPECT_EQ(tracker.wei_spent(chain, 10.0, 20.0), cost);
  EXPECT_EQ(tracker.included_txs(chain, 10.0, 20.0), 1u);
  // Adjacent windows sum to the whole: counted exactly once.
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, 10.0) + tracker.wei_spent(chain, 10.0, 20.0), cost);
  // Cumulative reads use +infinity, which cannot lose a block stamped at
  // the current instant the way an upper bound of `now` would.
  EXPECT_EQ(tracker.wei_spent(chain, 0.0, std::numeric_limits<double>::infinity()), cost);
  EXPECT_EQ(tracker.included_txs(chain, 0.0, std::numeric_limits<double>::infinity()), 1u);
}

TEST(Cost, ModelConversionsMatchPaperScale) {
  CostModel model;
  model.eth_usd = 2690.0;
  // §6.3: one pair costs 7.1e-4 Ether ~ 1.91 USD at May 2021 prices.
  EXPECT_NEAR(model.wei_to_usd(static_cast<eth::Wei>(7.1e-4 * 1e18)), 1.91, 0.02);
  // Full mainnet: 8000 nodes -> > 60 M USD (paper's estimate).
  EXPECT_GT(model.full_network_usd(8000, 7.1e-4), 60e6);
  EXPECT_NEAR(model.full_network_ether(8000, 7.1e-4), 22.7e3, 0.5e3);
}

TEST(GasEstimator, MedianOfView) {
  eth::MapState state;
  eth::TxFactory f;
  mempool::MempoolPolicy p;
  p.capacity = 100;
  mempool::Mempool view(p, &state);
  for (int i = 1; i <= 9; ++i) view.add(f.make(i, 0, i * 100), 0.0);
  EXPECT_EQ(estimate_price_Y(view), 500u);
}

TEST(GasEstimator, FallbackWhenEmpty) {
  eth::MapState state;
  mempool::MempoolPolicy p;
  mempool::Mempool view(p, &state);
  EXPECT_EQ(estimate_price_Y(view, 1234), 1234u);
}

TEST(GasEstimator, Y0StaysBelowInclusionFloor) {
  eth::MapState state;
  eth::TxFactory f;
  mempool::MempoolPolicy p;
  p.capacity = 100;
  mempool::Mempool view(p, &state);
  for (int i = 1; i <= 9; ++i) view.add(f.make(i, 0, 1'000'000), 0.0);
  // Median is 1e6 but blocks only included >= 100k: Y0 must sit below.
  EXPECT_EQ(estimate_price_Y0(view, 100'000, 0.5), 50'000u);
  // When the median is already low, keep it.
  EXPECT_EQ(estimate_price_Y0(view, 10'000'000, 0.5), 1'000'000u);
}

}  // namespace
}  // namespace topo::core
