// Batched per-link delivery: the kDeliverTxBatch drain loop, the payload
// arena behind it, and the per-stream FIFO-clock lifecycle (the churn leak
// regression). The campaign-level batched-vs-unbatched byte goldens live
// in test_determinism.cpp; this file covers the mechanism: member-exact
// trajectory equivalence, window sealing, disconnect interaction, fault
// hooks, and arena capacity hygiene.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/toposhot.h"
#include "eth/chain.h"
#include "graph/generators.h"
#include "p2p/fault_hook.h"
#include "p2p/network.h"
#include "p2p/node.h"
#include "p2p/payload_arena.h"

namespace topo::p2p {
namespace {

struct World {
  sim::Simulator sim;
  eth::Chain chain{8'000'000};
  Network net;
  eth::TxFactory factory;
  eth::AccountManager accounts;

  explicit World(sim::LatencyModel lat = sim::LatencyModel::fixed(0.05))
      : net(&sim, &chain, util::Rng(12), lat) {}

  NodeConfig default_config() {
    NodeConfig cfg;
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = 64;
    p.future_cap = 16;
    cfg.policy_override = p;
    return cfg;
  }

  eth::Transaction pending_tx(eth::Wei price = 100) {
    const eth::Address a = accounts.create_one();
    return factory.make(a, accounts.allocate_nonce(a), price);
  }
};

/// Registered sink that records every full-tx delivery with its exact
/// simulated timestamp — the observable trajectory the batched and
/// unbatched paths must agree on.
struct RecordingPeer : Peer {
  struct Rx {
    double t;
    PeerId from;
    eth::TxHash hash;
    bool operator==(const Rx& o) const {
      return t == o.t && from == o.from && hash == o.hash;
    }
  };
  sim::Simulator* sim = nullptr;
  std::vector<Rx> rxs;

  void deliver_tx(const eth::Transaction& tx, PeerId from) override {
    rxs.push_back({sim->now(), from, tx.hash()});
  }
  void deliver_announce(eth::TxHash, PeerId) override {}
  void deliver_get_tx(eth::TxHash, PeerId) override {}
};

// --- Trajectory equivalence -------------------------------------------------

/// Drives an identical randomized burst schedule (three interleaved sender
/// streams, varying extra delays, mid-sequence sim advances) at the given
/// batch window and returns what the receiver saw, when.
std::vector<RecordingPeer::Rx> run_bursts(double window, size_t* events_processed) {
  World w;
  w.net.set_batch_window(window);
  RecordingPeer rx;
  rx.sim = &w.sim;
  const PeerId to = w.net.register_peer(&rx);
  RecordingPeer senders[3];
  PeerId from[3];
  for (int i = 0; i < 3; ++i) {
    senders[i].sim = &w.sim;
    from[i] = w.net.register_peer(&senders[i]);
  }

  util::Rng sched(99);  // identical schedule either way; net RNG is World's
  double t = 0.0;
  for (int burst = 0; burst < 12; ++burst) {
    const int n = 1 + static_cast<int>(sched.next() % 5);
    for (int k = 0; k < n; ++k) {
      const PeerId s = from[sched.next() % 3];
      const double extra = 0.01 * static_cast<double>(sched.next() % 40);
      w.net.send_tx(s, to, w.pending_tx(), extra);
    }
    t += 0.05 * static_cast<double>(1 + sched.next() % 6);
    w.sim.run_until(t);
  }
  w.sim.run_until(t + 10.0);
  if (events_processed != nullptr) *events_processed = w.sim.processed();
  EXPECT_EQ(w.net.arena().live(), 0u) << "all payload slots released";
  return rx.rxs;
}

TEST(BatchDelivery, BatchedTrajectoryIsIdenticalToUnbatched) {
  size_t batched_events = 0, unbatched_events = 0;
  const auto batched = run_bursts(0.25, &batched_events);
  const auto unbatched = run_bursts(0.0, &unbatched_events);
  ASSERT_FALSE(unbatched.empty());
  EXPECT_EQ(batched, unbatched);
  // Per-stream FIFO: deliveries from one sender never go backwards in time.
  for (size_t i = 1; i < batched.size(); ++i) {
    for (size_t j = i; j-- > 0;) {
      if (batched[j].from == batched[i].from) {
        EXPECT_LE(batched[j].t, batched[i].t);
        break;
      }
    }
  }
  // Batching actually engaged: the same trajectory took fewer queue pops.
  EXPECT_LT(batched_events, unbatched_events);
}

// --- Window lifecycle -------------------------------------------------------

TEST(BatchDelivery, WindowRollSealsAndOpensNewBatch) {
  World w;
  w.net.set_batch_window(0.1);
  RecordingPeer rx;
  rx.sim = &w.sim;
  const PeerId to = w.net.register_peer(&rx);
  RecordingPeer sender;
  sender.sim = &w.sim;
  const PeerId from = w.net.register_peer(&sender);

  // The window's first send ships as a plain kDeliverTx — no batch yet.
  w.net.send_tx(from, to, w.pending_tx());  // delivers ~0.05
  EXPECT_EQ(w.net.staged_batches(), 0u) << "a single send pays no staging";
  // A second send inside the window opens the batch...
  w.net.send_tx(from, to, w.pending_tx(), 0.05);  // ~0.10, same window
  EXPECT_EQ(w.net.staged_batches(), 1u);
  // ...and a send past the window seals it and restarts the plain regime,
  // so the next pair opens a second batch.
  w.net.send_tx(from, to, w.pending_tx(), 0.40);  // ~0.45, rolls the window
  w.net.send_tx(from, to, w.pending_tx(), 0.45);  // ~0.50, joins window 2
  EXPECT_EQ(w.net.staged_batches(), 2u);
  w.sim.run_until(5.0);
  ASSERT_EQ(rx.rxs.size(), 4u);
  EXPECT_LT(rx.rxs[0].t, rx.rxs[1].t);
  EXPECT_LT(rx.rxs[1].t, rx.rxs[2].t);
  EXPECT_LT(rx.rxs[2].t, rx.rxs[3].t);
  EXPECT_EQ(w.net.arena().live(), 0u);
  EXPECT_EQ(w.net.staged_batches(), 0u) << "drained batches are erased";
}

TEST(BatchDelivery, ZeroWindowDisablesBatching) {
  World w;
  w.net.set_batch_window(0.0);
  RecordingPeer rx;
  rx.sim = &w.sim;
  const PeerId to = w.net.register_peer(&rx);
  RecordingPeer sender;
  sender.sim = &w.sim;
  const PeerId from = w.net.register_peer(&sender);
  for (int i = 0; i < 4; ++i) w.net.send_tx(from, to, w.pending_tx());
  EXPECT_EQ(w.net.staged_batches(), 0u);
  EXPECT_EQ(w.net.arena().live(), 4u) << "payloads still ride the arena";
  w.sim.run_until(5.0);
  EXPECT_EQ(rx.rxs.size(), 4u);
  EXPECT_EQ(w.net.arena().live(), 0u);
}

// --- Disconnect interaction -------------------------------------------------

TEST(BatchDelivery, DisconnectSealsBatchButInFlightMembersDeliver) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  ASSERT_TRUE(w.net.connect(a, b));
  const auto tx = w.pending_tx();
  w.net.node(a).submit(tx);  // floods a->b; delivery in flight, not yet run
  ASSERT_TRUE(w.net.disconnect(a, b));
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()))
      << "messages already on the wire outlive the link";
  EXPECT_EQ(w.net.arena().live(), 0u);
  EXPECT_EQ(w.net.stream_count(), 0u) << "both directed streams pruned";
}

// --- Mid-drain map growth (iterator-invalidation regression) ----------------

TEST(BatchDelivery, MidDrainPropagationOpeningManyBatchesIsSafe) {
  // Draining a batch delivers into a Node whose propagation immediately
  // send_tx()es to every neighbor; the second delivery's fan-out opens a
  // new batch on every hub->leaf stream *while the drain dispatch is still
  // on the stack*, growing batches_ from 1 entry to ~41 and forcing a
  // rehash. Regression: the handler used to hold a pre-drain iterator
  // across the loop and compare/erase through it afterwards — dangling
  // (UB) once the map rehashed. It must erase by key instead.
  World w;
  w.net.set_batch_window(0.25);
  const PeerId hub = w.net.add_node(w.default_config());
  RecordingPeer sender;
  sender.sim = &w.sim;
  const PeerId from = w.net.register_peer(&sender);
  constexpr int kLeaves = 40;
  RecordingPeer leaves[kLeaves];
  for (int i = 0; i < kLeaves; ++i) {
    leaves[i].sim = &w.sim;
    ASSERT_TRUE(w.net.connect(hub, w.net.register_peer(&leaves[i])));
  }
  // Two sends in one window: the opener ships plain (the hub fans tx1 out
  // to all leaves, anchoring each hub->leaf window at ~0.10), the second
  // becomes the batch's sole member; draining it makes the hub fan out
  // tx2 — the second send inside every hub->leaf window, so each one
  // opens a batch mid-dispatch.
  w.net.send_tx(from, hub, w.pending_tx());
  w.net.send_tx(from, hub, w.pending_tx(), 0.005);
  ASSERT_EQ(w.net.staged_batches(), 1u);
  w.sim.run_until(10.0);
  for (int i = 0; i < kLeaves; ++i) {
    EXPECT_EQ(leaves[i].rxs.size(), 2u) << "leaf " << i;
  }
  EXPECT_EQ(w.net.staged_batches(), 0u) << "all batches drained and erased";
  EXPECT_EQ(w.net.arena().live(), 0u);
}

// --- Watchdog budget accounting ---------------------------------------------

TEST(BatchDelivery, RunCappedChargesEachDrainedMember) {
  // A batch dispatch delivers its whole member list in one queue pop under
  // run_capped (drain_bound is +inf there). The budget must charge one
  // unit per drained member, or batching would let event-capped watchdog
  // runs do unboundedly more work per counted event than unbatched runs.
  for (const double window : {0.25, 0.0}) {
    World w;
    w.net.set_batch_window(window);
    RecordingPeer rx;
    rx.sim = &w.sim;
    const PeerId to = w.net.register_peer(&rx);
    RecordingPeer s1, s2;
    s1.sim = &w.sim;
    s2.sim = &w.sim;
    const PeerId from1 = w.net.register_peer(&s1);
    const PeerId from2 = w.net.register_peer(&s2);
    // Six sends inside one window (batched: one plain opener + a batch of
    // five members) plus a straggler on another stream an hour of sim
    // time later, so the queue is provably non-empty when the budget runs
    // out mid-way.
    for (int i = 0; i < 6; ++i) {
      w.net.send_tx(from1, to, w.pending_tx(), 0.005 * static_cast<double>(i));
    }
    w.net.send_tx(from2, to, w.pending_tx(), 1.0);
    // Both regimes deliver 7 messages; both must agree that a 4-delivery
    // budget is not enough...
    EXPECT_FALSE(w.sim.run_capped(4)) << "window=" << window;
    // ...and that topping the budget up finishes the job.
    EXPECT_TRUE(w.sim.run_capped(100)) << "window=" << window;
    EXPECT_EQ(rx.rxs.size(), 7u) << "window=" << window;
    EXPECT_EQ(w.net.arena().live(), 0u);
  }
}

// --- FIFO-clock lifecycle (the churn leak regression) -----------------------

TEST(FifoClock, ChurnCycleReturnsStreamMapToBaseline) {
  World w;
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  const size_t baseline = w.net.stream_count();
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_TRUE(w.net.connect(a, b));
    const auto tx = w.pending_tx();
    w.net.node(a).submit(tx);
    w.sim.run_until(w.sim.now() + 5.0);
    EXPECT_GT(w.net.stream_count(), baseline) << "traffic created stream state";
    ASSERT_TRUE(w.net.disconnect(a, b));
    EXPECT_EQ(w.net.stream_count(), baseline)
        << "cycle " << cycle << ": disconnect must prune the FIFO clocks";
  }
}

TEST(FifoClock, ReconnectedLinkStartsWithFreshClock) {
  World w;  // fixed 0.05 latency
  const PeerId a = w.net.add_node(w.default_config());
  const PeerId b = w.net.add_node(w.default_config());
  ASSERT_TRUE(w.net.connect(a, b));
  // Park the a->b clock far in the future (delivery at ~100.05).
  w.net.send_tx(a, b, w.pending_tx(), 100.0);
  w.sim.run_until(1.0);
  ASSERT_TRUE(w.net.disconnect(a, b));
  ASSERT_TRUE(w.net.connect(a, b));
  // A fresh send on the re-established link must deliver at ~now + latency,
  // not behind the dead link's stale 100-second clock.
  const auto tx = w.pending_tx();
  w.net.send_tx(a, b, tx);
  w.sim.run_until(5.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash()))
      << "pre-fix, the stale clock pushed this delivery past t=100";
}

// --- Fault-hook interaction -------------------------------------------------

/// Drops every `modulo`-th full-tx send (announce/get-tx untouched).
struct PatternDropHook : FaultHook {
  int modulo;
  int n = 0;
  explicit PatternDropHook(int m) : modulo(m) {}
  bool should_drop(MsgKind kind, PeerId, PeerId) override {
    return kind == MsgKind::kTx && (n++ % modulo) == 0;
  }
  double latency_multiplier(MsgKind, PeerId, PeerId) override { return 1.0; }
};

TEST(BatchDelivery, DroppedSendsNeverHoldArenaSlotsOrJoinBatches) {
  World w;
  PatternDropHook hook(1);  // drop everything
  w.net.set_fault_hook(&hook);
  RecordingPeer rx;
  rx.sim = &w.sim;
  const PeerId to = w.net.register_peer(&rx);
  RecordingPeer sender;
  sender.sim = &w.sim;
  const PeerId from = w.net.register_peer(&sender);
  for (int i = 0; i < 6; ++i) w.net.send_tx(from, to, w.pending_tx());
  EXPECT_EQ(w.net.arena().live(), 0u);
  EXPECT_EQ(w.net.staged_batches(), 0u);
  w.sim.run_until(5.0);
  EXPECT_TRUE(rx.rxs.empty());
}

TEST(BatchDelivery, PartialDropsSplitTheBatchCorrectly) {
  World w;
  PatternDropHook hook(2);  // drop sends 0, 2, 4, ...
  w.net.set_fault_hook(&hook);
  RecordingPeer rx;
  rx.sim = &w.sim;
  const PeerId to = w.net.register_peer(&rx);
  RecordingPeer sender;
  sender.sim = &w.sim;
  const PeerId from = w.net.register_peer(&sender);
  std::vector<eth::TxHash> kept;
  for (int i = 0; i < 8; ++i) {
    const auto tx = w.pending_tx();
    if (i % 2 == 1) kept.push_back(tx.hash());
    w.net.send_tx(from, to, tx);
  }
  EXPECT_EQ(w.net.arena().live(), kept.size());
  w.sim.run_until(5.0);
  ASSERT_EQ(rx.rxs.size(), kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(rx.rxs[i].hash, kept[i]) << "survivors deliver in send order";
  }
  EXPECT_EQ(w.net.arena().live(), 0u);
}

// --- Payload arena ----------------------------------------------------------

TEST(PayloadArena, AcquireTakeRoundTripsThePayload) {
  World w;
  PayloadArena arena;
  const auto tx = w.pending_tx();
  const uint32_t slot = arena.acquire(tx);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.peek(slot).hash(), tx.hash());
  EXPECT_EQ(arena.take(slot).hash(), tx.hash());
  EXPECT_EQ(arena.live(), 0u);
}

TEST(PayloadArena, HandlesStayStableAcrossChunkGrowth) {
  World w;
  PayloadArena arena;
  std::vector<std::pair<uint32_t, eth::TxHash>> held;
  for (uint32_t i = 0; i < PayloadArena::kChunkSlots + 40; ++i) {
    const auto tx = w.pending_tx();
    held.emplace_back(arena.acquire(tx), tx.hash());
  }
  EXPECT_GT(arena.capacity_slots(), size_t{PayloadArena::kChunkSlots});
  for (const auto& [slot, hash] : held) EXPECT_EQ(arena.peek(slot).hash(), hash);
  for (const auto& [slot, hash] : held) EXPECT_EQ(arena.take(slot).hash(), hash);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(PayloadArena, SpikeCapacityIsReleasedAfterDrain) {
  World w;
  PayloadArena arena;
  std::vector<uint32_t> slots;
  const uint32_t spike = PayloadArena::kChunkSlots * 4;
  for (uint32_t i = 0; i < spike; ++i) slots.push_back(arena.acquire(w.pending_tx()));
  EXPECT_GE(arena.capacity_slots(), size_t{spike});
  EXPECT_EQ(arena.peak(), spike);
  for (uint32_t s : slots) arena.release(s);
  // Pre-compaction, the grow-only slab pinned all four chunks forever.
  EXPECT_LE(arena.capacity_slots(), size_t{PayloadArena::kChunkSlots})
      << "drained chunks hand their memory back";
  EXPECT_EQ(arena.peak(), spike) << "the gauge still remembers the spike";
  arena.reset_peak();
  EXPECT_EQ(arena.peak(), 0u);
}

TEST(PayloadArena, SnapshotRestoreRebuildsLivePayloads) {
  World w;
  PayloadArena arena;
  std::vector<std::pair<uint32_t, eth::TxHash>> held;
  for (int i = 0; i < 10; ++i) {
    const auto tx = w.pending_tx();
    held.emplace_back(arena.acquire(tx), tx.hash());
  }
  for (int i = 0; i < 10; i += 2) arena.release(held[static_cast<size_t>(i)].first);
  const PayloadArena::Snapshot snap = arena.snapshot();

  PayloadArena copy;
  copy.restore(snap);
  EXPECT_EQ(copy.live(), 5u);
  for (int i = 1; i < 10; i += 2) {
    const auto& [slot, hash] = held[static_cast<size_t>(i)];
    EXPECT_EQ(copy.peek(slot).hash(), hash) << "slot handles preserved verbatim";
  }
  // The restored arena is a working arena: new acquires and releases land.
  const auto tx = w.pending_tx();
  const uint32_t slot = copy.acquire(tx);
  EXPECT_EQ(copy.take(slot).hash(), tx.hash());
}

// --- Snapshot / fork with staged batches in flight --------------------------

TEST(BatchDelivery, ForkCarriesStagedBatchesAcrossTheSnapshot) {
  util::Rng grng(3);
  const graph::Graph truth = graph::erdos_renyi_gnm(12, 20, grng);
  core::ScenarioOptions opt;
  opt.seed = 7;
  opt.mempool_capacity = 96;
  opt.future_cap = 24;
  opt.background_txs = 64;
  core::Scenario base(truth, opt);
  base.seed_background();

  // Stage a real burst mid-flight: several sends on one stream, snapshot
  // taken while the kDeliverTxBatch event and its arena payloads are live.
  // Accounts come from the scenario's own manager so the nonces don't
  // collide with the background load's.
  const p2p::PeerId from = base.targets()[0];
  const p2p::PeerId to = base.targets()[1];
  std::vector<eth::TxHash> hashes;
  for (int i = 0; i < 3; ++i) {
    const eth::Address a = base.accounts().create_one();
    const auto tx = base.factory().make(a, base.accounts().allocate_nonce(a), 200);
    hashes.push_back(tx.hash());
    base.net().send_tx(from, to, tx);
  }
  ASSERT_GE(base.net().staged_batches(), 1u);
  ASSERT_GE(base.net().arena().live(), 3u);

  const core::WorldSnapshot snap = base.snapshot();
  auto fork = core::Scenario::fork(snap);
  const double horizon = base.sim().now() + 5.0;
  base.sim().run_until(horizon);
  fork->sim().run_until(horizon);
  for (eth::TxHash h : hashes) {
    EXPECT_TRUE(base.net().node(to).pool().contains(h));
    EXPECT_TRUE(fork->net().node(to).pool().contains(h))
        << "staged batch member lost across the fork";
  }
  EXPECT_EQ(fork->net().arena().live(), base.net().arena().live());
}

}  // namespace
}  // namespace topo::p2p
