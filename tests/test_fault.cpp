// Tests for the deterministic fault-injection layer (topo::fault): seeded
// drop/spike decisions, scheduled node faults (unresponsive windows and
// crash/restarts), zero-cost-off behaviour, and the driver-level contract —
// a faulted campaign is a pure function of (seed, plan) at any worker
// width, and bounded re-measurement of inconclusive probes buys back the
// recall that message loss takes.

#include <gtest/gtest.h>

#include <vector>

#include "core/report_io.h"
#include "core/validator.h"
#include "eth/chain.h"
#include "exec/campaign.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "p2p/network.h"
#include "p2p/node.h"
#include "util/rng.h"

namespace topo::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan / FaultInjector decision primitives
// ---------------------------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.drop_tx = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = FaultPlan{};
  plan.churn_rate = 1.0;
  EXPECT_TRUE(plan.enabled());
  plan = FaultPlan{};
  plan.scheduled.push_back({1.0, 5.0, 0, false});
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultInjector, DropDecisionsAreSeedDeterministic) {
  FaultPlan plan;
  plan.drop_tx = 0.3;
  plan.drop_announce = 0.1;
  plan.drop_get_tx = 0.5;

  FaultInjector a(plan, 42), b(plan, 42), c(plan, 43);
  const p2p::MsgKind kinds[] = {p2p::MsgKind::kTx, p2p::MsgKind::kAnnounce,
                                p2p::MsgKind::kGetTx};
  size_t diverged = 0;
  for (int i = 0; i < 300; ++i) {
    const p2p::MsgKind k = kinds[i % 3];
    const bool da = a.should_drop(k, 0, 1);
    EXPECT_EQ(da, b.should_drop(k, 0, 1)) << "same seed, same stream, draw " << i;
    if (da != c.should_drop(k, 0, 1)) ++diverged;
  }
  EXPECT_EQ(a.dropped_total(), b.dropped_total());
  EXPECT_GT(a.dropped_total(), 0u);
  EXPECT_GT(diverged, 0u) << "different seeds must give different streams";
}

TEST(FaultInjector, ZeroProbabilitiesNeverDropAndConsumeNoRandomness) {
  FaultInjector inj(FaultPlan{}, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.should_drop(p2p::MsgKind::kTx, 0, 1));
    EXPECT_DOUBLE_EQ(inj.latency_multiplier(p2p::MsgKind::kTx, 0, 1), 1.0);
  }
  EXPECT_EQ(inj.dropped_total(), 0u);
  EXPECT_EQ(inj.spiked_messages(), 0u);
}

TEST(FaultInjector, SpikeMembershipIsAStableLinkProperty) {
  FaultPlan plan;
  plan.spike_prob = 0.5;
  plan.spike_mult = 4.0;
  FaultInjector inj(plan, 99), again(plan, 99);

  size_t spiked_links = 0;
  const size_t links = 400;
  for (p2p::PeerId from = 0; from < 20; ++from) {
    for (p2p::PeerId to = 0; to < 20; ++to) {
      const double m = inj.latency_multiplier(p2p::MsgKind::kTx, from, to);
      // Per-link, not per-message: repeat calls agree, whatever the order
      // of prior calls (the `again` injector has seen none of them).
      EXPECT_DOUBLE_EQ(m, inj.latency_multiplier(p2p::MsgKind::kAnnounce, from, to));
      EXPECT_DOUBLE_EQ(m, again.latency_multiplier(p2p::MsgKind::kTx, from, to));
      if (m > 1.0) {
        EXPECT_DOUBLE_EQ(m, 4.0);
        ++spiked_links;
      }
    }
  }
  // ~Binomial(400, 0.5): a [120, 280] band is > 15 sigma.
  EXPECT_GT(spiked_links, links * 3 / 10);
  EXPECT_LT(spiked_links, links * 7 / 10);
}

// ---------------------------------------------------------------------------
// Node faults against a live network
// ---------------------------------------------------------------------------

struct World {
  sim::Simulator sim;
  eth::Chain chain{8'000'000};
  p2p::Network net;
  eth::TxFactory factory;
  eth::AccountManager accounts;

  World() : net(&sim, &chain, util::Rng(12), sim::LatencyModel::fixed(0.05)) {}

  p2p::NodeConfig config() {
    p2p::NodeConfig cfg;
    mempool::MempoolPolicy p = mempool::profile_for(mempool::ClientKind::kGeth).policy;
    p.capacity = 64;
    p.future_cap = 16;
    cfg.policy_override = p;
    return cfg;
  }

  eth::Transaction pending_tx(eth::Wei price = 100) {
    const eth::Address a = accounts.create_one();
    return factory.make(a, accounts.allocate_nonce(a), price);
  }
};

TEST(FaultInjector, ScheduledCrashWipesPoolAndWindowCloses) {
  World w;
  const p2p::PeerId a = w.net.add_node(w.config());
  const p2p::PeerId b = w.net.add_node(w.config());
  w.net.connect(a, b);

  FaultPlan plan;
  plan.scheduled.push_back({/*at=*/2.0, /*duration=*/3.0, /*node=*/1, /*crash=*/true});
  FaultInjector inj(plan, 5);
  inj.install(w.net);

  // Before the fault: a pending tx reaches B.
  const auto tx1 = w.pending_tx();
  w.net.node(a).submit(tx1);
  w.sim.run_until(1.0);
  ASSERT_TRUE(w.net.node(b).pool().contains(tx1.hash()));

  // Inside the window: B drops everything.
  w.sim.run_until(2.5);
  EXPECT_TRUE(w.net.node(b).unresponsive());
  const auto tx2 = w.pending_tx(200);
  w.net.node(a).submit(tx2);
  w.sim.run_until(4.0);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx2.hash()));

  // After the window: B restarted (tx1 gone from the wiped pool) and is
  // responsive again.
  w.sim.run_until(6.0);
  EXPECT_FALSE(w.net.node(b).unresponsive());
  EXPECT_FALSE(w.net.node(b).pool().contains(tx1.hash())) << "crash wiped the pool";
  const auto tx3 = w.pending_tx(300);
  w.net.node(a).submit(tx3);
  w.sim.run_until(8.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx3.hash()));

  EXPECT_EQ(inj.unresponsive_windows(), 1u);
  EXPECT_EQ(inj.restarts(), 1u);
}

TEST(FaultInjector, UnresponsiveWindowDefeatedByAnnounceFailOver) {
  // The fetcher's fail-over (satellite of the same PR) is exactly what an
  // unresponsive window exercises end-to-end: B first asks the faulted
  // announcer A, gets nothing, and after the block window falls over to C,
  // which serves the body.
  World w;
  const p2p::PeerId a = w.net.add_node(w.config());
  const p2p::PeerId b = w.net.add_node(w.config());
  const p2p::PeerId c = w.net.add_node(w.config());
  w.net.connect(a, b);
  w.net.connect(c, b);

  FaultPlan plan;
  plan.scheduled.push_back({/*at=*/0.5, /*duration=*/20.0, /*node=*/0, /*crash=*/false});
  FaultInjector inj(plan, 5);
  inj.install(w.net);

  const auto tx = w.pending_tx();
  w.net.node(c).pool().add(tx, 0.0);

  w.sim.run_until(1.0);  // A is now inside its unresponsive window
  ASSERT_TRUE(w.net.node(a).unresponsive());
  w.net.send_announce(a, b, tx.hash());
  w.sim.run_until(2.0);
  w.net.send_announce(c, b, tx.hash());  // recorded as fail-over source
  w.sim.run_until(4.0);
  EXPECT_FALSE(w.net.node(b).pool().contains(tx.hash()))
      << "faulted announcer cannot serve the body";

  w.sim.run_until(15.0);
  EXPECT_TRUE(w.net.node(b).pool().contains(tx.hash())) << "fail-over to C succeeded";
  EXPECT_EQ(w.net.node(b).announce_fetcher_entries(), 0u) << "fetcher state freed";
}

TEST(FaultInjector, ChurnProcessIsSeedDeterministic) {
  FaultPlan plan;
  plan.churn_rate = 0.5;
  plan.churn_duration = 1.0;
  plan.crash_fraction = 0.5;

  auto run = [&](uint64_t seed) {
    World w;
    std::vector<p2p::PeerId> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(w.net.add_node(w.config()));
    for (int i = 0; i + 1 < 6; ++i) w.net.connect(ids[i], ids[i + 1]);
    FaultInjector inj(plan, seed);
    inj.install(w.net);
    w.sim.run_until(60.0);
    return std::make_pair(inj.unresponsive_windows(), inj.restarts());
  };

  const auto r1 = run(11), r2 = run(11), r3 = run(12);
  EXPECT_EQ(r1, r2) << "same seed, same fault history";
  EXPECT_GT(r1.first, 0u) << "churn actually fired";
  EXPECT_NE(r1, r3) << "different seed, different history (with high probability)";
}

// ---------------------------------------------------------------------------
// Campaign-level contracts
// ---------------------------------------------------------------------------

core::ScenarioOptions fast_options(uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  return opt;
}

core::MeasureConfig probe_config(const graph::Graph& truth, const core::ScenarioOptions& opt) {
  core::Scenario probe(truth, opt);
  return probe.default_measure_config();
}

TEST(FaultCampaign, DisabledPlanAndZeroRetriesAreByteIdenticalToBaseline) {
  // Zero-cost-off: a default FaultPlan plus inconclusive_retries=0 must
  // leave the campaign artifacts byte-identical to a run that never heard
  // of the fault layer — including the serialized report (no fault block).
  util::Rng rng(9);
  const graph::Graph truth = graph::erdos_renyi_gnm(16, 32, rng);
  const core::ScenarioOptions opt = fast_options(77);
  const core::MeasureConfig cfg = probe_config(truth, opt);

  exec::CampaignOptions baseline;
  baseline.group_k = 4;
  baseline.shards = 2;
  const exec::CampaignResult plain = exec::run_sharded_campaign(truth, opt, cfg, baseline);

  exec::CampaignOptions with_plan = baseline;
  with_plan.fault_plan = FaultPlan{};  // explicitly set, still disabled
  const exec::CampaignResult off = exec::run_sharded_campaign(truth, opt, cfg, with_plan);

  EXPECT_FALSE(plain.report.fault.has_value());
  EXPECT_FALSE(off.report.fault.has_value());
  EXPECT_EQ(core::report_to_json(plain.report).dump(),
            core::report_to_json(off.report).dump());
  EXPECT_EQ(plain.metrics, off.metrics);
}

TEST(FaultCampaign, FaultedCampaignIsIdenticalAcrossThreadWidths) {
  // The determinism contract under faults: drops, spikes, node churn, and
  // re-measurement all key off the shard seed, so --threads stays
  // wall-clock-only even with every fault class armed.
  util::Rng rng(9);
  const graph::Graph truth = graph::erdos_renyi_gnm(24, 48, rng);
  const core::ScenarioOptions opt = fast_options(123);
  core::MeasureConfig cfg = probe_config(truth, opt);
  cfg.inconclusive_retries = 1;

  exec::CampaignOptions copt;
  copt.group_k = 4;
  copt.shards = 4;
  copt.fault_plan.drop_tx = 0.02;
  copt.fault_plan.drop_announce = 0.02;
  copt.fault_plan.drop_get_tx = 0.02;
  copt.fault_plan.spike_prob = 0.1;
  copt.fault_plan.churn_rate = 0.01;
  copt.fault_plan.crash_fraction = 0.5;

  copt.threads = 1;
  const exec::CampaignResult serial = exec::run_sharded_campaign(truth, opt, cfg, copt);
  copt.threads = 4;
  const exec::CampaignResult parallel = exec::run_sharded_campaign(truth, opt, cfg, copt);

  ASSERT_TRUE(serial.report.fault.has_value());
  EXPECT_EQ(core::report_to_json(serial.report).dump(),
            core::report_to_json(parallel.report).dump())
      << "faulted merged report must be byte-identical at any worker width";
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_GE(serial.report.fault->attempts, serial.report.pairs_tested)
      << "every pair consumed at least one attempt";
}

TEST(FaultCampaign, RetriesImproveRecallUnderLoss) {
  // The acceptance experiment: at >= 1% uniform message loss on a 32-node
  // overlay, bounded inconclusive re-measurement strictly improves recall
  // over the no-retry driver (and never costs precision).
  util::Rng rng(9);
  const graph::Graph truth = graph::erdos_renyi_gnm(32, 64, rng);
  const core::ScenarioOptions opt = fast_options(123);
  core::MeasureConfig cfg = probe_config(truth, opt);

  exec::CampaignOptions copt;
  copt.group_k = 4;
  copt.shards = 4;
  copt.fault_plan.drop_tx = 0.05;
  copt.fault_plan.drop_announce = 0.05;
  copt.fault_plan.drop_get_tx = 0.05;

  cfg.inconclusive_retries = 0;
  const exec::CampaignResult lossy = exec::run_sharded_campaign(truth, opt, cfg, copt);
  cfg.inconclusive_retries = 2;
  const exec::CampaignResult retried = exec::run_sharded_campaign(truth, opt, cfg, copt);

  const auto pr_lossy = core::compare_graphs(truth, lossy.report.measured);
  const auto pr_retried = core::compare_graphs(truth, retried.report.measured);
  EXPECT_LT(pr_lossy.recall(), 1.0) << "loss must actually cost recall, or the cell is vacuous";
  EXPECT_GT(pr_retried.recall(), pr_lossy.recall())
      << "re-measurement strictly improves recall at 5% loss";
  EXPECT_GE(pr_retried.precision(), pr_lossy.precision());

  // The annex records the extra work.
  ASSERT_TRUE(lossy.report.fault.has_value());
  ASSERT_TRUE(retried.report.fault.has_value());
  EXPECT_EQ(lossy.report.fault->retried.size(), 0u);
  EXPECT_GT(retried.report.fault->retried.size(), 0u);
  EXPECT_GT(retried.report.fault->attempts, lossy.report.fault->attempts);
  EXPECT_LE(retried.report.fault->inconclusive, lossy.report.fault->inconclusive);
}

}  // namespace
}  // namespace topo::fault
