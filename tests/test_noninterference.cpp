// Tests for the non-interference extension (§6.3, Appendix C): V1/V2
// verification and the Theorem C.2 replay experiment — with both conditions
// holding, the measured and unmeasured worlds include identical transactions.

#include <gtest/gtest.h>

#include "core/noninterference.h"
#include "core/toposhot.h"
#include "eth/miner.h"
#include "graph/generators.h"

namespace topo::core {
namespace {

TEST(NonInterference, V1FailsOnNonFullBlock) {
  eth::Chain chain(2 * eth::kTransferGas);
  eth::TxFactory f;
  eth::Block b;
  b.timestamp = 1.0;
  b.txs.push_back(f.make(1, 0, 100));  // only half-full
  chain.commit(std::move(b));
  const auto check = verify_noninterference(chain, 0.0, 2.0, 0.0, 10);
  EXPECT_FALSE(check.v1_blocks_full);
  EXPECT_TRUE(check.v2_prices_above_y0);
  EXPECT_FALSE(check.holds());
}

TEST(NonInterference, V2FailsOnCheapIncludedTx) {
  eth::Chain chain(2 * eth::kTransferGas);
  eth::TxFactory f;
  eth::Block b;
  b.timestamp = 1.0;
  b.txs.push_back(f.make(1, 0, 100));
  b.txs.push_back(f.make(2, 0, 5));  // at/below Y0
  chain.commit(std::move(b));
  const auto check = verify_noninterference(chain, 0.0, 2.0, 0.0, 5);
  EXPECT_TRUE(check.v1_blocks_full);
  EXPECT_FALSE(check.v2_prices_above_y0);
}

TEST(NonInterference, HoldsOnFullExpensiveBlocks) {
  eth::Chain chain(2 * eth::kTransferGas);
  eth::TxFactory f;
  for (int i = 0; i < 3; ++i) {
    eth::Block b;
    b.timestamp = 1.0 + i;
    b.txs.push_back(f.make(10 + i, 0, 1000));
    b.txs.push_back(f.make(20 + i, 0, 2000));
    chain.commit(std::move(b));
  }
  const auto check = verify_noninterference(chain, 0.0, 2.0, 2.0, 10);
  EXPECT_TRUE(check.holds());
  EXPECT_EQ(check.blocks_inspected, 3u);
}

TEST(NonInterference, EmptyWindowDoesNotHold) {
  eth::Chain chain(1'000'000);
  const auto check = verify_noninterference(chain, 0.0, 1.0, 0.0, 10);
  EXPECT_FALSE(check.holds());
}

TEST(NonInterference, SameIncludedComparesModuloMeasurementAccounts) {
  eth::TxFactory f;
  const auto user_tx = f.make(1, 0, 100);
  const auto meas_tx = f.make(99, 0, 5);

  eth::Block with;
  with.txs = {user_tx, meas_tx};
  eth::Block without;
  without.txs = {user_tx};

  EXPECT_TRUE(same_included_transactions({with}, {without}, {99}));
  EXPECT_FALSE(same_included_transactions({with}, {without}, {}));
  EXPECT_FALSE(same_included_transactions({with}, {}, {99})) << "length mismatch";
}

// The Theorem C.2 experiment: run the same world twice — once with a
// TopoShot measurement, once without — under an identical mining schedule,
// and compare the included transactions per block.
TEST(NonInterference, TheoremC2ReplayExperiment) {
  auto run_world = [](bool measure) {
    util::Rng rng(17);
    graph::Graph g = graph::erdos_renyi_gnm(10, 20, rng);
    ScenarioOptions opt;
    opt.seed = 17;
    opt.mempool_capacity = 256;
    opt.future_cap = 64;
    opt.background_txs = 224;  // high-priced organic load keeps blocks full
    opt.background_price_lo = eth::gwei(5.0);
    opt.background_price_hi = eth::gwei(50.0);
    // Small blocks so every block is full (V1).
    opt.block_gas_limit = 4 * eth::kTransferGas;
    Scenario sc(g, opt);
    sc.seed_background();
    sc.net().start_mining({sc.targets()[0]}, 5.0);

    MeasureConfig cfg = sc.default_measure_config();
    cfg.price_Y = eth::gwei(0.01);  // far below every organic price (V2 safe)
    double t1 = sc.sim().now();
    if (measure) {
      sc.measure_one_link(sc.targets()[1], sc.targets()[2], cfg);
    }
    sc.sim().run_until(120.0);
    double t2 = sc.sim().now();
    return std::tuple{sc.chain().blocks(),
                      verify_noninterference(sc.chain(), t1, t2, 0.0, cfg.price_Y)};
  };

  const auto [with_blocks, with_check] = run_world(true);
  const auto [without_blocks, without_check] = run_world(false);

  EXPECT_TRUE(with_check.v1_blocks_full);
  EXPECT_TRUE(with_check.v2_prices_above_y0);
  ASSERT_EQ(with_blocks.size(), without_blocks.size());
  // Identical non-measurement transactions per block (Theorem C.2). The
  // measurement accounts differ per run, but since V2 holds no measurement
  // transaction was included at all, so the full sets must match.
  EXPECT_TRUE(same_included_transactions(with_blocks, without_blocks, {}));
}

}  // namespace
}  // namespace topo::core
