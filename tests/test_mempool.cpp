// Unit and property tests for the parameterized mempool (paper Table 2
// semantics): classification, replacement, eviction, maintenance, EIP-1559.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "eth/account.h"
#include "eth/transaction.h"
#include "mempool/client_profile.h"
#include "mempool/mempool.h"
#include "util/rng.h"

namespace topo::mempool {
namespace {

using eth::Address;
using eth::Nonce;
using eth::Transaction;
using eth::TxFactory;
using eth::Wei;

MempoolPolicy small_policy() {
  MempoolPolicy p;
  p.capacity = 8;
  p.future_cap = 4;
  p.replace_bump_bp = 1000;
  p.max_futures_per_account = 4;
  p.min_pending_for_eviction = 0;
  p.expiry_seconds = 100.0;
  return p;
}

class MempoolTest : public ::testing::Test {
 protected:
  eth::MapState state;
  TxFactory f;

  Mempool make(MempoolPolicy p = small_policy()) { return Mempool(p, &state); }
};

TEST_F(MempoolTest, PendingVsFutureClassification) {
  auto pool = make();
  EXPECT_EQ(pool.add(f.make(1, 0, 100), 0.0).code, AdmitCode::kAddedPending);
  EXPECT_EQ(pool.add(f.make(1, 1, 100), 0.0).code, AdmitCode::kAddedPending);
  EXPECT_EQ(pool.add(f.make(1, 3, 100), 0.0).code, AdmitCode::kAddedFuture);
  EXPECT_EQ(pool.pending_count(), 2u);
  EXPECT_EQ(pool.future_count(), 1u);
}

TEST_F(MempoolTest, GapFillPromotesFutures) {
  auto pool = make();
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(1, 2, 100), 0.0);
  pool.add(f.make(1, 3, 100), 0.0);
  EXPECT_EQ(pool.future_count(), 2u);
  const auto result = pool.add(f.make(1, 1, 100), 0.0);
  EXPECT_EQ(result.code, AdmitCode::kAddedPending);
  EXPECT_EQ(result.promoted.size(), 2u) << "nonces 2 and 3 should promote";
  EXPECT_EQ(pool.pending_count(), 4u);
  EXPECT_EQ(pool.future_count(), 0u);
}

TEST_F(MempoolTest, StaleNonceRejected) {
  state.set_next_nonce(1, 5);
  auto pool = make();
  EXPECT_EQ(pool.add(f.make(1, 4, 100), 0.0).code, AdmitCode::kRejectedStaleNonce);
  EXPECT_EQ(pool.add(f.make(1, 5, 100), 0.0).code, AdmitCode::kAddedPending);
}

TEST_F(MempoolTest, DuplicateHashRejected) {
  auto pool = make();
  const auto tx = f.make(1, 0, 100);
  EXPECT_TRUE(pool.add(tx, 0.0).admitted());
  EXPECT_EQ(pool.add(tx, 0.0).code, AdmitCode::kRejectedDuplicate);
}

TEST_F(MempoolTest, ReplacementRequiresBump) {
  auto pool = make();
  pool.add(f.make(1, 0, 1000), 0.0);
  // 9.99% bump: rejected.
  EXPECT_EQ(pool.add(f.make(1, 0, 1099), 0.0).code,
            AdmitCode::kRejectedUnderpricedReplacement);
  // Exactly 10%: accepted.
  const auto result = pool.add(f.make(1, 0, 1100), 0.0);
  EXPECT_EQ(result.code, AdmitCode::kReplaced);
  ASSERT_TRUE(result.replaced.has_value());
  EXPECT_EQ(result.replaced->gas_price, 1000u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.find(1, 0)->gas_price, 1100u);
}

TEST_F(MempoolTest, ReplacementAllowedWhenPoolFull) {
  auto pool = make();
  for (int i = 0; i < 8; ++i) pool.add(f.make(10 + i, 0, 100), 0.0);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.add(f.make(10, 0, 200), 0.0).code, AdmitCode::kReplaced);
  EXPECT_EQ(pool.size(), 8u);
}

TEST_F(MempoolTest, ZeroBumpAllowsEqualPriceReplacement) {
  // The Aleth/Nethermind flaw reported in §5.1.
  MempoolPolicy p = small_policy();
  p.replace_bump_bp = 0;
  auto pool = make(p);
  pool.add(f.make(1, 0, 1000), 0.0);
  EXPECT_EQ(pool.add(f.make(1, 0, 1000), 0.0).code, AdmitCode::kReplaced);
  EXPECT_EQ(pool.add(f.make(1, 0, 999), 0.0).code,
            AdmitCode::kRejectedUnderpricedReplacement);
}

TEST_F(MempoolTest, EvictionRemovesCheapestWhenFull) {
  auto pool = make();
  for (int i = 0; i < 8; ++i) pool.add(f.make(10 + i, 0, 100 + i), 0.0);
  const auto result = pool.add(f.make(99, 0, 500), 0.0);
  EXPECT_EQ(result.code, AdmitCode::kAddedPending);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].gas_price, 100u);
  EXPECT_EQ(pool.size(), 8u);
}

TEST_F(MempoolTest, UnderpricedIncomerRejectedWhenFull) {
  auto pool = make();
  for (int i = 0; i < 8; ++i) pool.add(f.make(10 + i, 0, 100), 0.0);
  EXPECT_EQ(pool.add(f.make(99, 0, 100), 0.0).code, AdmitCode::kRejectedPoolFull);
  EXPECT_EQ(pool.add(f.make(99, 0, 50), 0.0).code, AdmitCode::kRejectedPoolFull);
}

TEST_F(MempoolTest, FutureEvictionGatedByMinPending) {
  MempoolPolicy p = small_policy();
  p.min_pending_for_eviction = 5;
  auto pool = make(p);
  // 4 pending + 4 futures = full, pending below the P=5 gate.
  for (int i = 0; i < 4; ++i) pool.add(f.make(10 + i, 0, 100), 0.0);
  for (int i = 0; i < 4; ++i) pool.add(f.make(20 + i, 1, 100), 0.0);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.add(f.make(99, 1, 500), 0.0).code, AdmitCode::kRejectedEvictionForbidden);
  // A pending incomer is not gated by P.
  EXPECT_EQ(pool.add(f.make(99, 0, 500), 0.0).code, AdmitCode::kAddedPending);
}

TEST_F(MempoolTest, FutureLimitPerAccount) {
  auto pool = make();  // U = 4
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.add(f.make(1, 1 + i, 100), 0.0).code, AdmitCode::kAddedFuture);
  }
  EXPECT_EQ(pool.add(f.make(1, 10, 100), 0.0).code, AdmitCode::kRejectedFutureLimit);
  // Other accounts are unaffected.
  EXPECT_EQ(pool.add(f.make(2, 1, 100), 0.0).code, AdmitCode::kAddedFuture);
}

TEST_F(MempoolTest, EvictingMidNonceDemotesFollowers) {
  auto pool = make();
  pool.add(f.make(1, 0, 50), 0.0);   // cheapest, will be evicted
  pool.add(f.make(1, 1, 500), 0.0);
  pool.add(f.make(1, 2, 500), 0.0);
  for (int i = 0; i < 5; ++i) pool.add(f.make(10 + i, 0, 400), 0.0);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.pending_count(), 8u);
  const auto result = pool.add(f.make(99, 0, 600), 0.0);
  EXPECT_EQ(result.code, AdmitCode::kAddedPending);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].gas_price, 50u);
  // Sender 1's nonces 1 and 2 now have a gap -> futures.
  EXPECT_EQ(pool.future_count(), 2u);
}

TEST_F(MempoolTest, MaintainTruncatesFutureOverflow) {
  auto pool = make();  // future_cap = 4
  for (int i = 0; i < 6; ++i) pool.add(f.make(10 + i, 1, 100 + i), 0.0);
  EXPECT_EQ(pool.future_count(), 6u);
  const auto update = pool.maintain(1.0);
  EXPECT_EQ(update.dropped.size(), 2u);
  EXPECT_EQ(pool.future_count(), 4u);
  // Cheapest futures were dropped first.
  EXPECT_EQ(update.dropped[0].gas_price, 100u);
  EXPECT_EQ(update.dropped[1].gas_price, 101u);
}

TEST_F(MempoolTest, MaintainDropsExpired) {
  auto pool = make();  // expiry 100 s
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(2, 0, 100), 50.0);
  auto update = pool.maintain(99.0);
  EXPECT_TRUE(update.dropped.empty());
  update = pool.maintain(120.0);
  ASSERT_EQ(update.dropped.size(), 1u);
  EXPECT_EQ(update.dropped[0].sender, 1u);
  update = pool.maintain(151.0);
  ASSERT_EQ(update.dropped.size(), 1u);
  EXPECT_EQ(update.dropped[0].sender, 2u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(MempoolTest, OnBlockDropsMinedAndPromotes) {
  auto pool = make();
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(1, 1, 100), 0.0);
  pool.add(f.make(1, 3, 100), 0.0);  // future
  // Chain confirms nonces 0..2 (2 was mined elsewhere).
  state.set_next_nonce(1, 3);
  const auto update = pool.on_block();
  EXPECT_EQ(update.dropped.size(), 2u);
  ASSERT_EQ(update.promoted.size(), 1u);
  EXPECT_EQ(update.promoted[0].nonce, 3u);
  EXPECT_EQ(pool.pending_count(), 1u);
}

TEST_F(MempoolTest, MedianAndLowestPrice) {
  auto pool = make();
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(2, 0, 300), 0.0);
  pool.add(f.make(3, 0, 200), 0.0);
  EXPECT_EQ(pool.lowest_price(), 100u);
  EXPECT_EQ(pool.median_pending_price(), 200u);
}

TEST_F(MempoolTest, SnapshotsSeparatePendingFromFutures) {
  auto pool = make();
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(1, 2, 100), 0.0);
  EXPECT_EQ(pool.pending_snapshot().size(), 1u);
  EXPECT_EQ(pool.all_snapshot().size(), 2u);
}

TEST_F(MempoolTest, Eip1559AdmissionAndPruning) {
  MempoolPolicy p = small_policy();
  p.eip1559 = true;
  auto pool = make(p);
  pool.set_base_fee(100);
  EXPECT_EQ(pool.add(f.make1559(1, 0, 90, 5), 0.0).code, AdmitCode::kRejectedUnderBaseFee);
  EXPECT_EQ(pool.add(f.make1559(2, 0, 150, 5), 0.0).code, AdmitCode::kAddedPending);
  // Base fee rises above the buffered max fee -> dropped at maintenance.
  pool.set_base_fee(200);
  const auto update = pool.maintain(0.0);
  ASSERT_EQ(update.dropped.size(), 1u);
  EXPECT_EQ(update.dropped[0].sender, 2u);
}

TEST_F(MempoolTest, FuturesOnlyEvictionVariant) {
  // The DETER-countermeasure ablation: a future incomer may only displace
  // other futures, never pending transactions.
  MempoolPolicy p = small_policy();
  p.victim = EvictionVictim::kFuturesFirst;
  auto pool = make(p);
  for (int i = 0; i < 7; ++i) pool.add(f.make(10 + i, 0, 100), 0.0);  // pending @100
  pool.add(f.make(50, 1, 150), 0.0);                                  // future @150
  EXPECT_TRUE(pool.full());

  // Future incomer: evicts the cheapest future, not the cheaper pendings.
  auto result = pool.add(f.make(99, 1, 500), 0.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].gas_price, 150u);

  // Another future incomer: the only future left costs 500 — too pricey to
  // evict at 400, and pendings are protected.
  EXPECT_EQ(pool.add(f.make(98, 1, 400), 0.0).code, AdmitCode::kRejectedPoolFull);

  // A pending incomer still evicts the globally cheapest entry.
  result = pool.add(f.make(97, 0, 600), 0.0);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].gas_price, 100u);
}

// ---------------------------------------------------------------------------
// Property-style sweeps over every client profile (paper Table 3).
// ---------------------------------------------------------------------------

class ClientPolicyTest : public ::testing::TestWithParam<ClientKind> {
 protected:
  eth::MapState state;
  TxFactory f;
};

TEST_P(ClientPolicyTest, ReplacementThresholdMatchesProfile) {
  const auto& profile = profile_for(GetParam());
  Mempool pool(profile.policy, &state);
  const Wei base = 1'000'000;
  pool.add(f.make(1, 0, base), 0.0);
  const Wei min_ok = profile.policy.min_replacement_price(base);
  if (min_ok > base) {
    EXPECT_EQ(pool.add(f.make(1, 0, min_ok - 1), 0.0).code,
              AdmitCode::kRejectedUnderpricedReplacement);
  }
  EXPECT_EQ(pool.add(f.make(1, 0, min_ok), 0.0).code, AdmitCode::kReplaced);
}

TEST_P(ClientPolicyTest, ReplacementMonotoneInPrice) {
  // If price q replaces, every q' > q must replace too.
  const auto& policy = profile_for(GetParam()).policy;
  const Wei base = 777'777;
  bool seen_accept = false;
  for (Wei q = base; q <= 2 * base; q += base / 16) {
    const bool ok = policy.accepts_replacement(base, q);
    if (seen_accept) {
      EXPECT_TRUE(ok) << "non-monotone acceptance at " << q;
    }
    seen_accept = seen_accept || ok;
  }
  EXPECT_TRUE(seen_accept);
}

TEST_P(ClientPolicyTest, EvictionNeverRemovesPricierThanIncoming) {
  const auto& profile = profile_for(GetParam());
  MempoolPolicy policy = profile.policy;
  policy.capacity = 32;  // scaled for the test
  policy.future_cap = 16;
  Mempool pool(policy, &state);
  for (int i = 0; i < 32; ++i) pool.add(f.make(100 + i, 0, 100 + 10 * i), 0.0);
  const auto result = pool.add(f.make(999, 0, 250), 0.0);
  for (const auto& victim : result.evicted) {
    EXPECT_LT(victim.gas_price, 250u);
  }
}

TEST_P(ClientPolicyTest, FutureCapRespectedAfterMaintain) {
  const auto& profile = profile_for(GetParam());
  MempoolPolicy policy = profile.policy;
  policy.capacity = 64;
  policy.future_cap = 8;
  Mempool pool(policy, &state);
  const size_t u = std::min<uint64_t>(policy.max_futures_per_account, 4);
  for (int acct = 0; acct < 8; ++acct) {
    for (size_t j = 0; j < u; ++j) pool.add(f.make(10 + acct, 1 + j, 100), 0.0);
  }
  pool.maintain(0.0);
  EXPECT_LE(pool.future_count(), 8u);
}

TEST_P(ClientPolicyTest, MeasurabilityMatchesPaper) {
  const auto& profile = profile_for(GetParam());
  const bool expected = GetParam() != ClientKind::kNethermind && GetParam() != ClientKind::kAleth;
  EXPECT_EQ(profile.measurable(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllClients, ClientPolicyTest, ::testing::ValuesIn(kAllClients),
                         [](const ::testing::TestParamInfo<ClientKind>& info) {
                           return client_name(info.param);
                         });

// Sweep of capacities: eviction keeps the size invariant at L.
class CapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CapacitySweep, SizeNeverExceedsCapacity) {
  eth::MapState state;
  TxFactory f;
  MempoolPolicy policy = small_policy();
  policy.capacity = GetParam();
  policy.future_cap = GetParam();
  policy.max_futures_per_account = GetParam();
  Mempool pool(policy, &state);
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Address sender = 1 + rng.index(20);
    const Nonce nonce = rng.index(4);
    const Wei price = 100 + rng.index(1000);
    pool.add(f.make(sender, nonce, price), 0.0);
    ASSERT_LE(pool.size(), policy.capacity);
    ASSERT_EQ(pool.pending_count() + pool.future_count(), pool.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CapacitySweep, ::testing::Values(4, 8, 16, 32, 64));

TEST_F(MempoolTest, RandomPendingMatchesSnapshotDraw) {
  // random_pending(rng) must select exactly the transaction that
  // pending_snapshot()[rng.index(pending_count())] would — the contract
  // that let the re-gossip loop drop its per-tick O(pool) copy without
  // perturbing any seeded run.
  MempoolPolicy p = small_policy();
  p.capacity = 32;
  auto pool = Mempool(p, &state);
  for (int i = 0; i < 10; ++i) pool.add(f.make(1 + i, 0, 100 + i), 0.0);
  pool.add(f.make(50, 2, 100), 0.0);  // a future, skipped by both paths
  ASSERT_EQ(pool.pending_count(), 10u);

  for (uint64_t seed = 0; seed < 32; ++seed) {
    util::Rng walk_rng(seed), snap_rng(seed);
    const Transaction* got = pool.random_pending(walk_rng);
    ASSERT_NE(got, nullptr);
    const auto snapshot = pool.pending_snapshot();
    const Transaction& want = snapshot[snap_rng.index(pool.pending_count())];
    EXPECT_EQ(got->hash(), want.hash()) << "seed " << seed;
  }
}

TEST_F(MempoolTest, RandomPendingEmptyPoolDrawsNothing) {
  auto pool = make();
  util::Rng rng(7), untouched(7);
  EXPECT_EQ(pool.random_pending(rng), nullptr);
  // No pending entries -> no RNG consumption (determinism contract).
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST_F(MempoolTest, ClearEmptiesEverything) {
  auto pool = make();
  pool.add(f.make(1, 0, 100), 0.0);
  pool.add(f.make(1, 1, 120), 0.0);
  pool.add(f.make(2, 3, 100), 0.0);  // future
  ASSERT_GT(pool.size(), 0u);

  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pending_count(), 0u);
  EXPECT_EQ(pool.future_count(), 0u);
  EXPECT_FALSE(pool.contains(f.make(1, 0, 100).hash()));
  EXPECT_TRUE(pool.pending_snapshot().empty());

  // The pool keeps working after a wipe (crash/restart path).
  EXPECT_EQ(pool.add(f.make(3, 0, 100), 1.0).code, AdmitCode::kAddedPending);
  EXPECT_EQ(pool.pending_count(), 1u);
}

// An eviction-flood spike grows the index's backing heap far beyond its
// steady-state occupancy; once the flood drains, the allocation must come
// back down instead of riding along in every world forked afterwards.
TEST(FlatPriceIndex, ReleasesCapacityAfterEvictionFloodDrains) {
  FlatPriceIndex idx;
  constexpr size_t kFlood = 4096;
  for (size_t i = 0; i < kFlood; ++i) {
    idx.insert({static_cast<eth::Wei>(100 + i), i});
  }
  const size_t spike = idx.heap_capacity();
  ASSERT_GE(spike, kFlood);

  // Drain down to a handful of survivors, always via the min() victim path
  // (the eviction protocol's access pattern — direct pops, no tombstones).
  while (idx.size() > 8) idx.erase(idx.min());
  EXPECT_EQ(idx.size(), 8u);
  EXPECT_LT(idx.heap_capacity(), spike / 4)
      << "flood-sized allocation survived the drain";

  // Still a working min-heap after the shrink: survivors come out cheapest
  // first, and fresh inserts order correctly against them.
  idx.insert({1, 999999});
  EXPECT_EQ(idx.min().second, 999999u);
  idx.erase(idx.min());
  eth::Wei last = 0;
  while (!idx.empty()) {
    const auto [price, id] = idx.min();
    EXPECT_GE(price, last);
    last = price;
    idx.erase({price, id});
  }
}

// The tombstone path (erasing keys buried mid-heap) must also release the
// tombstone heap's allocation once compaction sweeps it.
TEST(FlatPriceIndex, CompactionReleasesTombstoneCapacity) {
  FlatPriceIndex idx;
  constexpr size_t kN = 2048;
  for (size_t i = 0; i < kN; ++i) {
    idx.insert({static_cast<eth::Wei>(100 + i), i});
  }
  // Erase from the expensive end: every erase is a buried key (never the
  // min), so tombstones pile up until compact() fires.
  obs::MetricsRegistry reg;
  obs::Counter& compactions = reg.counter("compactions");
  obs::Gauge& peak = reg.gauge("tombstone_peak");
  for (size_t i = kN; i-- > 16;) {
    idx.erase({static_cast<eth::Wei>(100 + i), i}, &compactions, &peak);
  }
  EXPECT_GT(compactions.value(), 0u);
  EXPECT_GT(peak.max(), 0.0);
  EXPECT_EQ(idx.size(), 16u);
  EXPECT_LT(idx.heap_capacity(), kN / 4);
  EXPECT_LT(idx.tombstone_capacity(), kN / 4);
  // Survivors are exactly the cheapest 16, in order.
  for (size_t i = 0; i < 16; ++i) {
    const auto [price, id] = idx.min();
    EXPECT_EQ(id, i);
    EXPECT_EQ(price, static_cast<eth::Wei>(100 + i));
    idx.erase({price, id});
  }
  EXPECT_TRUE(idx.empty());
}

}  // namespace
}  // namespace topo::mempool
