// Tests for centrality / robustness analytics (the §3 use-case toolkit).

#include <gtest/gtest.h>

#include "graph/centrality.h"
#include "graph/generators.h"

namespace topo::graph {
namespace {

Graph path4() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Betweenness, PathGraphValues) {
  const auto bc = betweenness_centrality(path4());
  // Endpoints lie on no shortest paths; node1 carries (0-2),(0-3);
  // node2 carries (0-3),(1-3).
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);
  EXPECT_DOUBLE_EQ(bc[2], 2.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
  Graph star(5);
  for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
  const auto bc = betweenness_centrality(star);
  EXPECT_DOUBLE_EQ(bc[0], 6.0);  // C(4,2) leaf pairs
  for (NodeId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, SplitPathsShareCredit) {
  // Diamond: 0-1-3, 0-2-3; each middle node carries half of pair (0,3).
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(Articulation, PathInteriorNodesAreCuts) {
  const auto cuts = articulation_points(path4());
  EXPECT_EQ(cuts, (std::vector<NodeId>{1, 2}));
}

TEST(Articulation, CycleHasNone) {
  Graph ring(5);
  for (NodeId u = 0; u < 5; ++u) ring.add_edge(u, (u + 1) % 5);
  EXPECT_TRUE(articulation_points(ring).empty());
}

TEST(Articulation, BridgeNodeBetweenCliques) {
  // Two triangles joined through node 3.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(4, 6);
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{2, 3, 4}));
}

TEST(CoreNumbers, CliqueWithTail) {
  // K4 (core 3) with a pendant chain (core 1).
  Graph g(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto core = core_numbers(g);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(core[u], 3u) << "clique member " << u;
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreNumbers, RegularRingIsTwoCore) {
  Graph ring(8);
  for (NodeId u = 0; u < 8; ++u) ring.add_edge(u, (u + 1) % 8);
  for (size_t c : core_numbers(ring)) EXPECT_EQ(c, 2u);
}

TEST(Closeness, StarCenterHighest) {
  Graph star(5);
  for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
  const auto cc = closeness_centrality(star);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);           // distance 1 to all
  EXPECT_DOUBLE_EQ(cc[1], 4.0 / 7.0);     // 1 + 2*3
  EXPECT_GT(cc[0], cc[1]);
}

TEST(Removal, LargestComponentShrinks) {
  const auto g = path4();
  EXPECT_EQ(largest_component_after_removal(g, {}), 4u);
  EXPECT_EQ(largest_component_after_removal(g, {1}), 2u);
  EXPECT_EQ(largest_component_after_removal(g, {0}), 3u);
  EXPECT_EQ(largest_component_after_removal(g, {0, 1, 2, 3}), 0u);
}

TEST(Fingerprints, UniqueAndAmbiguousSets) {
  // Star: every leaf has the identical neighbor set {0} -> ambiguous; the
  // center is unique.
  Graph star(5);
  for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
  const auto fp = neighbor_fingerprints(star);
  EXPECT_EQ(fp.unique, 1u);
  EXPECT_EQ(fp.ambiguous, 4u);
  EXPECT_NEAR(fp.unique_fraction(), 0.2, 1e-12);

  // A path: all neighbor sets differ.
  const auto fp2 = neighbor_fingerprints(path4());
  EXPECT_EQ(fp2.unique, 4u);
  EXPECT_EQ(fp2.ambiguous, 0u);
}

TEST(Centrality, RandomGraphSanity) {
  util::Rng rng(7);
  const auto g = erdos_renyi_gnm(60, 180, rng);
  const auto bc = betweenness_centrality(g);
  const auto cc = closeness_centrality(g);
  const auto cores = core_numbers(g);
  ASSERT_EQ(bc.size(), 60u);
  for (double v : bc) EXPECT_GE(v, 0.0);
  for (double v : cc) EXPECT_GE(v, 0.0);
  // Core number never exceeds degree.
  for (NodeId u = 0; u < 60; ++u) EXPECT_LE(cores[u], g.degree(u));
}

}  // namespace
}  // namespace topo::graph
