// Tests for the JSON value/parser and the simulated Ethereum JSON-RPC
// endpoint — the interface the paper's validation tooling drives.

#include <gtest/gtest.h>

#include "core/toposhot.h"
#include "p2p/node.h"
#include "rpc/rpc.h"
#include "wire/messages.h"

namespace topo::rpc {
namespace {

// -- JSON -------------------------------------------------------------------

TEST(Json, ParseAndDumpRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,-3],"b":"hi\nthere","c":{"nested":true},"d":null,"e":false})";
  auto v = Json::parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE((*v)["a"].is_array());
  EXPECT_DOUBLE_EQ((*v)["a"][1].as_number(), 2.5);
  EXPECT_EQ((*v)["b"].as_string(), "hi\nthere");
  EXPECT_TRUE((*v)["c"]["nested"].as_bool());
  EXPECT_TRUE((*v)["d"].is_null());
  EXPECT_TRUE((*v)["missing"].is_null());

  auto again = Json::parse(v->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(*again == *v);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("true false").has_value()) << "trailing tokens";
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, UnicodeEscapes) {
  auto v = Json::parse(R"("Aé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9");
}

TEST(Json, SurrogatePairsDecodeToSupplementaryPlane) {
  // U+1F600 (emoji, supplementary plane) arrives as a \uD83D\uDE00 pair
  // and must decode to the 4-byte UTF-8 sequence.
  auto v = Json::parse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\xf0\x9f\x98\x80");
  // Lower-case hex and surrounding text both survive.
  auto mixed = Json::parse(R"("a\ud83d\ude00z")");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->as_string(), "a\xf0\x9f\x98\x80z");
  // Round trip: the serializer emits raw UTF-8, which reparses identically.
  auto again = Json::parse(v->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->as_string(), v->as_string());
}

TEST(Json, LoneSurrogatesAreParseErrors) {
  EXPECT_FALSE(Json::parse(R"("\uD83D")").has_value()) << "high without low";
  EXPECT_FALSE(Json::parse(R"("\uDE00")").has_value()) << "low without high";
  EXPECT_FALSE(Json::parse(R"("\uD83Dx")").has_value()) << "high then raw char";
  EXPECT_FALSE(Json::parse(R"("\uD83D\n")").has_value()) << "high then other escape";
  EXPECT_FALSE(Json::parse(R"("\uD83D\uD83D")").has_value()) << "high then high";
  EXPECT_FALSE(Json::parse(R"("\uD83DA")").has_value()) << "high then BMP";
  EXPECT_FALSE(Json::parse(R"("\uD8")").has_value()) << "truncated digits";
}

TEST(Json, BmpEscapesStillDecode) {
  auto ascii = Json::parse(R"("\u0041")");
  ASSERT_TRUE(ascii.has_value());
  EXPECT_EQ(ascii->as_string(), "A");
  auto three_byte = Json::parse(R"("\u20AC")");  // euro sign
  ASSERT_TRUE(three_byte.has_value());
  EXPECT_EQ(three_byte->as_string(), "\xe2\x82\xac");
}

TEST(Json, HexHelpers) {
  EXPECT_EQ(to_hex_quantity(0), "0x0");
  EXPECT_EQ(to_hex_quantity(26), "0x1a");
  EXPECT_EQ(from_hex_quantity("0x1a"), 26u);
  EXPECT_FALSE(from_hex_quantity("1a").has_value());
  EXPECT_FALSE(from_hex_quantity("0xzz").has_value());
  const std::vector<uint8_t> bytes{0xde, 0xad, 0x01};
  EXPECT_EQ(to_hex_bytes(bytes), "0xdead01");
  EXPECT_EQ(from_hex_bytes("0xdead01"), bytes);
  EXPECT_FALSE(from_hex_bytes("0xabc").has_value()) << "odd digit count";
}

TEST(Json, HashHexRoundTrip) {
  const eth::TxHash h = 0x0123456789abcdefULL;
  const std::string hex = hash_to_hex(h);
  EXPECT_EQ(hex.size(), 2 + 64u);
  EXPECT_EQ(hash_from_hex(hex), h);
  EXPECT_FALSE(hash_from_hex("0x01").has_value());
}

// -- RPC endpoint -----------------------------------------------------------

struct RpcWorld {
  graph::Graph g{3};
  core::Scenario sc;
  RpcServer server;
  RpcClient client;

  RpcWorld()
      : sc(
            [] {
              graph::Graph g(3);
              g.add_edge(0, 1);
              g.add_edge(1, 2);
              g.add_edge(0, 2);
              return g;
            }(),
            [] {
              core::ScenarioOptions opt;
              opt.seed = 12;
              opt.mempool_capacity = 128;
              opt.future_cap = 32;
              opt.background_txs = 0;
              return opt;
            }()),
        server(&sc.net(), sc.targets()[0], 3),
        client(&server) {}
};

TEST(Rpc, ClientVersionAndNetVersion) {
  RpcWorld w;
  auto version = w.client.client_version();
  ASSERT_TRUE(version.has_value());
  EXPECT_NE(version->find("Geth"), std::string::npos);
  auto net = w.client.call("net_version");
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->as_string(), "3");
}

TEST(Rpc, ServiceCodenameAppearsInClientVersion) {
  RpcWorld w;
  w.sc.net().node(w.sc.targets()[0]).mutable_config().service = "SrvR1";
  auto version = w.client.client_version();
  ASSERT_TRUE(version.has_value());
  EXPECT_NE(version->find("SrvR1"), std::string::npos)
      << "the codename the §6.3 discovery step matches against";
}

TEST(Rpc, SendRawTransactionAndLookup) {
  RpcWorld w;
  const eth::Address a = w.sc.accounts().create_one();
  const auto tx = w.sc.factory().make(a, 0, 5000);

  EXPECT_FALSE(w.client.has_transaction(tx.hash()));
  auto hash = w.client.send_raw_transaction(tx);
  ASSERT_TRUE(hash.has_value());
  EXPECT_EQ(*hash, hash_to_hex(tx.hash()));
  EXPECT_TRUE(w.client.has_transaction(tx.hash()));

  // The submission propagates like any local tx.
  w.sc.sim().run_until(w.sc.sim().now() + 3.0);
  EXPECT_TRUE(w.sc.net().node(w.sc.targets()[1]).pool().contains(tx.hash()));

  // Re-submission is a duplicate -> RPC error.
  EXPECT_FALSE(w.client.send_raw_transaction(tx).has_value());
}

TEST(Rpc, GetTransactionReportsEvictionAndInclusion) {
  RpcWorld w;
  const eth::Address a = w.sc.accounts().create_one();
  const auto tx = w.sc.factory().make(a, 0, eth::gwei(5.0));
  ASSERT_TRUE(w.client.send_raw_transaction(tx).has_value());
  ASSERT_TRUE(w.client.has_transaction(tx.hash()));

  // Mine it: the lookup flips from pooled (blockNumber null) to included.
  w.sc.net().mine_block(w.sc.targets()[0]);
  w.sc.sim().run_until(w.sc.sim().now() + 1.0);
  auto r = w.client.call("eth_getTransactionByHash", {Json(hash_to_hex(tx.hash()))});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)["blockNumber"].as_string(), "0x0");
  auto number = w.client.block_number();
  ASSERT_TRUE(number.has_value());
  EXPECT_EQ(*number, 0u);
}

TEST(Rpc, TxpoolStatusCountsPendingAndQueued) {
  RpcWorld w;
  const eth::Address a = w.sc.accounts().create_one();
  w.client.send_raw_transaction(w.sc.factory().make(a, 0, 100));
  const eth::Address b = w.sc.accounts().create_one();
  // Nonce gap -> queued. Submit via the pool directly (futures are not
  // RPC-submittable in this simplified endpoint... they are: submit works).
  w.client.send_raw_transaction(w.sc.factory().make(b, 1, 100));
  auto r = w.client.call("txpool_status");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)["pending"].as_string(), "0x1");
  EXPECT_EQ((*r)["queued"].as_string(), "0x1");

  auto content = w.client.call("txpool_content");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ((*content)["pending"].as_array().size(), 1u);
  EXPECT_EQ((*content)["queued"].as_array().size(), 1u);
}

TEST(Rpc, GasPriceReturnsPoolMedian) {
  RpcWorld w;
  for (int i = 1; i <= 5; ++i) {
    const eth::Address a = w.sc.accounts().create_one();
    w.client.send_raw_transaction(w.sc.factory().make(a, 0, 100 * i));
  }
  auto r = w.client.call("eth_gasPrice");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(from_hex_quantity(r->as_string()), 300u);
}

TEST(Rpc, AdminPeersMatchesGroundTruth) {
  RpcWorld w;
  const auto peers = w.client.peers();
  // Node 0 links to nodes 1 and 2, plus the measurement supernode M.
  EXPECT_EQ(peers.size(), w.sc.net().peers_of(w.sc.targets()[0]).size());
  for (const auto p : peers) {
    EXPECT_TRUE(w.sc.net().linked(w.sc.targets()[0], p));
  }
}

TEST(Rpc, GetBlockByNumber) {
  RpcWorld w;
  const eth::Address a = w.sc.accounts().create_one();
  const auto tx = w.sc.factory().make(a, 0, eth::gwei(3.0));
  w.client.send_raw_transaction(tx);
  w.sc.net().mine_block(w.sc.targets()[0]);

  auto block = w.client.call("eth_getBlockByNumber", {Json("0x0"), Json(true)});
  ASSERT_TRUE(block.has_value());
  ASSERT_EQ((*block)["transactions"].as_array().size(), 1u);
  EXPECT_EQ((*block)["transactions"][size_t{0}]["hash"].as_string(), hash_to_hex(tx.hash()));

  auto missing = w.client.call("eth_getBlockByNumber", {Json("0x5"), Json(false)});
  ASSERT_TRUE(missing.has_value());
  EXPECT_TRUE(missing->is_null());
}

TEST(Rpc, ErrorsForUnknownMethodAndBadRequests) {
  RpcWorld w;
  EXPECT_FALSE(w.client.call("eth_noSuchMethod").has_value());
  // Raw protocol-level checks.
  const std::string garbage = w.server.handle("not json");
  auto parsed = Json::parse(garbage);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ((*parsed)["error"]["code"].as_number(), kParseError);

  const std::string no_method = w.server.handle(R"({"jsonrpc":"2.0","id":1})");
  parsed = Json::parse(no_method);
  EXPECT_DOUBLE_EQ((*parsed)["error"]["code"].as_number(), kInvalidRequest);

  const std::string bad_params =
      w.server.handle(R"({"jsonrpc":"2.0","id":1,"method":"eth_getTransactionByHash"})");
  parsed = Json::parse(bad_params);
  EXPECT_DOUBLE_EQ((*parsed)["error"]["code"].as_number(), kInvalidParams);
}

// -- JSON-RPC 2.0 batch framing ---------------------------------------------

TEST(Rpc, BatchArrayAnswersEveryRequestInOrder) {
  RpcWorld w;
  const std::string batch =
      R"([{"jsonrpc":"2.0","id":7,"method":"net_version"},)"
      R"({"jsonrpc":"2.0","id":8,"method":"eth_noSuchMethod"},)"
      R"({"jsonrpc":"2.0","id":9,"method":"web3_clientVersion"}])";
  const auto resp = Json::parse(w.server.handle(batch));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->is_array());
  ASSERT_EQ(resp->as_array().size(), 3u);
  // Responses come back in request order, errors included inline.
  EXPECT_DOUBLE_EQ((*resp)[size_t{0}]["id"].as_number(), 7.0);
  EXPECT_EQ((*resp)[size_t{0}]["result"].as_string(), "3");
  EXPECT_DOUBLE_EQ((*resp)[size_t{1}]["id"].as_number(), 8.0);
  EXPECT_DOUBLE_EQ((*resp)[size_t{1}]["error"]["code"].as_number(), kMethodNotFound);
  EXPECT_DOUBLE_EQ((*resp)[size_t{2}]["id"].as_number(), 9.0);
  EXPECT_NE((*resp)[size_t{2}]["result"].as_string().find("Geth"), std::string::npos);
}

TEST(Rpc, BatchResponsesRoundTripThroughTheSerializedTransport) {
  // The response document itself is valid JSON that reparses to the same
  // value — the round trip an HTTP client would perform.
  RpcWorld w;
  const std::string batch =
      R"([{"jsonrpc":"2.0","id":1,"method":"net_version"},)"
      R"({"jsonrpc":"2.0","id":2,"method":"eth_blockNumber"}])";
  const std::string wire = w.server.handle(batch);
  const auto first = Json::parse(wire);
  ASSERT_TRUE(first.has_value());
  const auto second = Json::parse(first->dump());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(*first == *second);
}

TEST(Rpc, EmptyBatchIsASingleInvalidRequestError) {
  RpcWorld w;
  const auto resp = Json::parse(w.server.handle("[]"));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->is_object()) << "one error object, not an array";
  EXPECT_DOUBLE_EQ((*resp)["error"]["code"].as_number(), kInvalidRequest);
  EXPECT_TRUE((*resp)["id"].is_null());
}

TEST(Rpc, NotificationsEarnNoResponseEntry) {
  RpcWorld w;
  // A notification is a request object *without* an "id" member; it is
  // dispatched but contributes nothing to the response array. An explicit
  // null id is NOT a notification.
  const std::string batch =
      R"([{"jsonrpc":"2.0","method":"net_version"},)"
      R"({"jsonrpc":"2.0","id":1,"method":"net_version"},)"
      R"({"jsonrpc":"2.0","id":null,"method":"net_version"}])";
  const auto resp = Json::parse(w.server.handle(batch));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->is_array());
  ASSERT_EQ(resp->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ((*resp)[size_t{0}]["id"].as_number(), 1.0);
  EXPECT_TRUE((*resp)[size_t{1}]["id"].is_null());
}

TEST(Rpc, AllNotificationBatchYieldsNoResponseDocument) {
  RpcWorld w;
  const std::string batch =
      R"([{"jsonrpc":"2.0","method":"net_version"},)"
      R"({"jsonrpc":"2.0","method":"eth_blockNumber"}])";
  EXPECT_EQ(w.server.handle(batch), "") << "HTTP 204 territory: no body at all";
}

TEST(Rpc, BatchWithInvalidEntriesStillAnswersThem) {
  RpcWorld w;
  // Non-object entries are invalid requests, answered in place with a null
  // id (there is no id to echo).
  const std::string batch = R"([42, {"jsonrpc":"2.0","id":3,"method":"net_version"}])";
  const auto resp = Json::parse(w.server.handle(batch));
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->is_array());
  ASSERT_EQ(resp->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ((*resp)[size_t{0}]["error"]["code"].as_number(), kInvalidRequest);
  EXPECT_TRUE((*resp)[size_t{0}]["id"].is_null());
  EXPECT_EQ((*resp)[size_t{1}]["result"].as_string(), "3");
}

TEST(Rpc, BatchSideEffectsApplyInBatchOrder) {
  // Submissions inside one batch are real: both transactions land in the
  // pool, and the duplicate re-submission errors — exactly as if the three
  // requests had arrived one by one.
  RpcWorld w;
  const eth::Address a = w.sc.accounts().create_one();
  const auto tx = w.sc.factory().make(a, 0, 5000);
  const std::string raw = to_hex_bytes(wire::encode_transaction(tx));
  const std::string batch =
      R"([{"jsonrpc":"2.0","id":1,"method":"eth_sendRawTransaction","params":[")" + raw +
      R"("]},{"jsonrpc":"2.0","id":2,"method":"eth_sendRawTransaction","params":[")" + raw +
      R"("]}])";
  const auto resp = Json::parse(w.server.handle(batch));
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->as_array().size(), 2u);
  EXPECT_EQ((*resp)[size_t{0}]["result"].as_string(), hash_to_hex(tx.hash()));
  EXPECT_FALSE((*resp)[size_t{1}]["error"].is_null()) << "duplicate submission";
  EXPECT_TRUE(w.client.has_transaction(tx.hash()));
}

TEST(Rpc, ValidationWorkflowChecksTxcEviction) {
  // The §6.1 validation flow end-to-end over RPC: plant txC on B, flood,
  // and confirm via eth_getTransactionByHash that txC is gone.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  core::ScenarioOptions opt;
  opt.seed = 13;
  opt.mempool_capacity = 128;
  opt.future_cap = 32;
  opt.background_txs = 96;
  core::Scenario sc(g, opt);
  sc.seed_background();
  RpcServer server_b(&sc.net(), sc.targets()[1], 3);
  RpcClient rpc_b(&server_b);

  auto cfg = sc.default_measure_config();
  const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected);
  EXPECT_FALSE(rpc_b.has_transaction(r.txc_hash)) << "txC evicted per RPC";
  EXPECT_TRUE(rpc_b.has_transaction(r.txa_hash)) << "txA replaced txB on B";
}

}  // namespace
}  // namespace topo::rpc
