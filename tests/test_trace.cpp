// Coverage for the causal-tracing layer (obs/span.*), the TraceRing visit
// API, and the diagnostics report annex: span nesting and stable ids,
// Chrome-trace schema, strict annex round-trips, and the cause plumbing
// through the serial one-link driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/report_io.h"
#include "core/toposhot.h"
#include "graph/generators.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/cli.h"

namespace topo {
namespace {

// -- TraceRing visit / export totals ----------------------------------------

TEST(TraceRing, VisitMatchesEventsBeforeAndAfterWrap) {
  obs::TraceRing ring(4);
  auto collect = [&ring] {
    std::vector<obs::TraceEvent> out;
    ring.visit([&out](const obs::TraceEvent& e) { out.push_back(e); });
    return out;
  };

  for (uint64_t i = 0; i < 3; ++i) ring.push(0.1 * i, obs::TraceKind::kTxInjected, i);
  EXPECT_EQ(collect(), ring.events()) << "pre-wrap walk";
  EXPECT_EQ(ring.total_pushed(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);

  for (uint64_t i = 3; i < 10; ++i) ring.push(0.1 * i, obs::TraceKind::kTxEvicted, i);
  const auto walked = collect();
  EXPECT_EQ(walked, ring.events()) << "post-wrap walk";
  ASSERT_EQ(walked.size(), 4u);
  EXPECT_EQ(walked.front().subject, 6u) << "oldest surviving event first";
  EXPECT_EQ(walked.back().subject, 9u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(TraceRing, ExportCarriesLifetimeTotals) {
  obs::TraceRing ring(2);
  for (uint64_t i = 0; i < 5; ++i) ring.push(double(i), obs::TraceKind::kTxForwarded, i);
  const rpc::Json doc = obs::trace_to_json(ring);
  EXPECT_EQ(static_cast<uint64_t>(doc["total_pushed"].as_number()), 5u);
  EXPECT_EQ(static_cast<uint64_t>(doc["dropped"].as_number()), 3u);
  EXPECT_EQ(doc["events"].as_array().size(), 2u);
}

// -- stable span ids ---------------------------------------------------------

TEST(SpanIds, PackingIsInjectiveAcrossCoordinates) {
  // Same coordinates, different kinds → different ids; different
  // coordinates never collide within a kind.
  EXPECT_NE(obs::shard_span_id(0), obs::batch_span_id(0, 0));
  EXPECT_NE(obs::batch_span_id(0, 0), obs::pair_span_id(0, 0, 0));
  EXPECT_NE(obs::pair_span_id(1, 2, 3), obs::pair_span_id(1, 3, 2));
  EXPECT_NE(obs::pair_span_id(2, 1, 3), obs::pair_span_id(3, 1, 2));
  // Ordinal ids live in their own (bit-63) namespace.
  EXPECT_NE(obs::ordinal_span_id(0, 0, obs::SpanKind::kObserve) >> 63, 0u);
  EXPECT_EQ(obs::pair_span_id(5, 9, 100) >> 63, 0u);
  // The kind nibble is recoverable from any id.
  EXPECT_EQ(obs::batch_span_id(7, 31) & 0xF, static_cast<uint64_t>(obs::SpanKind::kBatch));
  EXPECT_EQ(obs::ordinal_span_id(7, 31, obs::SpanKind::kRetryRound) & 0xF,
            static_cast<uint64_t>(obs::SpanKind::kRetryRound));
}

// -- SpanTracer nesting ------------------------------------------------------

TEST(SpanTracer, RecordsNestedStructureWithScopedParents) {
  obs::SpanTracer tr(3);
  const uint64_t shard =
      tr.open(obs::SpanKind::kShard, 0.0, obs::shard_span_id(3), obs::kCampaignSpanId, 3, 2);
  tr.set_scope(shard);
  tr.set_batch(5);
  const uint64_t batch = tr.open(obs::SpanKind::kBatch, 1.0, obs::batch_span_id(3, 5), shard, 5, 1);
  const uint64_t prev = tr.set_scope(batch);
  EXPECT_EQ(prev, shard);

  const uint64_t pair = tr.open_pair_at(0, 1.5, 10, 11);
  EXPECT_EQ(pair, obs::pair_span_id(3, 5, 0));
  const uint64_t pair_scope = tr.set_scope(pair);
  const uint64_t phase = tr.open_auto(obs::SpanKind::kPlantTxC, 1.6, 10);
  tr.close(phase, 2.0);
  tr.set_scope(pair_scope);
  tr.close_pair(pair, 3.0, 2, obs::ProbeCause::kTxANeverReturned);
  tr.close(batch, 3.5);
  tr.set_scope(0);
  tr.close(shard, 4.0);

  auto find = [&tr](uint64_t id) {
    const auto& v = tr.spans();
    return *std::find_if(v.begin(), v.end(), [id](const obs::Span& s) { return s.id == id; });
  };
  EXPECT_EQ(find(shard).parent, obs::kCampaignSpanId);
  EXPECT_EQ(find(batch).parent, shard);
  EXPECT_EQ(find(pair).parent, batch);
  EXPECT_EQ(find(phase).parent, pair);
  EXPECT_EQ(find(phase).shard, 3u);
  const obs::Span& p = find(pair);
  EXPECT_EQ(p.verdict, 2) << "negative";
  EXPECT_EQ(p.cause, obs::ProbeCause::kTxANeverReturned);
  EXPECT_DOUBLE_EQ(p.end, 3.0);
}

TEST(SpanTracer, SetBatchResetsThePairOrdinal) {
  obs::SpanTracer tr(0);
  tr.set_batch(0);
  EXPECT_EQ(tr.open_pair(0.0, 1, 2), obs::pair_span_id(0, 0, 0));
  EXPECT_EQ(tr.open_pair(0.0, 3, 4), obs::pair_span_id(0, 0, 1));
  tr.set_batch(1);
  EXPECT_EQ(tr.open_pair(0.0, 5, 6), obs::pair_span_id(0, 1, 0))
      << "pair ordinal restarts per batch";
}

// -- Chrome trace export -----------------------------------------------------

std::vector<obs::Span> sample_spans() {
  obs::SpanTracer tr(1);
  const uint64_t shard =
      tr.open(obs::SpanKind::kShard, 0.0, obs::shard_span_id(1), obs::kCampaignSpanId, 1, 1);
  tr.set_scope(shard);
  tr.set_batch(0);
  const uint64_t pair = tr.open_pair_at(0, 0.5, 4, 7);
  tr.set_scope(pair);
  const uint64_t phase = tr.open_auto(obs::SpanKind::kEvictFlood, 0.6, 7);
  tr.close(phase, 1.1);
  tr.instant(obs::SpanKind::kRetryClear, 1.2, 4, 7, 1, obs::ProbeCause::kTxCNotEvicted);
  tr.set_scope(shard);
  tr.close_pair(pair, 1.5, 1, obs::ProbeCause::kNone);
  tr.set_scope(0);
  tr.close(shard, 2.0);
  return tr.spans();
}

TEST(ChromeTrace, ExportFollowsTheTraceEventSchema) {
  const rpc::Json doc = obs::spans_to_chrome_json(sample_spans());
  // The dump must re-parse: Perfetto consumes this byte stream.
  const auto reparsed = rpc::Json::parse(doc.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(doc["displayTimeUnit"].as_string(), "ms");
  const auto& events = doc["traceEvents"].as_array();
  ASSERT_EQ(events.size(), sample_spans().size());
  for (const auto& e : events) {
    EXPECT_EQ(e["ph"].as_string(), "X") << "complete events only";
    EXPECT_TRUE(e["name"].is_string());
    EXPECT_TRUE(e["cat"].is_string());
    EXPECT_TRUE(e["ts"].is_number());
    EXPECT_TRUE(e["dur"].is_number());
    EXPECT_TRUE(e["pid"].is_number());
    EXPECT_EQ(static_cast<uint64_t>(e["tid"].as_number()), 1u) << "tid = shard";
    EXPECT_TRUE(e["args"]["id"].is_number());
    EXPECT_TRUE(e["args"]["parent"].is_number());
  }
  // Sorted order puts the structural pair span before the ordinal phase
  // span; its args carry the verdict annotations, µs timestamps.
  const auto& pair = events[1];
  EXPECT_EQ(pair["name"].as_string(), "pair 4-7");
  EXPECT_EQ(pair["cat"].as_string(), "schedule");
  EXPECT_EQ(pair["args"]["verdict"].as_string(), "connected");
  EXPECT_EQ(pair["args"]["cause"].as_string(), "none");
  EXPECT_DOUBLE_EQ(pair["ts"].as_number(), 0.5 * 1e6);
  EXPECT_DOUBLE_EQ(pair["dur"].as_number(), 1e6);
}

TEST(ChromeTrace, ExportIsRecordingOrderIndependent) {
  std::vector<obs::Span> spans = sample_spans();
  std::vector<obs::Span> reversed(spans.rbegin(), spans.rend());
  EXPECT_EQ(obs::spans_to_chrome_json(spans).dump(),
            obs::spans_to_chrome_json(reversed).dump())
      << "canonical sort makes the export a pure function of the span set";
}

TEST(ChromeTrace, VerdictAndCauseNamesRoundTrip) {
  for (uint8_t code = 1; code <= 3; ++code) EXPECT_STRNE(obs::span_verdict_name(code), "");
  EXPECT_STREQ(obs::span_verdict_name(0), "");
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    const auto cause = static_cast<obs::ProbeCause>(c);
    obs::ProbeCause back = obs::ProbeCause::kNone;
    ASSERT_TRUE(obs::probe_cause_from_name(obs::probe_cause_name(cause), back));
    EXPECT_EQ(back, cause);
  }
  obs::ProbeCause out;
  EXPECT_FALSE(obs::probe_cause_from_name("unknown-cause", out));
}

// -- diagnostics annex round-trip -------------------------------------------

core::NetworkMeasurementReport diag_report() {
  util::Rng rng(4);
  core::NetworkMeasurementReport report;
  report.measured = graph::erdos_renyi_gnm(6, 8, rng);
  report.iterations = 1;
  report.pairs_tested = 15;
  report.sim_seconds = 5.0;
  report.txs_sent = 200;
  core::DiagnosticsReport d;
  d.causes[static_cast<size_t>(obs::ProbeCause::kNone)] = 9;
  d.causes[static_cast<size_t>(obs::ProbeCause::kTxANeverReturned)] = 4;
  d.causes[static_cast<size_t>(obs::ProbeCause::kTxCNotEvicted)] = 2;
  d.cleared[static_cast<size_t>(obs::ProbeCause::kNodeOffline)] = 1;
  d.inconclusive = {{0, 3, obs::ProbeCause::kTxCNotEvicted},
                    {2, 5, obs::ProbeCause::kPayloadNotPlanted}};
  report.diagnostics = std::move(d);
  return report;
}

TEST(DiagnosticsAnnex, RoundTripsAndIsOmittedWhenAbsent) {
  core::NetworkMeasurementReport report = diag_report();
  const auto back = core::report_from_json(core::report_to_json(report));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->diagnostics.has_value());
  EXPECT_EQ(*back->diagnostics, *report.diagnostics);

  report.diagnostics.reset();
  EXPECT_EQ(core::report_to_json(report).dump().find("diagnostics"), std::string::npos)
      << "no annex key when collection was off (byte-identity with pre-annex reports)";
}

TEST(DiagnosticsAnnex, StrictParseRejectsMalformedDocuments) {
  const rpc::Json good = core::report_to_json(diag_report());
  ASSERT_TRUE(core::report_from_json(good).has_value());

  auto mutate = [&good](auto&& fn) {
    rpc::Json j = good;
    fn(j.as_object()["diagnostics"].as_object());
    return core::report_from_json(j).has_value();
  };
  // Unknown cause name inside a triple.
  EXPECT_FALSE(mutate([](rpc::JsonObject& d) {
    d["inconclusive"].as_array()[0].as_array()[2] = rpc::Json("cosmic-rays");
  }));
  // Truncated triple.
  EXPECT_FALSE(mutate([](rpc::JsonObject& d) {
    d["inconclusive"].as_array()[0].as_array().pop_back();
  }));
  // Tally object missing a cause key.
  EXPECT_FALSE(mutate([](rpc::JsonObject& d) { d["causes"].as_object().erase("none"); }));
  // Tally object with an extra (unknown) key.
  EXPECT_FALSE(mutate([](rpc::JsonObject& d) {
    d["cleared"].as_object()["bit-flip"] = rpc::Json(uint64_t{1});
  }));
  // Negative tally.
  EXPECT_FALSE(mutate([](rpc::JsonObject& d) {
    d["causes"].as_object()["none"] = rpc::Json(-1.0);
  }));
  // Wrong type for the whole annex.
  {
    rpc::Json j = good;
    j.as_object()["diagnostics"] = rpc::Json("nope");
    EXPECT_FALSE(core::report_from_json(j).has_value());
  }
}

// -- cause plumbing through the serial driver --------------------------------

TEST(ProbeCausePlumbing, OneLinkDriverAnnotatesVerdictsAndSpans) {
  // Path A - C - B: A-B negative; triangle leg A-C connected. Both verdicts
  // must carry the matching cause, and the attached tracer must record the
  // pair span with nested protocol phases.
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  core::ScenarioOptions opt;
  opt.seed = 7;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  core::Scenario scenario(g, opt);
  scenario.seed_background();
  obs::SpanTracer tracer(0);
  scenario.set_span_tracer(&tracer);

  const auto cfg = scenario.default_measure_config();
  const auto neg =
      scenario.measure_one_link(scenario.targets()[0], scenario.targets()[1], cfg);
  EXPECT_EQ(neg.verdict, core::Verdict::kNegative);
  EXPECT_EQ(neg.cause, obs::ProbeCause::kTxANeverReturned)
      << "clean negatives name the unreturned probe";

  const auto pos =
      scenario.measure_one_link(scenario.targets()[0], scenario.targets()[2], cfg);
  EXPECT_EQ(pos.verdict, core::Verdict::kConnected);
  EXPECT_EQ(pos.cause, obs::ProbeCause::kNone);

  const auto& spans = tracer.spans();
  const auto pairs = std::count_if(spans.begin(), spans.end(), [](const obs::Span& s) {
    return s.kind == obs::SpanKind::kPair;
  });
  EXPECT_EQ(pairs, 2) << "one pair span per measured link";
  // Every phase span hangs off a pair span, on the protocol's own steps.
  bool saw_phase = false;
  for (const obs::Span& s : spans) {
    if (s.kind == obs::SpanKind::kPair || s.kind == obs::SpanKind::kRetryClear) continue;
    saw_phase = true;
    EXPECT_EQ(s.parent & 0xF, static_cast<uint64_t>(obs::SpanKind::kPair))
        << span_kind_name(s.kind) << " span not nested under a pair";
    EXPECT_GE(s.end, s.start);
  }
  EXPECT_TRUE(saw_phase);
  // Pair spans carry the verdicts in measurement order.
  std::vector<uint8_t> verdicts;
  for (const obs::Span& s : spans) {
    if (s.kind == obs::SpanKind::kPair) verdicts.push_back(s.verdict);
  }
  EXPECT_EQ(verdicts, (std::vector<uint8_t>{2, 1}));
}

// -- CLI flag validation -----------------------------------------------------

TEST(TraceCliDeathTest, RejectsMalformedTraceCapacity) {
  const char* argv[] = {"prog", "--trace-capacity=4k", "--trace-out="};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_uint("trace-capacity", 4096), ::testing::ExitedWithCode(2),
              "invalid value for --trace-capacity");
  EXPECT_EQ(cli.get_string("trace-out", "dflt"), "") << "empty path is a string, not a crash";
}

}  // namespace
}  // namespace topo
