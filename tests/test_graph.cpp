// Unit tests for graph structure, metrics, generators, cliques, and I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"

namespace topo::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, EdgeBasics) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1)) << "duplicate";
  EXPECT_FALSE(g.add_edge(1, 0)) << "duplicate reversed";
  EXPECT_FALSE(g.add_edge(1, 1)) << "self loop";
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, EdgesListAndDensity) {
  auto g = triangle_plus_tail();
  EXPECT_EQ(g.edges().size(), 4u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_DOUBLE_EQ(g.density(), 2.0 * 4 / (4 * 3));
}

TEST(Metrics, DistanceStatsOnPath) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = distance_stats(g);
  EXPECT_TRUE(d.connected);
  EXPECT_EQ(d.diameter, 3u);
  EXPECT_EQ(d.radius, 2u);
  EXPECT_EQ(d.center_size, 2u);     // nodes 1, 2
  EXPECT_EQ(d.periphery_size, 2u);  // nodes 0, 3
}

TEST(Metrics, DisconnectedGraphUsesLargestComponent) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto d = distance_stats(g);
  EXPECT_FALSE(d.connected);
  EXPECT_EQ(d.component_size, 3u);
  EXPECT_EQ(d.diameter, 2u);
}

TEST(Metrics, ComponentsAndSubgraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.size(), 3u);  // {0,1}, {2}, {3,4}
  const auto big = largest_component(g);
  EXPECT_EQ(big.size(), 2u);
  const Graph sub = subgraph(g, {3, 4});
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(Metrics, ClusteringOnKnownGraphs) {
  // Complete K4: clustering and transitivity are 1.
  Graph k4(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) k4.add_edge(u, v);
  }
  EXPECT_DOUBLE_EQ(clustering_coefficient(k4), 1.0);
  EXPECT_DOUBLE_EQ(transitivity(k4), 1.0);
  EXPECT_EQ(triangle_count(k4), 4u);

  // Star: no triangles.
  Graph star(5);
  for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
  EXPECT_DOUBLE_EQ(clustering_coefficient(star), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(star), 0.0);
  EXPECT_EQ(triangle_count(star), 0u);
}

TEST(Metrics, TrianglePlusTailClustering) {
  const auto g = triangle_plus_tail();
  EXPECT_EQ(triangle_count(g), 1u);
  // Local: node0=1, node1=1, node2=1/3, node3=0 -> mean 0.5833..
  EXPECT_NEAR(clustering_coefficient(g), (1.0 + 1.0 + 1.0 / 3.0) / 4.0, 1e-12);
  // Triples: deg (2,2,3,1) -> 1+1+3+0 = 5; 3*1/5 = 0.6
  EXPECT_NEAR(transitivity(g), 0.6, 1e-12);
}

TEST(Metrics, AssortativityOfStarIsNegative) {
  Graph star(6);
  for (NodeId v = 1; v < 6; ++v) star.add_edge(0, v);
  EXPECT_LT(degree_assortativity(star), -0.99);
}

TEST(Metrics, DegreeHistogram) {
  const auto g = triangle_plus_tail();
  const auto h = degree_histogram(g);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
  const auto seq = degree_sequence(g);
  EXPECT_EQ(seq, (std::vector<size_t>{2, 2, 3, 1}));
}

TEST(Cliques, CountsMaximalCliques) {
  const auto g = triangle_plus_tail();
  const auto stats = count_maximal_cliques(g);
  EXPECT_EQ(stats.maximal_cliques, 2u);  // {0,1,2} and {2,3}
  EXPECT_EQ(stats.max_clique_size, 3u);
  EXPECT_FALSE(stats.truncated);
}

TEST(Cliques, CapTruncates) {
  util::Rng rng(5);
  const auto g = erdos_renyi_gnm(30, 200, rng);
  const auto stats = count_maximal_cliques(g, 5);
  EXPECT_TRUE(stats.truncated);
  EXPECT_GE(stats.maximal_cliques, 5u);
}

TEST(Generators, GnmExactCounts) {
  util::Rng rng(1);
  const auto g = erdos_renyi_gnm(50, 120, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
}

TEST(Generators, GnmClampsToMaxEdges) {
  util::Rng rng(2);
  const auto g = erdos_renyi_gnm(5, 100, rng);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(Generators, GnpDensityNearP) {
  util::Rng rng(3);
  const auto g = erdos_renyi_gnp(200, 0.1, rng);
  EXPECT_NEAR(g.density(), 0.1, 0.02);
}

TEST(Generators, ConfigurationModelPreservesDegreesApproximately) {
  util::Rng rng(4);
  std::vector<size_t> degrees(100, 6);
  const auto g = configuration_model(degrees, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  // Multi-edges/self-loops are collapsed, so slightly fewer than 300.
  EXPECT_GT(g.num_edges(), 250u);
  EXPECT_LE(g.num_edges(), 300u);
}

TEST(Generators, BarabasiAlbertHasHubs) {
  util::Rng rng(5);
  const auto g = barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.num_nodes(), 300u);
  size_t max_deg = 0;
  for (NodeId u = 0; u < 300; ++u) max_deg = std::max(max_deg, g.degree(u));
  EXPECT_GT(max_deg, 20u) << "preferential attachment should create hubs";
  const auto d = distance_stats(g);
  EXPECT_TRUE(d.connected);
}

TEST(Generators, WattsStrogatzRingDegree) {
  util::Rng rng(6);
  const auto g = watts_strogatz(100, 4, 0.0, rng);
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(Io, CsvRoundTrip) {
  const auto g = triangle_plus_tail();
  std::stringstream ss;
  write_edge_csv(g, ss);
  const Graph back = read_edge_csv(ss);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edges()) EXPECT_TRUE(back.has_edge(u, v));
}

TEST(Io, DotContainsAllEdges) {
  const auto g = triangle_plus_tail();
  std::stringstream ss;
  write_dot(g, ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
}

}  // namespace
}  // namespace topo::graph
