// Unit tests of the observability substrate (src/obs): metric semantics,
// trace-ring wraparound, export round-trips, and the determinism guarantee
// (two identically seeded runs produce identical metric values).

#include <gtest/gtest.h>

#include <string>

#include "core/toposhot.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace topo {
namespace {

TEST(Metrics, CounterSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksHighWater) {
  obs::Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.update_max(100.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 100.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);   // bucket <= 1
  h.observe(1.0);   // bucket <= 1 (inclusive upper edge)
  h.observe(5.0);   // bucket <= 10
  h.observe(50.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 56.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 56.5 / 4.0);
}

TEST(Metrics, EmptyHistogramStatsAreZero) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, RegistryInternsHandles) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b) << "same name must return the same handle";
  a.inc();
  EXPECT_EQ(reg.counter("x").value(), 1u);
  // Histogram bounds are only consulted on first use.
  obs::Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("h", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Metrics, ResetValuesKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.inc(5);
  reg.trace().push(1.0, obs::TraceKind::kTxInjected, 1, 2);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.trace().size(), 0u);
  c.inc();
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Metrics, SnapshotDiffSince) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.inc(10);
  g.set(5.0);
  h.observe(0.5);
  const obs::MetricsSnapshot before = reg.snapshot();
  c.inc(7);
  g.set(2.0);
  h.observe(3.0);
  const obs::MetricsSnapshot delta = reg.snapshot().diff_since(before);
  EXPECT_EQ(delta.counters.at("c"), 7u);           // counters are flows
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 2.0);     // gauges are levels
  EXPECT_EQ(delta.histograms.at("h").count, 1u);   // one new observation
  EXPECT_EQ(delta.histograms.at("h").counts[1], 1u);
  EXPECT_EQ(delta.histograms.at("h").counts[0], 0u);
}

TEST(Trace, RingWrapsAroundOldestFirst) {
  obs::TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.push(static_cast<double>(i), obs::TraceKind::kTxInjected, i, 0);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving event first: 6, 7, 8, 9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].subject, 6u + i);
    EXPECT_DOUBLE_EQ(events[i].time, 6.0 + static_cast<double>(i));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Phase, ScopedPhaseRecordsClockDelta) {
  double clock = 0.0;
  obs::Histogram h({1.0, 10.0});
  const obs::PhaseTimer timer([&clock] { return clock; });
  {
    obs::ScopedPhase p = timer.phase(&h);
    clock = 2.5;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
  // Null histogram: no-op, no crash.
  {
    obs::ScopedPhase p = timer.phase(nullptr);
    clock = 9.0;
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Export, JsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.level").set(1.5);
  reg.gauge("b.level").set(0.5);
  reg.histogram("c.hist", obs::duration_bounds()).observe(0.2);
  reg.histogram("c.hist", obs::duration_bounds()).observe(42.0);
  const obs::MetricsSnapshot s = reg.snapshot();
  const rpc::Json j = obs::snapshot_to_json(s);
  const auto back = obs::snapshot_from_json(j);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  // Serialization itself is stable.
  EXPECT_EQ(j.dump(), obs::snapshot_to_json(*back).dump());
}

TEST(Export, CsvContainsEveryScalar) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.gauge("g").set(2.0);
  reg.histogram("h", {1.0}).observe(0.5);
  const std::string csv = obs::snapshot_to_csv(reg.snapshot());
  EXPECT_NE(csv.find("a,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,2"), std::string::npos);
  EXPECT_NE(csv.find("h.count,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("h.le_1,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("h.le_inf,histogram,0"), std::string::npos);
}

TEST(Export, TraceToJson) {
  obs::TraceRing ring(8);
  ring.push(1.5, obs::TraceKind::kTxEvicted, 7, 3);
  const rpc::Json j = obs::trace_to_json(ring);
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j["dropped"].as_number(), 0.0);
  const rpc::Json& events = j["events"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.as_array().size(), 1u);
  EXPECT_EQ(events[0]["kind"].as_string(), "tx-evicted");
  EXPECT_DOUBLE_EQ(events[0]["subject"].as_number(), 7.0);
}

// The paper-level guarantee the subsystem is built around: metrics are
// keyed to simulation quantities only, so identically seeded runs export
// byte-identical documents.
TEST(ObsDeterminism, SameSeedSameMetrics) {
  auto run = [] {
    graph::Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    core::ScenarioOptions opt;
    opt.seed = 11;
    opt.mempool_capacity = 256;
    opt.future_cap = 64;
    opt.background_txs = 192;
    core::Scenario sc(g, opt);
    sc.seed_background();
    const auto cfg = sc.default_measure_config();
    (void)sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
    return obs::snapshot_to_json(sc.snapshot_metrics()).dump();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("mempool.evictions"), std::string::npos);
  EXPECT_NE(first.find("probe.phase.flood_seconds"), std::string::npos);
}

// A scenario measurement populates every layer's metrics.
TEST(ObsWiring, ScenarioMeasurementTouchesAllLayers) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  core::ScenarioOptions opt;
  opt.seed = 3;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  core::Scenario sc(g, opt);
  sc.seed_background();
  (void)sc.measure_one_link(sc.targets()[0], sc.targets()[1],
                            sc.default_measure_config());
  const obs::MetricsSnapshot s = sc.snapshot_metrics();
  EXPECT_GT(s.counters.at("net.messages"), 0u);
  EXPECT_GT(s.counters.at("mempool.evictions"), 0u);
  EXPECT_GT(s.counters.at("mempool.admits.future"), 0u);
  EXPECT_GT(s.counters.at("probe.runs"), 0u);
  EXPECT_GT(s.counters.at("probe.txs_injected"), 0u);
  EXPECT_GT(s.histograms.at("probe.phase.flood_seconds").count, 0u);
  EXPECT_GT(s.histograms.at("probe.link_seconds").count, 0u);
  EXPECT_GT(s.gauges.at("sim.events_processed"), 0.0);
  EXPECT_GT(s.gauges.at("sim.queue_high_water"), 0.0);
  EXPECT_GT(sc.metrics().trace().total_pushed(), 0u);
}

}  // namespace
}  // namespace topo
