// Unit tests of the observability substrate (src/obs): metric semantics,
// trace-ring wraparound, export round-trips, and the determinism guarantee
// (two identically seeded runs produce identical metric values).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/toposhot.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace topo {
namespace {

TEST(Metrics, CounterSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksHighWater) {
  obs::Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.update_max(100.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 100.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);   // bucket <= 1
  h.observe(1.0);   // bucket <= 1 (inclusive upper edge)
  h.observe(5.0);   // bucket <= 10
  h.observe(50.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 56.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 56.5 / 4.0);
}

TEST(Metrics, EmptyHistogramStatsAreZero) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, RegistryInternsHandles) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b) << "same name must return the same handle";
  a.inc();
  EXPECT_EQ(reg.counter("x").value(), 1u);
  // Histogram bounds are only consulted on first use.
  obs::Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("h", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Metrics, ResetValuesKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.inc(5);
  reg.trace().push(1.0, obs::TraceKind::kTxInjected, 1, 2);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.trace().size(), 0u);
  c.inc();
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Metrics, SnapshotDiffSince) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.inc(10);
  g.set(5.0);
  h.observe(0.5);
  const obs::MetricsSnapshot before = reg.snapshot();
  c.inc(7);
  g.set(2.0);
  h.observe(3.0);
  const obs::MetricsSnapshot delta = reg.snapshot().diff_since(before);
  EXPECT_EQ(delta.counters.at("c"), 7u);           // counters are flows
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 2.0);     // gauges are levels
  EXPECT_EQ(delta.histograms.at("h").count, 1u);   // one new observation
  EXPECT_EQ(delta.histograms.at("h").counts[1], 1u);
  EXPECT_EQ(delta.histograms.at("h").counts[0], 0u);
}

// Merge across shards with *matching* histogram bounds: the baseline the
// mismatch cases below deviate from.
TEST(Metrics, MergeAccumulatesFlowsAndLevels) {
  obs::MetricsRegistry a;
  a.counter("c").inc(3);
  a.gauge("g").set(2.0);
  a.histogram("h", {1.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.counter("c").inc(4);
  b.gauge("g").set(5.0);
  b.histogram("h", {1.0}).observe(9.0);
  obs::MetricsSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(m.gauges.at("g"), 7.0);           // gauges sum
  EXPECT_DOUBLE_EQ(m.gauge_maxes.at("g"), 5.0);      // maxes take max
  EXPECT_EQ(m.histograms.at("h").count, 2u);
  EXPECT_EQ(m.histograms.at("h").counts[0], 1u);
  EXPECT_EQ(m.histograms.at("h").counts[1], 1u);
}

// Incompatible bucket bounds: the loser's observations must land in the
// winner's overflow bucket so sum(counts) == count survives the merge.
TEST(Metrics, MergeMismatchedHistogramBoundsFoldIntoOverflow) {
  obs::MetricsRegistry a;
  a.histogram("h", {1.0, 10.0}).observe(0.5);
  a.histogram("h", {1.0, 10.0}).observe(5.0);
  obs::MetricsRegistry b;
  b.histogram("h", {2.0}).observe(1.5);
  b.histogram("h", {2.0}).observe(50.0);
  obs::MetricsSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  const obs::HistogramSnapshot& h = m.histograms.at("h");
  ASSERT_EQ(h.bounds, (std::vector<double>{1.0, 10.0}));  // first-observed wins
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 2u);  // b's two observations, folded
  EXPECT_EQ(h.count, 4u);
  uint64_t bucket_sum = 0;
  for (uint64_t c : h.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, h.count) << "invariant must survive the fold";
  EXPECT_DOUBLE_EQ(h.sum, 57.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 50.0);
}

// An empty placeholder (histogram interned but never observed) must not
// strand the other side's real observations in the overflow path: the
// first *observed* bounds win, not merely the first seen.
TEST(Metrics, MergeEmptySideAdoptsObservedBounds) {
  obs::MetricsRegistry a;
  (void)a.histogram("h", {1.0, 2.0});  // interned, zero observations
  obs::MetricsRegistry b;
  b.histogram("h", {5.0}).observe(3.0);
  obs::MetricsSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  const obs::HistogramSnapshot& h = m.histograms.at("h");
  EXPECT_EQ(h.bounds, (std::vector<double>{5.0}));
  EXPECT_EQ(h.count, 1u);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);
  // And the mirror image: merging an empty other side is a no-op.
  obs::MetricsSnapshot m2 = b.snapshot();
  const obs::MetricsSnapshot before = m2;
  m2.merge(a.snapshot());
  EXPECT_EQ(m2.histograms.at("h"), before.histograms.at("h"));
}

// A gauge max present on only one side must survive the merge, even
// without a matching current value on the other.
TEST(Metrics, MergeOneSidedGaugeMax) {
  obs::MetricsSnapshot a;
  a.gauge_maxes["only.mine"] = 3.0;
  a.gauge_maxes["shared"] = 2.0;
  obs::MetricsSnapshot b;
  b.gauge_maxes["only.theirs"] = 7.0;
  b.gauge_maxes["shared"] = 9.0;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge_maxes.at("only.mine"), 3.0);
  EXPECT_DOUBLE_EQ(a.gauge_maxes.at("only.theirs"), 7.0);
  EXPECT_DOUBLE_EQ(a.gauge_maxes.at("shared"), 9.0);
  EXPECT_TRUE(a.gauges.empty()) << "a one-sided max must not invent a value";
}

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(obs::sanitize_metric_name("monitor.pairs_measured"),
            "monitor_pairs_measured");
  EXPECT_EQ(obs::sanitize_metric_name("net:bytes"), "net:bytes");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("a-b c"), "a_b_c");
  EXPECT_EQ(obs::sanitize_metric_name(""), "");
}

TEST(Prometheus, RendersCountersGaugesAndMaxes) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.level").set(1.5);
  reg.gauge("b.level").set(0.5);
  const std::string text = obs::expose_prometheus(reg);
  EXPECT_NE(text.find("# TYPE a_count counter\na_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_level gauge\nb_level 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_level_max gauge\nb_level_max 1.5\n"),
            std::string::npos);
  // Counters render before gauges; samples are name-sorted within a kind.
  EXPECT_LT(text.find("a_count 3"), text.find("b_level 0.5"));
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = obs::expose_prometheus(reg);
  EXPECT_NE(text.find("# TYPE h histogram\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("h_sum 56.5\n"), std::string::npos);
  EXPECT_NE(text.find("h_count 4\n"), std::string::npos);
}

// A high-water mark with no surviving current value (possible after a
// one-sided merge) still exposes, as `<name>_max` alone.
TEST(Prometheus, OrphanGaugeMaxStillExposes) {
  obs::MetricsSnapshot snap;
  snap.gauge_maxes["net.arena_peak"] = 4096.0;
  const std::string text = obs::expose_prometheus(snap);
  EXPECT_NE(text.find("# TYPE net_arena_peak_max gauge\nnet_arena_peak_max 4096\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE net_arena_peak gauge"), std::string::npos);
}

// The exposition is a pure function of the snapshot: equal snapshots from
// differently ordered construction render byte-identically.
TEST(Prometheus, ByteStableAcrossConstructionOrder) {
  obs::MetricsRegistry a;
  a.counter("z").inc(1);
  a.counter("a").inc(2);
  a.gauge("m").set(3.0);
  a.histogram("h", {1.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.histogram("h", {1.0}).observe(0.5);
  b.gauge("m").set(3.0);
  b.counter("a").inc(2);
  b.counter("z").inc(1);
  EXPECT_EQ(obs::expose_prometheus(a), obs::expose_prometheus(b));
}

// After a mismatched-bounds merge the +Inf bucket and _count lines must
// agree — the exposition's own consistency requirement.
TEST(Prometheus, MergedMismatchedHistogramStaysConsistent) {
  obs::MetricsRegistry a;
  a.histogram("h", {1.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.histogram("h", {2.0, 4.0}).observe(3.0);
  b.histogram("h", {2.0, 4.0}).observe(9.0);
  obs::MetricsSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  const std::string text = obs::expose_prometheus(m);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_count 3\n"), std::string::npos);
  // The fold lands in the implicit overflow bucket, past every finite
  // bound: the finite cumulative counts only what was really bucketed.
  EXPECT_NE(text.find("h_bucket{le=\"1\"} 1\n"), std::string::npos);
}

TEST(EventLog, ThresholdFiltersAndCountsSuppressed) {
  obs::EventLog log(8);
  EXPECT_FALSE(log.would_log(util::LogLevel::kDebug, "monitor"));
  log.log(util::LogLevel::kDebug, "monitor", "ignored");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.suppressed(), 1u);
  EXPECT_EQ(log.total_pushed(), 0u);
  log.set_threshold(util::LogLevel::kDebug);
  log.log(util::LogLevel::kDebug, "monitor", "kept");
  EXPECT_EQ(log.size(), 1u);
  // Per-subsystem override wins over the global threshold.
  log.set_threshold("net", util::LogLevel::kError);
  EXPECT_FALSE(log.would_log(util::LogLevel::kWarn, "net"));
  EXPECT_TRUE(log.would_log(util::LogLevel::kWarn, "monitor"));
  log.log(util::LogLevel::kWarn, "net", "suppressed-by-override");
  EXPECT_EQ(log.suppressed(), 2u);
  log.log(util::LogLevel::kError, "net", "kept");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.threshold("net"), util::LogLevel::kError);
  EXPECT_EQ(log.threshold("monitor"), util::LogLevel::kDebug);
}

TEST(EventLog, RingWrapsOldestFirstWithDropAccounting) {
  obs::EventLog log(4);
  log.set_threshold(util::LogLevel::kDebug);
  for (int i = 0; i < 10; ++i) {
    log.set_clock(static_cast<double>(i));
    log.log(util::LogLevel::kInfo, "s", "e" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_pushed(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.suppressed(), 0u) << "drops are pressure, not policy";
  const std::vector<obs::LogEvent> events = log.events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].event, "e" + std::to_string(6 + i));
    EXPECT_DOUBLE_EQ(events[i].t, 6.0 + static_cast<double>(i));
  }
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, JsonlLinesParseWithSortedFields) {
  obs::EventLog log;
  log.set_clock(12.5);
  log.log(util::LogLevel::kWarn, "rpc", "method-error",
          {{"zcode", rpc::Json(-32601.0)}, {"attempt", rpc::Json(1.0)}});
  const std::string jsonl = log.to_jsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  const std::string line = jsonl.substr(0, jsonl.size() - 1);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = rpc::Json::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["level"].as_string(), "warn");
  EXPECT_EQ((*parsed)["subsystem"].as_string(), "rpc");
  EXPECT_EQ((*parsed)["event"].as_string(), "method-error");
  EXPECT_DOUBLE_EQ((*parsed)["t"].as_number(), 12.5);
  EXPECT_DOUBLE_EQ((*parsed)["fields"]["zcode"].as_number(), -32601.0);
  // Keys render sorted regardless of field insertion order.
  EXPECT_LT(line.find("\"attempt\""), line.find("\"zcode\""));
}

TEST(EventLog, LevelNamesRoundTrip) {
  using util::LogLevel;
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError, LogLevel::kOff}) {
    LogLevel back = LogLevel::kOff;
    ASSERT_TRUE(obs::log_level_from_name(obs::log_level_name(l), back));
    EXPECT_EQ(back, l);
  }
  LogLevel out = LogLevel::kInfo;
  EXPECT_FALSE(obs::log_level_from_name("verbose", out));
}

// The log is internally synchronized: concurrent appenders (the RPC server
// logs method errors from reader threads) must not corrupt the ring.
TEST(EventLog, ConcurrentWritersKeepAccountingExact) {
  obs::EventLog log(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.log(util::LogLevel::kInfo, "w" + std::to_string(t), "tick",
                {{"i", rpc::Json(static_cast<double>(i))}});
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(log.total_pushed(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.size(), 64u);
  EXPECT_EQ(log.dropped(), static_cast<uint64_t>(kThreads * kPerThread - 64));
  for (const obs::LogEvent& e : log.events()) EXPECT_EQ(e.event, "tick");
}

TEST(Trace, RingWrapsAroundOldestFirst) {
  obs::TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.push(static_cast<double>(i), obs::TraceKind::kTxInjected, i, 0);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving event first: 6, 7, 8, 9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].subject, 6u + i);
    EXPECT_DOUBLE_EQ(events[i].time, 6.0 + static_cast<double>(i));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Phase, ScopedPhaseRecordsClockDelta) {
  double clock = 0.0;
  obs::Histogram h({1.0, 10.0});
  const obs::PhaseTimer timer([&clock] { return clock; });
  {
    obs::ScopedPhase p = timer.phase(&h);
    clock = 2.5;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
  // Null histogram: no-op, no crash.
  {
    obs::ScopedPhase p = timer.phase(nullptr);
    clock = 9.0;
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Export, JsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.level").set(1.5);
  reg.gauge("b.level").set(0.5);
  reg.histogram("c.hist", obs::duration_bounds()).observe(0.2);
  reg.histogram("c.hist", obs::duration_bounds()).observe(42.0);
  const obs::MetricsSnapshot s = reg.snapshot();
  const rpc::Json j = obs::snapshot_to_json(s);
  const auto back = obs::snapshot_from_json(j);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  // Serialization itself is stable.
  EXPECT_EQ(j.dump(), obs::snapshot_to_json(*back).dump());
}

TEST(Export, CsvContainsEveryScalar) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.gauge("g").set(2.0);
  reg.histogram("h", {1.0}).observe(0.5);
  const std::string csv = obs::snapshot_to_csv(reg.snapshot());
  EXPECT_NE(csv.find("a,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,2"), std::string::npos);
  EXPECT_NE(csv.find("h.count,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("h.le_1,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("h.le_inf,histogram,0"), std::string::npos);
}

TEST(Export, TraceToJson) {
  obs::TraceRing ring(8);
  ring.push(1.5, obs::TraceKind::kTxEvicted, 7, 3);
  const rpc::Json j = obs::trace_to_json(ring);
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j["dropped"].as_number(), 0.0);
  const rpc::Json& events = j["events"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.as_array().size(), 1u);
  EXPECT_EQ(events[0]["kind"].as_string(), "tx-evicted");
  EXPECT_DOUBLE_EQ(events[0]["subject"].as_number(), 7.0);
}

// The paper-level guarantee the subsystem is built around: metrics are
// keyed to simulation quantities only, so identically seeded runs export
// byte-identical documents.
TEST(ObsDeterminism, SameSeedSameMetrics) {
  auto run = [] {
    graph::Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    core::ScenarioOptions opt;
    opt.seed = 11;
    opt.mempool_capacity = 256;
    opt.future_cap = 64;
    opt.background_txs = 192;
    core::Scenario sc(g, opt);
    sc.seed_background();
    const auto cfg = sc.default_measure_config();
    (void)sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
    return obs::snapshot_to_json(sc.snapshot_metrics()).dump();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("mempool.evictions"), std::string::npos);
  EXPECT_NE(first.find("probe.phase.flood_seconds"), std::string::npos);
}

// A scenario measurement populates every layer's metrics.
TEST(ObsWiring, ScenarioMeasurementTouchesAllLayers) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  core::ScenarioOptions opt;
  opt.seed = 3;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  core::Scenario sc(g, opt);
  sc.seed_background();
  (void)sc.measure_one_link(sc.targets()[0], sc.targets()[1],
                            sc.default_measure_config());
  const obs::MetricsSnapshot s = sc.snapshot_metrics();
  EXPECT_GT(s.counters.at("net.messages"), 0u);
  EXPECT_GT(s.counters.at("mempool.evictions"), 0u);
  EXPECT_GT(s.counters.at("mempool.admits.future"), 0u);
  EXPECT_GT(s.counters.at("probe.runs"), 0u);
  EXPECT_GT(s.counters.at("probe.txs_injected"), 0u);
  EXPECT_GT(s.histograms.at("probe.phase.flood_seconds").count, 0u);
  EXPECT_GT(s.histograms.at("probe.link_seconds").count, 0u);
  EXPECT_GT(s.gauges.at("sim.events_processed"), 0.0);
  EXPECT_GT(s.gauges.at("sim.queue_high_water"), 0.0);
  EXPECT_GT(sc.metrics().trace().total_pushed(), 0u);
}

}  // namespace
}  // namespace topo
