// The measurement-strategy seam: name/kind round-trips, the "strategy"
// report field (omitted-when-default byte identity, strict rejection),
// dispatch equivalence between the seam and the legacy direct calls, and
// the two rival strategies' characteristic behaviour — DEthna's cheap
// timing inference and TxProbe's propagation-regime-dependent isolation
// (it works announce-only, and honestly fails on Ethereum-style push).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/report_io.h"
#include "core/session.h"
#include "core/strategy.h"
#include "core/toposhot.h"
#include "core/validator.h"
#include "graph/generators.h"
#include "p2p/node.h"
#include "util/cli.h"

namespace topo::core {
namespace {

ScenarioOptions small_options(uint64_t seed) {
  ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  return opt;
}

TEST(StrategyNames, RoundTripAndRejection) {
  EXPECT_STREQ(strategy_name(StrategyKind::kToposhot), "toposhot");
  EXPECT_STREQ(strategy_name(StrategyKind::kDethna), "dethna");
  EXPECT_STREQ(strategy_name(StrategyKind::kTxprobe), "txprobe");
  for (size_t k = 0; k < kNumStrategies; ++k) {
    const auto kind = static_cast<StrategyKind>(k);
    StrategyKind parsed = StrategyKind::kToposhot;
    ASSERT_TRUE(strategy_from_name(strategy_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  StrategyKind out = StrategyKind::kToposhot;
  EXPECT_FALSE(strategy_from_name("TopoShot", out)) << "names are case-sensitive";
  EXPECT_FALSE(strategy_from_name("txprobe2", out));
  EXPECT_FALSE(strategy_from_name("", out));
}

TEST(StrategyNames, FactoryProducesMatchingKinds) {
  graph::Graph g(2);
  Scenario sc(g, small_options(5));
  const MeasureConfig cfg = sc.default_measure_config();
  for (size_t k = 0; k < kNumStrategies; ++k) {
    const auto kind = static_cast<StrategyKind>(k);
    EXPECT_EQ(sc.make_strategy(kind, cfg)->kind(), kind);
  }
}

TEST(StrategyReportField, OmittedWhenDefaultPresentOtherwise) {
  NetworkMeasurementReport report;
  report.measured = graph::Graph(3);
  report.pairs_tested = 3;
  const std::string def = report_to_json(report).dump();
  EXPECT_EQ(def.find("\"strategy\""), std::string::npos)
      << "default-strategy reports must keep the pre-seam document shape";

  for (StrategyKind kind : {StrategyKind::kDethna, StrategyKind::kTxprobe}) {
    report.strategy = kind;
    const rpc::Json j = report_to_json(report);
    ASSERT_TRUE(j["strategy"].is_string());
    EXPECT_EQ(j["strategy"].as_string(), strategy_name(kind));
    const auto parsed = report_from_json(j);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->strategy, kind);
  }

  // Absent field parses as the default.
  report.strategy = StrategyKind::kToposhot;
  const auto parsed = report_from_json(*rpc::Json::parse(def));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->strategy, StrategyKind::kToposhot);
}

TEST(StrategyReportField, StrictlyRejectsUnknownOrMistyped) {
  NetworkMeasurementReport report;
  report.measured = graph::Graph(2);
  report.strategy = StrategyKind::kDethna;
  const std::string good = report_to_json(report).dump();

  std::string unknown = good;
  unknown.replace(unknown.find("\"dethna\""), 8, "\"bitcoin\"");
  EXPECT_FALSE(report_from_json(*rpc::Json::parse(unknown)).has_value())
      << "an unknown strategy name must reject the whole document";

  std::string mistyped = good;
  mistyped.replace(mistyped.find("\"dethna\""), 8, "7");
  EXPECT_FALSE(report_from_json(*rpc::Json::parse(mistyped)).has_value())
      << "a non-string strategy must reject the whole document";
}

// The seam's default dispatch must be trajectory-identical to the legacy
// direct calls: same seed, same probe, same bytes out.
TEST(StrategySeam, DefaultDispatchMatchesLegacyEntryPoints) {
  util::Rng rng(11);
  const graph::Graph truth = graph::erdos_renyi_gnm(10, 18, rng);

  Scenario legacy(truth, small_options(33));
  legacy.seed_background();
  const MeasureConfig cfg = legacy.default_measure_config();
  const OneLinkResult via_legacy =
      legacy.measure_one_link(legacy.targets()[0], legacy.targets()[1], cfg);

  Scenario seam(truth, small_options(33));
  seam.seed_background();
  MeasurementSession session(seam, cfg);
  ASSERT_EQ(session.strategy(), StrategyKind::kToposhot);
  const OneLinkResult via_seam =
      session.one_link(seam.targets()[0], seam.targets()[1]).value;

  EXPECT_EQ(via_seam.connected, via_legacy.connected);
  EXPECT_EQ(via_seam.verdict, via_legacy.verdict);
  EXPECT_EQ(via_seam.cause, via_legacy.cause);
  EXPECT_EQ(via_seam.attempts, via_legacy.attempts);
  EXPECT_EQ(via_seam.txs_sent, via_legacy.txs_sent);
  EXPECT_DOUBLE_EQ(via_seam.finished_at, via_legacy.finished_at);
}

TEST(StrategySeam, WrappedParallelMeasurementEqualsOwnedStrategy) {
  util::Rng rng(12);
  const graph::Graph truth = graph::erdos_renyi_gnm(8, 12, rng);

  Scenario a(truth, small_options(44));
  a.seed_background();
  const MeasureConfig cfg = a.default_measure_config();
  ParallelMeasurement par(a.net(), a.m(), a.accounts(), a.factory(), cfg);
  par.set_cost_tracker(&a.costs());
  NetworkMeasurement legacy(par);  // wrap_parallel_measurement under the hood
  const auto legacy_report = legacy.measure_all(a.net(), a.targets(), 3);

  Scenario b(truth, small_options(44));
  b.seed_background();
  auto strat = b.make_strategy(StrategyKind::kToposhot, cfg);
  NetworkMeasurement owned(*strat);
  const auto owned_report = owned.measure_all(b.net(), b.targets(), 3);

  EXPECT_EQ(legacy_report.strategy, StrategyKind::kToposhot);
  EXPECT_EQ(report_to_json(legacy_report).dump(), report_to_json(owned_report).dump());
}

TEST(StrategySeam, SessionEchoesSelectedStrategyIntoReport) {
  util::Rng rng(13);
  const graph::Graph truth = graph::erdos_renyi_gnm(8, 12, rng);
  Scenario sc(truth, small_options(55));
  sc.seed_background();
  MeasurementSession session(sc);
  session.set_strategy(StrategyKind::kDethna);
  const auto measured = session.network(3);
  EXPECT_EQ(measured.value.strategy, StrategyKind::kDethna);
  EXPECT_EQ(measured.value.pairs_tested, 8u * 7 / 2);
  const std::string json = report_to_json(measured.value).dump();
  EXPECT_NE(json.find("\"strategy\":\"dethna\""), std::string::npos);
}

// DEthna: a line graph's adjacency is recoverable from echo timing alone,
// at a tiny fraction of TopoShot's transaction budget (one unmined marker
// per source instead of a Z-future flood per pair).
TEST(DethnaStrategy, InfersNeighborsFromEchoTimingCheaply) {
  graph::Graph truth(6);
  for (graph::NodeId v = 0; v + 1 < 6; ++v) truth.add_edge(v, v + 1);
  Scenario sc(truth, small_options(7));
  sc.seed_background();
  MeasureConfig cfg = sc.default_measure_config();
  cfg.repetitions = 3;
  MeasurementSession session(sc, cfg);
  session.set_strategy(StrategyKind::kDethna);

  const auto measured = session.network(3);
  const auto pr = compare_graphs(truth, measured.value.measured);
  EXPECT_GE(pr.recall(), 0.6) << "adjacent sinks echo one hop earlier";
  EXPECT_GE(pr.precision(), 0.6) << "two-hop echoes arrive a latency draw later";

  // One marker per source per repetition — orders of magnitude below the
  // TopoShot flood budget, and nothing is ever mined.
  EXPECT_LT(measured.value.txs_sent, 200u);
  const auto wei = measured.metrics.gauges.find("cost.wei_spent");
  if (wei != measured.metrics.gauges.end()) {
    EXPECT_EQ(wei->second, 0.0) << "below-market markers must never be mined";
  }
}

TEST(DethnaStrategy, PlumbsOfflineCauseAndVerdicts) {
  graph::Graph truth(3);
  truth.add_edge(0, 1);
  truth.add_edge(1, 2);
  Scenario sc(truth, small_options(9));
  sc.seed_background();
  auto strat = sc.make_strategy(StrategyKind::kDethna, sc.default_measure_config());
  strat->prepare(sc);

  sc.net().node(sc.targets()[0]).set_unresponsive(true);
  const OneLinkResult down = strat->measure_pair(sc.targets()[0], sc.targets()[1]);
  EXPECT_EQ(down.verdict, Verdict::kInconclusive);
  EXPECT_EQ(down.cause, obs::ProbeCause::kNodeOffline);
  sc.net().node(sc.targets()[0]).set_unresponsive(false);

  const OneLinkResult up = strat->measure_pair(sc.targets()[1], sc.targets()[2]);
  EXPECT_NE(up.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(up.txa_planted_on_a) << "the marker must sit on the source";
}

// TxProbe's regime dependence, the §4.1 story: announcement blocking
// isolates a pair on an announce-only (Bitcoin-style) network, and is
// bypassed by Ethereum-style direct pushes, which flood the marker and
// manufacture false positives.
TEST(TxProbeStrategy, IsolationHoldsAnnounceOnlyAndBreaksUnderPush) {
  graph::Graph truth(5);
  truth.add_edge(0, 1);
  truth.add_edge(1, 2);
  truth.add_edge(2, 3);
  truth.add_edge(3, 4);

  // Announce-only world: blocked nodes ignore the marker's announcements,
  // so only the probed pair can carry it.
  Scenario iso(truth, small_options(17));
  auto strat = iso.make_strategy(StrategyKind::kTxprobe, iso.default_measure_config());
  apply_propagation_mode(iso, PropagationMode::kAnnounceOnly);
  strat->prepare(iso);
  iso.seed_background();
  const OneLinkResult adj = strat->measure_pair(iso.targets()[0], iso.targets()[1]);
  EXPECT_TRUE(adj.connected);
  const OneLinkResult far = strat->measure_pair(iso.targets()[0], iso.targets()[3]);
  EXPECT_FALSE(far.connected) << "announce blocking must contain the marker";

  // Ethereum-style push world: the push path ignores announce blocks, the
  // marker floods, and the distant pair looks connected.
  Scenario push(truth, small_options(17));
  auto pstrat = push.make_strategy(StrategyKind::kTxprobe, push.default_measure_config());
  pstrat->prepare(push);
  push.seed_background();
  const OneLinkResult leaked = pstrat->measure_pair(push.targets()[0], push.targets()[3]);
  EXPECT_TRUE(leaked.connected) << "pushes bypass announcement blocking (the honest failure)";
}

TEST(TxProbeStrategy, PropagationOverridePreparesTheScenario) {
  graph::Graph truth(3);
  truth.add_edge(0, 1);
  Scenario sc(truth, small_options(19));
  auto strat = sc.make_strategy(StrategyKind::kTxprobe, sc.default_measure_config());
  auto* txprobe = static_cast<TxProbeStrategy*>(strat.get());
  txprobe->set_propagation_override(PropagationMode::kAnnounceOnly);
  strat->prepare(sc);
  for (p2p::PeerId id : sc.targets()) {
    EXPECT_TRUE(sc.net().node(id).config().announce_only);
    EXPECT_FALSE(sc.net().node(id).config().use_announcements);
  }
}

TEST(StrategyCli, GetChoiceAcceptsVocabulary) {
  const char* argv[] = {"prog", "--strategy=dethna"};
  util::Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_choice("strategy", "toposhot", {"toposhot", "dethna", "txprobe"}), "dethna");
  EXPECT_EQ(cli.get_choice("absent", "toposhot", {"toposhot", "dethna", "txprobe"}), "toposhot");
}

using StrategyCliDeathTest = ::testing::Test;

TEST(StrategyCliDeathTest, RejectsUnknownStrategy) {
  const char* argv[] = {"prog", "--strategy=txprober"};
  util::Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.get_choice("strategy", "toposhot", {"toposhot", "dethna", "txprobe"}),
              ::testing::ExitedWithCode(2), "invalid value for --strategy");
}

}  // namespace
}  // namespace topo::core
