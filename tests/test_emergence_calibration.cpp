// Pins the calibrated full-scale testnet recipes to the paper's headline
// properties (Table 4/9/10): edge counts near the measured networks and —
// the partition-resilience result — Louvain modularity *below* a same-size
// Erdos-Renyi baseline, in the paper's cross-testnet order.

#include <gtest/gtest.h>

#include "disc/emergence.h"
#include "graph/generators.h"
#include "graph/louvain.h"
#include "graph/metrics.h"

namespace topo::disc {
namespace {

struct Emerged {
  graph::Graph g;
  double q = 0.0;
  double q_er = 0.0;
};

Emerged emerge_and_score(EmergenceConfig cfg, uint64_t seed) {
  util::Rng rng(seed);
  Emerged out{emerge_topology(cfg, rng)};
  util::Rng er_rng(seed + 1000);
  const auto er = graph::erdos_renyi_gnm(out.g.num_nodes(), out.g.num_edges(), er_rng);
  util::Rng l1(1), l2(2);
  out.q = graph::louvain(out.g, l1).modularity;
  out.q_er = graph::louvain(er, l2).modularity;
  return out;
}

TEST(EmergenceCalibration, RopstenMatchesPaperShape) {
  const auto r = emerge_and_score(ropsten_like(588), 588);
  EXPECT_NEAR(static_cast<double>(r.g.num_edges()), 7496.0, 900.0) << "paper m = 7496";
  EXPECT_NEAR(r.g.average_degree(), 25.5, 3.0);
  EXPECT_LT(r.q, r.q_er) << "modularity must sit below the ER baseline (Table 4)";
  EXPECT_GT(graph::clustering_coefficient(r.g), 0.12) << "paper clustering 0.207";
  EXPECT_LT(graph::degree_assortativity(r.g), 0.0) << "paper assortativity -0.152";
}

TEST(EmergenceCalibration, RinkebyIsTheMostPartitionResilient) {
  const auto rop = emerge_and_score(ropsten_like(588), 588);
  const auto rin = emerge_and_score(rinkeby_like(446), 446);
  EXPECT_NEAR(static_cast<double>(rin.g.num_edges()), 15380.0, 1800.0) << "paper m = 15380";
  EXPECT_LT(rin.q, rin.q_er) << "Table 9's headline";
  EXPECT_LT(rin.q, rop.q) << "paper: Rinkeby (0.0106) < Ropsten (0.0605)";
  EXPECT_GT(graph::transitivity(rin.g), 0.35) << "paper transitivity 0.498";
}

TEST(EmergenceCalibration, GoerliSitsBetween) {
  const auto goe = emerge_and_score(goerli_like(1025), 1025);
  EXPECT_LT(goe.q, goe.q_er) << "Table 10's headline";
  // Heavy tail: the top node's degree dwarfs the mean (paper: 711 vs ~36).
  size_t max_deg = 0;
  for (graph::NodeId u = 0; u < goe.g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, goe.g.degree(u));
  }
  EXPECT_GT(static_cast<double>(max_deg), 8.0 * goe.g.average_degree());
  EXPECT_LT(graph::degree_assortativity(goe.g), 0.0) << "paper -0.157";
}

}  // namespace
}  // namespace topo::disc
