// Unit tests for util: RNG determinism/distributions, stats, histogram.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/stats.h"

namespace topo::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values in [3,7] should appear";
}

TEST(Rng, IndexStaysBelowN) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.index(13), 13u);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.15);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(0.05, 0.4));
  EXPECT_NEAR(median(xs), 0.05, 0.005);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(9);
  const auto s = rng.sample_indices(100, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(10);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(11);
  Rng b = a.split();
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a.next() != b.next();
  EXPECT_TRUE(differ);
}

TEST(Stats, MeanMedianPercentile) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, EmptyInputsAreZero) {
  std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(median(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(pearson(xs, xs), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4}, ys{2, 4, 6, 8}, zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  std::vector<double> xs{1, 2, 3}, ys{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, AccumulatorMatchesBatch) {
  std::vector<double> xs{1.5, -2.0, 7.25, 0.0, 3.5};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.25);
  EXPECT_NEAR(acc.sum(), 10.25, 1e-12);
}

TEST(Stats, HistogramFractions) {
  Histogram h;
  h.add(1);
  h.add(1);
  h.add(2);
  h.add(10, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(10), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_NEAR(h.mean(), (1 + 1 + 2 + 10 + 10) / 5.0, 1e-12);
}

}  // namespace
}  // namespace topo::util
