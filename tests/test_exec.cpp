// Tests for the sharded campaign executor (topo::exec): worker pool
// semantics, shard-plan determinism, batch coverage, report/metrics merging,
// and the subsystem's core contract — the worker-pool width changes
// wall-clock time only, never one byte of the merged artifacts.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/validator.h"
#include "exec/campaign.h"
#include "exec/merge.h"
#include "exec/shard.h"
#include "exec/worker_pool.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace topo::exec {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  for (size_t width : {size_t{1}, size_t{2}, size_t{4}, size_t{9}}) {
    const size_t n_jobs = 103;
    std::vector<std::atomic<int>> hits(n_jobs);
    const WorkerPool pool(width);
    pool.run(n_jobs, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n_jobs; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "job " << i << " at width " << width;
    }
  }
}

TEST(WorkerPool, ZeroWidthClampsToOne) {
  const WorkerPool pool(0);
  EXPECT_EQ(pool.width(), 1u);
  size_t ran = 0;
  pool.run(5, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 5u);
}

TEST(WorkerPool, ZeroJobsIsNoop) {
  const WorkerPool pool(4);
  pool.run(0, [](size_t) { FAIL() << "no job should run"; });
}

TEST(WorkerPool, PropagatesFirstExceptionAfterDraining) {
  const WorkerPool pool(3);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.run(20,
                        [&](size_t i) {
                          ran.fetch_add(1);
                          if (i == 7) throw std::runtime_error("job 7 failed");
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20u) << "remaining jobs still run; workers never die silently";
}

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

TEST(ShardPlan, PartitionsEveryBatchExactlyOnce) {
  const ShardPlan plan = ShardPlan::build(23, 5, 42);
  ASSERT_EQ(plan.size(), 5u);
  std::set<size_t> seen;
  for (const auto& shard : plan.shards) {
    for (size_t b : shard.batch_ids) {
      EXPECT_TRUE(seen.insert(b).second) << "batch " << b << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(*seen.rbegin(), 22u);
}

TEST(ShardPlan, ClampsShardCountToBatchCount) {
  EXPECT_EQ(ShardPlan::build(3, 16, 1).size(), 3u) << "no workless shards";
  EXPECT_EQ(ShardPlan::build(8, 0, 1).size(), 1u) << "zero shards clamps to one";
  const ShardPlan empty = ShardPlan::build(0, 4, 1);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty.shards[0].batch_ids.empty());
}

TEST(ShardPlan, SeedsAreDeterministicAndDistinct) {
  const ShardPlan a = ShardPlan::build(12, 4, 1025);
  const ShardPlan b = ShardPlan::build(12, 4, 1025);
  ASSERT_EQ(a.size(), b.size());
  std::set<uint64_t> seeds;
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a.shards[s].seed, b.shards[s].seed);
    EXPECT_EQ(a.shards[s].batch_ids, b.shards[s].batch_ids);
    seeds.insert(a.shards[s].seed);
  }
  EXPECT_EQ(seeds.size(), a.size()) << "per-shard seed streams must not collide";
  EXPECT_NE(ShardPlan::build(12, 4, 1026).shards[0].seed, a.shards[0].seed);
}

// ---------------------------------------------------------------------------
// Batches (the campaign's unit of work)
// ---------------------------------------------------------------------------

TEST(Batches, CoverEveryPairOnceWithinBudget) {
  const size_t n = 17, budget = 10;
  std::set<std::pair<size_t, size_t>> seen;
  for (const auto& batch : core::make_batches(n, 3, budget)) {
    EXPECT_LE(batch.edges.size(), budget);
    EXPECT_EQ(batch.edges.size(), batch.pairs.size());
    for (const auto& [s, t] : batch.pairs) {
      const auto key = std::minmax(s, t);
      EXPECT_TRUE(seen.insert(key).second) << "pair (" << s << "," << t << ") repeated";
    }
  }
  EXPECT_EQ(seen.size(), n * (n - 1) / 2) << "every unordered pair covered";
}

// ---------------------------------------------------------------------------
// ReportMerger / MetricsSnapshot::merge
// ---------------------------------------------------------------------------

TEST(ReportMerger, UnionsEdgesAndSumsTallies) {
  core::NetworkMeasurementReport r1, r2;
  r1.measured = graph::Graph(4);
  r1.measured.add_edge(0, 1);
  r1.iterations = 2;
  r1.pairs_tested = 3;
  r1.txs_sent = 100;
  r1.sim_seconds = 50.0;
  r2.measured = graph::Graph(4);
  r2.measured.add_edge(0, 1);  // duplicate across shards: union, not multiset
  r2.measured.add_edge(2, 3);
  r2.iterations = 1;
  r2.pairs_tested = 3;
  r2.txs_sent = 40;
  r2.sim_seconds = 80.0;

  ReportMerger merger(4);
  merger.add(r1);
  merger.add(r2);
  EXPECT_EQ(merger.report().measured.num_edges(), 2u);
  EXPECT_TRUE(merger.report().measured.has_edge(0, 1));
  EXPECT_TRUE(merger.report().measured.has_edge(2, 3));
  EXPECT_EQ(merger.report().iterations, 3u);
  EXPECT_EQ(merger.report().pairs_tested, 6u);
  EXPECT_EQ(merger.report().txs_sent, 140u);
  EXPECT_DOUBLE_EQ(merger.report().sim_seconds, 130.0) << "total simulated work sums";
  EXPECT_DOUBLE_EQ(merger.makespan_sim_seconds(), 80.0) << "critical path is the slowest shard";
  EXPECT_EQ(merger.shards_merged(), 2u);
}

TEST(MetricsMerge, CountersGaugesAndHistograms) {
  obs::MetricsSnapshot a, b;
  a.counters["net.messages"] = 10;
  b.counters["net.messages"] = 5;
  b.counters["only.b"] = 7;
  a.gauges["wei.spent"] = 1.5;
  b.gauges["wei.spent"] = 2.5;
  a.gauge_maxes["pool.high_water"] = 100.0;
  b.gauge_maxes["pool.high_water"] = 80.0;

  obs::HistogramSnapshot ha, hb;
  ha.bounds = {1.0, 2.0};
  ha.counts = {3, 1, 0};
  ha.count = 4;
  ha.sum = 5.0;
  ha.min = 0.5;
  ha.max = 1.9;
  hb.bounds = {1.0, 2.0};
  hb.counts = {0, 2, 1};
  hb.count = 3;
  hb.sum = 6.0;
  hb.min = 1.2;
  hb.max = 2.8;
  a.histograms["probe.phase"] = ha;
  b.histograms["probe.phase"] = hb;

  obs::MetricsSnapshot merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.counters["net.messages"], 15u);
  EXPECT_EQ(merged.counters["only.b"], 7u);
  EXPECT_DOUBLE_EQ(merged.gauges["wei.spent"], 4.0) << "levels sum across disjoint replicas";
  EXPECT_DOUBLE_EQ(merged.gauge_maxes["pool.high_water"], 100.0) << "high-waters take the max";
  const auto& h = merged.histograms["probe.phase"];
  EXPECT_EQ(h.count, 7u);
  EXPECT_DOUBLE_EQ(h.sum, 11.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 2.8);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 3u);
  EXPECT_EQ(h.counts[1], 3u);
  EXPECT_EQ(h.counts[2], 1u);

  // Order independence: b.merge(a) produces the same snapshot.
  obs::MetricsSnapshot other = b;
  other.merge(a);
  EXPECT_EQ(merged, other);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the acceptance contract of the subsystem.
// ---------------------------------------------------------------------------

core::ScenarioOptions fast_options(uint64_t seed) {
  core::ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 192;
  opt.future_cap = 48;
  opt.background_txs = 128;
  return opt;
}

TEST(Campaign, ThreadsChangeNothingButWallClock) {
  util::Rng rng(9);
  const graph::Graph truth = graph::erdos_renyi_gnm(32, 64, rng);
  const core::ScenarioOptions opt = fast_options(123);
  core::MeasureConfig cfg;
  {
    core::Scenario probe(truth, opt);
    cfg = probe.default_measure_config();
  }

  CampaignOptions copt;
  copt.group_k = 4;
  copt.shards = 4;
  copt.churn_rate = 0.0;

  copt.threads = 1;
  const CampaignResult serial = run_sharded_campaign(truth, opt, cfg, copt);
  copt.threads = 4;
  const CampaignResult parallel = run_sharded_campaign(truth, opt, cfg, copt);

  EXPECT_EQ(serial.shards, 4u);
  EXPECT_EQ(serial.batches, parallel.batches);
  EXPECT_EQ(serial.report.iterations, parallel.report.iterations);
  EXPECT_EQ(serial.report.pairs_tested, parallel.report.pairs_tested);
  EXPECT_EQ(serial.report.txs_sent, parallel.report.txs_sent);
  EXPECT_DOUBLE_EQ(serial.report.sim_seconds, parallel.report.sim_seconds);
  EXPECT_DOUBLE_EQ(serial.makespan_sim_seconds, parallel.makespan_sim_seconds);

  // The merged topologies must match edge-for-edge, not just in count.
  EXPECT_EQ(serial.report.measured.num_edges(), parallel.report.measured.num_edges());
  for (const auto& [u, v] : serial.report.measured.edges()) {
    EXPECT_TRUE(parallel.report.measured.has_edge(u, v)) << u << "-" << v;
  }
  EXPECT_EQ(serial.metrics, parallel.metrics) << "merged metrics are bit-identical too";

  // Sanity: the campaign actually measured something real.
  EXPECT_EQ(serial.report.pairs_tested, 32u * 31 / 2);
  const auto pr = core::compare_graphs(truth, serial.report.measured);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_GE(pr.recall(), 0.9);
}

TEST(Campaign, ShardCountIsPartOfTheIdentityButThreadsAreNot) {
  // Different shard counts may legitimately measure a different sample of
  // the stochastic world; the plan records it so runs are reproducible.
  util::Rng rng(10);
  const graph::Graph truth = graph::erdos_renyi_gnm(12, 20, rng);
  const core::ScenarioOptions opt = fast_options(7);
  core::MeasureConfig cfg;
  {
    core::Scenario probe(truth, opt);
    cfg = probe.default_measure_config();
  }
  CampaignOptions copt;
  copt.group_k = 3;
  copt.shards = 2;
  copt.threads = 2;
  const CampaignResult two = run_sharded_campaign(truth, opt, cfg, copt);
  EXPECT_EQ(two.shards, 2u);
  copt.shards = 3;
  const CampaignResult three = run_sharded_campaign(truth, opt, cfg, copt);
  EXPECT_EQ(three.shards, 3u);
  // Both decompositions cover every pair exactly once.
  EXPECT_EQ(two.report.pairs_tested, 12u * 11 / 2);
  EXPECT_EQ(three.report.pairs_tested, 12u * 11 / 2);
}

}  // namespace
}  // namespace topo::exec
