// End-to-end measureOneLink across every *measurable* client profile
// (paper §5.2's "Configuration of R/U" — the primitive must adapt its price
// ladder and flood sharding to each client's R/U/P/L), plus the negative
// results for the zero-bump clients.

#include <gtest/gtest.h>

#include "core/toposhot.h"
#include "p2p/node.h"
#include "graph/generators.h"

namespace topo::core {
namespace {

class ClientEndToEnd : public ::testing::TestWithParam<mempool::ClientKind> {};

TEST_P(ClientEndToEnd, TriangleMeasurementMatchesTruth) {
  const auto kind = GetParam();
  const auto& profile = mempool::profile_for(kind);

  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);

  ScenarioOptions opt;
  opt.seed = 100 + static_cast<uint64_t>(kind);
  opt.client = kind;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  Scenario sc(g, opt);
  sc.seed_background();

  // Configure the primitive for the target client (§5.2): R from the
  // profile, flood sharded into <= U futures per account.
  MeasureConfig cfg = sc.default_measure_config();
  ASSERT_EQ(cfg.bump_bp, profile.policy.replace_bump_bp);
  ASSERT_LE(cfg.futures_per_account_U, profile.policy.max_futures_per_account);

  const auto linked = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  const auto unlinked = sc.measure_one_link(sc.targets()[0], sc.targets()[3], cfg);

  if (profile.measurable()) {
    EXPECT_TRUE(linked.connected) << profile.name << " true link missed";
    EXPECT_FALSE(unlinked.connected) << profile.name << " false positive";
  } else {
    // Zero-bump clients (Aleth, Nethermind): the ladder degenerates
    // (txA price == txC price), so the primitive cannot certify links.
    EXPECT_FALSE(unlinked.connected) << profile.name << " must stay false-positive-free";
  }
}

INSTANTIATE_TEST_SUITE_P(AllClients, ClientEndToEnd, ::testing::ValuesIn(mempool::kAllClients),
                         [](const ::testing::TestParamInfo<mempool::ClientKind>& info) {
                           return mempool::client_name(info.param);
                         });

TEST(ClientEndToEnd, ParityPendingGateScalesWithPool) {
  // Parity's P = 2000-of-8192 becomes 62-of-256 under scaling; floods must
  // still evict because seeded pools hold more pending than the gate.
  ScenarioOptions opt;
  opt.client = mempool::ClientKind::kParity;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;  // must fit the shrunken pool (ctor validates)
  graph::Graph g(2);
  Scenario sc(g, opt);
  const auto& pool = sc.net().node(sc.targets()[0]).pool();
  EXPECT_EQ(pool.policy().min_pending_for_eviction, 2000u * 256 / 8192);
  EXPECT_EQ(pool.policy().capacity, 256u);
}

}  // namespace
}  // namespace topo::core
