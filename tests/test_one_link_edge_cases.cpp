// Edge-case and failure-injection tests for the measureOneLink primitive:
// the recall culprits of §6.1 reproduced deterministically, the strict
// isolation check, repetitions, and dynamic Y estimation.

#include <gtest/gtest.h>

#include "core/gas_estimator.h"
#include "core/toposhot.h"
#include "graph/generators.h"
#include "p2p/node.h"

namespace topo::core {
namespace {

ScenarioOptions base_options(uint64_t seed) {
  ScenarioOptions opt;
  opt.seed = seed;
  opt.mempool_capacity = 256;
  opt.future_cap = 64;
  opt.background_txs = 192;
  return opt;
}

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

TEST(OneLinkEdgeCases, InsufficientFloodMissesLink) {
  // Z far below the pool content: txC survives, txA cannot replace it.
  Scenario sc(triangle(), base_options(1));
  sc.seed_background();
  MeasureConfig cfg = sc.default_measure_config();
  cfg.flood_Z = 16;
  const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_FALSE(r.connected) << "tiny flood must fail closed (false negative)";
  EXPECT_FALSE(r.txc_evicted_on_b);
}

TEST(OneLinkEdgeCases, UnlimitedFuturesPerAccountStillFloods) {
  // Regression: U = 0 ("the target caps nothing") used to make the flood
  // loop body run zero times — an empty flood, so txC was never evicted and
  // every link measured as a silent false negative. The flood plan now
  // crafts one future per account in that case.
  Scenario sc(triangle(), base_options(10));
  sc.seed_background();
  MeasureConfig cfg = sc.default_measure_config();
  cfg.futures_per_account_U = 0;
  const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected) << "U=0 must not silently skip the eviction flood";
  EXPECT_TRUE(r.txc_evicted_on_a);
  EXPECT_TRUE(r.txc_evicted_on_b);
}

TEST(OneLinkEdgeCases, CustomLargerMempoolNeedsLargerFlood) {
  // Culprit 1 of §6.1: the target runs a double-size pool.
  graph::Graph g = triangle();
  Scenario sc(g, base_options(2));
  mempool::MempoolPolicy big = mempool::profile_for(mempool::ClientKind::kGeth).policy;
  big.capacity = 512;
  big.future_cap = 64;
  sc.net().node(sc.targets()[0]).pool() = mempool::Mempool(big, &sc.chain());
  sc.seed_background();

  MeasureConfig cfg = sc.default_measure_config();  // Z = 256
  auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_FALSE(r.connected) << "default flood cannot evict txC from a 2x pool";

  cfg.flood_Z = 512;  // the pre-processing remedy (§5.2.3)
  r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected);
}

TEST(OneLinkEdgeCases, CustomBumpBlocksReplacement) {
  // Culprit 2: the sink requires a 25% bump; txA's 10.5% over txB fails.
  graph::Graph g = triangle();
  Scenario sc(g, base_options(3));
  mempool::MempoolPolicy proud = mempool::profile_for(mempool::ClientKind::kGeth).policy;
  proud.capacity = 256;
  proud.future_cap = 64;
  proud.replace_bump_bp = 2500;
  sc.net().node(sc.targets()[1]).pool() = mempool::Mempool(proud, &sc.chain());
  sc.seed_background();
  const auto r =
      sc.measure_one_link(sc.targets()[0], sc.targets()[1], sc.default_measure_config());
  EXPECT_FALSE(r.connected);
}

TEST(OneLinkEdgeCases, NonForwardingSourceMissesLink) {
  // Culprit 3: the source buffers txA but never propagates it.
  graph::Graph g = triangle();
  Scenario sc(g, base_options(4));
  sc.seed_background();
  sc.net().node(sc.targets()[0]).mutable_config().forwards_transactions = false;
  const auto r =
      sc.measure_one_link(sc.targets()[0], sc.targets()[1], sc.default_measure_config());
  EXPECT_FALSE(r.connected);
}

TEST(OneLinkEdgeCases, RepetitionsUnionPositives) {
  Scenario sc(triangle(), base_options(5));
  sc.seed_background();
  MeasureConfig cfg = sc.default_measure_config();
  cfg.repetitions = 3;
  const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected);
  // A positive first pass stops early: one pass of ~2 floods + 3 txs.
  EXPECT_LT(r.txs_sent, 2 * (2 * cfg.flood_Z + 3));
}

TEST(OneLinkEdgeCases, DynamicYMatchesMedianEstimator) {
  Scenario sc(triangle(), base_options(6));
  sc.seed_background();
  const eth::Wei median = estimate_price_Y(sc.m().view());
  EXPECT_GT(median, 0u);
  MeasureConfig cfg = sc.default_measure_config();
  EXPECT_EQ(cfg.price_Y, 0u) << "scenario default defers Y to the estimator";
  const auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected);
}

TEST(OneLinkEdgeCases, StrictIsolationDiscardsLeakedMeasurement) {
  // Force a leak: node C has a zero-bump pool, so txA replaces its txC and
  // C relays txA onward. The strict check must then discard the positive,
  // while the relaxed check would happily report it.
  graph::Graph path(3);
  path.add_edge(0, 2);  // A - C
  path.add_edge(2, 1);  // C - B   (A and B NOT adjacent)
  Scenario sc(path, base_options(7));
  mempool::MempoolPolicy flawed = mempool::profile_for(mempool::ClientKind::kGeth).policy;
  flawed.capacity = 256;
  flawed.future_cap = 64;
  flawed.replace_bump_bp = 0;  // the Aleth-style zero-bump flaw
  sc.net().node(sc.targets()[2]).pool() = mempool::Mempool(flawed, &sc.chain());
  sc.seed_background();

  MeasureConfig cfg = sc.default_measure_config();
  cfg.strict_isolation_check = true;
  auto r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_FALSE(r.connected) << "leak observed at M -> measurement discarded";

  cfg.strict_isolation_check = false;
  r = sc.measure_one_link(sc.targets()[0], sc.targets()[1], cfg);
  EXPECT_TRUE(r.connected) << "without the check the leak is a false positive";
}

TEST(OneLinkEdgeCases, MinedTxCKillsMeasurementSafely) {
  // An aggressive miner includes txC mid-measurement: the sender nonce is
  // consumed, txA/txB go stale, and the result is a clean negative.
  graph::Graph g = triangle();
  ScenarioOptions opt = base_options(8);
  opt.background_price_lo = eth::gwei(10.0);  // txC (median) is attractive
  opt.background_price_hi = eth::gwei(11.0);
  opt.block_gas_limit = 200 * eth::kTransferGas;  // blocks swallow the pool
  Scenario sc(g, opt);
  sc.seed_background();
  sc.net().start_mining({sc.targets()[2]}, 4.0);
  const auto r =
      sc.measure_one_link(sc.targets()[0], sc.targets()[1], sc.default_measure_config());
  EXPECT_FALSE(r.connected);
}

TEST(OneLinkEdgeCases, SelfPairAndIsolatedNodes) {
  // Disconnected targets: nothing propagates, measurement is negative.
  graph::Graph g(3);
  g.add_edge(0, 2);
  Scenario sc(g, base_options(9));
  sc.seed_background();
  const auto r =
      sc.measure_one_link(sc.targets()[0], sc.targets()[1], sc.default_measure_config());
  EXPECT_FALSE(r.connected);
}

}  // namespace
}  // namespace topo::core
