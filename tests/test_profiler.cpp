// The §5.1 client-profiling tests: the black-box profiler must recover the
// Table 3 parameters of every client from add() outcomes alone.

#include <gtest/gtest.h>

#include "core/profiler.h"

namespace topo::core {
namespace {

using mempool::ClientKind;

struct Expected {
  ClientKind kind;
  double bump;
  uint64_t u;
  bool u_unbounded;
  size_t p;
  size_t l;
  bool measurable;
};

class ProfilerTable3 : public ::testing::TestWithParam<Expected> {};

TEST_P(ProfilerTable3, RecoversPaperParameters) {
  const Expected& e = GetParam();
  ClientProfiler profiler;
  const auto est = profiler.profile(e.kind);
  EXPECT_NEAR(est.replace_bump_fraction, e.bump, 1e-5);
  EXPECT_EQ(est.futures_unbounded, e.u_unbounded);
  if (!e.u_unbounded) {
    EXPECT_EQ(est.max_futures_per_account, e.u);
  }
  EXPECT_EQ(est.min_pending_for_eviction, e.p);
  EXPECT_EQ(est.capacity, e.l);
  EXPECT_EQ(est.measurable, e.measurable);
}

INSTANTIATE_TEST_SUITE_P(
    AllClients, ProfilerTable3,
    ::testing::Values(
        Expected{ClientKind::kGeth, 0.10, 4096, false, 0, 5120, true},
        Expected{ClientKind::kParity, 0.125, 81, false, 2000, 8192, true},
        Expected{ClientKind::kNethermind, 0.0, 17, false, 0, 2048, false},
        Expected{ClientKind::kBesu, 0.10, 0, true, 0, 4096, true},
        Expected{ClientKind::kAleth, 0.0, 1, false, 0, 2048, false}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      return mempool::client_name(info.param.kind);
    });

TEST(Profiler, CustomPolicyRecovered) {
  mempool::MempoolPolicy p;
  p.replace_bump_bp = 555;  // 5.55%
  p.max_futures_per_account = 13;
  p.min_pending_for_eviction = 50;
  p.capacity = 300;
  p.future_cap = 100;
  ClientProfiler profiler(1 << 12);
  const auto est = profiler.profile(p);
  EXPECT_NEAR(est.replace_bump_fraction, 0.0555, 1e-4);
  EXPECT_EQ(est.max_futures_per_account, 13u);
  EXPECT_EQ(est.min_pending_for_eviction, 50u);
  EXPECT_EQ(est.capacity, 300u);
  EXPECT_TRUE(est.measurable);
}

}  // namespace
}  // namespace topo::core
