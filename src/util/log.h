#pragma once

#include <string>

namespace topo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// that benches stay quiet unless asked.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void log(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define TOPO_DEBUG(...) ::topo::util::log(::topo::util::LogLevel::kDebug, __VA_ARGS__)
#define TOPO_INFO(...) ::topo::util::log(::topo::util::LogLevel::kInfo, __VA_ARGS__)
#define TOPO_WARN(...) ::topo::util::log(::topo::util::LogLevel::kWarn, __VA_ARGS__)
#define TOPO_ERROR(...) ::topo::util::log(::topo::util::LogLevel::kError, __VA_ARGS__)

}  // namespace topo::util
