#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

namespace topo::util {

/// Tiny --key=value / --flag argument parser for the bench and example
/// binaries. Unrecognized positional arguments are rejected so typos fail
/// loudly, and so are malformed values: the numeric getters exit(2) on
/// trailing garbage ("--shards=4x"), non-numeric input ("--threads=abc"),
/// or out-of-range magnitudes instead of silently running with 0 or a
/// truncated prefix. get_bool is case-insensitive (true/yes/on, false/no/off)
/// and rejects anything else.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  int64_t get_int(const std::string& key, int64_t def) const;
  uint64_t get_uint(const std::string& key, uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Enumerated string option: the value (or `def` when absent) must be one
  /// of `allowed`, otherwise exit(2) listing the vocabulary. Matching is
  /// exact — enumerations are lowercase by convention here.
  std::string get_choice(const std::string& key, const std::string& def,
                         std::initializer_list<std::string_view> allowed) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace topo::util
