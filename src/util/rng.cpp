#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace topo::util {

namespace {

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t derive_stream_seed(uint64_t base, uint64_t stream) {
  // Mix the base first so that stream 0 of base b is unrelated to base b
  // itself (a shard must never accidentally replay the parent world).
  uint64_t state = base;
  const uint64_t mixed_base = splitmix64(state);
  state ^= (stream + 1) * 0x9e3779b97f4a7c15ULL;
  return mixed_base ^ splitmix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::uniform_int(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % span;
}

size_t Rng::index(size_t n) { return static_cast<size_t>(uniform_int(0, n - 1)); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(normal(0.0, sigma));
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::vector<size_t> Rng::sample_indices(size_t n, size_t k) {
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  if (k > n) k = n;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace topo::util
