#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace topo::util {

/// Minimal fixed-width ASCII table printer used by the bench harnesses to
/// emit the paper's tables. Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders to the stream with a header separator line.
  void print(std::ostream& os) const;

  /// Renders to a string.
  std::string to_string() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string fmt(double v, int decimals = 3);

/// Formats an integral count with no decoration.
std::string fmt(long long v);
std::string fmt(unsigned long long v);
std::string fmt(size_t v);
std::string fmt(int v);

/// Formats a ratio as a percentage string, e.g. 0.884 -> "88.4%".
std::string fmt_pct(double ratio, int decimals = 1);

}  // namespace topo::util
