#include "util/cli.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace topo::util {

namespace {

[[noreturn]] void reject(const std::string& key, const std::string& value, const char* expected) {
  std::fprintf(stderr, "invalid value for --%s: '%s' (expected %s)\n", key.c_str(), value.c_str(),
               expected);
  std::exit(2);
}

std::string lowercased(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s (expected --key=value)\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    // insert_or_assign with materialized strings: the operator[]-then-assign
    // form trips a GCC 12 -Wrestrict false positive at -O2.
    if (eq == std::string_view::npos) {
      kv_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      kv_.insert_or_assign(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

int64_t Cli::get_int(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) reject(key, it->second, "an integer");
  return v;
}

uint64_t Cli::get_uint(const std::string& key, uint64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  // strtoull silently wraps negative input ("-4" parses as 2^64-4), so the
  // sign has to be rejected up front.
  if (it->second.find('-') != std::string::npos) {
    reject(key, it->second, "a non-negative integer");
  }
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    reject(key, it->second, "a non-negative integer");
  }
  return v;
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  // ERANGE also fires on harmless subnormal underflow; only overflow to
  // +/-HUGE_VAL is a real out-of-range input.
  const bool overflow = errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL);
  if (end == s || *end != '\0' || overflow) reject(key, it->second, "a number");
  return v;
}

std::string Cli::get_string(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::string Cli::get_choice(const std::string& key, const std::string& def,
                            std::initializer_list<std::string_view> allowed) const {
  const std::string v = get_string(key, def);
  for (std::string_view a : allowed) {
    if (v == a) return v;
  }
  std::string vocabulary = "one of {";
  bool first = true;
  for (std::string_view a : allowed) {
    if (!first) vocabulary += ", ";
    vocabulary += a;
    first = false;
  }
  vocabulary += "}";
  reject(key, v, vocabulary.c_str());
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string v = lowercased(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  reject(key, it->second, "a boolean (true/false/yes/no/on/off/1/0)");
}

}  // namespace topo::util
