#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace topo::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s (expected --key=value)\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    // insert_or_assign with materialized strings: the operator[]-then-assign
    // form trips a GCC 12 -Wrestrict false positive at -O2.
    if (eq == std::string_view::npos) {
      kv_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      kv_.insert_or_assign(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

int64_t Cli::get_int(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

uint64_t Cli::get_uint(const std::string& key, uint64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace topo::util
