#pragma once

#include <memory>
#include <utility>

namespace topo::util {

/// Copy-on-write handle: the overlay primitive behind world snapshots.
///
/// A `Cow<T>` owns a `shared_ptr<T>`. Reads (`operator*`/`->`) never copy.
/// Writers call `mutate()`, which clones the payload only when the handle is
/// shared (use_count > 1) — a snapshot therefore costs one refcount bump per
/// layer, and the first write after a fork pays exactly one deep copy of the
/// layer it touches ("O(dirty pages)" at the granularity of one state blob
/// per subsystem). A world that is never written after forking shares every
/// byte with its base forever.
///
/// Thread-safety: the shared_ptr control block makes concurrent forking and
/// concurrent *diverging* mutation safe (each writer clones into a private
/// copy). Two threads must not mutate the SAME handle concurrently, same as
/// any other non-atomic member.
template <typename T>
class Cow {
 public:
  Cow() : p_(std::make_shared<T>()) {}
  explicit Cow(T value) : p_(std::make_shared<T>(std::move(value))) {}

  // Copying a handle shares the payload; this IS the snapshot operation.
  Cow(const Cow&) = default;
  Cow(Cow&&) noexcept = default;
  Cow& operator=(const Cow&) = default;
  Cow& operator=(Cow&&) noexcept = default;

  const T& operator*() const { return *p_; }
  const T* operator->() const { return p_.get(); }
  const T& read() const { return *p_; }

  /// Returns a uniquely-owned mutable payload, cloning first if shared.
  T& mutate() {
    if (p_.use_count() != 1) p_ = std::make_shared<T>(*p_);
    return *p_;
  }

  /// True when this handle is the only owner (a write would not clone).
  bool unique() const { return p_.use_count() == 1; }

 private:
  std::shared_ptr<T> p_;
};

}  // namespace topo::util
