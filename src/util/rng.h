#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace topo::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component of the simulator draws from an explicitly
/// seeded Rng so that all experiments are reproducible bit-for-bit. The
/// generator is cheap to copy; independent streams are derived with split().
/// One splitmix64 step: advances `state` and returns the next value of the
/// stream. The same mixer Rng uses for seeding, exposed for stateless seed
/// derivation.
uint64_t splitmix64(uint64_t& state);

/// Derives the seed of child stream `stream` from a base seed, via
/// splitmix64. Deterministic, and unrelated streams for nearby (base,
/// stream) pairs — how sharded campaigns (topo::exec) re-seed per-shard
/// world replicas so results are reproducible for any thread count.
uint64_t derive_stream_seed(uint64_t base, uint64_t stream);

class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  uint64_t uniform_int(uint64_t lo, uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  size_t index(size_t n);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mu, double sigma);

  /// A log-normal value parameterized by the median and sigma of log-space.
  double lognormal(double median, double sigma);

  /// Derives an independent child stream; deterministic given this state.
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> sample_indices(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace topo::util
