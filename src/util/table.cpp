#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace topo::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt(long long v) { return std::to_string(v); }
std::string fmt(unsigned long long v) { return std::to_string(v); }
std::string fmt(size_t v) { return std::to_string(v); }
std::string fmt(int v) { return std::to_string(v); }

std::string fmt_pct(double ratio, int decimals) {
  return fmt(ratio * 100.0, decimals) + "%";
}

}  // namespace topo::util
