#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace topo::util {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than two samples.
double variance(const std::vector<double>& xs);

/// Population standard deviation.
double stddev(const std::vector<double>& xs);

/// Median (average of the middle two for even sizes); 0 for empty input.
double median(std::vector<double> xs);

/// q-th percentile in [0, 100] with linear interpolation; 0 for empty input.
double percentile(std::vector<double> xs, double q);

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0 when either series is constant or sizes mismatch.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Online accumulator for mean / variance / min / max (Welford).
class Accumulator {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Integer histogram keyed by value (used for degree distributions).
class Histogram {
 public:
  void add(long long v, size_t weight = 1);
  size_t total() const { return total_; }
  const std::map<long long, size_t>& buckets() const { return buckets_; }
  /// Fraction of samples equal to v.
  double fraction(long long v) const;
  long long min() const;
  long long max() const;
  double mean() const;

 private:
  std::map<long long, size_t> buckets_;
  size_t total_ = 0;
};

}  // namespace topo::util
