#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace topo::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (q <= 0.0) return xs.front();
  if (q >= 100.0) return xs.back();
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Histogram::add(long long v, size_t weight) {
  buckets_[v] += weight;
  total_ += weight;
}

double Histogram::fraction(long long v) const {
  if (total_ == 0) return 0.0;
  auto it = buckets_.find(v);
  if (it == buckets_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

long long Histogram::min() const { return buckets_.empty() ? 0 : buckets_.begin()->first; }

long long Histogram::max() const { return buckets_.empty() ? 0 : buckets_.rbegin()->first; }

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [v, c] : buckets_) s += static_cast<double>(v) * static_cast<double>(c);
  return s / static_cast<double>(total_);
}

}  // namespace topo::util
