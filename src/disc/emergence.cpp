#include "disc/emergence.h"

#include <algorithm>

#include "disc/dialer.h"
#include "disc/discv4.h"
#include "graph/metrics.h"

namespace topo::disc {

EmergenceConfig ropsten_like(size_t scale_nodes) {
  // Calibrated against paper Fig. 6 / Table 4: at n=588 this recipe yields
  // m ~ 7490 (paper 7496), mean degree 25.5 (25.5), clustering ~0.20
  // (0.207), transitivity ~0.13 (0.127), assortativity ~ -0.17 (-0.152),
  // and Louvain modularity *below* the same-size ER graph — the paper's
  // headline partition-resilience property.
  EmergenceConfig cfg;
  cfg.name = "ropsten";
  cfg.nodes = scale_nodes;
  cfg.base_budget_lo = 2;
  cfg.base_budget_hi = 54;
  cfg.low_fraction = 0.12;
  cfg.low_budget_lo = 1;
  cfg.low_budget_hi = 10;
  // The hub tail (Fig. 6 omits "ten nodes with degree between 90 and 200";
  // the emergent graph realizes roughly 60-70% of a hub's slot budget).
  const size_t supers = std::max<size_t>(1, scale_nodes * 18 / 588);
  for (size_t i = 0; i < supers; ++i) {
    cfg.supernode_budgets.push_back(std::min(scale_nodes / 2, 110 + 11 * i));
  }
  return cfg;
}

EmergenceConfig rinkeby_like(size_t scale_nodes) {
  EmergenceConfig cfg;
  cfg.name = "rinkeby";
  cfg.nodes = scale_nodes;
  // Evenly spread degrees 15..180 with a leafy low end (Fig. 8 text); the
  // budget range is chosen so the realized average degree lands near the
  // paper's 2m/n ~ 69. Rinkeby's dense even spread means mid-size nodes
  // dial aggressively, and the thick hub tail drives modularity to the
  // lowest of the three testnets (Table 9's 0.0106).
  cfg.base_budget_lo = 15;
  cfg.base_budget_hi = 190;
  cfg.low_fraction = 0.30;
  cfg.low_budget_lo = 1;
  cfg.low_budget_hi = 15;
  cfg.out_fraction = 1.0;
  cfg.crawl_budget_threshold = 16;  // everything non-leaf joins the core
  return cfg;
}

EmergenceConfig goerli_like(size_t scale_nodes) {
  EmergenceConfig cfg;
  cfg.name = "goerli";
  cfg.nodes = scale_nodes;
  cfg.base_budget_lo = 1;
  cfg.base_budget_hi = 82;
  cfg.low_fraction = 0.20;
  cfg.low_budget_lo = 1;
  cfg.low_budget_hi = 8;
  // Fig. 10's heavy tail, proportionally scaled.
  const double scale = static_cast<double>(scale_nodes) / 1025.0;
  auto scaled = [&](size_t b) {
    return std::max<size_t>(4, static_cast<size_t>(static_cast<double>(b) * scale));
  };
  for (size_t i = 0; i < 12; ++i) cfg.supernode_budgets.push_back(scaled(100 + 4 * i));
  for (size_t i = 0; i < 3; ++i) cfg.supernode_budgets.push_back(scaled(150 + 15 * i));
  for (size_t i = 0; i < 4; ++i) cfg.supernode_budgets.push_back(scaled(200 + 25 * i));
  for (size_t i = 0; i < 3; ++i) cfg.supernode_budgets.push_back(scaled(300 + 65 * i));
  cfg.supernode_budgets.push_back(scaled(697));
  cfg.supernode_budgets.push_back(scaled(711));
  cfg.crawl_weighted = false;      // hubs spread uniformly over the network
  cfg.crawl_avoid_crawl = true;    // and do not form a hub club
  cfg.global_candidates = true;    // ordinary dialing is globally uniform
  return cfg;
}

namespace {

/// Shared tail of topology emergence: budget assignment + dialing over any
/// populated table view.
graph::Graph dial_over_tables(const EmergenceConfig& cfg, const DiscoverySim& disc,
                              util::Rng& rng);

}  // namespace

graph::Graph emerge_topology_discv4(const EmergenceConfig& cfg, util::Rng& rng,
                                    double protocol_seconds, double loss) {
  // Build routing tables with the real protocol, then mirror them into a
  // DiscoverySim-compatible snapshot for the dial scheduler.
  sim::Simulator sim;
  DiscV4Net protocol(&sim, rng.split(), 0.03, loss);
  for (size_t i = 0; i < cfg.nodes; ++i) protocol.add_node();
  protocol.converge(protocol_seconds);

  DiscoverySim snapshot(cfg.nodes, rng.split(), 0);
  for (size_t i = 0; i < cfg.nodes; ++i) {
    for (const auto entry : protocol.node(static_cast<uint32_t>(i)).table_entries()) {
      snapshot.adopt_entry(i, entry);
    }
  }
  return dial_over_tables(cfg, snapshot, rng);
}

graph::Graph emerge_topology(const EmergenceConfig& cfg, util::Rng& rng) {
  DiscoverySim disc(cfg.nodes, rng.split(), cfg.boot_fanout);
  disc.run_until_filled(cfg.table_fill);
  return dial_over_tables(cfg, disc, rng);
}

namespace {

graph::Graph dial_over_tables(const EmergenceConfig& cfg, const DiscoverySim& disc,
                              util::Rng& rng) {

  DialerConfig dial;
  dial.max_peers.resize(cfg.nodes);
  dial.max_out.resize(cfg.nodes);
  dial.crawl_all.assign(cfg.nodes, 0);
  for (size_t i = 0; i < cfg.nodes; ++i) {
    if (i < cfg.supernode_budgets.size()) {
      // Supernodes (relay/pool-style services) crawl the whole network and
      // dial out for their full budget — this is what interconnects the
      // hubs, lifts clustering, and pushes modularity below random graphs.
      dial.max_peers[i] = std::min<size_t>(cfg.supernode_budgets[i], cfg.nodes - 1);
      dial.max_out[i] = dial.max_peers[i];
      dial.crawl_all[i] = 1;
    } else {
      if (rng.chance(cfg.low_fraction)) {
        dial.max_peers[i] = rng.uniform_int(cfg.low_budget_lo, cfg.low_budget_hi);
      } else {
        dial.max_peers[i] = rng.uniform_int(cfg.base_budget_lo, cfg.base_budget_hi);
      }
      if (dial.max_peers[i] >= cfg.crawl_budget_threshold) {
        dial.max_out[i] = dial.max_peers[i];
        dial.crawl_all[i] = 1;
      } else {
        dial.max_out[i] = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(dial.max_peers[i]) * cfg.out_fraction));
      }
    }
  }
  dial.crawl_weighted = cfg.crawl_weighted;
  if (cfg.global_candidates) {
    for (size_t i = 0; i < cfg.nodes; ++i) dial.crawl_all[i] = 1;
  }
  if (cfg.crawl_avoid_crawl) {
    // Hubs acquire links only through their own outbound dials.
    dial.crawl_skip.assign(cfg.nodes, 0);
    for (size_t i = 0; i < cfg.supernode_budgets.size() && i < cfg.nodes; ++i)
      dial.crawl_skip[i] = 1;
  }
  // Fine-grained rounds let every node's degree grow in parallel, which
  // suppresses the rich-club (positive assortativity) a coarse dial order
  // would create when small nodes saturate early.
  dial.attempts_per_round = 2;
  dial.rounds = 512;

  graph::Graph g = form_active_topology(disc, dial, rng);

  if (cfg.ensure_connected) {
    auto comps = graph::connected_components(g);
    if (comps.size() > 1) {
      auto big = std::max_element(comps.begin(), comps.end(), [](const auto& a, const auto& b) {
        return a.size() < b.size();
      });
      for (auto it = comps.begin(); it != comps.end(); ++it) {
        if (it == big) continue;
        const graph::NodeId u = (*it)[rng.index(it->size())];
        const graph::NodeId v = (*big)[rng.index(big->size())];
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

}  // namespace

}  // namespace topo::disc
