#include "disc/discovery.h"

#include <algorithm>
#include <unordered_set>

namespace topo::disc {

DiscoverySim::DiscoverySim(size_t n, util::Rng rng, size_t boot_fanout, size_t num_buckets,
                           size_t bucket_size)
    : rng_(rng) {
  ids_.reserve(n);
  tables_.reserve(n);
  for (size_t i = 0; i < n; ++i) ids_.push_back(random_id(rng_));
  for (size_t i = 0; i < n; ++i) tables_.emplace_back(ids_[i], num_buckets, bucket_size);
  // Bootstrap: each node learns a few random seeds (the bootnode handshake).
  for (size_t i = 0; i < n; ++i) {
    for (size_t b = 0; b < boot_fanout; ++b) {
      const size_t j = rng_.index(n);
      if (j != i) tables_[i].add(static_cast<uint32_t>(j), ids_[j]);
    }
  }
}

void DiscoverySim::lookup(size_t node, const NodeId256& target) {
  constexpr size_t kAlpha = 3;
  const size_t k = 16;
  auto frontier = tables_[node].closest(target, kAlpha);
  std::unordered_set<uint32_t> asked;
  size_t hops = 0;
  while (!frontier.empty() && hops++ < 8) {
    std::vector<uint32_t> next;
    for (uint32_t peer : frontier) {
      if (!asked.insert(peer).second) continue;
      // FIND_NODE(peer, target): peer answers with its k closest entries.
      for (uint32_t found : tables_[peer].closest(target, k)) {
        if (found == node) continue;
        tables_[node].add(found, ids_[found]);
        next.push_back(found);
      }
      // The queried peer also learns about the asker (devp2p ping/pong).
      tables_[peer].add(static_cast<uint32_t>(node), ids_[node]);
    }
    // Continue toward the closest unasked responders.
    std::sort(next.begin(), next.end(), [&](uint32_t a, uint32_t b) {
      return distance_less(xor_distance(ids_[a], target), xor_distance(ids_[b], target));
    });
    frontier.clear();
    for (uint32_t c : next) {
      if (!asked.count(c)) frontier.push_back(c);
      if (frontier.size() >= kAlpha) break;
    }
  }
}

void DiscoverySim::run_round(size_t lookups) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    // One self-lookup plus random-target lookups, like discv4 refresh.
    lookup(i, ids_[i]);
    for (size_t l = 1; l < lookups; ++l) lookup(i, random_id(rng_));
  }
}

void DiscoverySim::run_until_filled(double fill, size_t max_rounds) {
  for (size_t r = 0; r < max_rounds; ++r) {
    if (average_fill() >= fill) return;
    run_round();
  }
}

double DiscoverySim::average_fill() const {
  if (tables_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : tables_) {
    const size_t cap = std::min(t.capacity(), tables_.size() - 1);
    if (cap > 0) s += static_cast<double>(t.size()) / static_cast<double>(cap);
  }
  return s / static_cast<double>(tables_.size());
}

}  // namespace topo::disc
