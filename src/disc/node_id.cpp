#include "disc/node_id.h"

#include <bit>

namespace topo::disc {

NodeId256 random_id(util::Rng& rng) {
  NodeId256 id;
  for (auto& w : id.words) w = rng.next();
  return id;
}

NodeId256 xor_distance(const NodeId256& a, const NodeId256& b) {
  NodeId256 d;
  for (size_t i = 0; i < 4; ++i) d.words[i] = a.words[i] ^ b.words[i];
  return d;
}

int log_distance(const NodeId256& a, const NodeId256& b) {
  const NodeId256 d = xor_distance(a, b);
  for (size_t i = 0; i < 4; ++i) {
    if (d.words[i] != 0) {
      const int msb = 63 - std::countl_zero(d.words[i]);
      return static_cast<int>((3 - i) * 64) + msb;
    }
  }
  return -1;
}

bool distance_less(const NodeId256& a, const NodeId256& b) {
  for (size_t i = 0; i < 4; ++i) {
    if (a.words[i] != b.words[i]) return a.words[i] < b.words[i];
  }
  return false;
}

}  // namespace topo::disc
