#include "disc/kademlia_table.h"

#include <algorithm>

namespace topo::disc {

KademliaTable::KademliaTable(NodeId256 self, size_t num_buckets, size_t bucket_size)
    : self_(self), bucket_size_(bucket_size), buckets_(num_buckets) {}

size_t KademliaTable::bucket_of(const NodeId256& id) const {
  const int ld = log_distance(self_, id);
  if (ld < 0) return 0;
  // Geth maps log-distances <= 239 into bucket 0 and spreads the closest 17
  // distances over the buckets; mirror that scheme for any bucket count.
  const int base = 256 - static_cast<int>(buckets_.size());
  const int idx = ld - base;
  return static_cast<size_t>(std::max(idx, 0));
}

bool KademliaTable::add(uint32_t node, const NodeId256& id) {
  if (id == self_ || known_.count(node)) return false;
  auto& bucket = buckets_[bucket_of(id)];
  if (bucket.size() >= bucket_size_) return false;
  bucket.push_back(Entry{node, id});
  known_.insert(node);
  ++count_;
  return true;
}

std::vector<uint32_t> KademliaTable::closest(const NodeId256& target, size_t k) const {
  std::vector<const Entry*> all;
  all.reserve(count_);
  for (const auto& bucket : buckets_) {
    for (const auto& e : bucket) all.push_back(&e);
  }
  std::sort(all.begin(), all.end(), [&](const Entry* a, const Entry* b) {
    return distance_less(xor_distance(a->id, target), xor_distance(b->id, target));
  });
  std::vector<uint32_t> out;
  out.reserve(std::min(k, all.size()));
  for (size_t i = 0; i < all.size() && i < k; ++i) out.push_back(all[i]->node);
  return out;
}

std::vector<uint32_t> KademliaTable::entries() const {
  std::vector<uint32_t> out;
  out.reserve(count_);
  for (const auto& bucket : buckets_) {
    for (const auto& e : bucket) out.push_back(e.node);
  }
  return out;
}

}  // namespace topo::disc
