#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::disc {

/// Recipe for letting a testnet-like topology *emerge* from the discovery +
/// dial substrate (rather than synthesizing it from a generator). Degree
/// heterogeneity is expressed as per-node active-slot budgets.
struct EmergenceConfig {
  std::string name = "testnet";
  size_t nodes = 588;

  /// Baseline budget range (uniform, inclusive) for ordinary nodes.
  size_t base_budget_lo = 1;
  size_t base_budget_hi = 55;

  /// Fraction of ordinary nodes drawn from the low range instead (leaf-ish
  /// nodes with single-digit degrees).
  double low_fraction = 0.0;
  size_t low_budget_lo = 1;
  size_t low_budget_hi = 12;

  /// Explicit budgets for supernodes (e.g. Goerli's 697/711-degree nodes);
  /// assigned to the first nodes in order.
  std::vector<size_t> supernode_budgets;

  /// Fraction of an ordinary node's budget it fills by dialing out.
  double out_fraction = 1.0 / 3.0;

  /// Ordinary nodes whose budget reaches this threshold behave like
  /// services: crawl the whole network and dial out their full budget.
  size_t crawl_budget_threshold = SIZE_MAX;

  /// Whether crawlers pick targets weighted by remaining capacity (dense
  /// core, Rinkeby-like) or uniformly (spread hubs, Goerli-like).
  bool crawl_weighted = true;

  /// Crawler hubs avoid each other (no hub club; keeps clustering at
  /// ER level, Goerli-like).
  bool crawl_avoid_crawl = false;

  /// Every node picks dial targets uniformly from the whole network
  /// instead of its routing-table neighborhood (kills the table-locality
  /// triangles; Goerli's clustering sits at the ER level).
  bool global_candidates = false;

  /// Discovery table fill target before dialing starts.
  double table_fill = 0.7;
  size_t boot_fanout = 4;

  /// Connect stray components to the giant one afterwards (the paper's
  /// model assumes a connected network).
  bool ensure_connected = true;
};

/// Ropsten-like recipe: n=588, avg degree ~25, ten 90-200 degree nodes.
EmergenceConfig ropsten_like(size_t scale_nodes = 588);

/// Rinkeby-like: n=446, avg degree ~69, many leaves, even spread 15-180.
EmergenceConfig rinkeby_like(size_t scale_nodes = 446);

/// Goerli-like: n=1025, avg degree ~36, heavy tail up to ~711.
EmergenceConfig goerli_like(size_t scale_nodes = 1025);

/// Runs discovery + dialing and returns the active-link topology.
graph::Graph emerge_topology(const EmergenceConfig& cfg, util::Rng& rng);

/// Same recipe, but the routing tables are built by the event-driven
/// discv4 protocol (PING/PONG/FINDNODE with timeouts and loss) instead of
/// the round-based bulk simulation — slower, protocol-exact. `loss` is the
/// datagram drop probability.
graph::Graph emerge_topology_discv4(const EmergenceConfig& cfg, util::Rng& rng,
                                    double protocol_seconds = 90.0, double loss = 0.0);

}  // namespace topo::disc
