#pragma once

#include <vector>

#include "disc/discovery.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace topo::disc {

/// Active-neighbor formation on top of populated routing tables (the
/// blockchain overlay of paper Fig. 1): each node repeatedly dials
/// candidates drawn from its own table *and its table entries' tables*
/// (the neighbors-of-neighbors candidate buffer of §6.2.2), deduplicating
/// already-active peers, until its outbound budget or the remote's slot
/// budget is exhausted.
struct DialerConfig {
  /// Per-node max active peers; indexed by node, so heterogeneous budgets
  /// (testnet supernodes with hundreds of slots) are expressible.
  std::vector<size_t> max_peers;

  /// Fraction of slots a node fills by dialing out (Geth dials ~1/3 and
  /// accepts the rest).
  double dial_ratio = 1.0 / 3.0;

  /// Per-node outbound-dial budget override; empty = max_peers * dial_ratio.
  /// Supernodes (relays, pools) dial out for their whole budget.
  std::vector<size_t> max_out;

  /// Nodes flagged here crawl the entire network as their candidate pool
  /// (aggressively connecting services), not just their routing-table
  /// neighborhood.
  std::vector<uint8_t> crawl_all;

  /// Crawl target choice: weighted by remaining slot capacity
  /// (stub-matching, builds a dense core) vs uniform over non-full nodes
  /// (hubs spread across the whole network).
  bool crawl_weighted = true;

  /// Targets crawlers must skip (e.g. hub nodes, so hubs do not form a
  /// club: each hub's links come only from its own outbound dials).
  std::vector<uint8_t> crawl_skip;

  /// Dial attempts per round per node.
  size_t attempts_per_round = 8;

  size_t rounds = 64;
};

/// Runs the dial scheduler; returns the resulting active-link topology.
graph::Graph form_active_topology(const DiscoverySim& disc, const DialerConfig& cfg,
                                  util::Rng& rng);

}  // namespace topo::disc
