#pragma once

#include <array>
#include <cstdint>

#include "util/rng.h"

namespace topo::disc {

/// 256-bit Kademlia node identifier (the keccak of a devp2p public key in
/// real Ethereum).
struct NodeId256 {
  std::array<uint64_t, 4> words{};

  bool operator==(const NodeId256& o) const { return words == o.words; }
};

/// Uniformly random id.
NodeId256 random_id(util::Rng& rng);

/// XOR metric distance.
NodeId256 xor_distance(const NodeId256& a, const NodeId256& b);

/// Kademlia log-distance: index of the highest set bit of a^b, in [0, 255];
/// -1 when a == b.
int log_distance(const NodeId256& a, const NodeId256& b);

/// Lexicographic (big-endian) comparison of distances.
bool distance_less(const NodeId256& a, const NodeId256& b);

}  // namespace topo::disc
