#pragma once

// Event-driven discv4: the UDP discovery protocol of the platform overlay
// (paper Fig. 1 / §2), run over the discrete-event simulator with datagram
// loss and timeouts. This is the protocol counterpart of the round-based
// DiscoverySim used for bulk topology emergence:
//
//   PING / PONG          — endpoint proof + liveness (last-seen tracking);
//   FINDNODE / NEIGHBORS — iterative Kademlia lookups (alpha = 3);
//   bucket maintenance   — full buckets challenge their least-recently seen
//                          entry with a PING; only on timeout is the old
//                          entry replaced (the anti-eclipse policy);
//   refresh              — periodic self-lookup plus random-target lookups.

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "disc/node_id.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace topo::disc {

class DiscV4Net;

/// Tunables for one discv4 node.
struct DiscV4Config {
  size_t bucket_size = 16;
  size_t num_buckets = 17;
  double ping_timeout = 0.5;     ///< seconds before a PING counts as dead
  double refresh_interval = 30;  ///< periodic lookup cadence
  size_t lookup_alpha = 3;
  size_t lookup_k = 16;          ///< entries returned per NEIGHBORS
};

/// One discovery endpoint.
class DiscV4Node {
 public:
  DiscV4Node(uint32_t index, NodeId256 id, DiscV4Config config, DiscV4Net* net,
             util::Rng rng);

  uint32_t index() const { return index_; }
  const NodeId256& id() const { return id_; }

  /// Seeds the table with a bootstrap contact and starts the refresh loop.
  void bootstrap(uint32_t seed_index, const NodeId256& seed_id);

  /// Runs one iterative lookup toward `target`; `done` receives the closest
  /// nodes found (may fire after several round trips).
  void lookup(const NodeId256& target,
              std::function<void(std::vector<uint32_t>)> done = nullptr);

  /// Table entries currently believed alive.
  std::vector<uint32_t> table_entries() const;
  size_t table_size() const { return entries_.size(); }

  /// Last PONG time per contact (the Monero-style last_seen signal the
  /// related work exploits).
  std::optional<double> last_seen(uint32_t index) const;

  // -- datagram handlers (invoked by DiscV4Net) ----------------------------
  void on_ping(uint32_t from, const NodeId256& from_id);
  void on_pong(uint32_t from);
  void on_findnode(uint32_t from, const NodeId256& from_id, const NodeId256& target);
  void on_neighbors(uint32_t from, const std::vector<std::pair<uint32_t, NodeId256>>& nodes);

 private:
  struct Entry {
    uint32_t index;
    NodeId256 id;
    double last_pong = -1.0;
  };
  struct Lookup {
    NodeId256 target;
    std::vector<uint32_t> asked;
    std::unordered_set<uint32_t> responded;
    std::unordered_set<uint32_t> timed_out;
    std::vector<std::pair<uint32_t, NodeId256>> candidates;
    size_t in_flight = 0;
    std::function<void(std::vector<uint32_t>)> done;
  };

  size_t bucket_of(const NodeId256& id) const;
  void consider(uint32_t index, const NodeId256& id);
  void ping(uint32_t index);
  void lookup_step(size_t lookup_idx);
  void finish_lookup(size_t lookup_idx);
  std::vector<std::pair<uint32_t, NodeId256>> closest(const NodeId256& target, size_t k) const;

  uint32_t index_;
  NodeId256 id_;
  DiscV4Config config_;
  DiscV4Net* net_;
  util::Rng rng_;

  std::vector<std::vector<Entry>> buckets_;
  std::unordered_map<uint32_t, size_t> entries_;  // index -> bucket
  std::unordered_map<uint32_t, double> ping_deadline_;
  // Pending eviction challenges: old entry under test -> replacement.
  std::unordered_map<uint32_t, std::pair<uint32_t, NodeId256>> challenges_;
  std::vector<Lookup> lookups_;
};

/// The datagram fabric: owns the endpoints and delivers packets with
/// latency and optional loss.
class DiscV4Net {
 public:
  DiscV4Net(sim::Simulator* sim, util::Rng rng, double latency = 0.03, double loss = 0.0);

  uint32_t add_node(const DiscV4Config& config = {});
  DiscV4Node& node(uint32_t index) { return *nodes_[index]; }
  size_t size() const { return nodes_.size(); }
  sim::Simulator& simulator() { return *sim_; }

  /// Bootstraps every node against node 0 and runs `seconds` of protocol.
  void converge(double seconds);

  /// Marks a node dead: it stops answering datagrams (liveness churn).
  void set_dead(uint32_t index, bool dead);

  // -- datagram primitives --------------------------------------------------
  void send_ping(uint32_t from, uint32_t to);
  void send_pong(uint32_t from, uint32_t to);
  void send_findnode(uint32_t from, uint32_t to, const NodeId256& target);
  void send_neighbors(uint32_t from, uint32_t to,
                      std::vector<std::pair<uint32_t, NodeId256>> nodes);

  uint64_t datagrams() const { return datagrams_; }

 private:
  template <typename Fn>
  void deliver(uint32_t to, Fn&& fn);

  sim::Simulator* sim_;
  util::Rng rng_;
  double latency_;
  double loss_;
  std::vector<std::unique_ptr<DiscV4Node>> nodes_;
  std::vector<bool> dead_;
  uint64_t datagrams_ = 0;
};

}  // namespace topo::disc
