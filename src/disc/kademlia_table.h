#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "disc/node_id.h"

namespace topo::disc {

/// A Geth-style Kademlia routing table: 17 buckets of 16 entries each, i.e.
/// up to 272 *inactive* neighbors — exactly the number the paper contrasts
/// with the ~50 active ones. Buckets cover the closest 17 log-distances;
/// anything farther maps into the outermost bucket.
class KademliaTable {
 public:
  KademliaTable() = default;
  KademliaTable(NodeId256 self, size_t num_buckets = 17, size_t bucket_size = 16);

  /// Inserts a (node index, id) pair; returns false when the bucket is full
  /// or the node is already present / self.
  bool add(uint32_t node, const NodeId256& id);

  bool contains(uint32_t node) const { return known_.count(node) > 0; }

  /// The `k` table entries closest (XOR metric) to `target` — FIND_NODE.
  std::vector<uint32_t> closest(const NodeId256& target, size_t k) const;

  /// All entries, bucket order.
  std::vector<uint32_t> entries() const;

  size_t size() const { return count_; }
  size_t capacity() const { return buckets_.size() * bucket_size_; }
  const NodeId256& self() const { return self_; }

 private:
  struct Entry {
    uint32_t node = 0;
    NodeId256 id;
  };
  size_t bucket_of(const NodeId256& id) const;

  NodeId256 self_;
  size_t bucket_size_ = 16;
  std::vector<std::vector<Entry>> buckets_;
  std::unordered_set<uint32_t> known_;
  size_t count_ = 0;
};

}  // namespace topo::disc
