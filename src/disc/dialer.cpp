#include "disc/dialer.h"

#include <algorithm>

namespace topo::disc {

graph::Graph form_active_topology(const DiscoverySim& disc, const DialerConfig& cfg,
                                  util::Rng& rng) {
  const size_t n = disc.size();
  graph::Graph g(n);
  std::vector<size_t> active(n, 0);
  std::vector<size_t> dialed(n, 0);

  // Candidate pools: own table entries + one level of table-of-table
  // entries, the §6.2.2 buffer. Crawl-all nodes see the whole network.
  std::vector<std::vector<uint32_t>> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> pool;
    if (i < cfg.crawl_all.size() && cfg.crawl_all[i]) {
      pool.reserve(n - 1);
      for (size_t j = 0; j < n; ++j) {
        if (j != i) pool.push_back(static_cast<uint32_t>(j));
      }
    } else {
      auto own = disc.table(i).entries();
      pool = own;
      for (uint32_t e : own) {
        const auto& sub = disc.table(e).entries();
        pool.insert(pool.end(), sub.begin(), sub.end());
      }
    }
    rng.shuffle(pool);
    candidates[i] = std::move(pool);
  }
  std::vector<size_t> cursor(n, 0);
  std::vector<size_t> passes(n, 0);

  auto out_budget_of = [&](size_t u) {
    if (u < cfg.max_out.size()) return cfg.max_out[u];
    return std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(cfg.max_peers[u]) * cfg.dial_ratio));
  };
  auto crawls = [&](size_t u) { return u < cfg.crawl_all.size() && cfg.crawl_all[u]; };

  // Crawling nodes pick targets weighted by *remaining* slot capacity —
  // stub-matching like the configuration model — so late dials do not pile
  // onto whichever hubs still have room (which would manufacture a
  // rich-club the measured testnets do not show).
  auto weighted_target = [&](uint32_t u) -> int64_t {
    uint64_t total = 0;
    for (size_t v = 0; v < n; ++v) {
      if (v == u || active[v] >= cfg.max_peers[v] || g.has_edge(u, static_cast<uint32_t>(v)))
        continue;
      if (v < cfg.crawl_skip.size() && cfg.crawl_skip[v]) continue;
      total += cfg.crawl_weighted ? cfg.max_peers[v] - active[v] : 1;
    }
    if (total == 0) return -1;
    uint64_t pick = rng.uniform_int(0, total - 1);
    for (size_t v = 0; v < n; ++v) {
      if (v == u || active[v] >= cfg.max_peers[v] || g.has_edge(u, static_cast<uint32_t>(v)))
        continue;
      if (v < cfg.crawl_skip.size() && cfg.crawl_skip[v]) continue;
      const uint64_t w = cfg.crawl_weighted ? cfg.max_peers[v] - active[v] : 1;
      if (pick < w) return static_cast<int64_t>(v);
      pick -= w;
    }
    return -1;
  };

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  for (size_t round = 0; round < cfg.rounds; ++round) {
    rng.shuffle(order);
    bool progress = false;
    for (uint32_t u : order) {
      const size_t budget = cfg.max_peers[u];
      const size_t out_budget = out_budget_of(u);
      for (size_t a = 0; a < cfg.attempts_per_round; ++a) {
        if (active[u] >= budget || dialed[u] >= out_budget) break;
        uint32_t v = 0;
        if (crawls(u)) {
          const int64_t pick = weighted_target(u);
          if (pick < 0) break;
          v = static_cast<uint32_t>(pick);
        } else {
          if (cursor[u] >= candidates[u].size()) {
            // Wrap once: remote slots may have freed since the first pass.
            if (passes[u] >= 2 || candidates[u].empty()) break;
            ++passes[u];
            cursor[u] = 0;
            rng.shuffle(candidates[u]);
          }
          v = candidates[u][cursor[u]++];
        }
        if (v == u) continue;
        // Dedup: already an active neighbor (the check the paper credits
        // for low modularity).
        if (g.has_edge(u, v)) continue;
        // Remote accepts only while it has free slots.
        if (active[v] >= cfg.max_peers[v]) continue;
        if (g.add_edge(u, v)) {
          ++active[u];
          ++active[v];
          ++dialed[u];
          progress = true;
        }
      }
    }
    if (!progress) break;
  }
  return g;
}

}  // namespace topo::disc
