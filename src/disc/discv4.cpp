#include "disc/discv4.h"

#include <algorithm>

namespace topo::disc {

// ---------------------------------------------------------------------------
// DiscV4Node
// ---------------------------------------------------------------------------

DiscV4Node::DiscV4Node(uint32_t index, NodeId256 id, DiscV4Config config, DiscV4Net* net,
                       util::Rng rng)
    : index_(index), id_(id), config_(config), net_(net), rng_(rng),
      buckets_(config.num_buckets) {}

size_t DiscV4Node::bucket_of(const NodeId256& id) const {
  const int ld = log_distance(id_, id);
  if (ld < 0) return 0;
  const int base = 256 - static_cast<int>(buckets_.size());
  return static_cast<size_t>(std::max(ld - base, 0));
}

void DiscV4Node::bootstrap(uint32_t seed_index, const NodeId256& seed_id) {
  consider(seed_index, seed_id);
  auto& sim = net_->simulator();
  const double jitter = rng_.uniform() * config_.refresh_interval;
  sim.every(sim.now() + 0.01 + jitter * 0.01, config_.refresh_interval, [this] {
    // discv4 refresh: one self-lookup plus a random-target lookup.
    lookup(id_);
    lookup(random_id(rng_));
    return true;
  });
  // Kick off immediately as well.
  sim.after(0.02 + rng_.uniform() * 0.05, [this] {
    lookup(id_);
    lookup(random_id(rng_));
  });
}

void DiscV4Node::consider(uint32_t index, const NodeId256& id) {
  if (index == index_ || entries_.count(index)) return;
  const size_t b = bucket_of(id);
  auto& bucket = buckets_[b];
  if (bucket.size() < config_.bucket_size) {
    bucket.push_back(Entry{index, id, -1.0});
    entries_[index] = b;
    ping(index);  // endpoint proof
    return;
  }
  // Bucket full: challenge the least-recently seen entry. Only one
  // outstanding challenge per old entry; newcomers racing it are dropped
  // (the discv4 anti-eclipse policy).
  auto oldest = std::min_element(bucket.begin(), bucket.end(), [](const Entry& a, const Entry& b) {
    return a.last_pong < b.last_pong;
  });
  if (oldest == bucket.end() || challenges_.count(oldest->index)) return;
  challenges_[oldest->index] = {index, id};
  ping(oldest->index);
}

void DiscV4Node::ping(uint32_t index) {
  auto& sim = net_->simulator();
  if (ping_deadline_.count(index)) return;  // already in flight
  ping_deadline_[index] = sim.now() + config_.ping_timeout;
  net_->send_ping(index_, index);
  sim.after(config_.ping_timeout, [this, index] {
    auto it = ping_deadline_.find(index);
    if (it == ping_deadline_.end()) return;  // PONG arrived in time
    ping_deadline_.erase(it);
    // Timeout: the contact is dead. Resolve any eviction challenge in the
    // newcomer's favor and drop the entry.
    auto entry_it = entries_.find(index);
    if (entry_it != entries_.end()) {
      auto& bucket = buckets_[entry_it->second];
      bucket.erase(std::find_if(bucket.begin(), bucket.end(),
                                [&](const Entry& e) { return e.index == index; }));
      entries_.erase(entry_it);
    }
    auto challenge = challenges_.find(index);
    if (challenge != challenges_.end()) {
      const auto [new_index, new_id] = challenge->second;
      challenges_.erase(challenge);
      consider(new_index, new_id);
    }
  });
}

void DiscV4Node::on_ping(uint32_t from, const NodeId256& from_id) {
  net_->send_pong(index_, from);
  consider(from, from_id);  // learn the pinger
}

void DiscV4Node::on_pong(uint32_t from) {
  ping_deadline_.erase(from);
  auto it = entries_.find(from);
  if (it != entries_.end()) {
    for (auto& e : buckets_[it->second]) {
      if (e.index == from) e.last_pong = net_->simulator().now();
    }
  }
  // A live answer defeats the newcomer's challenge.
  challenges_.erase(from);
}

std::vector<std::pair<uint32_t, NodeId256>> DiscV4Node::closest(const NodeId256& target,
                                                                size_t k) const {
  std::vector<std::pair<uint32_t, NodeId256>> all;
  for (const auto& bucket : buckets_) {
    for (const auto& e : bucket) all.push_back({e.index, e.id});
  }
  std::sort(all.begin(), all.end(), [&](const auto& a, const auto& b) {
    return distance_less(xor_distance(a.second, target), xor_distance(b.second, target));
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void DiscV4Node::on_findnode(uint32_t from, const NodeId256& from_id, const NodeId256& target) {
  consider(from, from_id);
  net_->send_neighbors(index_, from, closest(target, config_.lookup_k));
}

void DiscV4Node::on_neighbors(uint32_t from,
                              const std::vector<std::pair<uint32_t, NodeId256>>& nodes) {
  for (const auto& [index, id] : nodes) consider(index, id);
  // Advance any lookup waiting on this responder.
  for (size_t i = 0; i < lookups_.size(); ++i) {
    auto& lk = lookups_[i];
    if (lk.in_flight == 0) continue;
    if (std::find(lk.asked.begin(), lk.asked.end(), from) == lk.asked.end()) continue;
    if (lk.responded.count(from) || lk.timed_out.count(from)) continue;
    lk.responded.insert(from);
    --lk.in_flight;
    for (const auto& node : nodes) {
      if (node.first == index_) continue;
      const bool known = std::any_of(lk.candidates.begin(), lk.candidates.end(),
                                     [&](const auto& c) { return c.first == node.first; });
      if (!known) lk.candidates.push_back(node);
    }
    lookup_step(i);
  }
}

void DiscV4Node::lookup(const NodeId256& target,
                        std::function<void(std::vector<uint32_t>)> done) {
  Lookup lk;
  lk.target = target;
  lk.candidates = closest(target, config_.lookup_k);
  lk.done = std::move(done);
  lookups_.push_back(std::move(lk));
  lookup_step(lookups_.size() - 1);
}

void DiscV4Node::lookup_step(size_t lookup_idx) {
  auto& lk = lookups_[lookup_idx];
  std::sort(lk.candidates.begin(), lk.candidates.end(), [&](const auto& a, const auto& b) {
    return distance_less(xor_distance(a.second, lk.target), xor_distance(b.second, lk.target));
  });
  size_t launched = 0;
  for (const auto& [index, id] : lk.candidates) {
    if (lk.in_flight >= config_.lookup_alpha) break;
    if (std::find(lk.asked.begin(), lk.asked.end(), index) != lk.asked.end()) continue;
    lk.asked.push_back(index);
    ++lk.in_flight;
    ++launched;
    net_->send_findnode(index_, index, lk.target);
    // Responder may be dead or the datagram lost: time the slot out.
    auto& sim = net_->simulator();
    const uint32_t asked_index = index;
    sim.after(config_.ping_timeout * 2, [this, lookup_idx, asked_index] {
      if (lookup_idx >= lookups_.size()) return;
      auto& lk2 = lookups_[lookup_idx];
      // If the responder never advanced the lookup, release its slot once.
      if (lk2.in_flight > 0 &&
          std::find(lk2.asked.begin(), lk2.asked.end(), asked_index) != lk2.asked.end() &&
          !lk2.timed_out.count(asked_index) && !lk2.responded.count(asked_index)) {
        lk2.timed_out.insert(asked_index);
        --lk2.in_flight;
        lookup_step(lookup_idx);
      }
    });
  }
  if (launched == 0 && lk.in_flight == 0) finish_lookup(lookup_idx);
}

void DiscV4Node::finish_lookup(size_t lookup_idx) {
  auto& lk = lookups_[lookup_idx];
  if (lk.done) {
    std::vector<uint32_t> out;
    for (const auto& [index, id] : lk.candidates) {
      out.push_back(index);
      if (out.size() >= config_.lookup_k) break;
    }
    lk.done(std::move(out));
    lk.done = nullptr;
  }
}

std::vector<uint32_t> DiscV4Node::table_entries() const {
  std::vector<uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& [index, bucket] : entries_) out.push_back(index);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<double> DiscV4Node::last_seen(uint32_t index) const {
  auto it = entries_.find(index);
  if (it == entries_.end()) return std::nullopt;
  for (const auto& e : buckets_[it->second]) {
    if (e.index == index && e.last_pong >= 0.0) return e.last_pong;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// DiscV4Net
// ---------------------------------------------------------------------------

DiscV4Net::DiscV4Net(sim::Simulator* sim, util::Rng rng, double latency, double loss)
    : sim_(sim), rng_(rng), latency_(latency), loss_(loss) {}

uint32_t DiscV4Net::add_node(const DiscV4Config& config) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<DiscV4Node>(index, random_id(rng_), config, this, rng_.split()));
  dead_.push_back(false);
  return index;
}

void DiscV4Net::converge(double seconds) {
  for (uint32_t i = 1; i < nodes_.size(); ++i) {
    nodes_[i]->bootstrap(0, nodes_[0]->id());
  }
  if (!nodes_.empty()) {
    // The bootnode learns the rest through their pings; give it a refresh
    // loop as well.
    nodes_[0]->bootstrap(nodes_.size() > 1 ? 1 : 0,
                         nodes_[nodes_.size() > 1 ? 1 : 0]->id());
  }
  sim_->run_until(sim_->now() + seconds);
}

void DiscV4Net::set_dead(uint32_t index, bool dead) { dead_[index] = dead; }

template <typename Fn>
void DiscV4Net::deliver(uint32_t to, Fn&& fn) {
  ++datagrams_;
  if (rng_.chance(loss_)) return;  // dropped datagram
  const double delay = latency_ * (0.5 + rng_.uniform());
  sim_->after(delay, [this, to, fn = std::forward<Fn>(fn)] {
    if (dead_[to]) return;  // dead nodes answer nothing
    fn(*nodes_[to]);
  });
}

void DiscV4Net::send_ping(uint32_t from, uint32_t to) {
  const NodeId256 from_id = nodes_[from]->id();
  deliver(to, [from, from_id](DiscV4Node& n) { n.on_ping(from, from_id); });
}

void DiscV4Net::send_pong(uint32_t from, uint32_t to) {
  deliver(to, [from](DiscV4Node& n) { n.on_pong(from); });
}

void DiscV4Net::send_findnode(uint32_t from, uint32_t to, const NodeId256& target) {
  const NodeId256 from_id = nodes_[from]->id();
  deliver(to, [from, from_id, target](DiscV4Node& n) { n.on_findnode(from, from_id, target); });
}

void DiscV4Net::send_neighbors(uint32_t from, uint32_t to,
                               std::vector<std::pair<uint32_t, NodeId256>> nodes) {
  deliver(to, [from, nodes = std::move(nodes)](DiscV4Node& n) { n.on_neighbors(from, nodes); });
}

}  // namespace topo::disc
