#pragma once

#include <vector>

#include "disc/kademlia_table.h"
#include "util/rng.h"

namespace topo::disc {

/// Round-based discv4 emulation: every node repeatedly runs iterative
/// FIND_NODE lookups toward random targets, filling its routing table from
/// the responses (the platform overlay of paper Fig. 1). This is a
/// substrate for topology *formation*; the blockchain overlay dynamics stay
/// in the event-driven p2p simulator.
class DiscoverySim {
 public:
  /// `n` nodes, each bootstrapped with `boot_fanout` random seed entries.
  DiscoverySim(size_t n, util::Rng rng, size_t boot_fanout = 4, size_t num_buckets = 17,
               size_t bucket_size = 16);

  /// One discovery round: every node runs `lookups` iterative lookups with
  /// concurrency alpha = 3 and response size k = bucket_size.
  void run_round(size_t lookups = 3);

  /// Runs rounds until the average table fill ratio reaches `fill` (or
  /// `max_rounds`).
  void run_until_filled(double fill = 0.8, size_t max_rounds = 32);

  const KademliaTable& table(size_t node) const { return tables_[node]; }

  /// Inserts a known (node -> entry) relation directly — used to mirror a
  /// protocol-built discv4 table into this snapshot form.
  void adopt_entry(size_t node, uint32_t entry) {
    if (entry < ids_.size()) tables_[node].add(entry, ids_[entry]);
  }
  const NodeId256& node_id(size_t node) const { return ids_[node]; }
  size_t size() const { return tables_.size(); }

  /// Mean table occupancy in [0, 1].
  double average_fill() const;

 private:
  void lookup(size_t node, const NodeId256& target);

  std::vector<NodeId256> ids_;
  std::vector<KademliaTable> tables_;
  util::Rng rng_;
};

}  // namespace topo::disc
