#pragma once

#include <vector>

#include "eth/account.h"
#include "eth/block.h"

namespace topo::eth {

/// Greedy price-priority block packing, the policy both Geth and Parity
/// implement and the property Theorem C.2's proof rests on: a miner never
/// includes a lower-priced transaction while a higher-priced includable one
/// is executable.
///
/// `candidates` is any set of unconfirmed transactions (a mempool pending
/// snapshot). Packing respects per-sender nonce order starting from
/// `state.next_nonce(sender)`, skips EIP-1559 transactions whose max fee is
/// below `base_fee`, and stops when no executable transaction fits in the
/// remaining gas.
std::vector<Transaction> pack_block(const std::vector<Transaction>& candidates,
                                    const StateView& state, uint64_t gas_limit, Wei base_fee);

}  // namespace topo::eth
