#pragma once

#include <cstdint>

namespace topo::eth {

/// Simulated externally-owned-account address. Real Ethereum addresses are
/// 160-bit; a 64-bit id is sufficient for a closed simulation and keeps
/// containers compact.
using Address = uint64_t;

/// Per-sender monotonically increasing transaction counter.
using Nonce = uint64_t;

/// Gas price (wei per gas unit). 1 Gwei = 1e9 wei, so sub-Gwei prices such
/// as the paper's Y = 0.1 Gwei are exactly representable.
using Wei = uint64_t;

/// Transaction hash. Derived from all transaction fields; unique per
/// distinct transaction in a run.
using TxHash = uint64_t;

inline constexpr Wei kWei = 1;
inline constexpr Wei kGwei = 1'000'000'000ULL;
inline constexpr Wei kEther = 1'000'000'000ULL * kGwei;

/// Intrinsic gas of a plain value transfer; every measurement transaction in
/// the paper is a plain transfer.
inline constexpr uint64_t kTransferGas = 21'000;

/// Converts a fractional Gwei amount to wei (e.g. gwei(0.1)).
constexpr Wei gwei(double g) { return static_cast<Wei>(g * static_cast<double>(kGwei)); }

/// The sentinel "no address".
inline constexpr Address kNoAddress = 0;

}  // namespace topo::eth
