#pragma once

#include <optional>
#include <string>

#include "eth/types.h"

namespace topo::eth {

/// EIP-1559 fee fields. When present, mempool admission and eviction use
/// max_fee (as Geth's txpool does) and block inclusion requires
/// max_fee >= base_fee (Appendix E of the paper).
struct Fee1559 {
  Wei max_fee = 0;       ///< maxFeePerGas
  Wei priority_fee = 0;  ///< maxPriorityFeePerGas
};

/// An Ethereum transaction in the account/nonce model. Plain transfers only:
/// the measurement technique never needs contract calls.
struct Transaction {
  uint64_t id = 0;  ///< process-unique creation id (simulation bookkeeping)
  Address sender = kNoAddress;
  Address to = kNoAddress;
  Nonce nonce = 0;
  Wei gas_price = 0;  ///< legacy gas price; ignored if fee1559 is set
  uint64_t gas = kTransferGas;
  Wei value = 0;
  std::optional<Fee1559> fee1559;

  /// Content hash; distinct transactions (any differing field) get distinct
  /// hashes with overwhelming probability.
  TxHash hash() const;

  /// Price used for mempool ordering/admission: legacy gas price, or the
  /// EIP-1559 max fee (what Geth's txpool compares).
  Wei pool_price() const { return fee1559 ? fee1559->max_fee : gas_price; }

  /// Price per gas the sender effectively pays if included at `base_fee`
  /// (min(max_fee, base_fee + priority_fee) under EIP-1559).
  Wei effective_price(Wei base_fee) const;

  /// True if the transaction could be included at the given base fee.
  bool includable(Wei base_fee) const;

  std::string to_string() const;
};

/// Monotonic factory for transactions; guarantees unique ids within a run.
class TxFactory {
 public:
  /// Legacy transaction.
  Transaction make(Address sender, Nonce nonce, Wei gas_price, Address to = kNoAddress,
                   Wei value = 0);

  /// EIP-1559 transaction.
  Transaction make1559(Address sender, Nonce nonce, Wei max_fee, Wei priority_fee,
                       Address to = kNoAddress, Wei value = 0);

  uint64_t created() const { return next_id_; }

 private:
  uint64_t next_id_ = 1;
};

}  // namespace topo::eth
