#include "eth/account.h"

#include <algorithm>

namespace topo::eth {

Nonce MapState::next_nonce(Address a) const {
  auto it = next_.find(a);
  return it == next_.end() ? 0 : it->second;
}

void MapState::set_next_nonce(Address a, Nonce n) { next_[a] = n; }

void MapState::confirm(Address a, Nonce n) {
  Nonce& cur = next_[a];
  cur = std::max(cur, n + 1);
}

std::vector<Address> AccountManager::create(size_t n) {
  std::vector<Address> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(create_one());
  return out;
}

Address AccountManager::create_one() { return next_addr_++; }

Nonce AccountManager::next_nonce(Address a) const {
  auto it = nonces_.find(a);
  return it == nonces_.end() ? 0 : it->second;
}

Nonce AccountManager::allocate_nonce(Address a) { return nonces_[a]++; }

Nonce AccountManager::future_nonce(Address a, Nonce gap) const {
  return next_nonce(a) + gap;
}

}  // namespace topo::eth
