#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "eth/types.h"

namespace topo::eth {

/// View of confirmed account state a mempool consults to classify incoming
/// transactions as pending vs future (paper §2).
class StateView {
 public:
  virtual ~StateView() = default;

  /// The next nonce the chain expects from `a` (number of confirmed txs).
  virtual Nonce next_nonce(Address a) const = 0;
};

/// Trivial state view backed by a map; used in unit tests and by nodes that
/// are not attached to a chain.
class MapState final : public StateView {
 public:
  Nonce next_nonce(Address a) const override;
  void set_next_nonce(Address a, Nonce n);
  /// Marks `n` consumed: next_nonce becomes max(next, n+1).
  void confirm(Address a, Nonce n);

 private:
  std::unordered_map<Address, Nonce> next_;
};

/// Allocates fresh externally-owned accounts and tracks the next unused
/// nonce per account on the *sender* side (what the measurement node uses to
/// craft pending vs deliberately-future transactions).
class AccountManager {
 public:
  /// Creates `n` fresh accounts, each notionally funded.
  std::vector<Address> create(size_t n);

  /// Creates one fresh account.
  Address create_one();

  /// Next unused nonce for the account (confirmed + locally allocated).
  Nonce next_nonce(Address a) const;

  /// Allocates and returns the next nonce for `a`.
  Nonce allocate_nonce(Address a);

  /// Reserves a future nonce `gap` positions past the next one without
  /// allocating the intermediate ones (how TopoShot crafts future txs).
  Nonce future_nonce(Address a, Nonce gap = 1) const;

  size_t count() const { return static_cast<size_t>(next_addr_ - 1); }

 private:
  Address next_addr_ = 1;  // 0 is kNoAddress
  std::unordered_map<Address, Nonce> nonces_;
};

}  // namespace topo::eth
