#pragma once

#include <vector>

#include "eth/transaction.h"

namespace topo::eth {

/// A mined block. Simulation blocks carry the full transaction bodies.
struct Block {
  uint64_t number = 0;
  double timestamp = 0.0;  ///< simulation seconds
  uint64_t gas_limit = 0;
  uint64_t gas_used = 0;
  Wei base_fee = 0;  ///< 0 for pre-EIP-1559 chains
  uint64_t miner_node = 0;
  std::vector<Transaction> txs;

  /// True when gas_used fills the gas limit to within one transfer — the
  /// paper's condition V1 ("the Gas limit of each block is filled").
  bool is_full() const { return gas_used + kTransferGas > gas_limit; }

  /// Lowest effective gas price among included transactions (0 if empty).
  Wei min_included_price() const;
};

/// EIP-1559 base-fee update rule: +-1/8 of the parent base fee proportional
/// to how far gas_used deviates from the half-limit target.
Wei next_base_fee(const Block& parent);

}  // namespace topo::eth
