#include "eth/chain.h"

#include <algorithm>

namespace topo::eth {

Chain::Chain(uint64_t block_gas_limit, Wei base_fee)
    : gas_limit_(block_gas_limit), base_fee_(base_fee) {}

Nonce Chain::next_nonce(Address a) const {
  auto it = next_nonce_.find(a);
  return it == next_nonce_.end() ? 0 : it->second;
}

const Block& Chain::commit(Block b) {
  b.number = blocks_.size();
  b.gas_limit = gas_limit_;
  b.base_fee = base_fee_;
  b.gas_used = 0;
  for (const auto& tx : b.txs) {
    b.gas_used += tx.gas;
    Nonce& n = next_nonce_[tx.sender];
    n = std::max(n, tx.nonce + 1);
    included_[tx.hash()] = b.number;
  }
  base_fee_ = next_base_fee(b);
  blocks_.push_back(std::move(b));
  const Block& stored = blocks_.back();
  for (const auto& fn : observers_) fn(stored);
  return stored;
}

std::vector<const Block*> Chain::blocks_in(double t1, double t2) const {
  std::vector<const Block*> out;
  for (const auto& b : blocks_) {
    if (b.timestamp >= t1 && b.timestamp <= t2) out.push_back(&b);
  }
  return out;
}

}  // namespace topo::eth
