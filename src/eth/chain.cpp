#include "eth/chain.h"

#include <algorithm>

namespace topo::eth {

Chain::Chain(uint64_t block_gas_limit, Wei base_fee)
    : gas_limit_(block_gas_limit), base_fee_(base_fee) {}

Nonce Chain::next_nonce(Address a) const {
  const State& s = *st_;
  auto it = s.next_nonce.find(a);
  return it == s.next_nonce.end() ? 0 : it->second;
}

const Block& Chain::commit(Block b) {
  State& s = st_.mutate();
  b.number = s.blocks.size();
  b.gas_limit = gas_limit_;
  b.base_fee = base_fee_;
  b.gas_used = 0;
  for (const auto& tx : b.txs) {
    b.gas_used += tx.gas;
    Nonce& n = s.next_nonce[tx.sender];
    n = std::max(n, tx.nonce + 1);
    s.included[tx.hash()] = b.number;
  }
  base_fee_ = next_base_fee(b);
  s.blocks.push_back(std::move(b));
  const Block& stored = s.blocks.back();
  for (const auto& fn : observers_) fn(stored);
  return stored;
}

std::vector<const Block*> Chain::blocks_in(double t1, double t2) const {
  std::vector<const Block*> out;
  // Half-open [t1, t2): a block stamped exactly at the seam of two
  // adjacent windows belongs to the later one, never both.
  for (const auto& b : st_->blocks) {
    if (b.timestamp >= t1 && b.timestamp < t2) out.push_back(&b);
  }
  return out;
}

}  // namespace topo::eth
