#include "eth/transaction.h"

#include <algorithm>
#include <sstream>

namespace topo::eth {

namespace {

uint64_t mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

TxHash Transaction::hash() const {
  uint64_t h = 0x45d9f3b3335b369ULL;
  h = mix(h, id);
  h = mix(h, sender);
  h = mix(h, to);
  h = mix(h, nonce);
  h = mix(h, gas_price);
  h = mix(h, gas);
  h = mix(h, value);
  if (fee1559) {
    h = mix(h, fee1559->max_fee);
    h = mix(h, fee1559->priority_fee);
  }
  return h;
}

Wei Transaction::effective_price(Wei base_fee) const {
  if (!fee1559) return gas_price;
  if (fee1559->max_fee < base_fee) return 0;  // underpriced, not includable
  return std::min(fee1559->max_fee, base_fee + fee1559->priority_fee);
}

bool Transaction::includable(Wei base_fee) const {
  if (!fee1559) return true;  // legacy txs are price-takers
  return fee1559->max_fee >= base_fee;
}

std::string Transaction::to_string() const {
  std::ostringstream ss;
  ss << "tx{id=" << id << " from=" << sender << " nonce=" << nonce;
  if (fee1559) {
    ss << " maxFee=" << fee1559->max_fee << " prio=" << fee1559->priority_fee;
  } else {
    ss << " price=" << gas_price;
  }
  ss << "}";
  return ss.str();
}

Transaction TxFactory::make(Address sender, Nonce nonce, Wei gas_price, Address to, Wei value) {
  Transaction tx;
  tx.id = next_id_++;
  tx.sender = sender;
  tx.to = to;
  tx.nonce = nonce;
  tx.gas_price = gas_price;
  tx.value = value;
  return tx;
}

Transaction TxFactory::make1559(Address sender, Nonce nonce, Wei max_fee, Wei priority_fee,
                                Address to, Wei value) {
  Transaction tx;
  tx.id = next_id_++;
  tx.sender = sender;
  tx.to = to;
  tx.nonce = nonce;
  tx.value = value;
  tx.fee1559 = Fee1559{max_fee, priority_fee};
  return tx;
}

}  // namespace topo::eth
