#include "eth/miner.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

namespace topo::eth {

namespace {

struct Head {
  Wei price;
  uint64_t tie;  // lower tx id wins ties for determinism
  Address sender;
  bool operator<(const Head& o) const {
    if (price != o.price) return price < o.price;  // max-heap on price
    return tie > o.tie;
  }
};

}  // namespace

std::vector<Transaction> pack_block(const std::vector<Transaction>& candidates,
                                    const StateView& state, uint64_t gas_limit, Wei base_fee) {
  // Per-sender nonce-ordered queues. A later duplicate (same sender+nonce)
  // with a higher price wins, mirroring mempool replacement.
  std::unordered_map<Address, std::map<Nonce, const Transaction*>> by_sender;
  for (const auto& tx : candidates) {
    if (!tx.includable(base_fee)) continue;
    auto& q = by_sender[tx.sender];
    auto [it, inserted] = q.try_emplace(tx.nonce, &tx);
    if (!inserted && tx.pool_price() > it->second->pool_price()) it->second = &tx;
  }

  std::priority_queue<Head> heap;
  std::unordered_map<Address, Nonce> expect;
  for (auto& [sender, q] : by_sender) {
    const Nonce n = state.next_nonce(sender);
    expect[sender] = n;
    auto it = q.find(n);
    if (it != q.end())
      heap.push(Head{it->second->effective_price(base_fee), it->second->id, sender});
  }

  std::vector<Transaction> out;
  uint64_t gas_used = 0;
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    auto& q = by_sender[head.sender];
    auto it = q.find(expect[head.sender]);
    if (it == q.end()) continue;  // stale heap entry
    const Transaction& tx = *it->second;
    if (gas_used + tx.gas > gas_limit) {
      // Price-priority packing: do not skip ahead to cheaper transactions;
      // a full block is full (keeps V1 semantics simple and conservative).
      break;
    }
    out.push_back(tx);
    gas_used += tx.gas;
    const Nonce next = ++expect[head.sender];
    auto nit = q.find(next);
    if (nit != q.end())
      heap.push(Head{nit->second->effective_price(base_fee), nit->second->id, head.sender});
  }
  return out;
}

}  // namespace topo::eth
