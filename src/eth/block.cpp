#include "eth/block.h"

#include <algorithm>

namespace topo::eth {

Wei Block::min_included_price() const {
  Wei lo = 0;
  for (const auto& tx : txs) {
    const Wei p = tx.effective_price(base_fee);
    if (lo == 0 || p < lo) lo = p;
  }
  return lo;
}

Wei next_base_fee(const Block& parent) {
  if (parent.base_fee == 0) return 0;  // chain without EIP-1559
  const uint64_t target = parent.gas_limit / 2;
  if (target == 0) return parent.base_fee;
  const Wei base = parent.base_fee;
  if (parent.gas_used == target) return base;
  if (parent.gas_used > target) {
    const uint64_t delta_gas = parent.gas_used - target;
    Wei delta = base * delta_gas / target / 8;
    if (delta == 0) delta = 1;
    return base + delta;
  }
  const uint64_t delta_gas = target - parent.gas_used;
  const Wei delta = base * delta_gas / target / 8;
  return base > delta ? base - delta : 0;
}

}  // namespace topo::eth
