#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "eth/account.h"
#include "eth/block.h"

namespace topo::eth {

/// The (single, shared) blockchain of a simulated network. Consensus is
/// abstracted away: committed blocks are immediately visible to every node,
/// which is sufficient because TopoShot's correctness argument only involves
/// mempool state and transaction propagation, not fork dynamics.
class Chain final : public StateView {
 public:
  /// `base_fee` = 0 disables EIP-1559 (legacy fee market).
  explicit Chain(uint64_t block_gas_limit = 8'000'000, Wei base_fee = 0);

  /// Confirmed next-nonce for an account.
  Nonce next_nonce(Address a) const override;

  /// Appends a block: assigns number/base-fee bookkeeping and advances the
  /// confirmed nonces of every included sender. Returns the stored block.
  const Block& commit(Block b);

  /// Base fee the *next* block will charge.
  Wei base_fee() const { return base_fee_; }

  uint64_t gas_limit() const { return gas_limit_; }
  uint64_t height() const { return blocks_.size(); }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// All blocks with timestamp in [t1, t2].
  std::vector<const Block*> blocks_in(double t1, double t2) const;

  /// True if a transaction with this hash has been included in any block.
  bool includes(TxHash h) const { return included_.count(h) > 0; }

  /// Observer invoked after each commit (nodes subscribe to prune mempools).
  void subscribe(std::function<void(const Block&)> fn) { observers_.push_back(std::move(fn)); }

 private:
  uint64_t gas_limit_;
  Wei base_fee_;
  std::vector<Block> blocks_;
  std::unordered_map<Address, Nonce> next_nonce_;
  std::unordered_map<TxHash, uint64_t> included_;  // hash -> block number
  std::vector<std::function<void(const Block&)>> observers_;
};

}  // namespace topo::eth
