#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "eth/account.h"
#include "eth/block.h"
#include "util/cow.h"

namespace topo::eth {

/// The (single, shared) blockchain of a simulated network. Consensus is
/// abstracted away: committed blocks are immediately visible to every node,
/// which is sufficient because TopoShot's correctness argument only involves
/// mempool state and transaction propagation, not fork dynamics.
///
/// Bulk ledger state (blocks, the confirmed account-nonce table, the
/// inclusion set) lives behind a copy-on-write handle, so world snapshots
/// capture a warmed chain in O(1) and a forked replica shares it until its
/// first commit. Observers are deliberately *not* part of the snapshot:
/// they are wiring into one world's objects and each world re-subscribes
/// its own.
class Chain final : public StateView {
 public:
  /// `base_fee` = 0 disables EIP-1559 (legacy fee market).
  explicit Chain(uint64_t block_gas_limit = 8'000'000, Wei base_fee = 0);

  /// Confirmed next-nonce for an account.
  Nonce next_nonce(Address a) const override;

  /// Appends a block: assigns number/base-fee bookkeeping and advances the
  /// confirmed nonces of every included sender. Returns the stored block.
  const Block& commit(Block b);

  /// Base fee the *next* block will charge.
  Wei base_fee() const { return base_fee_; }

  uint64_t gas_limit() const { return gas_limit_; }
  uint64_t height() const { return st_->blocks.size(); }
  const std::vector<Block>& blocks() const { return st_->blocks; }

  /// All blocks with timestamp in the half-open window [t1, t2).
  ///
  /// Half-open on purpose: adjacent measurement windows (0, T), (T, 2T)
  /// must count a block stamped exactly at the seam T exactly once — in
  /// the later window, matching how the cost accounting slices a campaign
  /// into per-round budgets (see core::CostTracker). Callers wanting "up
  /// to and including now" pass an upper bound strictly beyond it (the
  /// cumulative gauges use +infinity).
  std::vector<const Block*> blocks_in(double t1, double t2) const;

  /// True if a transaction with this hash has been included in any block.
  bool includes(TxHash h) const { return st_->included.count(h) > 0; }

  /// Observer invoked after each commit (nodes subscribe to prune mempools).
  void subscribe(std::function<void(const Block&)> fn) { observers_.push_back(std::move(fn)); }

 private:
  /// Ledger content behind the copy-on-write handle.
  struct State {
    std::vector<Block> blocks;
    std::unordered_map<Address, Nonce> next_nonce;
    std::unordered_map<TxHash, uint64_t> included;  // hash -> block number
  };

 public:
  /// O(1) capture of the ledger (world-fork path). The scalar fee/gas
  /// config rides along so a forked chain continues pricing identically.
  struct Snapshot {
    util::Cow<State> state;
    uint64_t gas_limit = 0;
    Wei base_fee = 0;
  };
  Snapshot snapshot() const { return Snapshot{st_, gas_limit_, base_fee_}; }
  void restore(const Snapshot& snap) {
    st_ = snap.state;
    gas_limit_ = snap.gas_limit;
    base_fee_ = snap.base_fee;
  }

 private:
  uint64_t gas_limit_;
  Wei base_fee_;
  util::Cow<State> st_;
  std::vector<std::function<void(const Block&)>> observers_;
};

}  // namespace topo::eth
