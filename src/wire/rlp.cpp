#include "wire/rlp.h"

#include <cassert>

namespace topo::wire {

RlpItem RlpItem::str(Bytes bytes) {
  RlpItem item;
  item.is_list_ = false;
  item.bytes_ = std::move(bytes);
  return item;
}

RlpItem RlpItem::str(const std::string& s) {
  return str(Bytes(s.begin(), s.end()));
}

RlpItem RlpItem::uint(uint64_t v) {
  Bytes out;
  while (v > 0) {
    out.insert(out.begin(), static_cast<uint8_t>(v & 0xff));
    v >>= 8;
  }
  return str(std::move(out));  // zero encodes as the empty string
}

RlpItem RlpItem::list(std::vector<RlpItem> items) {
  RlpItem item;
  item.is_list_ = true;
  item.items_ = std::move(items);
  return item;
}

std::optional<uint64_t> RlpItem::to_uint() const {
  if (is_list_ || bytes_.size() > 8) return std::nullopt;
  if (!bytes_.empty() && bytes_.front() == 0) return std::nullopt;  // non-minimal
  uint64_t v = 0;
  for (uint8_t b : bytes_) v = (v << 8) | b;
  return v;
}

bool RlpItem::operator==(const RlpItem& o) const {
  if (is_list_ != o.is_list_) return false;
  if (is_list_) return items_ == o.items_;
  return bytes_ == o.bytes_;
}

namespace {

void append_length(Bytes& out, size_t len, uint8_t short_base, uint8_t long_base) {
  if (len <= 55) {
    out.push_back(static_cast<uint8_t>(short_base + len));
    return;
  }
  Bytes len_be;
  size_t v = len;
  while (v > 0) {
    len_be.insert(len_be.begin(), static_cast<uint8_t>(v & 0xff));
    v >>= 8;
  }
  out.push_back(static_cast<uint8_t>(long_base + len_be.size()));
  out.insert(out.end(), len_be.begin(), len_be.end());
}

void encode_into(const RlpItem& item, Bytes& out) {
  if (item.is_string()) {
    const Bytes& b = item.bytes();
    if (b.size() == 1 && b[0] <= 0x7f) {
      out.push_back(b[0]);
      return;
    }
    append_length(out, b.size(), 0x80, 0xb7);
    out.insert(out.end(), b.begin(), b.end());
    return;
  }
  Bytes payload;
  for (const auto& sub : item.items()) encode_into(sub, payload);
  append_length(out, payload.size(), 0xc0, 0xf7);
  out.insert(out.end(), payload.begin(), payload.end());
}

size_t length_prefix_size(size_t len) {
  if (len <= 55) return 1;
  size_t bytes = 0;
  while (len > 0) {
    ++bytes;
    len >>= 8;
  }
  return 1 + bytes;
}

}  // namespace

Bytes rlp_encode(const RlpItem& item) {
  Bytes out;
  encode_into(item, out);
  return out;
}

size_t rlp_encoded_size(const RlpItem& item) {
  if (item.is_string()) {
    const Bytes& b = item.bytes();
    if (b.size() == 1 && b[0] <= 0x7f) return 1;
    return length_prefix_size(b.size()) + b.size();
  }
  size_t payload = 0;
  for (const auto& sub : item.items()) payload += rlp_encoded_size(sub);
  return length_prefix_size(payload) + payload;
}

namespace {

/// Reads a big-endian length of `n` bytes at pos; canonical form required
/// (no leading zero, must exceed the 55-byte short-form range).
std::optional<size_t> read_long_length(const Bytes& b, size_t& pos, size_t n) {
  if (n == 0 || n > sizeof(size_t) || pos + n > b.size()) return std::nullopt;
  if (b[pos] == 0) return std::nullopt;  // non-canonical
  size_t len = 0;
  for (size_t i = 0; i < n; ++i) len = (len << 8) | b[pos + i];
  pos += n;
  if (len <= 55) return std::nullopt;  // should have used short form
  return len;
}

}  // namespace

std::optional<RlpItem> rlp_decode_prefix(const Bytes& bytes, size_t& pos) {
  if (pos >= bytes.size()) return std::nullopt;
  const uint8_t prefix = bytes[pos];

  if (prefix <= 0x7f) {
    ++pos;
    return RlpItem::str(Bytes{prefix});
  }
  if (prefix <= 0xbf) {
    // String.
    ++pos;
    size_t len = 0;
    if (prefix <= 0xb7) {
      len = prefix - 0x80;
    } else {
      auto long_len = read_long_length(bytes, pos, prefix - 0xb7);
      if (!long_len) return std::nullopt;
      len = *long_len;
    }
    if (pos + len > bytes.size()) return std::nullopt;
    Bytes payload(bytes.begin() + static_cast<long>(pos),
                  bytes.begin() + static_cast<long>(pos + len));
    pos += len;
    if (len == 1 && payload[0] <= 0x7f) return std::nullopt;  // non-canonical
    return RlpItem::str(std::move(payload));
  }
  // List.
  ++pos;
  size_t len = 0;
  if (prefix <= 0xf7) {
    len = prefix - 0xc0;
  } else {
    auto long_len = read_long_length(bytes, pos, prefix - 0xf7);
    if (!long_len) return std::nullopt;
    len = *long_len;
  }
  if (pos + len > bytes.size()) return std::nullopt;
  const size_t end = pos + len;
  std::vector<RlpItem> items;
  while (pos < end) {
    auto sub = rlp_decode_prefix(bytes, pos);
    if (!sub || pos > end) return std::nullopt;
    items.push_back(std::move(*sub));
  }
  if (pos != end) return std::nullopt;
  return RlpItem::list(std::move(items));
}

std::optional<RlpItem> rlp_decode(const Bytes& bytes) {
  size_t pos = 0;
  auto item = rlp_decode_prefix(bytes, pos);
  if (!item || pos != bytes.size()) return std::nullopt;
  return item;
}

}  // namespace topo::wire
