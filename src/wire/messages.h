#pragma once

// devp2p eth-subprotocol message codec over RLP: the messages TopoShot's
// propagation model exchanges (eth/65 namespace):
//
//   Transactions (0x02)                 — full transaction bodies, pushed
//   NewPooledTransactionHashes (0x08)   — hash announcements
//   GetPooledTransactions (0x09)        — body requests
//   PooledTransactions (0x0a)           — body responses
//   Status (0x00)                       — handshake (networkId, head)
//
// Transactions are encoded in the canonical field order of the Yellow
// Paper (legacy) and EIP-2718/1559 (type-2). In place of an ECDSA
// signature, the simulated sender address and creation id ride in the
// v/r/s slots — the simulator has no cryptography, but every byte is
// otherwise laid out like the real wire format, so message sizes (used
// for bandwidth accounting) are faithful.

#include <optional>
#include <vector>

#include "eth/transaction.h"
#include "wire/rlp.h"

namespace topo::wire {

enum class MsgId : uint8_t {
  kStatus = 0x00,
  kTransactions = 0x02,
  kNewPooledTransactionHashes = 0x08,
  kGetPooledTransactions = 0x09,
  kPooledTransactions = 0x0a,
};

/// Encodes one transaction (legacy or EIP-1559 type-2 envelope).
Bytes encode_transaction(const eth::Transaction& tx);

/// Decodes one transaction; nullopt on malformed input.
std::optional<eth::Transaction> decode_transaction(const Bytes& bytes);

/// Handshake payload.
struct StatusMessage {
  uint64_t protocol_version = 65;
  uint64_t network_id = 1;
  uint64_t head_block = 0;
  std::string client_version;
};

Bytes encode_status(const StatusMessage& status);
std::optional<StatusMessage> decode_status(const Bytes& bytes);

/// Transactions / PooledTransactions payload: an RLP list of transactions.
Bytes encode_transactions(const std::vector<eth::Transaction>& txs,
                          MsgId id = MsgId::kTransactions);
std::optional<std::vector<eth::Transaction>> decode_transactions(const Bytes& bytes);

/// NewPooledTransactionHashes / GetPooledTransactions payload: a list of
/// 32-byte hashes (the simulator's 8-byte hashes are zero-extended).
Bytes encode_hashes(const std::vector<eth::TxHash>& hashes, MsgId id);
std::optional<std::vector<eth::TxHash>> decode_hashes(const Bytes& bytes);

/// Message envelope: [msg-id, payload-bytes]. Returns the id and the raw
/// payload for dispatch.
Bytes wrap_message(MsgId id, Bytes payload);
std::optional<std::pair<MsgId, Bytes>> unwrap_message(const Bytes& frame);

/// Wire size of a pushed transaction / an announcement of one hash —
/// used by the network's bandwidth accounting.
size_t transaction_wire_size(const eth::Transaction& tx);
size_t announcement_wire_size();

}  // namespace topo::wire
