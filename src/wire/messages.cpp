#include "wire/messages.h"

namespace topo::wire {

namespace {

/// 32-byte big-endian field from a 64-bit simulated hash.
Bytes hash_bytes(eth::TxHash h) {
  Bytes out(32, 0);
  for (int i = 0; i < 8; ++i) {
    out[31 - i] = static_cast<uint8_t>(h >> (8 * i));
  }
  return out;
}

std::optional<eth::TxHash> hash_from_bytes(const Bytes& b) {
  if (b.size() != 32) return std::nullopt;
  for (size_t i = 0; i < 24; ++i) {
    if (b[i] != 0) return std::nullopt;  // simulator hashes are 64-bit
  }
  eth::TxHash h = 0;
  for (size_t i = 24; i < 32; ++i) h = (h << 8) | b[i];
  return h;
}

/// 20-byte address field from the simulated 64-bit address.
Bytes address_bytes(eth::Address a) {
  Bytes out(20, 0);
  for (int i = 0; i < 8; ++i) out[19 - i] = static_cast<uint8_t>(a >> (8 * i));
  return out;
}

std::optional<eth::Address> address_from_bytes(const Bytes& b) {
  if (b.size() != 20) return std::nullopt;
  eth::Address a = 0;
  for (size_t i = 12; i < 20; ++i) a = (a << 8) | b[i];
  for (size_t i = 0; i < 12; ++i) {
    if (b[i] != 0) return std::nullopt;
  }
  return a;
}

constexpr uint8_t kType1559 = 0x02;

}  // namespace

Bytes encode_transaction(const eth::Transaction& tx) {
  if (!tx.fee1559) {
    // Legacy: [nonce, gasPrice, gas, to, value, data, v, r, s]; the
    // simulated sender/id ride in r/s (no cryptography in the simulator).
    const RlpItem item = RlpItem::list({
        RlpItem::uint(tx.nonce),
        RlpItem::uint(tx.gas_price),
        RlpItem::uint(tx.gas),
        RlpItem::str(address_bytes(tx.to)),
        RlpItem::uint(tx.value),
        RlpItem::str(Bytes{}),      // data
        RlpItem::uint(27),          // v
        RlpItem::uint(tx.sender),   // r (simulated)
        RlpItem::uint(tx.id),       // s (simulated)
    });
    return rlp_encode(item);
  }
  // EIP-2718 typed envelope: 0x02 || rlp([chainId, nonce, maxPriorityFee,
  // maxFee, gas, to, value, data, accessList, v, r, s]).
  const RlpItem item = RlpItem::list({
      RlpItem::uint(1),  // chainId
      RlpItem::uint(tx.nonce),
      RlpItem::uint(tx.fee1559->priority_fee),
      RlpItem::uint(tx.fee1559->max_fee),
      RlpItem::uint(tx.gas),
      RlpItem::str(address_bytes(tx.to)),
      RlpItem::uint(tx.value),
      RlpItem::str(Bytes{}),             // data
      RlpItem::list({}),                 // accessList
      RlpItem::uint(1),                  // v
      RlpItem::uint(tx.sender),          // r (simulated)
      RlpItem::uint(tx.id),              // s (simulated)
  });
  Bytes out{kType1559};
  const Bytes body = rlp_encode(item);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<eth::Transaction> decode_transaction(const Bytes& bytes) {
  if (bytes.empty()) return std::nullopt;

  if (bytes[0] == kType1559) {
    const Bytes body(bytes.begin() + 1, bytes.end());
    auto item = rlp_decode(body);
    if (!item || !item->is_list() || item->items().size() != 12) return std::nullopt;
    const auto& f = item->items();
    eth::Transaction tx;
    auto nonce = f[1].to_uint();
    auto prio = f[2].to_uint();
    auto max_fee = f[3].to_uint();
    auto gas = f[4].to_uint();
    auto to = f[5].is_string() ? address_from_bytes(f[5].bytes()) : std::nullopt;
    auto value = f[6].to_uint();
    auto sender = f[10].to_uint();
    auto id = f[11].to_uint();
    if (!nonce || !prio || !max_fee || !gas || !to || !value || !sender || !id)
      return std::nullopt;
    tx.nonce = *nonce;
    tx.fee1559 = eth::Fee1559{*max_fee, *prio};
    tx.gas = *gas;
    tx.to = *to;
    tx.value = *value;
    tx.sender = *sender;
    tx.id = *id;
    return tx;
  }

  auto item = rlp_decode(bytes);
  if (!item || !item->is_list() || item->items().size() != 9) return std::nullopt;
  const auto& f = item->items();
  eth::Transaction tx;
  auto nonce = f[0].to_uint();
  auto price = f[1].to_uint();
  auto gas = f[2].to_uint();
  auto to = f[3].is_string() ? address_from_bytes(f[3].bytes()) : std::nullopt;
  auto value = f[4].to_uint();
  auto sender = f[7].to_uint();
  auto id = f[8].to_uint();
  if (!nonce || !price || !gas || !to || !value || !sender || !id) return std::nullopt;
  tx.nonce = *nonce;
  tx.gas_price = *price;
  tx.gas = *gas;
  tx.to = *to;
  tx.value = *value;
  tx.sender = *sender;
  tx.id = *id;
  return tx;
}

Bytes encode_status(const StatusMessage& status) {
  return rlp_encode(RlpItem::list({
      RlpItem::uint(status.protocol_version),
      RlpItem::uint(status.network_id),
      RlpItem::uint(status.head_block),
      RlpItem::str(status.client_version),
  }));
}

std::optional<StatusMessage> decode_status(const Bytes& bytes) {
  auto item = rlp_decode(bytes);
  if (!item || !item->is_list() || item->items().size() != 4) return std::nullopt;
  const auto& f = item->items();
  auto ver = f[0].to_uint();
  auto net = f[1].to_uint();
  auto head = f[2].to_uint();
  if (!ver || !net || !head || !f[3].is_string()) return std::nullopt;
  StatusMessage status;
  status.protocol_version = *ver;
  status.network_id = *net;
  status.head_block = *head;
  status.client_version = f[3].to_string();
  return status;
}

Bytes encode_transactions(const std::vector<eth::Transaction>& txs, MsgId id) {
  std::vector<RlpItem> items;
  items.reserve(txs.size());
  for (const auto& tx : txs) items.push_back(RlpItem::str(encode_transaction(tx)));
  return wrap_message(id, rlp_encode(RlpItem::list(std::move(items))));
}

std::optional<std::vector<eth::Transaction>> decode_transactions(const Bytes& frame) {
  auto unwrapped = unwrap_message(frame);
  if (!unwrapped) return std::nullopt;
  auto item = rlp_decode(unwrapped->second);
  if (!item || !item->is_list()) return std::nullopt;
  std::vector<eth::Transaction> txs;
  for (const auto& sub : item->items()) {
    if (!sub.is_string()) return std::nullopt;
    auto tx = decode_transaction(sub.bytes());
    if (!tx) return std::nullopt;
    txs.push_back(std::move(*tx));
  }
  return txs;
}

Bytes encode_hashes(const std::vector<eth::TxHash>& hashes, MsgId id) {
  std::vector<RlpItem> items;
  items.reserve(hashes.size());
  for (const auto h : hashes) items.push_back(RlpItem::str(hash_bytes(h)));
  return wrap_message(id, rlp_encode(RlpItem::list(std::move(items))));
}

std::optional<std::vector<eth::TxHash>> decode_hashes(const Bytes& frame) {
  auto unwrapped = unwrap_message(frame);
  if (!unwrapped) return std::nullopt;
  auto item = rlp_decode(unwrapped->second);
  if (!item || !item->is_list()) return std::nullopt;
  std::vector<eth::TxHash> hashes;
  for (const auto& sub : item->items()) {
    if (!sub.is_string()) return std::nullopt;
    auto h = hash_from_bytes(sub.bytes());
    if (!h) return std::nullopt;
    hashes.push_back(*h);
  }
  return hashes;
}

Bytes wrap_message(MsgId id, Bytes payload) {
  return rlp_encode(RlpItem::list({
      RlpItem::uint(static_cast<uint64_t>(id)),
      RlpItem::str(std::move(payload)),
  }));
}

std::optional<std::pair<MsgId, Bytes>> unwrap_message(const Bytes& frame) {
  auto item = rlp_decode(frame);
  if (!item || !item->is_list() || item->items().size() != 2) return std::nullopt;
  auto id = item->items()[0].to_uint();
  if (!id || !item->items()[1].is_string()) return std::nullopt;
  switch (*id) {
    case 0x00:
    case 0x02:
    case 0x08:
    case 0x09:
    case 0x0a:
      break;
    default:
      return std::nullopt;
  }
  return std::make_pair(static_cast<MsgId>(*id), item->items()[1].bytes());
}

namespace {

/// RLP size of a uint field without materializing it.
size_t uint_field_size(uint64_t v) {
  if (v == 0) return 1;         // 0x80
  if (v <= 0x7f) return 1;      // the byte itself
  size_t n = 0;
  while (v > 0) {
    ++n;
    v >>= 8;
  }
  return 1 + n;  // short-string prefix + payload
}

size_t short_payload_size(size_t payload) {
  return (payload <= 55 ? 1 : 1 + [&] {
    size_t n = 0, v = payload;
    while (v > 0) {
      ++n;
      v >>= 8;
    }
    return n;
  }()) + payload;
}

}  // namespace

size_t transaction_wire_size(const eth::Transaction& tx) {
  // Arithmetic twin of encode_transaction + wrap_message (hot path: every
  // simulated push is sized); verified against the codec in tests.
  size_t body;
  if (!tx.fee1559) {
    const size_t fields = uint_field_size(tx.nonce) + uint_field_size(tx.gas_price) +
                          uint_field_size(tx.gas) + 21 /* to */ +
                          uint_field_size(tx.value) + 1 /* data */ + uint_field_size(27) +
                          uint_field_size(tx.sender) + uint_field_size(tx.id);
    body = short_payload_size(fields);
  } else {
    const size_t fields = uint_field_size(1) + uint_field_size(tx.nonce) +
                          uint_field_size(tx.fee1559->priority_fee) +
                          uint_field_size(tx.fee1559->max_fee) + uint_field_size(tx.gas) +
                          21 /* to */ + uint_field_size(tx.value) + 1 /* data */ +
                          1 /* accessList */ + uint_field_size(1) +
                          uint_field_size(tx.sender) + uint_field_size(tx.id);
    body = 1 /* type byte */ + short_payload_size(fields);
  }
  // frame = list(uint msg-id, str(body)).
  const size_t frame_payload = uint_field_size(0x02) + short_payload_size(body);
  return short_payload_size(frame_payload);
}

size_t announcement_wire_size() {
  static const size_t size = [] {
    const RlpItem frame = RlpItem::list({
        RlpItem::uint(static_cast<uint64_t>(MsgId::kNewPooledTransactionHashes)),
        RlpItem::str(Bytes(32, 0xab)),
    });
    return rlp_encoded_size(frame);
  }();
  return size;
}

}  // namespace topo::wire
