#pragma once

// RLP (Recursive Length Prefix) — Ethereum's canonical wire serialization,
// used by every devp2p message and by transactions themselves. Implemented
// from the Yellow Paper spec:
//   - a single byte in [0x00, 0x7f] is its own encoding;
//   - a string of 0..55 bytes: 0x80+len prefix;
//   - a longer string: 0xb7+len(len) then big-endian length;
//   - a list with 0..55 bytes of payload: 0xc0+len prefix;
//   - a longer list: 0xf7+len(len) then big-endian length.
//
// The simulator uses RLP to size messages for bandwidth accounting and to
// round-trip transactions/announcements through the wire codec tests.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace topo::wire {

using Bytes = std::vector<uint8_t>;

/// An RLP item: either a byte string or a list of items.
class RlpItem {
 public:
  RlpItem() : is_list_(false) {}
  static RlpItem str(Bytes bytes);
  static RlpItem str(const std::string& s);
  /// Big-endian minimal encoding of an unsigned integer (0 -> empty string).
  static RlpItem uint(uint64_t v);
  static RlpItem list(std::vector<RlpItem> items);

  bool is_list() const { return is_list_; }
  bool is_string() const { return !is_list_; }

  /// Payload accessors; aborts on kind mismatch in debug builds.
  const Bytes& bytes() const { return bytes_; }
  const std::vector<RlpItem>& items() const { return items_; }

  /// Decodes the byte string as a big-endian unsigned integer. Returns
  /// nullopt for lists, >8-byte strings, or non-minimal encodings
  /// (leading zero bytes).
  std::optional<uint64_t> to_uint() const;
  std::string to_string() const { return std::string(bytes_.begin(), bytes_.end()); }

  bool operator==(const RlpItem& o) const;

 private:
  bool is_list_;
  Bytes bytes_;
  std::vector<RlpItem> items_;
};

/// Encodes an item to RLP bytes.
Bytes rlp_encode(const RlpItem& item);

/// Decodes exactly one item; fails (nullopt) on truncation, trailing bytes,
/// or non-canonical encodings (e.g. a 1-byte string <= 0x7f wrapped in a
/// 0x81 prefix, or long-form lengths that fit the short form).
std::optional<RlpItem> rlp_decode(const Bytes& bytes);

/// Decodes one item from a prefix of `bytes` starting at `pos`; advances
/// `pos` past it. Used internally and by stream parsers.
std::optional<RlpItem> rlp_decode_prefix(const Bytes& bytes, size_t& pos);

/// Size in bytes of the encoding of an item without materializing it.
size_t rlp_encoded_size(const RlpItem& item);

}  // namespace topo::wire
