#pragma once

// Structured, leveled event log for long-running services (the monitor
// daemon, docs/OBSERVABILITY.md). Every entry carries a *simulation*-time
// stamp (never wall clock, per the obs determinism rule), a level, a
// subsystem tag, a machine-readable event name, and structured fields; the
// log renders as JSON lines (`to_jsonl`), one object per entry.
//
// Storage is a bounded ring in the TraceRing mold: when full, the oldest
// entry is overwritten and counted as dropped, so instrumentation can stay
// on for unbounded runs. Entries below the effective severity threshold
// (global, overridable per subsystem) are filtered before they reach the
// ring and counted separately as suppressed — suppression is policy,
// dropping is pressure, and only the latter signals an undersized ring.
//
// The log is internally synchronized: any thread may append or read. The
// clock is a plain sample-and-hold set by the owning loop (`set_clock`);
// concurrent writers stamp with whatever epoch time the loop last
// published, which keeps stamps deterministic where the caller is.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "rpc/json.h"
#include "util/log.h"

namespace topo::obs {

/// Lowercase wire name of a level ("debug"/"info"/"warn"/"error"/"off").
const char* log_level_name(util::LogLevel level);

/// Inverse of log_level_name; false on an unknown name.
bool log_level_from_name(const std::string& name, util::LogLevel& out);

/// One structured log entry. `fields` keeps insertion order in memory;
/// the JSON rendering sorts keys (JsonObject is an ordered map), so equal
/// entries serialize byte-identically regardless of construction order.
struct LogEvent {
  double t = 0.0;  ///< simulation seconds
  util::LogLevel level = util::LogLevel::kInfo;
  std::string subsystem;
  std::string event;
  std::vector<std::pair<std::string, rpc::Json>> fields;

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

/// `{"event":...,"fields":{...},"level":...,"subsystem":...,"t":...}`.
rpc::Json log_event_to_json(const LogEvent& e);

class EventLog {
 public:
  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Publishes the sim-time stamp subsequent entries carry.
  void set_clock(double sim_seconds);
  double clock() const;

  /// Global severity threshold (default kInfo: debug entries suppressed).
  void set_threshold(util::LogLevel level);
  /// Per-subsystem override; wins over the global threshold for matching
  /// entries.
  void set_threshold(const std::string& subsystem, util::LogLevel level);
  /// Effective threshold for `subsystem`.
  util::LogLevel threshold(const std::string& subsystem) const;

  bool would_log(util::LogLevel level, const std::string& subsystem) const;

  /// Appends one entry stamped with the current clock; suppressed when
  /// below the subsystem's effective threshold.
  void log(util::LogLevel level, std::string subsystem, std::string event,
           std::vector<std::pair<std::string, rpc::Json>> fields = {});

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Entries accepted past the threshold filter, lifetime.
  uint64_t total_pushed() const;
  /// Accepted entries later overwritten by ring wrap-around.
  uint64_t dropped() const;
  /// Entries filtered out by severity thresholds, lifetime.
  uint64_t suppressed() const;

  /// Buffered entries, oldest first.
  std::vector<LogEvent> events() const;

  /// Buffered entries as JSON lines, oldest first, one '\n'-terminated
  /// object per entry.
  std::string to_jsonl() const;

  void clear();

  static constexpr size_t kDefaultCapacity = 1024;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<LogEvent> ring_;  // grows to capacity_, then wraps at head_
  size_t head_ = 0;             // next overwrite slot once full
  uint64_t total_ = 0;          // lifetime accepted entries
  uint64_t suppressed_ = 0;
  double clock_ = 0.0;
  util::LogLevel threshold_ = util::LogLevel::kInfo;
  std::map<std::string, util::LogLevel> subsystem_thresholds_;
};

}  // namespace topo::obs
