#pragma once

// Bounded ring of structured trace events. Pushing is O(1) and never
// allocates after construction; when the ring is full the oldest event is
// overwritten and counted as dropped, so instrumentation can stay on even
// in long runs.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topo::obs {

/// What happened to a transaction as it moved through the system.
enum class TraceKind : uint8_t {
  kTxInjected = 0,  ///< measurement node queued a send   (subject=tx id, actor=target peer)
  kTxReplaced,      ///< pool replacement, §2 event 1b    (subject=new tx id, actor=old tx id)
  kTxEvicted,       ///< pool eviction / truncation       (subject=evicted tx id, actor=0)
  kTxForwarded,     ///< node propagated a transaction    (subject=tx id, actor=forwarding peer)
  kTxMeasured,      ///< probe verdict recorded           (subject=txA id, actor=1 connected / 0 not)
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  double time = 0.0;  ///< simulation seconds
  TraceKind kind = TraceKind::kTxInjected;
  uint64_t subject = 0;
  uint64_t actor = 0;

  bool operator==(const TraceEvent& o) const = default;
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void push(const TraceEvent& e);
  void push(double time, TraceKind kind, uint64_t subject, uint64_t actor = 0) {
    push(TraceEvent{time, kind, subject, actor});
  }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size(); }
  uint64_t total_pushed() const { return total_; }
  uint64_t dropped() const { return total_ - size(); }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Visits every buffered event oldest-first without copying the ring —
  /// the exporter-facing walk (events() materializes a vector; a full
  /// default-capacity ring is 4096 * 32 B per export otherwise).
  template <typename Fn>
  void visit(Fn&& fn) const {
    const size_t n = size();
    if (n == 0) return;
    const size_t start = total_ > ring_.size() ? head_ : 0;
    for (size_t i = 0; i < n; ++i) fn(ring_[(start + i) % ring_.size()]);
  }

  void clear();

  /// Reconstructs the ring from `events` (oldest first, as events()
  /// returns) and a lifetime push count, so that subsequent pushes land in
  /// exactly the slots they would have in the source ring — a restored
  /// world's trace exports stay byte-identical to the original's. Requires
  /// events.size() == min(total_pushed, capacity()).
  void restore(const std::vector<TraceEvent>& events, uint64_t total_pushed);

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;      // next write slot
  uint64_t total_ = 0;   // lifetime pushes
};

}  // namespace topo::obs
