#pragma once

// Snapshot/trace exporters reusing the repo's JSON value (src/rpc/json.*).
// Export order is name-sorted and numeric formatting goes through one
// serializer, so identical registries dump byte-identical documents.

#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/json.h"

namespace topo::obs {

/// {"counters": {...}, "gauges": {...}, "gauge_maxes": {...},
///  "histograms": {name: {bounds, counts, count, sum, min, max}}}
rpc::Json snapshot_to_json(const MetricsSnapshot& s);

/// Inverse of snapshot_to_json; nullopt on shape mismatch.
std::optional<MetricsSnapshot> snapshot_from_json(const rpc::Json& j);

/// One scalar per row: `name,type,value`. Histograms flatten into
/// `<name>.count`, `<name>.sum`, `<name>.min`, `<name>.max`, and one
/// `<name>.le_<bound>` row per bucket (plus `<name>.le_inf`).
std::string snapshot_to_csv(const MetricsSnapshot& s);

/// {"events": [{"t": sim_seconds, "kind": "tx-evicted", "subject": id,
///  "actor": id}, ...], "dropped": n, "total_pushed": n}
rpc::Json trace_to_json(const TraceRing& ring);

/// Writes `doc.dump()` to `path`; false on I/O failure.
bool write_json_file(const std::string& path, const rpc::Json& doc);

}  // namespace topo::obs
