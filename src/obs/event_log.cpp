#include "obs/event_log.h"

#include <algorithm>

namespace topo::obs {

const char* log_level_name(util::LogLevel level) {
  switch (level) {
    case util::LogLevel::kDebug: return "debug";
    case util::LogLevel::kInfo: return "info";
    case util::LogLevel::kWarn: return "warn";
    case util::LogLevel::kError: return "error";
    case util::LogLevel::kOff: return "off";
  }
  return "unknown";
}

bool log_level_from_name(const std::string& name, util::LogLevel& out) {
  for (util::LogLevel l : {util::LogLevel::kDebug, util::LogLevel::kInfo,
                           util::LogLevel::kWarn, util::LogLevel::kError,
                           util::LogLevel::kOff}) {
    if (name == log_level_name(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

rpc::Json log_event_to_json(const LogEvent& e) {
  rpc::JsonObject fields;
  for (const auto& [k, v] : e.fields) fields.emplace(k, v);
  return rpc::Json(rpc::JsonObject{
      {"event", rpc::Json(e.event)},
      {"fields", rpc::Json(std::move(fields))},
      {"level", rpc::Json(log_level_name(e.level))},
      {"subsystem", rpc::Json(e.subsystem)},
      {"t", rpc::Json(e.t)},
  });
}

EventLog::EventLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

void EventLog::set_clock(double sim_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_ = sim_seconds;
}

double EventLog::clock() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

void EventLog::set_threshold(util::LogLevel level) {
  const std::lock_guard<std::mutex> lock(mutex_);
  threshold_ = level;
}

void EventLog::set_threshold(const std::string& subsystem, util::LogLevel level) {
  const std::lock_guard<std::mutex> lock(mutex_);
  subsystem_thresholds_[subsystem] = level;
}

util::LogLevel EventLog::threshold(const std::string& subsystem) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subsystem_thresholds_.find(subsystem);
  return it == subsystem_thresholds_.end() ? threshold_ : it->second;
}

bool EventLog::would_log(util::LogLevel level, const std::string& subsystem) const {
  return level != util::LogLevel::kOff && level >= threshold(subsystem);
}

void EventLog::log(util::LogLevel level, std::string subsystem, std::string event,
                   std::vector<std::pair<std::string, rpc::Json>> fields) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subsystem_thresholds_.find(subsystem);
  const util::LogLevel min = it == subsystem_thresholds_.end() ? threshold_ : it->second;
  if (level == util::LogLevel::kOff || level < min) {
    ++suppressed_;
    return;
  }
  LogEvent e{clock_, level, std::move(subsystem), std::move(event), std::move(fields)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t EventLog::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t EventLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

uint64_t EventLog::suppressed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

std::vector<LogEvent> EventLog::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LogEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string EventLog::to_jsonl() const {
  std::string out;
  for (const LogEvent& e : events()) {
    out += log_event_to_json(e).dump();
    out += '\n';
  }
  return out;
}

void EventLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
  suppressed_ = 0;
}

}  // namespace topo::obs
