#pragma once

// Deterministic causal-span tracing (DESIGN: docs/TRACING.md).
//
// A SpanTracer records the hierarchical structure of a measurement
// campaign — campaign → shard → batch → pair → per-phase — as flat spans
// keyed to *simulation* time. Span ids are pure functions of the campaign
// structure (shard, batch, pair indices), never of execution order across
// threads, so a sorted export is byte-identical at any worker-pool width
// and on either event-queue backend. Exports target the Chrome trace-event
// JSON format and load directly in Perfetto / chrome://tracing.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/json.h"

namespace topo::obs {

/// What a span covers. Structural kinds (campaign/shard/batch/pair) nest by
/// construction; phase kinds mirror the probe protocol steps of paper §5.2;
/// retry kinds record the bounded re-measurement pass.
enum class SpanKind : uint8_t {
  kCampaign = 1,     ///< whole campaign (root)
  kShard,            ///< one world replica's batch sequence
  kBatch,            ///< one slot-budgeted measurePar call
  kPair,             ///< one candidate link, open across every attempt
  kPlantTxC,         ///< step 1: plant txC + wait_X flood window
  kEvictFlood,       ///< step 2/3: future flood + truncation gap on a target
  kPlantProbes,      ///< step 2/3: plant txB / txA replacements
  kObserve,          ///< step 4: detect window
  kRetryRound,       ///< one round of core::run_retry_pass
  kRetryClear,       ///< instant: a retry decided a formerly inconclusive pair
  kEpoch,            ///< one monitoring epoch (src/monitor): drift + re-measure + publish
};

const char* span_kind_name(SpanKind kind);

/// Machine-readable explanation of a non-connected verdict: *which* step of
/// the probe's causal chain broke. Ordered by classification priority (the
/// earliest broken protocol step wins; see docs/TRACING.md).
enum class ProbeCause : uint8_t {
  kNone = 0,            ///< connected, or not applicable
  kNodeOffline,         ///< source or sink was crashed/unresponsive at observation
  kTxCNotEvicted,       ///< the future flood never cleared txC off the sink
  kPayloadNotPlanted,   ///< txB (or txA replacing it) never landed on the sink
  kTxANotPlanted,       ///< txA never landed on the source
  kTxANeverReturned,    ///< preconditions held; txA refuted (clean negative)
};

inline constexpr size_t kNumProbeCauses = 6;

const char* probe_cause_name(ProbeCause cause);

/// Inverse of probe_cause_name; false on an unknown name.
bool probe_cause_from_name(const std::string& name, ProbeCause& out);

/// Verdict code carried on pair / retry-clear spans: 0 = none (structural
/// span), 1 = connected, 2 = negative, 3 = inconclusive. Kept as a plain
/// code so obs stays independent of core's Verdict enum.
const char* span_verdict_name(uint8_t code);

// -- stable span ids ---------------------------------------------------------
//
// Structural ids (bit 63 clear) pack the campaign coordinates:
//   [62..44] shard+1 (19 bits) | [43..24] batch+1 (20 bits) |
//   [23..4]  pair+1  (20 bits) | [3..0] kind
// The campaign root is kind alone (id 1). Ordinal ids (bit 63 set) number
// phase/retry spans per shard in open order — deterministic because each
// shard's measurement sequence is single-threaded and fixed by the shard
// plan:
//   [63] 1 | [62..44] shard+1 | [43..4] ordinal+1 | [3..0] kind

inline constexpr uint64_t kCampaignSpanId =
    static_cast<uint64_t>(SpanKind::kCampaign);

inline constexpr uint64_t shard_span_id(uint64_t shard) {
  return ((shard + 1) << 44) | static_cast<uint64_t>(SpanKind::kShard);
}

/// Epoch spans live in the *monitor's* tracer (one per daemon, distinct
/// from the per-campaign tracers), so the epoch index alone identifies the
/// span; the kind nibble keeps the id disjoint from every structural id.
inline constexpr uint64_t epoch_span_id(uint64_t epoch) {
  return ((epoch + 1) << 4) | static_cast<uint64_t>(SpanKind::kEpoch);
}

inline constexpr uint64_t batch_span_id(uint64_t shard, uint64_t batch) {
  return ((shard + 1) << 44) | ((batch + 1) << 24) |
         static_cast<uint64_t>(SpanKind::kBatch);
}

inline constexpr uint64_t pair_span_id(uint64_t shard, uint64_t batch, uint64_t pair) {
  return ((shard + 1) << 44) | ((batch + 1) << 24) | ((pair + 1) << 4) |
         static_cast<uint64_t>(SpanKind::kPair);
}

inline constexpr uint64_t ordinal_span_id(uint64_t shard, uint64_t ordinal, SpanKind kind) {
  return (uint64_t{1} << 63) | ((shard + 1) << 44) | ((ordinal + 1) << 4) |
         static_cast<uint64_t>(kind);
}

/// One recorded span. Flat POD — the hierarchy lives in `parent` ids, the
/// identity in the stable id scheme above.
struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  SpanKind kind = SpanKind::kCampaign;
  double start = 0.0;  ///< sim seconds
  double end = 0.0;    ///< sim seconds (== start for instants)
  uint64_t a = 0;      ///< kind-specific: pair endpoints, batch/shard index
  uint64_t b = 0;
  uint8_t verdict = 0;  ///< see span_verdict_name; 0 on structural spans
  ProbeCause cause = ProbeCause::kNone;
  uint32_t shard = 0;

  bool operator==(const Span& o) const = default;
};

/// Records spans for one shard's (single-threaded) measurement sequence.
/// Not thread-safe by design: the sharded campaign gives each replica its
/// own tracer and merges them afterwards in shard order.
class SpanTracer {
 public:
  explicit SpanTracer(uint32_t shard = 0) : shard_(shard) {}

  uint32_t shard() const { return shard_; }

  /// Opens a span with an explicit stable id. Returns `id`.
  uint64_t open(SpanKind kind, double start, uint64_t id, uint64_t parent,
                uint64_t a = 0, uint64_t b = 0);

  /// Opens a phase/retry span with the next ordinal id; parent = scope().
  uint64_t open_auto(SpanKind kind, double start, uint64_t a = 0, uint64_t b = 0);

  /// Opens a pair span at an explicit pair index within the current batch
  /// (set_batch); parent = scope().
  uint64_t open_pair_at(uint64_t pair_index, double start, uint64_t a, uint64_t b);

  /// Opens a pair span with an auto-incremented pair index — the serial
  /// one-link driver, which has no batch structure.
  uint64_t open_pair(double start, uint64_t a, uint64_t b) {
    return open_pair_at(pair_ordinal_++, start, a, b);
  }

  void close(uint64_t id, double end);
  void close_pair(uint64_t id, double end, uint8_t verdict, ProbeCause cause);

  /// Zero-length marker span (retry-clear log entries), parent = scope().
  void instant(SpanKind kind, double t, uint64_t a, uint64_t b, uint8_t verdict,
               ProbeCause cause);

  /// Ambient parent for open_auto/open_pair*/instant; returns the previous
  /// scope so callers can restore it.
  uint64_t set_scope(uint64_t span_id) {
    const uint64_t prev = scope_;
    scope_ = span_id;
    return prev;
  }
  uint64_t scope() const { return scope_; }

  /// Batch context for pair-span ids; resets the per-batch pair ordinal.
  void set_batch(uint64_t batch) {
    batch_ = batch;
    pair_ordinal_ = 0;
  }

  const std::vector<Span>& spans() const { return spans_; }
  void append(const std::vector<Span>& spans);
  void clear();

 private:
  uint32_t shard_ = 0;
  uint64_t batch_ = 0;
  uint64_t pair_ordinal_ = 0;
  uint64_t next_ordinal_ = 0;
  uint64_t scope_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<uint64_t, size_t> open_;  ///< id -> index into spans_
};

/// Canonical export order: ascending stable id (campaign root, then shards,
/// batches, pairs, then per-shard ordinal spans). Ids are unique within a
/// campaign, so the order is total and execution-order independent.
void sort_spans(std::vector<Span>& spans);

/// Chrome trace-event JSON ({"displayTimeUnit", "traceEvents": [...]}):
/// complete ("ph":"X") events, ts/dur in microseconds of sim time, tid =
/// shard. Loadable in Perfetto / chrome://tracing. Spans are exported in
/// canonical sorted order, so the document is byte-identical for identical
/// span sets.
rpc::Json spans_to_chrome_json(std::vector<Span> spans);

}  // namespace topo::obs
