#include "obs/export.h"

#include <fstream>

namespace topo::obs {

namespace {

rpc::Json histogram_to_json(const HistogramSnapshot& h) {
  rpc::JsonObject o;
  rpc::JsonArray bounds;
  for (double b : h.bounds) bounds.emplace_back(b);
  rpc::JsonArray counts;
  for (uint64_t c : h.counts) counts.emplace_back(c);
  o["bounds"] = rpc::Json(std::move(bounds));
  o["counts"] = rpc::Json(std::move(counts));
  o["count"] = rpc::Json(h.count);
  o["sum"] = rpc::Json(h.sum);
  o["min"] = rpc::Json(h.min);
  o["max"] = rpc::Json(h.max);
  return rpc::Json(std::move(o));
}

std::optional<HistogramSnapshot> histogram_from_json(const rpc::Json& j) {
  if (!j.is_object()) return std::nullopt;
  const rpc::Json& bounds = j["bounds"];
  const rpc::Json& counts = j["counts"];
  if (!bounds.is_array() || !counts.is_array()) return std::nullopt;
  HistogramSnapshot h;
  for (const auto& b : bounds.as_array()) {
    if (!b.is_number()) return std::nullopt;
    h.bounds.push_back(b.as_number());
  }
  for (const auto& c : counts.as_array()) {
    if (!c.is_number()) return std::nullopt;
    h.counts.push_back(static_cast<uint64_t>(c.as_number()));
  }
  if (!j["count"].is_number() || !j["sum"].is_number() || !j["min"].is_number() ||
      !j["max"].is_number()) {
    return std::nullopt;
  }
  h.count = static_cast<uint64_t>(j["count"].as_number());
  h.sum = j["sum"].as_number();
  h.min = j["min"].as_number();
  h.max = j["max"].as_number();
  return h;
}

/// One serializer for every CSV cell keeps the formatting identical to the
/// JSON export (integral fast path, %.17g otherwise).
std::string num(double v) { return rpc::Json(v).dump(); }

}  // namespace

rpc::Json snapshot_to_json(const MetricsSnapshot& s) {
  rpc::JsonObject counters;
  for (const auto& [name, v] : s.counters) counters[name] = rpc::Json(v);
  rpc::JsonObject gauges;
  for (const auto& [name, v] : s.gauges) gauges[name] = rpc::Json(v);
  rpc::JsonObject maxes;
  for (const auto& [name, v] : s.gauge_maxes) maxes[name] = rpc::Json(v);
  rpc::JsonObject histograms;
  for (const auto& [name, h] : s.histograms) histograms[name] = histogram_to_json(h);

  rpc::JsonObject root;
  root["counters"] = rpc::Json(std::move(counters));
  root["gauges"] = rpc::Json(std::move(gauges));
  root["gauge_maxes"] = rpc::Json(std::move(maxes));
  root["histograms"] = rpc::Json(std::move(histograms));
  return rpc::Json(std::move(root));
}

std::optional<MetricsSnapshot> snapshot_from_json(const rpc::Json& j) {
  if (!j.is_object()) return std::nullopt;
  const rpc::Json& counters = j["counters"];
  const rpc::Json& gauges = j["gauges"];
  const rpc::Json& maxes = j["gauge_maxes"];
  const rpc::Json& histograms = j["histograms"];
  if (!counters.is_object() || !gauges.is_object() || !maxes.is_object() ||
      !histograms.is_object()) {
    return std::nullopt;
  }
  MetricsSnapshot s;
  for (const auto& [name, v] : counters.as_object()) {
    if (!v.is_number()) return std::nullopt;
    s.counters[name] = static_cast<uint64_t>(v.as_number());
  }
  for (const auto& [name, v] : gauges.as_object()) {
    if (!v.is_number()) return std::nullopt;
    s.gauges[name] = v.as_number();
  }
  for (const auto& [name, v] : maxes.as_object()) {
    if (!v.is_number()) return std::nullopt;
    s.gauge_maxes[name] = v.as_number();
  }
  for (const auto& [name, v] : histograms.as_object()) {
    auto h = histogram_from_json(v);
    if (!h) return std::nullopt;
    s.histograms[name] = std::move(*h);
  }
  return s;
}

std::string snapshot_to_csv(const MetricsSnapshot& s) {
  std::string out = "name,type,value\n";
  for (const auto& [name, v] : s.counters) {
    out += name + ",counter," + rpc::Json(v).dump() + "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    out += name + ",gauge," + num(v) + "\n";
    auto it = s.gauge_maxes.find(name);
    if (it != s.gauge_maxes.end()) out += name + ".max,gauge," + num(it->second) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    out += name + ".count,histogram," + rpc::Json(h.count).dump() + "\n";
    out += name + ".sum,histogram," + num(h.sum) + "\n";
    out += name + ".min,histogram," + num(h.min) + "\n";
    out += name + ".max,histogram," + num(h.max) + "\n";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      const std::string edge = i < h.bounds.size() ? num(h.bounds[i]) : "inf";
      out += name + ".le_" + edge + ",histogram," + rpc::Json(h.counts[i]).dump() + "\n";
    }
  }
  return out;
}

rpc::Json trace_to_json(const TraceRing& ring) {
  rpc::JsonArray events;
  events.reserve(ring.size());
  ring.visit([&events](const TraceEvent& e) {
    rpc::JsonObject o;
    o["t"] = rpc::Json(e.time);
    o["kind"] = rpc::Json(trace_kind_name(e.kind));
    o["subject"] = rpc::Json(e.subject);
    o["actor"] = rpc::Json(e.actor);
    events.emplace_back(std::move(o));
  });
  rpc::JsonObject root;
  root["events"] = rpc::Json(std::move(events));
  root["dropped"] = rpc::Json(ring.dropped());
  root["total_pushed"] = rpc::Json(ring.total_pushed());
  return rpc::Json(std::move(root));
}

bool write_json_file(const std::string& path, const rpc::Json& doc) {
  std::ofstream out(path);
  if (!out) return false;
  out << doc.dump() << "\n";
  return static_cast<bool>(out);
}

}  // namespace topo::obs
