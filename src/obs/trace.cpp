#include "obs/trace.h"

#include <algorithm>

namespace topo::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTxInjected: return "tx-injected";
    case TraceKind::kTxReplaced: return "tx-replaced";
    case TraceKind::kTxEvicted: return "tx-evicted";
    case TraceKind::kTxForwarded: return "tx-forwarded";
    case TraceKind::kTxMeasured: return "tx-measured";
  }
  return "?";
}

TraceRing::TraceRing(size_t capacity) : ring_(std::max<size_t>(1, capacity)) {}

void TraceRing::push(const TraceEvent& e) {
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<TraceEvent> TraceRing::events() const {
  const size_t n = size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest entry sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = total_ > ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void TraceRing::clear() {
  head_ = 0;
  total_ = 0;
}

void TraceRing::restore(const std::vector<TraceEvent>& events, uint64_t total_pushed) {
  const size_t cap = ring_.size();
  total_ = total_pushed;
  if (total_ <= cap) {
    // Not yet wrapped: events occupy [0, n) and the next push goes to n.
    for (size_t i = 0; i < events.size() && i < cap; ++i) ring_[i] = events[i];
    head_ = static_cast<size_t>(total_) % cap;
  } else {
    // Wrapped: the oldest buffered event sits at head_ (== total_ mod cap),
    // mirroring where the source ring's write cursor stood.
    head_ = static_cast<size_t>(total_ % cap);
    for (size_t i = 0; i < events.size() && i < cap; ++i) {
      ring_[(head_ + i) % cap] = events[i];
    }
  }
}

}  // namespace topo::obs
