#include "obs/prometheus.h"

#include <algorithm>
#include <cstdint>

#include "rpc/json.h"

namespace topo::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// One deterministic number formatter for the whole telemetry plane:
/// integral values take the %lld fast path, everything else %.17g — the
/// same policy as the JSON exports, so the two surfaces never disagree.
std::string num(double v) { return rpc::Json(v).dump(); }

void emit_sample(std::string& out, const std::string& name, double value) {
  out += name;
  out += ' ';
  out += num(value);
  out += '\n';
}

void emit_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (char c : name) out += valid_name_char(c) ? c : '_';
  return out;
}

std::string expose_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [raw, v] : snap.counters) {
    const std::string name = sanitize_metric_name(raw);
    emit_type(out, name, "counter");
    emit_sample(out, name, static_cast<double>(v));
  }
  // Gauges and their high-water companions. After a one-sided merge the two
  // maps can disagree, so walk both: a max without a current value still
  // exposes (as `<name>_max` alone).
  for (const auto& [raw, v] : snap.gauges) {
    const std::string name = sanitize_metric_name(raw);
    emit_type(out, name, "gauge");
    emit_sample(out, name, v);
    const auto mit = snap.gauge_maxes.find(raw);
    if (mit != snap.gauge_maxes.end()) {
      emit_type(out, name + "_max", "gauge");
      emit_sample(out, name + "_max", mit->second);
    }
  }
  for (const auto& [raw, v] : snap.gauge_maxes) {
    if (snap.gauges.count(raw) != 0) continue;
    const std::string name = sanitize_metric_name(raw) + "_max";
    emit_type(out, name, "gauge");
    emit_sample(out, name, v);
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = sanitize_metric_name(raw);
    emit_type(out, name, "histogram");
    uint64_t running = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i < h.counts.size()) running += h.counts[i];
      out += name;
      out += "_bucket{le=\"";
      out += num(h.bounds[i]);
      out += "\"} ";
      out += num(static_cast<double>(running));
      out += '\n';
    }
    // +Inf carries the authoritative observation count — after a
    // mismatched-bounds merge it is the one total the snapshot vouches for.
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    out += num(static_cast<double>(h.count));
    out += '\n';
    emit_sample(out, name + "_sum", h.sum);
    emit_sample(out, name + "_count", static_cast<double>(h.count));
  }
  return out;
}

std::string expose_prometheus(const MetricsRegistry& registry) {
  return expose_prometheus(registry.snapshot());
}

}  // namespace topo::obs
