#pragma once

// Prometheus text exposition (format 0.0.4) of a metrics snapshot — the
// live-telemetry rendering behind `topo_getMetrics` and monitord's
// `--prom-out` (docs/OBSERVABILITY.md).
//
// The output is a pure function of the snapshot: families render in
// name-sorted order (counters, then gauges with their `_max` high-water
// companions, then histograms), and every number goes through the same
// integral-fast-path / %.17g formatter as the JSON exports. Snapshots that
// compare equal therefore expose byte-identically — which is what lets the
// monitor daemon promise identical exposition bytes across `--threads`
// widths and event-queue backends.

#include <string>

#include "obs/metrics.h"

namespace topo::obs {

/// Maps an internal dotted metric name ("monitor.pairs_measured") onto the
/// Prometheus charset: every byte outside [a-zA-Z0-9_:] becomes '_', and a
/// name starting with a digit gains a '_' prefix. Empty names stay empty.
std::string sanitize_metric_name(const std::string& name);

/// Renders the snapshot in Prometheus text exposition format 0.0.4.
/// Counters and gauges emit one `# TYPE` line plus one sample; every gauge
/// with a recorded high-water mark also emits a `<name>_max` gauge.
/// Histograms emit cumulative `<name>_bucket{le="..."}` samples (one per
/// upper bound, plus `le="+Inf"` equal to the observation count), then
/// `<name>_sum` and `<name>_count`.
std::string expose_prometheus(const MetricsSnapshot& snap);

/// Convenience overload: snapshots the registry and renders it.
std::string expose_prometheus(const MetricsRegistry& registry);

}  // namespace topo::obs
