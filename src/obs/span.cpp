#include "obs/span.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace topo::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCampaign: return "campaign";
    case SpanKind::kShard: return "shard";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kPair: return "pair";
    case SpanKind::kPlantTxC: return "plant-txc";
    case SpanKind::kEvictFlood: return "evict-flood";
    case SpanKind::kPlantProbes: return "plant-probes";
    case SpanKind::kObserve: return "observe";
    case SpanKind::kRetryRound: return "retry-round";
    case SpanKind::kRetryClear: return "retry-clear";
    case SpanKind::kEpoch: return "epoch";
  }
  return "unknown";
}

const char* probe_cause_name(ProbeCause cause) {
  switch (cause) {
    case ProbeCause::kNone: return "none";
    case ProbeCause::kNodeOffline: return "node-offline";
    case ProbeCause::kTxCNotEvicted: return "txc-not-evicted";
    case ProbeCause::kPayloadNotPlanted: return "payload-not-planted";
    case ProbeCause::kTxANotPlanted: return "txa-not-planted";
    case ProbeCause::kTxANeverReturned: return "txa-never-returned";
  }
  return "unknown";
}

bool probe_cause_from_name(const std::string& name, ProbeCause& out) {
  for (size_t i = 0; i < kNumProbeCauses; ++i) {
    const auto c = static_cast<ProbeCause>(i);
    if (name == probe_cause_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

const char* span_verdict_name(uint8_t code) {
  switch (code) {
    case 1: return "connected";
    case 2: return "negative";
    case 3: return "inconclusive";
    default: return "";
  }
}

uint64_t SpanTracer::open(SpanKind kind, double start, uint64_t id, uint64_t parent,
                          uint64_t a, uint64_t b) {
  Span s;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  s.start = start;
  s.end = start;
  s.a = a;
  s.b = b;
  s.shard = shard_;
  open_[id] = spans_.size();
  spans_.push_back(s);
  return id;
}

uint64_t SpanTracer::open_auto(SpanKind kind, double start, uint64_t a, uint64_t b) {
  return open(kind, start, ordinal_span_id(shard_, next_ordinal_++, kind), scope_, a, b);
}

uint64_t SpanTracer::open_pair_at(uint64_t pair_index, double start, uint64_t a,
                                  uint64_t b) {
  return open(SpanKind::kPair, start, pair_span_id(shard_, batch_, pair_index), scope_,
              a, b);
}

void SpanTracer::close(uint64_t id, double end) {
  auto it = open_.find(id);
  assert(it != open_.end() && "SpanTracer::close: span not open");
  if (it == open_.end()) return;
  spans_[it->second].end = end;
  open_.erase(it);
}

void SpanTracer::close_pair(uint64_t id, double end, uint8_t verdict, ProbeCause cause) {
  auto it = open_.find(id);
  assert(it != open_.end() && "SpanTracer::close_pair: span not open");
  if (it == open_.end()) return;
  Span& s = spans_[it->second];
  s.end = end;
  s.verdict = verdict;
  s.cause = cause;
  open_.erase(it);
}

void SpanTracer::instant(SpanKind kind, double t, uint64_t a, uint64_t b,
                         uint8_t verdict, ProbeCause cause) {
  Span s;
  s.id = ordinal_span_id(shard_, next_ordinal_++, kind);
  s.parent = scope_;
  s.kind = kind;
  s.start = t;
  s.end = t;
  s.a = a;
  s.b = b;
  s.verdict = verdict;
  s.cause = cause;
  s.shard = shard_;
  spans_.push_back(s);
}

void SpanTracer::append(const std::vector<Span>& spans) {
  spans_.insert(spans_.end(), spans.begin(), spans.end());
}

void SpanTracer::clear() {
  spans_.clear();
  open_.clear();
  batch_ = 0;
  pair_ordinal_ = 0;
  next_ordinal_ = 0;
  scope_ = 0;
}

void sort_spans(std::vector<Span>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const Span& x, const Span& y) { return x.id < y.id; });
}

rpc::Json spans_to_chrome_json(std::vector<Span> spans) {
  sort_spans(spans);
  rpc::JsonArray events;
  events.reserve(spans.size());
  for (const Span& s : spans) {
    rpc::JsonObject args{
        {"id", rpc::Json(s.id)},
        {"parent", rpc::Json(s.parent)},
        {"a", rpc::Json(s.a)},
        {"b", rpc::Json(s.b)},
    };
    if (s.verdict != 0) {
      args.emplace("verdict", rpc::Json(span_verdict_name(s.verdict)));
      args.emplace("cause", rpc::Json(probe_cause_name(s.cause)));
    }
    std::string name = span_kind_name(s.kind);
    if (s.kind == SpanKind::kPair || s.kind == SpanKind::kRetryClear) {
      name += " " + std::to_string(s.a) + "-" + std::to_string(s.b);
    } else if (s.kind == SpanKind::kBatch || s.kind == SpanKind::kShard ||
               s.kind == SpanKind::kEpoch) {
      name += " " + std::to_string(s.a);
    }
    const bool structural = s.kind == SpanKind::kCampaign || s.kind == SpanKind::kShard ||
                            s.kind == SpanKind::kBatch || s.kind == SpanKind::kPair ||
                            s.kind == SpanKind::kEpoch;
    const bool retry =
        s.kind == SpanKind::kRetryRound || s.kind == SpanKind::kRetryClear;
    events.push_back(rpc::Json(rpc::JsonObject{
        {"name", rpc::Json(std::move(name))},
        {"cat", rpc::Json(structural ? "schedule" : retry ? "retry" : "probe")},
        {"ph", rpc::Json("X")},
        {"ts", rpc::Json(s.start * 1e6)},
        {"dur", rpc::Json((s.end - s.start) * 1e6)},
        {"pid", rpc::Json(uint64_t{0})},
        {"tid", rpc::Json(static_cast<uint64_t>(s.shard))},
        {"args", rpc::Json(std::move(args))},
    }));
  }
  return rpc::Json(rpc::JsonObject{
      {"displayTimeUnit", rpc::Json("ms")},
      {"traceEvents", rpc::Json(std::move(events))},
  });
}

}  // namespace topo::obs
