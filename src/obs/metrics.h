#pragma once

// The observability substrate (DESIGN: docs/ARCHITECTURE.md, "Observability").
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms. Lookup by name interns the metric and returns a stable
// handle; instrumented hot paths resolve their handles once (at wiring
// time) and afterwards touch only a pointer — registry access never sits
// on the critical-path profile.
//
// All values are keyed to *simulation* quantities (sim seconds, event
// counts, wei), never wall clock, so two identically seeded runs produce
// byte-identical exports.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace topo::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void reset() { value_ = 0; }
  /// Overwrites the count (world-fork restore path).
  void restore(uint64_t v) { value_ = v; }

 private:
  uint64_t value_ = 0;
};

/// Last-value metric with high-water tracking (queue depths, wei spent).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(double v) { set(value_ + v); }
  /// Raises the high-water mark without moving the current value.
  void update_max(double v) {
    if (v > max_) max_ = v;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  void reset() { value_ = max_ = 0.0; }
  /// Overwrites value and high-water mark (world-fork restore path; set()
  /// cannot express value < max).
  void restore(double value, double max) {
    value_ = value;
    max_ = max;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

struct HistogramSnapshot;

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges; one
/// implicit overflow bucket catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  void reset();
  /// Overwrites every tally from a snapshot taken of a histogram with the
  /// same bucket bounds (world-fork restore path).
  void restore(const HistogramSnapshot& snap);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time copy of one histogram (exportable / diffable).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  bool operator==(const HistogramSnapshot& o) const = default;
};

/// Point-in-time copy of a whole registry, name-sorted so exports are
/// deterministic. `diff_since` turns a cumulative snapshot into a per-call
/// delta (counters and histogram counts subtract; gauges keep the current
/// value, as they are levels, not flows).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> gauge_maxes;
  std::map<std::string, HistogramSnapshot> histograms;

  MetricsSnapshot diff_since(const MetricsSnapshot& before) const;

  /// Folds another registry's snapshot into this one — the aggregation a
  /// sharded campaign (topo::exec) applies across its per-shard world
  /// replicas. Flows accumulate: counters and histogram tallies add
  /// (bucket-wise; min/max combine). Levels aggregate conservatively:
  /// gauges sum (disjoint replicas each hold their own share of e.g. sim
  /// seconds or wei spent) while gauge high-water marks take the max.
  /// Histograms under the same name with different bucket bounds are
  /// incompatible; the first-*observed* bounds win (an empty side adopts
  /// the other's bounds and tallies wholesale), and a non-empty loser's
  /// observations fold into the winner's overflow bucket so the
  /// sum(counts) == count invariant survives. Merging is associative and
  /// order-independent up to bucket placement of incompatible tallies.
  MetricsSnapshot& merge(const MetricsSnapshot& other);

  bool operator==(const MetricsSnapshot& o) const = default;
};

/// Owner of every metric plus the bounded trace ring. Handles returned by
/// counter()/gauge()/histogram() stay valid (and keep accumulating across
/// reset_values()) for the registry's lifetime.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t trace_capacity = kDefaultTraceCapacity);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interned lookup: creates on first use, O(1) (amortized hash) after.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` are only consulted on first use; later lookups return the
  /// existing histogram unchanged.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds);

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  MetricsSnapshot snapshot() const;

  /// Overwrites the registry from a snapshot: every named metric is
  /// interned (histograms with the snapshot's bounds) and set to the
  /// captured value, so counters/gauges keep accumulating from exactly
  /// where the snapshotted world stood. Existing handles stay valid;
  /// metrics absent from the snapshot are reset to zero. The trace ring is
  /// restored separately (TraceRing::restore) because snapshots don't
  /// carry events.
  void restore(const MetricsSnapshot& snap);

  /// Zeroes every value and clears the trace; handles stay valid.
  void reset_values();

  size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  static constexpr size_t kDefaultTraceCapacity = 4096;

 private:
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  TraceRing trace_;
};

/// Standard duration buckets (sim seconds) for the probe-phase histograms.
const std::vector<double>& duration_bounds();

/// Standard occupancy buckets (fractions of capacity in [0, 1]).
const std::vector<double>& fraction_bounds();

}  // namespace topo::obs
