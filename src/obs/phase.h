#pragma once

// RAII phase timing keyed to an arbitrary clock — in this codebase always
// sim::Simulator::now(), never wall clock, so the recorded durations are
// deterministic across runs.

#include <functional>
#include <utility>

#include "obs/metrics.h"

namespace topo::obs {

/// Times a phase from construction to finish()/destruction and records the
/// duration into `hist`. Null histogram or clock makes it a no-op, so
/// instrumented code needs no branches of its own.
class ScopedPhase {
 public:
  ScopedPhase(Histogram* hist, std::function<double()> clock)
      : hist_(hist), clock_(std::move(clock)) {
    if (hist_ != nullptr && clock_) start_ = clock_();
  }
  ~ScopedPhase() { finish(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  void finish() {
    if (done_) return;
    done_ = true;
    if (hist_ != nullptr && clock_) hist_->observe(clock_() - start_);
  }

  double started_at() const { return start_; }

 private:
  Histogram* hist_;
  std::function<double()> clock_;
  double start_ = 0.0;
  bool done_ = false;
};

/// Reusable factory bound to one clock; hands out ScopedPhases for the
/// per-phase histograms of a probe.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::function<double()> clock) : clock_(std::move(clock)) {}

  /// C++17 guaranteed elision lets the non-movable ScopedPhase travel.
  ScopedPhase phase(Histogram* hist) const { return ScopedPhase(hist, clock_); }

  double now() const { return clock_ ? clock_() : 0.0; }

 private:
  std::function<double()> clock_;
};

}  // namespace topo::obs
