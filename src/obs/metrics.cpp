#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace topo::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  ++counts_[bucket];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void Histogram::restore(const HistogramSnapshot& snap) {
  assert(snap.bounds == bounds_ && "Histogram::restore: bucket bounds differ");
  counts_ = snap.counts;
  counts_.resize(bounds_.size() + 1, 0);
  count_ = snap.count;
  sum_ = snap.sum;
  min_ = snap.min;
  max_ = snap.max;
}

MetricsSnapshot MetricsSnapshot::diff_since(const MetricsSnapshot& before) const {
  MetricsSnapshot out = *this;
  for (auto& [name, v] : out.counters) {
    auto it = before.counters.find(name);
    if (it != before.counters.end()) v -= std::min(v, it->second);
  }
  for (auto& [name, h] : out.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    const HistogramSnapshot& old = it->second;
    if (old.counts.size() == h.counts.size()) {
      for (size_t i = 0; i < h.counts.size(); ++i)
        h.counts[i] -= std::min(h.counts[i], old.counts[i]);
    }
    h.count -= std::min(h.count, old.count);
    h.sum -= std::min(h.sum, old.sum);
    // min/max keep the cumulative values: the delta window has no record of
    // its own extremes.
  }
  return out;
}

MetricsSnapshot& MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, v] : other.gauge_maxes) {
    auto [it, fresh] = gauge_maxes.try_emplace(name, v);
    if (!fresh) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    auto [it, fresh] = histograms.try_emplace(name, h);
    if (fresh) continue;
    HistogramSnapshot& mine = it->second;
    if (h.count == 0) continue;
    if (mine.count == 0) {
      // Nothing observed on this side yet: adopt the other side's tallies
      // (bounds included) wholesale. First-*observed* bounds win, not merely
      // first-seen — an empty placeholder with different bounds must not
      // strand real observations in the incompatible-bounds path below.
      mine = h;
      continue;
    }
    mine.min = std::min(mine.min, h.min);
    mine.max = std::max(mine.max, h.max);
    if (mine.bounds == h.bounds) {
      for (size_t i = 0; i < mine.counts.size() && i < h.counts.size(); ++i) {
        mine.counts[i] += h.counts[i];
      }
    } else if (!mine.counts.empty()) {
      // Incompatible bounds: the per-bucket breakdown is unknowable, but the
      // invariant sum(counts) == count must survive (the Prometheus
      // exposition and bucket-sum consumers rely on it), so the other side's
      // observations land in the overflow bucket.
      mine.counts.back() += h.count;
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
  return *this;
}

MetricsRegistry::MetricsRegistry(size_t trace_capacity) : trace_(trace_capacity) {}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = g->value();
    s.gauge_maxes[name] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void MetricsRegistry::restore(const MetricsSnapshot& snap) {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, v] : snap.counters) counter(name).restore(v);
  for (const auto& [name, v] : snap.gauges) {
    auto mit = snap.gauge_maxes.find(name);
    gauge(name).restore(v, mit != snap.gauge_maxes.end() ? mit->second : v);
  }
  for (const auto& [name, hs] : snap.histograms) histogram(name, hs.bounds).restore(hs);
}

void MetricsRegistry::reset_values() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  trace_.clear();
}

const std::vector<double>& duration_bounds() {
  static const std::vector<double> kBounds = {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0};
  return kBounds;
}

const std::vector<double>& fraction_bounds() {
  static const std::vector<double> kBounds = {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0};
  return kBounds;
}

}  // namespace topo::obs
