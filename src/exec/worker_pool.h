#pragma once

#include <cstddef>
#include <functional>

namespace topo::exec {

/// Fixed-width pool executing an indexed job list: run(n_jobs, fn) calls
/// fn(i) exactly once for every i in [0, n_jobs), workers pulling indices
/// from one shared atomic cursor, and blocks until every job finished.
///
/// Jobs must be mutually independent (the campaign runner guarantees this
/// by giving every shard its own world replica); the pool adds no
/// synchronization beyond the cursor, so determinism is the job's property,
/// not the pool's. width == 1 degenerates to an inline loop on the calling
/// thread — no spawn, identical stacks, so single-threaded runs stay as
/// debuggable as a plain for loop.
///
/// The first exception a job throws is captured and rethrown on the caller
/// after the pool drains (remaining queued jobs still run; workers never
/// die silently).
class WorkerPool {
 public:
  /// width == 0 is clamped to 1.
  explicit WorkerPool(size_t width);

  size_t width() const { return width_; }

  void run(size_t n_jobs, const std::function<void(size_t)>& fn) const;

 private:
  size_t width_;
};

}  // namespace topo::exec
