#include "exec/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace topo::exec {

WorkerPool::WorkerPool(size_t width) : width_(std::max<size_t>(1, width)) {}

void WorkerPool::run(size_t n_jobs, const std::function<void(size_t)>& fn) const {
  if (n_jobs == 0) return;

  std::atomic<size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (size_t i = cursor.fetch_add(1); i < n_jobs; i = cursor.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const size_t spawn = std::min(width_, n_jobs);
  if (spawn == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(spawn);
    for (size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace topo::exec
