#pragma once

#include <cstddef>

#include "core/config.h"
#include "core/schedule.h"
#include "core/toposhot.h"
#include "exec/merge.h"
#include "exec/shard.h"
#include "fault/fault.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace topo::exec {

/// Knobs of a sharded full-topology campaign.
struct CampaignOptions {
  /// Group size K of the §5.3.2 schedule.
  size_t group_k = 3;

  /// Measurement strategy each shard replica drives its batches through
  /// (core::make_strategy over the replica's world). The default TopoShot
  /// keeps campaigns byte-identical to pre-seam builds; the choice is part
  /// of the campaign's identity and is echoed in the merged report.
  core::StrategyKind strategy = core::StrategyKind::kToposhot;

  /// Worker pool width. Execution-only: any value produces the same merged
  /// report, because the shard plan (not the pool) fixes the decomposition.
  size_t threads = 1;

  /// Shard count; 0 = min(kDefaultShards, batch count). Changing it changes
  /// which replica measures which batch — and therefore the sampled world —
  /// so it is part of the campaign's seed-like identity, unlike `threads`.
  size_t shards = 0;

  /// Max candidate edges per measurePar call; 0 = the 2Z/5 slot budget.
  size_t max_edges_per_call = 0;

  /// Explicit candidate-pair subset (target indices, caller's priority
  /// order). Empty (the default) measures the full §5.3.2 schedule over all
  /// of truth's pairs; non-empty batches exactly these pairs via
  /// core::make_batches_for_pairs — the incremental-re-measurement path the
  /// topology monitor (src/monitor) drives each epoch. Like group_k, the
  /// pair list is part of the campaign's identity.
  std::vector<std::pair<size_t, size_t>> pairs;

  /// Replica preparation, mirroring what the sequential benches do on their
  /// single scenario before measuring.
  bool seed_background = true;
  double churn_rate = 0.0;  ///< >0: organic traffic + a mining drain per replica

  /// Fault injection, applied per replica with an injector seeded from the
  /// shard seed — the merged report stays a pure function of (truth,
  /// options, cfg, group_k, shards, max_edges_per_call, fault_plan) at any
  /// thread count. A default (disabled) plan costs nothing and leaves
  /// reports byte-identical to pre-fault builds.
  fault::FaultPlan fault_plan;

  /// Build one warmed base world (populate + background seeding under the
  /// base seed) and stamp each shard's replica out of its snapshot
  /// (core::Scenario::fork) instead of rebuilding and re-warming per shard.
  /// Purely an execution strategy: replicas are reseeded with their shard
  /// seed after forking, exactly as the rebuild path reseeds after warming,
  /// so the merged report is byte-identical either way at any width.
  bool fork_worlds = true;

  /// Record causal spans (campaign → shard → batch → pair → phase) into
  /// CampaignResult::spans. Span ids are pure functions of the campaign
  /// structure, so the export is byte-identical at any `threads` width and
  /// on either event-queue backend — but, like the report itself, it
  /// depends on `shards`. Off by default: tracing is observe-only but not
  /// free (one vector push per span).
  bool collect_spans = false;

  static constexpr size_t kDefaultShards = 16;
};

/// Outcome of a sharded campaign. `report` is the merged sequential-
/// equivalent artifact (`sim_seconds` = summed shard sim time);
/// `makespan_sim_seconds` is the slowest shard — the campaign's critical
/// path on an unbounded pool. `report.sim_seconds / makespan_sim_seconds`
/// bounds the achievable parallel speedup in simulated time.
struct CampaignResult {
  core::NetworkMeasurementReport report;
  obs::MetricsSnapshot metrics;

  /// Merged causal spans in canonical (stable-id) order; empty unless
  /// CampaignOptions::collect_spans. Export with obs::spans_to_chrome_json.
  std::vector<obs::Span> spans;

  double makespan_sim_seconds = 0.0;
  size_t shards = 0;            ///< effective shard count (post-clamp)
  size_t shards_requested = 0;  ///< what the caller asked for (pre-clamp)
  size_t batches = 0;
};

/// Measures the full topology of `truth` with the parallel schedule,
/// sharded across a worker pool (the scaling direction of the ROADMAP; the
/// independence it exploits is the paper's own: batches use disjoint EOAs,
/// Fig. 5 / Table 8).
///
/// The batch list comes from core::make_batches over all of truth's nodes;
/// ShardPlan partitions it; each shard gets a private world replica
/// (core::Scenario — p2p::Network + sim::Simulator + measurement node)
/// warmed under the *base* seed — forked from one shared warmed snapshot
/// when opt.fork_worlds, rebuilt from scratch otherwise — then reseeded
/// with its SplitMix-derived shard seed, prepared per `opt`, and driven
/// through the configured core::MeasurementStrategy (TopoShot by default).
/// Shard results merge via ReportMerger.
///
/// Determinism contract: the result is a pure function of (truth,
/// base_options, cfg, group_k, shards, max_edges_per_call) — `threads` only
/// changes wall-clock time, never one byte of the merged report or metrics.
CampaignResult run_sharded_campaign(const graph::Graph& truth,
                                    const core::ScenarioOptions& base_options,
                                    const core::MeasureConfig& cfg,
                                    const CampaignOptions& opt);

}  // namespace topo::exec
