#include "exec/merge.h"

#include <algorithm>

namespace topo::exec {

ReportMerger::ReportMerger(size_t n_nodes) { merged_.measured = graph::Graph(n_nodes); }

void ReportMerger::add(const core::NetworkMeasurementReport& shard_report) {
  for (const auto& [u, v] : shard_report.measured.edges()) merged_.measured.add_edge(u, v);
  merged_.iterations += shard_report.iterations;
  merged_.pairs_tested += shard_report.pairs_tested;
  merged_.txs_sent += shard_report.txs_sent;
  merged_.sim_seconds += shard_report.sim_seconds;
  makespan_ = std::max(makespan_, shard_report.sim_seconds);
  ++shards_;
}

void ReportMerger::add_metrics(const obs::MetricsSnapshot& shard_snapshot) {
  metrics_.merge(shard_snapshot);
}

}  // namespace topo::exec
