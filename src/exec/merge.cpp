#include "exec/merge.h"

#include <algorithm>

namespace topo::exec {

ReportMerger::ReportMerger(size_t n_nodes) { merged_.measured = graph::Graph(n_nodes); }

void ReportMerger::add(const core::NetworkMeasurementReport& shard_report) {
  // Every shard of a campaign runs the same strategy; the last write wins
  // harmlessly.
  merged_.strategy = shard_report.strategy;
  for (const auto& [u, v] : shard_report.measured.edges()) merged_.measured.add_edge(u, v);
  merged_.iterations += shard_report.iterations;
  merged_.pairs_tested += shard_report.pairs_tested;
  merged_.txs_sent += shard_report.txs_sent;
  merged_.sim_seconds += shard_report.sim_seconds;
  makespan_ = std::max(makespan_, shard_report.sim_seconds);
  ++shards_;
  if (shard_report.fault.has_value()) {
    if (!merged_.fault.has_value()) {
      // First faulted shard carries the config echo; every shard of a
      // campaign shares it, so copying once is safe.
      merged_.fault = shard_report.fault;
    } else {
      core::FaultReport& f = *merged_.fault;
      f.attempts += shard_report.fault->attempts;
      f.inconclusive += shard_report.fault->inconclusive;
      f.retried.insert(f.retried.end(), shard_report.fault->retried.begin(),
                       shard_report.fault->retried.end());
    }
    // Shards partition the pair set, so every retried pair appears exactly
    // once; canonical (u, v) order makes the merge completion-order
    // insensitive.
    std::sort(merged_.fault->retried.begin(), merged_.fault->retried.end(),
              [](const core::RetriedPair& a, const core::RetriedPair& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
  }
  if (shard_report.diagnostics.has_value()) {
    if (!merged_.diagnostics.has_value()) {
      merged_.diagnostics = shard_report.diagnostics;
    } else {
      core::DiagnosticsReport& d = *merged_.diagnostics;
      for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
        d.causes[c] += shard_report.diagnostics->causes[c];
        d.cleared[c] += shard_report.diagnostics->cleared[c];
      }
      d.inconclusive.insert(d.inconclusive.end(),
                            shard_report.diagnostics->inconclusive.begin(),
                            shard_report.diagnostics->inconclusive.end());
    }
    // Same canonicalization as the fault annex: shards partition the pair
    // set, so sorting makes the merge completion-order insensitive.
    std::sort(merged_.diagnostics->inconclusive.begin(),
              merged_.diagnostics->inconclusive.end(),
              [](const core::PairDiagnostic& a, const core::PairDiagnostic& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
  }
}

void ReportMerger::add_spans(const std::vector<obs::Span>& spans) {
  spans_.insert(spans_.end(), spans.begin(), spans.end());
}

std::vector<obs::Span> ReportMerger::take_spans() {
  obs::sort_spans(spans_);
  return std::move(spans_);
}

void ReportMerger::add_metrics(const obs::MetricsSnapshot& shard_snapshot) {
  metrics_.merge(shard_snapshot);
}

}  // namespace topo::exec
