#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topo::exec {

/// Deterministic partition of a campaign's batch list across shards.
///
/// The shard is the unit of reproducibility: each shard owns a private
/// replica of the measurement world, seeded from a SplitMix stream derived
/// from (base_seed, shard index), and runs its batches in listed order.
/// Shard count is a property of the *plan*, never of the worker pool — the
/// same plan executed on any pool width yields bit-identical per-shard
/// results, hence a bit-identical merged report. Batches deal round-robin
/// so the large early (cross-group) and small late (halving) batches of the
/// §5.3.2 schedule spread evenly across shards.
struct ShardPlan {
  struct Shard {
    uint64_t seed = 0;               ///< replica seed (derive_stream_seed)
    std::vector<size_t> batch_ids;   ///< indices into the campaign batch list
  };

  std::vector<Shard> shards;

  /// The shard count the caller asked for, before clamping. Campaigns echo
  /// both this and the effective count (size()) into their report so a
  /// silently reduced width is visible instead of looking like the user's
  /// request was honored.
  size_t requested = 0;

  size_t size() const { return shards.size(); }

  /// n_shards is clamped to [1, n_batches] (a shard without work would just
  /// burn a replica). n_batches == 0 yields a single empty shard so callers
  /// need no special case. The pre-clamp request is kept in `requested`.
  static ShardPlan build(size_t n_batches, size_t n_shards, uint64_t base_seed);
};

}  // namespace topo::exec
