#include "exec/campaign.h"

#include <algorithm>
#include <vector>

#include "exec/worker_pool.h"

namespace topo::exec {

CampaignResult run_sharded_campaign(const graph::Graph& truth,
                                    const core::ScenarioOptions& base_options,
                                    const core::MeasureConfig& cfg,
                                    const CampaignOptions& opt) {
  const size_t n = truth.num_nodes();
  const size_t budget =
      opt.max_edges_per_call != 0 ? opt.max_edges_per_call : core::slot_budget(cfg.flood_Z);
  const std::vector<core::MeasurementBatch> batches =
      core::make_batches(n, opt.group_k, budget);

  const size_t want_shards =
      opt.shards != 0 ? opt.shards
                      : std::min(CampaignOptions::kDefaultShards, std::max<size_t>(1, batches.size()));
  const ShardPlan plan = ShardPlan::build(batches.size(), want_shards, base_options.seed);

  std::vector<core::NetworkMeasurementReport> shard_reports(plan.size());
  std::vector<obs::MetricsSnapshot> shard_metrics(plan.size());

  const WorkerPool pool(opt.threads);
  pool.run(plan.size(), [&](size_t s) {
    const ShardPlan::Shard& shard = plan.shards[s];

    core::ScenarioOptions options = base_options;
    options.seed = shard.seed;
    core::Scenario sc(truth, options);
    if (opt.seed_background) sc.seed_background();
    if (opt.churn_rate > 0.0) sc.start_churn(opt.churn_rate);

    core::ParallelMeasurement par(sc.net(), sc.m(), sc.accounts(), sc.factory(), cfg);
    par.set_cost_tracker(&sc.costs());
    par.set_metrics(&sc.metrics());

    core::NetworkMeasurementReport report;
    report.measured = graph::Graph(n);
    const double t0 = sc.sim().now();
    for (size_t b : shard.batch_ids) {
      core::run_batch(par, sc.targets(), batches[b], report);
    }
    report.sim_seconds = sc.sim().now() - t0;

    shard_reports[s] = std::move(report);
    shard_metrics[s] = sc.snapshot_metrics();
  });

  // Merge on the caller's thread, in shard order — completion order never
  // leaks into the artifacts.
  ReportMerger merger(n);
  for (size_t s = 0; s < plan.size(); ++s) {
    merger.add(shard_reports[s]);
    merger.add_metrics(shard_metrics[s]);
  }

  CampaignResult result;
  result.report = merger.report();
  result.metrics = merger.metrics();
  result.makespan_sim_seconds = merger.makespan_sim_seconds();
  result.shards = plan.size();
  result.batches = batches.size();
  return result;
}

}  // namespace topo::exec
