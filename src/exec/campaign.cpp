#include "exec/campaign.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "exec/worker_pool.h"

namespace topo::exec {

namespace {
/// Stream tag separating the fault-injection RNG from every other consumer
/// of the shard seed.
constexpr uint64_t kFaultStream = 0xFA01;
}  // namespace

CampaignResult run_sharded_campaign(const graph::Graph& truth,
                                    const core::ScenarioOptions& base_options,
                                    const core::MeasureConfig& cfg,
                                    const CampaignOptions& opt) {
  const size_t n = truth.num_nodes();
  const size_t budget =
      opt.max_edges_per_call != 0 ? opt.max_edges_per_call : core::slot_budget(cfg.flood_Z);
  const std::vector<core::MeasurementBatch> batches =
      opt.pairs.empty() ? core::make_batches(n, opt.group_k, budget)
                        : core::make_batches_for_pairs(opt.pairs, budget);

  const size_t want_shards =
      opt.shards != 0 ? opt.shards
                      : std::min(CampaignOptions::kDefaultShards, std::max<size_t>(1, batches.size()));
  const ShardPlan plan = ShardPlan::build(batches.size(), want_shards, base_options.seed);

  std::vector<core::NetworkMeasurementReport> shard_reports(plan.size());
  std::vector<obs::MetricsSnapshot> shard_metrics(plan.size());
  // One tracer per shard, built up front so workers never share one: each
  // shard's span sequence is single-threaded, and the merge sorts by the
  // stable ids afterwards.
  std::vector<obs::SpanTracer> tracers;
  if (opt.collect_spans) {
    tracers.reserve(plan.size());
    for (size_t s = 0; s < plan.size(); ++s) tracers.emplace_back(static_cast<uint32_t>(s));
  }

  // Fork mode: build and warm ONE base world under the base seed (populate
  // + background seeding — the expensive, shard-independent prefix), freeze
  // it, and stamp every shard's replica out of the snapshot. The snapshot
  // is self-contained (copy-on-write pages), so the base scenario itself is
  // destroyed before the workers start.
  std::optional<core::WorldSnapshot> base_world;
  if (opt.fork_worlds) {
    core::Scenario base(truth, base_options);
    if (opt.seed_background) base.seed_background();
    base_world = base.snapshot();
  }

  const WorkerPool pool(opt.threads);
  pool.run(plan.size(), [&](size_t s) {
    const ShardPlan::Shard& shard = plan.shards[s];

    // Both paths warm the world under the *base* seed, then give the
    // replica its shard identity via reseed() — so fork vs rebuild is pure
    // execution strategy and the merged report is byte-identical either
    // way.
    std::unique_ptr<core::Scenario> owned;
    if (opt.fork_worlds) {
      owned = core::Scenario::fork(*base_world);
    } else {
      owned = std::unique_ptr<core::Scenario>(new core::Scenario(truth, base_options));
      if (opt.seed_background) owned->seed_background();
    }
    core::Scenario& sc = *owned;
    sc.reseed(shard.seed);

    // Seeded from the shard seed: each replica faults the same way however
    // many workers execute the plan.
    fault::FaultInjector injector(opt.fault_plan,
                                  util::derive_stream_seed(shard.seed, kFaultStream));
    std::unique_ptr<core::MeasurementStrategy> strat = sc.make_strategy(opt.strategy, cfg);
    // prepare() runs on the warmed, reseeded replica — after the shared
    // warm prefix, so node-config mutations never leak into the snapshot
    // other shards fork from; a no-op for the default TopoShot strategy.
    strat->prepare(sc);
    if (opt.churn_rate > 0.0) sc.start_churn(opt.churn_rate);
    if (opt.fault_plan.enabled()) injector.install(sc.net(), &sc.metrics());

    obs::SpanTracer* tracer = opt.collect_spans ? &tracers[s] : nullptr;
    strat->set_tracer(tracer);

    core::NetworkMeasurementReport report;
    report.measured = graph::Graph(n);
    report.strategy = opt.strategy;
    if (opt.fault_plan.enabled() || cfg.inconclusive_retries > 0) {
      report.fault = fault::make_fault_report(opt.fault_plan, cfg.inconclusive_retries);
    }
    if (cfg.collect_diagnostics) report.diagnostics.emplace();
    const double t0 = sc.sim().now();
    uint64_t shard_span = 0;
    if (tracer != nullptr) {
      shard_span = tracer->open(obs::SpanKind::kShard, t0, obs::shard_span_id(s),
                                obs::kCampaignSpanId, s, shard.batch_ids.size());
      tracer->set_scope(shard_span);
    }
    // Primary sweep first, bounded re-measurement strictly after it: the
    // sweep's trajectory is byte-identical to a retries-off run, so the
    // retry pass can only add edges this shard's losses cost it.
    std::vector<core::RetriedPair> inconclusive;
    std::vector<core::RetriedPair>* collect =
        report.fault.has_value() || report.diagnostics.has_value() ? &inconclusive : nullptr;
    for (size_t b : shard.batch_ids) {
      // The *global* batch index keys the span ids, so a batch keeps its
      // identity whatever shard (and whatever worker) runs it.
      core::run_batch(*strat, sc.targets(), batches[b], b, report, collect);
    }
    core::run_retry_pass(*strat, sc.targets(), std::move(inconclusive), budget,
                         cfg.inconclusive_retries, report);
    report.sim_seconds = sc.sim().now() - t0;
    if (tracer != nullptr) {
      tracer->close(shard_span, sc.sim().now());
      tracer->set_scope(0);
    }

    shard_reports[s] = std::move(report);
    shard_metrics[s] = sc.snapshot_metrics();
  });

  // Merge on the caller's thread, in shard order — completion order never
  // leaks into the artifacts.
  ReportMerger merger(n);
  for (size_t s = 0; s < plan.size(); ++s) {
    merger.add(shard_reports[s]);
    merger.add_metrics(shard_metrics[s]);
    if (opt.collect_spans) merger.add_spans(tracers[s].spans());
  }

  CampaignResult result;
  result.report = merger.report();
  result.metrics = merger.metrics();
  result.makespan_sim_seconds = merger.makespan_sim_seconds();
  result.shards = plan.size();
  result.shards_requested = plan.requested;
  result.batches = batches.size();
  // Echo the shard width into the merged metrics: ShardPlan::build clamps
  // the request to the batch count, and a silently narrower campaign should
  // be visible in every exported artifact, not just the CLI.
  result.metrics.gauges["campaign.shards.requested"] = static_cast<double>(plan.requested);
  result.metrics.gauge_maxes["campaign.shards.requested"] = static_cast<double>(plan.requested);
  result.metrics.gauges["campaign.shards.effective"] = static_cast<double>(plan.size());
  result.metrics.gauge_maxes["campaign.shards.effective"] = static_cast<double>(plan.size());
  if (opt.collect_spans) {
    // The campaign root closes at the latest shard-span end (each shard's
    // clock starts at 0, so that is the campaign's simulated makespan
    // including per-replica preparation).
    obs::Span root;
    root.id = obs::kCampaignSpanId;
    root.kind = obs::SpanKind::kCampaign;
    root.a = plan.size();
    root.b = batches.size();
    for (const obs::SpanTracer& t : tracers) {
      for (const obs::Span& sp : t.spans()) root.end = std::max(root.end, sp.end);
    }
    merger.add_spans({root});
    result.spans = merger.take_spans();
  }
  return result;
}

}  // namespace topo::exec
