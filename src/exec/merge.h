#pragma once

#include <cstddef>
#include <vector>

#include "core/schedule.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace topo::exec {

/// Folds per-shard campaign artifacts into one sequential-equivalent
/// report. Shards measure disjoint pair sets (the shard plan partitions the
/// batch list), so the merged edge set is the plain union of shard edge
/// sets and the scalar tallies (iterations, pairs_tested, txs_sent) add.
///
/// Time has two meanings after sharding and the merger keeps both:
/// `report().sim_seconds` is the *sum* of shard simulation time — the total
/// simulated measurement work, the quantity the paper reports as campaign
/// duration — while `makespan_sim_seconds()` is the slowest single shard,
/// the lower bound on the campaign's critical path however many workers
/// execute it.
///
/// Merging is order-insensitive for the edge set and tallies; metrics
/// snapshots merge per obs::MetricsSnapshot::merge (order-insensitive as
/// well), so any worker completion order produces the same artifacts.
class ReportMerger {
 public:
  /// `n_nodes` sizes the merged graph: node i = target index i, the same
  /// index space every shard's batches use.
  explicit ReportMerger(size_t n_nodes);

  void add(const core::NetworkMeasurementReport& shard_report);
  void add_metrics(const obs::MetricsSnapshot& shard_snapshot);

  /// Appends one shard's recorded spans. Ids are stable functions of the
  /// campaign structure (obs::span.h), so take_spans() sorts into an order
  /// independent of worker count and completion order.
  void add_spans(const std::vector<obs::Span>& spans);

  /// Canonically sorted union of every added span set (moves it out).
  std::vector<obs::Span> take_spans();

  const core::NetworkMeasurementReport& report() const { return merged_; }
  const obs::MetricsSnapshot& metrics() const { return metrics_; }
  double makespan_sim_seconds() const { return makespan_; }
  size_t shards_merged() const { return shards_; }

 private:
  core::NetworkMeasurementReport merged_;
  obs::MetricsSnapshot metrics_;
  std::vector<obs::Span> spans_;
  double makespan_ = 0.0;
  size_t shards_ = 0;
};

}  // namespace topo::exec
