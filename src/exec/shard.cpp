#include "exec/shard.h"

#include <algorithm>

#include "util/rng.h"

namespace topo::exec {

ShardPlan ShardPlan::build(size_t n_batches, size_t n_shards, uint64_t base_seed) {
  ShardPlan plan;
  plan.requested = n_shards;
  n_shards = std::clamp<size_t>(n_shards, 1, std::max<size_t>(1, n_batches));
  plan.shards.resize(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    plan.shards[s].seed = util::derive_stream_seed(base_seed, s);
  }
  for (size_t b = 0; b < n_batches; ++b) {
    plan.shards[b % n_shards].batch_ids.push_back(b);
  }
  return plan;
}

}  // namespace topo::exec
