#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace topo::graph {

/// Writes "u,v" edge lines (one per undirected edge, u < v).
void write_edge_csv(const Graph& g, std::ostream& os);
bool write_edge_csv(const Graph& g, const std::string& path);

/// Reads an edge CSV produced by write_edge_csv. Node count is inferred from
/// the max id. Returns an empty graph on parse failure.
Graph read_edge_csv(std::istream& is);

/// Graphviz DOT output for quick visual inspection.
void write_dot(const Graph& g, std::ostream& os, const std::string& name = "topology");

}  // namespace topo::graph
