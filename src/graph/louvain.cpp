#include "graph/louvain.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace topo::graph {

double modularity(const Graph& g, const std::vector<uint32_t>& assignment) {
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  // Q = sum_c [ e_c/m - (d_c/2m)^2 ]
  std::unordered_map<uint32_t, double> intra, deg;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    deg[assignment[u]] += static_cast<double>(g.degree(u));
    for (NodeId v : g.neighbors(u)) {
      if (u < v && assignment[u] == assignment[v]) intra[assignment[u]] += 1.0;
    }
  }
  double q = 0.0;
  for (const auto& [c, d] : deg) {
    const double e = intra.count(c) ? intra.at(c) : 0.0;
    const double frac = d / (2.0 * m);
    q += e / m - frac * frac;
  }
  return q;
}

namespace {

/// Weighted multigraph used between Louvain levels.
struct WGraph {
  size_t n = 0;
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;  // (nbr, weight)
  std::vector<double> self_loop;                              // intra weight
  double total_weight = 0.0;                                  // sum of edge weights (undirected)
};

WGraph from_graph(const Graph& g) {
  WGraph w;
  w.n = g.num_nodes();
  w.adj.resize(w.n);
  w.self_loop.assign(w.n, 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) {
        w.adj[u].push_back({v, 1.0});
        w.adj[v].push_back({u, 1.0});
        w.total_weight += 1.0;
      }
    }
  }
  return w;
}

double node_weight(const WGraph& w, uint32_t u) {
  double d = 2.0 * w.self_loop[u];
  for (const auto& [v, wt] : w.adj[u]) d += wt;
  return d;
}

/// One Louvain level: local moves until no gain. Returns (assignment, moved).
std::pair<std::vector<uint32_t>, bool> one_level(const WGraph& w, util::Rng& rng) {
  std::vector<uint32_t> comm(w.n);
  std::vector<double> comm_weight(w.n);  // total degree weight per community
  std::vector<double> k(w.n);
  for (uint32_t u = 0; u < w.n; ++u) {
    comm[u] = u;
    k[u] = node_weight(w, u);
    comm_weight[u] = k[u];
  }
  const double two_m = 2.0 * w.total_weight + [&] {
    double s = 0.0;
    for (double x : w.self_loop) s += 2.0 * x;
    return s;
  }();
  if (two_m == 0.0) return {comm, false};

  std::vector<uint32_t> order(w.n);
  for (uint32_t i = 0; i < w.n; ++i) order[i] = i;
  rng.shuffle(order);

  bool any_move = false;
  bool improved = true;
  size_t rounds = 0;
  while (improved && rounds++ < 64) {
    improved = false;
    for (uint32_t u : order) {
      const uint32_t cu = comm[u];
      // Weights from u to each neighboring community.
      std::unordered_map<uint32_t, double> links;
      for (const auto& [v, wt] : w.adj[u]) links[comm[v]] += wt;
      // Remove u from its community.
      comm_weight[cu] -= k[u];
      const double base = links.count(cu) ? links[cu] : 0.0;
      uint32_t best_comm = cu;
      double best_gain = 0.0;
      for (const auto& [c, l] : links) {
        const double gain = (l - base) - k[u] * (comm_weight[c] - comm_weight[cu]) / two_m;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_comm = c;
        }
      }
      comm[u] = best_comm;
      comm_weight[best_comm] += k[u];
      if (best_comm != cu) {
        improved = true;
        any_move = true;
      }
    }
  }
  return {comm, any_move};
}

/// Densifies community labels to [0, count).
size_t densify(std::vector<uint32_t>& labels) {
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t& l : labels) {
    auto [it, inserted] = remap.try_emplace(l, static_cast<uint32_t>(remap.size()));
    l = it->second;
  }
  return remap.size();
}

WGraph aggregate(const WGraph& w, const std::vector<uint32_t>& comm, size_t n_comm) {
  WGraph out;
  out.n = n_comm;
  out.adj.resize(n_comm);
  out.self_loop.assign(n_comm, 0.0);
  std::map<std::pair<uint32_t, uint32_t>, double> agg;
  for (uint32_t u = 0; u < w.n; ++u) {
    out.self_loop[comm[u]] += w.self_loop[u];
    for (const auto& [v, wt] : w.adj[u]) {
      if (u > v) continue;
      const uint32_t cu = comm[u], cv = comm[v];
      if (cu == cv) {
        out.self_loop[cu] += wt;
      } else {
        agg[{std::min(cu, cv), std::max(cu, cv)}] += wt;
      }
    }
  }
  for (const auto& [e, wt] : agg) {
    out.adj[e.first].push_back({e.second, wt});
    out.adj[e.second].push_back({e.first, wt});
    out.total_weight += wt;
  }
  return out;
}

}  // namespace

Communities louvain(const Graph& g, util::Rng& rng, size_t max_levels) {
  Communities result;
  result.assignment.resize(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) result.assignment[u] = u;
  if (g.num_nodes() == 0) {
    result.count = 0;
    return result;
  }

  WGraph w = from_graph(g);
  std::vector<uint32_t> global = result.assignment;
  densify(global);

  for (size_t level = 0; level < max_levels; ++level) {
    auto [comm, moved] = one_level(w, rng);
    if (!moved) break;
    const size_t n_comm = densify(comm);
    // Compose: node -> current super-node -> new community.
    for (NodeId u = 0; u < g.num_nodes(); ++u) global[u] = comm[global[u]];
    w = aggregate(w, comm, n_comm);
    if (n_comm == w.n && n_comm == comm.size()) break;
  }

  result.count = densify(global);
  result.assignment = std::move(global);
  result.modularity = modularity(g, result.assignment);
  return result;
}

std::vector<CommunityStats> community_stats(const Graph& g,
                                            const std::vector<uint32_t>& assignment) {
  uint32_t n_comm = 0;
  for (uint32_t c : assignment) n_comm = std::max(n_comm, c + 1);
  std::vector<CommunityStats> stats(n_comm);
  for (uint32_t c = 0; c < n_comm; ++c) stats[c].index = c;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto& s = stats[assignment[u]];
    ++s.nodes;
    s.average_degree += static_cast<double>(g.degree(u));
    if (g.degree(u) == 1) ++s.degree_one;
    for (NodeId v : g.neighbors(u)) {
      if (assignment[u] == assignment[v]) {
        if (u < v) ++s.intra_edges;
      } else {
        ++s.inter_edges;  // counted from each side once
      }
    }
  }
  for (auto& s : stats) {
    if (s.nodes > 0) s.average_degree /= static_cast<double>(s.nodes);
    if (s.nodes > 1) {
      s.intra_density = static_cast<double>(s.intra_edges) /
                        (static_cast<double>(s.nodes) * static_cast<double>(s.nodes - 1) / 2.0);
    }
  }
  std::sort(stats.begin(), stats.end(),
            [](const CommunityStats& a, const CommunityStats& b) { return a.nodes > b.nodes; });
  return stats;
}

}  // namespace topo::graph
