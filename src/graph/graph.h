#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace topo::graph {

using NodeId = uint32_t;

/// Simple undirected graph (no self-loops, no multi-edges) with O(1) edge
/// lookup and cache-friendly neighbor iteration. Node ids are dense
/// [0, num_nodes).
class Graph {
 public:
  Graph() = default;
  explicit Graph(size_t n);

  NodeId add_node();

  /// Adds an undirected edge; returns false (and does nothing) for
  /// self-loops and duplicates. Nodes must exist.
  bool add_edge(NodeId u, NodeId v);

  /// Removes an edge if present; returns whether it existed.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  size_t num_nodes() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& neighbors(NodeId u) const { return adj_[u]; }
  size_t degree(NodeId u) const { return adj_[u].size(); }

  /// All edges as (u, v) with u < v.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Average degree 2m/n (0 for the empty graph).
  double average_degree() const;

  /// Edge density 2m / (n (n-1)).
  double density() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::unordered_set<NodeId>> adj_set_;
  size_t num_edges_ = 0;
};

}  // namespace topo::graph
