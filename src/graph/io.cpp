#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace topo::graph {

void write_edge_csv(const Graph& g, std::ostream& os) {
  os << "# nodes=" << g.num_nodes() << " edges=" << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ',' << v << '\n';
}

bool write_edge_csv(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_edge_csv(g, out);
  return static_cast<bool>(out);
}

Graph read_edge_csv(std::istream& is) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    NodeId u = 0, v = 0;
    char comma = 0;
    if (!(ss >> u >> comma >> v) || comma != ',') return Graph();
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  Graph g(edges.empty() ? 0 : max_id + 1);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

void write_dot(const Graph& g, std::ostream& os, const std::string& name) {
  os << "graph " << name << " {\n";
  for (const auto& [u, v] : g.edges()) os << "  n" << u << " -- n" << v << ";\n";
  os << "}\n";
}

}  // namespace topo::graph
