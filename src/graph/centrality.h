#pragma once

// Centrality and robustness analytics backing the paper's §3 use cases:
// targeted eclipse exposure (use case 1), single points of failure
// (use case 2), and neighbor-set fingerprinting for deanonymization
// (use case 3).

#include <vector>

#include "graph/graph.h"

namespace topo::graph {

/// Betweenness centrality via Brandes' algorithm (unweighted). Values are
/// unnormalized pair counts; divide by (n-1)(n-2)/2 to normalize.
std::vector<double> betweenness_centrality(const Graph& g);

/// Articulation points (cut vertices): nodes whose removal disconnects
/// their component — the paper's topology-critical nodes.
std::vector<NodeId> articulation_points(const Graph& g);

/// K-core number of every node (largest k such that the node survives in
/// the k-core).
std::vector<size_t> core_numbers(const Graph& g);

/// Closeness centrality (reciprocal of mean distance within the
/// component); 0 for isolated nodes.
std::vector<double> closeness_centrality(const Graph& g);

/// Size of the largest connected component after removing `remove` nodes.
size_t largest_component_after_removal(const Graph& g, const std::vector<NodeId>& remove);

/// Neighbor-set fingerprint analysis (use case 3): how many nodes have a
/// neighbor set shared with no other node — such nodes can be identified
/// (and their clients deanonymized) purely from who they peer with.
struct FingerprintStats {
  size_t unique = 0;      ///< nodes whose neighbor set is unique
  size_t ambiguous = 0;   ///< nodes sharing a neighbor set with another
  double unique_fraction() const {
    const size_t total = unique + ambiguous;
    return total ? static_cast<double>(unique) / static_cast<double>(total) : 0.0;
  }
};

FingerprintStats neighbor_fingerprints(const Graph& g);

}  // namespace topo::graph
