#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::graph {

/// Erdos-Renyi G(n, m): m distinct edges chosen uniformly at random — the
/// paper's first baseline (Table 4).
Graph erdos_renyi_gnm(size_t n, size_t m, util::Rng& rng);

/// Erdos-Renyi G(n, p).
Graph erdos_renyi_gnp(size_t n, double p, util::Rng& rng);

/// Configuration model over the given degree sequence, collapsed to a simple
/// graph (self-loops and multi-edges dropped), matching
/// `nx.Graph(nx.configuration_model(seq))` — the paper's CM baseline.
Graph configuration_model(const std::vector<size_t>& degrees, util::Rng& rng);

/// Barabasi-Albert preferential attachment with `m_attach` edges per new
/// node — the paper's BA baseline (they use the measured average degree
/// l' as 2*m_attach).
Graph barabasi_albert(size_t n, size_t m_attach, util::Rng& rng);

/// A Watts-Strogatz small-world ring (extra comparison graph used by tests
/// and the topology examples).
Graph watts_strogatz(size_t n, size_t k, double rewire_p, util::Rng& rng);

}  // namespace topo::graph
