#include "graph/centrality.h"

#include <algorithm>
#include <map>
#include <queue>
#include <stack>

#include "graph/metrics.h"

namespace topo::graph {

std::vector<double> betweenness_centrality(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);

  // Brandes (2001): one BFS per source with dependency accumulation.
  std::vector<long long> sigma(n);
  std::vector<int> dist(n);
  std::vector<double> delta(n);
  std::vector<std::vector<NodeId>> preds(n);

  for (NodeId s = 0; s < n; ++s) {
    std::fill(sigma.begin(), sigma.end(), 0);
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();

    std::stack<NodeId> order;
    std::queue<NodeId> q;
    sigma[s] = 1;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      order.push(v);
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      for (NodeId v : preds[w]) {
        delta[v] += static_cast<double>(sigma[v]) / static_cast<double>(sigma[w]) *
                    (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  // Each undirected pair counted twice.
  for (auto& v : bc) v /= 2.0;
  return bc;
}

std::vector<NodeId> articulation_points(const Graph& g) {
  // Definition-based check: u is an articulation point iff removing it
  // increases the component count. O(n (n + m)) — definitive, and fast at
  // the network sizes this library measures (n <= a few thousand).
  const size_t n = g.num_nodes();
  const size_t base_components = connected_components(g).size();
  std::vector<NodeId> cuts;
  std::vector<bool> seen(n);
  for (NodeId u = 0; u < n; ++u) {
    if (g.degree(u) < 2) continue;  // removing a leaf never disconnects
    std::fill(seen.begin(), seen.end(), false);
    seen[u] = true;
    size_t comps = 0;
    for (NodeId s = 0; s < n; ++s) {
      if (seen[s]) continue;
      ++comps;
      std::queue<NodeId> q;
      seen[s] = true;
      q.push(s);
      while (!q.empty()) {
        const NodeId v = q.front();
        q.pop();
        for (NodeId w : g.neighbors(v)) {
          if (!seen[w]) {
            seen[w] = true;
            q.push(w);
          }
        }
      }
    }
    if (comps > base_components) cuts.push_back(u);
  }
  return cuts;
}

std::vector<size_t> core_numbers(const Graph& g) {
  // Repeated peeling: at level k, strip every remaining node of (residual)
  // degree <= k until none qualifies; stripped nodes have core number k.
  const size_t n = g.num_nodes();
  std::vector<size_t> degree(n), core(n, 0);
  std::vector<bool> removed(n, false);
  size_t max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }
  size_t remaining = n;
  for (size_t k = 0; k <= max_degree && remaining > 0; ++k) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (NodeId u = 0; u < n; ++u) {
        if (removed[u] || degree[u] > k) continue;
        removed[u] = true;
        --remaining;
        core[u] = k;
        progress = true;
        for (NodeId v : g.neighbors(u)) {
          if (!removed[v] && degree[v] > 0) --degree[v];
        }
      }
    }
  }
  return core;
}

std::vector<double> closeness_centrality(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> closeness(n, 0.0);
  std::vector<int> dist(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> q;
    dist[s] = 0;
    q.push(s);
    double total = 0.0;
    size_t reached = 0;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      if (v != s) {
        total += dist[v];
        ++reached;
      }
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
      }
    }
    if (reached > 0 && total > 0.0) {
      closeness[s] = static_cast<double>(reached) / total;
    }
  }
  return closeness;
}

size_t largest_component_after_removal(const Graph& g, const std::vector<NodeId>& remove) {
  const size_t n = g.num_nodes();
  std::vector<bool> gone(n, false);
  for (NodeId u : remove) gone[u] = true;
  std::vector<bool> seen(n, false);
  size_t best = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s] || gone[s]) continue;
    size_t size = 0;
    std::queue<NodeId> q;
    seen[s] = true;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      ++size;
      for (NodeId w : g.neighbors(v)) {
        if (!seen[w] && !gone[w]) {
          seen[w] = true;
          q.push(w);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

FingerprintStats neighbor_fingerprints(const Graph& g) {
  std::map<std::vector<NodeId>, size_t> sets;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> nbrs = g.neighbors(u);
    std::sort(nbrs.begin(), nbrs.end());
    ++sets[nbrs];
  }
  FingerprintStats stats;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> nbrs = g.neighbors(u);
    std::sort(nbrs.begin(), nbrs.end());
    if (sets[nbrs] == 1) ++stats.unique;
    else ++stats.ambiguous;
  }
  return stats;
}

}  // namespace topo::graph
