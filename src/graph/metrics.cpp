#include "graph/metrics.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace topo::graph {

namespace {

/// BFS eccentricity of `src` within its component; -1 entries mean
/// unreachable.
size_t bfs_eccentricity(const Graph& g, NodeId src, std::vector<int>& dist) {
  std::fill(dist.begin(), dist.end(), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  size_t ecc = 0;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        ecc = std::max(ecc, static_cast<size_t>(dist[v]));
        q.push(v);
      }
    }
  }
  return ecc;
}

}  // namespace

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<bool> seen(n, false);
  std::vector<std::vector<NodeId>> comps;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<NodeId> comp;
    std::queue<NodeId> q;
    seen[s] = true;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      comp.push_back(u);
      for (NodeId v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

std::vector<NodeId> largest_component(const Graph& g) {
  auto comps = connected_components(g);
  if (comps.empty()) return {};
  auto it = std::max_element(comps.begin(), comps.end(),
                             [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return *it;
}

Graph subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Graph sub(nodes.size());
  std::vector<int64_t> remap(g.num_nodes(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) remap[nodes[i]] = static_cast<int64_t>(i);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId v : g.neighbors(nodes[i])) {
      const int64_t j = remap[v];
      if (j >= 0 && static_cast<int64_t>(i) < j)
        sub.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return sub;
}

DistanceStats distance_stats(const Graph& g) {
  DistanceStats out;
  if (g.num_nodes() == 0) return out;

  auto comps = connected_components(g);
  const auto& big = *std::max_element(
      comps.begin(), comps.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  out.connected = comps.size() == 1;
  out.component_size = big.size();

  const Graph cc = out.connected ? g : subgraph(g, big);
  const size_t n = cc.num_nodes();
  std::vector<int> dist(n);
  std::vector<size_t> ecc(n, 0);
  size_t diameter = 0;
  size_t radius = std::numeric_limits<size_t>::max();
  double ecc_sum = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    ecc[u] = bfs_eccentricity(cc, u, dist);
    diameter = std::max(diameter, ecc[u]);
    radius = std::min(radius, ecc[u]);
    ecc_sum += static_cast<double>(ecc[u]);
  }
  out.diameter = diameter;
  out.radius = (radius == std::numeric_limits<size_t>::max()) ? 0 : radius;
  out.mean_eccentricity = n ? ecc_sum / static_cast<double>(n) : 0.0;
  for (NodeId u = 0; u < n; ++u) {
    if (ecc[u] == out.radius) ++out.center_size;
    if (ecc[u] == out.diameter) ++out.periphery_size;
  }
  return out;
}

double clustering_coefficient(const Graph& g) {
  const size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const auto& nbrs = g.neighbors(u);
    const size_t d = nbrs.size();
    if (d < 2) continue;  // local coefficient 0
    size_t links = 0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) {
        if (g.has_edge(nbrs[i], nbrs[j])) ++links;
      }
    }
    sum += 2.0 * static_cast<double>(links) / (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return sum / static_cast<double>(n);
}

uint64_t triangle_count(const Graph& g) {
  // Each triangle counted once via the ordered-neighbor rule u < v < w.
  uint64_t tri = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nbrs = g.neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= u) continue;
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[j] <= u) continue;
        if (g.has_edge(nbrs[i], nbrs[j])) ++tri;
      }
    }
  }
  return tri;
}

double transitivity(const Graph& g) {
  uint64_t triples = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint64_t d = g.degree(u);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) / static_cast<double>(triples);
}

double degree_assortativity(const Graph& g) {
  // Pearson correlation over directed edge endpoint degrees (each undirected
  // edge contributes both orientations), the standard Newman r.
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  uint64_t m2 = 0;  // number of directed edges
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double du = static_cast<double>(g.degree(u));
    for (NodeId v : g.neighbors(u)) {
      const double dv = static_cast<double>(g.degree(v));
      sum_xy += du * dv;
      sum_x += du;
      sum_x2 += du * du;
      ++m2;
    }
  }
  if (m2 == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(m2);
  const double num = inv * sum_xy - (inv * sum_x) * (inv * sum_x);
  const double den = inv * sum_x2 - (inv * sum_x) * (inv * sum_x);
  if (den == 0.0) return 0.0;
  return num / den;
}

util::Histogram degree_histogram(const Graph& g) {
  util::Histogram h;
  for (NodeId u = 0; u < g.num_nodes(); ++u) h.add(static_cast<long long>(g.degree(u)));
  return h;
}

std::vector<size_t> degree_sequence(const Graph& g) {
  std::vector<size_t> deg(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) deg[u] = g.degree(u);
  return deg;
}

}  // namespace topo::graph
