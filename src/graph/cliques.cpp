#include "graph/cliques.h"

#include <algorithm>
#include <vector>

namespace topo::graph {

namespace {

struct BkState {
  const Graph* g = nullptr;
  uint64_t cap = 0;
  CliqueStats stats;

  /// Bron–Kerbosch with the max-degree pivot rule. R is implicit (only its
  /// size matters); P and X are candidate/excluded sets.
  void expand(size_t r_size, std::vector<NodeId>& p, std::vector<NodeId>& x) {
    if (stats.truncated) return;
    if (p.empty() && x.empty()) {
      ++stats.maximal_cliques;
      stats.max_clique_size = std::max(stats.max_clique_size, r_size);
      if (stats.maximal_cliques >= cap) stats.truncated = true;
      return;
    }
    // Pivot: vertex of P union X with most neighbors in P.
    NodeId pivot = 0;
    size_t best = 0;
    bool have = false;
    auto consider = [&](NodeId u) {
      size_t cnt = 0;
      for (NodeId v : p) {
        if (g->has_edge(u, v)) ++cnt;
      }
      if (!have || cnt > best) {
        have = true;
        best = cnt;
        pivot = u;
      }
    };
    for (NodeId u : p) consider(u);
    for (NodeId u : x) consider(u);

    std::vector<NodeId> candidates;
    for (NodeId u : p) {
      if (!g->has_edge(pivot, u)) candidates.push_back(u);
    }
    for (NodeId u : candidates) {
      std::vector<NodeId> p2, x2;
      for (NodeId v : p) {
        if (g->has_edge(u, v)) p2.push_back(v);
      }
      for (NodeId v : x) {
        if (g->has_edge(u, v)) x2.push_back(v);
      }
      expand(r_size + 1, p2, x2);
      if (stats.truncated) return;
      p.erase(std::find(p.begin(), p.end(), u));
      x.push_back(u);
    }
  }
};

}  // namespace

CliqueStats count_maximal_cliques(const Graph& g, uint64_t cap) {
  BkState state;
  state.g = &g;
  state.cap = cap;
  std::vector<NodeId> p(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) p[u] = u;
  std::vector<NodeId> x;
  state.expand(0, p, x);
  return state.stats;
}

}  // namespace topo::graph
