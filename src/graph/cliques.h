#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace topo::graph {

/// Result of maximal-clique enumeration (Bron–Kerbosch with pivoting).
struct CliqueStats {
  uint64_t maximal_cliques = 0;  ///< count of maximal cliques found
  size_t max_clique_size = 0;    ///< size of the largest clique (omega)
  bool truncated = false;        ///< hit the enumeration cap
};

/// Counts maximal cliques, stopping after `cap` (Rinkeby-like graphs have
/// hundreds of thousands; Table 9 reports 274 775). The paper's
/// "clique number" rows report this count, not omega.
CliqueStats count_maximal_cliques(const Graph& g, uint64_t cap = 2'000'000);

}  // namespace topo::graph
