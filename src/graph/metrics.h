#pragma once

#include "graph/graph.h"
#include "util/stats.h"

namespace topo::graph {

/// Eccentricity-derived distance statistics (paper Table 4). Computed on the
/// largest connected component when the graph is disconnected (`connected`
/// reports which case applies), matching how NetworkX-based analyses treat
/// measured snapshots.
struct DistanceStats {
  bool connected = true;
  size_t component_size = 0;
  size_t diameter = 0;
  size_t radius = 0;
  double mean_eccentricity = 0.0;
  size_t center_size = 0;     ///< nodes with eccentricity == radius
  size_t periphery_size = 0;  ///< nodes with eccentricity == diameter
};

DistanceStats distance_stats(const Graph& g);

/// Connected components; each component is a sorted node list.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

/// Nodes of the largest connected component.
std::vector<NodeId> largest_component(const Graph& g);

/// Induced subgraph; node ids are re-densified in `nodes` order.
Graph subgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Average local clustering coefficient (NetworkX `average_clustering`).
double clustering_coefficient(const Graph& g);

/// Global transitivity: 3 * triangles / connected triples.
double transitivity(const Graph& g);

/// Number of triangles in the graph.
uint64_t triangle_count(const Graph& g);

/// Degree (Pearson) assortativity coefficient.
double degree_assortativity(const Graph& g);

/// Histogram of node degrees.
util::Histogram degree_histogram(const Graph& g);

/// Degree sequence, one entry per node.
std::vector<size_t> degree_sequence(const Graph& g);

}  // namespace topo::graph
