#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::graph {

/// A node -> community assignment with its Newman modularity.
struct Communities {
  std::vector<uint32_t> assignment;  ///< community index per node, dense [0, count)
  size_t count = 0;
  double modularity = 0.0;
};

/// Newman modularity Q of a partition.
double modularity(const Graph& g, const std::vector<uint32_t>& assignment);

/// Louvain community detection (Blondel et al. 2008), the algorithm the
/// paper runs via python-louvain. Node visit order is shuffled by `rng`;
/// results are deterministic per seed.
Communities louvain(const Graph& g, util::Rng& rng, size_t max_levels = 32);

/// Per-community statistics behind paper Table 5.
struct CommunityStats {
  size_t index = 0;
  size_t nodes = 0;
  size_t intra_edges = 0;
  size_t inter_edges = 0;
  double intra_density = 0.0;   ///< intra edges / C(n,2)
  double average_degree = 0.0;  ///< mean full-graph degree of members
  size_t degree_one = 0;        ///< members with graph degree 1
};

std::vector<CommunityStats> community_stats(const Graph& g,
                                            const std::vector<uint32_t>& assignment);

}  // namespace topo::graph
