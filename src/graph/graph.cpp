#include "graph/graph.h"

#include <algorithm>

namespace topo::graph {

Graph::Graph(size_t n) : adj_(n), adj_set_(n) {}

NodeId Graph::add_node() {
  adj_.emplace_back();
  adj_set_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

bool Graph::add_edge(NodeId u, NodeId v) {
  if (u == v) return false;
  if (adj_set_[u].count(v)) return false;
  adj_set_[u].insert(v);
  adj_set_[v].insert(u);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u == v || !adj_set_[u].count(v)) return false;
  adj_set_[u].erase(v);
  adj_set_[v].erase(u);
  auto drop = [](std::vector<NodeId>& vec, NodeId x) {
    vec.erase(std::find(vec.begin(), vec.end(), x));
  };
  drop(adj_[u], v);
  drop(adj_[v], u);
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  return adj_set_[u].count(v) > 0;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double Graph::average_degree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) / static_cast<double>(adj_.size());
}

double Graph::density() const {
  const size_t n = adj_.size();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace topo::graph
