#include "graph/generators.h"

#include <algorithm>
#include <numeric>

namespace topo::graph {

Graph erdos_renyi_gnm(size_t n, size_t m, util::Rng& rng) {
  Graph g(n);
  const size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  m = std::min(m, max_edges);
  size_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph erdos_renyi_gnp(size_t n, double p, util::Rng& rng) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph configuration_model(const std::vector<size_t>& degrees, util::Rng& rng) {
  Graph g(degrees.size());
  std::vector<NodeId> stubs;
  stubs.reserve(std::accumulate(degrees.begin(), degrees.end(), size_t{0}));
  for (NodeId u = 0; u < degrees.size(); ++u) {
    for (size_t i = 0; i < degrees[u]; ++i) stubs.push_back(u);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();  // drop one stub if odd sum
  rng.shuffle(stubs);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.add_edge(stubs[i], stubs[i + 1]);  // self/multi edges silently dropped
  }
  return g;
}

Graph barabasi_albert(size_t n, size_t m_attach, util::Rng& rng) {
  if (m_attach < 1) m_attach = 1;
  Graph g(n);
  if (n == 0) return g;
  const size_t seed_nodes = std::min(n, m_attach + 1);
  // Seed clique so early nodes have attachment mass.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) g.add_edge(u, v);
  }
  // Repeated-endpoint list implements preferential attachment.
  std::vector<NodeId> targets;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (size_t i = 0; i < g.degree(u); ++i) targets.push_back(u);
  }
  for (NodeId u = static_cast<NodeId>(seed_nodes); u < n; ++u) {
    size_t added = 0;
    size_t guard = 0;
    while (added < m_attach && guard++ < 50 * m_attach) {
      const NodeId v = targets.empty() ? static_cast<NodeId>(rng.index(u))
                                       : targets[rng.index(targets.size())];
      if (g.add_edge(u, v)) {
        targets.push_back(u);
        targets.push_back(v);
        ++added;
      }
    }
  }
  return g;
}

Graph watts_strogatz(size_t n, size_t k, double rewire_p, util::Rng& rng) {
  Graph g(n);
  if (n < 3) return g;
  const size_t half = std::max<size_t>(1, k / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (size_t j = 1; j <= half; ++j) {
      g.add_edge(u, static_cast<NodeId>((u + j) % n));
    }
  }
  // Rewire each edge with probability p.
  for (const auto& [u, v] : g.edges()) {
    if (!rng.chance(rewire_p)) continue;
    const NodeId w = static_cast<NodeId>(rng.index(n));
    if (w != u && !g.has_edge(u, w)) {
      g.remove_edge(u, v);
      g.add_edge(u, w);
    }
  }
  return g;
}

}  // namespace topo::graph
