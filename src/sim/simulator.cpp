#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace topo::sim {

void Simulator::schedule_at(Time t, Event ev) {
  queue_.push(std::max(t, now_), std::move(ev));
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::schedule_after(Time delay, Event ev) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(ev));
}

void Simulator::at(Time t, EventQueue::Action action) {
  schedule_at(t, Event::closure(std::move(action)));
}

void Simulator::after(Time delay, EventQueue::Action action) {
  at(now_ + std::max(delay, 0.0), std::move(action));
}

void Simulator::every(Time start, Time interval, std::function<bool()> action) {
  auto holder = std::make_shared<std::function<void()>>();
  auto fn = std::move(action);
  *holder = [this, interval, holder, fn = std::move(fn)]() {
    if (fn()) after(interval, *holder);
  };
  at(start, *holder);
}

void Simulator::run() {
  while (!queue_.empty()) {
    auto [t, ev] = queue_.pop();
    now_ = std::max(now_, t);
    ++processed_;
    ++dispatched_[static_cast<size_t>(ev.kind)];
    ev.fire();
  }
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto [et, ev] = queue_.pop();
    now_ = std::max(now_, et);
    ++processed_;
    ++dispatched_[static_cast<size_t>(ev.kind)];
    ev.fire();
  }
  now_ = std::max(now_, t);
}

bool Simulator::run_capped(size_t max_events) {
  size_t n = 0;
  while (!queue_.empty()) {
    if (n++ >= max_events) return false;
    auto [t, ev] = queue_.pop();
    now_ = std::max(now_, t);
    ++processed_;
    ++dispatched_[static_cast<size_t>(ev.kind)];
    ev.fire();
  }
  return true;
}

}  // namespace topo::sim
