#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace topo::sim {

void Simulator::schedule_at(Time t, Event ev) {
  queue_.push(std::max(t, now_), std::move(ev));
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::schedule_at_seq(Time t, Event ev, uint64_t seq) {
  queue_.push_at_seq(std::max(t, now_), std::move(ev), seq);
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::schedule_after(Time delay, Event ev) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(ev));
}

void Simulator::at(Time t, EventQueue::Action action) {
  schedule_at(t, Event::closure(std::move(action)));
}

void Simulator::after(Time delay, EventQueue::Action action) {
  at(now_ + std::max(delay, 0.0), std::move(action));
}

void Simulator::every(Time start, Time interval, std::function<bool()> action) {
  auto holder = std::make_shared<std::function<void()>>();
  auto fn = std::move(action);
  *holder = [this, interval, holder, fn = std::move(fn)]() {
    if (fn()) after(interval, *holder);
  };
  at(start, *holder);
}

void Simulator::run() {
  while (!queue_.empty()) {
    EventQueue::Scheduled s = queue_.pop();
    now_ = std::max(now_, s.t);
    ++processed_;
    ++dispatched_[static_cast<size_t>(s.ev.kind)];
    s.ev.fire();
  }
}

void Simulator::run_until(Time t) {
  // Batched-delivery handlers drain staged members up to drain_bound():
  // pin it to this horizon (restoring the enclosing bound on exit — runs
  // can nest via closure events driving the sim) so a batch popped at
  // t0 <= t never delivers members beyond t.
  const Time prev_bound = drain_bound_;
  drain_bound_ = t;
  while (!queue_.empty() && queue_.next_time() <= t) {
    EventQueue::Scheduled s = queue_.pop();
    now_ = std::max(now_, s.t);
    ++processed_;
    ++dispatched_[static_cast<size_t>(s.ev.kind)];
    s.ev.fire();
  }
  drain_bound_ = prev_bound;
  now_ = std::max(now_, t);
}

bool Simulator::run_capped(size_t max_events) {
  size_t n = 0;
  while (!queue_.empty()) {
    if (n >= max_events) return false;
    EventQueue::Scheduled s = queue_.pop();
    now_ = std::max(now_, s.t);
    ++processed_;
    ++dispatched_[static_cast<size_t>(s.ev.kind)];
    const size_t drained_before = drained_;
    s.ev.fire();
    // A kDeliverTxBatch dispatch drains up to its whole member list here
    // (drain_bound is +inf), so charge one budget unit per drained member
    // — exactly what the unbatched kDeliverTx-per-message trajectory would
    // have paid. Non-draining dispatches charge the usual single unit.
    const size_t drained = drained_ - drained_before;
    n += drained > 0 ? drained : 1;
  }
  return true;
}

}  // namespace topo::sim
