#pragma once

#include "util/rng.h"

namespace topo::sim {

/// Per-message network delay model. P2P links between Ethereum nodes show a
/// right-skewed delay distribution; a log-normal around a configurable
/// median is the standard fit and is what we default to.
class LatencyModel {
 public:
  enum class Kind { kFixed, kUniform, kLogNormal };

  /// Fixed delay of `seconds` per message.
  static LatencyModel fixed(double seconds);

  /// Uniform in [lo, hi] seconds.
  static LatencyModel uniform(double lo, double hi);

  /// Log-normal with the given median (seconds) and log-space sigma.
  static LatencyModel lognormal(double median, double sigma);

  /// Draws one delay; always >= min_floor (default 0.1 ms) so event ordering
  /// between distinct hops stays strict.
  double sample(util::Rng& rng) const;

  Kind kind() const { return kind_; }
  double a() const { return a_; }
  double b() const { return b_; }

 private:
  LatencyModel(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}
  Kind kind_ = Kind::kFixed;
  double a_ = 0.05;
  double b_ = 0.0;
};

}  // namespace topo::sim
