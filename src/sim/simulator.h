#pragma once

#include <array>

#include "sim/event_queue.h"

namespace topo::sim {

/// Discrete-event simulation driver. All network and protocol activity is
/// expressed as events; wall-clock quantities reported by benches (e.g. the
/// Fig 5 speedup) are simulation seconds.
///
/// Hot paths schedule typed events (schedule_at/schedule_after — a tagged
/// record dispatched through its EventSink, no per-event allocation); cold
/// paths keep the closure overloads (at/after/every), which wrap the
/// callback in a kClosure event.
class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(QueueBackend backend) : queue_(backend) {}

  Time now() const { return now_; }

  /// Schedules a typed event at an absolute time (clamped to now if in the
  /// past). Allocation-free.
  void schedule_at(Time t, Event ev);

  /// Schedules a typed event `delay` seconds from now (delay < 0 treated
  /// as 0). Allocation-free.
  void schedule_after(Time delay, Event ev);

  /// Schedules a closure at an absolute time (clamped to now if in the past).
  void at(Time t, EventQueue::Action action);

  /// Schedules a closure `delay` seconds from now (delay < 0 treated as 0).
  void after(Time delay, EventQueue::Action action);

  /// Repeats `action` every `interval` seconds starting at `start`, for as
  /// long as it returns true.
  void every(Time start, Time interval, std::function<bool()> action);

  /// Runs until the queue drains.
  void run();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(Time t);

  /// Runs until the queue drains or the event budget is exhausted; returns
  /// true if drained.
  bool run_capped(size_t max_events);

  size_t processed() const { return processed_; }
  size_t queued() const { return queue_.size(); }
  QueueBackend backend() const { return queue_.backend(); }

  /// Deepest the event queue has ever been — the memory high-water mark a
  /// production deployment must provision for (observability snapshot
  /// publishes it as `sim.queue_high_water`).
  size_t queue_high_water() const { return queue_high_water_; }

  /// Events fired so far, broken down by EventKind (observability snapshot
  /// publishes them as `sim.dispatch.<kind>`). The event *mix* — not just
  /// the total — is what bench_compare.py gates on: a protocol change that
  /// trades deliveries for fetch timeouts shows up here before it shows up
  /// in throughput.
  const std::array<uint64_t, kNumEventKinds>& dispatch_counts() const {
    return dispatched_;
  }

  /// Backend-internal queue tallies (see EventQueue::Stats).
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// Non-destructive copy of every pending event in pop order (world
  /// snapshot capture; see EventQueue::pending_snapshot).
  std::vector<EventQueue::Scheduled> pending_snapshot() const {
    return queue_.pending_snapshot();
  }

  /// World-fork restore: overwrites the execution counters after the
  /// caller has re-pushed the pending events via schedule_at. Queue
  /// *internal* stats (queue_stats) are reconstruction artifacts and are
  /// deliberately not restored; exports namespace them under
  /// `sim.queue.impl.*` and comparisons exclude that prefix.
  void restore_state(Time now, size_t processed, size_t queue_high_water,
                     const std::array<uint64_t, kNumEventKinds>& dispatched) {
    now_ = now;
    processed_ = processed;
    // The captured high-water is >= the pending count, so replaying pushes
    // can never have exceeded it; take max defensively anyway.
    queue_high_water_ = queue_high_water > queue_.size() ? queue_high_water : queue_.size();
    dispatched_ = dispatched;
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  size_t processed_ = 0;
  size_t queue_high_water_ = 0;
  std::array<uint64_t, kNumEventKinds> dispatched_{};
};

}  // namespace topo::sim
