#pragma once

#include <array>
#include <limits>
#include <utility>

#include "sim/event_queue.h"

namespace topo::sim {

/// Discrete-event simulation driver. All network and protocol activity is
/// expressed as events; wall-clock quantities reported by benches (e.g. the
/// Fig 5 speedup) are simulation seconds.
///
/// Hot paths schedule typed events (schedule_at/schedule_after — a tagged
/// record dispatched through its EventSink, no per-event allocation); cold
/// paths keep the closure overloads (at/after/every), which wrap the
/// callback in a kClosure event.
class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(QueueBackend backend) : queue_(backend) {}

  Time now() const { return now_; }

  /// Schedules a typed event at an absolute time (clamped to now if in the
  /// past). Allocation-free.
  void schedule_at(Time t, Event ev);

  /// Schedules a typed event under a previously reserved queue sequence
  /// number (see reserve_seq). Same clamping as schedule_at.
  void schedule_at_seq(Time t, Event ev, uint64_t seq);

  /// Claims the next queue sequence number without scheduling anything —
  /// the staging half of batched delivery (EventQueue::reserve_seq).
  uint64_t reserve_seq() { return queue_.reserve_seq(); }

  /// Ensures future plain schedules sort after seq `min_next - 1` (world
  /// restore over reserved-but-unqueued seqs; EventQueue::advance_seq).
  void advance_seq(uint64_t min_next) { queue_.advance_seq(min_next); }

  /// Schedules a typed event `delay` seconds from now (delay < 0 treated
  /// as 0). Allocation-free.
  void schedule_after(Time delay, Event ev);

  /// Schedules a closure at an absolute time (clamped to now if in the past).
  void at(Time t, EventQueue::Action action);

  /// Schedules a closure `delay` seconds from now (delay < 0 treated as 0).
  void after(Time delay, EventQueue::Action action);

  /// Repeats `action` every `interval` seconds starting at `start`, for as
  /// long as it returns true.
  void every(Time start, Time interval, std::function<bool()> action);

  /// Runs until the queue drains.
  void run();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(Time t);

  /// Runs until the queue drains or the event budget is exhausted; returns
  /// true if drained. The budget counts *deliveries*, not queue pops: a
  /// batch dispatch that drains k staged members debits k (reported via
  /// note_drained_delivery), so a watchdog cap bounds the same amount of
  /// work as it did under one-event-per-message delivery.
  bool run_capped(size_t max_events);

  size_t processed() const { return processed_; }
  size_t queued() const { return queue_.size(); }
  QueueBackend backend() const { return queue_.backend(); }

  /// Exact (time, seq) key of the next queued event, (+inf, max) when the
  /// queue is empty (EventQueue::next_key). An in-flight event handler
  /// draining staged work compares its members against this to decide how
  /// far it may run without violating the global total order.
  std::pair<Time, uint64_t> next_event_key() const { return queue_.next_key(); }

  /// Moves the clock forward to `t` (never backward). Event handlers that
  /// deliver several staged messages in one dispatch (batched delivery)
  /// advance the clock to each member's scheduled time so downstream
  /// timestamps are identical to the one-event-per-message trajectory.
  void advance_to(Time t) { now_ = std::max(now_, t); }

  /// Called by a handler once per staged message it delivers inside a
  /// single dispatch (batched delivery drain loop). run_capped charges
  /// these against its event budget so batching cannot inflate how much
  /// work one counted event is allowed to do.
  void note_drained_delivery() { ++drained_; }

  /// Upper bound on how far an in-dispatch drain may advance the clock:
  /// the horizon of the innermost run_until(t), +inf under run()/
  /// run_capped(). Without this, a batch popped at t0 <= t could deliver
  /// members beyond t and break run_until's contract.
  Time drain_bound() const { return drain_bound_; }

  /// Deepest the event queue has ever been — the memory high-water mark a
  /// production deployment must provision for (observability snapshot
  /// publishes it as `sim.queue_high_water`).
  size_t queue_high_water() const { return queue_high_water_; }

  /// Events fired so far, broken down by EventKind (observability snapshot
  /// publishes them as `sim.dispatch.<kind>`). The event *mix* — not just
  /// the total — is what bench_compare.py gates on: a protocol change that
  /// trades deliveries for fetch timeouts shows up here before it shows up
  /// in throughput.
  const std::array<uint64_t, kNumEventKinds>& dispatch_counts() const {
    return dispatched_;
  }

  /// Backend-internal queue tallies (see EventQueue::Stats).
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// Non-destructive copy of every pending event in pop order (world
  /// snapshot capture; see EventQueue::pending_snapshot).
  std::vector<EventQueue::Scheduled> pending_snapshot() const {
    return queue_.pending_snapshot();
  }

  /// World-fork restore: overwrites the execution counters after the
  /// caller has re-pushed the pending events via schedule_at. Queue
  /// *internal* stats (queue_stats) are reconstruction artifacts and are
  /// deliberately not restored; exports namespace them under
  /// `sim.queue.impl.*` and comparisons exclude that prefix.
  void restore_state(Time now, size_t processed, size_t queue_high_water,
                     const std::array<uint64_t, kNumEventKinds>& dispatched) {
    now_ = now;
    processed_ = processed;
    // The captured high-water is >= the pending count, so replaying pushes
    // can never have exceeded it; take max defensively anyway.
    queue_high_water_ = queue_high_water > queue_.size() ? queue_high_water : queue_.size();
    dispatched_ = dispatched;
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  Time drain_bound_ = std::numeric_limits<Time>::infinity();
  size_t processed_ = 0;
  size_t drained_ = 0;  ///< batch-drained deliveries; run_capped uses deltas only
  size_t queue_high_water_ = 0;
  std::array<uint64_t, kNumEventKinds> dispatched_{};
};

}  // namespace topo::sim
