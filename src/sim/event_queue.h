#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.h"

namespace topo::sim {

/// Which ordering structure backs an EventQueue.
///
/// kTimingWheel is the production backend: a two-level bucketed timing
/// wheel with a binary-heap overflow for far-future events. kLegacyHeap is
/// the pre-wheel binary heap, kept for one release as a determinism
/// cross-check (the golden-report suite runs campaigns on both and asserts
/// byte-identical artifacts). Both implement the exact same total order,
/// so they are interchangeable; the wheel is simply faster.
enum class QueueBackend : uint8_t { kTimingWheel = 0, kLegacyHeap = 1 };

/// Process-wide default backend for newly constructed queues. Initialized
/// to kLegacyHeap when the build sets -DTOPO_LEGACY_EVENT_HEAP (the
/// escape hatch while the wheel beds in), kTimingWheel otherwise. The
/// setter is a test hook; flip it before constructing the simulators under
/// test and restore it afterwards.
QueueBackend default_queue_backend();
void set_default_queue_backend(QueueBackend backend);

/// Deterministic time-ordered event queue.
///
/// Determinism contract (identical for both backends, asserted by
/// tests/test_sim.cpp property tests): events pop in strictly increasing
/// (time, sequence) order, where the sequence number is assigned at push.
/// Equal-time events therefore run in insertion order (FIFO), which keeps
/// whole-network runs byte-for-byte reproducible for a given seed.
///
/// Timing-wheel layout: level 0 is a ring of kL0Buckets buckets of
/// kTickSeconds each (~2 s horizon — covers per-message latencies and the
/// 1 s maintenance ticks); level 1 is a ring of kL1Buckets buckets each
/// spanning a whole L0 rotation (~17 min horizon — covers announce
/// timeouts, block intervals, churn gaps); anything farther sits in a
/// binary min-heap and cascades in when the wheel reaches it. Buckets are
/// unsorted on insert; a bucket becomes a (time, seq) min-heap when the
/// wheel reaches it, and events scheduled *into the current bucket while
/// it drains* (same-time follow-ups, clamped past events) are heap-pushed
/// so the global order stays exact — FIFO within a bucket for equal times,
/// seq tiebreak at bucket boundaries, heap order beyond the horizon. Dense
/// single-bucket bursts therefore cost O(log k) per op, never worse than
/// the legacy global heap.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// One popped entry: the scheduled time, the queue sequence number that
  /// tie-breaks equal times, and the event. The seq is what batched
  /// delivery (p2p::Network) uses to prove a staged member would have been
  /// the very next pop: comparing (t, seq) against next_key() is exact on
  /// both backends.
  struct Scheduled {
    Time t = 0.0;
    uint64_t seq = 0;
    Event ev;
  };

  /// Backend-internal introspection tallies. Meaningful for the timing
  /// wheel (all-zero on the legacy heap), so exports namespace them under
  /// `sim.queue.impl.*` and the golden determinism suite excludes them
  /// from cross-*backend* comparisons — they are still asserted invariant
  /// across thread widths on a fixed backend.
  struct Stats {
    uint64_t l1_cascades = 0;        ///< L1 buckets cascaded into L0
    uint64_t overflow_cascaded = 0;  ///< events pulled from the overflow heap into the wheel
    uint64_t overflow_rebuilds = 0;  ///< full wheel jumps to the overflow minimum
    uint64_t due_peak = 0;           ///< deepest drain heap (bucket burst high-water)
    uint64_t overflow_peak = 0;      ///< deepest overflow heap (far-future backlog)
  };

  EventQueue() : EventQueue(default_queue_backend()) {}
  explicit EventQueue(QueueBackend backend) : backend_(backend) {}

  void push(Time t, Event ev);
  /// Convenience for closure events (the pre-typed API shape).
  void push(Time t, Action action) { push(t, Event::closure(std::move(action))); }

  /// Claims the next sequence number without pushing anything. A caller
  /// staging work outside the queue (per-link delivery batches) reserves
  /// one seq per logical event at the moment it *would* have pushed, so
  /// the total order is pinned even though the push happens later (or
  /// never, when the batch drains the member directly).
  uint64_t reserve_seq() { return next_seq_++; }

  /// Pushes an event under a previously reserved (or snapshot-captured)
  /// sequence number instead of assigning a fresh one. Advances the
  /// internal counter past `seq` so later plain pushes still sort after
  /// it; the caller owns not reusing a seq that is already queued.
  void push_at_seq(Time t, Event ev, uint64_t seq);

  /// Ensures future plain pushes receive sequence numbers >= `min_next`
  /// (world-fork restore: staged batch members hold reserved seqs that
  /// were never queued, so the counter must clear them too).
  void advance_seq(uint64_t min_next) {
    if (next_seq_ < min_next) next_seq_ = min_next;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  QueueBackend backend() const { return backend_; }
  const Stats& stats() const { return stats_; }

  /// Exact timestamp of the next event (0 when empty).
  Time next_time() const;

  /// Exact (time, seq) key of the next event — the global minimum of the
  /// total order, O(1) on both backends (the wheel keeps the invariant
  /// that due_.front() is the global minimum whenever the queue is
  /// non-empty). Returns (+inf, max) when empty so any real key compares
  /// below it.
  std::pair<Time, uint64_t> next_key() const;

  /// Pops the earliest event by (time, seq); undefined if empty.
  Scheduled pop();

  /// Non-destructive copy of every pending event in pop order — the
  /// world-snapshot capture path. Entries carry their sequence numbers:
  /// absolute seq values are meaningless across queues, but their *ranks*
  /// pin the relative order against out-of-queue reserved seqs (staged
  /// batch members), so the capture path compacts the union of both to
  /// ranks and replays them via push_at_seq. Re-pushing in order with
  /// fresh seqs (plain push) also reconstructs the same pop order when no
  /// reserved seqs are in play.
  std::vector<Scheduled> pending_snapshot() const;

 private:
  struct Slot {
    Time t;
    uint64_t seq;
    Event ev;
  };

  // -- wheel geometry -------------------------------------------------------
  static constexpr int kL0Bits = 10;
  static constexpr size_t kL0Buckets = size_t{1} << kL0Bits;  // 1024
  static constexpr size_t kL1Buckets = 512;
  static constexpr Time kTickSeconds = 1.0 / 512.0;  // ~2 ms; L0 spans ~2 s

  static int64_t slot_of(Time t) {
    const double s = t / kTickSeconds;
    // Events never carry negative times (Simulator clamps to now >= 0),
    // but tolerate them: everything at or before slot 0 shares a bucket.
    return s <= 0.0 ? 0 : static_cast<int64_t>(s);
  }

  void wheel_push(Slot&& slot);
  void heap_push(Slot&& slot);
  Scheduled heap_pop();

  /// Re-establishes the invariant: if size_ > 0, due_ is non-empty and its
  /// front is the global minimum. Advances the wheel, cascading L1 buckets
  /// and overflow-heap events as their horizons are reached.
  void refill_due();
  void reset_wheel_to(int64_t slot);
  void cascade_l1(size_t l1_index);
  void cascade_overflow_window(int64_t w_base);
  void drain_overflow_into_wheel();

  QueueBackend backend_;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  Stats stats_;

  // -- timing-wheel state ---------------------------------------------------
  // due_ holds the events of the bucket currently draining (plus any
  // pushed at/before it) as a min-heap by (t, seq): front() is the
  // minimum; pops and mid-drain pushes are O(log bucket-size).
  std::vector<Slot> due_;
  int64_t cur_slot_ = -1;  ///< L0 slot whose events live in due_
  int64_t l0_base_ = 0;    ///< first absolute L0 slot of the current window (kL0Buckets-aligned)
  std::array<std::vector<Slot>, kL0Buckets> l0_{};
  std::array<uint64_t, kL0Buckets / 64> l0_bits_{};
  std::array<std::vector<Slot>, kL1Buckets> l1_{};
  std::array<uint64_t, kL1Buckets / 64> l1_bits_{};
  std::vector<Slot> overflow_;  ///< min-heap by (t, seq), beyond the L1 horizon

  // -- legacy-heap state ----------------------------------------------------
  std::vector<Slot> heap_;  ///< min-heap by (t, seq)
};

}  // namespace topo::sim
