#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace topo::sim {

/// Simulation clock, in seconds.
using Time = double;

/// Deterministic time-ordered event queue. Events at equal timestamps run in
/// insertion order (a monotonically increasing sequence number breaks ties),
/// which keeps whole-network runs reproducible for a given seed.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void push(Time t, Action action);
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  Time next_time() const;

  /// Pops the earliest event; undefined if empty.
  std::pair<Time, Action> pop();

 private:
  struct Item {
    Time t;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace topo::sim
