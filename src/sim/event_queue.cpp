#include "sim/event_queue.h"

#include <utility>

namespace topo::sim {

void EventQueue::push(Time t, Action action) {
  heap_.push(Item{t, next_seq_++, std::move(action)});
}

Time EventQueue::next_time() const { return heap_.empty() ? 0.0 : heap_.top().t; }

std::pair<Time, EventQueue::Action> EventQueue::pop() {
  // priority_queue::top() is const; the action must be moved out via a
  // const_cast-free copy of the item. Items are cheap (one std::function).
  Item item = std::move(const_cast<Item&>(heap_.top()));
  heap_.pop();
  return {item.t, std::move(item.action)};
}

}  // namespace topo::sim
