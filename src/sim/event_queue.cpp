#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace topo::sim {

namespace {

#ifdef TOPO_LEGACY_EVENT_HEAP
constexpr QueueBackend kBuildDefault = QueueBackend::kLegacyHeap;
#else
constexpr QueueBackend kBuildDefault = QueueBackend::kTimingWheel;
#endif

std::atomic<QueueBackend> g_default_backend{kBuildDefault};

/// Pops earliest first: the heap comparator orders *later* slots first so a
/// std::*_heap family max-heap behaves as a min-heap by (t, seq).
struct Later {
  template <typename S>
  bool operator()(const S& a, const S& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

}  // namespace

QueueBackend default_queue_backend() {
  return g_default_backend.load(std::memory_order_relaxed);
}

void set_default_queue_backend(QueueBackend backend) {
  g_default_backend.store(backend, std::memory_order_relaxed);
}

void EventQueue::heap_push(Slot&& slot) {
  heap_.push_back(std::move(slot));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Scheduled EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Scheduled out{heap_.back().t, heap_.back().seq, std::move(heap_.back().ev)};
  heap_.pop_back();
  return out;
}

void EventQueue::reset_wheel_to(int64_t slot) {
  // Only legal when every ring is empty (fresh queue, or an overflow
  // cascade after both wheel levels drained): the bitmaps are already zero.
  cur_slot_ = slot;
  l0_base_ = slot & ~static_cast<int64_t>(kL0Buckets - 1);
}

void EventQueue::wheel_push(Slot&& slot) {
  // cur_slot_ never jumps forward on push: it tracks the bucket currently
  // draining, so only genuine same-bucket (or clamped-past) events take the
  // binary-insert path into due_. Jumping cur_slot_ to a far-future first
  // event would classify every earlier push as "past" and grow due_ into a
  // quadratic insertion-sorted vector; far-future firsts are instead found
  // by refill_due's window scan / L1 / overflow cascade on the next pop.
  const int64_t s = slot_of(slot.t);
  if (s <= cur_slot_) {
    // Lands in (or before) the bucket currently draining — push into the
    // drain heap so the exact (t, seq) order holds even for same-time
    // follow-ups scheduled mid-bucket. O(log k) keeps dense single-bucket
    // bursts (flood frontiers with sub-tick latencies) from degenerating
    // into an insertion sort.
    due_.push_back(std::move(slot));
    std::push_heap(due_.begin(), due_.end(), Later{});
    if (due_.size() > stats_.due_peak) stats_.due_peak = due_.size();
    return;
  }
  if (s < l0_base_ + static_cast<int64_t>(kL0Buckets)) {
    const size_t idx = static_cast<size_t>(s) & (kL0Buckets - 1);
    l0_[idx].push_back(std::move(slot));
    l0_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
    return;
  }
  const int64_t w = s >> kL0Bits;
  const int64_t b0 = l0_base_ >> kL0Bits;
  if (w - b0 <= static_cast<int64_t>(kL1Buckets)) {
    const size_t idx = static_cast<size_t>(w) & (kL1Buckets - 1);
    l1_[idx].push_back(std::move(slot));
    l1_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
    return;
  }
  overflow_.push_back(std::move(slot));
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  if (overflow_.size() > stats_.overflow_peak) stats_.overflow_peak = overflow_.size();
}

void EventQueue::push(Time t, Event ev) {
  push_at_seq(t, std::move(ev), next_seq_);
}

void EventQueue::push_at_seq(Time t, Event ev, uint64_t seq) {
  Slot slot{t, seq, std::move(ev)};
  if (seq >= next_seq_) next_seq_ = seq + 1;
  ++size_;
  if (backend_ == QueueBackend::kLegacyHeap) {
    heap_push(std::move(slot));
  } else {
    wheel_push(std::move(slot));
    // Invariant: due_ is non-empty whenever size_ > 0 (next_time() and
    // pop() read due_.back() unconditionally). A push into a drained queue
    // lands in the rings, so pull the earliest bucket forward here.
    if (due_.empty()) refill_due();
  }
}

void EventQueue::cascade_l1(size_t l1_index) {
  ++stats_.l1_cascades;
  std::vector<Slot> bucket = std::move(l1_[l1_index]);
  l1_[l1_index].clear();
  l1_bits_[l1_index >> 6] &= ~(uint64_t{1} << (l1_index & 63));
  for (Slot& slot : bucket) {
    const int64_t s = slot_of(slot.t);
    assert(s >= l0_base_ && s < l0_base_ + static_cast<int64_t>(kL0Buckets));
    const size_t idx = static_cast<size_t>(s) & (kL0Buckets - 1);
    l0_[idx].push_back(std::move(slot));
    l0_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
  }
}

void EventQueue::cascade_overflow_window(int64_t w_base) {
  // Pops every overflow event whose window equals w_base — the window the
  // wheel just advanced to — into L0. Anything farther stays in the heap;
  // refill_due re-considers the overflow minimum on every window advance,
  // so leaving it buried is safe.
  while (!overflow_.empty() &&
         (slot_of(overflow_.front().t) >> kL0Bits) == w_base) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Slot slot = std::move(overflow_.back());
    overflow_.pop_back();
    ++stats_.overflow_cascaded;
    const int64_t s = slot_of(slot.t);
    const size_t idx = static_cast<size_t>(s) & (kL0Buckets - 1);
    l0_[idx].push_back(std::move(slot));
    l0_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
  }
}

void EventQueue::drain_overflow_into_wheel() {
  assert(!overflow_.empty());
  ++stats_.overflow_rebuilds;
  // Jump the (fully drained) wheel to the overflow minimum, then pull in
  // everything within the new two-level horizon.
  const int64_t w_base = slot_of(overflow_.front().t) >> kL0Bits;
  reset_wheel_to(w_base << kL0Bits);
  cur_slot_ = l0_base_ - 1;
  while (!overflow_.empty()) {
    const int64_t w = slot_of(overflow_.front().t) >> kL0Bits;
    if (w - w_base > static_cast<int64_t>(kL1Buckets)) break;
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Slot slot = std::move(overflow_.back());
    overflow_.pop_back();
    ++stats_.overflow_cascaded;
    const int64_t s = slot_of(slot.t);
    if (w == w_base) {
      const size_t idx = static_cast<size_t>(s) & (kL0Buckets - 1);
      l0_[idx].push_back(std::move(slot));
      l0_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
    } else {
      const size_t idx = static_cast<size_t>(w) & (kL1Buckets - 1);
      l1_[idx].push_back(std::move(slot));
      l1_bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
    }
  }
}

void EventQueue::refill_due() {
  // due_ is empty but events remain in the wheel levels or the overflow.
  for (;;) {
    // 1. Next occupied L0 bucket in the current window.
    const int64_t from = std::max(cur_slot_ + 1, l0_base_);
    const int64_t window_end = l0_base_ + static_cast<int64_t>(kL0Buckets);
    int64_t found = -1;
    for (int64_t s = from; s < window_end;) {
      const size_t idx = static_cast<size_t>(s) & (kL0Buckets - 1);
      const size_t word = idx >> 6;
      uint64_t bits = l0_bits_[word] >> (idx & 63);
      if (bits != 0) {
        const int offset = __builtin_ctzll(bits);
        if ((idx & 63) + static_cast<size_t>(offset) < 64) {
          found = s + offset;
          break;
        }
      }
      s += 64 - static_cast<int64_t>(idx & 63);  // next word boundary
    }
    if (found >= 0) {
      cur_slot_ = found;
      const size_t idx = static_cast<size_t>(found) & (kL0Buckets - 1);
      due_ = std::move(l0_[idx]);
      l0_[idx].clear();
      l0_bits_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
      std::make_heap(due_.begin(), due_.end(), Later{});
      if (due_.size() > stats_.due_peak) stats_.due_peak = due_.size();
      return;
    }

    // 2. L0 exhausted: advance to the earliest upcoming window — the next
    // occupied L1 bucket or the overflow minimum's window, whichever is
    // sooner. The overflow MUST be a candidate here: as the wheel advances,
    // events pushed beyond the L1 horizon come within it, and a later push
    // landing in L1 would otherwise pop before an earlier overflow event.
    // The overflow minimum's window is always strictly ahead of the current
    // one (pushes beyond the horizon, and every window advance cascades the
    // matching overflow events below), so step 1 needs no overflow check.
    const int64_t b0 = l0_base_ >> kL0Bits;
    int64_t next_w = -1;
    for (int64_t rel = 1; rel <= static_cast<int64_t>(kL1Buckets);) {
      const int64_t w = b0 + rel;
      const size_t idx = static_cast<size_t>(w) & (kL1Buckets - 1);
      const uint64_t bits = l1_bits_[idx >> 6] >> (idx & 63);
      if (bits != 0) {
        const int offset = __builtin_ctzll(bits);
        if ((idx & 63) + static_cast<size_t>(offset) < 64 &&
            rel + offset <= static_cast<int64_t>(kL1Buckets)) {
          next_w = w + offset;
          break;
        }
      }
      rel += 64 - static_cast<int64_t>(idx & 63);  // next word boundary
    }
    const int64_t over_w =
        overflow_.empty() ? -1 : slot_of(overflow_.front().t) >> kL0Bits;
    if (next_w >= 0 && (over_w < 0 || next_w <= over_w)) {
      l0_base_ = next_w << kL0Bits;
      cur_slot_ = l0_base_ - 1;
      cascade_l1(static_cast<size_t>(next_w) & (kL1Buckets - 1));
      if (over_w == next_w) cascade_overflow_window(next_w);
      continue;
    }
    if (over_w >= 0 && next_w >= 0) {
      // Overflow minimum lands before the next occupied L1 bucket. The
      // jump is bounded (over_w < next_w <= old b0 + kL1Buckets), so the
      // L1 ring's absolute-window indexing stays valid across it.
      l0_base_ = over_w << kL0Bits;
      cur_slot_ = l0_base_ - 1;
      cascade_overflow_window(over_w);
      continue;
    }

    // 3. Both wheel levels drained: cascade from the overflow heap. The
    // loop has no other exit, so fail fast if the size_/ring bookkeeping is
    // ever inconsistent instead of spinning or reading an empty heap (UB).
    if (overflow_.empty()) {
      assert(false && "EventQueue::refill_due: size_ > 0 but no events anywhere");
      std::abort();
    }
    drain_overflow_into_wheel();
  }
}

std::vector<EventQueue::Scheduled> EventQueue::pending_snapshot() const {
  // Collect every buried slot — drain heap, both wheel levels, overflow,
  // or the legacy heap — then sort by the total order. O(n log n), capture
  // path only.
  std::vector<Slot> slots;
  slots.reserve(size_);
  const auto take = [&slots](const std::vector<Slot>& v) {
    slots.insert(slots.end(), v.begin(), v.end());
  };
  if (backend_ == QueueBackend::kLegacyHeap) {
    take(heap_);
  } else {
    take(due_);
    for (const auto& bucket : l0_) take(bucket);
    for (const auto& bucket : l1_) take(bucket);
    take(overflow_);
  }
  assert(slots.size() == size_);
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  });
  std::vector<Scheduled> out;
  out.reserve(slots.size());
  for (Slot& s : slots) out.push_back(Scheduled{s.t, s.seq, std::move(s.ev)});
  return out;
}

Time EventQueue::next_time() const {
  if (size_ == 0) return 0.0;
  if (backend_ == QueueBackend::kLegacyHeap) return heap_.front().t;
  return due_.front().t;
}

std::pair<Time, uint64_t> EventQueue::next_key() const {
  if (size_ == 0) {
    return {std::numeric_limits<Time>::infinity(),
            std::numeric_limits<uint64_t>::max()};
  }
  const Slot& front =
      backend_ == QueueBackend::kLegacyHeap ? heap_.front() : due_.front();
  return {front.t, front.seq};
}

EventQueue::Scheduled EventQueue::pop() {
  assert(size_ > 0);
  --size_;
  if (backend_ == QueueBackend::kLegacyHeap) return heap_pop();
  std::pop_heap(due_.begin(), due_.end(), Later{});
  Scheduled out{due_.back().t, due_.back().seq, std::move(due_.back().ev)};
  due_.pop_back();
  if (due_.empty() && size_ > 0) refill_due();
  return out;
}

}  // namespace topo::sim
