#include "sim/latency.h"

#include <algorithm>

namespace topo::sim {

namespace {
constexpr double kFloor = 1e-4;  // 0.1 ms
}

LatencyModel LatencyModel::fixed(double seconds) {
  return LatencyModel(Kind::kFixed, seconds, 0.0);
}

LatencyModel LatencyModel::uniform(double lo, double hi) {
  return LatencyModel(Kind::kUniform, lo, hi);
}

LatencyModel LatencyModel::lognormal(double median, double sigma) {
  return LatencyModel(Kind::kLogNormal, median, sigma);
}

double LatencyModel::sample(util::Rng& rng) const {
  double v = 0.0;
  switch (kind_) {
    case Kind::kFixed:
      v = a_;
      break;
    case Kind::kUniform:
      v = a_ + (b_ - a_) * rng.uniform();
      break;
    case Kind::kLogNormal:
      v = rng.lognormal(a_, b_);
      break;
  }
  return std::max(v, kFloor);
}

}  // namespace topo::sim
