#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace topo::sim {

/// Simulation clock, in seconds.
using Time = double;

/// The concrete event kinds of the simulation hot path. Everything the
/// event loop executes millions of times per campaign — message delivery,
/// fetch timeouts, mining, pool maintenance, campaign traffic — is one of
/// these, dispatched through an EventSink without any per-event heap
/// allocation. kClosure is the cold-path escape hatch (discv4 lookups,
/// fault schedules, tests): an arbitrary std::function, exactly the old
/// type-erased behaviour.
enum class EventKind : uint8_t {
  kClosure = 0,      ///< arbitrary callback (cold paths only)
  kDeliverTx,        ///< Network: deliver a full transaction (a=to, b=from, payload=tx-slab slot)
  kDeliverAnnounce,  ///< Network: deliver a hash announcement (a=to, b=from, payload=hash)
  kDeliverGetTx,     ///< Network: deliver a body request (a=to, b=from, payload=hash)
  kFetchTimeout,     ///< Node: announce-fetch window expired (payload=hash)
  kMineTick,         ///< Network: periodic mining tick (self-rescheduling)
  kBlockCommit,      ///< Network: deliver a block commit to peer a
  kMaintenance,      ///< Node: periodic pool maintenance tick (self-rescheduling)
  kRegossip,         ///< Node: periodic re-gossip tick (self-rescheduling)
  kCampaignStep,     ///< Scenario: one organic-traffic step (self-rescheduling)
  kDeliverTxBatch,   ///< Network: drain a staged per-link tx batch (a=to, b=from, payload=batch id)
};

inline constexpr size_t kNumEventKinds = 11;

/// Stable metric-suffix name of an event kind (`sim.dispatch.<name>`).
constexpr const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kClosure: return "closure";
    case EventKind::kDeliverTx: return "deliver_tx";
    case EventKind::kDeliverAnnounce: return "deliver_announce";
    case EventKind::kDeliverGetTx: return "deliver_get_tx";
    case EventKind::kFetchTimeout: return "fetch_timeout";
    case EventKind::kMineTick: return "mine_tick";
    case EventKind::kBlockCommit: return "block_commit";
    case EventKind::kMaintenance: return "maintenance";
    case EventKind::kRegossip: return "regossip";
    case EventKind::kCampaignStep: return "campaign_step";
    case EventKind::kDeliverTxBatch: return "deliver_tx_batch";
  }
  return "unknown";
}

struct Event;

/// Receiver of typed events. Implemented by p2p::Network, p2p::Node, and
/// core::Scenario; the sink pointer rides in the event, so the simulator
/// stays ignorant of the layers above it. The sink must outlive every
/// event scheduled on it (true throughout: nodes and the network own the
/// simulator's lifetime via core::Scenario).
class EventSink {
 public:
  virtual void on_event(const Event& ev) = 0;

 protected:
  ~EventSink() = default;
};

/// One scheduled event: a small tagged record. Typed kinds carry their
/// whole payload inline (two peer ids + one 64-bit word — a hash, a slab
/// slot, or unused) and cost no allocation to schedule, move, or run.
/// kClosure events own a std::function and keep the old semantics.
struct Event {
  EventKind kind = EventKind::kClosure;
  uint32_t a = 0;        ///< primary id (destination peer / node)
  uint32_t b = 0;        ///< secondary id (source peer)
  uint64_t payload = 0;  ///< hash, slab slot, or kind-specific word
  EventSink* sink = nullptr;
  std::function<void()> fn;  ///< kClosure only; empty otherwise

  static Event closure(std::function<void()> f) {
    Event ev;
    ev.kind = EventKind::kClosure;
    ev.fn = std::move(f);
    return ev;
  }

  static Event typed(EventKind k, EventSink* sink, uint32_t a = 0, uint32_t b = 0,
                     uint64_t payload = 0) {
    Event ev;
    ev.kind = k;
    ev.sink = sink;
    ev.a = a;
    ev.b = b;
    ev.payload = payload;
    return ev;
  }

  void fire() {
    if (kind == EventKind::kClosure) {
      fn();
    } else {
      sink->on_event(*this);
    }
  }
};

}  // namespace topo::sim
