#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::core {

/// The critical Ethereum services of the paper's §6.3 mainnet study
/// (anonymized there as SrvR1/SrvR2 relays and SrvM1..SrvM6 mining pools).
struct ServiceSpec {
  std::string name;
  size_t node_count = 1;
  bool is_relay = false;
  /// Biased neighbor selection: the service's backend nodes deliberately
  /// connect to other critical nodes (the paper's explanation (b)).
  /// SrvR2 is the counter-example: a vanilla node with random neighbors.
  bool prioritizes_critical = true;
  /// Whether backends of the same service peer with each other. Table 6's
  /// quirk: SrvM1 nodes do not, every other prioritizing service does.
  bool peers_with_same_service = true;
};

/// A mainnet-like world: an organic overlay plus labelled service backends.
struct MainnetWorld {
  graph::Graph topology;                 ///< node i of the graph
  std::vector<std::string> service_of;   ///< "" for ordinary nodes
  std::vector<size_t> critical_indices;  ///< nodes with a service label
};

/// The paper's discovered service census (§6.3, scaled by `scale` with a
/// minimum of 1 node per service): 48 SrvR1, 1 SrvR2, 59 SrvM1, 8 SrvM2,
/// 6 SrvM3, 2 SrvM4, 2 SrvM5, 1 SrvM6.
std::vector<ServiceSpec> paper_service_census(double scale = 1.0);

/// Builds an `n`-node mainnet-like overlay:
///  - ordinary nodes wire up with ~`base_degree` random links;
///  - each service node additionally dials every other critical node its
///    strategy prioritizes: relays with `prioritizes_critical` connect to
///    all pools and to their own kind; pools connect to pools of *other*
///    services and to prioritizing relays — reproducing the Table 6
///    pattern, including SrvM1 backends not peering with each other and
///    SrvR2 (non-prioritizing) keeping only random neighbors.
MainnetWorld build_mainnet_world(size_t n, const std::vector<ServiceSpec>& services,
                                 size_t base_degree, util::Rng& rng);

/// Simulated service discovery (§6.3 step 1): matches web3_clientVersion
/// handshake strings against the census and returns the discovered node
/// indices per service — on this substrate it recovers critical_indices.
std::vector<size_t> discover_service_nodes(const MainnetWorld& world, const std::string& service);

}  // namespace topo::core
