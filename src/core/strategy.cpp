#include "core/strategy.h"

#include <algorithm>
#include <limits>

#include "core/gas_estimator.h"
#include "core/toposhot.h"
#include "p2p/node.h"

namespace topo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// TxProbe pacing: settle time after arming the blocking windows, and the
/// gap separating consecutive pairs (each pair uses a fresh marker hash,
/// so the gap only drains in-flight traffic, not blocking state).
constexpr double kTxProbeArmingWait = 0.5;
constexpr double kTxProbeInterPairGap = 0.5;

/// DEthna classifier: a sink counts as adjacent when its echo trails the
/// earliest observed echo of the marker by at most this many link-latency
/// medians (one extra hop costs one more latency draw; the margin absorbs
/// the lognormal spread of the three-link echo paths).
constexpr double kDethnaGapFactor = 1.2;

/// Markers ride far below the market median so they are never mined (zero
/// gas cost) and never evict resident transactions.
eth::Wei below_market_price(const mempool::Mempool& view) {
  const eth::Wei y = estimate_price_Y(view, eth::gwei(0.1));
  return std::max<eth::Wei>(1, y / 8);
}

/// Collapses a single-edge ParallelResult into the serial-result shape.
OneLinkResult one_link_from_single_edge(const ParallelResult& r) {
  OneLinkResult o;
  o.connected = r.connected.at(0);
  o.verdict = r.verdicts.at(0);
  o.cause = r.causes.at(0);
  o.attempts = r.attempts.at(0);
  o.txa_planted_on_a = r.txa_planted.at(0);
  o.started_at = r.started_at;
  o.finished_at = r.finished_at;
  o.txs_sent = r.txs_sent;
  return o;
}

void tally_verdicts(const ProbeObs& obs, const ParallelResult& res) {
  if (!obs.enabled()) return;
  for (Verdict v : res.verdicts) {
    switch (v) {
      case Verdict::kConnected: obs.verdict_connected->inc(); break;
      case Verdict::kNegative: obs.verdict_negative->inc(); break;
      case Verdict::kInconclusive: obs.verdict_inconclusive->inc(); break;
    }
  }
}

}  // namespace

const char* strategy_name(StrategyKind k) {
  switch (k) {
    case StrategyKind::kToposhot: return "toposhot";
    case StrategyKind::kDethna: return "dethna";
    case StrategyKind::kTxprobe: return "txprobe";
  }
  return "toposhot";
}

bool strategy_from_name(const std::string& name, StrategyKind& out) {
  for (size_t k = 0; k < kNumStrategies; ++k) {
    const auto kind = static_cast<StrategyKind>(k);
    if (name == strategy_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void apply_propagation_mode(Scenario& sc, PropagationMode mode) {
  for (p2p::PeerId id : sc.targets()) {
    p2p::NodeConfig& cfg = sc.net().node(id).mutable_config();
    cfg.announce_only = mode == PropagationMode::kAnnounceOnly;
    cfg.use_announcements = mode == PropagationMode::kPushAndAnnounce;
  }
}

// ---------------------------------------------------------------------------
// ToposhotStrategy

ParallelMeasurement ToposhotStrategy::make_parallel() {
  ParallelMeasurement par(net_, m_, accounts_, factory_, config_);
  par.set_cost_tracker(cost_);
  par.set_metrics(metrics_);
  par.set_tracer(tracer_);
  if (!flood_overrides_.empty()) par.set_flood_overrides(flood_overrides_);
  return par;
}

OneLinkResult ToposhotStrategy::measure_pair(p2p::PeerId a, p2p::PeerId b) {
  OneLinkMeasurement one(net_, m_, accounts_, factory_, config_);
  one.set_cost_tracker(cost_);
  one.set_metrics(metrics_);
  one.set_tracer(tracer_);
  return one.measure(a, b);
}

ParallelResult ToposhotStrategy::measure_batch(const std::vector<p2p::PeerId>& sources,
                                               const std::vector<p2p::PeerId>& sinks,
                                               const std::vector<ParallelEdge>& edges) {
  ParallelMeasurement par = make_parallel();
  return par.measure(sources, sinks, edges);
}

ParallelResult ToposhotStrategy::remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                                 const std::vector<p2p::PeerId>& sinks,
                                                 const std::vector<ParallelEdge>& edges) {
  ParallelMeasurement par = make_parallel();
  return par.remeasure(sources, sinks, edges);
}

// ---------------------------------------------------------------------------
// DethnaStrategy

void DethnaStrategy::prepare(Scenario& sc) {
  link_latency_hint_ = sc.options().latency_median;
}

double DethnaStrategy::announce_gap() const {
  return announce_gap_override_ > 0.0 ? announce_gap_override_
                                      : link_latency_hint_ * kDethnaGapFactor;
}

eth::Wei DethnaStrategy::marker_price() const { return below_market_price(m_.view()); }

ParallelResult DethnaStrategy::measure_once(const std::vector<p2p::PeerId>& sources,
                                            const std::vector<p2p::PeerId>& sinks,
                                            const std::vector<ParallelEdge>& edges) {
  ParallelResult res;
  const size_t n = edges.size();
  res.connected.assign(n, false);
  res.txa_planted.assign(n, false);
  res.verdicts.assign(n, Verdict::kInconclusive);
  res.attempts.assign(n, 1);
  res.causes.assign(n, obs::ProbeCause::kNone);
  res.started_at = now();
  const uint64_t txs_before = m_.txs_sent();

  // One marker per source, all injected up front (markers have distinct
  // hashes, so their gossip never interferes), then one shared detect
  // window covering every echo path.
  struct SourceProbe {
    eth::TxHash hash = 0;
    double sent_at = 0.0;
    bool offline = false;
  };
  std::vector<SourceProbe> probes(sources.size());
  double last_departure = now();
  for (size_t s = 0; s < sources.size(); ++s) {
    if (net_.node(sources[s]).unresponsive()) {
      probes[s].offline = true;
      continue;
    }
    const eth::Address acct = accounts_.create_one();
    if (cost_ != nullptr) cost_->track_account(acct);
    const eth::Transaction marker =
        craft_tx(factory_, config_, acct, accounts_.allocate_nonce(acct), marker_price());
    probes[s].hash = marker.hash();
    probes[s].sent_at = m_.send_to(sources[s], marker);
    last_departure = probes[s].sent_at;
  }
  net_.simulator().run_until(last_departure + config_.detect_wait);

  const double gap = announce_gap();
  std::vector<std::vector<std::pair<p2p::PeerId, double>>> recs(sources.size());
  std::vector<double> first_echo(sources.size(), kInf);
  std::vector<bool> planted(sources.size(), false);
  for (size_t s = 0; s < sources.size(); ++s) {
    if (probes[s].offline) continue;
    recs[s] = m_.receptions(probes[s].hash);
    for (const auto& [peer, t] : recs[s]) {
      if (t >= probes[s].sent_at) first_echo[s] = std::min(first_echo[s], t);
    }
    planted[s] = net_.node(sources[s]).pool().contains(probes[s].hash);
  }

  for (size_t i = 0; i < n; ++i) {
    const size_t s = edges[i].source;
    const p2p::PeerId sink = sinks[edges[i].sink];
    if (probes[s].offline || net_.node(sink).unresponsive()) {
      res.causes[i] = obs::ProbeCause::kNodeOffline;
      continue;
    }
    res.txa_planted[i] = planted[s];
    if (!planted[s] || first_echo[s] == kInf) {
      // The marker never took on the source (or never propagated at all):
      // nothing was learned about this pair.
      res.causes[i] = obs::ProbeCause::kTxANotPlanted;
      continue;
    }
    double sink_echo = kInf;
    for (const auto& [peer, t] : recs[s]) {
      if (peer == sink && t >= probes[s].sent_at) sink_echo = std::min(sink_echo, t);
    }
    if (sink_echo == kInf) {
      // The sink never echoed a marker the rest of the network carried —
      // its forwarding path is broken, so adjacency is unknowable from M.
      res.causes[i] = obs::ProbeCause::kPayloadNotPlanted;
    } else if (sink_echo - first_echo[s] <= gap) {
      res.connected[i] = true;
      res.verdicts[i] = Verdict::kConnected;
    } else {
      res.verdicts[i] = Verdict::kNegative;
      res.causes[i] = obs::ProbeCause::kTxANeverReturned;
    }
  }
  res.finished_at = now();
  res.txs_sent = m_.txs_sent() - txs_before;
  if (obs_.enabled()) obs_.parallel_runs->inc();
  return res;
}

ParallelResult DethnaStrategy::measure_batch(const std::vector<p2p::PeerId>& sources,
                                             const std::vector<p2p::PeerId>& sinks,
                                             const std::vector<ParallelEdge>& edges) {
  const size_t reps = std::max<size_t>(1, config_.repetitions);
  ParallelResult agg = measure_once(sources, sinks, edges);
  std::vector<uint32_t> votes(edges.size(), 0);
  for (size_t i = 0; i < edges.size(); ++i) votes[i] = agg.connected[i] ? 1 : 0;
  for (size_t rep = 1; rep < reps; ++rep) {
    const ParallelResult once = measure_once(sources, sinks, edges);
    for (size_t i = 0; i < edges.size(); ++i) {
      agg.attempts[i] += once.attempts[i];
      if (once.connected[i]) ++votes[i];
      if (once.txa_planted[i]) agg.txa_planted[i] = true;
      if (!once.connected[i]) {
        // Remember the latest non-positive outcome: it becomes the final
        // verdict when the majority rules the pair not-connected.
        agg.verdicts[i] = once.verdicts[i];
        agg.causes[i] = once.causes[i];
      }
    }
    agg.txs_sent += once.txs_sent;
    agg.finished_at = once.finished_at;
  }
  // Majority vote across the repetitions (strict: reps/2 + 1), unlike the
  // TopoShot union — timing inference errs in both directions.
  const uint32_t needed = static_cast<uint32_t>(reps / 2 + 1);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (votes[i] >= needed) {
      agg.connected[i] = true;
      agg.verdicts[i] = Verdict::kConnected;
      agg.causes[i] = obs::ProbeCause::kNone;
    } else {
      agg.connected[i] = false;
      if (agg.verdicts[i] == Verdict::kConnected) {
        // Minority-positive with no stored negative outcome cannot happen
        // (a non-positive pass always overwrote the verdict), but keep the
        // invariant airtight: an undecided majority is a clean negative.
        agg.verdicts[i] = Verdict::kNegative;
        agg.causes[i] = obs::ProbeCause::kTxANeverReturned;
      }
    }
  }
  tally_verdicts(obs_, agg);
  return agg;
}

ParallelResult DethnaStrategy::remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                               const std::vector<p2p::PeerId>& sinks,
                                               const std::vector<ParallelEdge>& edges) {
  if (obs_.enabled()) obs_.remeasures->inc(edges.size());
  return measure_batch(sources, sinks, edges);
}

OneLinkResult DethnaStrategy::measure_pair(p2p::PeerId a, p2p::PeerId b) {
  const std::vector<p2p::PeerId> sources{a}, sinks{b};
  const std::vector<ParallelEdge> edges{{0, 0}};
  return one_link_from_single_edge(measure_batch(sources, sinks, edges));
}

// ---------------------------------------------------------------------------
// TxProbeStrategy

void TxProbeStrategy::prepare(Scenario& sc) {
  if (has_propagation_override_) apply_propagation_mode(sc, propagation_override_);
}

eth::Wei TxProbeStrategy::marker_price() const { return below_market_price(m_.view()); }

ParallelResult TxProbeStrategy::measure_once(const std::vector<p2p::PeerId>& sources,
                                             const std::vector<p2p::PeerId>& sinks,
                                             const std::vector<ParallelEdge>& edges) {
  ParallelResult res;
  const size_t n = edges.size();
  res.connected.assign(n, false);
  res.txa_planted.assign(n, false);
  res.verdicts.assign(n, Verdict::kInconclusive);
  res.attempts.assign(n, 1);
  res.causes.assign(n, obs::ProbeCause::kNone);
  res.started_at = now();
  const uint64_t txs_before = m_.txs_sent();
  auto& sim = net_.simulator();

  // Strictly serial pairs: the blocking windows of pair i must be armed
  // against *that* pair's marker before it is injected, and the isolation
  // claim is per-marker anyway (distinct hashes per pair).
  for (size_t i = 0; i < n; ++i) {
    const p2p::PeerId a = sources[edges[i].source];
    const p2p::PeerId b = sinks[edges[i].sink];
    if (net_.node(a).unresponsive() || net_.node(b).unresponsive()) {
      res.causes[i] = obs::ProbeCause::kNodeOffline;
      continue;
    }
    const eth::Address acct = accounts_.create_one();
    if (cost_ != nullptr) cost_->track_account(acct);
    const eth::Transaction marker =
        craft_tx(factory_, config_, acct, accounts_.allocate_nonce(acct), marker_price());

    // Arm every other node's per-hash blocking window (M never serves the
    // body, so a blocked node learns nothing until the window expires).
    for (p2p::PeerId w : net_.regular_nodes()) {
      if (w == a || w == b) continue;
      net_.send_announce(m_.id(), w, marker.hash());
    }
    sim.run_until(sim.now() + kTxProbeArmingWait);

    const double sent_at = m_.send_to(a, marker);
    sim.run_until(sent_at + config_.detect_wait);

    res.txa_planted[i] = net_.node(a).pool().contains(marker.hash());
    if (m_.received_from_since(marker.hash(), b, sent_at)) {
      res.connected[i] = true;
      res.verdicts[i] = Verdict::kConnected;
    } else if (!res.txa_planted[i]) {
      res.causes[i] = obs::ProbeCause::kTxANotPlanted;
    } else {
      res.verdicts[i] = Verdict::kNegative;
      res.causes[i] = obs::ProbeCause::kTxANeverReturned;
    }
    sim.run_until(sim.now() + kTxProbeInterPairGap);
  }
  res.finished_at = now();
  res.txs_sent = m_.txs_sent() - txs_before;
  if (obs_.enabled()) obs_.parallel_runs->inc();
  return res;
}

ParallelResult TxProbeStrategy::measure_batch(const std::vector<p2p::PeerId>& sources,
                                              const std::vector<p2p::PeerId>& sinks,
                                              const std::vector<ParallelEdge>& edges) {
  const size_t reps = std::max<size_t>(1, config_.repetitions);
  ParallelResult agg = measure_once(sources, sinks, edges);
  for (size_t rep = 1; rep < reps; ++rep) {
    const bool all_positive =
        std::all_of(agg.connected.begin(), agg.connected.end(), [](bool c) { return c; });
    if (all_positive) break;
    const ParallelResult once = measure_once(sources, sinks, edges);
    // Union of positives across repetitions, the original protocol's rule.
    for (size_t i = 0; i < edges.size(); ++i) {
      agg.attempts[i] += once.attempts[i];
      if (once.txa_planted[i]) agg.txa_planted[i] = true;
      if (!agg.connected[i]) {
        agg.connected[i] = once.connected[i];
        agg.verdicts[i] = once.verdicts[i];
        agg.causes[i] = once.causes[i];
      }
    }
    agg.txs_sent += once.txs_sent;
    agg.finished_at = once.finished_at;
  }
  tally_verdicts(obs_, agg);
  return agg;
}

ParallelResult TxProbeStrategy::remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                                const std::vector<p2p::PeerId>& sinks,
                                                const std::vector<ParallelEdge>& edges) {
  if (obs_.enabled()) obs_.remeasures->inc(edges.size());
  return measure_batch(sources, sinks, edges);
}

OneLinkResult TxProbeStrategy::measure_pair(p2p::PeerId a, p2p::PeerId b) {
  const std::vector<p2p::PeerId> sources{a}, sinks{b};
  const std::vector<ParallelEdge> edges{{0, 0}};
  return one_link_from_single_edge(measure_batch(sources, sinks, edges));
}

// ---------------------------------------------------------------------------
// Factories

std::unique_ptr<MeasurementStrategy> make_strategy(StrategyKind kind, p2p::Network& net,
                                                   p2p::MeasurementNode& m,
                                                   eth::AccountManager& accounts,
                                                   eth::TxFactory& factory,
                                                   MeasureConfig config) {
  switch (kind) {
    case StrategyKind::kDethna:
      return std::make_unique<DethnaStrategy>(net, m, accounts, factory, config);
    case StrategyKind::kTxprobe:
      return std::make_unique<TxProbeStrategy>(net, m, accounts, factory, config);
    case StrategyKind::kToposhot:
      break;
  }
  return std::make_unique<ToposhotStrategy>(net, m, accounts, factory, config);
}

namespace {

/// See wrap_parallel_measurement.
class BorrowedParallelStrategy final : public MeasurementStrategy {
 public:
  explicit BorrowedParallelStrategy(ParallelMeasurement& par) : par_(par) {}

  StrategyKind kind() const override { return StrategyKind::kToposhot; }
  OneLinkResult measure_pair(p2p::PeerId a, p2p::PeerId b) override {
    const std::vector<p2p::PeerId> sources{a}, sinks{b};
    const std::vector<ParallelEdge> edges{{0, 0}};
    return one_link_from_single_edge(par_.measure(sources, sinks, edges));
  }
  ParallelResult measure_batch(const std::vector<p2p::PeerId>& sources,
                               const std::vector<p2p::PeerId>& sinks,
                               const std::vector<ParallelEdge>& edges) override {
    return par_.measure(sources, sinks, edges);
  }
  ParallelResult remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                 const std::vector<p2p::PeerId>& sinks,
                                 const std::vector<ParallelEdge>& edges) override {
    return par_.remeasure(sources, sinks, edges);
  }
  void set_flood_overrides(std::unordered_map<p2p::PeerId, size_t> overrides) override {
    par_.set_flood_overrides(std::move(overrides));
  }
  MeasureConfig& config() override { return par_.config(); }
  const MeasureConfig& config() const override { return par_.config(); }
  double now() const override { return par_.now(); }
  obs::SpanTracer* tracer() const override { return par_.tracer(); }
  void set_cost_tracker(CostTracker* tracker) override { par_.set_cost_tracker(tracker); }
  void set_metrics(obs::MetricsRegistry* reg) override { par_.set_metrics(reg); }
  void set_tracer(obs::SpanTracer* tracer) override { par_.set_tracer(tracer); }

 private:
  ParallelMeasurement& par_;
};

}  // namespace

std::unique_ptr<MeasurementStrategy> wrap_parallel_measurement(ParallelMeasurement& par) {
  return std::make_unique<BorrowedParallelStrategy>(par);
}

}  // namespace topo::core
