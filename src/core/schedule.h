#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "core/strategy.h"
#include "graph/graph.h"
#include "obs/span.h"

namespace topo::core {

/// One measurePar invocation of the two-round schedule: node values are
/// indices into the target list.
struct IterationPlan {
  std::vector<size_t> sources;
  std::vector<size_t> sinks;
  std::vector<std::pair<size_t, size_t>> pairs;  ///< (source idx-in-targets, sink idx-in-targets)
};

/// The §5.3.2 parallel schedule over n targets with group size K:
///  - round 1: n/K iterations; iteration i measures group i against every
///    node in later groups (cross-group pairs each covered exactly once);
///  - round 2: ceil(log2 K) iterations; each halves every remaining segment
///    and measures first half x second half (intra-group pairs).
/// Every unordered pair is covered exactly once; iteration count is
/// n/K + log2(K).
std::vector<IterationPlan> make_schedule(size_t n, size_t group_k);

/// One pair that entered the inconclusive re-measurement path:
/// target-index endpoints plus the total measure_once passes it consumed
/// (primary sweep included).
struct RetriedPair {
  size_t u = 0;
  size_t v = 0;
  uint32_t attempts = 0;

  /// Latest known failure cause (updated as retry rounds re-measure the
  /// pair); drives the diagnostics bookkeeping, not serialized in the
  /// fault annex.
  obs::ProbeCause cause = obs::ProbeCause::kNone;

  friend bool operator==(const RetriedPair&, const RetriedPair&) = default;
};

/// Fault/resilience annex of a measurement report. The first six fields
/// echo the injected-fault configuration (zeros when faults are off but
/// retries are on); the tallies record what the driver actually did.
/// Kept as plain data here so topo::core stays independent of topo::fault.
struct FaultReport {
  double drop_tx = 0.0;
  double drop_announce = 0.0;
  double drop_get_tx = 0.0;
  double spike_prob = 0.0;
  double spike_mult = 1.0;
  double churn_rate = 0.0;
  size_t retries = 0;          ///< configured inconclusive_retries
  uint64_t attempts = 0;       ///< measure_once passes summed over all pairs
  uint64_t inconclusive = 0;   ///< pairs still inconclusive after retries
  std::vector<RetriedPair> retried;  ///< pairs that entered the retry path

  friend bool operator==(const FaultReport&, const FaultReport&) = default;
};

/// One pair left inconclusive at the end of a measurement, with the cause
/// that was never cleared (target-index endpoints).
struct PairDiagnostic {
  size_t u = 0;
  size_t v = 0;
  obs::ProbeCause cause = obs::ProbeCause::kNone;

  friend bool operator==(const PairDiagnostic&, const PairDiagnostic&) = default;
};

/// Per-verdict diagnostics annex (MeasureConfig::collect_diagnostics): the
/// machine-readable explanation behind every verdict of a network sweep.
/// Indexed by obs::ProbeCause. Invariant: the `causes` histogram sums to
/// pairs_tested (every pair lands in exactly one final-cause bucket —
/// kNone when connected, kTxANeverReturned on a clean negative).
struct DiagnosticsReport {
  /// Final cause per pair, histogrammed (post-retry state).
  std::array<uint64_t, obs::kNumProbeCauses> causes{};

  /// Causes the retry pass cleared: bucket = the cause the pair had *before*
  /// the retry round that decided it. The per-cause recall ledger
  /// bench/fault_recall breaks down.
  std::array<uint64_t, obs::kNumProbeCauses> cleared{};

  /// Pairs still inconclusive after retries, sorted by (u, v).
  std::vector<PairDiagnostic> inconclusive;

  friend bool operator==(const DiagnosticsReport&, const DiagnosticsReport&) = default;
};

/// Result of measuring a whole network.
struct NetworkMeasurementReport {
  graph::Graph measured;  ///< node i = targets[i]
  size_t iterations = 0;
  size_t pairs_tested = 0;
  double sim_seconds = 0.0;
  uint64_t txs_sent = 0;

  /// Which measurement strategy produced the report. kToposhot (the
  /// default) is omitted from the serialized form, so default-strategy
  /// reports stay byte-identical to pre-seam builds.
  StrategyKind strategy = StrategyKind::kToposhot;

  /// Present when fault injection or inconclusive retries were configured;
  /// absent reports serialize byte-identically to pre-fault builds.
  std::optional<FaultReport> fault;

  /// Present when MeasureConfig::collect_diagnostics was set; same
  /// byte-identity policy as the fault annex.
  std::optional<DiagnosticsReport> diagnostics;
};

/// One slot-budgeted unit of campaign work: a deduplicated source/sink set
/// plus candidate edges, everything in target-index space so the batch can
/// be replayed against any replica of the measurement world (the unit the
/// topo::exec worker pool shards across threads).
struct MeasurementBatch {
  std::vector<size_t> sources;  ///< target indices
  std::vector<size_t> sinks;    ///< target indices
  std::vector<ParallelEdge> edges;  ///< indices into sources/sinks above
  std::vector<std::pair<size_t, size_t>> pairs;  ///< (source, sink) target indices, edge order
};

/// The §5.3.2 slot budget: at most 2Z/5 concurrent candidate edges, since
/// every concurrent edge pins one txC slot in every participating pool.
inline size_t slot_budget(size_t flood_z) { return std::max<size_t>(1, flood_z * 2 / 5); }

/// Expands the two-round schedule into slot-budgeted batches. Pure function
/// of (n, group_k, budget): the sequential driver and the sharded campaign
/// runner both consume it, so their pair coverage is identical by
/// construction (every unordered pair appears in exactly one batch).
std::vector<MeasurementBatch> make_batches(size_t n, size_t group_k, size_t budget);

/// Expands an *explicit* pair list into slot-budgeted batches, in the given
/// order (the caller's priority order is preserved; pairs land in batches
/// of at most `budget` edges). Unlike the §5.3.2 schedule — whose disjoint
/// groups rule this out by construction — an arbitrary pair list can ask
/// one node to be a probe source and a flood sink concurrently, which
/// wrecks both probes; a batch is closed early whenever the next pair
/// would create such a role conflict. This is the incremental-
/// re-measurement entry: the topology monitor re-probes only the
/// stale/uncertain subset of pairs per epoch instead of re-sweeping the
/// full O(n²) schedule. Pure function of (pairs, budget), so coverage is
/// independent of who runs the batches.
std::vector<MeasurementBatch> make_batches_for_pairs(
    const std::vector<std::pair<size_t, size_t>>& pairs, size_t budget);

/// Runs one batch through `strat` (mapping target indices through `targets`)
/// and folds the outcome into `report`: iteration/pair/tx tallies plus one
/// measured edge per positive verdict; the diagnostics annex (when present)
/// absorbs every edge's final cause. sim_seconds is left to the caller,
/// which knows which simulator clock the batch ran on. When `inconclusive`
/// is non-null, every pair the batch left undecided is appended to it
/// (endpoints, attempts consumed so far, last cause) for a later
/// run_retry_pass. `batch_id` is the batch's index in the shard's plan — it
/// keys the stable span ids (obs::batch_span_id / pair_span_id) when
/// `strat` carries a tracer, so ids never depend on execution order.
void run_batch(MeasurementStrategy& strat, const std::vector<p2p::PeerId>& targets,
               const MeasurementBatch& batch, size_t batch_id,
               NetworkMeasurementReport& report,
               std::vector<RetriedPair>* inconclusive = nullptr);

/// Bounded re-measurement of the pairs the primary sweep left inconclusive,
/// `rounds` times at most, re-batching the still-undecided subset under the
/// same slot `budget` each round. Runs strictly *after* the whole sweep:
/// the primary trajectory (messages, RNG draws, sim clock) is exactly the
/// retries-off run, so re-measurement can only add edges to
/// `report.measured`, never perturb already-measured ones. Newly positive
/// pairs are added to the report; when the fault annex is present it
/// absorbs the extra attempts, the per-pair retry history, and the count of
/// pairs still inconclusive at the end (with rounds == 0 that is just the
/// primary inconclusive tally). The diagnostics annex (when present) moves
/// re-measured pairs into their final cause bucket, tallies what each
/// deciding round cleared, and flushes the still-inconclusive remainder;
/// with a tracer attached each round records a kRetryRound span and each
/// decided pair a kRetryClear instant carrying the cleared cause.
void run_retry_pass(MeasurementStrategy& strat, const std::vector<p2p::PeerId>& targets,
                    std::vector<RetriedPair> inconclusive, size_t budget, size_t rounds,
                    NetworkMeasurementReport& report);

/// Drives the full schedule through a MeasurementStrategy.
///
/// `max_edges_per_call` enforces the paper's mempool slot budget (§5.3.2:
/// "we only use no more than 2000 transaction slots" of Geth's 5120): an
/// iteration whose candidate-edge count exceeds the budget is split into
/// sub-batches, since every concurrent edge pins one txC slot in every
/// pool. 0 derives the budget from the measurement config (2/5 of Z).
class NetworkMeasurement {
 public:
  explicit NetworkMeasurement(MeasurementStrategy& strat, size_t max_edges_per_call = 0)
      : strat_(strat), max_edges_(max_edges_per_call) {}

  /// Legacy entry: drives a caller-owned ParallelMeasurement through the
  /// seam (wrap_parallel_measurement), byte-identical to the pre-seam
  /// direct dispatch. Prefer the strategy constructor.
  explicit NetworkMeasurement(ParallelMeasurement& par, size_t max_edges_per_call = 0)
      : owned_(wrap_parallel_measurement(par)), strat_(*owned_), max_edges_(max_edges_per_call) {}

  NetworkMeasurementReport measure_all(p2p::Network& net,
                                       const std::vector<p2p::PeerId>& targets, size_t group_k);

 private:
  std::unique_ptr<MeasurementStrategy> owned_;  ///< only set by the legacy ctor
  MeasurementStrategy& strat_;
  size_t max_edges_;
};

}  // namespace topo::core
