#include "core/validator.h"

namespace topo::core {

void PrecisionRecall::merge(const PrecisionRecall& o) {
  true_positive += o.true_positive;
  false_positive += o.false_positive;
  false_negative += o.false_negative;
  true_negative += o.true_negative;
}

PrecisionRecall compare_graphs(const graph::Graph& truth, const graph::Graph& measured) {
  PrecisionRecall pr;
  const size_t n = truth.num_nodes();
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      const bool real = truth.has_edge(u, v);
      const bool got = measured.has_edge(u, v);
      if (real && got) ++pr.true_positive;
      else if (!real && got) ++pr.false_positive;
      else if (real && !got) ++pr.false_negative;
      else ++pr.true_negative;
    }
  }
  return pr;
}

PrecisionRecall compare_pairs(const graph::Graph& truth,
                              const std::vector<std::pair<graph::NodeId, graph::NodeId>>& tested,
                              const std::vector<bool>& positives) {
  PrecisionRecall pr;
  for (size_t i = 0; i < tested.size(); ++i) {
    const bool real = truth.has_edge(tested[i].first, tested[i].second);
    const bool got = i < positives.size() && positives[i];
    if (real && got) ++pr.true_positive;
    else if (!real && got) ++pr.false_positive;
    else if (real && !got) ++pr.false_negative;
    else ++pr.true_negative;
  }
  return pr;
}

}  // namespace topo::core
