#pragma once

#include "core/config.h"
#include "core/cost.h"
#include "core/probe_obs.h"
#include "eth/account.h"
#include "eth/transaction.h"
#include "obs/span.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"

namespace topo::core {

/// Outcome of one measureOneLink run, with the paper's validation
/// diagnostics (the eth_getTransactionByHash-style checks of §6.1).
struct OneLinkResult {
  bool connected = false;  ///< txA observed arriving from B

  /// Outcome class of the final attempt (kConnected once any attempt was
  /// positive). Inconclusive = the probe preconditions below failed, so
  /// txA was neither observed nor refuted.
  Verdict verdict = Verdict::kNegative;

  /// Which step of the probe's causal chain broke on the final attempt
  /// (kNone when connected; kTxANeverReturned on a clean negative). The
  /// machine-readable explanation behind the verdict.
  obs::ProbeCause cause = obs::ProbeCause::kNone;

  /// measure_once passes taken (repetitions + inconclusive retries).
  uint32_t attempts = 0;

  /// How many of those were inconclusive re-measurements (beyond the
  /// configured repetition sweep).
  uint32_t remeasured = 0;

  // Diagnostics read from simulated-RPC ground truth:
  bool txc_evicted_on_a = false;
  bool txc_evicted_on_b = false;
  bool txa_planted_on_a = false;
  bool txb_planted_on_b = false;

  eth::TxHash txa_hash = 0;
  eth::TxHash txb_hash = 0;
  eth::TxHash txc_hash = 0;

  double started_at = 0.0;
  double finished_at = 0.0;
  uint64_t txs_sent = 0;
};

/// The serial measurement primitive measureOneLink(A, B, X, Y, Z, R, U) of
/// paper §5.2, driven synchronously against the event simulator:
///
///   1. send txC (price Y) to A; run the simulator X seconds so it floods;
///   2. flood B with Z futures at (1+R)Y from ceil(Z/U) accounts, wait for
///      the target's deferred queue truncation, then send txB at (1-R/2)Y;
///   3. the same for A, then send txA at (1+R/2)Y;
///   4. run the detect window and report whether M received txA *from B*.
///
/// The call advances the shared simulator; concurrent activity (mining,
/// background traffic, re-gossip) keeps running during the measurement.
///
/// Implementation detail of the strategy seam: this is the raw TopoShot
/// probe that core::ToposhotStrategy drives. Constructing it directly
/// bypasses strategy selection — new code should go through
/// core::MeasurementSession (or core::MeasurementStrategy for batch
/// drivers) instead.
class OneLinkMeasurement {
 public:
  OneLinkMeasurement(p2p::Network& net, p2p::MeasurementNode& m, eth::AccountManager& accounts,
                     eth::TxFactory& factory, MeasureConfig config);

  /// Measures the A-B link once. Applies config.repetitions internally
  /// (union of positives).
  OneLinkResult measure(p2p::PeerId a, p2p::PeerId b);

  /// Registered measurement accounts land here for cost accounting.
  void set_cost_tracker(CostTracker* tracker) { cost_ = tracker; }

  /// Wires per-phase probe timing (`probe.*`, keyed to sim seconds) into
  /// `reg`; null disables. The registry must outlive the measurement.
  void set_metrics(obs::MetricsRegistry* reg) {
    obs_ = reg != nullptr ? ProbeObs::wire(*reg) : ProbeObs{};
  }

  /// Attaches a causal span tracer (null disables): each measure() call
  /// records one kPair span with nested per-phase spans. The tracer must
  /// outlive the measurement.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  obs::SpanTracer* tracer() const { return tracer_; }

  const MeasureConfig& config() const { return config_; }
  MeasureConfig& config() { return config_; }

 private:
  OneLinkResult measure_once(p2p::PeerId a, p2p::PeerId b);

  /// Builds the Z-future flood (fresh accounts, nonce gap at 0).
  std::vector<eth::Transaction> make_flood(const MeasureConfig& cfg);

  p2p::Network& net_;
  p2p::MeasurementNode& m_;
  eth::AccountManager& accounts_;
  eth::TxFactory& factory_;
  MeasureConfig config_;
  CostTracker* cost_ = nullptr;
  ProbeObs obs_;
  obs::SpanTracer* tracer_ = nullptr;
};

}  // namespace topo::core
