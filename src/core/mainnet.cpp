#include "core/mainnet.h"

#include <algorithm>

namespace topo::core {

std::vector<ServiceSpec> paper_service_census(double scale) {
  auto scaled = [&](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(n) * scale));
  };
  std::vector<ServiceSpec> services;
  services.push_back({"SrvR1", scaled(48), true, true, true});
  services.push_back({"SrvR2", 1, true, false, false});
  services.push_back({"SrvM1", scaled(59), false, true, false});  // no self-peering
  services.push_back({"SrvM2", scaled(8), false, true, true});
  services.push_back({"SrvM3", scaled(6), false, true, true});
  services.push_back({"SrvM4", scaled(2), false, true, true});
  services.push_back({"SrvM5", scaled(2), false, true, true});
  services.push_back({"SrvM6", 1, false, true, true});
  return services;
}

MainnetWorld build_mainnet_world(size_t n, const std::vector<ServiceSpec>& services,
                                 size_t base_degree, util::Rng& rng) {
  MainnetWorld world;
  size_t critical_total = 0;
  for (const auto& s : services) critical_total += s.node_count;
  n = std::max(n, critical_total + 2);

  world.topology = graph::Graph(n);
  world.service_of.assign(n, "");

  // Assign service labels to the first nodes, in census order.
  std::vector<const ServiceSpec*> spec_of(n, nullptr);
  {
    size_t next = 0;
    for (const auto& s : services) {
      for (size_t i = 0; i < s.node_count; ++i) {
        world.service_of[next] = s.name;
        spec_of[next] = &s;
        world.critical_indices.push_back(next);
        ++next;
      }
    }
  }

  // Organic substrate: every node (critical ones included) makes
  // ~base_degree random links, like a vanilla client's neighbor selection.
  const size_t random_links = n * base_degree / 2;
  size_t made = 0, guard = 0;
  while (made < random_links && guard++ < 50 * random_links) {
    const auto u = static_cast<graph::NodeId>(rng.index(n));
    const auto v = static_cast<graph::NodeId>(rng.index(n));
    if (world.topology.add_edge(u, v)) ++made;
  }

  // Biased overlay: prioritizing services dial other critical nodes.
  for (size_t i : world.critical_indices) {
    const ServiceSpec& si = *spec_of[i];
    if (!si.prioritizes_critical) continue;
    for (size_t j : world.critical_indices) {
      if (j <= i) continue;
      const ServiceSpec& sj = *spec_of[j];
      if (!sj.prioritizes_critical) continue;  // SrvR2 declines
      const bool same = (&si == &sj);
      if (same && !si.peers_with_same_service) continue;
      world.topology.add_edge(static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j));
    }
  }
  return world;
}

std::vector<size_t> discover_service_nodes(const MainnetWorld& world,
                                           const std::string& service) {
  // Models §6.3's discovery: the codename revealed by the service's
  // web3_clientVersion RPC is matched against handshake strings collected
  // by a supernode; on this substrate the label is the codename.
  std::vector<size_t> out;
  for (size_t i = 0; i < world.service_of.size(); ++i) {
    if (world.service_of[i] == service) out.push_back(i);
  }
  return out;
}

}  // namespace topo::core
