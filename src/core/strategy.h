#pragma once

// The measurement-strategy seam: every topology-inference technique the
// repo can run — TopoShot's replacement-price ladder, DEthna's marked
// low-fee transactions, TxProbe's announcement blocking — implements the
// same per-pair / per-batch probe lifecycle, so the schedule drivers
// (core::run_batch / run_retry_pass / NetworkMeasurement), the session
// facade (core::MeasurementSession), and the sharded campaign runner
// (exec::run_sharded_campaign) dispatch through one interface and every
// strategy inherits batching, retries, diagnostics, tracing, and report
// serialization for free.
//
// Ownership contract (see ARCHITECTURE.md "The strategy seam"):
//  - a strategy BORROWS the measurement world (network, measurement node,
//    accounts, tx factory) and advances the shared simulator from inside
//    measure_* — exactly like the raw drivers it replaces;
//  - prepare(Scenario&) is the only place a strategy may mutate scenario
//    state (node configs, calibration reads); it runs once per replica, on
//    the warmed world (after background seeding, before any measurement),
//    and must be deterministic. Campaigns fork replicas from a shared
//    warmed snapshot, so preparation must happen after the fork — never in
//    the shared prefix other replicas inherit;
//  - measure_* may create accounts and send transactions but must never
//    reconfigure nodes, so batches stay replayable on any world replica.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/cost.h"
#include "core/one_link.h"
#include "core/parallel.h"
#include "core/probe_obs.h"
#include "obs/span.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"

namespace topo::core {

class Scenario;

/// The strategies the seam can instantiate. kToposhot is the default and
/// the serialization baseline: reports omit the "strategy" field for it,
/// so default-strategy artifacts stay byte-identical to pre-seam builds.
enum class StrategyKind : uint8_t {
  kToposhot = 0,  ///< replacement-price ladder (the paper's protocol)
  kDethna = 1,    ///< marked low-fee transactions, announce-timing inference
  kTxprobe = 2,   ///< announcement-blocking isolation (fails on Ethereum, §4.1)
};

inline constexpr size_t kNumStrategies = 3;

/// Stable lowercase name ("toposhot" / "dethna" / "txprobe") — the report
/// field value and the --strategy flag vocabulary.
const char* strategy_name(StrategyKind k);

/// Strict inverse of strategy_name: false on any unknown name.
bool strategy_from_name(const std::string& name, StrategyKind& out);

/// Transaction-propagation regime applied to every regular node of a
/// scenario. Shared by bench/txprobe_comparison.cpp and TxProbeStrategy so
/// the bench's two modes and the strategy can never drift apart.
enum class PropagationMode {
  kAnnounceOnly,     ///< Bitcoin-style: hashes only, bodies by request
  kPushAndAnnounce,  ///< Geth >= 1.9.11: sqrt-push + hash announcement
};

/// Rewrites every target node's propagation flags to `mode`. Call before
/// seeding background traffic so the whole trajectory runs one regime.
void apply_propagation_mode(Scenario& sc, PropagationMode mode);

/// A topology-inference technique behind the measurement seam. Drivers
/// hold one and only talk through this interface; the concrete classes
/// below are constructed via make_strategy (or Scenario::make_strategy,
/// which also wires cost/metrics/tracing).
class MeasurementStrategy {
 public:
  virtual ~MeasurementStrategy() = default;

  virtual StrategyKind kind() const = 0;

  /// One-time scenario preparation (node-config mutation, calibration).
  /// Runs once per replica on the warmed world — after background seeding
  /// (campaigns fork replicas from a shared warmed snapshot and prepare
  /// each fork), before any measurement. Default: nothing. Must be
  /// deterministic and is the only member allowed to touch scenario state
  /// beyond the measurement world refs.
  virtual void prepare(Scenario& sc) { (void)sc; }

  /// Measures one candidate link A-B (the serial primitive).
  virtual OneLinkResult measure_pair(p2p::PeerId a, p2p::PeerId b) = 0;

  /// Measures a batch of candidate edges between `sources` and `sinks`
  /// (indices in ParallelEdge refer into those arrays). Every edge must
  /// come back with exactly one verdict and one cause.
  virtual ParallelResult measure_batch(const std::vector<p2p::PeerId>& sources,
                                       const std::vector<p2p::PeerId>& sinks,
                                       const std::vector<ParallelEdge>& edges) = 0;

  /// Re-measures a batch a prior sweep left inconclusive (run_retry_pass).
  /// Default: a plain measure_batch; strategies with a cheaper or
  /// separately-tallied retry path override it.
  virtual ParallelResult remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                         const std::vector<p2p::PeerId>& sinks,
                                         const std::vector<ParallelEdge>& edges) {
    return measure_batch(sources, sinks, edges);
  }

  /// Per-target flood-size overrides from pre-processing (§5.2.3). Only
  /// meaningful for strategies that flood; others ignore it.
  virtual void set_flood_overrides(std::unordered_map<p2p::PeerId, size_t> overrides) {
    (void)overrides;
  }

  // Shared observability/config surface the schedule drivers rely on.
  virtual MeasureConfig& config() = 0;
  virtual const MeasureConfig& config() const = 0;
  virtual double now() const = 0;
  virtual obs::SpanTracer* tracer() const = 0;
  virtual void set_cost_tracker(CostTracker* tracker) = 0;
  virtual void set_metrics(obs::MetricsRegistry* reg) = 0;
  virtual void set_tracer(obs::SpanTracer* tracer) = 0;
};

/// Common context base for strategies that drive the measurement world
/// directly: borrowed world refs plus the cost/metrics/tracing wiring.
class StrategyBase : public MeasurementStrategy {
 public:
  StrategyBase(p2p::Network& net, p2p::MeasurementNode& m, eth::AccountManager& accounts,
               eth::TxFactory& factory, MeasureConfig config)
      : net_(net), m_(m), accounts_(accounts), factory_(factory), config_(config) {}

  MeasureConfig& config() override { return config_; }
  const MeasureConfig& config() const override { return config_; }
  double now() const override { return net_.simulator().now(); }
  obs::SpanTracer* tracer() const override { return tracer_; }
  void set_cost_tracker(CostTracker* tracker) override { cost_ = tracker; }
  void set_metrics(obs::MetricsRegistry* reg) override {
    metrics_ = reg;
    obs_ = reg != nullptr ? ProbeObs::wire(*reg) : ProbeObs{};
  }
  void set_tracer(obs::SpanTracer* tracer) override { tracer_ = tracer; }

 protected:
  p2p::Network& net_;
  p2p::MeasurementNode& m_;
  eth::AccountManager& accounts_;
  eth::TxFactory& factory_;
  MeasureConfig config_;
  CostTracker* cost_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  ProbeObs obs_;
  obs::SpanTracer* tracer_ = nullptr;
};

/// The reference implementation: the paper's replacement-price-ladder
/// protocol, re-homed behind the seam. measure_pair drives
/// OneLinkMeasurement, measure_batch / remeasure_batch drive
/// ParallelMeasurement — constructed per call with identical wiring, so
/// trajectories are byte-identical to the pre-seam direct calls.
class ToposhotStrategy final : public StrategyBase {
 public:
  using StrategyBase::StrategyBase;

  StrategyKind kind() const override { return StrategyKind::kToposhot; }
  OneLinkResult measure_pair(p2p::PeerId a, p2p::PeerId b) override;
  ParallelResult measure_batch(const std::vector<p2p::PeerId>& sources,
                               const std::vector<p2p::PeerId>& sinks,
                               const std::vector<ParallelEdge>& edges) override;
  ParallelResult remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                 const std::vector<p2p::PeerId>& sinks,
                                 const std::vector<ParallelEdge>& edges) override;
  void set_flood_overrides(std::unordered_map<p2p::PeerId, size_t> overrides) override {
    flood_overrides_ = std::move(overrides);
  }

 private:
  ParallelMeasurement make_parallel();

  std::unordered_map<p2p::PeerId, size_t> flood_overrides_;
};

/// DEthna-style rival: a fresh below-market marker transaction per source,
/// never mined (near-zero gas cost), adjacency inferred from *when* each
/// sink's echo of the marker reaches the measurement node. The echo of a
/// direct neighbor of the source is one link-latency earlier than a
/// two-hop node's; the classifier thresholds each sink's delay relative to
/// the earliest echo observed, and config().repetitions are combined by
/// MAJORITY vote (timing inference is noisy in both directions, so the
/// union rule TopoShot uses would only accumulate false positives).
///
/// Honest failure modes: timing overlap between one- and two-hop echoes
/// costs precision AND recall (unlike TopoShot's analytic 100% precision),
/// and announcement-based clients add a get_tx round trip to every echo,
/// degrading separation further.
class DethnaStrategy final : public StrategyBase {
 public:
  using StrategyBase::StrategyBase;

  StrategyKind kind() const override { return StrategyKind::kDethna; }

  /// Reads the scenario's latency model median — the stand-in for the
  /// calibration a live attacker performs against observed gossip.
  void prepare(Scenario& sc) override;

  OneLinkResult measure_pair(p2p::PeerId a, p2p::PeerId b) override;
  ParallelResult measure_batch(const std::vector<p2p::PeerId>& sources,
                               const std::vector<p2p::PeerId>& sinks,
                               const std::vector<ParallelEdge>& edges) override;
  ParallelResult remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                 const std::vector<p2p::PeerId>& sinks,
                                 const std::vector<ParallelEdge>& edges) override;

  /// Classifier threshold: a sink whose echo trails the earliest echo by
  /// more than this is ruled not-adjacent. 0 (default) derives it from the
  /// calibrated link latency.
  void set_announce_gap(double seconds) { announce_gap_override_ = seconds; }
  double announce_gap() const;

 private:
  ParallelResult measure_once(const std::vector<p2p::PeerId>& sources,
                              const std::vector<p2p::PeerId>& sinks,
                              const std::vector<ParallelEdge>& edges);
  eth::Wei marker_price() const;

  double link_latency_hint_ = 0.05;      ///< overwritten by prepare()
  double announce_gap_override_ = 0.0;   ///< 0 = derive from the hint
};

/// TxProbe-style rival: the announcement-blocking isolation prototyped in
/// bench/txprobe_comparison.cpp, promoted to a real strategy. Per pair it
/// pre-announces a fresh marker's hash to every node except the pair
/// (arming their per-hash blocking windows), delivers the marker to the
/// source, and reads adjacency from the marker coming back from the sink.
/// Repetitions union positives, as in the original protocol.
///
/// On Ethereum-style propagation this honestly fails: direct pushes bypass
/// announcement blocks (§4.1), the marker floods, and false positives make
/// almost every pair look connected — the paper's motivation for the
/// replacement-price ladder. Under PropagationMode::kAnnounceOnly worlds
/// the isolation holds and precision returns (the Bitcoin-mode contrast of
/// the comparison bench).
class TxProbeStrategy final : public StrategyBase {
 public:
  using StrategyBase::StrategyBase;

  StrategyKind kind() const override { return StrategyKind::kTxprobe; }

  /// Applies `propagation_override` (when set) via apply_propagation_mode.
  /// By default the scenario's configured propagation stands — the point
  /// of the rivalry sweep is how each strategy fares under each regime.
  void prepare(Scenario& sc) override;

  OneLinkResult measure_pair(p2p::PeerId a, p2p::PeerId b) override;
  ParallelResult measure_batch(const std::vector<p2p::PeerId>& sources,
                               const std::vector<p2p::PeerId>& sinks,
                               const std::vector<ParallelEdge>& edges) override;
  ParallelResult remeasure_batch(const std::vector<p2p::PeerId>& sources,
                                 const std::vector<p2p::PeerId>& sinks,
                                 const std::vector<ParallelEdge>& edges) override;

  void set_propagation_override(PropagationMode mode) {
    propagation_override_ = mode;
    has_propagation_override_ = true;
  }

 private:
  ParallelResult measure_once(const std::vector<p2p::PeerId>& sources,
                              const std::vector<p2p::PeerId>& sinks,
                              const std::vector<ParallelEdge>& edges);
  eth::Wei marker_price() const;

  PropagationMode propagation_override_ = PropagationMode::kPushAndAnnounce;
  bool has_propagation_override_ = false;
};

/// Constructs the strategy for `kind` over a borrowed measurement world.
/// Wiring (cost tracker, metrics, tracer) is the caller's job; Scenario::
/// make_strategy does both in one step.
std::unique_ptr<MeasurementStrategy> make_strategy(StrategyKind kind, p2p::Network& net,
                                                   p2p::MeasurementNode& m,
                                                   eth::AccountManager& accounts,
                                                   eth::TxFactory& factory,
                                                   MeasureConfig config);

/// Adapts a caller-owned ParallelMeasurement to the seam (kind() ==
/// kToposhot, batches delegate to par.measure/remeasure). Backs the legacy
/// NetworkMeasurement(ParallelMeasurement&) constructor so existing callers
/// keep byte-identical trajectories without owning a strategy.
std::unique_ptr<MeasurementStrategy> wrap_parallel_measurement(ParallelMeasurement& par);

}  // namespace topo::core
