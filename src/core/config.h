#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "eth/transaction.h"
#include "eth/types.h"

namespace topo::core {

/// Outcome class of one measurement attempt. A probe can fail two ways:
/// the preconditions held and txA never arrived from the sink (a genuine
/// negative), or the probe state itself never materialized — txA was not
/// planted on the source, the payload never reached the sink, or txC was
/// not evicted there — so txA was neither observed nor refuted within the
/// window. The second class (inconclusive) is what message loss and node
/// churn produce, and what bounded re-measurement can recover.
enum class Verdict {
  kConnected,     ///< txA observed arriving from the sink
  kNegative,      ///< preconditions held, txA refuted
  kInconclusive,  ///< probe preconditions failed; nothing was learned
};

/// obs::Span verdict code of a Verdict (obs stays independent of this enum;
/// 0 is reserved there for "no verdict" on structural spans).
inline uint8_t span_verdict_code(Verdict v) {
  switch (v) {
    case Verdict::kConnected: return 1;
    case Verdict::kNegative: return 2;
    case Verdict::kInconclusive: return 3;
  }
  return 0;
}

/// Parameters of the measureOneLink primitive (paper §5.2) plus the pacing
/// knobs our event simulation makes explicit.
///
/// Price ladder (all derived from Y and the target's replacement bump R):
///   future txO : (1 + R) Y      — evicts everything priced below it
///   txA        : (1 + R/2) Y    — replaces txB on B, cannot replace txC on C
///   txC        : Y              — the network-wide "shield" transaction
///   txB        : (1 - R/2) Y    — placeholder on B that txA can replace
struct MeasureConfig {
  /// X — seconds to wait after planting txC so it floods the whole network.
  double wait_X = 10.0;

  /// Y — txC gas price. 0 means "estimate dynamically" as the median
  /// pending price observed by the measurement node (§5.2.1).
  eth::Wei price_Y = eth::gwei(0.1);

  /// Z — number of future transactions per target flood.
  size_t flood_Z = 5120;

  /// R — assumed replacement bump of the target client, in basis points
  /// (Geth 1000). Pre-processing may override per node.
  uint32_t bump_bp = 1000;

  /// U — assumed max futures per account on the target; the flood uses
  /// ceil(Z/U) distinct sender accounts. 0 means "unlimited" (the target
  /// caps nothing), which the flood crafts as one future per account — see
  /// flood_plan().
  uint64_t futures_per_account_U = 4096;

  /// Seconds to wait after a flood finishes before sending the replacement
  /// transaction, so the target's deferred queue truncation has run and the
  /// pool has room (see DESIGN.md on Geth's reorg loop).
  double post_flood_gap = 1.2;

  /// Seconds to wait after planting txA before checking for txA's arrival
  /// from B (covers a couple of link latencies).
  double detect_wait = 3.0;

  /// Repetitions whose union forms the final answer (§5.2.3's passive
  /// recall booster).
  size_t repetitions = 1;

  /// Bounded re-measurement of *inconclusive* pairs (see Verdict): after a
  /// driver's whole primary sweep, pairs whose probe state never
  /// materialized are re-measured with fresh probe nonces up to this many
  /// extra rounds (core::run_retry_pass). Deferring the retries past the
  /// sweep keeps the primary trajectory byte-identical to a retries-off
  /// run, so re-measurement only ever adds edges. 0 (default) disables the
  /// pass; only lossy / churny worlds (topo::fault) benefit from raising it.
  size_t inconclusive_retries = 0;

  /// Emit EIP-1559 transactions (max fee = the ladder price, priority fee =
  /// a tenth of it). Appendix E: the pool compares max fees, so the ladder
  /// semantics are unchanged as long as prices stay above the base fee.
  bool eip1559 = false;

  /// Collect the per-pair diagnostics annex: network-level drivers tally
  /// every pair's final ProbeCause (and what each retry round cleared) into
  /// NetworkMeasurementReport::diagnostics. Off by default so reports stay
  /// byte-identical to pre-diagnostics builds; collection never perturbs
  /// the measurement trajectory, only what is reported about it.
  bool collect_diagnostics = false;

  /// Strict isolation check: a positive requires that M received txA from
  /// the sink and from *no other* peer — any other reception proves a node
  /// lost its txC shield and leaked txA, so the measurement is discarded
  /// instead of reported. Keeps precision at 100% by construction (the
  /// property the paper's protocol guarantees analytically).
  bool strict_isolation_check = true;

  // Derived prices (exact integer arithmetic).
  eth::Wei price_txC() const { return price_Y; }
  eth::Wei price_future() const { return scale(price_Y, 10000 + bump_bp); }
  eth::Wei price_txA() const { return scale(price_Y, 10000 + bump_bp / 2); }
  eth::Wei price_txB() const { return scale(price_Y, 10000 - bump_bp / 2); }

  /// Smallest Y at which the integer price ladder stays strict: below
  /// this, ceil-rounding collapses the R/2 spacing (e.g. Y = 1 wei makes
  /// txA twice txC's price and isolation fails). Estimators clamp to it.
  eth::Wei min_viable_Y() const {
    return bump_bp == 0 ? 1 : std::max<eth::Wei>(1, 40000 / bump_bp);
  }

  /// Shape of a future flood of `z` transactions: how many fresh sender
  /// accounts to create and how many futures each one crafts. U == 0
  /// ("unlimited" — the target imposes no per-account future cap) crafts
  /// one future per account, so the flood is never empty. Both measurement
  /// drivers derive their flood loops from this plan (core/flood.h), which
  /// is what keeps them from diverging.
  struct FloodPlan {
    size_t accounts = 0;
    uint64_t per_account = 0;

    /// True when accounts * per_account can hold `z` futures.
    bool covers(size_t z) const {
      return per_account > 0 &&
             static_cast<unsigned __int128>(accounts) * per_account >= z;
    }
  };

  FloodPlan flood_plan(size_t z) const {
    FloodPlan p;
    p.per_account = futures_per_account_U == 0 ? 1 : futures_per_account_U;
    p.accounts = (z + p.per_account - 1) / p.per_account;
    return p;
  }

  /// Number of flood sender accounts.
  size_t flood_accounts() const { return flood_plan(flood_Z).accounts; }

  class Builder;

 private:
  static eth::Wei scale(eth::Wei y, uint64_t factor_bp) {
    return static_cast<eth::Wei>(
        (static_cast<unsigned __int128>(y) * factor_bp + 9999) / 10000);
  }
};

/// Fluent construction of a MeasureConfig, with the cross-field checks a
/// plain aggregate cannot express:
///
///   auto cfg = MeasureConfig::Builder()
///                  .wait_X(15.0)
///                  .flood_Z(5120)
///                  .bump_bp(1000)
///                  .repetitions(2)
///                  .build();
///
/// Start from an existing config (e.g. Scenario::default_measure_config)
/// by passing it to the constructor.
class MeasureConfig::Builder {
 public:
  Builder() = default;
  explicit Builder(MeasureConfig base) : cfg_(base) {}

  Builder& wait_X(double v) { cfg_.wait_X = v; return *this; }
  Builder& price_Y(eth::Wei v) { cfg_.price_Y = v; return *this; }
  Builder& flood_Z(size_t v) { cfg_.flood_Z = v; return *this; }
  Builder& bump_bp(uint32_t v) { cfg_.bump_bp = v; return *this; }
  Builder& futures_per_account_U(uint64_t v) { cfg_.futures_per_account_U = v; return *this; }
  Builder& post_flood_gap(double v) { cfg_.post_flood_gap = v; return *this; }
  Builder& detect_wait(double v) { cfg_.detect_wait = v; return *this; }
  Builder& repetitions(size_t v) { cfg_.repetitions = v; return *this; }
  Builder& inconclusive_retries(size_t v) { cfg_.inconclusive_retries = v; return *this; }
  Builder& collect_diagnostics(bool v) { cfg_.collect_diagnostics = v; return *this; }
  Builder& eip1559(bool v) { cfg_.eip1559 = v; return *this; }
  Builder& strict_isolation_check(bool v) { cfg_.strict_isolation_check = v; return *this; }

  /// Validates and returns the config. Throws std::invalid_argument when
  /// the parameters cannot yield a sound measurement: non-positive timing
  /// windows, an empty flood, a bump too large for the price ladder
  /// (R >= 200% makes txB's price (1 - R/2)Y hit zero), or a dynamic Y
  /// (price_Y = 0) that the ladder cannot later clamp.
  MeasureConfig build() const {
    if (cfg_.wait_X <= 0.0) throw std::invalid_argument("MeasureConfig: wait_X must be > 0");
    if (cfg_.detect_wait <= 0.0)
      throw std::invalid_argument("MeasureConfig: detect_wait must be > 0");
    if (cfg_.post_flood_gap < 0.0)
      throw std::invalid_argument("MeasureConfig: post_flood_gap must be >= 0");
    if (cfg_.flood_Z == 0) throw std::invalid_argument("MeasureConfig: flood_Z must be > 0");
    if (cfg_.repetitions == 0)
      throw std::invalid_argument("MeasureConfig: repetitions must be > 0");
    if (cfg_.bump_bp >= 20000)
      throw std::invalid_argument("MeasureConfig: bump_bp must be < 20000 (txB price > 0)");
    if (cfg_.price_Y != 0 && cfg_.price_Y < cfg_.min_viable_Y()) {
      throw std::invalid_argument(
          "MeasureConfig: price_Y below min_viable_Y(); the integer price "
          "ladder would collapse");
    }
    if (!cfg_.flood_plan(cfg_.flood_Z).covers(cfg_.flood_Z)) {
      throw std::invalid_argument(
          "MeasureConfig: flood plan cannot cover flood_Z — the eviction "
          "flood would be silently incomplete");
    }
    return cfg_;
  }

 private:
  MeasureConfig cfg_;
};

/// Crafts a measurement transaction per the config's fee mode: legacy gas
/// price, or EIP-1559 with max fee = `price`.
inline eth::Transaction craft_tx(eth::TxFactory& factory, const MeasureConfig& cfg,
                                 eth::Address sender, eth::Nonce nonce, eth::Wei price) {
  if (cfg.eip1559) return factory.make1559(sender, nonce, price, price / 10);
  return factory.make(sender, nonce, price);
}

}  // namespace topo::core
