#pragma once

// MeasurementSession — the front door for driving measurements against a
// Scenario. It owns the MeasureConfig (one place to tune a campaign
// instead of threading a config through every call), shares the
// scenario's metrics registry, and annotates every result with the
// per-call metrics delta, so callers see exactly what one measurement
// cost (messages, evictions, probe phase timings) without bookkeeping of
// their own.
//
// The session is also where the measurement *strategy* is chosen: every
// call dispatches through the core::MeasurementStrategy seam, so swapping
// TopoShot for a rival (set_strategy) changes the probe protocol without
// touching the call sites. Scenario::measure_one_link / measure_parallel /
// measure_network / preprocess remain as thin equivalents for existing
// callers and produce identical results on identical seeds; new code
// should come through here.

#include <vector>

#include "core/config.h"
#include "core/one_link.h"
#include "core/parallel.h"
#include "core/preprocess.h"
#include "core/schedule.h"
#include "core/strategy.h"
#include "core/toposhot.h"
#include "obs/metrics.h"

namespace topo::core {

/// A measurement result plus the metrics delta of producing it: counters
/// and histogram counts are per-call flows, gauges are the levels at the
/// time the call finished.
template <typename T>
struct Annotated {
  T value;
  obs::MetricsSnapshot metrics;
};

class MeasurementSession {
 public:
  /// Starts a session with the scenario's default measure config.
  explicit MeasurementSession(Scenario& scenario)
      : MeasurementSession(scenario, scenario.default_measure_config()) {}

  MeasurementSession(Scenario& scenario, MeasureConfig config)
      : scenario_(scenario), config_(config) {}

  MeasureConfig& config() { return config_; }
  const MeasureConfig& config() const { return config_; }

  Scenario& scenario() { return scenario_; }
  obs::MetricsRegistry& metrics() { return scenario_.metrics(); }

  /// Selects the measurement strategy for subsequent calls (default:
  /// TopoShot, whose trajectories are byte-identical to the pre-seam
  /// direct dispatch). The strategy's prepare() hook runs once per
  /// measurement call, before the probe traffic.
  void set_strategy(StrategyKind kind) { strategy_ = kind; }
  StrategyKind strategy() const { return strategy_; }

  /// measureOneLink(A, B) with the session config.
  Annotated<OneLinkResult> one_link(p2p::PeerId a, p2p::PeerId b);

  /// measurePar over explicit candidate edges.
  Annotated<ParallelResult> parallel(const std::vector<p2p::PeerId>& sources,
                                     const std::vector<p2p::PeerId>& sinks,
                                     const std::vector<ParallelEdge>& edges);

  /// Full-network schedule (§5.3.2) with group size K; `pre` filters
  /// excluded nodes and applies flood overrides when given.
  Annotated<NetworkMeasurementReport> network(size_t group_k,
                                              const PreprocessReport* pre = nullptr);

  /// Pre-processing pass over all scenario targets.
  Annotated<PreprocessReport> preprocess();

  /// Cumulative scenario metrics at this moment (includes `sim.*` and
  /// `cost.*` gauges; same as Scenario::snapshot_metrics).
  obs::MetricsSnapshot snapshot() { return scenario_.snapshot_metrics(); }

 private:
  /// Runs `fn`, returning its result annotated with the metrics delta.
  template <typename Fn>
  auto annotated(Fn&& fn) -> Annotated<decltype(fn())>;

  Scenario& scenario_;
  MeasureConfig config_;
  StrategyKind strategy_ = StrategyKind::kToposhot;
};

}  // namespace topo::core
