#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/cost.h"
#include "core/one_link.h"
#include "core/parallel.h"
#include "core/preprocess.h"
#include "core/schedule.h"
#include "core/strategy.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "p2p/measurement_node.h"
#include "p2p/network.h"

namespace topo::core {

/// Knobs of a simulated measurement scenario. Mempool sizes default to a
/// 10x-scaled-down Geth (L=512) so network-scale benches stay fast; the
/// local-validation benches override back to the full 5120 (DESIGN.md §2).
struct ScenarioOptions {
  uint64_t seed = 42;
  mempool::ClientKind client = mempool::ClientKind::kGeth;

  // Scaled mempool geometry applied to every node (0 = client stock value).
  size_t mempool_capacity = 512;
  size_t future_cap = 128;

  double maintenance_interval = 0.5;
  double regossip_interval = 0.0;  ///< txC re-propagation race source; 0 = off
  bool use_announcements = false;

  /// Eviction victim policy applied to every node (ablation, DESIGN.md §5).
  mempool::EvictionVictim eviction_victim = mempool::EvictionVictim::kLowestPriceGlobal;

  /// Override for the unconfirmed-transaction lifetime `e` (seconds);
  /// 0 keeps the client default (3 h for Geth).
  double expiry_override = 0.0;

  /// Background transactions seeded into every pool (the paper's trick of
  /// populating underloaded testnets, §6.2.1). Should be <= capacity.
  size_t background_txs = 384;
  eth::Wei background_price_lo = eth::gwei(0.02);
  eth::Wei background_price_hi = eth::gwei(2.0);

  /// Heterogeneity — the three recall culprits of §6.1.
  double custom_mempool_fraction = 0.0;  ///< nodes with `custom_capacity`
  size_t custom_capacity = 1024;
  double custom_bump_fraction = 0.0;  ///< nodes with a larger bump R
  uint32_t custom_bump_bp = 2500;
  double nonforwarding_fraction = 0.0;  ///< nodes that never forward

  /// Measurement node pacing (tx/s = 1/spacing).
  double send_spacing = 1e-4;

  double latency_median = 0.05;
  double latency_sigma = 0.4;

  /// Per-stream delivery batch window in seconds (Network::set_batch_window):
  /// full-tx sends on one directed link whose delivery times fall within
  /// this span of each other coalesce into a single kDeliverTxBatch event.
  /// Purely mechanical — reports are byte-identical at any setting; <= 0
  /// disables batching (the reference one-event-per-message trajectory).
  double batch_window = p2p::Network::kDefaultBatchWindow;

  uint64_t block_gas_limit = 8'000'000;
  eth::Wei initial_base_fee = 0;  ///< nonzero enables EIP-1559

  /// Capacity of the scenario's bounded trace ring (events kept; older
  /// events are overwritten and counted under `obs.trace.dropped`).
  size_t trace_capacity = obs::MetricsRegistry::kDefaultTraceCapacity;
};

/// A frozen, self-contained image of a warmed measurement world
/// (Scenario::snapshot). Bulk state — chain blocks, every node's mempool
/// pages, M's passive view — rides behind copy-on-write handles, so a
/// snapshot costs O(nodes) handle copies, not O(world) deep copies, and a
/// fork only pays for the pages it later dirties.
///
/// Pending simulator events are captured with their sinks translated to
/// symbolic form (raw sink pointers die with the source world) and
/// re-pushed into the replica's queue on fork. Closure events cannot be
/// translated; snapshot() throws std::logic_error if any are pending
/// (start_link_churn schedules closures — snapshot before starting churn).
///
/// The snapshot outlives the scenario it was taken from: shared pages are
/// refcounted, so the base world may be destroyed and replicas forked from
/// the snapshot afterwards (how exec::run_sharded_campaign stamps out
/// per-shard worlds).
struct WorldSnapshot {
  /// One captured simulator event, sink in symbolic form. `seq` is the
  /// event's queue sequence number *rank-compacted* at capture time over
  /// the union of pending events and staged batch members (see
  /// p2p::Network::Snapshot): absolute seqs are queue-relative, but their
  /// relative order against the reserved member seqs must survive the
  /// fork, so restore re-pushes with these compacted seqs verbatim.
  struct PendingEvent {
    enum class Sink : uint8_t { kNetwork, kNode, kScenario };
    sim::Time t = 0.0;
    uint64_t seq = 0;
    Sink sink = Sink::kNetwork;
    p2p::PeerId node = 0;  ///< kNode only
    sim::EventKind kind = sim::EventKind::kClosure;
    uint32_t a = 0;
    uint32_t b = 0;
    uint64_t payload = 0;
  };

  ScenarioOptions options;
  graph::Graph truth;
  std::vector<p2p::PeerId> targets;
  util::Rng rng;
  bool organic_on = false;
  double organic_rate = 0.0;

  sim::QueueBackend backend = sim::QueueBackend::kTimingWheel;
  sim::Time now = 0.0;
  size_t events_processed = 0;
  size_t queue_high_water = 0;
  std::array<uint64_t, sim::kNumEventKinds> dispatched{};
  std::vector<PendingEvent> pending;

  eth::Chain::Snapshot chain;
  p2p::Network::Snapshot net;
  p2p::PeerId m_id = 0;
  p2p::MeasurementNode::Snapshot m;

  eth::AccountManager accounts;
  eth::TxFactory factory;
  CostTracker costs;

  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceEvent> trace_events;
  uint64_t trace_total = 0;
};

/// A fully wired measurement world: simulator + chain + network instantiated
/// from a ground-truth topology + measurement node M connected to everyone.
///
/// Every scenario carries a MetricsRegistry wired through the network,
/// mempools, and measurement node at construction; measurements driven
/// through it (or through a MeasurementSession) accumulate `mempool.*`,
/// `net.*`, and `probe.*` metrics for free.
class Scenario : public sim::EventSink {
 public:
  /// Throws std::invalid_argument when the options are inconsistent:
  /// background_txs or future_cap exceeding the *effective* (scaled)
  /// mempool capacity would silently break the eviction protocol.
  Scenario(const graph::Graph& topology, ScenarioOptions options);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  sim::Simulator& sim() { return *sim_; }
  eth::Chain& chain() { return *chain_; }
  p2p::Network& net() { return *net_; }
  p2p::MeasurementNode& m() { return *m_; }
  eth::AccountManager& accounts() { return accounts_; }
  eth::TxFactory& factory() { return factory_; }
  CostTracker& costs() { return costs_; }
  const ScenarioOptions& options() const { return options_; }

  /// The scenario-wide metrics registry (always on; handles are wired into
  /// the network and mempools at construction).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Publishes the point-in-time gauges (`sim.*`, `cost.*`, `obs.trace.*`,
  /// the per-kind `sim.dispatch.*` counters, and the backend-specific
  /// `sim.queue.impl.*` event-queue internals) into the registry and
  /// returns a name-sorted snapshot of everything.
  obs::MetricsSnapshot snapshot_metrics();

  /// Attaches a causal span tracer (null detaches); forwarded into every
  /// measurement driver the scenario constructs. The tracer must outlive
  /// the scenario's measurement calls.
  void set_span_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  obs::SpanTracer* span_tracer() const { return tracer_; }

  /// Peer ids of the regular nodes, in ground-truth graph order.
  const std::vector<p2p::PeerId>& targets() const { return targets_; }

  /// The ground truth the scenario was built from.
  const graph::Graph& truth() const { return truth_; }

  /// Captures the whole world — chain, every pool, M's state, pending
  /// events, metrics — as a self-contained WorldSnapshot (O(dirty pages) to
  /// fork from; see WorldSnapshot). Throws std::logic_error if closure
  /// events are pending (e.g. link churn is running): closures cannot be
  /// replayed into another world.
  WorldSnapshot snapshot() const;

  /// Stamps out a fresh, fully independent world from a snapshot. The
  /// replica shares unmodified bulk pages with the snapshot (copy-on-write)
  /// and behaves exactly as the snapshotted world would: running both from
  /// here with the same inputs produces byte-identical reports. Fork as
  /// many replicas as needed; they never observe each other.
  static std::unique_ptr<Scenario> fork(const WorldSnapshot& snap);

  /// Gives this world a fresh deterministic RNG identity (per-shard streams
  /// on top of a shared warmed base). Node RNGs keep their warmed state —
  /// the rebuild path reseeds at exactly the same point, so both paths stay
  /// byte-identical.
  void reseed(uint64_t seed);

  /// Fills every node's pool with the shared background set and lets the
  /// network settle for a moment.
  void seed_background();

  /// Starts Poisson organic traffic: fresh transactions at `rate_per_sec`,
  /// each submitted through a random node and propagated normally, priced
  /// log-uniformly like the background. Organic load is what erodes
  /// long-running measurements (the Fig 4b recall decline at large groups).
  void start_organic_traffic(double rate_per_sec);
  void stop_organic_traffic() { organic_on_ = false; }

  /// Typed-event dispatch: the self-rescheduling organic-traffic step.
  void on_event(const sim::Event& ev) override;

  /// Realistic live-network churn: organic traffic plus periodic mining by
  /// a *dedicated* miner node wired into the overlay but excluded from the
  /// measurement targets — like a real mining pool, its mempool is never
  /// flooded, so blocks only skim the expensive top of the fee market and
  /// residue from past probes drains away without touching live
  /// measurement state. Returns the miner's peer id.
  p2p::PeerId start_churn(double organic_rate, double block_interval = 13.0,
                          size_t miner_links = 8);

  /// MeasureConfig scaled to this scenario (Z = capacity, client R/U).
  MeasureConfig default_measure_config() const;

  /// Constructs the strategy for `kind` over this scenario's measurement
  /// world, fully wired (cost tracker, metrics registry, span tracer). The
  /// strategy borrows the scenario and must not outlive it; call
  /// strat->prepare(*this) on the warmed world (after seed_background),
  /// before measuring.
  std::unique_ptr<MeasurementStrategy> make_strategy(StrategyKind kind,
                                                     const MeasureConfig& cfg);

  /// Measurement entry points (cost-tracked, metrics-wired).
  ///
  /// \deprecated Implementation detail of the strategy seam. Prefer
  /// core::MeasurementSession (core/session.h), which owns the
  /// MeasureConfig, dispatches through the configured MeasurementStrategy,
  /// and annotates every result with a per-call metrics delta; these thin
  /// wrappers are kept only for existing callers (identical results on
  /// identical seeds) and bypass strategy selection entirely.
  OneLinkResult measure_one_link(p2p::PeerId a, p2p::PeerId b, const MeasureConfig& cfg);
  /// \deprecated See measure_one_link.
  ParallelResult measure_parallel(const std::vector<p2p::PeerId>& sources,
                                  const std::vector<p2p::PeerId>& sinks,
                                  const std::vector<ParallelEdge>& edges,
                                  const MeasureConfig& cfg);
  /// \deprecated See measure_one_link.
  NetworkMeasurementReport measure_network(size_t group_k, const MeasureConfig& cfg,
                                           const PreprocessReport* pre = nullptr);

  /// Pre-processing pass over all targets.
  /// \deprecated See measure_one_link.
  PreprocessReport preprocess(const MeasureConfig& cfg);

 private:
  /// Fork constructor (Scenario::fork): rebuilds a world image from a
  /// snapshot instead of constructing one from a topology.
  explicit Scenario(const WorldSnapshot& snap);

  ScenarioOptions options_;
  graph::Graph truth_;
  util::Rng rng_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<eth::Chain> chain_;
  std::unique_ptr<p2p::Network> net_;
  std::unique_ptr<p2p::MeasurementNode> m_;
  eth::AccountManager accounts_;
  eth::TxFactory factory_;
  CostTracker costs_;
  std::vector<p2p::PeerId> targets_;
  obs::SpanTracer* tracer_ = nullptr;
  bool organic_on_ = false;
  double organic_rate_ = 0.0;

  eth::Wei sample_organic_price();
};

}  // namespace topo::core
