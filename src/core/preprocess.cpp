#include "core/preprocess.h"

#include "core/one_link.h"

namespace topo::core {

std::vector<p2p::PeerId> PreprocessReport::filter(const std::vector<p2p::PeerId>& targets) const {
  std::vector<p2p::PeerId> out;
  out.reserve(targets.size());
  for (p2p::PeerId t : targets) {
    if (!excluded(t)) out.push_back(t);
  }
  return out;
}

Preprocessor::Preprocessor(p2p::Network& net, p2p::MeasurementNode& m,
                           eth::AccountManager& accounts, eth::TxFactory& factory,
                           MeasureConfig config)
    : net_(net), m_(m), accounts_(accounts), factory_(factory), config_(config) {}

PreprocessReport Preprocessor::probe(const std::vector<p2p::PeerId>& targets) {
  PreprocessReport report;
  auto& sim = net_.simulator();

  // A node never propagates back to the peer that sent it a transaction,
  // so the sender M cannot observe the target's forwarding behaviour
  // directly. The paper launches an additional *monitor* node connected to
  // the target (§6.2.1); probes are sent by M and observed by the monitor.
  p2p::MeasurementNode monitor(&net_, &net_.chain());
  net_.register_peer(&monitor);
  for (p2p::PeerId t : targets) net_.connect(monitor.id(), t);

  struct ProbeTx {
    eth::TxHash future_hash;
    eth::TxHash pending_hash;
  };
  std::vector<ProbeTx> probes(targets.size());

  for (size_t i = 0; i < targets.size(); ++i) {
    // Future probe: nonce-gapped transaction a compliant node must buffer
    // silently. The monitor seeing it means the target forwards futures.
    const eth::Address fa = accounts_.create_one();
    const eth::Transaction future =
        factory_.make(fa, accounts_.future_nonce(fa, 1), config_.price_future());
    probes[i].future_hash = future.hash();
    m_.send_to(targets[i], future);

    // Responsiveness probe: a pending transaction a healthy target must
    // forward to its peers (the monitor among them).
    const eth::Address pa = accounts_.create_one();
    const eth::Transaction pending =
        factory_.make(pa, accounts_.allocate_nonce(pa), config_.price_future());
    probes[i].pending_hash = pending.hash();
    m_.send_to(targets[i], pending);
  }

  sim.run_until(m_.send_backlog_until() + config_.detect_wait);

  for (size_t i = 0; i < targets.size(); ++i) {
    if (monitor.received_from(probes[i].future_hash, targets[i]))
      report.future_forwarders.insert(targets[i]);
    if (!monitor.received_from(probes[i].pending_hash, targets[i]))
      report.unresponsive.insert(targets[i]);
  }

  // Detach the temporary monitor: severs its links and makes it safe to
  // destroy while late messages are still in flight.
  net_.detach_peer(monitor.id());
  return report;
}

size_t Preprocessor::probe_flood_size(p2p::PeerId target, p2p::PeerId local_b,
                                      const std::vector<size_t>& z_ladder) {
  for (size_t z : z_ladder) {
    MeasureConfig cfg = config_;
    cfg.flood_Z = z;
    OneLinkMeasurement one(net_, m_, accounts_, factory_, cfg);
    const OneLinkResult r = one.measure(target, local_b);
    if (r.connected) return z;
  }
  return 0;
}

}  // namespace topo::core
