#include "core/one_link.h"

#include <algorithm>

#include "core/flood.h"
#include "core/gas_estimator.h"
#include "p2p/node.h"

namespace topo::core {

ProbeObs ProbeObs::wire(obs::MetricsRegistry& reg) {
  ProbeObs o;
  o.runs = &reg.counter("probe.runs");
  o.parallel_runs = &reg.counter("probe.parallel.runs");
  o.retries = &reg.counter("probe.retries");
  o.remeasures = &reg.counter("probe.remeasures");
  o.verdict_connected = &reg.counter("probe.verdicts.connected");
  o.verdict_negative = &reg.counter("probe.verdicts.negative");
  o.verdict_inconclusive = &reg.counter("probe.verdicts.inconclusive");
  o.flood_seconds = &reg.histogram("probe.phase.flood_seconds", obs::duration_bounds());
  o.wait_seconds = &reg.histogram("probe.phase.wait_seconds", obs::duration_bounds());
  o.plant_seconds = &reg.histogram("probe.phase.plant_seconds", obs::duration_bounds());
  o.detect_seconds = &reg.histogram("probe.phase.detect_seconds", obs::duration_bounds());
  o.link_seconds = &reg.histogram("probe.link_seconds", obs::duration_bounds());
  o.trace = &reg.trace();
  return o;
}

OneLinkMeasurement::OneLinkMeasurement(p2p::Network& net, p2p::MeasurementNode& m,
                                       eth::AccountManager& accounts, eth::TxFactory& factory,
                                       MeasureConfig config)
    : net_(net), m_(m), accounts_(accounts), factory_(factory), config_(config) {}

std::vector<eth::Transaction> OneLinkMeasurement::make_flood(const MeasureConfig& cfg) {
  return craft_future_flood(accounts_, factory_, cfg, cfg.flood_Z);
}

OneLinkResult OneLinkMeasurement::measure(p2p::PeerId a, p2p::PeerId b) {
  auto& sim = net_.simulator();
  uint64_t pair_span = 0;
  uint64_t prev_scope = 0;
  if (tracer_ != nullptr) {
    pair_span = tracer_->open_pair(sim.now(), a, b);
    prev_scope = tracer_->set_scope(pair_span);
  }

  OneLinkResult final_result;
  uint32_t attempts = 0;
  for (size_t rep = 0; rep < std::max<size_t>(1, config_.repetitions); ++rep) {
    if (rep > 0 && obs_.enabled()) obs_.retries->inc();
    OneLinkResult r = measure_once(a, b);
    ++attempts;
    if (rep == 0) {
      final_result = r;
    } else {
      // Union of positives (§5.2.3 passive recall booster); keep the latest
      // diagnostics otherwise.
      r.connected = r.connected || final_result.connected;
      if (r.connected) {
        r.verdict = Verdict::kConnected;
        r.cause = obs::ProbeCause::kNone;
      }
      r.started_at = final_result.started_at;
      r.txs_sent += final_result.txs_sent;
      final_result = r;
    }
    if (final_result.connected) break;  // already positive, no need to repeat
  }

  // Bounded re-measurement of an inconclusive outcome: the probe state
  // never materialized (message loss, node fault), so nothing was learned
  // and another attempt — with fresh probe nonces, which each measure_once
  // gets for free — may still decide the link.
  uint32_t remeasured = 0;
  while (final_result.verdict == Verdict::kInconclusive &&
         remeasured < config_.inconclusive_retries) {
    ++remeasured;
    ++attempts;
    if (obs_.enabled()) obs_.remeasures->inc();
    OneLinkResult r = measure_once(a, b);
    r.started_at = final_result.started_at;
    r.txs_sent += final_result.txs_sent;
    final_result = r;
  }

  final_result.attempts = attempts;
  final_result.remeasured = remeasured;
  if (tracer_ != nullptr) {
    tracer_->close_pair(pair_span, sim.now(), span_verdict_code(final_result.verdict),
                        final_result.cause);
    tracer_->set_scope(prev_scope);
  }
  return final_result;
}

OneLinkResult OneLinkMeasurement::measure_once(p2p::PeerId a, p2p::PeerId b) {
  auto& sim = net_.simulator();
  OneLinkResult result;
  result.started_at = sim.now();
  const uint64_t sent_before = m_.txs_sent();
  const obs::PhaseTimer timer([&sim] { return sim.now(); });
  obs::ScopedPhase whole_link = timer.phase(obs_.link_seconds);
  if (obs_.enabled()) obs_.runs->inc();

  MeasureConfig cfg = config_;
  if (cfg.price_Y == 0) cfg.price_Y = estimate_price_Y(m_.view());

  // Step 1: plant txC through A and let it flood the network for X seconds.
  const eth::Address acct_c = accounts_.create_one();
  if (cost_ != nullptr) cost_->track_account(acct_c);
  const eth::Nonce nonce_c = accounts_.allocate_nonce(acct_c);
  const eth::Transaction tx_c = craft_tx(factory_, cfg, acct_c, nonce_c, cfg.price_txC());
  result.txc_hash = tx_c.hash();
  const uint64_t span_txc =
      tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kPlantTxC, sim.now(), a, b) : 0;
  m_.send_to(a, tx_c);
  {
    obs::ScopedPhase phase = timer.phase(obs_.wait_seconds);
    sim.run_until(sim.now() + cfg.wait_X);
  }
  if (tracer_ != nullptr) tracer_->close(span_txc, sim.now());

  // Step 2: evict txC on B with the future flood, wait out the deferred
  // queue truncation, then plant txB (same sender+nonce as txC).
  const auto flood = make_flood(cfg);
  {
    obs::ScopedPhase phase = timer.phase(obs_.flood_seconds);
    const uint64_t span =
        tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kEvictFlood, sim.now(), b, 0) : 0;
    m_.send_batch_to(b, flood);
    sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }
  const eth::Transaction tx_b = craft_tx(factory_, cfg, acct_c, nonce_c, cfg.price_txB());
  result.txb_hash = tx_b.hash();
  {
    obs::ScopedPhase phase = timer.phase(obs_.plant_seconds);
    const uint64_t span =
        tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kPlantProbes, sim.now(), b, 0) : 0;
    m_.send_to(b, tx_b);
    sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }

  // Step 3: the same on A, then plant txA.
  {
    obs::ScopedPhase phase = timer.phase(obs_.flood_seconds);
    const uint64_t span =
        tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kEvictFlood, sim.now(), a, 0) : 0;
    m_.send_batch_to(a, flood);
    sim.run_until(m_.send_backlog_until() + cfg.post_flood_gap);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }
  const eth::Transaction tx_a = craft_tx(factory_, cfg, acct_c, nonce_c, cfg.price_txA());
  result.txa_hash = tx_a.hash();
  const uint64_t span_txa =
      tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kPlantProbes, sim.now(), a, 0) : 0;
  const double txa_sent_at = m_.send_to(a, tx_a);
  if (tracer_ != nullptr) tracer_->close(span_txa, sim.now());

  // Step 4: wait for propagation, then check arrival of txA from B.
  {
    obs::ScopedPhase phase = timer.phase(obs_.detect_seconds);
    const uint64_t span =
        tracer_ != nullptr ? tracer_->open_auto(obs::SpanKind::kObserve, sim.now(), a, b) : 0;
    sim.run_until(sim.now() + cfg.detect_wait);
    if (tracer_ != nullptr) tracer_->close(span, sim.now());
  }
  result.connected =
      cfg.strict_isolation_check
          ? m_.received_only_from(result.txa_hash, b, txa_sent_at)
          : m_.received_from_since(result.txa_hash, b, txa_sent_at);

  // Simulated-RPC diagnostics (§6.1's eth_getTransactionByHash checks).
  result.txc_evicted_on_a = !net_.node(a).pool().contains(result.txc_hash);
  result.txc_evicted_on_b = !net_.node(b).pool().contains(result.txc_hash);
  result.txa_planted_on_a = net_.node(a).pool().contains(result.txa_hash);
  result.txb_planted_on_b = net_.node(b).pool().contains(result.txb_hash) ||
                            net_.node(b).pool().contains(result.txa_hash);

  // Verdict classification: a negative only counts when the probe state
  // actually existed — txA on A, the payload on B, txC evicted on B.
  // Anything else means the probe never ran to completion (inconclusive),
  // and the cause names the earliest broken protocol step (offline nodes
  // first: a crashed endpoint explains every downstream failure).
  if (result.connected) {
    result.verdict = Verdict::kConnected;
    result.cause = obs::ProbeCause::kNone;
  } else if (!result.txa_planted_on_a || !result.txb_planted_on_b || !result.txc_evicted_on_b) {
    result.verdict = Verdict::kInconclusive;
    if (net_.node(a).unresponsive() || net_.node(b).unresponsive()) {
      result.cause = obs::ProbeCause::kNodeOffline;
    } else if (!result.txc_evicted_on_b) {
      result.cause = obs::ProbeCause::kTxCNotEvicted;
    } else if (!result.txb_planted_on_b) {
      result.cause = obs::ProbeCause::kPayloadNotPlanted;
    } else {
      result.cause = obs::ProbeCause::kTxANotPlanted;
    }
  } else {
    result.verdict = Verdict::kNegative;
    result.cause = obs::ProbeCause::kTxANeverReturned;
  }
  if (obs_.enabled()) {
    (result.verdict == Verdict::kConnected
         ? obs_.verdict_connected
         : result.verdict == Verdict::kNegative ? obs_.verdict_negative
                                                : obs_.verdict_inconclusive)
        ->inc();
    obs_.trace->push(sim.now(), obs::TraceKind::kTxMeasured, tx_a.id,
                     result.connected ? 1 : 0);
  }

  result.finished_at = sim.now();
  result.txs_sent = m_.txs_sent() - sent_before;
  return result;
}

}  // namespace topo::core
