#include "core/gas_estimator.h"

#include <algorithm>

namespace topo::core {

eth::Wei estimate_price_Y(const mempool::Mempool& view, eth::Wei fallback) {
  const eth::Wei median = view.median_pending_price();
  // Never return a Y so small that integer rounding collapses the R/2
  // price ladder (MeasureConfig::min_viable_Y; 400 wei covers every
  // profiled client bump).
  return std::max<eth::Wei>(median > 0 ? median : fallback, 400);
}

eth::Wei min_included_price(const eth::Chain& chain, size_t window_blocks) {
  eth::Wei lo = 0;
  size_t seen = 0;
  const auto& blocks = chain.blocks();
  for (auto it = blocks.rbegin(); it != blocks.rend() && seen < window_blocks; ++it) {
    if (it->txs.empty()) continue;
    ++seen;
    const eth::Wei p = it->min_included_price();
    if (lo == 0 || p < lo) lo = p;
  }
  return lo;
}

eth::Wei estimate_price_Y0(const mempool::Mempool& view, eth::Wei min_included_price,
                           double floor_fraction, eth::Wei fallback) {
  const eth::Wei median = estimate_price_Y(view, fallback);
  if (min_included_price == 0) return median;
  const eth::Wei cap =
      static_cast<eth::Wei>(static_cast<double>(min_included_price) * floor_fraction);
  return std::max<eth::Wei>(1, std::min(median, cap));
}

}  // namespace topo::core
