#include "core/config.h"

// MeasureConfig is header-only; this TU anchors the library target.
