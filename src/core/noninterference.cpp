#include "core/noninterference.h"

#include <algorithm>

namespace topo::core {

NonInterferenceCheck verify_noninterference(const eth::Chain& chain, double t1, double t2,
                                            double expiry_e, eth::Wei y0) {
  NonInterferenceCheck check;
  const auto blocks = chain.blocks_in(t1, t2 + expiry_e);
  check.blocks_inspected = blocks.size();
  check.v1_blocks_full = !blocks.empty();
  check.v2_prices_above_y0 = !blocks.empty();
  for (const auto* b : blocks) {
    if (!b->is_full()) check.v1_blocks_full = false;
    for (const auto& tx : b->txs) {
      if (tx.effective_price(b->base_fee) <= y0) check.v2_prices_above_y0 = false;
    }
  }
  return check;
}

bool same_included_transactions(const std::vector<eth::Block>& with_measurement,
                                const std::vector<eth::Block>& without_measurement,
                                const std::unordered_set<eth::Address>& measurement_accounts) {
  if (with_measurement.size() != without_measurement.size()) return false;
  auto tx_ids = [&](const eth::Block& b) {
    std::vector<uint64_t> ids;
    for (const auto& tx : b.txs) {
      if (!measurement_accounts.count(tx.sender)) ids.push_back(tx.id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  for (size_t i = 0; i < with_measurement.size(); ++i) {
    if (tx_ids(with_measurement[i]) != tx_ids(without_measurement[i])) return false;
  }
  return true;
}

}  // namespace topo::core
