#include "core/report_io.h"

#include <fstream>
#include <sstream>

namespace topo::core {

using rpc::Json;
using rpc::JsonArray;
using rpc::JsonObject;

Json graph_to_json(const graph::Graph& g) {
  JsonArray edges;
  for (const auto& [u, v] : g.edges()) {
    edges.push_back(Json(JsonArray{Json(static_cast<uint64_t>(u)),
                                   Json(static_cast<uint64_t>(v))}));
  }
  return Json(JsonObject{
      {"nodes", Json(static_cast<uint64_t>(g.num_nodes()))},
      {"edges", Json(std::move(edges))},
  });
}

std::optional<graph::Graph> graph_from_json(const Json& j) {
  if (!j.is_object() || !j["nodes"].is_number() || !j["edges"].is_array()) return std::nullopt;
  const auto n = static_cast<size_t>(j["nodes"].as_number());
  graph::Graph g(n);
  for (const auto& e : j["edges"].as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 || !e[size_t{0}].is_number() ||
        !e[size_t{1}].is_number()) {
      return std::nullopt;
    }
    const auto u = static_cast<size_t>(e[size_t{0}].as_number());
    const auto v = static_cast<size_t>(e[size_t{1}].as_number());
    if (u >= n || v >= n) return std::nullopt;
    g.add_edge(static_cast<graph::NodeId>(u), static_cast<graph::NodeId>(v));
  }
  return g;
}

namespace {

Json fault_to_json(const FaultReport& f) {
  JsonArray retried;
  for (const RetriedPair& p : f.retried) {
    retried.push_back(Json(JsonArray{Json(static_cast<uint64_t>(p.u)),
                                     Json(static_cast<uint64_t>(p.v)),
                                     Json(static_cast<uint64_t>(p.attempts))}));
  }
  return Json(JsonObject{
      {"drop_tx", Json(f.drop_tx)},
      {"drop_announce", Json(f.drop_announce)},
      {"drop_get_tx", Json(f.drop_get_tx)},
      {"spike_prob", Json(f.spike_prob)},
      {"spike_mult", Json(f.spike_mult)},
      {"churn_rate", Json(f.churn_rate)},
      {"retries", Json(static_cast<uint64_t>(f.retries))},
      {"attempts", Json(f.attempts)},
      {"inconclusive", Json(f.inconclusive)},
      {"retried", Json(std::move(retried))},
  });
}

/// Cause-keyed object of a per-cause tally array ({"none": n, ...}, every
/// cause name present so consumers never probe for missing keys).
Json causes_to_json(const std::array<uint64_t, obs::kNumProbeCauses>& tallies) {
  JsonObject obj;
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    obj.emplace(obs::probe_cause_name(static_cast<obs::ProbeCause>(c)), Json(tallies[c]));
  }
  return Json(std::move(obj));
}

Json diagnostics_to_json(const DiagnosticsReport& d) {
  JsonArray inconclusive;
  for (const PairDiagnostic& p : d.inconclusive) {
    inconclusive.push_back(Json(JsonArray{Json(static_cast<uint64_t>(p.u)),
                                          Json(static_cast<uint64_t>(p.v)),
                                          Json(obs::probe_cause_name(p.cause))}));
  }
  return Json(JsonObject{
      {"causes", causes_to_json(d.causes)},
      {"cleared", causes_to_json(d.cleared)},
      {"inconclusive", Json(std::move(inconclusive))},
  });
}

}  // namespace

Json report_to_json(const NetworkMeasurementReport& report) {
  JsonObject obj{
      {"format", Json("toposhot-report-v1")},
      {"topology", graph_to_json(report.measured)},
      {"iterations", Json(static_cast<uint64_t>(report.iterations))},
      {"pairs_tested", Json(static_cast<uint64_t>(report.pairs_tested))},
      {"sim_seconds", Json(report.sim_seconds)},
      {"txs_sent", Json(report.txs_sent)},
  };
  // Non-default strategy only: default (TopoShot) reports keep the exact
  // pre-seam document shape, byte for byte.
  if (report.strategy != StrategyKind::kToposhot) {
    obj.emplace("strategy", Json(std::string(strategy_name(report.strategy))));
  }
  // Emitted only when present, so unfaulted reports stay byte-identical to
  // pre-fault builds. Same policy for the diagnostics annex.
  if (report.fault.has_value()) obj.emplace("fault", fault_to_json(*report.fault));
  if (report.diagnostics.has_value()) {
    obj.emplace("diagnostics", diagnostics_to_json(*report.diagnostics));
  }
  return Json(std::move(obj));
}

namespace {

/// Strict field read for the non-negative numeric report fields; a missing,
/// wrong-typed, or negative value rejects the whole document (a truncated
/// or hand-edited report must not load as a zero-filled one).
bool read_count(const Json& j, const char* key, double& out) {
  const Json& field = j[key];
  if (!field.is_number() || field.as_number() < 0.0) return false;
  out = field.as_number();
  return true;
}

/// Strict parse of the optional fault annex. Same policy as the top-level
/// fields: any malformed member rejects the whole document.
std::optional<FaultReport> fault_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  double drop_tx = 0.0, drop_announce = 0.0, drop_get_tx = 0.0;
  double spike_prob = 0.0, spike_mult = 0.0, churn_rate = 0.0;
  double retries = 0.0, attempts = 0.0, inconclusive = 0.0;
  if (!read_count(j, "drop_tx", drop_tx) || !read_count(j, "drop_announce", drop_announce) ||
      !read_count(j, "drop_get_tx", drop_get_tx) || !read_count(j, "spike_prob", spike_prob) ||
      !read_count(j, "spike_mult", spike_mult) || !read_count(j, "churn_rate", churn_rate) ||
      !read_count(j, "retries", retries) || !read_count(j, "attempts", attempts) ||
      !read_count(j, "inconclusive", inconclusive)) {
    return std::nullopt;
  }
  if (!j["retried"].is_array()) return std::nullopt;
  FaultReport f;
  f.drop_tx = drop_tx;
  f.drop_announce = drop_announce;
  f.drop_get_tx = drop_get_tx;
  f.spike_prob = spike_prob;
  f.spike_mult = spike_mult;
  f.churn_rate = churn_rate;
  f.retries = static_cast<size_t>(retries);
  f.attempts = static_cast<uint64_t>(attempts);
  f.inconclusive = static_cast<uint64_t>(inconclusive);
  for (const auto& e : j["retried"].as_array()) {
    if (!e.is_array() || e.as_array().size() != 3 || !e[size_t{0}].is_number() ||
        !e[size_t{1}].is_number() || !e[size_t{2}].is_number()) {
      return std::nullopt;
    }
    f.retried.push_back({static_cast<size_t>(e[size_t{0}].as_number()),
                         static_cast<size_t>(e[size_t{1}].as_number()),
                         static_cast<uint32_t>(e[size_t{2}].as_number())});
  }
  return f;
}

/// Strict read of a cause-keyed tally object: exactly one non-negative
/// numeric entry per known cause name, nothing else.
bool causes_from_json(const Json& j, std::array<uint64_t, obs::kNumProbeCauses>& out) {
  if (!j.is_object() || j.as_object().size() != obs::kNumProbeCauses) return false;
  for (size_t c = 0; c < obs::kNumProbeCauses; ++c) {
    double v = 0.0;
    if (!read_count(j, obs::probe_cause_name(static_cast<obs::ProbeCause>(c)), v)) return false;
    out[c] = static_cast<uint64_t>(v);
  }
  return true;
}

/// Strict parse of the optional diagnostics annex; any malformed member
/// (including an unknown cause name) rejects the whole document.
std::optional<DiagnosticsReport> diagnostics_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  DiagnosticsReport d;
  if (!causes_from_json(j["causes"], d.causes) || !causes_from_json(j["cleared"], d.cleared) ||
      !j["inconclusive"].is_array()) {
    return std::nullopt;
  }
  for (const auto& e : j["inconclusive"].as_array()) {
    if (!e.is_array() || e.as_array().size() != 3 || !e[size_t{0}].is_number() ||
        !e[size_t{1}].is_number() || !e[size_t{2}].is_string()) {
      return std::nullopt;
    }
    obs::ProbeCause cause = obs::ProbeCause::kNone;
    if (!obs::probe_cause_from_name(e[size_t{2}].as_string(), cause)) return std::nullopt;
    d.inconclusive.push_back({static_cast<size_t>(e[size_t{0}].as_number()),
                              static_cast<size_t>(e[size_t{1}].as_number()), cause});
  }
  return d;
}

}  // namespace

std::optional<NetworkMeasurementReport> report_from_json(const Json& j) {
  if (!j.is_object() || !j["format"].is_string() ||
      j["format"].as_string() != "toposhot-report-v1") {
    return std::nullopt;
  }
  double iterations = 0.0, pairs_tested = 0.0, sim_seconds = 0.0, txs_sent = 0.0;
  if (!read_count(j, "iterations", iterations) || !read_count(j, "pairs_tested", pairs_tested) ||
      !read_count(j, "sim_seconds", sim_seconds) || !read_count(j, "txs_sent", txs_sent)) {
    return std::nullopt;
  }
  auto topo = graph_from_json(j["topology"]);
  if (!topo) return std::nullopt;
  NetworkMeasurementReport report;
  report.measured = std::move(*topo);
  report.iterations = static_cast<size_t>(iterations);
  report.pairs_tested = static_cast<size_t>(pairs_tested);
  report.sim_seconds = sim_seconds;
  report.txs_sent = static_cast<uint64_t>(txs_sent);
  if (!j["strategy"].is_null()) {
    // Strict like everything else: a present field must be a known name
    // (absent means the default TopoShot strategy).
    if (!j["strategy"].is_string() ||
        !strategy_from_name(j["strategy"].as_string(), report.strategy)) {
      return std::nullopt;
    }
  }
  if (!j["fault"].is_null()) {
    auto f = fault_from_json(j["fault"]);
    if (!f) return std::nullopt;
    report.fault = std::move(*f);
  }
  if (!j["diagnostics"].is_null()) {
    auto d = diagnostics_from_json(j["diagnostics"]);
    if (!d) return std::nullopt;
    report.diagnostics = std::move(*d);
  }
  return report;
}

bool save_report(const NetworkMeasurementReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << report_to_json(report).dump() << '\n';
  return static_cast<bool>(out);
}

std::optional<NetworkMeasurementReport> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::parse(buffer.str());
  if (!parsed) return std::nullopt;
  return report_from_json(*parsed);
}

}  // namespace topo::core
