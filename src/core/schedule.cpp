#include "core/schedule.h"

#include <algorithm>
#include <unordered_map>

namespace topo::core {

std::vector<IterationPlan> make_schedule(size_t n, size_t group_k) {
  std::vector<IterationPlan> plan;
  if (n < 2) return plan;
  group_k = std::max<size_t>(2, std::min(group_k, n));

  // Partition into contiguous groups of K (last group possibly smaller).
  std::vector<std::vector<size_t>> groups;
  for (size_t start = 0; start < n; start += group_k) {
    std::vector<size_t> g;
    for (size_t i = start; i < std::min(start + group_k, n); ++i) g.push_back(i);
    groups.push_back(std::move(g));
  }

  // Round 1: group i vs all later groups.
  for (size_t gi = 0; gi + 1 < groups.size(); ++gi) {
    IterationPlan it;
    it.sources = groups[gi];
    for (size_t gj = gi + 1; gj < groups.size(); ++gj) {
      it.sinks.insert(it.sinks.end(), groups[gj].begin(), groups[gj].end());
    }
    for (size_t s : it.sources) {
      for (size_t t : it.sinks) it.pairs.emplace_back(s, t);
    }
    plan.push_back(std::move(it));
  }

  // Round 2: recursive halving across all groups simultaneously.
  std::vector<std::vector<size_t>> segments = groups;
  while (true) {
    IterationPlan it;
    std::vector<std::vector<size_t>> next;
    for (const auto& seg : segments) {
      if (seg.size() < 2) continue;
      const size_t half = seg.size() / 2;
      std::vector<size_t> first(seg.begin(), seg.begin() + half);
      std::vector<size_t> second(seg.begin() + half, seg.end());
      for (size_t s : first) {
        for (size_t t : second) it.pairs.emplace_back(s, t);
      }
      it.sources.insert(it.sources.end(), first.begin(), first.end());
      it.sinks.insert(it.sinks.end(), second.begin(), second.end());
      next.push_back(std::move(first));
      next.push_back(std::move(second));
    }
    if (it.pairs.empty()) break;
    plan.push_back(std::move(it));
    segments = std::move(next);
  }
  return plan;
}

std::vector<MeasurementBatch> make_batches(size_t n, size_t group_k, size_t budget) {
  std::vector<MeasurementBatch> batches;
  budget = std::max<size_t>(1, budget);
  for (const auto& it : make_schedule(n, group_k)) {
    // Split into slot-budgeted batches: every concurrent edge pins one txC
    // in every participating pool.
    for (size_t start = 0; start < it.pairs.size(); start += budget) {
      const size_t end = std::min(start + budget, it.pairs.size());
      MeasurementBatch batch;
      std::unordered_map<size_t, size_t> src_pos, sink_pos;
      batch.edges.reserve(end - start);
      batch.pairs.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        const auto& [s, t] = it.pairs[i];
        auto [sit, s_new] = src_pos.try_emplace(s, batch.sources.size());
        if (s_new) batch.sources.push_back(s);
        auto [tit, t_new] = sink_pos.try_emplace(t, batch.sinks.size());
        if (t_new) batch.sinks.push_back(t);
        batch.edges.push_back({sit->second, tit->second});
        batch.pairs.emplace_back(s, t);
      }
      batches.push_back(std::move(batch));
    }
  }
  return batches;
}

std::vector<MeasurementBatch> make_batches_for_pairs(
    const std::vector<std::pair<size_t, size_t>>& pairs, size_t budget) {
  std::vector<MeasurementBatch> batches;
  budget = std::max<size_t>(1, budget);
  MeasurementBatch batch;
  std::unordered_map<size_t, size_t> src_pos, sink_pos;
  const auto flush = [&] {
    if (batch.pairs.empty()) return;
    batches.push_back(std::move(batch));
    batch = MeasurementBatch{};
    src_pos.clear();
    sink_pos.clear();
  };
  for (const auto& [s, t] : pairs) {
    // A node must not play both roles in one batch: a sink is being
    // flood-overflowed exactly when a source must hold its probe txA, and
    // the §5.3.2 schedule's disjoint groups never combine the two. An
    // arbitrary pair list can, so close the batch at the first conflict
    // (the caller's priority order is preserved; only the cut points move).
    if (batch.pairs.size() == budget || src_pos.count(t) != 0 ||
        sink_pos.count(s) != 0) {
      flush();
    }
    auto [sit, s_new] = src_pos.try_emplace(s, batch.sources.size());
    if (s_new) batch.sources.push_back(s);
    auto [tit, t_new] = sink_pos.try_emplace(t, batch.sinks.size());
    if (t_new) batch.sinks.push_back(t);
    batch.edges.push_back({sit->second, tit->second});
    batch.pairs.emplace_back(s, t);
  }
  flush();
  return batches;
}

void run_batch(MeasurementStrategy& strat, const std::vector<p2p::PeerId>& targets,
               const MeasurementBatch& batch, size_t batch_id,
               NetworkMeasurementReport& report,
               std::vector<RetriedPair>* inconclusive) {
  std::vector<p2p::PeerId> sources, sinks;
  sources.reserve(batch.sources.size());
  sinks.reserve(batch.sinks.size());
  for (size_t s : batch.sources) sources.push_back(targets[s]);
  for (size_t t : batch.sinks) sinks.push_back(targets[t]);

  // Batch + pair spans carry stable structural ids keyed to (shard,
  // batch_id, edge index), so the export never depends on which worker ran
  // the batch or when. Pair spans cover the whole batch interval: the
  // parallel primitive measures every edge in one pass.
  obs::SpanTracer* tracer = strat.tracer();
  uint64_t batch_span = 0;
  uint64_t prev_scope = 0;
  std::vector<uint64_t> pair_spans;
  if (tracer != nullptr) {
    tracer->set_batch(batch_id);
    batch_span = tracer->open(obs::SpanKind::kBatch, strat.now(),
                              obs::batch_span_id(tracer->shard(), batch_id), tracer->scope(),
                              batch_id, batch.edges.size());
    prev_scope = tracer->set_scope(batch_span);
    pair_spans.reserve(batch.edges.size());
    for (size_t i = 0; i < batch.edges.size(); ++i) {
      pair_spans.push_back(
          tracer->open_pair_at(i, strat.now(), batch.pairs[i].first, batch.pairs[i].second));
    }
  }

  const ParallelResult res = strat.measure_batch(sources, sinks, batch.edges);
  ++report.iterations;
  report.txs_sent += res.txs_sent;
  report.pairs_tested += batch.edges.size();
  for (size_t i = 0; i < batch.edges.size(); ++i) {
    if (res.connected[i]) {
      report.measured.add_edge(static_cast<graph::NodeId>(batch.pairs[i].first),
                               static_cast<graph::NodeId>(batch.pairs[i].second));
    } else if (res.verdicts[i] == Verdict::kInconclusive && inconclusive != nullptr) {
      inconclusive->push_back(
          {batch.pairs[i].first, batch.pairs[i].second, res.attempts[i], res.causes[i]});
    }
    if (report.fault.has_value()) report.fault->attempts += res.attempts[i];
    if (report.diagnostics.has_value()) {
      ++report.diagnostics->causes[static_cast<size_t>(res.causes[i])];
    }
    if (tracer != nullptr) {
      tracer->close_pair(pair_spans[i], strat.now(), span_verdict_code(res.verdicts[i]),
                         res.causes[i]);
    }
  }
  if (tracer != nullptr) {
    tracer->close(batch_span, strat.now());
    tracer->set_scope(prev_scope);
  }
}

void run_retry_pass(MeasurementStrategy& strat, const std::vector<p2p::PeerId>& targets,
                    std::vector<RetriedPair> inconclusive, size_t budget, size_t rounds,
                    NetworkMeasurementReport& report) {
  budget = std::max<size_t>(1, budget);
  obs::SpanTracer* tracer = strat.tracer();
  std::vector<RetriedPair> resolved;  // entered the retry path, now decided
  for (size_t round = 0; round < rounds && !inconclusive.empty(); ++round) {
    uint64_t round_span = 0;
    uint64_t prev_scope = 0;
    if (tracer != nullptr) {
      round_span = tracer->open_auto(obs::SpanKind::kRetryRound, strat.now(), round,
                                     inconclusive.size());
      prev_scope = tracer->set_scope(round_span);
    }
    std::vector<RetriedPair> next;
    for (size_t start = 0; start < inconclusive.size(); start += budget) {
      const size_t end = std::min(start + budget, inconclusive.size());
      std::vector<p2p::PeerId> sources, sinks;
      std::vector<ParallelEdge> edges;
      std::unordered_map<size_t, size_t> src_pos, sink_pos;
      edges.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        auto [sit, s_new] = src_pos.try_emplace(inconclusive[i].u, sources.size());
        if (s_new) sources.push_back(targets[inconclusive[i].u]);
        auto [tit, t_new] = sink_pos.try_emplace(inconclusive[i].v, sinks.size());
        if (t_new) sinks.push_back(targets[inconclusive[i].v]);
        edges.push_back({sit->second, tit->second});
      }

      const ParallelResult res = strat.remeasure_batch(sources, sinks, edges);
      ++report.iterations;
      report.txs_sent += res.txs_sent;
      for (size_t k = 0; k < edges.size(); ++k) {
        RetriedPair p = inconclusive[start + k];
        const obs::ProbeCause before = p.cause;
        p.attempts += res.attempts[k];
        p.cause = res.connected[k] ? obs::ProbeCause::kNone : res.causes[k];
        if (report.fault.has_value()) report.fault->attempts += res.attempts[k];
        // Keep the final-cause histogram current: the pair moves from the
        // bucket it occupied after the primary sweep (or the prior round)
        // into its latest one.
        if (report.diagnostics.has_value() && p.cause != before) {
          --report.diagnostics->causes[static_cast<size_t>(before)];
          ++report.diagnostics->causes[static_cast<size_t>(p.cause)];
        }
        const bool decided = res.verdicts[k] != Verdict::kInconclusive;
        if (res.connected[k]) {
          report.measured.add_edge(static_cast<graph::NodeId>(p.u),
                                   static_cast<graph::NodeId>(p.v));
          resolved.push_back(p);
        } else if (res.verdicts[k] == Verdict::kNegative) {
          resolved.push_back(p);
        } else {
          next.push_back(p);
        }
        if (decided) {
          if (report.diagnostics.has_value()) {
            ++report.diagnostics->cleared[static_cast<size_t>(before)];
          }
          if (tracer != nullptr) {
            tracer->instant(obs::SpanKind::kRetryClear, strat.now(), p.u, p.v,
                            span_verdict_code(res.verdicts[k]), before);
          }
        }
      }
    }
    if (tracer != nullptr) {
      tracer->close(round_span, strat.now());
      tracer->set_scope(prev_scope);
    }
    inconclusive = std::move(next);
  }

  if (report.fault.has_value()) {
    FaultReport& f = *report.fault;
    f.inconclusive += inconclusive.size();
    if (rounds > 0) {
      f.retried.insert(f.retried.end(), resolved.begin(), resolved.end());
      f.retried.insert(f.retried.end(), inconclusive.begin(), inconclusive.end());
      std::sort(f.retried.begin(), f.retried.end(), [](const RetriedPair& a,
                                                       const RetriedPair& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
    }
  }
  if (report.diagnostics.has_value()) {
    DiagnosticsReport& d = *report.diagnostics;
    d.inconclusive.reserve(d.inconclusive.size() + inconclusive.size());
    for (const RetriedPair& p : inconclusive) d.inconclusive.push_back({p.u, p.v, p.cause});
    std::sort(d.inconclusive.begin(), d.inconclusive.end(),
              [](const PairDiagnostic& a, const PairDiagnostic& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
  }
}

NetworkMeasurementReport NetworkMeasurement::measure_all(p2p::Network& net,
                                                         const std::vector<p2p::PeerId>& targets,
                                                         size_t group_k) {
  NetworkMeasurementReport report;
  report.measured = graph::Graph(targets.size());
  report.strategy = strat_.kind();
  if (strat_.config().inconclusive_retries > 0) {
    report.fault.emplace();
    report.fault->retries = strat_.config().inconclusive_retries;
  }
  if (strat_.config().collect_diagnostics) report.diagnostics.emplace();
  const double t0 = net.simulator().now();

  const size_t budget =
      max_edges_ != 0 ? max_edges_ : slot_budget(strat_.config().flood_Z);
  const size_t retries = strat_.config().inconclusive_retries;
  std::vector<RetriedPair> inconclusive;
  std::vector<RetriedPair>* collect =
      report.fault.has_value() || report.diagnostics.has_value() ? &inconclusive : nullptr;
  size_t batch_id = 0;
  for (const auto& batch : make_batches(targets.size(), group_k, budget)) {
    run_batch(strat_, targets, batch, batch_id++, report, collect);
  }
  run_retry_pass(strat_, targets, std::move(inconclusive), budget, retries, report);
  report.sim_seconds = net.simulator().now() - t0;
  return report;
}

}  // namespace topo::core
