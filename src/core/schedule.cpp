#include "core/schedule.h"

#include <algorithm>
#include <unordered_map>

namespace topo::core {

std::vector<IterationPlan> make_schedule(size_t n, size_t group_k) {
  std::vector<IterationPlan> plan;
  if (n < 2) return plan;
  group_k = std::max<size_t>(2, std::min(group_k, n));

  // Partition into contiguous groups of K (last group possibly smaller).
  std::vector<std::vector<size_t>> groups;
  for (size_t start = 0; start < n; start += group_k) {
    std::vector<size_t> g;
    for (size_t i = start; i < std::min(start + group_k, n); ++i) g.push_back(i);
    groups.push_back(std::move(g));
  }

  // Round 1: group i vs all later groups.
  for (size_t gi = 0; gi + 1 < groups.size(); ++gi) {
    IterationPlan it;
    it.sources = groups[gi];
    for (size_t gj = gi + 1; gj < groups.size(); ++gj) {
      it.sinks.insert(it.sinks.end(), groups[gj].begin(), groups[gj].end());
    }
    for (size_t s : it.sources) {
      for (size_t t : it.sinks) it.pairs.emplace_back(s, t);
    }
    plan.push_back(std::move(it));
  }

  // Round 2: recursive halving across all groups simultaneously.
  std::vector<std::vector<size_t>> segments = groups;
  while (true) {
    IterationPlan it;
    std::vector<std::vector<size_t>> next;
    for (const auto& seg : segments) {
      if (seg.size() < 2) continue;
      const size_t half = seg.size() / 2;
      std::vector<size_t> first(seg.begin(), seg.begin() + half);
      std::vector<size_t> second(seg.begin() + half, seg.end());
      for (size_t s : first) {
        for (size_t t : second) it.pairs.emplace_back(s, t);
      }
      it.sources.insert(it.sources.end(), first.begin(), first.end());
      it.sinks.insert(it.sinks.end(), second.begin(), second.end());
      next.push_back(std::move(first));
      next.push_back(std::move(second));
    }
    if (it.pairs.empty()) break;
    plan.push_back(std::move(it));
    segments = std::move(next);
  }
  return plan;
}

NetworkMeasurementReport NetworkMeasurement::measure_all(p2p::Network& net,
                                                         const std::vector<p2p::PeerId>& targets,
                                                         size_t group_k) {
  NetworkMeasurementReport report;
  report.measured = graph::Graph(targets.size());
  const double t0 = net.simulator().now();

  size_t budget = max_edges_;
  if (budget == 0) budget = std::max<size_t>(1, par_.config().flood_Z * 2 / 5);

  const auto plan = make_schedule(targets.size(), group_k);
  for (const auto& it : plan) {
    // Split into slot-budgeted batches: every concurrent edge pins one txC
    // in every participating pool.
    for (size_t start = 0; start < it.pairs.size(); start += budget) {
      const size_t end = std::min(start + budget, it.pairs.size());
      std::vector<p2p::PeerId> sources, sinks;
      std::unordered_map<size_t, size_t> src_pos, sink_pos;
      std::vector<ParallelEdge> edges;
      edges.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        const auto& [s, t] = it.pairs[i];
        auto [sit, s_new] = src_pos.try_emplace(s, sources.size());
        if (s_new) sources.push_back(targets[s]);
        auto [tit, t_new] = sink_pos.try_emplace(t, sinks.size());
        if (t_new) sinks.push_back(targets[t]);
        edges.push_back({sit->second, tit->second});
      }

      const ParallelResult res = par_.measure(sources, sinks, edges);
      ++report.iterations;
      report.txs_sent += res.txs_sent;
      report.pairs_tested += edges.size();
      for (size_t i = 0; i < edges.size(); ++i) {
        if (res.connected[i]) {
          report.measured.add_edge(static_cast<graph::NodeId>(it.pairs[start + i].first),
                                   static_cast<graph::NodeId>(it.pairs[start + i].second));
        }
      }
    }
  }
  report.sim_seconds = net.simulator().now() - t0;
  return report;
}

}  // namespace topo::core
